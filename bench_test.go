package websnap_test

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (regenerating its rows and reporting the headline quantities
// as custom metrics), plus real-path micro-benchmarks of the mechanisms
// the paper's numbers are made of (snapshot capture/encode/restore, DNN
// forward execution, and the full offload round trip).
//
// Simulated experiment metrics are reported in milliseconds as
// "<quantity>_sim_ms"; they are deterministic and do not depend on the
// machine running the benchmark (see DESIGN.md §1 on hardware
// substitution).

import (
	"fmt"
	"net"
	"testing"

	"websnap"
	"websnap/internal/mlapp"
	"websnap/internal/models"
	"websnap/internal/sim"
	"websnap/internal/snapshot"
	"websnap/internal/tensor"
	"websnap/internal/webapp"
)

// BenchmarkFig6ExecutionTime regenerates Fig 6 (execution time of inference
// in three web apps) and reports each configuration's simulated seconds.
func BenchmarkFig6ExecutionTime(b *testing.B) {
	for _, name := range models.Names() {
		b.Run(name, func(b *testing.B) {
			var row sim.Fig6Row
			for i := 0; i < b.N; i++ {
				sc, err := sim.NewScenario(name)
				if err != nil {
					b.Fatal(err)
				}
				row, err = sc.Fig6Row()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.Client.Seconds()*1000, "client_sim_ms")
			b.ReportMetric(row.Server.Seconds()*1000, "server_sim_ms")
			b.ReportMetric(row.BeforeACK.Seconds()*1000, "beforeACK_sim_ms")
			b.ReportMetric(row.AfterACK.Seconds()*1000, "afterACK_sim_ms")
			b.ReportMetric(row.Partial.Seconds()*1000, "partial_sim_ms")
		})
	}
}

// BenchmarkFig7Breakdown regenerates Fig 7 (breakdown of the inference
// time) and reports the snapshot-related overhead share of the after-ACK
// configuration — the paper's "negligible" claim, quantified.
func BenchmarkFig7Breakdown(b *testing.B) {
	for _, name := range models.Names() {
		b.Run(name, func(b *testing.B) {
			var bd sim.Breakdown
			for i := 0; i < b.N; i++ {
				sc, err := sim.NewScenario(name)
				if err != nil {
					b.Fatal(err)
				}
				bd, err = sc.OffloadAfterACK()
				if err != nil {
					b.Fatal(err)
				}
			}
			snapOvh := bd.Get(sim.PhaseSnapshotCaptureC) + bd.Get(sim.PhaseSnapshotRestoreS) +
				bd.Get(sim.PhaseSnapshotCaptureS) + bd.Get(sim.PhaseSnapshotRestoreC)
			b.ReportMetric(snapOvh.Seconds()*1000, "snapshot_ovh_sim_ms")
			b.ReportMetric(bd.Get(sim.PhaseServerExec).Seconds()*1000, "server_exec_sim_ms")
			b.ReportMetric(bd.Total().Seconds()*1000, "total_sim_ms")
		})
	}
}

// BenchmarkFig8PartialInference regenerates Fig 8 (inference time with
// partial inference at various offloading points), reporting the 1st_conv
// vs 1st_pool comparison that drives the paper's conclusion.
func BenchmarkFig8PartialInference(b *testing.B) {
	for _, name := range models.Names() {
		b.Run(name, func(b *testing.B) {
			var conv1, pool1 float64
			for i := 0; i < b.N; i++ {
				rows, err := sim.Fig8()
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range rows {
					if r.Model != name {
						continue
					}
					for _, c := range r.Candidates {
						switch c.Point.Label {
						case "1st_conv":
							conv1 = c.Total.Seconds() * 1000
						case "1st_pool":
							pool1 = c.Total.Seconds() * 1000
						}
					}
				}
			}
			b.ReportMetric(conv1, "at_1st_conv_sim_ms")
			b.ReportMetric(pool1, "at_1st_pool_sim_ms")
		})
	}
}

// BenchmarkTable1Installation regenerates Table 1 (overhead of VM-based
// installation vs snapshot migration).
func BenchmarkTable1Installation(b *testing.B) {
	for _, name := range models.Names() {
		b.Run(name, func(b *testing.B) {
			var row sim.Table1Row
			for i := 0; i < b.N; i++ {
				rows, err := sim.Table1()
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range rows {
					if r.Model == name {
						row = r
					}
				}
			}
			b.ReportMetric(row.SynthesisTime.Seconds()*1000, "vm_synthesis_sim_ms")
			b.ReportMetric(float64(row.OverlayBytes)/(1<<20), "overlay_MB")
			b.ReportMetric(row.MigrationWithPre.Seconds()*1000, "migration_presend_sim_ms")
			b.ReportMetric(row.MigrationWithoutPre.Seconds()*1000, "migration_nopresend_sim_ms")
		})
	}
}

// BenchmarkFig1FeatureDims regenerates the Fig 1 architecture table and
// reports GoogLeNet's stem feature size (the 56x56x64 the paper draws).
func BenchmarkFig1FeatureDims(b *testing.B) {
	var pool1KB int64
	for i := 0; i < b.N; i++ {
		rows, err := sim.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Layer == "pool1" {
				pool1KB = r.FeatureKB
			}
		}
	}
	b.ReportMetric(float64(pool1KB), "pool1_feature_KB")
}

// BenchmarkFeatureDataSize regenerates the §IV.B feature-size measurement
// (14.7 MB at 1st_conv vs 2.9 MB at 1st_pool in the paper's encoding).
func BenchmarkFeatureDataSize(b *testing.B) {
	var conv1, pool1 float64
	for i := 0; i < b.N; i++ {
		rows, err := sim.FeatureSizes()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Model != models.GoogLeNet {
				continue
			}
			switch r.Label {
			case "1st_conv":
				conv1 = float64(r.TextBytes) / (1 << 20)
			case "1st_pool":
				pool1 = float64(r.TextBytes) / (1 << 20)
			}
		}
	}
	b.ReportMetric(conv1, "at_1st_conv_MB")
	b.ReportMetric(pool1, "at_1st_pool_MB")
}

// --- Real-path micro-benchmarks -----------------------------------------

// benchApp builds a loaded tiny-model app for snapshot benchmarks.
func benchApp(b *testing.B) *webapp.App {
	b.Helper()
	model, err := models.BuildTinyNet("tinynet", 3)
	if err != nil {
		b.Fatal(err)
	}
	app, err := mlapp.NewFullApp("bench", "tinynet", model, []string{"cat", "dog", "bird"})
	if err != nil {
		b.Fatal(err)
	}
	if err := mlapp.LoadImage(app, mlapp.SyntheticImage(3*16*16, 1)); err != nil {
		b.Fatal(err)
	}
	return app
}

// BenchmarkSnapshotCapture measures real snapshot capture of a live app.
func BenchmarkSnapshotCapture(b *testing.B) {
	app := benchApp(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snapshot.Capture(app, snapshot.Options{
			DefaultModelPolicy: snapshot.ModelSpecOnly,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotEncode measures textual encoding of a captured snapshot.
func BenchmarkSnapshotEncode(b *testing.B) {
	app := benchApp(b)
	snap, err := snapshot.Capture(app, snapshot.Options{DefaultModelPolicy: snapshot.ModelSpecOnly})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		data, err := snap.Encode()
		if err != nil {
			b.Fatal(err)
		}
		n = len(data)
	}
	b.ReportMetric(float64(n), "snapshot_bytes")
}

// BenchmarkSnapshotDecodeRestore measures decode + restore + resume.
func BenchmarkSnapshotDecodeRestore(b *testing.B) {
	app := benchApp(b)
	model, _ := app.Model("tinynet")
	snap, err := snapshot.Capture(app, snapshot.Options{
		DefaultModelPolicy: snapshot.ModelSpecOnly,
		PendingEvent:       &webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick},
	})
	if err != nil {
		b.Fatal(err)
	}
	wire, err := snap.Encode()
	if err != nil {
		b.Fatal(err)
	}
	resolver := snapshot.ResolverFunc(func(string) (*websnap.Network, bool) { return model, true })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := snapshot.Decode(wire)
		if err != nil {
			b.Fatal(err)
		}
		restored, err := snapshot.Restore(got, app.Registry(), snapshot.RestoreOptions{Models: resolver})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := restored.Run(4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForward measures real forward execution of each benchmark DNN —
// the computation the paper offloads. Heavy: run with -benchtime=1x for a
// quick pass.
func BenchmarkForward(b *testing.B) {
	for _, name := range append([]string{"tinynet"}, models.Names()...) {
		b.Run(name, func(b *testing.B) {
			var (
				net *websnap.Network
				err error
			)
			if name == "tinynet" {
				net, err = models.BuildTinyNet("tinynet", 3)
			} else {
				net, err = models.Build(name)
			}
			if err != nil {
				b.Fatal(err)
			}
			in := tensor.MustNew(net.InputShape()...)
			for i := range in.Data() {
				in.Data()[i] = float32(i%255) / 255
			}
			fl, err := net.TotalFLOPs()
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(fl) // throughput column ≈ FLOP/s
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := net.Forward(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOffloadRoundTrip measures the real end-to-end offload cycle
// (capture, ship over loopback TCP, execute at the server, return, apply)
// with the tiny model.
func BenchmarkOffloadRoundTrip(b *testing.B) {
	srv, err := websnap.NewEdgeServer(nil)
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() {
		srv.Close()
		<-done
	}()
	model, err := models.BuildTinyNet("tinynet", 3)
	if err != nil {
		b.Fatal(err)
	}
	conn, err := websnap.Dial(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	session, err := websnap.NewSession(websnap.SessionConfig{
		AppID: "bench-rt", ModelName: "tinynet", Model: model,
		Labels: []string{"cat", "dog", "bird"},
		Mode:   websnap.ModeFull, Conn: conn, PreSend: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := session.WaitForModelUpload(); err != nil {
		b.Fatal(err)
	}
	img := mlapp.SyntheticImage(3*16*16, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := session.Classify(img); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := session.Stats(); st.Offloads < b.N {
		b.Fatalf("only %d offloads for %d iterations", st.Offloads, b.N)
	}
}

// --- Ablation benchmarks -------------------------------------------------

// BenchmarkAblationDeltaVsFull measures the real on-the-wire bytes of a
// repeated offload with and without delta snapshots (§VI future work):
// the DESIGN.md ablation of the incremental-snapshot design choice.
func BenchmarkAblationDeltaVsFull(b *testing.B) {
	for _, delta := range []bool{false, true} {
		name := "full"
		if delta {
			name = "delta"
		}
		b.Run(name, func(b *testing.B) {
			srv, err := websnap.NewEdgeServer(nil)
			if err != nil {
				b.Fatal(err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			done := make(chan error, 1)
			go func() { done <- srv.Serve(ln) }()
			defer func() {
				srv.Close()
				<-done
			}()
			model, err := models.BuildTinyNet("tinynet", 3)
			if err != nil {
				b.Fatal(err)
			}
			conn, err := websnap.Dial(ln.Addr().String())
			if err != nil {
				b.Fatal(err)
			}
			defer conn.Close()
			session, err := websnap.NewSession(websnap.SessionConfig{
				AppID: "bench-delta", ModelName: "tinynet", Model: model,
				Labels: []string{"cat", "dog", "bird"},
				Mode:   websnap.ModeFull, Conn: conn, PreSend: true,
				EnableDelta: delta,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := session.WaitForModelUpload(); err != nil {
				b.Fatal(err)
			}
			// Static app state that full snapshots re-ship every time.
			static := make(websnap.Float32Array, 20000)
			if err := session.App().SetGlobal("static", static); err != nil {
				b.Fatal(err)
			}
			// Warm up: establish the server-side base state.
			if _, err := session.Classify(mlapp.SyntheticImage(3*16*16, 0)); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var wire int64
			for i := 0; i < b.N; i++ {
				if _, err := session.Classify(mlapp.SyntheticImage(3*16*16, uint64(i+1))); err != nil {
					b.Fatal(err)
				}
				wire = session.Stats().LastSnapshotBytes
			}
			b.ReportMetric(float64(wire), "wire_bytes")
		})
	}
}

// BenchmarkAblationCompression measures the on-the-wire snapshot size with
// and without DEFLATE compression (an extension; the paper ships plain
// text).
func BenchmarkAblationCompression(b *testing.B) {
	for _, compress := range []bool{false, true} {
		name := "plain"
		if compress {
			name = "flate"
		}
		b.Run(name, func(b *testing.B) {
			srv, err := websnap.NewEdgeServer(nil)
			if err != nil {
				b.Fatal(err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			done := make(chan error, 1)
			go func() { done <- srv.Serve(ln) }()
			defer func() {
				srv.Close()
				<-done
			}()
			model, err := models.BuildTinyNet("tinynet", 3)
			if err != nil {
				b.Fatal(err)
			}
			conn, err := websnap.Dial(ln.Addr().String())
			if err != nil {
				b.Fatal(err)
			}
			defer conn.Close()
			session, err := websnap.NewSession(websnap.SessionConfig{
				AppID: "bench-comp", ModelName: "tinynet", Model: model,
				Labels: []string{"cat", "dog", "bird"},
				Mode:   websnap.ModeFull, Conn: conn, PreSend: true,
				Compress: compress,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := session.WaitForModelUpload(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var wire int64
			for i := 0; i < b.N; i++ {
				if _, err := session.Classify(mlapp.SyntheticImage(3*16*16, uint64(i))); err != nil {
					b.Fatal(err)
				}
				wire = session.Stats().LastSnapshotBytes
			}
			b.ReportMetric(float64(wire), "wire_bytes")
		})
	}
}

// BenchmarkAblationPreSend quantifies the pre-sending optimization
// (§III.B.1) across bandwidths: first-offload latency with and without it.
func BenchmarkAblationPreSend(b *testing.B) {
	for _, mbps := range []float64{5, 30, 100} {
		b.Run(fmt.Sprintf("%.0fMbps", mbps), func(b *testing.B) {
			var before, after float64
			for i := 0; i < b.N; i++ {
				pts, err := sim.BandwidthSweep(models.GenderNet, []float64{mbps})
				if err != nil {
					b.Fatal(err)
				}
				before = pts[0].BeforeACK.Seconds() * 1000
				after = pts[0].AfterACK.Seconds() * 1000
			}
			b.ReportMetric(before, "beforeACK_sim_ms")
			b.ReportMetric(after, "afterACK_sim_ms")
		})
	}
}

// BenchmarkAblationPartitionVsBandwidth reports how the privacy-constrained
// partition decision responds to the network — the "runtime network status"
// input of §III.B.2.
func BenchmarkAblationPartitionVsBandwidth(b *testing.B) {
	for _, mbps := range []float64{1, 30, 1000} {
		b.Run(fmt.Sprintf("%.0fMbps", mbps), func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				pts, err := sim.BandwidthSweep(models.GoogLeNet, []float64{mbps})
				if err != nil {
					b.Fatal(err)
				}
				total = pts[0].BestTotal.Seconds() * 1000
			}
			b.ReportMetric(total, "best_partial_sim_ms")
		})
	}
}

// BenchmarkAblationModelPolicy measures real encoded snapshot sizes under
// the three model policies — the size optimization §III.B.1 exists for.
func BenchmarkAblationModelPolicy(b *testing.B) {
	app := benchApp(b)
	for _, tc := range []struct {
		name   string
		policy snapshot.ModelPolicy
	}{
		{"full-model", snapshot.ModelFull},
		{"spec-only", snapshot.ModelSpecOnly},
		{"omitted", snapshot.ModelOmit},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var n int
			for i := 0; i < b.N; i++ {
				snap, err := snapshot.Capture(app, snapshot.Options{DefaultModelPolicy: tc.policy})
				if err != nil {
					b.Fatal(err)
				}
				wire, err := snap.Encode()
				if err != nil {
					b.Fatal(err)
				}
				n = len(wire)
			}
			b.ReportMetric(float64(n), "snapshot_bytes")
		})
	}
}

// BenchmarkModelPreSend measures shipping a real ~44 MB model to the edge
// server over loopback (the paper's pre-sending step, unshaped).
func BenchmarkModelPreSend(b *testing.B) {
	srv, err := websnap.NewEdgeServer(nil)
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() {
		srv.Close()
		<-done
	}()
	model, err := models.Build(models.GenderNet)
	if err != nil {
		b.Fatal(err)
	}
	conn, err := websnap.Dial(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	b.SetBytes(model.ModelBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := conn.PreSendModel(fmt.Sprintf("bench-%d", i), "gendernet", model, false); err != nil {
			b.Fatal(err)
		}
	}
}

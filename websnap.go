// Package websnap is a Go implementation of snapshot-based computation
// offloading for machine-learning web apps in the edge server environment
// (Jeong, Jeong, Lee, Moon — ICDCS 2018).
//
// A client device runs a self-contained ML web app on a deterministic
// web-app runtime. Just before a computation-intensive event handler (DNN
// inference) executes, the runtime captures the app's entire execution
// state — globals, heap objects, DOM tree, pending event — as a *snapshot*:
// a textual program that is itself an app. The snapshot travels to a nearby
// generic edge server, runs there on the server's runtime with its faster
// hardware, and a new snapshot containing the result travels back and
// resumes on the client.
//
// The package re-exports the library's public surface:
//
//   - Session: run an ML app with local, full-offload, partial-offload
//     (privacy-preserving), or automatic strategy.
//   - NewEdgeServer / Dial: the edge-server offloading program and the
//     client connection to it.
//   - BuildGoogLeNet / BuildAgeNet / BuildGenderNet: the paper's benchmark
//     DNNs, plus BuildTinyNet for fast demos.
//   - Shape / WiFi30Mbps: netem-style bandwidth emulation.
//   - Fig6 / Fig7 / Fig8 / Table1 / Fig1 / FeatureSizes: regenerate every
//     figure and table of the paper's evaluation.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-versus-measured results.
package websnap

import (
	"websnap/internal/client"
	"websnap/internal/core"
	"websnap/internal/costmodel"
	"websnap/internal/edge"
	"websnap/internal/models"
	"websnap/internal/netem"
	"websnap/internal/nn"
	"websnap/internal/partition"
	"websnap/internal/roam"
	"websnap/internal/sim"
	"websnap/internal/snapshot"
	"websnap/internal/webapp"
)

// Core session API.
type (
	// Session is one running ML web app with an offloading strategy.
	Session = core.Session
	// SessionConfig configures NewSession.
	SessionConfig = core.SessionConfig
	// Mode selects the offloading strategy.
	Mode = core.Mode
	// Stats reports offloading counters and transfer sizes.
	Stats = client.Stats
)

// Session modes.
const (
	ModeLocal   = core.ModeLocal
	ModeFull    = core.ModeFull
	ModePartial = core.ModePartial
	ModeAuto    = core.ModeAuto
)

// NewSession builds an ML web app with the configured offloading strategy.
func NewSession(cfg SessionConfig) (*Session, error) { return core.NewSession(cfg) }

// Web runtime and snapshot types.
type (
	// App is a running web app instance.
	App = webapp.App
	// Event is a DOM event.
	Event = webapp.Event
	// Float32Array is the typed-array value for pixels and features.
	Float32Array = webapp.Float32Array
	// Catalog resolves code hashes to app code bundles.
	Catalog = webapp.Catalog
	// Snapshot is a captured app execution state.
	Snapshot = snapshot.Snapshot
)

// DefaultCatalog returns the catalog of standard ML web-app code bundles.
func DefaultCatalog() (*Catalog, error) { return core.DefaultCatalog() }

// Edge server and client connection.
type (
	// EdgeServer is the offloading program running at an edge server.
	EdgeServer = edge.Server
	// EdgeConfig configures an edge server.
	EdgeConfig = edge.Config
	// Conn is a client connection to an edge server.
	Conn = client.Conn
)

// NewEdgeServer constructs a pre-installed edge server for the standard ML
// web apps. logf may be nil.
func NewEdgeServer(logf func(string, ...any)) (*EdgeServer, error) { return core.NewEdgeServer(logf) }

// NewEdgeServerWithConfig constructs an edge server with full control
// (custom catalog, on-demand installation via VM synthesis).
func NewEdgeServerWithConfig(cfg EdgeConfig) (*EdgeServer, error) { return edge.NewServer(cfg) }

// Dial connects to an edge server over TCP.
func Dial(addr string) (*Conn, error) { return client.Dial(addr) }

// Roaming between edge servers (the paper's §I mobility scenario).
type (
	// Roamer tracks candidate edge servers and switches between them.
	Roamer = roam.Roamer
	// RoamConfig parametrizes a Roamer.
	RoamConfig = roam.Config
	// RoamServerInfo is the probe state of one candidate server.
	RoamServerInfo = roam.ServerInfo
)

// NewRoamer creates a roamer over candidate edge servers.
func NewRoamer(cfg RoamConfig) (*Roamer, error) { return roam.New(cfg) }

// NewConn wraps an existing net.Conn (e.g. a netem-shaped one).
var NewConn = client.NewConn

// Models.
type (
	// Network is a DNN.
	Network = nn.Network
)

// Benchmark model names.
const (
	GoogLeNet = models.GoogLeNet
	AgeNet    = models.AgeNet
	GenderNet = models.GenderNet
)

// Model builders (deterministic synthetic weights; see DESIGN.md §1).
var (
	BuildModel     = models.Build
	BuildGoogLeNet = models.BuildGoogLeNet
	BuildAgeNet    = models.BuildAgeNet
	BuildGenderNet = models.BuildGenderNet
	BuildTinyNet   = models.BuildTinyNet
)

// Network emulation.
type (
	// NetProfile describes a network condition for shaping and
	// estimation.
	NetProfile = netem.Profile
)

// WiFi30Mbps is the paper's emulated network condition.
var WiFi30Mbps = netem.WiFi30Mbps

// Shape wraps a net.Conn with bandwidth pacing.
var Shape = netem.Shape

// Device cost models.
type (
	// Device is a per-layer latency prediction profile.
	Device = costmodel.Device
)

// Calibrated device profiles, plus the paper's §IV.A GPU projection.
var (
	ClientOdroid = costmodel.ClientOdroid
	ServerX86    = costmodel.ServerX86
	ServerX86GPU = costmodel.ServerX86GPU
)

// ProfileDevice builds a Device by measuring a network on the current
// machine (per-layer profiling, Neurosurgeon-style).
var ProfileDevice = costmodel.Profile

// Partition analysis (Neurosurgeon-style).
type (
	// PartitionPlan is a full per-point cost analysis.
	PartitionPlan = partition.Plan
	// PartitionConfig parametrizes the analysis.
	PartitionConfig = partition.Config
)

// AnalyzePartition evaluates every candidate offloading point of a DNN.
var AnalyzePartition = partition.Analyze

// Experiment reproduction (the paper's evaluation section).
type (
	// Fig6Row is one app's inference time under all configurations.
	Fig6Row = sim.Fig6Row
	// ExperimentBreakdown is a Fig 7 phase breakdown.
	ExperimentBreakdown = sim.Breakdown
	// Fig8Row is one model's partition sweep.
	Fig8Row = sim.Fig8Row
	// Table1Row is one column of Table 1.
	Table1Row = sim.Table1Row
	// SweepPoint is one bandwidth setting's outcome in an ablation
	// sweep.
	SweepPoint = sim.SweepPoint
)

// Experiment drivers; each regenerates the corresponding paper artifact.
var (
	Fig1         = sim.Fig1
	Fig6         = sim.Fig6
	Fig6GPU      = sim.Fig6GPU
	Fig7         = sim.Fig7
	Fig8         = sim.Fig8
	Table1       = sim.Table1
	FeatureSizes = sim.FeatureSizes
	// BandwidthSweep evaluates offloading configurations and the dynamic
	// partition decision across bandwidths (ablation).
	BandwidthSweep = sim.BandwidthSweep
)

// Command edged runs the edge server's offloading program: it listens for
// client connections, stores pre-sent DNN models, executes incoming
// snapshots on its web-app runtime, and returns result snapshots.
//
//	edged -listen :7080
//	edged -listen :7080 -on-demand        # require VM-synthesis installation first
//	edged -listen :7080 -metrics-addr :7081 -pprof -log-json
//	                                      # metrics + health probes + profiler, JSON logs
//	edged -listen :7080 -advertise 10.0.0.5:7080 -registry 10.0.0.2:7090
//	                                      # join a fleet: heartbeat into the registry and
//	                                      # share content-addressed blobs with peers
//
// -advertise is the address peers and roaming clients dial, which may
// differ from -listen behind NAT or a container port map; it must not be
// a wildcard address.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"websnap/internal/core"
	"websnap/internal/edge"
	"websnap/internal/fleet"
	"websnap/internal/nn"
	"websnap/internal/obs"
	"websnap/internal/sched"
	"websnap/internal/telemetry"
	"websnap/internal/vmsynth"
)

func main() {
	var (
		listen   = flag.String("listen", ":7080", "address to listen on")
		onDemand = flag.Bool("on-demand", false,
			"start without the offloading system installed; require VM synthesis")
		baseImage = flag.String("base-image", "ubuntu-12.04",
			"VM base image available for on-demand installation")
		modelDir = flag.String("model-dir", "",
			"directory to persist pre-sent models across restarts (empty = in-memory)")
		maxConns    = flag.Int("max-conns", 0, "max concurrent client connections (0 = unlimited)")
		metricsAddr = flag.String("metrics-addr", "",
			"serve GET /metrics (JSON counters) on this address (empty = disabled)")
		idle     = flag.Duration("idle-timeout", 0, "close connections idle longer than this (0 = never)")
		transfer = flag.Duration("transfer-timeout", 0,
			"max gap between reads within one frame once it started arriving (0 = same as -idle-timeout)")
		traceLog = flag.String("trace-log", "",
			"append one JSON line per offload request with its server-side span breakdown ('-' = stderr)")
		traceLogMaxBytes = flag.Int64("trace-log-max-bytes", obs.DefaultRotateBytes,
			"rotate the -trace-log file to <path>.1 when it would exceed this size (0 = never rotate)")
		quiet   = flag.Bool("quiet", false, "suppress per-request logging")
		logJSON = flag.Bool("log-json", false,
			"emit structured JSON-line logs on stderr instead of plain text")
		pprofOn = flag.Bool("pprof", false,
			"expose net/http/pprof under /debug/pprof/ on -metrics-addr")

		workers = flag.Int("workers", edge.DefaultWorkers,
			"scheduler worker-pool size (concurrent snapshot executions)")
		queue = flag.Int("queue", 0,
			"scheduler admission-queue depth (0 = default)")
		batch = flag.Int("batch", 1,
			"max snapshot sessions coalesced into one batched forward pass (1 = no batching)")
		batchWindow = flag.Duration("batch-window", 0,
			"how long a worker holds an under-filled batch open (0 = batch only queued backlog)")
		block = flag.Bool("queue-block", false,
			"block full-queue submissions up to -queue-wait instead of rejecting them")
		queueWait = flag.Duration("queue-wait", 0,
			"how long -queue-block waits for queue space (0 = default)")
		maxQueueBytes = flag.Int64("max-queue-bytes", 0,
			"max total snapshot bytes admitted to the scheduler queue (0 = unlimited)")

		maxStoreBytes = flag.Int64("max-store-bytes", 0,
			"session-store byte cap: models and synced states beyond it are evicted LRU (0 = unbounded)")
		maxStreams = flag.Int("max-streams", 0,
			"max concurrent multiplexed logical streams per client connection (0 = default 256)")

		registry = flag.String("registry", "",
			"fleet registry address to heartbeat into (empty = standalone server)")
		advertise = flag.String("advertise", "",
			"dialable address advertised to the fleet; may differ from -listen behind NAT (default: the -listen address if it names a concrete host)")
		registryTTL = flag.Duration("registry-ttl", 0,
			"registration lifetime named on each heartbeat (0 = registry default)")

		sloObjective = flag.Duration("slo-objective", 0,
			"server-side latency SLO: offloads slower than this burn error budget, served on /slo (0 = no SLO)")
		sloGoal = flag.Float64("slo-goal", 0,
			"SLO good-event ratio target, e.g. 0.99 (0 = default 0.99)")
		flightBytes = flag.Int64("flight-bytes", 0,
			"flight-recorder ring byte cap for /debug/flight (0 = default 1 MiB)")

		quality = flag.String("quality", "",
			"force offloaded inference to this quality tier (float32 or int8) regardless of the client's choice (empty = honor the snapshot)")
	)
	flag.Parse()
	sc := schedConfig{
		workers: *workers, queue: *queue, batch: *batch,
		batchWindow: *batchWindow, block: *block, queueWait: *queueWait,
		maxQueueBytes: *maxQueueBytes,
	}
	fc := fleetConfig{registry: *registry, advertise: *advertise, ttl: *registryTTL}
	bc := boundsConfig{storeBytes: *maxStoreBytes, streams: *maxStreams}
	tc := telemetryConfig{
		sloObjective: *sloObjective, sloGoal: *sloGoal,
		flightBytes: *flightBytes, traceLogMaxBytes: *traceLogMaxBytes,
	}
	if err := run(*listen, *onDemand, *baseImage, *modelDir, *metricsAddr, *traceLog, *quality, *maxConns, *idle, *transfer, *quiet, *logJSON, *pprofOn, sc, fc, bc, tc); err != nil {
		fmt.Fprintln(os.Stderr, "edged:", err)
		os.Exit(1)
	}
}

// schedConfig bundles the scheduler flags.
type schedConfig struct {
	workers, queue, batch  int
	batchWindow, queueWait time.Duration
	block                  bool
	maxQueueBytes          int64
}

// fleetConfig bundles the fleet flags.
type fleetConfig struct {
	registry, advertise string
	ttl                 time.Duration
}

// boundsConfig bundles the memory/stream bound flags.
type boundsConfig struct {
	storeBytes int64
	streams    int
}

// telemetryConfig bundles the SLO, flight-recorder, and trace-log rotation
// flags.
type telemetryConfig struct {
	sloObjective     time.Duration
	sloGoal          float64
	flightBytes      int64
	traceLogMaxBytes int64
}

// resolveAdvertise validates the fleet-advertised address: an explicit
// -advertise wins, otherwise the listener's address is used when it names
// a concrete host. Wildcard hosts are rejected — the advertised address is
// what peers and roaming clients dial, so it must be dialable as written.
func resolveAdvertise(advertise string, lnAddr net.Addr) (string, error) {
	addr := advertise
	if addr == "" {
		addr = lnAddr.String()
	}
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "", fmt.Errorf("-advertise %q: %w", addr, err)
	}
	wildcard := host == ""
	if ip := net.ParseIP(host); ip != nil && ip.IsUnspecified() {
		wildcard = true
	}
	if wildcard {
		if advertise != "" {
			return "", fmt.Errorf("-advertise %q is a wildcard address; peers and clients must be able to dial it", advertise)
		}
		return "", fmt.Errorf("-registry requires -advertise when -listen binds the wildcard address %q", lnAddr)
	}
	return net.JoinHostPort(host, port), nil
}

func run(listen string, onDemand bool, baseImage, modelDir, metricsAddr, traceLog, quality string, maxConns int, idle, transfer time.Duration, quiet, logJSON, pprofOn bool, sc schedConfig, fc fleetConfig, bc boundsConfig, tc telemetryConfig) error {
	if fc.registry == "" && fc.advertise != "" {
		return fmt.Errorf("-advertise requires -registry (nothing to advertise to)")
	}
	if fc.registry == "" && fc.ttl != 0 {
		return fmt.Errorf("-registry-ttl requires -registry")
	}
	catalog, err := core.DefaultCatalog()
	if err != nil {
		return err
	}
	cfg := edge.Config{
		Catalog: catalog, Installed: !onDemand, ModelDir: modelDir,
		MaxConns: maxConns, IdleTimeout: idle, TransferTimeout: transfer,
		Workers: sc.workers, QueueDepth: sc.queue,
		MaxBatch: sc.batch, BatchWindow: sc.batchWindow,
		QueueWait: sc.queueWait, MaxQueueBytes: sc.maxQueueBytes,
		MaxStoreBytes: bc.storeBytes, MaxStreams: bc.streams,
	}
	if quality != "" {
		prec, err := nn.ParsePrecision(quality)
		if err != nil {
			return err
		}
		cfg.Quality = prec
	}
	if sc.block {
		cfg.QueuePolicy = sched.PolicyBlock
	}
	if !quiet {
		if logJSON {
			cfg.Logger = obs.NewLogger(os.Stderr, obs.LevelDebug)
		} else {
			cfg.Logf = log.Printf
		}
	}
	switch traceLog {
	case "":
	case "-":
		cfg.TraceLog = os.Stderr
	default:
		if tc.traceLogMaxBytes > 0 {
			// Size-capped rotation: the live file plus one predecessor
			// (<path>.1) bound the disk the trace log can ever claim.
			rf, err := obs.NewRotatingFile(traceLog, tc.traceLogMaxBytes)
			if err != nil {
				return fmt.Errorf("open trace log: %w", err)
			}
			defer rf.Close()
			cfg.TraceLog = rf
		} else {
			f, err := os.OpenFile(traceLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("open trace log: %w", err)
			}
			defer f.Close()
			cfg.TraceLog = f
		}
	}
	// The flight recorder is always on (it is a fixed-size in-memory ring);
	// the SLO engine needs an objective to exist.
	flight := telemetry.NewFlightRecorder(tc.flightBytes)
	cfg.Flight = flight
	if tc.sloObjective > 0 {
		slo, err := telemetry.NewSLO(telemetry.SLOConfig{
			Name:      "edge-serve",
			Objective: tc.sloObjective,
			Goal:      tc.sloGoal,
			OnBurn: func(st telemetry.SLOStatus) {
				// Auto-capture the burn transition in the flight ring so the
				// dump shows when the budget started draining alongside the
				// offending slow-request span trees.
				flight.Record(telemetry.FlightEntry{
					Reason: telemetry.FlightBurn,
					Note: fmt.Sprintf("slo %s burning: short %.2fx long %.2fx over objective %v",
						st.Name, st.ShortBurn, st.LongBurn, tc.sloObjective),
				})
				log.Printf("edged: slo %s burning (short %.2fx, long %.2fx)",
					st.Name, st.ShortBurn, st.LongBurn)
			},
		})
		if err != nil {
			return err
		}
		cfg.SLO = slo
	} else if tc.sloGoal != 0 {
		return fmt.Errorf("-slo-goal requires -slo-objective")
	}
	if onDemand {
		cfg.Synthesizer = vmsynth.NewSynthesizer(vmsynth.BaseImage{Name: baseImage, Bytes: 8 << 30})
	}
	// The listener comes up before the server so a fleet-joined instance
	// can resolve its advertised address even when -listen picks the port
	// (":0").
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	var rc *fleet.RegistryClient
	if fc.registry != "" {
		adv, err := resolveAdvertise(fc.advertise, ln.Addr())
		if err != nil {
			ln.Close()
			return err
		}
		rc = fleet.NewRegistryClient(fc.registry, fleet.ClientOptions{})
		cfg.AdvertiseAddr = adv
		// The peer blob cache shares the session store's byte budget: both
		// hold the same content (models, synced states), so one knob bounds
		// the server's whole content footprint.
		cfg.Blobs = fleet.NewBlobStoreCap(bc.storeBytes)
		cfg.Locator = rc
	}
	srv, err := edge.NewServer(cfg)
	if err != nil {
		ln.Close()
		return err
	}
	// Daemon-only runtime stats (goroutines, heap, GC pauses, FDs); kept out
	// of edge.NewServer so library embedders and the byte-pinned metrics
	// goldens keep the bare application registry.
	obs.RegisterRuntimeStats(srv.Registry())
	log.Printf("edged: listening on %s (installed=%v)", ln.Addr(), !onDemand)
	if rc != nil {
		agent, err := fleet.StartAgent(fleet.AgentConfig{
			Client:   rc,
			Addr:     cfg.AdvertiseAddr,
			Capacity: sc.workers,
			TTL:      fc.ttl,
			Load:     srv.LoadHint,
			Blobs:    srv.BlobKeys,
			Stats:    srv.StatsDigest,
			Logger:   cfg.Logger,
		})
		if err != nil {
			ln.Close()
			return err
		}
		defer agent.Close()
		log.Printf("edged: joined fleet via %s as %s (ttl=%v)", fc.registry, cfg.AdvertiseAddr, fc.ttl)
	}

	var metricsSrv *http.Server
	if metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", srv.MetricsHandler())
		mux.Handle("/healthz", srv.HealthzHandler())
		mux.Handle("/readyz", srv.ReadyzHandler())
		mux.Handle("/slo", srv.SLOHandler())
		mux.Handle("/debug/flight", srv.FlightHandler())
		if pprofOn {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		metricsSrv = &http.Server{Addr: metricsAddr, Handler: mux}
		go func() {
			if err := metricsSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("edged: metrics server: %v", err)
			}
		}()
		log.Printf("edged: metrics on http://%s/metrics (healthz, readyz%s)",
			metricsAddr, map[bool]string{true: ", pprof", false: ""}[pprofOn])
	} else if pprofOn {
		return fmt.Errorf("-pprof requires -metrics-addr")
	}
	defer func() {
		if metricsSrv != nil {
			metricsSrv.Close()
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case err := <-done:
		return err
	case s := <-sig:
		log.Printf("edged: %v, shutting down", s)
		if err := srv.Close(); err != nil {
			return err
		}
		return <-done
	}
}

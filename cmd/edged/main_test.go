package main

import (
	"net"
	"strings"
	"testing"
)

func TestResolveAdvertise(t *testing.T) {
	concrete := &net.TCPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 7080}
	wildcard := &net.TCPAddr{Port: 7080}
	tests := []struct {
		name      string
		advertise string
		lnAddr    net.Addr
		want      string
		wantErr   string
	}{
		{"explicit", "10.0.0.5:7080", wildcard, "10.0.0.5:7080", ""},
		{"explicit hostname", "edge-a.local:7080", wildcard, "edge-a.local:7080", ""},
		{"explicit differs from listen", "203.0.113.9:9000", concrete, "203.0.113.9:9000", ""},
		{"explicit wildcard ip", "0.0.0.0:7080", concrete, "", "wildcard"},
		{"explicit empty host", ":7080", concrete, "", "wildcard"},
		{"explicit no port", "10.0.0.5", concrete, "", "missing port"},
		{"derived from concrete listener", "", concrete, "127.0.0.1:7080", ""},
		{"derived from wildcard listener", "", wildcard, "", "-advertise"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := resolveAdvertise(tt.advertise, tt.lnAddr)
			if tt.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
					t.Fatalf("err = %v, want mention of %q", err, tt.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("resolveAdvertise(%q, %v) = %q, want %q", tt.advertise, tt.lnAddr, got, tt.want)
			}
		})
	}
}

func TestRunRejectsFleetFlagsWithoutRegistry(t *testing.T) {
	err := run(":0", false, "ubuntu-12.04", "", "", "", "", 0, 0, 0, true, false, false,
		schedConfig{workers: 2, batch: 1}, fleetConfig{advertise: "10.0.0.5:7080"}, boundsConfig{}, telemetryConfig{})
	if err == nil || !strings.Contains(err.Error(), "-registry") {
		t.Errorf("-advertise without -registry: err = %v, want -registry mention", err)
	}
	err = run(":0", false, "ubuntu-12.04", "", "", "", "", 0, 0, 0, true, false, false,
		schedConfig{workers: 2, batch: 1}, fleetConfig{ttl: 1}, boundsConfig{}, telemetryConfig{})
	if err == nil || !strings.Contains(err.Error(), "-registry-ttl") {
		t.Errorf("-registry-ttl without -registry: err = %v, want -registry-ttl mention", err)
	}
}

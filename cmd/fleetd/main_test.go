package main

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"websnap/internal/obs"
	"websnap/internal/protocol"
	"websnap/internal/telemetry"
	"websnap/internal/trace"
)

func TestRunRejectsNonPositiveTTL(t *testing.T) {
	if err := run(":0", "", 0, false, false, telemetryConfig{}); err == nil || !strings.Contains(err.Error(), "-ttl") {
		t.Errorf("zero ttl: err = %v, want -ttl mention", err)
	}
	if err := run(":0", "", -1, false, false, telemetryConfig{}); err == nil {
		t.Error("negative ttl should fail")
	}
}

func TestRunRejectsPprofWithoutMetricsAddr(t *testing.T) {
	if err := run(":0", "", time.Second, false, true, telemetryConfig{}); err == nil ||
		!strings.Contains(err.Error(), "-metrics-addr") {
		t.Errorf("pprof without metrics addr: err = %v, want -metrics-addr mention", err)
	}
}

func TestRunRejectsGoalWithoutObjective(t *testing.T) {
	err := run(":0", "", time.Second, false, false, telemetryConfig{sloGoal: 0.99})
	if err == nil || !strings.Contains(err.Error(), "-slo-objective") {
		t.Errorf("goal without objective: err = %v, want -slo-objective mention", err)
	}
}

// testFleetSnapshot fabricates a registry snapshot with one digest-bearing
// member and one pre-telemetry member, like a mixed-version fleet.
func testFleetSnapshot() []telemetry.ServerStats {
	rec := trace.NewRecorder()
	for i := 0; i < 5; i++ {
		rec.Observe(trace.StageExecute, 10*time.Millisecond)
	}
	d := telemetry.DigestSource{Recorder: rec}.Digest()
	d.QueueDepth = 2
	d.StoreBytes = 1 << 20
	return []telemetry.ServerStats{
		{Addr: "edge-a:7070", Capacity: 4, AgeMillis: 120, Stats: d},
		{Addr: "edge-b:7070", Capacity: 2, AgeMillis: 90},
	}
}

// TestMetricsHandlerPrometheusLint scrapes the combined fleetd exposition
// (registry counters + runtime stats + per-scrape rollup) and runs it
// through the Prometheus linter: the two registries' family names must
// stay disjoint or the concatenation would redeclare TYPE/HELP.
func TestMetricsHandlerPrometheusLint(t *testing.T) {
	metrics := obs.NewRegistry()
	obs.RegisterRuntimeStats(metrics)
	metrics.Counter("fleet_registrations_total", "Total registrations.").Add(3)
	h := metricsHandler(metrics, testFleetSnapshot)

	rr := httptest.NewRecorder()
	h(rr, httptest.NewRequest("GET", "/metrics?format=prometheus", nil))
	if rr.Code != 200 {
		t.Fatalf("status = %d, want 200", rr.Code)
	}
	body := rr.Body.String()
	if errs := obs.LintPrometheus([]byte(body)); len(errs) > 0 {
		t.Fatalf("combined exposition fails lint: %v\n%s", errs, body)
	}
	for _, want := range []string{"fleet_registrations_total", "websnap_rollup_servers", "websnap_rollup_stage_seconds"} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition lacks %s", want)
		}
	}
}

// TestMetricsHandlerJSONShape checks the JSON scrape keeps the registry's
// own counters and the fleet rollup under separate keys.
func TestMetricsHandlerJSONShape(t *testing.T) {
	metrics := obs.NewRegistry()
	metrics.Counter("fleet_registrations_total", "Total registrations.").Add(1)
	h := metricsHandler(metrics, testFleetSnapshot)

	rr := httptest.NewRecorder()
	h(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("status = %d, want 200", rr.Code)
	}
	var got struct {
		Registry []struct {
			Name string `json:"name"`
		} `json:"registry"`
		Rollup []struct {
			Name string `json:"name"`
		} `json:"rollup"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &got); err != nil {
		t.Fatalf("JSON scrape does not parse: %v\n%s", err, rr.Body.String())
	}
	if len(got.Registry) == 0 || len(got.Rollup) == 0 {
		t.Fatalf("registry=%d rollup=%d families, want both non-empty", len(got.Registry), len(got.Rollup))
	}

	rr = httptest.NewRecorder()
	h(rr, httptest.NewRequest("POST", "/metrics", nil))
	if rr.Code != 405 {
		t.Errorf("POST status = %d, want 405", rr.Code)
	}
}

// TestSLOFeedDeltasFromCumulativeDigests drives the heartbeat→SLO bridge
// with cumulative digests and checks only increments are observed, with a
// restart (counters going backwards) treated as all-new events.
func TestSLOFeedDeltasFromCumulativeDigests(t *testing.T) {
	slo, err := telemetry.NewSLO(telemetry.SLOConfig{Name: "t", Objective: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	feed := &sloFeed{slo: slo, objective: 50 * time.Millisecond, last: make(map[string]sloCounts)}

	digest := func(fast, slow int) *protocol.StatsDigest {
		rec := trace.NewRecorder()
		for i := 0; i < fast; i++ {
			rec.Observe(trace.StageExecute, time.Millisecond)
		}
		for i := 0; i < slow; i++ {
			rec.Observe(trace.StageExecute, time.Second)
		}
		return telemetry.DigestSource{Recorder: rec}.Digest()
	}

	feed.observe("a", digest(8, 2))
	st := slo.Status()
	if st.ShortTotal != 10 || st.ShortBad != 2 {
		t.Fatalf("after first heartbeat: total=%d bad=%d, want 10/2", st.ShortTotal, st.ShortBad)
	}
	// Same cumulative counts again: no new events.
	feed.observe("a", digest(8, 2))
	if st := slo.Status(); st.ShortTotal != 10 || st.ShortBad != 2 {
		t.Fatalf("re-heartbeat double-counted: total=%d bad=%d", st.ShortTotal, st.ShortBad)
	}
	// Grown counts: only the increment lands.
	feed.observe("a", digest(12, 3))
	if st := slo.Status(); st.ShortTotal != 15 || st.ShortBad != 3 {
		t.Fatalf("after growth: total=%d bad=%d, want 15/3", st.ShortTotal, st.ShortBad)
	}
	// Counters went backwards: the member restarted, all counts are new.
	feed.observe("a", digest(2, 0))
	if st := slo.Status(); st.ShortTotal != 17 {
		t.Fatalf("after restart: total=%d, want 17", st.ShortTotal)
	}
	// nil feed and nil digest are inert.
	(*sloFeed)(nil).observe("a", digest(1, 0))
	feed.observe("a", nil)
}

package main

import (
	"strings"
	"testing"
)

func TestRunRejectsNonPositiveTTL(t *testing.T) {
	if err := run(":0", "", 0, false); err == nil || !strings.Contains(err.Error(), "-ttl") {
		t.Errorf("zero ttl: err = %v, want -ttl mention", err)
	}
	if err := run(":0", "", -1, false); err == nil {
		t.Error("negative ttl should fail")
	}
}

// Command fleetd runs the fleet registry: the membership and
// blob-location authority edge servers heartbeat into and clients fetch
// placement views from. It speaks the same binary frame protocol as the
// offload path, keeps no durable state (membership is rebuilt by
// heartbeats within one TTL after a restart), and needs no coordination
// with the edge servers it tracks — a dead registry degrades clients to
// their cached last-known-good views, it never stops the data plane.
//
// Beyond membership, fleetd is the fleet's telemetry rollup point: edge
// servers piggyback cumulative stats digests on their heartbeats, and the
// metrics endpoint re-merges them per scrape into fleet-wide stage
// histograms, decision mixes, and per-server summaries.
//
//	fleetd -listen :7090
//	fleetd -listen :7090 -ttl 10s -metrics-addr :7091 -log-json
//	fleetd -listen :7090 -metrics-addr :7091 -pprof \
//	       -slo-objective 50ms            # fleet-wide execute-latency SLO on /slo
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"websnap/internal/fleet"
	"websnap/internal/obs"
	"websnap/internal/protocol"
	"websnap/internal/telemetry"
	"websnap/internal/trace"
)

func main() {
	var (
		listen = flag.String("listen", ":7090", "address to listen on")
		ttl    = flag.Duration("ttl", fleet.DefaultTTL,
			"default registration lifetime; servers missing heartbeats this long are dropped")
		metricsAddr = flag.String("metrics-addr", "",
			"serve GET /metrics, /fleet, /slo, /debug/flight, and health probes on this address (empty = disabled)")
		logJSON = flag.Bool("log-json", false,
			"emit structured JSON-line logs on stderr instead of plain text")
		pprofOn = flag.Bool("pprof", false,
			"expose net/http/pprof under /debug/pprof/ on -metrics-addr")
		sloObjective = flag.Duration("slo-objective", 0,
			"fleet-wide execute-latency SLO fed from heartbeat digests, served on /slo (0 = no SLO)")
		sloGoal = flag.Float64("slo-goal", 0,
			"SLO good-event ratio target, e.g. 0.99 (0 = default 0.99)")
		flightBytes = flag.Int64("flight-bytes", 0,
			"flight-recorder ring byte cap for /debug/flight (0 = default 1 MiB)")
	)
	flag.Parse()
	tc := telemetryConfig{sloObjective: *sloObjective, sloGoal: *sloGoal, flightBytes: *flightBytes}
	if err := run(*listen, *metricsAddr, *ttl, *logJSON, *pprofOn, tc); err != nil {
		fmt.Fprintln(os.Stderr, "fleetd:", err)
		os.Exit(1)
	}
}

// telemetryConfig bundles the SLO and flight-recorder flags.
type telemetryConfig struct {
	sloObjective time.Duration
	sloGoal      float64
	flightBytes  int64
}

// sloFeed turns cumulative heartbeat digests into SLO event deltas: for
// each member it remembers the last seen (total, bad) counts of the
// execute stage and feeds only the increment, so re-heartbeated history is
// never double-counted. A member whose counts go backwards restarted; its
// full new counts are genuinely new events.
type sloFeed struct {
	slo       *telemetry.SLO
	objective time.Duration
	mu        sync.Mutex
	last      map[string]sloCounts
}

type sloCounts struct{ total, bad uint64 }

func (f *sloFeed) observe(addr string, d *protocol.StatsDigest) {
	if f == nil || d == nil {
		return
	}
	hd, ok := d.Stages[string(trace.StageExecute)]
	if !ok {
		return
	}
	h := telemetry.HistogramFromDigest(hd)
	cur := sloCounts{total: h.Count(), bad: h.CountAbove(f.objective)}
	f.mu.Lock()
	prev := f.last[addr]
	if cur.total < prev.total {
		prev = sloCounts{}
	}
	f.last[addr] = cur
	f.mu.Unlock()
	f.slo.ObserveCounts(cur.total-prev.total, cur.bad-prev.bad)
}

func run(listen, metricsAddr string, ttl time.Duration, logJSON, pprofOn bool, tc telemetryConfig) error {
	if ttl <= 0 {
		return fmt.Errorf("-ttl must be positive, got %v", ttl)
	}
	if pprofOn && metricsAddr == "" {
		return fmt.Errorf("-pprof requires -metrics-addr")
	}
	var logger *obs.Logger
	if logJSON {
		logger = obs.NewLogger(os.Stderr, obs.LevelInfo)
	}
	flight := telemetry.NewFlightRecorder(tc.flightBytes)
	var feed *sloFeed
	if tc.sloObjective > 0 {
		slo, err := telemetry.NewSLO(telemetry.SLOConfig{
			Name:      "fleet-execute",
			Objective: tc.sloObjective,
			Goal:      tc.sloGoal,
			OnBurn: func(st telemetry.SLOStatus) {
				flight.Record(telemetry.FlightEntry{
					Reason: telemetry.FlightBurn,
					Note: fmt.Sprintf("slo %s burning: short %.2fx long %.2fx over objective %v",
						st.Name, st.ShortBurn, st.LongBurn, tc.sloObjective),
				})
				log.Printf("fleetd: slo %s burning (short %.2fx, long %.2fx)",
					st.Name, st.ShortBurn, st.LongBurn)
			},
		})
		if err != nil {
			return err
		}
		feed = &sloFeed{slo: slo, objective: tc.sloObjective, last: make(map[string]sloCounts)}
	} else if tc.sloGoal != 0 {
		return fmt.Errorf("-slo-goal requires -slo-objective")
	}
	metrics := obs.NewRegistry()
	obs.RegisterRuntimeStats(metrics)
	reg := fleet.NewRegistry(fleet.RegistryOptions{
		TTL: ttl, Metrics: metrics, Logger: logger,
		OnStats: feed.observe,
	})
	srv := fleet.NewRegistryServer(reg, logger)
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	log.Printf("fleetd: registry listening on %s (ttl=%v)", ln.Addr(), ttl)

	var metricsSrv *http.Server
	if metricsAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", metricsHandler(metrics, reg.Stats))
		mux.Handle("/fleet", telemetry.FleetHandler(reg.Stats))
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.Write([]byte("ok\n")) //nolint:errcheck // best-effort probe reply
		})
		mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			// The registry is ready as soon as it listens; like edged, a
			// burning SLO is reported in-body but keeps the probe green —
			// a slow fleet is degraded, not a reason to kill its registry.
			if feed != nil && feed.slo.Status().Burning {
				w.Write([]byte("ready (slo burning)\n")) //nolint:errcheck // best-effort probe reply
				return
			}
			w.Write([]byte("ready\n")) //nolint:errcheck // best-effort probe reply
		})
		if feed != nil {
			mux.Handle("/slo", feed.slo.Handler())
		} else {
			mux.HandleFunc("/slo", func(w http.ResponseWriter, _ *http.Request) {
				http.Error(w, "no SLO configured (-slo-objective)", http.StatusNotFound)
			})
		}
		mux.Handle("/debug/flight", flight.Handler())
		if pprofOn {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		metricsSrv = &http.Server{Addr: metricsAddr, Handler: mux}
		go func() {
			if err := metricsSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("fleetd: metrics server: %v", err)
			}
		}()
		log.Printf("fleetd: metrics on http://%s/metrics (fleet, slo, flight, healthz, readyz%s)",
			metricsAddr, map[bool]string{true: ", pprof", false: ""}[pprofOn])
	}
	defer func() {
		if metricsSrv != nil {
			metricsSrv.Close()
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case err := <-done:
		return err
	case s := <-sig:
		log.Printf("fleetd: %v, shutting down", s)
		if err := srv.Close(); err != nil {
			return err
		}
		return <-done
	}
}

// metricsHandler serves the registry's own counters plus the per-scrape
// fleet rollup in both exposition formats. The two registries have
// disjoint family names (fleet_* and runtime vs websnap_rollup_*), so the
// Prometheus payloads concatenate into one lint-clean exposition; the JSON
// shape keeps them under separate keys.
func metricsHandler(metrics *obs.Registry, snapshot func() []telemetry.ServerStats) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		rollup := telemetry.Rollup{Servers: snapshot()}.Registry()
		if obs.WantsPrometheus(r.URL.Query().Get("format"), r.Header.Get("Accept")) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := metrics.WritePrometheus(w); err != nil {
				log.Printf("fleetd: metrics handler: %v", err)
				return
			}
			if err := rollup.WritePrometheus(w); err != nil {
				log.Printf("fleetd: metrics handler: %v", err)
			}
			return
		}
		var own, roll bytes.Buffer
		if err := metrics.WriteJSON(&own); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if err := rollup.WriteJSON(&roll); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct { //nolint:errcheck // best-effort scrape reply
			Registry json.RawMessage `json:"registry"`
			Rollup   json.RawMessage `json:"rollup"`
		}{own.Bytes(), roll.Bytes()})
	}
}

// Command fleetd runs the fleet registry: the membership and
// blob-location authority edge servers heartbeat into and clients fetch
// placement views from. It speaks the same binary frame protocol as the
// offload path, keeps no durable state (membership is rebuilt by
// heartbeats within one TTL after a restart), and needs no coordination
// with the edge servers it tracks — a dead registry degrades clients to
// their cached last-known-good views, it never stops the data plane.
//
//	fleetd -listen :7090
//	fleetd -listen :7090 -ttl 10s -metrics-addr :7091 -log-json
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"websnap/internal/fleet"
	"websnap/internal/obs"
)

func main() {
	var (
		listen = flag.String("listen", ":7090", "address to listen on")
		ttl    = flag.Duration("ttl", fleet.DefaultTTL,
			"default registration lifetime; servers missing heartbeats this long are dropped")
		metricsAddr = flag.String("metrics-addr", "",
			"serve GET /metrics (Prometheus text) on this address (empty = disabled)")
		logJSON = flag.Bool("log-json", false,
			"emit structured JSON-line logs on stderr instead of plain text")
	)
	flag.Parse()
	if err := run(*listen, *metricsAddr, *ttl, *logJSON); err != nil {
		fmt.Fprintln(os.Stderr, "fleetd:", err)
		os.Exit(1)
	}
}

func run(listen, metricsAddr string, ttl time.Duration, logJSON bool) error {
	if ttl <= 0 {
		return fmt.Errorf("-ttl must be positive, got %v", ttl)
	}
	var logger *obs.Logger
	if logJSON {
		logger = obs.NewLogger(os.Stderr, obs.LevelInfo)
	}
	metrics := obs.NewRegistry()
	reg := fleet.NewRegistry(fleet.RegistryOptions{
		TTL: ttl, Metrics: metrics, Logger: logger,
	})
	srv := fleet.NewRegistryServer(reg, logger)
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	log.Printf("fleetd: registry listening on %s (ttl=%v)", ln.Addr(), ttl)

	var metricsSrv *http.Server
	if metricsAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			if err := metrics.WritePrometheus(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		metricsSrv = &http.Server{Addr: metricsAddr, Handler: mux}
		go func() {
			if err := metricsSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("fleetd: metrics server: %v", err)
			}
		}()
		log.Printf("fleetd: metrics on http://%s/metrics", metricsAddr)
	}
	defer func() {
		if metricsSrv != nil {
			metricsSrv.Close()
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case err := <-done:
		return err
	case s := <-sig:
		log.Printf("fleetd: %v, shutting down", s)
		if err := srv.Close(); err != nil {
			return err
		}
		return <-done
	}
}

// Command bench regenerates every table and figure of the paper's
// evaluation section as text tables:
//
//	bench -experiment fig6     inference time per configuration (Fig 6)
//	bench -experiment fig7     breakdown of the inference time (Fig 7)
//	bench -experiment fig8     partial inference sweep (Fig 8)
//	bench -experiment table1   VM-based installation overhead (Table 1)
//	bench -experiment fig1     GoogLeNet architecture walk-through (Fig 1)
//	bench -experiment featsize feature data size per offloading point (§IV.B)
//	bench -experiment load     edge scheduler under concurrent clients
//	bench -experiment engine   planned execution engine vs per-layer path
//	bench -experiment quantshift  optimal split per quality tier (float32 vs int8)
//	bench -experiment fleet    placement policies over multi-server fleets
//	bench -experiment mux      multiplexed streams vs one connection per session
//	bench -experiment pipeline K-way chain planner vs 2-way and local baselines
//	bench -experiment all      everything
//
// The engine experiment additionally writes BENCH_engine.json with the raw
// before/after numbers (ns/op, allocs/op, B/op); the fleet experiment
// writes BENCH_fleet.json with per-(policy, fleet size) tail latency,
// decision mix, and re-upload bytes saved; the mux experiment writes
// BENCH_mux.json with per-stream latency percentiles and connection
// counts for both topologies, measured over real sockets; the pipeline
// experiment writes BENCH_pipeline.json with per-policy latency
// percentiles and the chain/local decision mix per sweep cell.
//
// The load experiment takes the scheduler knobs -workers, -queue and
// -batch, mirroring cmd/edged's flags. The fleet experiment takes
// -fleet-clients, the number of roaming closed-loop sessions per cell.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"websnap/internal/obs"
	"websnap/internal/sim"
)

func main() {
	experiment := flag.String("experiment", "all",
		"experiment to run: fig1, fig6, fig6gpu, fig7, fig8, table1, featsize, sweep, load, engine, quantshift, fleet, mux, pipeline, all")
	format := flag.String("format", "table", "output format: table, csv")
	var lc sim.LoadConfig
	flag.IntVar(&lc.Workers, "workers", 0, "load experiment: scheduler worker count (0 = default)")
	flag.IntVar(&lc.QueueDepth, "queue", 0, "load experiment: admission queue depth (0 = default)")
	flag.IntVar(&lc.MaxBatch, "batch", 8, "load experiment: max coalesced batch size")
	flag.IntVar(&fleetClients, "fleet-clients", fleetClients, "fleet experiment: closed-loop sessions per cell")
	flag.IntVar(&pipelineRequests, "pipeline-requests", pipelineRequests, "pipeline experiment: simulated requests per sweep cell")
	flag.StringVar(&engineBaseline, "engine-baseline", engineBaseline,
		"engine experiment: previous BENCH_engine.json to gate against (fail on >10% wall-time regression)")
	flag.Parse()
	if err := run(*experiment, *format, lc, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run(experiment, format string, lc sim.LoadConfig, out io.Writer) error {
	if format != "table" && format != "csv" {
		return fmt.Errorf("unknown format %q (want table or csv)", format)
	}
	runners := map[string]func(io.Writer) error{
		"fig1":     fig1,
		"fig6":     fig6,
		"fig6gpu":  fig6gpu,
		"fig7":     fig7,
		"fig8":     fig8,
		"table1":   table1,
		"featsize": featsize,
		"sweep":    sweep,
		"load":     func(w io.Writer) error { return load(w, lc) },
		"engine":   engine,
		"fleet":    fleetExp,
		"mux":      muxExp,
		"pipeline": pipelineExp,
		"quantshift": func(w io.Writer) error {
			rows, err := sim.QuantShift()
			if err != nil {
				return err
			}
			fmt.Fprintln(w, "Quantized-split experiment: optimal denatured offloading point per quality tier")
			fmt.Fprintln(w, "Model\tQuality\tBest point\tClient exec\tServer exec\tTotal")
			for _, r := range rows {
				fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\n",
					r.Model, r.Precision, r.BestLabel, secs(r.ClientTime), secs(r.ServerTime), secs(r.Total))
			}
			return nil
		},
	}
	order := []string{"fig1", "fig6", "fig6gpu", "fig7", "fig8", "table1", "featsize", "sweep", "load", "engine", "quantshift", "fleet", "mux", "pipeline"}
	selected := []string{experiment}
	if experiment == "all" {
		selected = order
	}
	for _, name := range selected {
		fn, ok := runners[name]
		if !ok {
			return fmt.Errorf("unknown experiment %q (want one of %s, all)",
				name, strings.Join(order, ", "))
		}
		if format == "csv" {
			var buf strings.Builder
			if err := fn(&buf); err != nil {
				return err
			}
			if err := writeCSV(out, buf.String()); err != nil {
				return err
			}
			continue
		}
		w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		if err := fn(w); err != nil {
			return err
		}
		if err := w.Flush(); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	return nil
}

// writeCSV re-emits the tab-separated experiment rows as RFC-4180 CSV. The
// leading title line becomes a comment.
func writeCSV(out io.Writer, tabbed string) error {
	cw := csv.NewWriter(out)
	for i, line := range strings.Split(strings.TrimRight(tabbed, "\n"), "\n") {
		if i == 0 {
			if _, err := fmt.Fprintf(out, "# %s\n", strings.TrimSpace(line)); err != nil {
				return err
			}
			continue
		}
		fields := strings.Split(line, "\t")
		for j := range fields {
			fields[j] = strings.TrimSpace(fields[j])
		}
		if err := cw.Write(fields); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(out)
	return err
}

func secs(d time.Duration) string { return fmt.Sprintf("%.2f", d.Seconds()) }

func mb(b int64) string { return fmt.Sprintf("%.2f", float64(b)/(1<<20)) }

func fig6(w io.Writer) error {
	rows, err := sim.Fig6()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 6: Execution time of inference in three web apps (seconds)")
	fmt.Fprintln(w, "Model\tClient\tServer\tOffload(before ACK)\tOffload(after ACK)\tOffload(partial)")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\n",
			r.Model, secs(r.Client), secs(r.Server), secs(r.BeforeACK),
			secs(r.AfterACK), secs(r.Partial))
	}
	return nil
}

func fig6gpu(w io.Writer) error {
	rows, err := sim.Fig6GPU()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Projection: Fig 6 with a GPU-accelerated edge server (webGL ~80x, per the paper's §IV.A remark; seconds)")
	fmt.Fprintln(w, "Model\tClient\tServer\tOffload(before ACK)\tOffload(after ACK)\tOffload(partial)")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\n",
			r.Model, secs(r.Client), secs(r.Server), secs(r.BeforeACK),
			secs(r.AfterACK), secs(r.Partial))
	}
	return nil
}

func fig7(w io.Writer) error {
	bds, err := sim.Fig7()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 7: Breakdown of the inference time (seconds)")
	header := []string{"Model", "Config"}
	for _, p := range sim.AllPhases() {
		header = append(header, string(p))
	}
	header = append(header, "Total")
	fmt.Fprintln(w, strings.Join(header, "\t"))
	for _, b := range bds {
		row := []string{b.Model, b.Config}
		for _, p := range sim.AllPhases() {
			row = append(row, secs(b.Get(p)))
		}
		row = append(row, secs(b.Total()))
		fmt.Fprintln(w, strings.Join(row, "\t"))
	}
	return nil
}

func fig8(w io.Writer) error {
	rows, err := sim.Fig8()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 8: Inference time with partial inference at various offloading points (seconds)")
	fmt.Fprintln(w, "Model\tOffloading point\tClient exec\tTransfer\tServer exec\tSnapshot ovh\tTotal\tFeature (MB)")
	for _, r := range rows {
		for _, c := range r.Candidates {
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
				r.Model, c.Point.Label, secs(c.ClientTime), secs(c.TransferTime),
				secs(c.ServerTime), secs(c.SnapshotOverhead), secs(c.Total),
				mb(c.FeatureTextBytes))
		}
	}
	return nil
}

func table1(w io.Writer) error {
	rows, err := sim.Table1()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table 1: Overhead of VM-based installation for snapshot-based offloading")
	fmt.Fprintln(w, "Configuration\tMetric\tGoogLeNet\tAgeNet\tGenderNet")
	line := func(config, metric string, get func(sim.Table1Row) string) {
		cells := []string{config, metric}
		for _, r := range rows {
			cells = append(cells, get(r))
		}
		fmt.Fprintln(w, strings.Join(cells, "\t"))
	}
	line("VM synthesis", "Synthesis time (s)", func(r sim.Table1Row) string { return secs(r.SynthesisTime) })
	line("VM synthesis", "VM overlay (MB)", func(r sim.Table1Row) string { return mb(r.OverlayBytes) })
	line("Offloading (w/ pre-sending)", "Migration time (s)",
		func(r sim.Table1Row) string { return secs(r.MigrationWithPre) })
	line("Offloading (w/ pre-sending)", "Snapshot except feature data (MB)",
		func(r sim.Table1Row) string { return mb(r.SansFeatureWithPre) })
	line("Offloading (w/o pre-sending)", "Migration time (s)",
		func(r sim.Table1Row) string { return secs(r.MigrationWithoutPre) })
	line("Offloading (w/o pre-sending)", "Snapshot except feature data (MB)",
		func(r sim.Table1Row) string { return mb(r.SansFeatureWithoutPre) })
	return nil
}

func fig1(w io.Writer) error {
	rows, err := sim.Fig1()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 1: GoogLeNet architecture and feature data dimensions")
	fmt.Fprintln(w, "Layer\tType\tOutput shape\tFeature (KB)")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%v\t%d\n", r.Layer, r.Type, r.OutputShape, r.FeatureKB)
	}
	return nil
}

func sweep(w io.Writer) error {
	mbps := []float64{1, 2, 5, 10, 30, 100, 300, 1000}
	fmt.Fprintln(w, "Ablation: offloading configurations vs bandwidth (GoogLeNet, seconds)")
	fmt.Fprintln(w, "Bandwidth (Mbps)\tClient\tBefore ACK\tAfter ACK\tBest partial point\tBest partial")
	pts, err := sim.BandwidthSweep("googlenet", mbps)
	if err != nil {
		return err
	}
	for _, p := range pts {
		fmt.Fprintf(w, "%.0f\t%s\t%s\t%s\t%s\t%s\n",
			p.BandwidthMbps, secs(p.ClientOnly), secs(p.BeforeACK), secs(p.AfterACK),
			p.BestLabel, secs(p.BestTotal))
	}
	return nil
}

// loadClients is the default concurrency sweep of the load experiment.
var loadClients = []int{1, 2, 4, 8, 16, 32, 64}

func load(w io.Writer, lc sim.LoadConfig) error {
	if lc.MaxBatch < 1 {
		lc.MaxBatch = 1
	}
	pts, err := sim.LoadSweep("googlenet", loadClients, lc)
	if err != nil {
		return err
	}
	base := lc
	base.MaxBatch = 1
	basePts, err := sim.LoadSweep("googlenet", loadClients, base)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Load sweep: concurrent partial-offload clients, GoogLeNet @ %s (batch=%d vs batch=1)\n",
		sim.PartialPointUsed, lc.MaxBatch)
	fmt.Fprintln(w, "Clients\tOffloaded/s\tOffloaded/s (batch=1)\tTotal/s\tp50 (s)\tp99 (s)\tFallback %")
	for i, p := range pts {
		fmt.Fprintf(w, "%d\t%.2f\t%.2f\t%.2f\t%s\t%s\t%.0f\n",
			p.Clients, p.OffloadedThroughput, basePts[i].OffloadedThroughput,
			p.Throughput, secs(p.P50), secs(p.P99), 100*p.FallbackRate())
	}
	fmt.Fprintln(w)
	if err := stageBreakdown(w, pts); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return decisionMix(w, pts)
}

// decisionMix prints the audit view of the sweep: how the offload decision
// split between served-at-the-edge and overload fallback at each load, and
// how far the cost model's unloaded prediction drifted from the simulated
// latency (signed relative error; positive = slower than predicted).
func decisionMix(w io.Writer, pts []sim.LoadPoint) error {
	fmt.Fprintln(w, "Decision mix and cost-model prediction error per load")
	fmt.Fprintln(w, "Clients\tPartial\tFallback\tFallback %\tPred err p50\tPred err p95\t|Pred err| p50\t|Pred err| p95")
	for _, p := range pts {
		var partial, fallback int64
		for _, pc := range p.Mix {
			switch pc.Path {
			case obs.PathPartial:
				partial = pc.Count
			case obs.PathFallback:
				fallback = pc.Count
			}
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%.0f\t%+.2f\t%+.2f\t%.2f\t%.2f\n",
			p.Clients, partial, fallback, 100*p.FallbackRate(),
			p.PredErr.P50, p.PredErr.P95, p.PredErr.AbsP50, p.PredErr.AbsP95)
	}
	return nil
}

// stageBreakdown prints the per-stage latency percentiles of the offload
// pipeline at the lightest and heaviest points of the sweep. Percentiles —
// not means — are the point: the queue stage's p99 explodes at saturation
// long before its mean moves, and the fixed stages confirm they stay flat.
func stageBreakdown(w io.Writer, pts []sim.LoadPoint) error {
	lo, hi := pts[0], pts[len(pts)-1]
	ms := func(d time.Duration) string {
		return fmt.Sprintf("%.1f", float64(d)/float64(time.Millisecond))
	}
	fmt.Fprintf(w, "Per-stage latency (ms): %d clients vs %d clients\n", lo.Clients, hi.Clients)
	fmt.Fprintf(w, "Stage\tp50 (c=%d)\tp95 (c=%d)\tp99 (c=%d)\tp50 (c=%d)\tp95 (c=%d)\tp99 (c=%d)\n",
		lo.Clients, lo.Clients, lo.Clients, hi.Clients, hi.Clients, hi.Clients)
	hiStages := make(map[string][3]time.Duration, len(hi.Stages))
	for _, s := range hi.Stages {
		hiStages[string(s.Stage)] = [3]time.Duration{s.P50, s.P95, s.P99}
	}
	for _, s := range lo.Stages {
		h := hiStages[string(s.Stage)]
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
			s.Stage, ms(s.P50), ms(s.P95), ms(s.P99), ms(h[0]), ms(h[1]), ms(h[2]))
	}
	return nil
}

func featsize(w io.Writer) error {
	rows, err := sim.FeatureSizes()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Feature data size at each offloading point (snapshot text, MB) — §IV.B")
	fmt.Fprintln(w, "Model\tOffloading point\tFeature (MB)")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%s\n", r.Model, r.Label, mb(r.TextBytes))
	}
	return nil
}

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"websnap/internal/costmodel"
	"websnap/internal/models"
	"websnap/internal/netem"
	"websnap/internal/nn"
	"websnap/internal/partition"
	"websnap/internal/tensor"
)

// The engine experiment quantifies the compute-kernel work: it runs each
// model's forward pass three ways — chaining the standalone per-layer
// Forward path (the shape of the pre-refactor engine: a fresh output
// tensor per layer, per-call shape rederivation), through the cached
// float32 ExecPlan (pooled arena, in-place steps, packed blocked GEMM and
// direct convolution), and through the calibrated int8 quantized plan —
// and reports ns/op, allocs/op and B/op for each, plus the derived
// speedups. Results also land in BENCH_engine.json next to the working
// directory for tracking across commits; -engine-baseline turns the run
// into a regression gate against a previous BENCH_engine.json.

// engineJSONFile is where the machine-readable results are written
// (a variable so tests can redirect it away from the working tree).
var engineJSONFile = "BENCH_engine.json"

// engineBaseline, when non-empty, names a previous BENCH_engine.json to
// gate against: the run fails if any model's planned (or int8) wall time
// regresses by more than engineRegressionTolerance.
var engineBaseline = ""

// engineRegressionTolerance is the allowed fractional wall-time growth
// versus the baseline before the gate fails (0.10 = 10%).
const engineRegressionTolerance = 0.10

// engineGateMinNs is the smallest baseline wall time the gate judges.
// Sub-millisecond rows (tinynet) jitter past the tolerance from scheduler
// noise alone, so they are reported but not gated.
const engineGateMinNs = 1e6

type engineStats struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

type engineRow struct {
	Model  string      `json:"model"`
	Before engineStats `json:"before"`
	After  engineStats `json:"after"`
	// Int8 is the calibrated quantized plan's cost (same input, same
	// plan cache discipline as After).
	Int8 engineStats `json:"int8"`
	// Speedup is before/after wall time (>1 means the plan is faster).
	Speedup float64 `json:"speedup"`
	// Int8Speedup is after/int8 wall time (>1 means the quantized plan
	// beats the float32 plan).
	Int8Speedup float64 `json:"int8_speedup"`
	// AllocReduction is the fraction of per-inference allocations the
	// planned engine eliminates (1 = all of them).
	AllocReduction float64 `json:"alloc_reduction"`
}

type engineReport struct {
	Experiment string      `json:"experiment"`
	Rows       []engineRow `json:"rows"`
}

// measureEngine times iters calls of f after one untimed warmup (which
// absorbs plan compilation and pool priming), reading allocation counters
// around the loop.
func measureEngine(iters int, f func() error) (engineStats, error) {
	if err := f(); err != nil {
		return engineStats{}, err
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := f(); err != nil {
			return engineStats{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := float64(iters)
	return engineStats{
		NsPerOp:     float64(elapsed.Nanoseconds()) / n,
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / n,
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / n,
	}, nil
}

func engine(w io.Writer) error {
	// Read the baseline before the run overwrites engineJSONFile.
	var baseline *engineReport
	if engineBaseline != "" {
		data, err := os.ReadFile(engineBaseline)
		if err != nil {
			return fmt.Errorf("engine: read baseline: %w", err)
		}
		baseline = &engineReport{}
		if err := json.Unmarshal(data, baseline); err != nil {
			return fmt.Errorf("engine: parse baseline %s: %w", engineBaseline, err)
		}
	}
	cases := []struct {
		name  string
		iters int
	}{
		{"tinynet", 100},
		{"agenet", 5},
		{"googlenet", 5},
	}
	fmt.Fprintln(w, "Engine comparison: per-layer path vs planned execution vs int8 plan (per inference)")
	fmt.Fprintln(w, "Model\tPath\tms/op\tallocs/op\tKB/op\tSpeedup\tAlloc cut")
	var rows []engineRow
	for _, tc := range cases {
		var (
			net *nn.Network
			err error
		)
		if tc.name == "tinynet" {
			net, err = models.BuildTinyNet("tinynet", 3)
		} else {
			net, err = models.Build(tc.name)
		}
		if err != nil {
			return err
		}
		in, err := tensor.New(net.InputShape()...)
		if err != nil {
			return err
		}
		for i := range in.Data() {
			in.Data()[i] = float32(i%255)/255 - 0.5
		}
		before, err := measureEngine(tc.iters, func() error {
			cur := in
			for _, l := range net.Layers() {
				out, err := l.Forward(cur)
				if err != nil {
					return err
				}
				cur = out
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("engine %s before: %w", tc.name, err)
		}
		after, err := measureEngine(tc.iters, func() error {
			_, err := net.Forward(in)
			return err
		})
		if err != nil {
			return fmt.Errorf("engine %s after: %w", tc.name, err)
		}
		int8, err := measureEngine(tc.iters, func() error {
			_, err := net.ForwardPrec(in, nn.PrecInt8)
			return err
		})
		if err != nil {
			return fmt.Errorf("engine %s int8: %w", tc.name, err)
		}
		row := engineRow{Model: tc.name, Before: before, After: after, Int8: int8}
		if after.NsPerOp > 0 {
			row.Speedup = before.NsPerOp / after.NsPerOp
		}
		if int8.NsPerOp > 0 {
			row.Int8Speedup = after.NsPerOp / int8.NsPerOp
		}
		if before.AllocsPerOp > 0 {
			row.AllocReduction = 1 - after.AllocsPerOp/before.AllocsPerOp
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%s\tper-layer\t%.2f\t%.0f\t%.0f\t\t\n",
			tc.name, before.NsPerOp/1e6, before.AllocsPerOp, before.BytesPerOp/1024)
		fmt.Fprintf(w, "%s\tplanned\t%.2f\t%.0f\t%.0f\t%.2fx\t%.0f%%\n",
			tc.name, after.NsPerOp/1e6, after.AllocsPerOp, after.BytesPerOp/1024,
			row.Speedup, row.AllocReduction*100)
		fmt.Fprintf(w, "%s\tint8\t%.2f\t%.0f\t%.0f\t%.2fx\t\n",
			tc.name, int8.NsPerOp/1e6, int8.AllocsPerOp, int8.BytesPerOp/1024,
			row.Int8Speedup)
	}
	data, err := json.MarshalIndent(engineReport{Experiment: "engine", Rows: rows}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(engineJSONFile, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("engine: write %s: %w", engineJSONFile, err)
	}
	fmt.Fprintf(w, "(raw numbers written to %s)\n", engineJSONFile)
	if err := enginePartition(w); err != nil {
		return err
	}
	if baseline != nil {
		return engineGate(w, baseline, rows)
	}
	return nil
}

// engineGate compares the fresh run against the baseline report and fails
// on any wall-time regression beyond the tolerance. Models absent from
// the baseline (or baseline fields that are zero, as with a pre-int8
// baseline's int8 stats) are skipped rather than failed, so the gate
// survives schema growth.
func engineGate(w io.Writer, baseline *engineReport, rows []engineRow) error {
	base := make(map[string]engineRow, len(baseline.Rows))
	for _, r := range baseline.Rows {
		base[r.Model] = r
	}
	var regressions []string
	check := func(model, path string, baseNs, gotNs float64) {
		if baseNs < engineGateMinNs || gotNs <= 0 {
			return
		}
		growth := gotNs/baseNs - 1
		if growth > engineRegressionTolerance {
			regressions = append(regressions,
				fmt.Sprintf("%s/%s: %.1fms -> %.1fms (+%.1f%%, tolerance %.0f%%)",
					model, path, baseNs/1e6, gotNs/1e6, growth*100, engineRegressionTolerance*100))
		}
	}
	for _, r := range rows {
		b, ok := base[r.Model]
		if !ok {
			continue
		}
		check(r.Model, "planned", b.After.NsPerOp, r.After.NsPerOp)
		check(r.Model, "int8", b.Int8.NsPerOp, r.Int8.NsPerOp)
	}
	if len(regressions) > 0 {
		for _, s := range regressions {
			fmt.Fprintln(w, "REGRESSION:", s)
		}
		return fmt.Errorf("engine: %d wall-time regression(s) vs %s", len(regressions), engineBaseline)
	}
	fmt.Fprintf(w, "regression gate vs %s: ok (tolerance %.0f%%)\n",
		engineBaseline, engineRegressionTolerance*100)
	return nil
}

// enginePartition recalibrates GoogLeNet's partition-point latencies on
// this host at both quality tiers. The float32 client device is profiled
// through the planned engine (costmodel.Profile times each plan step with
// the production kernels) and the int8 client through the quantized plan
// (costmodel.ProfilePrec), so both columns reflect measured kernels; the
// server keeps the paper's ~10x client/server throughput ratio with the
// calibrated 2x int8 factor, and the network stays at 30 Mbps. Comparing
// the two chosen splits shows the DynO effect: the client gains more from
// int8 than the server, so the optimal cut moves toward the back of the
// network.
func enginePartition(w io.Writer) error {
	net, err := models.Build(models.GoogLeNet)
	if err != nil {
		return err
	}
	client, err := costmodel.Profile("this-host", net, 2)
	if err != nil {
		return err
	}
	server := client
	server.Name = "this-host-server-10x"
	server.FLOPSByType = make(map[nn.LayerType]float64, len(client.FLOPSByType))
	for typ, fl := range client.FLOPSByType {
		server.FLOPSByType[typ] = fl * 10
	}
	server.DefaultFLOPS = client.DefaultFLOPS * 10
	server.LayerOverhead = costmodel.ServerX86.LayerOverhead
	server.SnapshotFixed = costmodel.ServerX86.SnapshotFixed
	server.SnapshotBytesPerSec = costmodel.ServerX86.SnapshotBytesPerSec
	server.Int8Speedup = costmodel.ServerX86.Int8Speedup

	plan, err := partition.Analyze(net, partition.Config{
		Client:  client,
		Server:  server,
		Network: netem.WiFi30Mbps,
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\nGoogLeNet partition points, client profiled through plans on this host (float32)")
	printPartition(w, plan)

	// Quantized table: the client is re-profiled through the int8 plan
	// (its measured throughputs already include the quantization gains,
	// so its Int8Speedup stays unset); the server applies its calibrated
	// int8 factor via Precision.
	clientQ, err := costmodel.ProfilePrec("this-host-int8", net, 2, nn.PrecInt8)
	if err != nil {
		return err
	}
	clientQ.LayerOverhead = client.LayerOverhead
	clientQ.SnapshotFixed = client.SnapshotFixed
	clientQ.SnapshotBytesPerSec = client.SnapshotBytesPerSec
	planQ, err := partition.Analyze(net, partition.Config{
		Client:    clientQ,
		Server:    server,
		Network:   netem.WiFi30Mbps,
		Precision: nn.PrecInt8,
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\nGoogLeNet partition points at the int8 quality tier (same host, same link)")
	printPartition(w, planQ)

	if best, err := plan.Choose(true); err == nil {
		if bestQ, errQ := planQ.Choose(true); errQ == nil {
			fmt.Fprintf(w, "\nchosen split: float32=%s int8=%s\n", best.Point.Label, bestQ.Point.Label)
		}
	}
	return nil
}

func printPartition(w io.Writer, plan partition.Plan) {
	fmt.Fprintln(w, "Point\tClient\tTransfer\tServer\tTotal")
	for _, c := range plan.Candidates {
		fmt.Fprintf(w, "%s\t%.2fs\t%.2fs\t%.2fs\t%.2fs\n",
			c.Point.Label, c.ClientTime.Seconds(), c.TransferTime.Seconds(),
			c.ServerTime.Seconds(), c.Total.Seconds())
	}
}

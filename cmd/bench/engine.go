package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"websnap/internal/costmodel"
	"websnap/internal/models"
	"websnap/internal/netem"
	"websnap/internal/nn"
	"websnap/internal/partition"
	"websnap/internal/tensor"
)

// The engine experiment quantifies the planned-execution refactor: it runs
// each model's forward pass twice — once chaining the standalone per-layer
// Forward path (the shape of the pre-refactor engine: a fresh output
// tensor per layer, per-call shape rederivation) and once through the
// cached ExecPlan (pooled arena, in-place steps, shared GEMM) — and
// reports ns/op, allocs/op and B/op for both, plus the derived speedup
// and allocation reduction. Results also land in BENCH_engine.json next
// to the working directory for tracking across commits.

// engineJSONFile is where the machine-readable results are written
// (a variable so tests can redirect it away from the working tree).
var engineJSONFile = "BENCH_engine.json"

type engineStats struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

type engineRow struct {
	Model  string      `json:"model"`
	Before engineStats `json:"before"`
	After  engineStats `json:"after"`
	// Speedup is before/after wall time (>1 means the plan is faster).
	Speedup float64 `json:"speedup"`
	// AllocReduction is the fraction of per-inference allocations the
	// planned engine eliminates (1 = all of them).
	AllocReduction float64 `json:"alloc_reduction"`
}

// measureEngine times iters calls of f after one untimed warmup (which
// absorbs plan compilation and pool priming), reading allocation counters
// around the loop.
func measureEngine(iters int, f func() error) (engineStats, error) {
	if err := f(); err != nil {
		return engineStats{}, err
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := f(); err != nil {
			return engineStats{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := float64(iters)
	return engineStats{
		NsPerOp:     float64(elapsed.Nanoseconds()) / n,
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / n,
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / n,
	}, nil
}

func engine(w io.Writer) error {
	cases := []struct {
		name  string
		iters int
	}{
		{"tinynet", 100},
		{"agenet", 5},
		{"googlenet", 5},
	}
	fmt.Fprintln(w, "Engine comparison: per-layer path vs planned execution (per inference)")
	fmt.Fprintln(w, "Model\tPath\tms/op\tallocs/op\tKB/op\tSpeedup\tAlloc cut")
	var rows []engineRow
	for _, tc := range cases {
		var (
			net *nn.Network
			err error
		)
		if tc.name == "tinynet" {
			net, err = models.BuildTinyNet("tinynet", 3)
		} else {
			net, err = models.Build(tc.name)
		}
		if err != nil {
			return err
		}
		in, err := tensor.New(net.InputShape()...)
		if err != nil {
			return err
		}
		for i := range in.Data() {
			in.Data()[i] = float32(i%255)/255 - 0.5
		}
		before, err := measureEngine(tc.iters, func() error {
			cur := in
			for _, l := range net.Layers() {
				out, err := l.Forward(cur)
				if err != nil {
					return err
				}
				cur = out
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("engine %s before: %w", tc.name, err)
		}
		after, err := measureEngine(tc.iters, func() error {
			_, err := net.Forward(in)
			return err
		})
		if err != nil {
			return fmt.Errorf("engine %s after: %w", tc.name, err)
		}
		row := engineRow{Model: tc.name, Before: before, After: after}
		if after.NsPerOp > 0 {
			row.Speedup = before.NsPerOp / after.NsPerOp
		}
		if before.AllocsPerOp > 0 {
			row.AllocReduction = 1 - after.AllocsPerOp/before.AllocsPerOp
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%s\tper-layer\t%.2f\t%.0f\t%.0f\t\t\n",
			tc.name, before.NsPerOp/1e6, before.AllocsPerOp, before.BytesPerOp/1024)
		fmt.Fprintf(w, "%s\tplanned\t%.2f\t%.0f\t%.0f\t%.2fx\t%.0f%%\n",
			tc.name, after.NsPerOp/1e6, after.AllocsPerOp, after.BytesPerOp/1024,
			row.Speedup, row.AllocReduction*100)
	}
	data, err := json.MarshalIndent(struct {
		Experiment string      `json:"experiment"`
		Rows       []engineRow `json:"rows"`
	}{"engine", rows}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(engineJSONFile, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("engine: write %s: %w", engineJSONFile, err)
	}
	fmt.Fprintf(w, "(raw numbers written to %s)\n", engineJSONFile)
	return enginePartition(w)
}

// enginePartition recalibrates GoogLeNet's partition-point latencies on
// this host: the client device is profiled through the planned engine
// (costmodel.Profile times each plan step with the production kernels),
// the server keeps the paper's ~10x client/server throughput ratio, and
// the network stays at the calibrated 30 Mbps profile.
func enginePartition(w io.Writer) error {
	net, err := models.Build(models.GoogLeNet)
	if err != nil {
		return err
	}
	client, err := costmodel.Profile("this-host", net, 2)
	if err != nil {
		return err
	}
	server := client
	server.Name = "this-host-server-10x"
	server.FLOPSByType = make(map[nn.LayerType]float64, len(client.FLOPSByType))
	for typ, fl := range client.FLOPSByType {
		server.FLOPSByType[typ] = fl * 10
	}
	server.DefaultFLOPS = client.DefaultFLOPS * 10
	server.LayerOverhead = costmodel.ServerX86.LayerOverhead
	server.SnapshotFixed = costmodel.ServerX86.SnapshotFixed
	server.SnapshotBytesPerSec = costmodel.ServerX86.SnapshotBytesPerSec

	plan, err := partition.Analyze(net, partition.Config{
		Client:  client,
		Server:  server,
		Network: netem.WiFi30Mbps,
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\nGoogLeNet partition points, client profiled through plans on this host")
	fmt.Fprintln(w, "Point\tClient\tTransfer\tServer\tTotal")
	for _, c := range plan.Candidates {
		fmt.Fprintf(w, "%s\t%.2fs\t%.2fs\t%.2fs\t%.2fs\n",
			c.Point.Label, c.ClientTime.Seconds(), c.TransferTime.Seconds(),
			c.ServerTime.Seconds(), c.Total.Seconds())
	}
	return nil
}

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"websnap/internal/client"
	"websnap/internal/edge"
	"websnap/internal/mlapp"
	"websnap/internal/models"
	"websnap/internal/nn"
	"websnap/internal/snapshot"
	"websnap/internal/webapp"
)

// The mux experiment measures stream multiplexing end to end over real
// sockets: a live edge server serves N concurrent offload sessions twice
// — once in the pre-mux topology (one TCP connection per session) and
// once with every session as a logical stream on a single negotiated
// connection (HintMuxV1). Both cells run identical snapshots through the
// production client and server code; the table reports per-request tail
// latency and the connection count each topology needs.

// muxJSONFile is where the machine-readable results are written
// (a variable so tests can redirect it away from the working tree).
var muxJSONFile = "BENCH_mux.json"

// muxStreamCounts is the concurrency axis of the sweep; the acceptance
// bar of the mux refactor is the 64-stream point on one connection.
var muxStreamCounts = []int{8, 32, 64}

// muxEventsPerStream is how many offload round trips each session drives.
var muxEventsPerStream = 6

type muxRow struct {
	Mode     string `json:"mode"` // conn-per-session | mux-one-conn
	Streams  int    `json:"streams"`
	Conns    int    `json:"connections"`
	Requests int    `json:"requests"`
	// Per-request latency percentiles across every stream, milliseconds.
	P50Millis float64 `json:"p50_ms"`
	P95Millis float64 `json:"p95_ms"`
	P99Millis float64 `json:"p99_ms"`
	// WallMillis is the whole cell's start-to-drain time.
	WallMillis float64 `json:"wall_ms"`
	Throughput float64 `json:"requests_per_sec"`
}

const muxBenchApp = "mux-bench"

func muxExp(w io.Writer) error {
	cat := webapp.NewCatalog()
	if err := cat.Add(mlapp.FullRegistry()); err != nil {
		return err
	}
	srv, err := edge.NewServer(edge.Config{
		Catalog: cat, Installed: true,
		Workers: 4, QueueDepth: 4 * 64, MaxBatch: 8,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	served := make(chan struct{})
	go func() { defer close(served); srv.Serve(ln) }()
	defer func() { srv.Close(); <-served }()
	addr := ln.Addr().String()

	model, err := models.BuildTinyNet("tiny", 3)
	if err != nil {
		return err
	}
	encoded, err := muxSnapshot(model)
	if err != nil {
		return err
	}
	// Pre-send once: the server's session store is shared across
	// connections, so both cells measure pure offload round trips.
	setup, err := client.Dial(addr)
	if err != nil {
		return err
	}
	if err := setup.PreSendModel(muxBenchApp, "tiny", model, false); err != nil {
		setup.Close()
		return err
	}
	setup.Close()

	var rows []muxRow
	for _, streams := range muxStreamCounts {
		base, err := muxCell("conn-per-session", streams, func() ([]*client.Conn, error) {
			conns := make([]*client.Conn, streams)
			for i := range conns {
				c, err := client.Dial(addr)
				if err != nil {
					return conns, err
				}
				conns[i] = c
			}
			return conns, nil
		}, encoded)
		if err != nil {
			return err
		}
		mux, err := muxCell("mux-one-conn", streams, func() ([]*client.Conn, error) {
			c, err := client.Dial(addr)
			if err != nil {
				return nil, err
			}
			ok, err := c.NegotiateMux(streams)
			if err != nil || !ok {
				c.Close()
				return nil, fmt.Errorf("mux negotiation failed: ok=%v err=%v", ok, err)
			}
			shared := make([]*client.Conn, streams)
			for i := range shared {
				shared[i] = c
			}
			return shared, nil
		}, encoded)
		if err != nil {
			return err
		}
		rows = append(rows, base, mux)
	}

	fmt.Fprintf(w, "Mux sweep: %d offloads per session, conn-per-session vs one multiplexed connection (TinyNet)\n", muxEventsPerStream)
	fmt.Fprintln(w, "Mode\tStreams\tConns\tRequests\tp50 (ms)\tp95 (ms)\tp99 (ms)\tWall (ms)\tReq/s")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.2f\t%.2f\t%.2f\t%.1f\t%.0f\n",
			r.Mode, r.Streams, r.Conns, r.Requests,
			r.P50Millis, r.P95Millis, r.P99Millis, r.WallMillis, r.Throughput)
	}
	data, err := json.MarshalIndent(struct {
		Experiment string   `json:"experiment"`
		Rows       []muxRow `json:"rows"`
	}{"mux", rows}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(muxJSONFile, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("mux: write %s: %w", muxJSONFile, err)
	}
	fmt.Fprintf(w, "(raw numbers written to %s)\n", muxJSONFile)
	return nil
}

// muxSnapshot builds the encoded snapshot every session replays: a full
// TinyNet app with its image loaded and the inference click dispatched.
func muxSnapshot(model *nn.Network) ([]byte, error) {
	app, err := mlapp.NewFullApp(muxBenchApp, "tiny", model, []string{"x", "y", "z"})
	if err != nil {
		return nil, err
	}
	if err := mlapp.LoadImage(app, mlapp.SyntheticImage(3*16*16, 1)); err != nil {
		return nil, err
	}
	app.DispatchEvent(webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick})
	snap, err := snapshot.Capture(app, snapshot.Options{})
	if err != nil {
		return nil, err
	}
	return snap.Encode()
}

// muxCell runs one (mode, streams) cell: dial() supplies each session's
// connection (distinct conns or one shared mux conn), then every session
// drives muxEventsPerStream offloads concurrently.
func muxCell(mode string, streams int, dial func() ([]*client.Conn, error), encoded []byte) (muxRow, error) {
	conns, err := dial()
	if err != nil {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
		return muxRow{}, err
	}
	unique := map[*client.Conn]bool{}
	for _, c := range conns {
		unique[c] = true
	}
	defer func() {
		for c := range unique {
			c.Close()
		}
	}()

	latencies := make([][]time.Duration, streams)
	errs := make(chan error, streams)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			for ev := 0; ev < muxEventsPerStream; ev++ {
				t0 := time.Now()
				result, _, err := conns[i].OffloadSnapshot(muxBenchApp, encoded, false)
				if err != nil {
					errs <- fmt.Errorf("%s stream %d event %d: %w", mode, i, ev, err)
					return
				}
				if len(result) == 0 {
					errs <- fmt.Errorf("%s stream %d event %d: empty result", mode, i, ev)
					return
				}
				latencies[i] = append(latencies[i], time.Since(t0))
			}
		}(i)
	}
	wall0 := time.Now()
	close(start)
	wg.Wait()
	wall := time.Since(wall0)
	close(errs)
	for err := range errs {
		return muxRow{}, err
	}

	var all []time.Duration
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		idx := int(p * float64(len(all)-1))
		return float64(all[idx]) / float64(time.Millisecond)
	}
	return muxRow{
		Mode: mode, Streams: streams, Conns: len(unique),
		Requests:  len(all),
		P50Millis: pct(0.50), P95Millis: pct(0.95), P99Millis: pct(0.99),
		WallMillis: float64(wall) / float64(time.Millisecond),
		Throughput: float64(len(all)) / wall.Seconds(),
	}, nil
}

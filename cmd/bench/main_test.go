package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"websnap/internal/sim"
)

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run("fig99", "table", sim.LoadConfig{}, &sb); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestRunSingleExperiments(t *testing.T) {
	tests := []struct {
		experiment string
		contains   []string
	}{
		{"fig1", []string{"Figure 1", "pool1", "[64 56 56]"}},
		{"fig6", []string{"Figure 6", "googlenet", "agenet", "gendernet"}},
		{"fig6gpu", []string{"GPU-accelerated", "googlenet"}},
		{"fig7", []string{"Figure 7", "Snapshot Capture (C)"}},
		{"fig8", []string{"Figure 8", "1st_pool"}},
		{"table1", []string{"Table 1", "VM overlay (MB)", "pre-sending"}},
		{"featsize", []string{"Feature data size", "1st_conv"}},
		{"sweep", []string{"Ablation", "30"}},
		{"load", []string{"Load sweep", "Fallback %"}},
	}
	for _, tt := range tests {
		t.Run(tt.experiment, func(t *testing.T) {
			var sb strings.Builder
			if err := run(tt.experiment, "table", sim.LoadConfig{MaxBatch: 8}, &sb); err != nil {
				t.Fatalf("run(%s): %v", tt.experiment, err)
			}
			out := sb.String()
			for _, want := range tt.contains {
				if !strings.Contains(out, want) {
					t.Errorf("output of %s missing %q", tt.experiment, want)
				}
			}
		})
	}
}

func TestRunCSVFormat(t *testing.T) {
	var sb strings.Builder
	if err := run("fig6", "csv", sim.LoadConfig{}, &sb); err != nil {
		t.Fatalf("csv: %v", err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "# Figure 6") {
		t.Errorf("csv should start with a comment title, got %.40q", out)
	}
	if !strings.Contains(out, "googlenet,") {
		t.Errorf("csv rows missing: %.200q", out)
	}
	if err := run("fig6", "yaml", sim.LoadConfig{}, &sb); err == nil {
		t.Error("unknown format should fail")
	}
}

// TestRunFleet runs the fleet experiment at smoke scale and checks both
// the table and the BENCH_fleet.json schema the CI artifact promises:
// >= 2 placement policies x >= 3 fleet sizes, p95/p99 latency and
// re-upload bytes saved per cell.
func TestRunFleet(t *testing.T) {
	oldFile, oldClients := fleetJSONFile, fleetClients
	fleetJSONFile = filepath.Join(t.TempDir(), "BENCH_fleet.json")
	fleetClients = 64
	defer func() { fleetJSONFile, fleetClients = oldFile, oldClients }()
	var sb strings.Builder
	if err := run("fleet", "table", sim.LoadConfig{}, &sb); err != nil {
		t.Fatalf("run(fleet): %v", err)
	}
	for _, want := range []string{"Fleet sweep", "hash", "load", "Saved (MB)", "Exec per server"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("table output missing %q", want)
		}
	}
	data, err := os.ReadFile(fleetJSONFile)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Experiment string           `json:"experiment"`
		Rows       []sim.FleetPoint `json:"rows"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("BENCH_fleet.json: %v", err)
	}
	if doc.Experiment != "fleet" {
		t.Errorf("experiment = %q, want fleet", doc.Experiment)
	}
	policies := map[string]bool{}
	sizes := map[int]bool{}
	for _, r := range doc.Rows {
		policies[r.Policy] = true
		sizes[r.Servers] = true
		if r.P95Millis <= 0 || r.P99Millis <= 0 {
			t.Errorf("row %s/%d: missing tail latency: %+v", r.Policy, r.Servers, r)
		}
		if r.ReuploadBytesSaved <= 0 {
			t.Errorf("row %s/%d: no re-upload bytes saved recorded", r.Policy, r.Servers)
		}
	}
	if len(policies) < 2 || len(sizes) < 3 {
		t.Errorf("sweep covers %d policies x %d fleet sizes, want >= 2 x >= 3", len(policies), len(sizes))
	}
}

// TestRunMux runs the mux experiment at smoke scale and checks the table
// and BENCH_mux.json schema: both topologies per stream count, tail
// latency per cell, and the connection-count contrast the tentpole
// promises (conn-per-session uses N, mux uses exactly 1).
func TestRunMux(t *testing.T) {
	oldFile, oldCounts, oldEvents := muxJSONFile, muxStreamCounts, muxEventsPerStream
	muxJSONFile = filepath.Join(t.TempDir(), "BENCH_mux.json")
	muxStreamCounts = []int{4, 8}
	muxEventsPerStream = 2
	defer func() { muxJSONFile, muxStreamCounts, muxEventsPerStream = oldFile, oldCounts, oldEvents }()
	var sb strings.Builder
	if err := run("mux", "table", sim.LoadConfig{}, &sb); err != nil {
		t.Fatalf("run(mux): %v", err)
	}
	for _, want := range []string{"Mux sweep", "conn-per-session", "mux-one-conn"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("table output missing %q", want)
		}
	}
	data, err := os.ReadFile(muxJSONFile)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Experiment string   `json:"experiment"`
		Rows       []muxRow `json:"rows"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("BENCH_mux.json: %v", err)
	}
	if doc.Experiment != "mux" {
		t.Errorf("experiment = %q, want mux", doc.Experiment)
	}
	if len(doc.Rows) != 2*len(muxStreamCounts) {
		t.Fatalf("rows = %d, want %d (both modes per stream count)", len(doc.Rows), 2*len(muxStreamCounts))
	}
	for _, r := range doc.Rows {
		if r.P50Millis <= 0 || r.P99Millis <= 0 {
			t.Errorf("row %s/%d: missing latency percentiles: %+v", r.Mode, r.Streams, r)
		}
		if r.Requests != r.Streams*muxEventsPerStream {
			t.Errorf("row %s/%d: %d requests, want %d", r.Mode, r.Streams, r.Requests, r.Streams*muxEventsPerStream)
		}
		switch r.Mode {
		case "conn-per-session":
			if r.Conns != r.Streams {
				t.Errorf("baseline at %d streams used %d conns, want one per session", r.Streams, r.Conns)
			}
		case "mux-one-conn":
			if r.Conns != 1 {
				t.Errorf("mux cell at %d streams used %d conns, want exactly 1", r.Streams, r.Conns)
			}
		default:
			t.Errorf("unknown mode %q", r.Mode)
		}
	}
}

// TestRunPipeline runs the pipeline experiment at smoke scale and checks
// the table and BENCH_pipeline.json schema: local, 2-way, and chain rows
// per sweep cell, latency percentiles, and a sane decision mix.
func TestRunPipeline(t *testing.T) {
	oldFile, oldRequests := pipelineJSONFile, pipelineRequests
	pipelineJSONFile = filepath.Join(t.TempDir(), "BENCH_pipeline.json")
	pipelineRequests = 20
	defer func() { pipelineJSONFile, pipelineRequests = oldFile, oldRequests }()
	var sb strings.Builder
	if err := run("pipeline", "table", sim.LoadConfig{}, &sb); err != nil {
		t.Fatalf("run(pipeline): %v", err)
	}
	for _, want := range []string{"Pipeline sweep", "local", "2way", "chain", "Mean cuts"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("table output missing %q", want)
		}
	}
	data, err := os.ReadFile(pipelineJSONFile)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Experiment string              `json:"experiment"`
		Rows       []sim.PipelinePoint `json:"rows"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("BENCH_pipeline.json: %v", err)
	}
	if doc.Experiment != "pipeline" {
		t.Errorf("experiment = %q, want pipeline", doc.Experiment)
	}
	policies := map[string]bool{}
	depths := map[int]bool{}
	for _, r := range doc.Rows {
		policies[r.Policy] = true
		if r.Policy == sim.PipelinePolicyChain {
			depths[r.Depth] = true
		}
		if r.P50Millis <= 0 || r.P95Millis <= 0 || r.P99Millis <= 0 {
			t.Errorf("row %s/%d: missing latency percentiles: %+v", r.Policy, r.Depth, r)
		}
		if r.Policy != sim.PipelinePolicyLocal {
			if sum := r.RemoteShare + r.LocalShare; sum < 0.999 || sum > 1.001 {
				t.Errorf("row %s/%d: decision mix sums to %f", r.Policy, r.Depth, sum)
			}
		}
	}
	if len(policies) < 3 || len(depths) < 3 {
		t.Errorf("sweep covers %d policies x %d chain depths, want >= 3 x >= 3", len(policies), len(depths))
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	old := engineJSONFile
	engineJSONFile = filepath.Join(t.TempDir(), "BENCH_engine.json")
	oldFleet := fleetJSONFile
	fleetJSONFile = filepath.Join(t.TempDir(), "BENCH_fleet.json")
	oldMux := muxJSONFile
	muxJSONFile = filepath.Join(t.TempDir(), "BENCH_mux.json")
	oldPipeline, oldPipelineReq := pipelineJSONFile, pipelineRequests
	pipelineJSONFile = filepath.Join(t.TempDir(), "BENCH_pipeline.json")
	pipelineRequests = 20
	defer func() {
		engineJSONFile, fleetJSONFile, muxJSONFile = old, oldFleet, oldMux
		pipelineJSONFile, pipelineRequests = oldPipeline, oldPipelineReq
	}()
	var sb strings.Builder
	if err := run("all", "table", sim.LoadConfig{MaxBatch: 8}, &sb); err != nil {
		t.Fatalf("run(all): %v", err)
	}
	for _, want := range []string{"Figure 1", "Figure 6", "Figure 7", "Figure 8", "Table 1", "Engine comparison", "partition points", "Fleet sweep", "Mux sweep", "Pipeline sweep"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("missing %q", want)
		}
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"websnap/internal/fleet"
	"websnap/internal/obs"
	"websnap/internal/sim"
)

// The fleet experiment sweeps placement policies across fleet sizes: N
// heterogeneous edge servers (worker counts cycling 2/1/4) serving
// closed-loop full-offload clients that roam mid-session. Both policies
// run the production placement code (weighted rendezvous over registry
// views with live load hints); the cells differ only in what the policy
// decided. Alongside tail latency and the decision mix, the sweep reports
// the content-addressed sharing win: wireless model bytes the blob index
// saved versus a fleet where every (session, server) encounter re-uploads.

// fleetJSONFile is where the machine-readable results are written
// (a variable so tests can redirect it away from the working tree).
var fleetJSONFile = "BENCH_fleet.json"

// fleetClients is the closed-loop session count per cell; the
// -fleet-clients flag overrides it (CI's smoke run uses a few hundred).
var fleetClients = 1000

// fleetServerCounts is the fleet-size axis of the sweep.
var fleetServerCounts = []int{2, 4, 8}

func fleetExp(w io.Writer) error {
	policies := []fleet.Policy{fleet.PolicyHash, fleet.PolicyLoadWeighted}
	pts, err := sim.FleetSweep("googlenet", fleetServerCounts, fleetClients,
		policies, sim.FleetConfig{RoamEvery: 3})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Fleet sweep: placement policies over heterogeneous fleets, GoogLeNet full offload, %d roaming clients\n", fleetClients)
	fmt.Fprintln(w, "Policy\tServers\tTotal/s\tp50 (ms)\tp95 (ms)\tp99 (ms)\tFallback %\tHandoffs\tModel up (MB)\tSaved (MB)\tPeer fetch (MB)")
	for _, p := range pts {
		fmt.Fprintf(w, "%s\t%d\t%.2f\t%.0f\t%.0f\t%.0f\t%.1f\t%d\t%s\t%s\t%s\n",
			p.Policy, p.Servers, p.Throughput, p.P50Millis, p.P95Millis, p.P99Millis,
			100*p.FallbackRate(), p.Handoffs, mb(p.ClientModelUploadBytes),
			mb(p.ReuploadBytesSaved), mb(p.PeerFetchBytes))
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Decision mix and placement spread per cell")
	fmt.Fprintln(w, "Policy\tServers\tFull\tFallback\tExec per server")
	for _, p := range pts {
		var full, fallback int64
		for _, pc := range p.Mix {
			switch pc.Path {
			case obs.PathFull:
				full = pc.Count
			case obs.PathFallback:
				fallback = pc.Count
			}
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%v\n", p.Policy, p.Servers, full, fallback, p.ExecPerServer)
	}
	data, err := json.MarshalIndent(struct {
		Experiment string           `json:"experiment"`
		Rows       []sim.FleetPoint `json:"rows"`
	}{"fleet", pts}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(fleetJSONFile, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("fleet: write %s: %w", fleetJSONFile, err)
	}
	fmt.Fprintf(w, "(raw numbers written to %s)\n", fleetJSONFile)
	return nil
}

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"websnap/internal/sim"
)

// The pipeline experiment sweeps the K-way chain planner: chain depth ×
// client uplink bandwidth × mean per-server queueing load. Each request
// re-runs the cut-set DP against freshly drawn exponential queue delays —
// the same live-hint loop the runtime chain executor runs — and takes the
// better of the planned chain and local execution. The local and legacy
// 2-way rows are the baselines the chain rows are read against.

// pipelineJSONFile is where the machine-readable results are written
// (a variable so tests can redirect it away from the working tree).
var pipelineJSONFile = "BENCH_pipeline.json"

// pipelineRequests is the per-cell request count; the -pipeline-requests
// flag overrides it (CI's smoke run uses a few dozen).
var pipelineRequests = 200

func pipelineExp(w io.Writer) error {
	pts, err := sim.PipelineSweep(sim.PipelineConfig{Requests: pipelineRequests})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Pipeline sweep: K-way chain planner vs 2-way and local, GoogLeNet, %d requests per cell\n", pipelineRequests)
	fmt.Fprintln(w, "Policy\tDepth\tMbps\tLoad (ms)\tp50 (ms)\tp95 (ms)\tp99 (ms)\tRemote %\tLocal %\tDegraded %\tMean cuts")
	for _, p := range pts {
		fmt.Fprintf(w, "%s\t%d\t%g\t%g\t%.0f\t%.0f\t%.0f\t%.1f\t%.1f\t%.1f\t%.2f\n",
			p.Policy, p.Depth, p.BandwidthMbps, p.LoadMillis,
			p.P50Millis, p.P95Millis, p.P99Millis,
			100*p.RemoteShare, 100*p.LocalShare, 100*p.DegradedShare, p.MeanCuts)
	}
	data, err := json.MarshalIndent(struct {
		Experiment string              `json:"experiment"`
		Rows       []sim.PipelinePoint `json:"rows"`
	}{"pipeline", pts}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(pipelineJSONFile, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("pipeline: write %s: %w", pipelineJSONFile, err)
	}
	fmt.Fprintf(w, "(raw numbers written to %s)\n", pipelineJSONFile)
	return nil
}

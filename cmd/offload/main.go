// Command offload runs one of the benchmark ML web apps on the "client
// device" against an edge server, with a chosen offloading strategy and
// optional bandwidth shaping, and reports the measured wall-clock times —
// the runnable counterpart of the paper's Fig 6 configurations.
//
//	offload -server 127.0.0.1:7080 -model tinynet -mode full
//	offload -server 127.0.0.1:7080 -model googlenet -mode partial -split 1st_pool -bandwidth 30
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"websnap"
	"websnap/internal/client"
	"websnap/internal/core"
	"websnap/internal/imageio"
	"websnap/internal/mlapp"
	"websnap/internal/models"
	"websnap/internal/netem"
	"websnap/internal/nn"
	"websnap/internal/obs"
	"websnap/internal/tensor"
)

func main() {
	var (
		server    = flag.String("server", "127.0.0.1:7080", "edge server address")
		modelName = flag.String("model", "tinynet",
			"model: tinynet, googlenet, agenet, gendernet")
		mode      = flag.String("mode", "full", "offloading mode: local, full, partial, auto")
		split     = flag.String("split", "", "partial-inference point (e.g. 1st_pool); empty = dynamic")
		bandwidth = flag.Float64("bandwidth", 0, "shape the link to this many Mbit/s (0 = unshaped)")
		preSend   = flag.Bool("presend", true, "pre-send the model when the app starts")
		delta     = flag.Bool("delta", false, "ship repeated offloads as delta snapshots")
		compress  = flag.Bool("compress", false, "DEFLATE-compress snapshot bodies on the wire")
		imagePath = flag.String("image", "", "classify this PNG/JPEG file (empty = synthetic pixels)")
		runs      = flag.Int("runs", 1, "number of inference runs")
		metrics   = flag.String("metrics-addr", "",
			"serve client-side metrics on this address (e.g. 127.0.0.1:7081) while running")
		auditLog = flag.String("audit-log", "",
			"append one JSON line per offload decision to this file (- = stderr)")
		quality = flag.String("quality", "",
			"model quality tier: float32 (default) or int8 (calibrated quantized kernels)")
	)
	flag.Parse()
	if err := run(*server, *modelName, *mode, *split, *bandwidth, *preSend, *delta, *compress, *imagePath, *runs, *metrics, *auditLog, *quality); err != nil {
		fmt.Fprintln(os.Stderr, "offload:", err)
		os.Exit(1)
	}
}

// newAuditor builds the session's decision auditor: counters in reg,
// optionally teeing each decision as a JSON line to auditLog.
func newAuditor(reg *obs.Registry, auditLog string) (*obs.Auditor, func(), error) {
	opts := obs.AuditorOptions{Registry: reg, Keep: 64}
	cleanup := func() {}
	switch auditLog {
	case "":
	case "-":
		opts.Sink = os.Stderr
	default:
		f, err := os.OpenFile(auditLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, err
		}
		opts.Sink = f
		cleanup = func() { f.Close() }
	}
	return obs.NewAuditor(opts), cleanup, nil
}

// serveMetrics exposes the client-side registry and audit summary on addr:
// Prometheus text or a JSON summary, negotiated like the edge server's
// /metrics.
func serveMetrics(addr string, reg *obs.Registry, audit *obs.Auditor) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if obs.WantsPrometheus(r.URL.Query().Get("format"), r.Header.Get("Accept")) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			reg.WritePrometheus(w)
			return
		}
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(audit.Summary()); err != nil {
			http.Error(w, "metrics encoding failed", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		buf.WriteTo(w)
	})
	fmt.Printf("client metrics on http://%s/metrics\n", ln.Addr())
	go http.Serve(ln, mux)
	return nil
}

// printAudit dumps the decision mix and prediction-error quantiles
// accumulated over the run.
func printAudit(w io.Writer, audit *obs.Auditor) {
	sum := audit.Summary()
	if sum.Total == 0 {
		return
	}
	fmt.Fprintf(w, "decisions: total=%d", sum.Total)
	for _, pc := range sum.Mix {
		fmt.Fprintf(w, " %s=%d", pc.Path, pc.Count)
	}
	fmt.Fprintln(w)
	if pe := sum.PredErr; pe.Count > 0 {
		fmt.Fprintf(w, "prediction error (relative): n=%d p50=%+.2f p95=%+.2f |p50|=%.2f |p95|=%.2f\n",
			pe.Count, pe.P50, pe.P95, pe.AbsP50, pe.AbsP95)
	}
}

func buildModel(name string) (*nn.Network, []string, error) {
	if name == "tinynet" {
		m, err := models.BuildTinyNet("tinynet", 3)
		return m, []string{"cat", "dog", "bird"}, err
	}
	m, err := models.Build(name)
	if err != nil {
		return nil, nil, err
	}
	out, err := m.OutputShape()
	if err != nil {
		return nil, nil, err
	}
	labels := make([]string, out[len(out)-1])
	for i := range labels {
		labels[i] = fmt.Sprintf("label_%04d", i)
	}
	return m, labels, nil
}

func parseMode(s string) (core.Mode, error) {
	switch s {
	case "local":
		return core.ModeLocal, nil
	case "full":
		return core.ModeFull, nil
	case "partial":
		return core.ModePartial, nil
	case "auto":
		return core.ModeAuto, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", s)
	}
}

func run(server, modelName, modeStr, split string, bandwidthMbps float64, preSend, delta, compress bool, imagePath string, runs int, metricsAddr, auditLog, quality string) error {
	model, labels, err := buildModel(modelName)
	if err != nil {
		return err
	}
	mode, err := parseMode(modeStr)
	if err != nil {
		return err
	}
	prec, err := nn.ParsePrecision(quality)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	audit, closeAudit, err := newAuditor(reg, auditLog)
	if err != nil {
		return err
	}
	defer closeAudit()
	if metricsAddr != "" {
		if err := serveMetrics(metricsAddr, reg, audit); err != nil {
			return err
		}
	}
	cfg := core.SessionConfig{
		AppID:       fmt.Sprintf("offload-cli-%d", os.Getpid()),
		ModelName:   modelName,
		Model:       model,
		Labels:      labels,
		Mode:        mode,
		PreSend:     preSend,
		SplitLabel:  split,
		EnableDelta: delta,
		Compress:    compress,
		Quality:     prec,
		Audit:       audit,
	}
	if mode != core.ModeLocal {
		raw, err := net.Dial("tcp", server)
		if err != nil {
			return fmt.Errorf("dial %s: %w", server, err)
		}
		if bandwidthMbps > 0 {
			raw = netem.Shape(raw, netem.Profile{
				BandwidthBitsPerSec: bandwidthMbps * 1e6,
				Latency:             2 * time.Millisecond,
			})
		}
		conn := client.NewConn(raw)
		defer conn.Close()
		cfg.Conn = conn
	}
	start := time.Now()
	session, err := core.NewSession(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("session: model=%s mode=%s quality=%s", modelName, session.Mode(), prec)
	if session.Mode() == core.ModePartial {
		fmt.Printf(" split=%s", session.SplitLabel())
	}
	fmt.Println()
	if preSend && mode != core.ModeLocal {
		if err := session.WaitForModelUpload(); err != nil {
			return err
		}
		fmt.Printf("model upload + ACK: %v\n", time.Since(start).Round(time.Millisecond))
	}
	volume := tensor.Volume(model.InputShape())
	var fileImg websnap.Float32Array
	if imagePath != "" {
		fileImg, err = imageio.Load(imagePath, model.InputShape(), imageio.Options{})
		if err != nil {
			return err
		}
		fmt.Printf("loaded %s (%d pixels)\n", imagePath, len(fileImg))
	}
	for i := 0; i < runs; i++ {
		img := fileImg
		if img == nil {
			img = mlapp.SyntheticImage(volume, uint64(i+1))
		}
		t0 := time.Now()
		result, err := session.Classify(img)
		if err != nil {
			return err
		}
		fmt.Printf("run %d: result=%q inference=%v\n", i+1, result,
			time.Since(t0).Round(time.Millisecond))
	}
	st := session.Stats()
	fmt.Printf("stats: offloads=%d deltas=%d fallbacks=%d lastSnapshot=%dB lastResult=%dB inlineModel=%dB\n",
		st.Offloads, st.DeltaOffloads, st.LocalFallbacks, st.LastSnapshotBytes,
		st.LastResultBytes, st.LastInlineModelBytes)
	printAudit(os.Stdout, audit)
	return nil
}

// Command offload runs one of the benchmark ML web apps on the "client
// device" against an edge server, with a chosen offloading strategy and
// optional bandwidth shaping, and reports the measured wall-clock times —
// the runnable counterpart of the paper's Fig 6 configurations.
//
//	offload -server 127.0.0.1:7080 -model tinynet -mode full
//	offload -server 127.0.0.1:7080 -model googlenet -mode partial -split 1st_pool -bandwidth 30
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"websnap"
	"websnap/internal/client"
	"websnap/internal/core"
	"websnap/internal/imageio"
	"websnap/internal/mlapp"
	"websnap/internal/models"
	"websnap/internal/netem"
	"websnap/internal/nn"
	"websnap/internal/tensor"
)

func main() {
	var (
		server    = flag.String("server", "127.0.0.1:7080", "edge server address")
		modelName = flag.String("model", "tinynet",
			"model: tinynet, googlenet, agenet, gendernet")
		mode      = flag.String("mode", "full", "offloading mode: local, full, partial, auto")
		split     = flag.String("split", "", "partial-inference point (e.g. 1st_pool); empty = dynamic")
		bandwidth = flag.Float64("bandwidth", 0, "shape the link to this many Mbit/s (0 = unshaped)")
		preSend   = flag.Bool("presend", true, "pre-send the model when the app starts")
		delta     = flag.Bool("delta", false, "ship repeated offloads as delta snapshots")
		compress  = flag.Bool("compress", false, "DEFLATE-compress snapshot bodies on the wire")
		imagePath = flag.String("image", "", "classify this PNG/JPEG file (empty = synthetic pixels)")
		runs      = flag.Int("runs", 1, "number of inference runs")
	)
	flag.Parse()
	if err := run(*server, *modelName, *mode, *split, *bandwidth, *preSend, *delta, *compress, *imagePath, *runs); err != nil {
		fmt.Fprintln(os.Stderr, "offload:", err)
		os.Exit(1)
	}
}

func buildModel(name string) (*nn.Network, []string, error) {
	if name == "tinynet" {
		m, err := models.BuildTinyNet("tinynet", 3)
		return m, []string{"cat", "dog", "bird"}, err
	}
	m, err := models.Build(name)
	if err != nil {
		return nil, nil, err
	}
	out, err := m.OutputShape()
	if err != nil {
		return nil, nil, err
	}
	labels := make([]string, out[len(out)-1])
	for i := range labels {
		labels[i] = fmt.Sprintf("label_%04d", i)
	}
	return m, labels, nil
}

func parseMode(s string) (core.Mode, error) {
	switch s {
	case "local":
		return core.ModeLocal, nil
	case "full":
		return core.ModeFull, nil
	case "partial":
		return core.ModePartial, nil
	case "auto":
		return core.ModeAuto, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", s)
	}
}

func run(server, modelName, modeStr, split string, bandwidthMbps float64, preSend, delta, compress bool, imagePath string, runs int) error {
	model, labels, err := buildModel(modelName)
	if err != nil {
		return err
	}
	mode, err := parseMode(modeStr)
	if err != nil {
		return err
	}
	cfg := core.SessionConfig{
		AppID:       fmt.Sprintf("offload-cli-%d", os.Getpid()),
		ModelName:   modelName,
		Model:       model,
		Labels:      labels,
		Mode:        mode,
		PreSend:     preSend,
		SplitLabel:  split,
		EnableDelta: delta,
		Compress:    compress,
	}
	if mode != core.ModeLocal {
		raw, err := net.Dial("tcp", server)
		if err != nil {
			return fmt.Errorf("dial %s: %w", server, err)
		}
		if bandwidthMbps > 0 {
			raw = netem.Shape(raw, netem.Profile{
				BandwidthBitsPerSec: bandwidthMbps * 1e6,
				Latency:             2 * time.Millisecond,
			})
		}
		conn := client.NewConn(raw)
		defer conn.Close()
		cfg.Conn = conn
	}
	start := time.Now()
	session, err := core.NewSession(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("session: model=%s mode=%s", modelName, session.Mode())
	if session.Mode() == core.ModePartial {
		fmt.Printf(" split=%s", session.SplitLabel())
	}
	fmt.Println()
	if preSend && mode != core.ModeLocal {
		if err := session.WaitForModelUpload(); err != nil {
			return err
		}
		fmt.Printf("model upload + ACK: %v\n", time.Since(start).Round(time.Millisecond))
	}
	volume := tensor.Volume(model.InputShape())
	var fileImg websnap.Float32Array
	if imagePath != "" {
		fileImg, err = imageio.Load(imagePath, model.InputShape(), imageio.Options{})
		if err != nil {
			return err
		}
		fmt.Printf("loaded %s (%d pixels)\n", imagePath, len(fileImg))
	}
	for i := 0; i < runs; i++ {
		img := fileImg
		if img == nil {
			img = mlapp.SyntheticImage(volume, uint64(i+1))
		}
		t0 := time.Now()
		result, err := session.Classify(img)
		if err != nil {
			return err
		}
		fmt.Printf("run %d: result=%q inference=%v\n", i+1, result,
			time.Since(t0).Round(time.Millisecond))
	}
	st := session.Stats()
	fmt.Printf("stats: offloads=%d deltas=%d fallbacks=%d lastSnapshot=%dB lastResult=%dB inlineModel=%dB\n",
		st.Offloads, st.DeltaOffloads, st.LocalFallbacks, st.LastSnapshotBytes,
		st.LastResultBytes, st.LastInlineModelBytes)
	return nil
}

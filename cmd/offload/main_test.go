package main

import (
	"testing"

	"websnap/internal/core"
)

func TestParseMode(t *testing.T) {
	tests := []struct {
		in      string
		want    core.Mode
		wantErr bool
	}{
		{"local", core.ModeLocal, false},
		{"full", core.ModeFull, false},
		{"partial", core.ModePartial, false},
		{"auto", core.ModeAuto, false},
		{"warp", 0, true},
	}
	for _, tt := range tests {
		got, err := parseMode(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseMode(%q) err = %v", tt.in, err)
			continue
		}
		if !tt.wantErr && got != tt.want {
			t.Errorf("parseMode(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestBuildModel(t *testing.T) {
	m, labels, err := buildModel("tinynet")
	if err != nil {
		t.Fatalf("tinynet: %v", err)
	}
	if m.Name() != "tinynet" || len(labels) != 3 {
		t.Errorf("tinynet = %q with %d labels", m.Name(), len(labels))
	}
	m, labels, err = buildModel("gendernet")
	if err != nil {
		t.Fatalf("gendernet: %v", err)
	}
	if len(labels) != 2 {
		t.Errorf("gendernet labels = %d, want 2", len(labels))
	}
	if _, _, err := buildModel("nope"); err == nil {
		t.Error("unknown model should fail")
	}
}

func TestRunLocalMode(t *testing.T) {
	// Local mode needs no server; one run end to end.
	if err := run("", "tinynet", "local", "", 0, false, false, false, "", 1, "", "", ""); err != nil {
		t.Fatalf("local run: %v", err)
	}
}

// Age/gender estimation at the edge — the paper's evaluation scenario: two
// DNN web apps (AgeNet and GenderNet, Levi–Hassner CNNs) running on an
// embedded client, both offloading inference to the same nearby edge
// server after pre-sending their ~44 MB models.
//
// The example runs the real networks (real tensor math), so expect a few
// seconds per inference: that is precisely the workload the paper offloads.
//
//	go run ./examples/agegender
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"websnap"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	server, err := websnap.NewEdgeServer(nil)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- server.Serve(ln) }()
	defer func() {
		server.Close()
		<-done
	}()

	ageLabels := []string{"0-2", "4-6", "8-13", "15-20", "25-32", "38-43", "48-53", "60+"}
	genderLabels := []string{"male", "female"}

	age, err := newApp(ln.Addr().String(), websnap.AgeNet, websnap.BuildAgeNet, ageLabels)
	if err != nil {
		return err
	}
	gender, err := newApp(ln.Addr().String(), websnap.GenderNet, websnap.BuildGenderNet, genderLabels)
	if err != nil {
		return err
	}

	// Both apps pre-send their models concurrently while the user is
	// still choosing a photo.
	upload := time.Now()
	if err := age.WaitForModelUpload(); err != nil {
		return err
	}
	if err := gender.WaitForModelUpload(); err != nil {
		return err
	}
	fmt.Printf("models pre-sent and ACKed in %v (~44 MB each, loopback)\n",
		time.Since(upload).Round(time.Millisecond))

	// The user loads a photo and taps "analyze" in both apps.
	photo := facePhoto()
	for _, s := range []struct {
		name    string
		session *websnap.Session
	}{{"age", age}, {"gender", gender}} {
		start := time.Now()
		result, err := s.session.Classify(photo)
		if err != nil {
			return fmt.Errorf("%s app: %w", s.name, err)
		}
		st := s.session.Stats()
		fmt.Printf("%-6s app: %-8q  inference %6v at the edge server, snapshot %5d B up / %4d B down\n",
			s.name, result, time.Since(start).Round(time.Millisecond),
			st.LastSnapshotBytes, st.LastResultBytes)
	}
	return nil
}

func newApp(addr, name string, build func() (*websnap.Network, error), labels []string) (*websnap.Session, error) {
	model, err := build()
	if err != nil {
		return nil, err
	}
	conn, err := websnap.Dial(addr)
	if err != nil {
		return nil, err
	}
	return websnap.NewSession(websnap.SessionConfig{
		AppID:     name + "-app",
		ModelName: name,
		Model:     model,
		Labels:    labels,
		Mode:      websnap.ModeFull,
		Conn:      conn,
		PreSend:   true,
	})
}

// facePhoto synthesizes a deterministic 227x227 RGB "face photo".
func facePhoto() websnap.Float32Array {
	const n = 3 * 227 * 227
	img := make(websnap.Float32Array, n)
	s := uint64(20180702)
	for i := range img {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		img[i] = float32(s%256) / 255
	}
	return img
}

// Repeated offloading with delta snapshots — the paper's §VI future work,
// implemented: "how to simplify the snapshot creation/transmission/
// restoration for future offloading using the data and code left at the
// server from the first offloading."
//
// A camera app classifies a stream of frames. The first offload ships a
// full snapshot; every subsequent offload ships only the state that changed
// (the new frame and the previous result), cutting the bytes on the wire.
//
//	go run ./examples/repeated_offload
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"websnap"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	server, err := websnap.NewEdgeServer(nil)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- server.Serve(ln) }()
	defer func() {
		server.Close()
		<-done
	}()

	model, err := websnap.BuildTinyNet("tinynet", 3)
	if err != nil {
		return err
	}
	conn, err := websnap.Dial(ln.Addr().String())
	if err != nil {
		return err
	}
	defer conn.Close()
	session, err := websnap.NewSession(websnap.SessionConfig{
		AppID:       "camera-feed",
		ModelName:   "tinynet",
		Model:       model,
		Labels:      []string{"cat", "dog", "bird"},
		Mode:        websnap.ModeFull,
		Conn:        conn,
		PreSend:     true,
		EnableDelta: true, // §VI: reuse the state left at the server
	})
	if err != nil {
		return err
	}
	if err := session.WaitForModelUpload(); err != nil {
		return err
	}

	// Apps accumulate state that does NOT change between inferences:
	// here a precomputed color palette the UI uses. Full snapshots
	// re-serialize it on every offload; deltas ship it once.
	palette := make(websnap.Float32Array, 30000)
	for i := range palette {
		palette[i] = float32(i%4096) / 4096
	}
	if err := session.App().SetGlobal("uiPalette", palette); err != nil {
		return err
	}

	fmt.Println("frame  result  wire-bytes  kind")
	prevDeltas := 0
	for frame := uint64(1); frame <= 5; frame++ {
		img := cameraFrame(frame)
		start := time.Now()
		result, err := session.Classify(img)
		if err != nil {
			return err
		}
		st := session.Stats()
		kind := "full snapshot"
		if st.DeltaOffloads > prevDeltas {
			kind = "delta"
		}
		prevDeltas = st.DeltaOffloads
		fmt.Printf("%5d  %-6s  %10d  %-13s (%v)\n",
			frame, result, st.LastSnapshotBytes, kind,
			time.Since(start).Round(time.Millisecond))
	}
	st := session.Stats()
	fmt.Printf("\ntotals: %d offloads, %d as deltas, %d fallbacks\n",
		st.Offloads, st.DeltaOffloads, st.DeltaFallbacks)
	return nil
}

// cameraFrame fabricates frame n of the synthetic camera stream.
func cameraFrame(n uint64) websnap.Float32Array {
	img := make(websnap.Float32Array, 3*16*16)
	s := n*0x9E3779B97F4A7C15 + 1
	for i := range img {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		img[i] = float32(s%256) / 255
	}
	return img
}

// On-demand installation (paper §III.B.3): a mobile client meets an edge
// server that does not have the offloading system installed. The client
// ships a compressed VM overlay (offloading server + browser + libraries);
// the edge server synthesizes a VM instance from it on top of its base
// image, and from then on serves snapshot offloads normally.
//
//	go run ./examples/ondemand_install
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"websnap"
	"websnap/internal/vmsynth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// An edge server WITHOUT the offloading system pre-installed. It
	// only has a base VM image and a synthesizer.
	catalog, err := websnap.DefaultCatalog()
	if err != nil {
		return err
	}
	server, err := websnap.NewEdgeServerWithConfig(websnap.EdgeConfig{
		Catalog:   catalog,
		Installed: false,
		Synthesizer: vmsynth.NewSynthesizer(
			vmsynth.BaseImage{Name: "ubuntu-12.04", Bytes: 8 << 30}),
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- server.Serve(ln) }()
	defer func() {
		server.Close()
		<-done
	}()

	model, err := websnap.BuildTinyNet("tinynet", 3)
	if err != nil {
		return err
	}
	conn, err := websnap.Dial(ln.Addr().String())
	if err != nil {
		return err
	}
	defer conn.Close()

	// Offloading against the virgin server fails: nothing is installed.
	if err := conn.PreSendModel("demo", "tinynet", model, false); err != nil {
		fmt.Printf("before installation, the edge server refuses: %v\n", err)
	}

	// Build the VM overlay. Real deployments ship ~100 MB (browser +
	// libs + server + model); the demo scales the blobs down 100x so it
	// finishes instantly while exercising the same code path (real flate
	// compression, real synthesis).
	const scale = 100
	overlay, err := vmsynth.BuildOverlay(
		syntheticComponent("browser", vmsynth.BrowserBytes/scale),
		syntheticComponent("libs", vmsynth.LibraryBytes/scale),
		syntheticComponent("offload-server", vmsynth.ServerBytes/scale),
	)
	if err != nil {
		return err
	}
	fmt.Printf("VM overlay: %d components, %.1f MB raw -> %.1f MB compressed\n",
		len(overlay.Components), float64(overlay.RawBytes)/(1<<20),
		float64(overlay.CompressedBytes)/(1<<20))

	start := time.Now()
	synthTime, err := conn.InstallOverlay("ubuntu-12.04", overlay.Compressed)
	if err != nil {
		return err
	}
	fmt.Printf("VM synthesis done in %v wall clock (modeled synthesis cost: %v)\n",
		time.Since(start).Round(time.Millisecond), synthTime)

	// Now the standard snapshot-based offloading flow works.
	session, err := websnap.NewSession(websnap.SessionConfig{
		AppID:     "demo",
		ModelName: "tinynet",
		Model:     model,
		Labels:    []string{"cat", "dog", "bird"},
		Mode:      websnap.ModeFull,
		Conn:      conn,
		PreSend:   true,
	})
	if err != nil {
		return err
	}
	if err := session.WaitForModelUpload(); err != nil {
		return err
	}
	img := make(websnap.Float32Array, 3*16*16)
	for i := range img {
		img[i] = float32(i%251) / 251
	}
	result, err := session.Classify(img)
	if err != nil {
		return err
	}
	fmt.Printf("after installation, offloaded inference works: %q\n", result)
	return nil
}

// syntheticComponent fabricates component bytes with binary-like (0.38)
// compressibility: repeated symbol blocks mixed with incompressible noise.
func syntheticComponent(name string, size int64) vmsynth.Component {
	data := make([]byte, size)
	s := uint64(len(name)) + 7
	const block = 1024
	for i := range data {
		if (i/block)%8 < 5 { // 5/8 highly-redundant blocks, 3/8 noise
			data[i] = byte(i % 16)
		} else {
			s ^= s >> 12
			s ^= s << 25
			s ^= s >> 27
			data[i] = byte(s)
		}
	}
	return vmsynth.Component{
		Name: name, RawBytes: size,
		CompressRatio: vmsynth.BinaryCompressRatio, Data: data,
	}
}

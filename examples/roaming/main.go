// Roaming between edge servers — the paper's §I mobility claim, live: "when
// a mobile client moves to a different service area, snapshot-based
// offloading can readily work on a new edge server since it has no
// dependence on the previous server."
//
// The client offloads to the nearest of two edge servers; when that server
// disappears mid-session, the roamer detects it, switches to the other one,
// the offloader re-pre-sends its model, and inference continues.
//
//	go run ./examples/roaming
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"websnap"
	"websnap/internal/client"
	"websnap/internal/mlapp"
	"websnap/internal/roam"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func startEdge() (addr string, shutdown func(), err error) {
	srv, err := websnap.NewEdgeServer(nil)
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	return ln.Addr().String(), func() {
		srv.Close()
		<-done
	}, nil
}

func run() error {
	addrA, shutdownA, err := startEdge()
	if err != nil {
		return err
	}
	addrB, shutdownB, err := startEdge()
	if err != nil {
		return err
	}
	defer shutdownB()
	fmt.Printf("edge servers: A=%s (current area)  B=%s (next area)\n", addrA, addrB)

	// Bias probes so A wins while alive — "A is the nearby hotspot".
	roamer, err := roam.New(roam.Config{
		Servers: []string{addrA, addrB},
		Probe: func(addr string) (time.Duration, error) {
			start := time.Now()
			c, err := net.DialTimeout("tcp", addr, time.Second)
			if err != nil {
				return 0, err
			}
			c.Close()
			if addr == addrA {
				return time.Since(start), nil
			}
			return time.Since(start) + 50*time.Millisecond, nil
		},
	})
	if err != nil {
		return err
	}
	conn, err := roamer.Connect()
	if err != nil {
		return err
	}
	defer roamer.Close()
	cur, _ := roamer.Current()
	fmt.Printf("connected to %s\n", cur)

	model, err := websnap.BuildTinyNet("tinynet", 3)
	if err != nil {
		return err
	}
	app, err := mlapp.NewFullApp("roaming-demo", "tinynet", model, []string{"cat", "dog", "bird"})
	if err != nil {
		return err
	}
	off, err := client.NewOffloader(app, conn, client.Options{
		OffloadEventTypes: []string{mlapp.EventClick},
		Models:            []client.ModelToSend{{Name: "tinynet", Net: model}},
	})
	if err != nil {
		return err
	}
	off.StartPreSend()
	if err := off.WaitForAcks(); err != nil {
		return err
	}

	classify := func(seed uint64) (string, error) {
		if err := mlapp.LoadImage(app, mlapp.SyntheticImage(3*16*16, seed)); err != nil {
			return "", err
		}
		app.DispatchEvent(websnap.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick})
		if _, err := off.Run(10); err != nil {
			return "", err
		}
		return mlapp.Result(app), nil
	}

	result, err := classify(1)
	if err != nil {
		return err
	}
	fmt.Printf("inference on A: %q\n", result)

	fmt.Println("\n-- client leaves A's service area (server A gone) --")
	shutdownA()
	newConn, switched, err := roamer.Evaluate()
	if err != nil {
		return err
	}
	cur, _ = roamer.Current()
	fmt.Printf("roamer switched=%v, now on %s\n", switched, cur)
	if err := off.Retarget(newConn); err != nil {
		return err
	}
	if err := off.WaitForAcks(); err != nil {
		return err
	}
	fmt.Println("model re-pre-sent to B (no state carried over — none needed)")

	result, err = classify(1)
	if err != nil {
		return err
	}
	fmt.Printf("inference on B: %q (same input, same answer)\n", result)
	return nil
}

// Partial inference for privacy (paper §III.B.2): run the front of the DNN
// on the client so that only denatured feature data — never the photo —
// reaches the edge server, pre-send only the rear model, and then show why
// that matters by mounting the hill-climbing reconstruction attack the
// paper cites, with and without the withheld front model.
//
//	go run ./examples/partial_privacy
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"websnap"
	"websnap/internal/mlapp"
	"websnap/internal/models"
	"websnap/internal/privacy"
	"websnap/internal/tensor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	server, err := websnap.NewEdgeServer(nil)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- server.Serve(ln) }()
	defer func() {
		server.Close()
		<-done
	}()

	// --- Part 1: partial inference with GenderNet, split at 1st_pool
	// (the point the paper found best: fastest while still denaturing).
	model, err := websnap.BuildGenderNet()
	if err != nil {
		return err
	}
	conn, err := websnap.Dial(ln.Addr().String())
	if err != nil {
		return err
	}
	defer conn.Close()
	session, err := websnap.NewSession(websnap.SessionConfig{
		AppID:      "privacy-demo",
		ModelName:  websnap.GenderNet,
		Model:      model,
		Labels:     []string{"male", "female"},
		Mode:       websnap.ModePartial,
		SplitLabel: "1st_pool",
		Conn:       conn,
		PreSend:    true, // pre-sends ONLY the rear model
	})
	if err != nil {
		return err
	}
	if err := session.WaitForModelUpload(); err != nil {
		return err
	}
	photo := make(websnap.Float32Array, 3*227*227)
	for i := range photo {
		photo[i] = float32((i*13)%256) / 255
	}
	start := time.Now()
	result, err := session.Classify(photo)
	if err != nil {
		return err
	}
	fmt.Printf("partial inference at %s: result=%q in %v\n",
		session.SplitLabel(), result, time.Since(start).Round(time.Millisecond))
	if v, _ := session.App().Global(mlapp.GlobalImage); v == nil {
		fmt.Println("  ✔ raw photo never left the device (dropped before the snapshot)")
	}
	fmt.Println("  ✔ front model withheld from the server (rear-only pre-send)")

	// --- Part 2: what withholding the front model buys. A small front
	// network keeps the attack demo fast; the mechanics are identical.
	front, err := models.BuildTinyNet("attack-demo", 3)
	if err != nil {
		return err
	}
	frontNet, _, err := front.Split(1) // through conv1: one denaturing layer
	if err != nil {
		return err
	}
	secret := tensor.MustNew(frontNet.InputShape()...)
	for i := range secret.Data() {
		secret.Data()[i] = float32((i*7)%128) / 128
	}
	feature, err := frontNet.Forward(secret)
	if err != nil {
		return err
	}
	baseline, err := privacy.RandomBaselineMSE(secret, 50, 1)
	if err != nil {
		return err
	}
	opts := privacy.AttackOptions{Iterations: 20000, StepSize: 0.3, BatchSize: 4, Seed: 2}

	withModel, err := privacy.Reconstruct(frontNet, feature, opts)
	if err != nil {
		return err
	}
	mseWith, err := privacy.MSE(withModel.Reconstruction, secret)
	if err != nil {
		return err
	}

	wrongFront, err := models.BuildTinyNet("attackers-guess", 3)
	if err != nil {
		return err
	}
	guessNet, _, err := wrongFront.Split(1)
	if err != nil {
		return err
	}
	guessNet.InitWeights(424242)
	withoutModel, err := privacy.Reconstruct(guessNet, feature, opts)
	if err != nil {
		return err
	}
	mseWithout, err := privacy.MSE(withoutModel.Reconstruction, secret)
	if err != nil {
		return err
	}

	fmt.Println("\nreconstruction attack on the feature data (lower MSE = better recovery):")
	fmt.Printf("  random guess (no information):     MSE %.4f\n", baseline)
	fmt.Printf("  attacker HAS the front model:      MSE %.4f  <- input recovered\n", mseWith)
	fmt.Printf("  front model withheld (our system): MSE %.4f  <- no better than guessing\n", mseWithout)
	return nil
}

// Pipeline-parallel multi-hop partial inference: the K-way generalization
// of the paper's single split point. The client keeps the front of the
// network (denaturing the input), then a chain of edge servers each
// executes its assigned layer range and relays the boundary tensor to the
// next hop; the cut set is chosen by a dynamic program over per-hop
// compute, per-link bandwidth, and live queue hints.
//
// This example runs a client plus three in-process edge servers (two
// relays and a terminal hop), plans a 3-hop chain, executes it, and prints
// the chosen cut set with per-hop timings from the merged trace — then
// kills the middle hop and shows the executor re-planning around it.
//
//	go run ./examples/pipeline_chain
package main

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"websnap"
	"websnap/internal/edge"
	"websnap/internal/protocol"
	"websnap/internal/roam"
	"websnap/internal/telemetry"
	"websnap/internal/tensor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// startEdge runs a chain-capable edge server that advertises its own
// listen address so relays and spans carry the hop's identity.
func startEdge() (addr string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	cat, err := websnap.DefaultCatalog()
	if err != nil {
		ln.Close()
		return "", nil, err
	}
	srv, err := edge.NewServer(edge.Config{Catalog: cat, Installed: true, AdvertiseAddr: ln.Addr().String()})
	if err != nil {
		ln.Close()
		return "", nil, err
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	var once sync.Once
	return ln.Addr().String(), func() {
		once.Do(func() {
			srv.Close()
			<-done
		})
	}, nil
}

func run() error {
	var addrs []string
	var shutdowns []func()
	for i := 0; i < 3; i++ {
		addr, shutdown, err := startEdge()
		if err != nil {
			return err
		}
		defer shutdown()
		addrs = append(addrs, addr)
		shutdowns = append(shutdowns, shutdown)
	}
	fmt.Printf("edge chain: %v\n", addrs)

	model, err := websnap.BuildTinyNet("tinynet", 3)
	if err != nil {
		return err
	}
	flight := telemetry.NewFlightRecorder(0)
	ex, err := roam.NewChainExecutor(roam.ChainConfig{
		AppID:           "pipeline-demo",
		ModelName:       "tinynet",
		Model:           model,
		Depth:           3,
		RequireDenature: true,
		Candidates: func() []roam.ChainServer {
			out := make([]roam.ChainServer, len(addrs))
			for i, a := range addrs {
				out[i] = roam.ChainServer{Addr: a}
			}
			return out
		},
		Flight: flight,
	})
	if err != nil {
		return err
	}
	defer ex.Close()

	in, err := tensor.New(model.InputShape()...)
	if err != nil {
		return err
	}
	data := in.Data()
	for i := range data {
		data[i] = float32(i%17)/8 - 1
	}

	local, err := model.Forward(in)
	if err != nil {
		return err
	}

	out, report, err := ex.Execute(in)
	if err != nil {
		return err
	}
	printPlan(model.NumLayers(), report)
	printHopTimings(report)
	fmt.Printf("bit-identical to local execution: %v\n\n", identical(out, local))

	fmt.Println("-- middle hop dies; next request re-plans around it --")
	shutdowns[1]()
	out, report, err = ex.Execute(in)
	if err != nil {
		return err
	}
	fmt.Printf("re-plans this request: %d (flight recorder captured %d)\n", report.Replans, replanCaptures(flight))
	printPlan(model.NumLayers(), report)
	printHopTimings(report)
	fmt.Printf("bit-identical to local execution: %v\n", identical(out, local))
	return nil
}

// printPlan renders the chosen cut set: the client's front range and each
// hop's layer range.
func printPlan(layers int, report roam.ChainReport) {
	fmt.Printf("path=%s  cut set over %d layers (predicted %v, measured %v):\n",
		report.Path, layers, report.Predicted.Round(time.Microsecond), report.Measured.Round(time.Microsecond))
	if len(report.Hops) == 0 {
		fmt.Println("  local execution only")
		return
	}
	fmt.Printf("  client     layers [0,%d)\n", report.Hops[0].From)
	for i, h := range report.Hops {
		fmt.Printf("  hop %d      layers [%d,%d) on %s\n", i+1, h.From, h.To, h.Addr)
	}
}

// printHopTimings walks the merged span tree: each hop's chain_exec span
// nests the next hop's, with queue/execute children.
func printHopTimings(report roam.ChainReport) {
	span := report.Span
	hop := 1
	for span != nil {
		var queue, exec time.Duration
		var next *protocol.SpanNode
		for _, c := range span.Children {
			switch c.Op {
			case "queue":
				queue = time.Duration(c.Micros) * time.Microsecond
			case "execute":
				exec = time.Duration(c.Micros) * time.Microsecond
			case "chain_exec":
				next = c
			}
		}
		fmt.Printf("  hop %d time  %-21s total=%v queue=%v execute=%v\n",
			hop, span.Addr, (time.Duration(span.Micros) * time.Microsecond).Round(time.Microsecond), queue, exec)
		span = next
		hop++
	}
}

func identical(a, b *tensor.Tensor) bool {
	if !tensor.SameShape(a, b) {
		return false
	}
	ad, bd := a.Data(), b.Data()
	for i := range ad {
		if ad[i] != bd[i] {
			return false
		}
	}
	return true
}

func replanCaptures(f *telemetry.FlightRecorder) int {
	n := 0
	for _, e := range f.Dump() {
		if e.Reason == telemetry.FlightReplan {
			n++
		}
	}
	return n
}

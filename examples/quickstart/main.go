// Quickstart: run an ML web app on the "client", offload its DNN inference
// to an in-process edge server over real TCP, and read the result the
// server wrote into the app's DOM.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"websnap"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Start an edge server (normally a separate machine: cmd/edged).
	server, err := websnap.NewEdgeServer(nil)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- server.Serve(ln) }()
	defer func() {
		server.Close()
		<-done
	}()

	// 2. The client device: a small CNN-based image recognition web app.
	model, err := websnap.BuildTinyNet("tinynet", 3)
	if err != nil {
		return err
	}
	conn, err := websnap.Dial(ln.Addr().String())
	if err != nil {
		return err
	}
	defer conn.Close()
	session, err := websnap.NewSession(websnap.SessionConfig{
		AppID:     "quickstart",
		ModelName: "tinynet",
		Model:     model,
		Labels:    []string{"cat", "dog", "bird"},
		Mode:      websnap.ModeFull, // offload the whole inference handler
		Conn:      conn,
		PreSend:   true, // ship the model when the app starts (§III.B.1)
	})
	if err != nil {
		return err
	}
	if err := session.WaitForModelUpload(); err != nil {
		return err
	}

	// 3. "Click the inference button": the snapshot travels to the edge
	// server, the DNN runs there, and the result snapshot comes back.
	img := syntheticPhoto(model.InputShape())
	start := time.Now()
	result, err := session.Classify(img)
	if err != nil {
		return err
	}
	fmt.Printf("inference result: %q (in %v, offloaded to %s)\n",
		result, time.Since(start).Round(time.Millisecond), ln.Addr())

	st := session.Stats()
	fmt.Printf("snapshot shipped: %d bytes up, %d bytes back (model pre-sent separately: %v)\n",
		st.LastSnapshotBytes, st.LastResultBytes, !st.LastModelIncluded)
	return nil
}

// syntheticPhoto stands in for a user photo.
func syntheticPhoto(shape []int) websnap.Float32Array {
	n := 1
	for _, d := range shape {
		n *= d
	}
	img := make(websnap.Float32Array, n)
	for i := range img {
		img[i] = float32((i*37)%256) / 255
	}
	return img
}

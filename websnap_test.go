package websnap_test

import (
	"net"
	"testing"

	"websnap"
)

// startServer brings up an edge server for facade tests.
func startServer(t *testing.T) string {
	t.Helper()
	srv, err := websnap.NewEdgeServer(nil)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		<-done
	})
	return ln.Addr().String()
}

// TestPublicAPIEndToEnd drives the whole system exclusively through the
// re-exported facade, as a downstream user would.
func TestPublicAPIEndToEnd(t *testing.T) {
	addr := startServer(t)
	model, err := websnap.BuildTinyNet("tinynet", 3)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := websnap.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	session, err := websnap.NewSession(websnap.SessionConfig{
		AppID:     "facade-test",
		ModelName: "tinynet",
		Model:     model,
		Labels:    []string{"cat", "dog", "bird"},
		Mode:      websnap.ModeFull,
		Conn:      conn,
		PreSend:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := session.WaitForModelUpload(); err != nil {
		t.Fatal(err)
	}
	img := make(websnap.Float32Array, 3*16*16)
	for i := range img {
		img[i] = float32(i%97) / 97
	}
	got, err := session.Classify(img)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"cat": true, "dog": true, "bird": true}
	if !want[got] {
		t.Errorf("Classify = %q, want one of the labels", got)
	}
	if st := session.Stats(); st.Offloads != 1 {
		t.Errorf("offloads = %d, want 1", st.Offloads)
	}
}

func TestPublicExperimentDrivers(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment drivers build full models")
	}
	rows, err := websnap.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Errorf("Fig6 rows = %d, want 3", len(rows))
	}
	t1, err := websnap.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(t1) != 3 {
		t.Errorf("Table1 rows = %d, want 3", len(t1))
	}
	f1, err := websnap.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(f1) == 0 {
		t.Error("Fig1 empty")
	}
}

func TestPublicModelBuilders(t *testing.T) {
	for name, build := range map[string]func() (*websnap.Network, error){
		"googlenet": websnap.BuildGoogLeNet,
		"agenet":    websnap.BuildAgeNet,
		"gendernet": websnap.BuildGenderNet,
	} {
		net, err := build()
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if net.Name() != name {
			t.Errorf("%s built as %q", name, net.Name())
		}
	}
	if _, err := websnap.BuildModel("nope"); err == nil {
		t.Error("unknown model should fail")
	}
}

func TestPublicPartitionAnalysis(t *testing.T) {
	model, err := websnap.BuildTinyNet("tinynet", 3)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := websnap.AnalyzePartition(model, websnap.PartitionConfig{
		Client:  websnap.ClientOdroid,
		Server:  websnap.ServerX86,
		Network: websnap.WiFi30Mbps,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Candidates) == 0 {
		t.Error("no candidates")
	}
	if _, err := plan.Choose(true); err != nil {
		t.Errorf("Choose: %v", err)
	}
}

// Package sched is the edge server's inference scheduler: the layer
// between the connection listener and the snapshot runtime that turns "one
// goroutine per connection executes immediately" into a managed system —
// a bounded admission queue with a configurable overload policy, a worker
// pool executing sessions concurrently, and per-model micro-batching that
// coalesces rear-inference offloads sharing the same pre-sent model into a
// single batched forward pass.
//
// The paper's server (§III) executes one offloaded snapshot per connection;
// that collapses under many concurrent clients. Related work shows the
// production levers are server-side queue management (DEFER's pipelined
// batched edge inference) and offload decisions that account for server
// queueing delay, not just compute ratio. The scheduler provides both: it
// bounds and batches work, and it exports a load signal (queue depth,
// histogram-derived service time, estimated queueing delay) that the
// protocol layer carries back to clients as a load hint.
package sched

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"websnap/internal/trace"
)

// Errors reported by Submit.
var (
	// ErrQueueFull is returned when the admission queue is at capacity
	// (immediately under PolicyReject, after QueueWait under PolicyBlock).
	ErrQueueFull = errors.New("sched: admission queue full")
	// ErrClosed is returned for submissions to a closed scheduler, and
	// delivered to tasks cancelled while still queued at Close.
	ErrClosed = errors.New("sched: scheduler closed")
)

// Policy selects what Submit does when the admission queue is full.
type Policy int

const (
	// PolicyReject turns the request away immediately with ErrQueueFull.
	// The caller answers the client with an overload error plus a load
	// hint, letting it fall back to local execution at once instead of
	// timing out — the default, because a saturated edge server must shed
	// load, not accumulate latency.
	PolicyReject Policy = iota
	// PolicyBlock waits up to QueueWait for space, then fails with
	// ErrQueueFull. Useful when clients have no local fallback.
	PolicyBlock
)

// Task is one scheduled unit of work (one offloaded snapshot session).
type Task struct {
	// BatchKey groups tasks that may be coalesced into one batched
	// execution: tasks are only ever batched together when their keys are
	// equal and non-empty. The edge server derives the key from the app's
	// code hash, the pending event, and the fingerprints of the pre-sent
	// models, so only requests provably running the same handler against
	// byte-identical weights coalesce.
	BatchKey string
	// Payload is the executor's working data (e.g. a decoded snapshot).
	Payload any
	// Bytes is the payload's admission-accounted size. Queues configured
	// with MaxQueueBytes count it against the byte budget while the task
	// waits; zero-byte tasks consume slots only.
	Bytes int64

	done chan taskResult

	// Timing, written by the scheduler and published to the caller by the
	// done channel (Wait provides the happens-before edge).
	queuedAt  time.Time
	startedAt time.Time
	execDur   time.Duration
	batchSize int
}

type taskResult struct {
	value any
	err   error
}

// NewTask wraps a payload for submission.
func NewTask(batchKey string, payload any) *Task {
	return &Task{BatchKey: batchKey, Payload: payload, done: make(chan taskResult, 1)}
}

// Wait blocks until the task has been executed (or cancelled) and returns
// the executor's result. Every task accepted by Submit is eventually
// finished: executed by a worker, or failed with ErrClosed during Close.
func (t *Task) Wait() (any, error) {
	r := <-t.done
	return r.value, r.err
}

func (t *Task) finish(v any, err error) {
	t.done <- taskResult{value: v, err: err}
}

// QueueWait returns how long the task sat in the admission queue before a
// worker picked it up (0 for tasks cancelled while queued). Valid after
// Wait returns.
func (t *Task) QueueWait() time.Duration {
	if t.startedAt.IsZero() || t.queuedAt.IsZero() {
		return 0
	}
	return t.startedAt.Sub(t.queuedAt)
}

// ExecTime returns the wall-clock duration of the execution batch the task
// rode in — the time the session spent inside a worker. Valid after Wait
// returns.
func (t *Task) ExecTime() time.Duration { return t.execDur }

// BatchSize returns how many coalesced tasks shared the execution batch
// (1 = solo, 0 = never executed). Valid after Wait returns.
func (t *Task) BatchSize() int { return t.batchSize }

// Result is one task's outcome, produced by the executor.
type Result struct {
	Value any
	Err   error
}

// ExecFunc executes a batch of tasks. The slice has at least one element;
// elements beyond the first are present only when their BatchKeys all equal
// the first's. It must return exactly one Result per task, in order.
type ExecFunc func(batch []*Task) []Result

// Config parametrizes a Scheduler.
type Config struct {
	// Workers is the worker-pool size. Zero or negative selects 1.
	Workers int
	// QueueDepth bounds the admission queue. Zero or negative selects
	// DefaultQueueDepth.
	QueueDepth int
	// MaxQueueBytes bounds the summed Task.Bytes of queued tasks, so a
	// burst of large snapshots saturates admission before it balloons the
	// heap. Zero means slots-only accounting. A task larger than the whole
	// budget is still admitted when the queue is byte-empty — otherwise it
	// could never run — and then occupies the budget alone.
	MaxQueueBytes int64
	// Policy selects the overload behavior (reject vs block).
	Policy Policy
	// QueueWait bounds how long PolicyBlock waits for queue space. Zero
	// selects DefaultQueueWait.
	QueueWait time.Duration
	// MaxBatch caps how many same-key tasks one worker coalesces into a
	// single execution. Zero or one disables batching.
	MaxBatch int
	// BatchWindow is how long a worker holds an under-filled batch open
	// for same-key arrivals. Zero means batch only the backlog already
	// queued at dequeue time — batching then costs no latency when the
	// server is idle and kicks in exactly when a queue has formed.
	BatchWindow time.Duration
	// Logf receives diagnostic output; nil silences it.
	Logf func(format string, args ...any)
}

// Defaults for Config zero values.
const (
	DefaultQueueDepth = 64
	DefaultQueueWait  = 2 * time.Second
)

// Stats is a snapshot of the scheduler's state and counters.
type Stats struct {
	// Workers is the pool size; Busy is how many are executing now.
	Workers int `json:"workers"`
	Busy    int `json:"busy"`
	// QueueDepth is the current number of queued tasks; QueueCap its
	// bound.
	QueueDepth int `json:"queueDepth"`
	QueueCap   int `json:"queueCap"`
	// QueueBytes is the summed Task.Bytes of queued tasks; QueueByteCap
	// its bound (0 = slots-only accounting).
	QueueBytes   int64 `json:"queueBytes,omitempty"`
	QueueByteCap int64 `json:"queueByteCap,omitempty"`
	// Submitted counts accepted tasks; Rejected counts tasks turned away
	// at admission; Cancelled counts tasks failed while queued at Close.
	Submitted int64 `json:"submitted"`
	Rejected  int64 `json:"rejected"`
	Cancelled int64 `json:"cancelled"`
	// Executed counts completed tasks; Batches counts executor
	// invocations (so Executed/Batches is the mean batch size);
	// BatchedTasks counts tasks that ran in a batch of 2 or more.
	Executed     int64 `json:"executed"`
	Batches      int64 `json:"batches"`
	BatchedTasks int64 `json:"batchedTasks"`
	// Service summarizes the per-task service time distribution (batch
	// wall time divided by batch size), from the scheduler's log-bucketed
	// histogram. Service.Mean replaces the earlier EWMA as the smoothed
	// load signal; the histogram additionally yields tail percentiles.
	Service trace.Quantiles `json:"service"`
	// QueueWait summarizes how long admitted tasks waited for a worker.
	QueueWait trace.Quantiles `json:"queueWait"`
}

// QueueingDelay estimates how long a task submitted now would wait for a
// worker: the backlog ahead of it, served at the mean service rate by the
// whole pool.
func (s Stats) QueueingDelay() time.Duration {
	if s.Workers <= 0 {
		return 0
	}
	waiting := float64(s.QueueDepth)
	if s.Busy >= s.Workers {
		// All workers occupied: a new task also waits for a fraction of
		// the in-flight work to drain.
		waiting += float64(s.Busy) / 2
	}
	return time.Duration(waiting * float64(s.Service.Mean) / float64(s.Workers))
}

// Saturated reports whether the admission queue is full, on either the
// slot or the byte budget.
func (s Stats) Saturated() bool {
	if s.QueueCap > 0 && s.QueueDepth >= s.QueueCap {
		return true
	}
	return s.QueueByteCap > 0 && s.QueueBytes >= s.QueueByteCap
}

// Scheduler admits, queues, batches, and executes tasks on a worker pool.
type Scheduler struct {
	cfg  Config
	exec ExecFunc
	logf func(string, ...any)

	mu          sync.Mutex
	queue       []*Task // FIFO admission queue, bounded by cfg.QueueDepth
	queuedBytes int64   // summed Bytes of queued tasks, bounded by cfg.MaxQueueBytes
	closed      bool
	// space is signalled when queue slots free up (PolicyBlock waiters).
	space chan struct{}
	// wake is signalled on every enqueue (idle workers).
	wake chan struct{}
	quit chan struct{}
	wg   sync.WaitGroup

	busy                atomic.Int64
	submitted, rejected atomic.Int64
	cancelled           atomic.Int64
	executed, batches   atomic.Int64
	batchedTasks        atomic.Int64

	// service and queueWait are the lock-free stage-latency histograms
	// behind the load signal: per-task service time (batch wall time /
	// batch size) and admission-queue wait. They replace the earlier
	// EWMA-only signal — the mean falls out of the histogram, and the
	// tails (p95/p99) come with it.
	service   trace.Histogram
	queueWait trace.Histogram
}

// New creates a scheduler and starts its workers. exec must be non-nil.
func New(cfg Config, exec ExecFunc) (*Scheduler, error) {
	if exec == nil {
		return nil, errors.New("sched: nil executor")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.QueueWait <= 0 {
		cfg.QueueWait = DefaultQueueWait
	}
	if cfg.MaxBatch < 1 {
		cfg.MaxBatch = 1
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &Scheduler{
		cfg:   cfg,
		exec:  exec,
		logf:  logf,
		queue: make([]*Task, 0, cfg.QueueDepth),
		space: make(chan struct{}, 1),
		wake:  make(chan struct{}, 1),
		quit:  make(chan struct{}),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Submit admits a task for execution. On success the caller should Wait on
// the task. A full queue rejects (PolicyReject) or blocks up to QueueWait
// (PolicyBlock); a closed scheduler returns ErrClosed.
func (s *Scheduler) Submit(t *Task) error {
	if t.done == nil {
		t.done = make(chan taskResult, 1)
	}
	var deadline *time.Timer
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			s.rejected.Add(1)
			return ErrClosed
		}
		if len(s.queue) < s.cfg.QueueDepth && s.admitBytesLocked(t) {
			t.queuedAt = time.Now()
			s.queue = append(s.queue, t)
			s.queuedBytes += t.Bytes
			spare := len(s.queue) < s.cfg.QueueDepth &&
				(s.cfg.MaxQueueBytes <= 0 || s.queuedBytes < s.cfg.MaxQueueBytes)
			s.mu.Unlock()
			s.submitted.Add(1)
			signal(s.wake)
			if spare {
				// space has capacity 1: cascade the signal so other
				// blocked submitters see the remaining slots.
				signal(s.space)
			}
			return nil
		}
		s.mu.Unlock()
		if s.cfg.Policy == PolicyReject {
			s.rejected.Add(1)
			return ErrQueueFull
		}
		if deadline == nil {
			deadline = time.NewTimer(s.cfg.QueueWait)
			defer deadline.Stop()
		}
		select {
		case <-s.space:
		case <-deadline.C:
			s.rejected.Add(1)
			return fmt.Errorf("%w after %v", ErrQueueFull, s.cfg.QueueWait)
		case <-s.quit:
			s.rejected.Add(1)
			return ErrClosed
		}
	}
}

// admitBytesLocked reports whether t fits the queue's byte budget. A task
// exceeding the whole budget is admitted only into a byte-empty queue: it
// could never fit otherwise, and forward progress beats a strict cap.
func (s *Scheduler) admitBytesLocked(t *Task) bool {
	if s.cfg.MaxQueueBytes <= 0 || t.Bytes <= 0 {
		return true
	}
	if s.queuedBytes == 0 {
		return true
	}
	return s.queuedBytes+t.Bytes <= s.cfg.MaxQueueBytes
}

// signal performs a non-blocking send on a capacity-1 notification channel.
func signal(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// worker pulls tasks, coalesces same-key backlog into batches, executes,
// and delivers results.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		batch, ok := s.nextBatch()
		if !ok {
			return
		}
		s.runBatch(batch)
	}
}

// nextBatch blocks for the next task, then greedily coalesces queued tasks
// sharing its BatchKey (holding the batch open up to BatchWindow when one
// is configured). ok=false means the scheduler is closing.
func (s *Scheduler) nextBatch() ([]*Task, bool) {
	var first *Task
	for {
		s.mu.Lock()
		if len(s.queue) > 0 {
			first = s.queue[0]
			s.queue = s.queue[1:]
			s.queuedBytes -= first.Bytes
			backlog := len(s.queue) > 0
			s.mu.Unlock()
			signal(s.space)
			if backlog {
				// wake has capacity 1: re-signal so sleeping sibling
				// workers see the remaining backlog.
				signal(s.wake)
			}
			break
		}
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return nil, false
		}
		select {
		case <-s.wake:
		case <-s.quit:
			// Drain check: Close cancels queued tasks itself, so an
			// empty queue here means this worker is done.
			s.mu.Lock()
			empty := len(s.queue) == 0
			s.mu.Unlock()
			if empty {
				return nil, false
			}
		}
	}
	batch := []*Task{first}
	if s.cfg.MaxBatch <= 1 || first.BatchKey == "" {
		return batch, true
	}
	var window *time.Timer
	for len(batch) < s.cfg.MaxBatch {
		s.mu.Lock()
		// Coalesce every same-key task currently queued, preserving the
		// FIFO order of the rest.
		kept := s.queue[:0]
		for _, t := range s.queue {
			if len(batch) < s.cfg.MaxBatch && t.BatchKey == first.BatchKey {
				batch = append(batch, t)
				s.queuedBytes -= t.Bytes
			} else {
				kept = append(kept, t)
			}
		}
		for i := len(kept); i < len(s.queue); i++ {
			s.queue[i] = nil
		}
		s.queue = kept
		closed := s.closed
		s.mu.Unlock()
		signal(s.space)
		if len(batch) >= s.cfg.MaxBatch || s.cfg.BatchWindow <= 0 || closed {
			break
		}
		if window == nil {
			window = time.NewTimer(s.cfg.BatchWindow)
			defer window.Stop()
		}
		select {
		case <-s.wake:
			// New arrivals: loop to collect matching ones. Re-signal so
			// sibling workers also wake for the non-matching tasks.
			signal(s.wake)
		case <-window.C:
			return batch, true
		case <-s.quit:
			return batch, true
		}
	}
	return batch, true
}

// runBatch executes one batch and delivers per-task results.
func (s *Scheduler) runBatch(batch []*Task) {
	s.busy.Add(1)
	start := time.Now()
	for _, t := range batch {
		t.startedAt = start
		t.batchSize = len(batch)
		if !t.queuedAt.IsZero() {
			s.queueWait.Observe(start.Sub(t.queuedAt))
		}
	}
	results := s.safeExec(batch)
	dur := time.Since(start)
	s.busy.Add(-1)
	perTask := dur / time.Duration(len(batch))
	for _, t := range batch {
		t.execDur = dur
		s.service.Observe(perTask)
	}
	s.batches.Add(1)
	s.executed.Add(int64(len(batch)))
	if len(batch) > 1 {
		s.batchedTasks.Add(int64(len(batch)))
	}
	for i, t := range batch {
		if i < len(results) {
			t.finish(results[i].Value, results[i].Err)
		} else {
			t.finish(nil, errors.New("sched: executor returned too few results"))
		}
	}
}

// safeExec invokes the executor, converting a panic into per-task errors so
// one poisoned snapshot cannot take down the worker pool.
func (s *Scheduler) safeExec(batch []*Task) (results []Result) {
	defer func() {
		if r := recover(); r != nil {
			s.logf("sched: executor panic: %v", r)
			results = make([]Result, len(batch))
			for i := range results {
				results[i] = Result{Err: fmt.Errorf("sched: executor panic: %v", r)}
			}
		}
	}()
	return s.exec(batch)
}

// ServiceHist returns the scheduler's per-task service-time histogram.
func (s *Scheduler) ServiceHist() *trace.Histogram { return &s.service }

// QueueWaitHist returns the scheduler's admission-queue wait histogram.
func (s *Scheduler) QueueWaitHist() *trace.Histogram { return &s.queueWait }

// Accepting reports whether the scheduler admits new submissions: true
// until Close is called. It is the scheduler's readiness signal.
func (s *Scheduler) Accepting() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.closed
}

// Stats returns a consistent-enough snapshot of the scheduler's state.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	depth := len(s.queue)
	qbytes := s.queuedBytes
	s.mu.Unlock()
	return Stats{
		Workers:      s.cfg.Workers,
		Busy:         int(s.busy.Load()),
		QueueDepth:   depth,
		QueueCap:     s.cfg.QueueDepth,
		QueueBytes:   qbytes,
		QueueByteCap: s.cfg.MaxQueueBytes,
		Submitted:    s.submitted.Load(),
		Rejected:     s.rejected.Load(),
		Cancelled:    s.cancelled.Load(),
		Executed:     s.executed.Load(),
		Batches:      s.batches.Load(),
		BatchedTasks: s.batchedTasks.Load(),
		Service:      s.service.Summary(),
		QueueWait:    s.queueWait.Summary(),
	}
}

// Close stops admission, cancels queued tasks with ErrClosed, and waits for
// in-flight executions to drain. Every accepted task is guaranteed to have
// been finished (executed or cancelled) when Close returns.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	cancelled := s.queue
	s.queue = nil
	s.queuedBytes = 0
	s.mu.Unlock()
	close(s.quit)
	for _, t := range cancelled {
		s.cancelled.Add(1)
		t.finish(nil, ErrClosed)
	}
	s.wg.Wait()
}

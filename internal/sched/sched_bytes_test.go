package sched

import (
	"errors"
	"testing"
)

// byteTask builds a task carrying an admission byte charge.
func byteTask(app string, payload any, bytes int64) *Task {
	task := NewTask(app, payload)
	task.Bytes = bytes
	return task
}

// TestByteCapAdmission pins the byte budget: admission stops at
// MaxQueueBytes even while queue slots remain, and Stats reports both
// dimensions.
func TestByteCapAdmission(t *testing.T) {
	block := make(chan struct{})
	exec := func(batch []*Task) []Result {
		<-block
		return echoExec(batch)
	}
	s, err := New(Config{Workers: 1, QueueDepth: 16, MaxQueueBytes: 100, Policy: PolicyReject}, exec)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { close(block); s.Close() }()

	running := byteTask("", "running", 10)
	if err := s.Submit(running); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.Stats().Busy == 1 })

	if err := s.Submit(byteTask("", 1, 60)); err != nil {
		t.Fatalf("first queued submit: %v", err)
	}
	if err := s.Submit(byteTask("", 2, 40)); err != nil {
		t.Fatalf("submit filling the byte budget exactly: %v", err)
	}
	st := s.Stats()
	if st.QueueBytes != 100 || st.QueueByteCap != 100 {
		t.Fatalf("QueueBytes=%d QueueByteCap=%d, want 100/100", st.QueueBytes, st.QueueByteCap)
	}
	if !st.Saturated() {
		t.Error("byte-saturated queue should report Saturated despite free slots")
	}
	err = s.Submit(byteTask("", 3, 1))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit over the byte budget: %v, want ErrQueueFull", err)
	}
	if got := s.Stats().Rejected; got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
}

// TestByteCapOversizedTask pins the progress guarantee: a single task
// larger than the whole byte budget is admitted into an otherwise
// byte-empty queue — it could never run otherwise — but never alongside
// queued bytes.
func TestByteCapOversizedTask(t *testing.T) {
	block := make(chan struct{})
	exec := func(batch []*Task) []Result {
		<-block
		return echoExec(batch)
	}
	s, err := New(Config{Workers: 1, QueueDepth: 16, MaxQueueBytes: 50, Policy: PolicyReject}, exec)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { close(block); s.Close() }()

	running := byteTask("", "running", 1)
	if err := s.Submit(running); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.Stats().Busy == 1 })

	if err := s.Submit(byteTask("", "huge", 500)); err != nil {
		t.Fatalf("oversized task into an empty queue: %v", err)
	}
	// With the oversized task queued, everything else bounces.
	if err := s.Submit(byteTask("", "tiny", 1)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit alongside oversized task: %v, want ErrQueueFull", err)
	}
}

// TestByteAccountingDrains pins that queued bytes return to zero once
// tasks execute — including tasks drained through batch coalescing, the
// second dequeue path.
func TestByteAccountingDrains(t *testing.T) {
	release := make(chan struct{})
	exec := func(batch []*Task) []Result {
		<-release
		return echoExec(batch)
	}
	s, err := New(Config{Workers: 1, QueueDepth: 16, MaxQueueBytes: 1000, MaxBatch: 4}, exec)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// One running task, then three same-app tasks that coalesce into one
	// batch when the worker frees up.
	tasks := []*Task{byteTask("app", 0, 100)}
	if err := s.Submit(tasks[0]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.Stats().Busy == 1 })
	for i := 1; i <= 3; i++ {
		task := byteTask("app", i, 100)
		tasks = append(tasks, task)
		if err := s.Submit(task); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats().QueueBytes; got != 300 {
		t.Fatalf("QueueBytes = %d with 3 queued tasks, want 300", got)
	}
	close(release)
	for _, task := range tasks {
		if _, err := task.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return s.Stats().QueueBytes == 0 })
	st := s.Stats()
	if st.Executed != 4 {
		t.Fatalf("executed = %d, want 4", st.Executed)
	}
	if st.Batches < 2 {
		t.Fatalf("batches = %d; coalescing never happened, the second dequeue path is untested", st.Batches)
	}
}

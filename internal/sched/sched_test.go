package sched

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"websnap/internal/testutil"
	"websnap/internal/trace"
)

// echoExec returns each task's payload as its result.
func echoExec(batch []*Task) []Result {
	out := make([]Result, len(batch))
	for i, t := range batch {
		out[i] = Result{Value: t.Payload}
	}
	return out
}

// TestSubmitExecutes: a submitted task runs and returns its result.
func TestSubmitExecutes(t *testing.T) {
	s, err := New(Config{Workers: 2}, echoExec)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	task := NewTask("", 42)
	if err := s.Submit(task); err != nil {
		t.Fatal(err)
	}
	v, err := task.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Errorf("result = %v, want 42", v)
	}
	st := s.Stats()
	if st.Executed != 1 || st.Submitted != 1 {
		t.Errorf("stats = %+v, want 1 submitted, 1 executed", st)
	}
}

// TestRejectWhenFull: with PolicyReject, a full queue turns tasks away
// immediately with ErrQueueFull.
func TestRejectWhenFull(t *testing.T) {
	block := make(chan struct{})
	exec := func(batch []*Task) []Result {
		<-block
		return echoExec(batch)
	}
	s, err := New(Config{Workers: 1, QueueDepth: 2, Policy: PolicyReject}, exec)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { close(block); s.Close() }()

	// One task occupies the worker; wait until it is actually in-flight
	// so the queue accounting below is deterministic.
	running := NewTask("", "running")
	if err := s.Submit(running); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.Stats().Busy == 1 })

	// Two more fill the queue.
	for i := 0; i < 2; i++ {
		if err := s.Submit(NewTask("", i)); err != nil {
			t.Fatalf("queued submit %d: %v", i, err)
		}
	}
	if !s.Stats().Saturated() {
		t.Error("stats should report saturation with a full queue")
	}
	err = s.Submit(NewTask("", "overflow"))
	if !errors.Is(err, ErrQueueFull) {
		t.Errorf("overflow submit err = %v, want ErrQueueFull", err)
	}
	if got := s.Stats().Rejected; got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
}

// TestBlockPolicyWaitsForSpace: PolicyBlock submissions wait for a slot and
// succeed when one frees up within QueueWait.
func TestBlockPolicyWaitsForSpace(t *testing.T) {
	release := make(chan struct{})
	exec := func(batch []*Task) []Result {
		<-release
		return echoExec(batch)
	}
	s, err := New(Config{Workers: 1, QueueDepth: 1, Policy: PolicyBlock, QueueWait: 5 * time.Second}, exec)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Submit(NewTask("", "running")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.Stats().Busy == 1 })
	if err := s.Submit(NewTask("", "queued")); err != nil {
		t.Fatal(err)
	}
	// Queue now full: this submit must block until release frees the
	// worker, which drains the queue.
	done := make(chan error, 1)
	go func() { done <- s.Submit(NewTask("", "blocked")) }()
	select {
	case err := <-done:
		t.Fatalf("submit returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("blocked submit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked submit never admitted")
	}
}

// TestBlockPolicyDeadline: PolicyBlock gives up with ErrQueueFull when no
// slot frees within QueueWait.
func TestBlockPolicyDeadline(t *testing.T) {
	block := make(chan struct{})
	exec := func(batch []*Task) []Result {
		<-block
		return echoExec(batch)
	}
	s, err := New(Config{Workers: 1, QueueDepth: 1, Policy: PolicyBlock, QueueWait: 30 * time.Millisecond}, exec)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { close(block); s.Close() }()
	if err := s.Submit(NewTask("", "running")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.Stats().Busy == 1 })
	if err := s.Submit(NewTask("", "queued")); err != nil {
		t.Fatal(err)
	}
	err = s.Submit(NewTask("", "timed-out"))
	if !errors.Is(err, ErrQueueFull) {
		t.Errorf("err = %v, want ErrQueueFull after deadline", err)
	}
}

// TestBatchingCoalesces: queued tasks sharing a BatchKey reach the executor
// as one batch; different keys never mix.
func TestBatchingCoalesces(t *testing.T) {
	block := make(chan struct{})
	var mu sync.Mutex
	var batches [][]string
	exec := func(batch []*Task) []Result {
		if len(batch) == 1 && batch[0].Payload == "plug" {
			<-block
			return echoExec(batch)
		}
		keys := make([]string, len(batch))
		for i, t := range batch {
			keys[i] = t.BatchKey
		}
		mu.Lock()
		batches = append(batches, keys)
		mu.Unlock()
		return echoExec(batch)
	}
	s, err := New(Config{Workers: 1, QueueDepth: 16, MaxBatch: 4}, exec)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Plug the single worker so a backlog builds.
	if err := s.Submit(NewTask("", "plug")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.Stats().Busy == 1 })
	var tasks []*Task
	for _, key := range []string{"m1", "m1", "m2", "m1", "m1"} {
		task := NewTask(key, key)
		tasks = append(tasks, task)
		if err := s.Submit(task); err != nil {
			t.Fatal(err)
		}
	}
	close(block)
	for _, task := range tasks {
		if _, err := task.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	var m1Batches, mixed int
	for _, keys := range batches {
		same := true
		for _, k := range keys {
			if k != keys[0] {
				same = false
			}
		}
		if !same {
			mixed++
		}
		if keys[0] == "m1" && len(keys) > 1 {
			m1Batches++
		}
	}
	if mixed != 0 {
		t.Errorf("executor saw %d mixed-key batches: %v", mixed, batches)
	}
	if m1Batches == 0 {
		t.Errorf("no multi-task m1 batch formed: %v", batches)
	}
	if got := s.Stats().BatchedTasks; got == 0 {
		t.Error("stats report no batched tasks")
	}
}

// TestBatchWindowCollectsArrivals: with a batch window, a worker holds an
// under-filled batch open and coalesces tasks that arrive within it.
func TestBatchWindowCollectsArrivals(t *testing.T) {
	sizes := make(chan int, 8)
	exec := func(batch []*Task) []Result {
		sizes <- len(batch)
		return echoExec(batch)
	}
	s, err := New(Config{Workers: 1, QueueDepth: 16, MaxBatch: 2, BatchWindow: time.Second}, exec)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	a, b := NewTask("k", 1), NewTask("k", 2)
	if err := s.Submit(a); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // worker now holds the window open for a
	if err := s.Submit(b); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := <-sizes; got != 2 {
		t.Errorf("batch size = %d, want 2 (window should coalesce the late arrival)", got)
	}
}

// TestCloseCancelsQueuedAndDrainsRunning: Close finishes every accepted
// task — in-flight ones execute, queued ones fail with ErrClosed.
func TestCloseCancelsQueuedAndDrainsRunning(t *testing.T) {
	testutil.LeakCheck(t)
	started := make(chan struct{})
	release := make(chan struct{})
	exec := func(batch []*Task) []Result {
		close(started)
		<-release
		return echoExec(batch)
	}
	s, err := New(Config{Workers: 1, QueueDepth: 8}, exec)
	if err != nil {
		t.Fatal(err)
	}
	running := NewTask("", "running")
	if err := s.Submit(running); err != nil {
		t.Fatal(err)
	}
	<-started
	queued := NewTask("", "queued")
	if err := s.Submit(queued); err != nil {
		t.Fatal(err)
	}
	closeDone := make(chan struct{})
	go func() { s.Close(); close(closeDone) }()
	// The queued task must be cancelled promptly even while the running
	// one is still executing.
	if _, err := queued.Wait(); !errors.Is(err, ErrClosed) {
		t.Errorf("queued task err = %v, want ErrClosed", err)
	}
	select {
	case <-closeDone:
		t.Fatal("Close returned before in-flight task drained")
	case <-time.After(30 * time.Millisecond):
	}
	close(release)
	if v, err := running.Wait(); err != nil || v != "running" {
		t.Errorf("running task = (%v, %v), want drained result", v, err)
	}
	<-closeDone
	if err := s.Submit(NewTask("", "late")); !errors.Is(err, ErrClosed) {
		t.Errorf("post-close submit err = %v, want ErrClosed", err)
	}
	st := s.Stats()
	if st.Cancelled != 1 {
		t.Errorf("cancelled = %d, want 1", st.Cancelled)
	}
}

// TestExecutorPanicIsContained: a panicking executor fails its batch but
// the pool keeps serving.
func TestExecutorPanicIsContained(t *testing.T) {
	exec := func(batch []*Task) []Result {
		if batch[0].Payload == "boom" {
			panic("kaboom")
		}
		return echoExec(batch)
	}
	s, err := New(Config{Workers: 1}, exec)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	bad := NewTask("", "boom")
	if err := s.Submit(bad); err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Wait(); err == nil {
		t.Error("panicking batch returned nil error")
	}
	good := NewTask("", "fine")
	if err := s.Submit(good); err != nil {
		t.Fatal(err)
	}
	if v, err := good.Wait(); err != nil || v != "fine" {
		t.Errorf("post-panic task = (%v, %v), want it served", v, err)
	}
}

// TestServiceHistogramTracksExecution: the histogram-derived service time
// is non-zero after work, per-task timing is published on the Task, and the
// mean feeds a plausible queueing estimate.
func TestServiceHistogramTracksExecution(t *testing.T) {
	exec := func(batch []*Task) []Result {
		time.Sleep(5 * time.Millisecond)
		return echoExec(batch)
	}
	s, err := New(Config{Workers: 1}, exec)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	task := NewTask("", 1)
	if err := s.Submit(task); err != nil {
		t.Fatal(err)
	}
	if _, err := task.Wait(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Service.Mean < time.Millisecond {
		t.Errorf("Service.Mean = %v, want >= 1ms after a 5ms execution", st.Service.Mean)
	}
	if st.Service.Count != 1 || st.Service.P99 < time.Millisecond {
		t.Errorf("Service summary = %+v, want count 1 and p99 >= 1ms", st.Service)
	}
	if st.QueueWait.Count != 1 {
		t.Errorf("QueueWait.Count = %d, want 1", st.QueueWait.Count)
	}
	if task.ExecTime() < time.Millisecond {
		t.Errorf("task ExecTime = %v, want >= 1ms", task.ExecTime())
	}
	if task.BatchSize() != 1 {
		t.Errorf("task BatchSize = %d, want 1", task.BatchSize())
	}
	if task.QueueWait() < 0 {
		t.Errorf("task QueueWait = %v, want >= 0", task.QueueWait())
	}
	qd := Stats{Workers: 2, QueueDepth: 4,
		Service: trace.Quantiles{Mean: 100 * time.Millisecond}}.QueueingDelay()
	if qd != 200*time.Millisecond {
		t.Errorf("QueueingDelay = %v, want 200ms (4 waiting / 2 workers * 100ms)", qd)
	}
}

// TestConcurrentSubmitters: many goroutines hammering Submit lose no tasks
// and every accepted task completes exactly once (run with -race).
func TestConcurrentSubmitters(t *testing.T) {
	testutil.LeakCheck(t)
	var executed atomic.Int64
	exec := func(batch []*Task) []Result {
		executed.Add(int64(len(batch)))
		return echoExec(batch)
	}
	s, err := New(Config{Workers: 4, QueueDepth: 32, Policy: PolicyBlock, QueueWait: 10 * time.Second, MaxBatch: 4}, exec)
	if err != nil {
		t.Fatal(err)
	}
	const clients, perClient = 8, 25
	var wg sync.WaitGroup
	var accepted atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				task := NewTask(fmt.Sprintf("key-%d", i%3), i)
				if err := s.Submit(task); err != nil {
					t.Errorf("client %d submit %d: %v", c, i, err)
					return
				}
				accepted.Add(1)
				if v, err := task.Wait(); err != nil || v != i {
					t.Errorf("client %d task %d = (%v, %v)", c, i, v, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	s.Close()
	if got := executed.Load(); got != accepted.Load() {
		t.Errorf("executed %d tasks, accepted %d", got, accepted.Load())
	}
	st := s.Stats()
	if st.Executed != accepted.Load() {
		t.Errorf("stats.Executed = %d, want %d", st.Executed, accepted.Load())
	}
}

// waitFor polls cond until true or the deadline expires.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

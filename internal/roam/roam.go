// Package roam manages edge-server selection for a mobile client — the
// paper's §I mobility scenario: "when we need to change the edge server
// during app execution (e.g., when a mobile client moves to a different
// service area), snapshot-based offloading can readily work on a new edge
// server since it has no dependence on the previous server."
//
// A Roamer probes a set of candidate edge servers, connects to the best
// one, and re-targets the app's offloader when the current server becomes
// unreachable or a sufficiently faster candidate appears. Because the
// snapshot mechanism is server-stateless (models re-pre-send, deltas fall
// back to full snapshots), switching requires no migration protocol at all.
package roam

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"websnap/internal/client"
	"websnap/internal/obs"
	"websnap/internal/protocol"
	"websnap/internal/telemetry"
	"websnap/internal/trace"
)

// DefaultHintStaleness is how long a probed load hint keeps influencing
// server scoring when Config.HintStaleness is zero.
const DefaultHintStaleness = 10 * time.Second

// Errors reported by the roamer.
var (
	ErrNoServers   = errors.New("roam: no candidate servers")
	ErrNoReachable = errors.New("roam: no reachable edge server")
)

// ServerInfo is the probe state of one candidate edge server.
type ServerInfo struct {
	Addr string
	// RTT is the last measured probe round-trip time.
	RTT time.Duration
	// Load is the server's scheduling load from the last ping probe; nil
	// for servers that predate the load-hint extension (selection then
	// falls back to RTT alone).
	Load *protocol.LoadHint
	// Score is the effective cost used for selection: RTT plus the
	// server's estimated queueing delay. A nearby but overloaded server
	// scores worse than a slightly farther idle one.
	Score time.Duration
	// Healthy reports whether the last probe succeeded.
	Healthy bool
	// LastProbe is when the server was last probed.
	LastProbe time.Time
}

// Saturated reports whether the server advertised a full admission queue.
func (i ServerInfo) Saturated() bool {
	return i.Load != nil && i.Load.Saturated
}

// better orders candidates for selection: non-saturated before saturated,
// then by score.
func (i ServerInfo) better(j ServerInfo) bool {
	if i.Saturated() != j.Saturated() {
		return !i.Saturated()
	}
	return i.Score < j.Score
}

// Config parametrizes a Roamer.
type Config struct {
	// Servers lists candidate edge server addresses. May be empty when
	// FleetView supplies membership dynamically.
	Servers []string
	// FleetView, when non-nil, supplies the candidate set dynamically —
	// typically a fleet registry view ranked by a placement policy (see
	// fleet.PlacementView). It returns candidate addresses in placement-
	// preference order plus a source tag: "registry" for a live view,
	// "registry-cached" when the client serves its last-known-good cached
	// view during a registry outage. The roamer refreshes membership at
	// the start of every probe round; a FleetView error keeps the previous
	// membership and records source "last-known-good". The source tag is
	// attached to switch audit logs so degraded placement is visible in
	// the decision record.
	FleetView func() (addrs []string, source string, err error)
	// SwitchMargin is the relative RTT advantage a candidate needs
	// before the roamer abandons a healthy current server (0.3 = 30%
	// faster). Zero selects a default of 0.3; hysteresis avoids
	// flapping between near-equal servers.
	SwitchMargin float64
	// Probe measures one server's reachability and latency. Nil selects
	// PingProbe, which also collects the server's load hint. Custom
	// probes report RTT only (no load).
	Probe func(addr string) (time.Duration, error)
	// ProbeLoad measures reachability, latency, and scheduling load. When
	// set it takes precedence over Probe. Nil with a nil Probe selects
	// PingProbe.
	ProbeLoad func(addr string) (time.Duration, *protocol.LoadHint, error)
	// Dial opens an offloading connection. Nil selects client.Dial.
	Dial func(addr string) (*client.Conn, error)
	// Now is the clock; nil selects time.Now.
	Now func() time.Time
	// HintStaleness bounds how long a probed load hint keeps counting
	// toward a server's score and saturation state. A selection made long
	// after the last probe falls back to RTT alone instead of trusting a
	// queue report from a server whose load has long since changed. Zero
	// selects DefaultHintStaleness.
	HintStaleness time.Duration
	// Logger, when non-nil, records server-switch decisions as structured
	// JSON lines (old/new server, switch count) — the mobility analogue
	// of the offload decision audit.
	Logger *obs.Logger
	// Flight, when non-nil, records each completed server switch in the
	// flight recorder, so /debug/flight interleaves handoffs with the
	// slow/failed requests they may explain.
	Flight *telemetry.FlightRecorder
}

// Roamer tracks candidate edge servers and the current connection.
type Roamer struct {
	cfg Config

	// rec records successful probe round trips into the probe-stage
	// histogram, so roaming overhead shows up in the same latency export
	// as the offload pipeline.
	rec *trace.Recorder

	mu          sync.Mutex
	servers     map[string]*ServerInfo
	order       []string
	currentAddr string
	currentConn *client.Conn
	switches    int
	// viewSource records where the current membership came from ("" for a
	// static server list; "registry", "registry-cached", or
	// "last-known-good" under a FleetView).
	viewSource string
}

// TraceRecorder exposes the roamer's probe-latency histograms.
func (r *Roamer) TraceRecorder() *trace.Recorder { return r.rec }

// New creates a roamer over the configured candidate servers.
func New(cfg Config) (*Roamer, error) {
	if len(cfg.Servers) == 0 && cfg.FleetView == nil {
		return nil, ErrNoServers
	}
	if cfg.SwitchMargin <= 0 {
		cfg.SwitchMargin = 0.3
	}
	if cfg.ProbeLoad == nil {
		if cfg.Probe != nil {
			probe := cfg.Probe
			cfg.ProbeLoad = func(addr string) (time.Duration, *protocol.LoadHint, error) {
				rtt, err := probe(addr)
				return rtt, nil, err
			}
		} else {
			cfg.ProbeLoad = PingProbe
		}
	}
	if cfg.Dial == nil {
		cfg.Dial = client.Dial
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.HintStaleness <= 0 {
		cfg.HintStaleness = DefaultHintStaleness
	}
	r := &Roamer{
		cfg:     cfg,
		servers: make(map[string]*ServerInfo, len(cfg.Servers)),
		rec:     trace.NewRecorder(),
	}
	for _, addr := range cfg.Servers {
		if addr == "" {
			return nil, errors.New("roam: empty server address")
		}
		if _, dup := r.servers[addr]; dup {
			return nil, fmt.Errorf("roam: duplicate server %q", addr)
		}
		r.servers[addr] = &ServerInfo{Addr: addr}
		r.order = append(r.order, addr)
	}
	return r, nil
}

// PingProbe measures a TCP connect round trip, then pings the server for
// its scheduling load. Servers that predate MsgPing fail the ping and are
// scored by connect RTT alone — a reachable old server is still a valid
// roaming target.
func PingProbe(addr string) (time.Duration, *protocol.LoadHint, error) {
	start := time.Now()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return 0, nil, err
	}
	rtt := time.Since(start)
	c := client.NewConn(conn)
	defer c.Close()
	c.SetRequestTimeout(2 * time.Second)
	if _, load, err := c.Ping(); err == nil {
		return rtt, load, nil
	}
	return rtt, nil, nil
}

// refreshMembership pulls the candidate set from the fleet view, keeping
// probe state for servers that persist across refreshes. A view error
// keeps the previous membership (degrade to last-known-good) rather than
// stranding the roamer: a dead registry must not take down clients that
// already know where the fleet is.
func (r *Roamer) refreshMembership() {
	if r.cfg.FleetView == nil {
		return
	}
	addrs, source, err := r.cfg.FleetView()
	r.mu.Lock()
	defer r.mu.Unlock()
	if err != nil {
		r.viewSource = "last-known-good"
		r.cfg.Logger.Warn("roam: fleet view unavailable, keeping last-known-good membership",
			obs.F("error", err.Error()), obs.F("servers", len(r.order)))
		return
	}
	r.viewSource = source
	seen := make(map[string]bool, len(addrs))
	order := make([]string, 0, len(addrs)+1)
	servers := make(map[string]*ServerInfo, len(addrs)+1)
	added := 0
	for _, addr := range addrs {
		if addr == "" || seen[addr] {
			continue
		}
		seen[addr] = true
		if info, ok := r.servers[addr]; ok {
			servers[addr] = info
		} else {
			servers[addr] = &ServerInfo{Addr: addr}
			added++
		}
		order = append(order, addr)
	}
	// The current server stays a candidate even when the view drops it:
	// selection quality, not membership churn, decides when to abandon a
	// live connection.
	if r.currentAddr != "" && !seen[r.currentAddr] {
		if info, ok := r.servers[r.currentAddr]; ok {
			servers[r.currentAddr] = info
			order = append(order, r.currentAddr)
		}
	}
	removed := 0
	for addr := range r.servers {
		if _, ok := servers[addr]; !ok {
			removed++
		}
	}
	if added > 0 || removed > 0 {
		r.cfg.Logger.Info("roam: fleet membership changed",
			obs.F("added", added), obs.F("removed", removed),
			obs.F("servers", len(order)), obs.F("view", source))
	}
	r.order, r.servers = order, servers
}

// ViewSource reports where the current candidate membership came from: ""
// for a static server list; "registry", "registry-cached", or
// "last-known-good" when a FleetView feeds the roamer.
func (r *Roamer) ViewSource() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.viewSource
}

// ProbeAll refreshes fleet membership, probes every candidate, and returns
// their states sorted by (healthy first, then RTT).
func (r *Roamer) ProbeAll() []ServerInfo {
	r.refreshMembership()
	r.mu.Lock()
	addrs := append([]string(nil), r.order...)
	r.mu.Unlock()
	type result struct {
		addr string
		rtt  time.Duration
		load *protocol.LoadHint
		err  error
	}
	results := make([]result, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			rtt, load, err := r.cfg.ProbeLoad(addr)
			results[i] = result{addr: addr, rtt: rtt, load: load, err: err}
		}(i, addr)
	}
	wg.Wait()
	for _, res := range results {
		if res.err == nil {
			r.rec.Observe(trace.StageProbe, res.rtt)
		}
	}
	r.mu.Lock()
	now := r.cfg.Now()
	for _, res := range results {
		info := r.servers[res.addr]
		if info == nil {
			// A concurrent membership refresh dropped this server while it
			// was being probed.
			continue
		}
		info.LastProbe = now
		info.Healthy = res.err == nil
		if res.err == nil {
			info.RTT = res.rtt
			info.Load = res.load
			info.Score = res.rtt
			if res.load != nil {
				info.Score += res.load.QueueingDelay()
			}
		}
	}
	out := make([]ServerInfo, 0, len(r.order))
	for _, addr := range r.order {
		out = append(out, *r.servers[addr])
	}
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Healthy != out[j].Healthy {
			return out[i].Healthy
		}
		return out[i].better(out[j])
	})
	return out
}

// stale reports whether the server's last probe predates the staleness
// window: everything it told us (RTT, queue depth, saturation) describes a
// state that may no longer exist.
func (r *Roamer) stale(info *ServerInfo, now time.Time) bool {
	return now.Sub(info.LastProbe) > r.cfg.HintStaleness
}

// freshView returns info with a stale load hint stripped: once the hint is
// older than the staleness window, the score falls back to RTT alone and
// the saturation flag no longer repels selection — the queue that hint
// described has long since drained or grown.
func (r *Roamer) freshView(info ServerInfo, now time.Time) ServerInfo {
	if info.Load != nil && now.Sub(info.LastProbe) > r.cfg.HintStaleness {
		info.Load = nil
		info.Score = info.RTT
	}
	return info
}

// Best returns the healthiest candidate with the lowest effective cost
// (RTT plus advertised queueing delay) from the most recent probes; lightly
// loaded servers beat equally near saturated ones.
//
// Servers whose last probe is older than the staleness window are excluded
// outright while any freshly probed server remains: a stale probe is a
// measurement of a server state that no longer exists, and letting it
// compete on its old RTT shadows live measurements (historically it kept
// its RTT score after losing only its load hint, so a long-unprobed server
// could outrank a just-probed one). Only when every healthy server is
// stale does selection degrade to last-known-good, scored by RTT alone.
func (r *Roamer) Best() (ServerInfo, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.cfg.Now()
	var best, lastKnown ServerInfo
	found, foundStale := false, false
	for _, addr := range r.order {
		info := r.servers[addr]
		if !info.Healthy {
			continue
		}
		if r.stale(info, now) {
			v := r.freshView(*info, now)
			if !foundStale || v.better(lastKnown) {
				lastKnown, foundStale = v, true
			}
			continue
		}
		if !found || info.better(best) {
			best, found = *info, true
		}
	}
	if found {
		return best, nil
	}
	if foundStale {
		return lastKnown, nil
	}
	return ServerInfo{}, ErrNoReachable
}

// Current returns the current server address and connection ("" and nil
// before the first Connect).
func (r *Roamer) Current() (string, *client.Conn) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.currentAddr, r.currentConn
}

// Switches counts completed server changes (the first Connect included).
func (r *Roamer) Switches() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.switches
}

// Connect probes all candidates and connects to the best one.
func (r *Roamer) Connect() (*client.Conn, error) {
	r.ProbeAll()
	best, err := r.Best()
	if err != nil {
		return nil, err
	}
	return r.SwitchTo(best.Addr)
}

// SwitchTo connects to the named server, closing the previous connection.
func (r *Roamer) SwitchTo(addr string) (*client.Conn, error) {
	r.mu.Lock()
	if _, known := r.servers[addr]; !known {
		r.mu.Unlock()
		return nil, fmt.Errorf("roam: unknown server %q", addr)
	}
	r.mu.Unlock()
	conn, err := r.cfg.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("roam: dial %s: %w", addr, err)
	}
	r.mu.Lock()
	old := r.currentConn
	oldAddr := r.currentAddr
	r.currentConn = conn
	r.currentAddr = addr
	r.switches++
	switches := r.switches
	viewSource := r.viewSource
	r.mu.Unlock()
	if old != nil {
		old.Close()
	}
	fields := []obs.Field{obs.F("from", oldAddr), obs.F("to", addr), obs.F("switches", switches)}
	if viewSource != "" {
		// Audit where the membership behind this switch came from, so a
		// placement decision made on a degraded (cached or last-known-good)
		// view is distinguishable from one made on live registry data.
		fields = append(fields, obs.F("view", viewSource))
	}
	r.cfg.Logger.Info("roam: switched edge server", fields...)
	if r.cfg.Flight != nil {
		note := fmt.Sprintf("switch %d: %s -> %s", switches, oldAddr, addr)
		if viewSource != "" {
			note += " (view " + viewSource + ")"
		}
		r.cfg.Flight.Record(telemetry.FlightEntry{
			Reason: telemetry.FlightSwitch,
			Note:   note,
		})
	}
	return conn, nil
}

// Evaluate re-probes and decides whether to switch: it switches when the
// current server is unhealthy, or when a candidate beats it by more than
// the configured margin. It returns the new connection (nil if no switch
// happened) and whether a switch occurred.
func (r *Roamer) Evaluate() (*client.Conn, bool, error) {
	r.ProbeAll()
	best, err := r.Best()
	if err != nil {
		return nil, false, err
	}
	r.mu.Lock()
	curAddr := r.currentAddr
	var cur *ServerInfo
	var curView ServerInfo
	if curAddr != "" {
		cur = r.servers[curAddr]
		if cur != nil {
			curView = r.freshView(*cur, r.cfg.Now())
		}
	}
	margin := r.cfg.SwitchMargin
	r.mu.Unlock()
	switch {
	case cur == nil, !cur.Healthy:
		// No current server or it died: take the best.
	case best.Addr == curAddr:
		return nil, false, nil
	case curView.Saturated() && !best.Saturated():
		// Current server is shedding load and an unsaturated candidate
		// exists: move immediately, regardless of margin.
	case float64(best.Score) < float64(curView.Score)*(1-margin):
		// Candidate clearly better: switch.
	default:
		return nil, false, nil
	}
	conn, err := r.SwitchTo(best.Addr)
	if err != nil {
		return nil, false, err
	}
	return conn, true, nil
}

// Close closes the current connection, if any.
func (r *Roamer) Close() error {
	r.mu.Lock()
	conn := r.currentConn
	r.currentConn = nil
	r.currentAddr = ""
	r.mu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}

package roam

import (
	"encoding/json"
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"websnap/internal/chaos"
	"websnap/internal/client"
	"websnap/internal/core"
	"websnap/internal/edge"
	"websnap/internal/mlapp"
	"websnap/internal/models"
	"websnap/internal/obs"
	"websnap/internal/protocol"
	"websnap/internal/testutil"
	"websnap/internal/webapp"
)

// fakeProbe returns scripted RTTs per address; a negative RTT means
// unreachable.
type fakeProbe struct {
	mu   sync.Mutex
	rtts map[string]time.Duration
}

func (f *fakeProbe) set(addr string, rtt time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rtts[addr] = rtt
}

func (f *fakeProbe) probe(addr string) (time.Duration, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	rtt, ok := f.rtts[addr]
	if !ok || rtt < 0 {
		return 0, errors.New("unreachable")
	}
	return rtt, nil
}

func fakeDial(addr string) (*client.Conn, error) {
	a, _ := net.Pipe()
	return client.NewConn(a), nil
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); !errors.Is(err, ErrNoServers) {
		t.Errorf("err = %v, want ErrNoServers", err)
	}
	if _, err := New(Config{Servers: []string{"a", "a"}}); err == nil {
		t.Error("duplicate servers should fail")
	}
	if _, err := New(Config{Servers: []string{""}}); err == nil {
		t.Error("empty address should fail")
	}
}

func TestBestPicksLowestRTT(t *testing.T) {
	probe := &fakeProbe{rtts: map[string]time.Duration{
		"near": 2 * time.Millisecond,
		"far":  50 * time.Millisecond,
		"dead": -1,
	}}
	r, err := New(Config{
		Servers: []string{"far", "near", "dead"},
		Probe:   probe.probe,
		Dial:    fakeDial,
	})
	if err != nil {
		t.Fatal(err)
	}
	infos := r.ProbeAll()
	if infos[0].Addr != "near" || !infos[0].Healthy {
		t.Errorf("sorted[0] = %+v, want near/healthy", infos[0])
	}
	if infos[len(infos)-1].Addr != "dead" || infos[len(infos)-1].Healthy {
		t.Errorf("sorted[last] = %+v, want dead/unhealthy", infos[len(infos)-1])
	}
	best, err := r.Best()
	if err != nil {
		t.Fatal(err)
	}
	if best.Addr != "near" {
		t.Errorf("best = %s, want near", best.Addr)
	}
}

func TestBestAllDead(t *testing.T) {
	probe := &fakeProbe{rtts: map[string]time.Duration{"a": -1}}
	r, err := New(Config{Servers: []string{"a"}, Probe: probe.probe, Dial: fakeDial})
	if err != nil {
		t.Fatal(err)
	}
	r.ProbeAll()
	if _, err := r.Best(); !errors.Is(err, ErrNoReachable) {
		t.Errorf("err = %v, want ErrNoReachable", err)
	}
}

func TestEvaluateHysteresis(t *testing.T) {
	probe := &fakeProbe{rtts: map[string]time.Duration{
		"a": 10 * time.Millisecond,
		"b": 9 * time.Millisecond, // only 10% better: below the margin
	}}
	r, err := New(Config{
		Servers: []string{"a", "b"}, Probe: probe.probe, Dial: fakeDial,
		SwitchMargin: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Force current = a.
	r.ProbeAll()
	if _, err := r.SwitchTo("a"); err != nil {
		t.Fatal(err)
	}
	if _, switched, err := r.Evaluate(); err != nil || switched {
		t.Errorf("marginal candidate should not trigger a switch (switched=%v err=%v)", switched, err)
	}
	// Now b becomes clearly better.
	probe.set("b", 2*time.Millisecond)
	_, switched, err := r.Evaluate()
	if err != nil || !switched {
		t.Fatalf("clear winner should switch (switched=%v err=%v)", switched, err)
	}
	if addr, _ := r.Current(); addr != "b" {
		t.Errorf("current = %s, want b", addr)
	}
	// Current server dies: must switch back.
	probe.set("b", -1)
	_, switched, err = r.Evaluate()
	if err != nil || !switched {
		t.Fatalf("dead current should switch (switched=%v err=%v)", switched, err)
	}
	if addr, _ := r.Current(); addr != "a" {
		t.Errorf("current = %s, want a", addr)
	}
	if r.Switches() != 3 {
		t.Errorf("switches = %d, want 3", r.Switches())
	}
}

// TestSwitchLogsDecision checks that server switches are recorded as
// structured JSON lines when a logger is configured.
func TestSwitchLogsDecision(t *testing.T) {
	var buf strings.Builder
	r, err := New(Config{
		Servers: []string{"a", "b"},
		Probe:   (&fakeProbe{rtts: map[string]time.Duration{"a": 1, "b": 2}}).probe,
		Dial:    fakeDial,
		Logger:  obs.NewLogger(&buf, obs.LevelInfo),
	})
	if err != nil {
		t.Fatal(err)
	}
	r.ProbeAll()
	if _, err := r.SwitchTo("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.SwitchTo("b"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("log lines = %d, want 2:\n%s", len(lines), buf.String())
	}
	var entry map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &entry); err != nil {
		t.Fatalf("switch log is not JSON: %v\n%s", err, lines[1])
	}
	if entry["from"] != "a" || entry["to"] != "b" || entry["switches"] != float64(2) {
		t.Errorf("switch log fields = %v", entry)
	}
}

func TestSwitchToUnknown(t *testing.T) {
	r, err := New(Config{Servers: []string{"a"}, Probe: (&fakeProbe{rtts: map[string]time.Duration{"a": 1}}).probe, Dial: fakeDial})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.SwitchTo("nowhere"); err == nil {
		t.Error("unknown server should fail")
	}
}

// startEdge runs a real edge server for the integration test.
func startEdge(t *testing.T) (addr string, shutdown func()) {
	t.Helper()
	srv, err := core.NewEdgeServer(nil)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	return ln.Addr().String(), func() {
		srv.Close()
		<-done
	}
}

// TestRoamingOffload is the paper's mobility story end to end: offload to
// server A, A dies, the roamer moves to B, the offloader re-targets
// (re-pre-sending its model), and inference continues with identical
// results — no dependence on the previous server.
func TestRoamingOffload(t *testing.T) {
	addrA, shutdownA := startEdge(t)
	addrB, shutdownB := startEdge(t)
	defer shutdownB()

	model, err := models.BuildTinyNet("tiny", 3)
	if err != nil {
		t.Fatal(err)
	}
	labels := []string{"cat", "dog", "bird"}

	roamer, err := New(Config{Servers: []string{addrA, addrB}, Probe: func(addr string) (time.Duration, error) {
		// Prefer A while it lives (deterministic choice).
		start := time.Now()
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			return 0, err
		}
		c.Close()
		rtt := time.Since(start)
		if addr == addrA {
			return rtt / 1000, nil
		}
		return rtt + time.Second, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := roamer.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer roamer.Close()
	if addr, _ := roamer.Current(); addr != addrA {
		t.Fatalf("connected to %s, want A=%s", addr, addrA)
	}

	app, err := mlapp.NewFullApp("roaming-app", "tiny", model, labels)
	if err != nil {
		t.Fatal(err)
	}
	off, err := client.NewOffloader(app, conn, client.Options{
		OffloadEventTypes: []string{mlapp.EventClick},
		Models:            []client.ModelToSend{{Name: "tiny", Net: model}},
		EnableDelta:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	off.StartPreSend()
	if err := off.WaitForAcks(); err != nil {
		t.Fatal(err)
	}

	runOnce := func(seed uint64) string {
		t.Helper()
		img := mlapp.SyntheticImage(3*16*16, seed)
		if err := mlapp.LoadImage(app, img); err != nil {
			t.Fatal(err)
		}
		app.DispatchEvent(webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick})
		if _, err := off.Run(10); err != nil {
			t.Fatal(err)
		}
		return mlapp.Result(app)
	}
	first := runOnce(1)
	if first == "" {
		t.Fatal("no result on server A")
	}

	// Server A goes away (the client left its service area).
	shutdownA()
	newConn, switched, err := roamer.Evaluate()
	if err != nil {
		t.Fatalf("Evaluate after A death: %v", err)
	}
	if !switched {
		t.Fatal("roamer should have switched to B")
	}
	if addr, _ := roamer.Current(); addr != addrB {
		t.Fatalf("current = %s, want B=%s", addr, addrB)
	}
	if err := off.Retarget(newConn); err != nil {
		t.Fatal(err)
	}
	if err := off.WaitForAcks(); err != nil {
		t.Fatalf("re-pre-send to B: %v", err)
	}
	second := runOnce(2)
	if second == "" {
		t.Fatal("no result on server B")
	}
	// Same input must give the same answer on either server.
	if again := runOnce(1); again != first {
		t.Errorf("server B result %q != server A result %q for identical input", again, first)
	}
	st := off.Stats()
	if st.Offloads != 3 {
		t.Errorf("offloads = %d, want 3", st.Offloads)
	}
}

// fakeLoadProbe scripts RTT and load hints per address.
type fakeLoadProbe struct {
	mu    sync.Mutex
	rtts  map[string]time.Duration
	loads map[string]*protocol.LoadHint
}

func (f *fakeLoadProbe) set(addr string, rtt time.Duration, load *protocol.LoadHint) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rtts[addr] = rtt
	f.loads[addr] = load
}

func (f *fakeLoadProbe) probe(addr string) (time.Duration, *protocol.LoadHint, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	rtt, ok := f.rtts[addr]
	if !ok || rtt < 0 {
		return 0, nil, errors.New("unreachable")
	}
	return rtt, f.loads[addr], nil
}

func newLoadProbe() *fakeLoadProbe {
	return &fakeLoadProbe{
		rtts:  make(map[string]time.Duration),
		loads: make(map[string]*protocol.LoadHint),
	}
}

func TestBestPrefersLightlyLoaded(t *testing.T) {
	// "near" is closer but queues work for 100 ms; "far" is 10 ms away
	// and idle. Load-aware scoring must pick "far".
	probe := newLoadProbe()
	probe.set("near", 2*time.Millisecond, &protocol.LoadHint{QueueingMillis: 100})
	probe.set("far", 10*time.Millisecond, &protocol.LoadHint{})
	r, err := New(Config{Servers: []string{"near", "far"}, ProbeLoad: probe.probe, Dial: fakeDial})
	if err != nil {
		t.Fatal(err)
	}
	r.ProbeAll()
	best, err := r.Best()
	if err != nil {
		t.Fatal(err)
	}
	if best.Addr != "far" {
		t.Errorf("best = %q (score %v), want far", best.Addr, best.Score)
	}
}

func TestSaturatedServerDeprioritized(t *testing.T) {
	probe := newLoadProbe()
	probe.set("sat", time.Millisecond, &protocol.LoadHint{Saturated: true})
	probe.set("ok", 30*time.Millisecond, &protocol.LoadHint{QueueingMillis: 1})
	r, err := New(Config{Servers: []string{"sat", "ok"}, ProbeLoad: probe.probe, Dial: fakeDial})
	if err != nil {
		t.Fatal(err)
	}
	r.ProbeAll()
	best, err := r.Best()
	if err != nil {
		t.Fatal(err)
	}
	if best.Addr != "ok" {
		t.Errorf("best = %q, want the unsaturated server", best.Addr)
	}
	// Only the saturated server left: still usable (better than nothing).
	probe.set("ok", -1, nil)
	r.ProbeAll()
	best, err = r.Best()
	if err != nil || best.Addr != "sat" {
		t.Errorf("best = %q, %v; want sat", best.Addr, err)
	}
}

func TestEvaluateLeavesSaturatedServer(t *testing.T) {
	probe := newLoadProbe()
	probe.set("a", time.Millisecond, nil)
	probe.set("b", 2*time.Millisecond, nil)
	r, err := New(Config{Servers: []string{"a", "b"}, ProbeLoad: probe.probe, Dial: fakeDial})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Connect(); err != nil {
		t.Fatal(err)
	}
	if addr, _ := r.Current(); addr != "a" {
		t.Fatalf("connected to %q, want a", addr)
	}
	// "a" saturates; "b" is barely slower but idle. The margin rule would
	// keep "a", but saturation forces the switch.
	probe.set("a", time.Millisecond, &protocol.LoadHint{Saturated: true})
	_, switched, err := r.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if !switched {
		t.Fatal("expected switch away from saturated server")
	}
	if addr, _ := r.Current(); addr != "b" {
		t.Errorf("current = %q, want b", addr)
	}
}

// TestStaleProbeExcluded is the regression test for stale-hint handling:
// a server whose probe has aged past HintStaleness used to keep competing
// on its (equally stale) RTT after only its load hint was dropped, letting
// a long-unprobed nearby server outrank a freshly probed one. Stale
// servers must be excluded outright while any fresh server exists, and
// selection must degrade to last-known-good only when every healthy server
// is stale.
func TestStaleProbeExcluded(t *testing.T) {
	probe := newLoadProbe()
	probe.set("staleFast", time.Millisecond, &protocol.LoadHint{})
	probe.set("fresh", 20*time.Millisecond, &protocol.LoadHint{})
	r, err := New(Config{Servers: []string{"staleFast", "fresh"}, ProbeLoad: probe.probe, Dial: fakeDial})
	if err != nil {
		t.Fatal(err)
	}
	r.ProbeAll()

	// Age one server's probe past the staleness window.
	r.mu.Lock()
	r.servers["staleFast"].LastProbe = r.cfg.Now().Add(-r.cfg.HintStaleness - time.Second)
	r.mu.Unlock()
	best, err := r.Best()
	if err != nil {
		t.Fatal(err)
	}
	if best.Addr != "fresh" {
		t.Errorf("best = %q, want the freshly probed server (stale probe must not compete on old RTT)", best.Addr)
	}

	// Every healthy server stale: degrade to last-known-good (RTT alone)
	// instead of reporting the fleet unreachable.
	r.mu.Lock()
	r.servers["fresh"].LastProbe = r.cfg.Now().Add(-r.cfg.HintStaleness - time.Second)
	r.mu.Unlock()
	best, err = r.Best()
	if err != nil {
		t.Fatalf("all-stale fleet should fall back to last-known-good, got %v", err)
	}
	if best.Addr != "staleFast" {
		t.Errorf("last-known-good best = %q, want the lowest-RTT server", best.Addr)
	}
	if best.Load != nil {
		t.Error("last-known-good view should carry no stale load hint")
	}
}

// TestFleetViewMembership covers the dynamic candidate source: membership
// follows the fleet view across refreshes, the current server survives
// being dropped from the view, and a view outage degrades to the previous
// membership with the source recorded for audit.
func TestFleetViewMembership(t *testing.T) {
	probe := &fakeProbe{rtts: map[string]time.Duration{
		"a": time.Millisecond,
		"b": 2 * time.Millisecond,
		"c": 3 * time.Millisecond,
	}}
	var mu sync.Mutex
	addrs := []string{"a", "b"}
	var viewErr error
	view := func() ([]string, string, error) {
		mu.Lock()
		defer mu.Unlock()
		if viewErr != nil {
			return nil, "", viewErr
		}
		return append([]string(nil), addrs...), "registry", nil
	}
	var logBuf strings.Builder
	r, err := New(Config{
		FleetView: view,
		Probe:     probe.probe,
		Dial:      fakeDial,
		Logger:    obs.NewLogger(&logBuf, obs.LevelInfo),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Connect(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if addr, _ := r.Current(); addr != "a" {
		t.Fatalf("connected to %q, want a", addr)
	}
	if src := r.ViewSource(); src != "registry" {
		t.Errorf("view source = %q, want registry", src)
	}
	if !strings.Contains(logBuf.String(), `"view":"registry"`) {
		t.Errorf("switch log should audit the view source:\n%s", logBuf.String())
	}

	// The view drops the current server and adds a new one: the candidate
	// set follows, but the live connection's server stays a candidate.
	mu.Lock()
	addrs = []string{"c", "b"}
	mu.Unlock()
	infos := r.ProbeAll()
	got := make(map[string]bool, len(infos))
	for _, info := range infos {
		got[info.Addr] = true
	}
	if !got["a"] || !got["b"] || !got["c"] {
		t.Fatalf("candidates after refresh = %v, want a (current), b, c", got)
	}
	best, err := r.Best()
	if err != nil {
		t.Fatal(err)
	}
	if best.Addr != "a" {
		t.Errorf("best = %q, want the retained current server (lowest RTT)", best.Addr)
	}

	// Registry outage: membership freezes at last-known-good and the
	// degraded source is recorded.
	mu.Lock()
	viewErr = errors.New("registry unreachable")
	mu.Unlock()
	infos = r.ProbeAll()
	if len(infos) != 3 {
		t.Errorf("candidates during outage = %d, want 3 (last-known-good)", len(infos))
	}
	if src := r.ViewSource(); src != "last-known-good" {
		t.Errorf("view source during outage = %q, want last-known-good", src)
	}
}

// TestNewFleetViewOnly checks that a dynamic view stands in for a static
// server list at construction time.
func TestNewFleetViewOnly(t *testing.T) {
	if _, err := New(Config{FleetView: func() ([]string, string, error) { return nil, "registry", nil }}); err != nil {
		t.Errorf("New with FleetView and no static servers: %v", err)
	}
}

func TestPingProbeAgainstRealServer(t *testing.T) {
	srv, err := core.NewEdgeServer(nil)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	rtt, load, err := PingProbe(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if rtt <= 0 {
		t.Errorf("rtt = %v", rtt)
	}
	if load == nil {
		t.Fatal("no load hint from real server")
	}
	if load.Workers <= 0 {
		t.Errorf("load = %+v, want positive worker count", load)
	}
}

// startEdgeSrv is startEdge with the server handle exposed, so tests can
// read its execution counters.
func startEdgeSrv(t *testing.T) (*edge.Server, string, func()) {
	t.Helper()
	srv, err := core.NewEdgeServer(nil)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	var once sync.Once
	return srv, ln.Addr().String(), func() {
		once.Do(func() {
			srv.Close()
			<-done
		})
	}
}

// TestMidHandoffConnectionLoss is the mobility scenario under fire: the
// client hands off from server A to server B, and the very first
// connection to B dies mid-frame (a scripted chaos reset inside the model
// re-pre-send). The invariants under that loss:
//
//   - every offload-eligible event executes on exactly one server — the
//     truncated frame must not execute on B and again on the redialed conn;
//   - the offloader records exactly one terminal audit decision per event;
//   - results stay bit-identical across the handoff for identical input.
//
// This is the paper's statelessness claim at its sharpest: the interrupted
// handoff needs no recovery protocol because the next snapshot carries
// everything the new server lacks.
func TestMidHandoffConnectionLoss(t *testing.T) {
	testutil.LeakCheck(t)
	srvA, addrA, shutdownA := startEdgeSrv(t)
	srvB, addrB, shutdownB := startEdgeSrv(t)
	defer shutdownB()
	defer shutdownA()

	// The first connection to B resets 64 bytes into the write stream —
	// inside the first frame of the handoff's model re-pre-send. Redials
	// are clean.
	var bDials atomic.Int32
	dial := func(addr string) (*client.Conn, error) {
		return client.DialWrapped(addr, func(c net.Conn) net.Conn {
			if addr == addrB && bDials.Add(1) == 1 {
				return chaos.NewConn(c, chaos.Plan{Faults: []chaos.Fault{
					{Kind: chaos.FaultReset, Dir: chaos.DirWrite, Offset: 64},
				}})
			}
			return c
		})
	}
	roamer, err := New(Config{
		Servers: []string{addrA, addrB},
		Dial:    dial,
		Probe: func(addr string) (time.Duration, error) {
			start := time.Now()
			c, err := net.DialTimeout("tcp", addr, time.Second)
			if err != nil {
				return 0, err
			}
			c.Close()
			rtt := time.Since(start)
			if addr == addrA {
				return rtt / 1000, nil
			}
			return rtt + time.Second, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := roamer.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer roamer.Close()
	if addr, _ := roamer.Current(); addr != addrA {
		t.Fatalf("connected to %s, want A=%s", addr, addrA)
	}

	model, err := models.BuildTinyNet("tiny", 3)
	if err != nil {
		t.Fatal(err)
	}
	app, err := mlapp.NewFullApp("handoff-app", "tiny", model, []string{"cat", "dog", "bird"})
	if err != nil {
		t.Fatal(err)
	}
	auditor := obs.NewAuditor(obs.AuditorOptions{})
	off, err := client.NewOffloader(app, conn, client.Options{
		OffloadEventTypes: []string{mlapp.EventClick},
		Models:            []client.ModelToSend{{Name: "tiny", Net: model}},
		Audit:             auditor,
		LocalFallback:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	off.StartPreSend()
	if err := off.WaitForAcks(); err != nil {
		t.Fatal(err)
	}
	runOnce := func(seed uint64) string {
		t.Helper()
		if err := mlapp.LoadImage(app, mlapp.SyntheticImage(3*16*16, seed)); err != nil {
			t.Fatal(err)
		}
		app.DispatchEvent(webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick})
		if _, err := off.Run(10); err != nil {
			t.Fatal(err)
		}
		return mlapp.Result(app)
	}
	first := runOnce(1)
	if first == "" {
		t.Fatal("no result on server A")
	}

	// The client leaves A's service area mid-session.
	shutdownA()
	newConn, switched, err := roamer.Evaluate()
	if err != nil {
		t.Fatalf("Evaluate after A death: %v", err)
	}
	if !switched {
		t.Fatal("roamer should have switched to B")
	}
	// Retarget restarts the pre-send, which dies on the chaotic conn: the
	// handoff's model transfer is the frame the reset lands in.
	if err := off.Retarget(newConn); err != nil {
		t.Fatal(err)
	}
	if err := off.WaitForAcks(); err == nil {
		t.Fatal("pre-send over the resetting conn should have failed")
	}
	if m := srvB.Metrics(); m.ModelsStored != 0 || m.SnapshotsExecuted != 0 {
		t.Fatalf("B acted on a truncated frame: %+v", m)
	}

	// The first event after the loss rides the still-broken conn: its
	// inline model send fails fast, the offloader repairs the conn for
	// next time and finishes this event locally — executed exactly once,
	// by no server.
	if fb := runOnce(1); fb != first {
		t.Errorf("local fallback result = %q, want %q", fb, first)
	}
	st := off.Stats()
	if st.LocalFallbacks != 1 || st.Redials != 1 {
		t.Errorf("stats after fallback = %+v, want 1 fallback / 1 redial", st)
	}
	if m := srvB.Metrics(); m.SnapshotsExecuted != 0 {
		t.Fatalf("B executed the fallback event too: %+v", m)
	}

	// The next event runs on the repaired conn, carrying the model inline:
	// it must run on B exactly once, with the same answer A gave for the
	// same input.
	if again := runOnce(1); again != first {
		t.Errorf("result after interrupted handoff = %q, want %q", again, first)
	}
	if bDials.Load() < 2 {
		t.Errorf("B dial count = %d, want >= 2 (chaotic dial + clean redial)", bDials.Load())
	}

	mA, mB := srvA.Metrics(), srvB.Metrics()
	if mA.SnapshotsExecuted != 1 {
		t.Errorf("A executed %d snapshots, want 1", mA.SnapshotsExecuted)
	}
	if mB.SnapshotsExecuted != 1 {
		t.Errorf("B executed %d snapshots, want 1 (exactly-once after handoff)", mB.SnapshotsExecuted)
	}
	if mB.ModelsStored != 1 {
		t.Errorf("B stored %d models, want 1 (the inline re-send)", mB.ModelsStored)
	}

	// One terminal audit decision per offload-eligible event: full on A,
	// fallback for the event the loss consumed, full on B. The interrupted
	// pre-send is connection maintenance, not a decision.
	if got := auditor.Total(); got != 3 {
		t.Errorf("audit decisions = %d, want 3", got)
	}
	for _, pc := range auditor.Summary().Mix {
		switch pc.Path {
		case obs.PathFull:
			if pc.Count != 2 {
				t.Errorf("full-path decisions = %d, want 2", pc.Count)
			}
		case obs.PathFallback:
			if pc.Count != 1 {
				t.Errorf("fallback decisions = %d, want 1", pc.Count)
			}
		default:
			if pc.Count != 0 {
				t.Errorf("unexpected %s decisions: %d", pc.Path, pc.Count)
			}
		}
	}
}

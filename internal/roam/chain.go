// Multi-hop chain placement and execution: the roam-layer driver of K-way
// partial inference. A ChainExecutor plans an ordered cut set over live
// candidate servers (rendezvous/probe ranked, queue hints folded into the
// DP), pre-sends the model along the chain, executes via the client chain
// protocol, and degrades on failure — excluding the dead hop and
// re-planning a shorter chain, down to 2-way and finally local execution —
// while emitting exactly one audit decision per request.
package roam

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"websnap/internal/client"
	"websnap/internal/costmodel"
	"websnap/internal/netem"
	"websnap/internal/nn"
	"websnap/internal/obs"
	"websnap/internal/partition"
	"websnap/internal/protocol"
	"websnap/internal/telemetry"
	"websnap/internal/tensor"
	"websnap/internal/trace"
)

// chainRawBytesPerValue is the wire cost of one boundary value: chain
// frames ship raw little-endian float32s, not snapshot text, so each value
// is exactly 4 bytes.
const chainRawBytesPerValue = 4

// chainStateOverheadBytes approximates the non-tensor part of one chain
// frame: the JSON header with the hop manifest and trace identity.
const chainStateOverheadBytes = 512

// maxChainAttempts is a safety bound on re-planning rounds; every round
// either excludes a failed server or shortens the chain, so the bound is
// never the thing that terminates a healthy run.
const maxChainAttempts = 16

// ChainServer is one candidate chain hop: its address and the live queue
// state the planner folds into the cut-set DP.
type ChainServer struct {
	Addr string
	// QueueDelay is the server's estimated scheduler queueing delay from
	// its freshest load hint (zero when unknown).
	QueueDelay time.Duration
	// Saturated marks a server advertising a full admission queue; the
	// planner skips it — a chain is only as fast as its slowest hop.
	Saturated bool
}

// ChainCandidates derives chain hop candidates from the roamer's freshest
// probe state: healthy, freshly probed servers in selection order
// (unsaturated before saturated, then by score). Saturation is reported,
// not filtered, so the executor can still build a chain from a degraded
// fleet when nothing better exists.
func (r *Roamer) ChainCandidates() []ChainServer {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.cfg.Now()
	type scored struct {
		cs   ChainServer
		info ServerInfo
	}
	var ranked []scored
	for _, addr := range r.order {
		info := r.servers[addr]
		if !info.Healthy || r.stale(info, now) {
			continue
		}
		cs := ChainServer{Addr: addr}
		if info.Load != nil {
			cs.QueueDelay = info.Load.QueueingDelay()
			cs.Saturated = info.Load.Saturated
		}
		ranked = append(ranked, scored{cs: cs, info: *info})
	}
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].info.better(ranked[j].info) })
	out := make([]ChainServer, len(ranked))
	for i, s := range ranked {
		out[i] = s.cs
	}
	return out
}

// FleetChainView adapts a fleet placement view (e.g. fleet.PickChain over
// a registry view) into the executor's candidate supplier, carrying each
// server's advertised queueing delay and saturation into the planner.
func FleetChainView(view func() []protocol.FleetServer) func() []ChainServer {
	return func() []ChainServer {
		servers := view()
		out := make([]ChainServer, 0, len(servers))
		for _, s := range servers {
			cs := ChainServer{Addr: s.Addr}
			if s.Load != nil {
				cs.QueueDelay = s.Load.QueueingDelay()
				cs.Saturated = s.Load.Saturated
			}
			out = append(out, cs)
		}
		return out
	}
}

// ChainConfig parametrizes a ChainExecutor.
type ChainConfig struct {
	// AppID and ModelName identify the model at every hop; Model is the
	// full network the client holds (and pre-sends along the chain).
	AppID     string
	ModelName string
	Model     *nn.Network
	// Client is the client device's latency model; Server is the default
	// per-hop model, overridable per address via HopDevice.
	Client    costmodel.Device
	Server    costmodel.Device
	HopDevice func(addr string) costmodel.Device
	// Network is the default per-link profile; HopLink, when set, names
	// the link INTO the given hop (the client→first-hop link for the
	// first address, hop-to-hop otherwise).
	Network netem.Profile
	HopLink func(addr string) netem.Profile
	// Depth is the desired chain depth in servers (>= 1); zero selects 2.
	// The executor degrades below it when candidates, cut points, or
	// failures demand.
	Depth int
	// RequireDenature keeps at least one real layer on the client (the
	// paper's privacy constraint).
	RequireDenature bool
	// Objective selects what the cut-set DP minimizes (latency default).
	Objective partition.Objective
	// Candidates supplies the live candidate servers, best first —
	// typically (*Roamer).ChainCandidates or FleetChainView. Called once
	// per planning round, so re-plans see fresh membership and hints.
	Candidates func() []ChainServer
	// Dial opens an offloading connection to a hop. Nil selects
	// client.Dial. Chaos tests wrap here.
	Dial func(addr string) (*client.Conn, error)
	// Local executes the full model locally (the terminal fallback). Nil
	// selects Model.Forward.
	Local func(in *tensor.Tensor) (*tensor.Tensor, error)
	// Auditor receives exactly one decision per Execute call (nil-safe).
	Auditor *obs.Auditor
	// Flight, when non-nil, captures every chain re-plan.
	Flight *telemetry.FlightRecorder
	// Logger, when non-nil, records planning and degradation decisions.
	Logger *obs.Logger
}

// ChainExecutor runs multi-hop partial inference with re-planning.
// Connections (with the model pre-sent) are cached per hop address across
// Execute calls; Close releases them.
type ChainExecutor struct {
	cfg         ChainConfig
	resultBytes int64

	mu      sync.Mutex
	conns   map[string]*client.Conn
	replans int
}

// NewChainExecutor validates the configuration and prepares an executor.
func NewChainExecutor(cfg ChainConfig) (*ChainExecutor, error) {
	if cfg.Model == nil {
		return nil, errors.New("roam: chain: nil model")
	}
	if cfg.AppID == "" || cfg.ModelName == "" {
		return nil, errors.New("roam: chain: empty app or model name")
	}
	if cfg.Candidates == nil {
		return nil, errors.New("roam: chain: nil candidate supplier")
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 2
	}
	if cfg.Dial == nil {
		cfg.Dial = client.Dial
	}
	if cfg.Local == nil {
		cfg.Local = cfg.Model.Forward
	}
	// Zero-valued device and link models would fail DP validation on every
	// planning round; default them to the paper's calibrated profiles.
	if cfg.Client.Name == "" {
		cfg.Client = costmodel.ClientOdroid
	}
	if cfg.Server.Name == "" {
		cfg.Server = costmodel.ServerX86
	}
	if cfg.Network.BandwidthBitsPerSec == 0 {
		cfg.Network = netem.WiFi30Mbps
	}
	out, err := cfg.Model.OutputShape()
	if err != nil {
		return nil, fmt.Errorf("roam: chain: %w", err)
	}
	return &ChainExecutor{
		cfg:         cfg,
		resultBytes: int64(4 * tensor.Volume(out)),
		conns:       make(map[string]*client.Conn),
	}, nil
}

// Replans counts chain re-planning rounds across all Execute calls.
func (e *ChainExecutor) Replans() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.replans
}

// Close releases every cached hop connection.
func (e *ChainExecutor) Close() error {
	e.mu.Lock()
	conns := e.conns
	e.conns = make(map[string]*client.Conn)
	e.mu.Unlock()
	var first error
	for _, c := range conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ChainReport describes one Execute outcome.
type ChainReport struct {
	// Path is the audited execution path: chain, fallback (local after a
	// chain failure), local (no candidates), or error.
	Path obs.DecisionPath
	// Hops is the manifest that produced the result (nil for local).
	Hops []protocol.ChainHop
	// TraceID is the request's end-to-end trace identity.
	TraceID string
	// Replans counts re-planning rounds within this request.
	Replans int
	// Predicted is the DP's end-to-end estimate for the executed plan;
	// Measured is the observed wall time.
	Predicted, Measured time.Duration
	// Span is the merged chain span tree (first hop's subtree with every
	// downstream hop grafted beneath it), when telemetry returned one.
	Span *protocol.SpanNode
}

// Execute runs one inference through the best available chain, re-planning
// around failed hops and falling back to local execution when no chain
// survives. Exactly one audit decision is recorded per call, whatever
// path the request takes.
func (e *ChainExecutor) Execute(in *tensor.Tensor) (*tensor.Tensor, ChainReport, error) {
	start := time.Now()
	report := ChainReport{TraceID: trace.NewID()}
	exclude := make(map[string]bool)
	depth := e.cfg.Depth
	var lastErr error
	for attempt := 0; attempt < maxChainAttempts; attempt++ {
		servers := e.liveCandidates(exclude, depth)
		if len(servers) == 0 {
			break
		}
		manifest, cand, err := e.plan(servers)
		if err != nil {
			// Not enough cut points for this depth (tiny model, deep
			// chain): shorten the chain and try again.
			if len(servers) > 1 {
				depth = len(servers) - 1
				continue
			}
			lastErr = err
			break
		}
		out, span, err := e.runChain(manifest, in, report.TraceID)
		if err == nil {
			report.Path = obs.PathChain
			report.Hops = manifest
			report.Predicted = cand.Latency
			report.Measured = time.Since(start)
			report.Span = span
			reason := ""
			switch {
			case report.Replans > 0:
				reason = "replanned"
			case len(manifest) < e.cfg.Depth:
				reason = "degraded-depth"
			}
			e.audit(report, reason)
			return out, report, nil
		}
		lastErr = err
		dead := manifest[0].Addr
		var che *client.ChainHopError
		if errors.As(err, &che) && che.Hop >= 1 && che.Hop <= len(manifest) {
			dead = manifest[che.Hop-1].Addr
		}
		exclude[dead] = true
		e.dropConn(dead)
		report.Replans++
		e.mu.Lock()
		e.replans++
		e.mu.Unlock()
		e.cfg.Logger.Warn("chain: hop failed, re-planning",
			obs.TraceID(report.TraceID),
			obs.F("dead", dead), obs.F("error", err.Error()),
			obs.F("replans", report.Replans))
		if e.cfg.Flight != nil {
			e.cfg.Flight.Record(telemetry.FlightEntry{
				TraceID: report.TraceID,
				Reason:  telemetry.FlightReplan,
				Note:    fmt.Sprintf("hop %s failed (%v); excluding and re-planning", dead, err),
				Span:    span,
			})
		}
	}
	// Terminal fallback: local execution, still exactly one decision.
	out, err := e.cfg.Local(in)
	report.Measured = time.Since(start)
	if err != nil {
		report.Path = obs.PathError
		e.audit(report, "local-failed")
		if lastErr != nil {
			return nil, report, fmt.Errorf("roam: chain failed (%v) and local fallback failed: %w", lastErr, err)
		}
		return nil, report, fmt.Errorf("roam: local execution failed: %w", err)
	}
	if lastErr != nil {
		report.Path = obs.PathFallback
		e.audit(report, "chain-failed")
	} else {
		report.Path = obs.PathLocal
		e.audit(report, "no-candidates")
	}
	return out, report, nil
}

// liveCandidates filters the supplier's view down to at most depth
// unexcluded, unsaturated servers, best first.
func (e *ChainExecutor) liveCandidates(exclude map[string]bool, depth int) []ChainServer {
	var out []ChainServer
	for _, s := range e.cfg.Candidates() {
		if exclude[s.Addr] || s.Saturated {
			continue
		}
		out = append(out, s)
		if len(out) == depth {
			break
		}
	}
	return out
}

// plan runs the cut-set DP over the candidate servers and translates the
// winning cut set into a protocol hop manifest.
func (e *ChainExecutor) plan(servers []ChainServer) ([]protocol.ChainHop, partition.ChainCandidate, error) {
	hops := make([]partition.Hop, 0, len(servers)+1)
	hops = append(hops, partition.Hop{Device: e.cfg.Client})
	links := make([]netem.Profile, 0, len(servers))
	for _, s := range servers {
		dev := e.cfg.Server
		if e.cfg.HopDevice != nil {
			dev = e.cfg.HopDevice(s.Addr)
		}
		link := e.cfg.Network
		if e.cfg.HopLink != nil {
			link = e.cfg.HopLink(s.Addr)
		}
		hops = append(hops, partition.Hop{Device: dev, QueueDelay: s.QueueDelay})
		links = append(links, link)
	}
	plan, err := partition.AnalyzeChain(e.cfg.Model, partition.ChainConfig{
		Hops:               hops,
		Links:              links,
		TextBytesPerValue:  chainRawBytesPerValue,
		StateOverheadBytes: chainStateOverheadBytes,
		ResultBytes:        e.resultBytes,
		Objective:          e.cfg.Objective,
	})
	if err != nil {
		return nil, partition.ChainCandidate{}, err
	}
	cand, err := plan.Choose(e.cfg.RequireDenature)
	if err != nil {
		return nil, partition.ChainCandidate{}, err
	}
	manifest := make([]protocol.ChainHop, len(servers))
	for i := range servers {
		hc := cand.Hops[i+1]
		manifest[i] = protocol.ChainHop{Addr: servers[i].Addr, From: hc.From, To: hc.To}
	}
	return manifest, cand, nil
}

// runChain pre-sends the model along the manifest, executes the client's
// front range locally, and drives the chain protocol. Failures carry hop
// attribution whenever one exists.
func (e *ChainExecutor) runChain(manifest []protocol.ChainHop, in *tensor.Tensor, traceID string) (*tensor.Tensor, *protocol.SpanNode, error) {
	for i, hop := range manifest {
		if _, err := e.hopConn(hop.Addr); err != nil {
			return nil, nil, &client.ChainHopError{Hop: i + 1, Err: err}
		}
	}
	boundary, err := e.cfg.Model.ForwardRange(in, 0, manifest[0].From)
	if err != nil {
		return nil, nil, err
	}
	conn, err := e.hopConn(manifest[0].Addr)
	if err != nil {
		return nil, nil, &client.ChainHopError{Hop: 1, Err: err}
	}
	outcome, err := conn.ChainExec(e.cfg.AppID, e.cfg.ModelName, manifest, boundary, traceID)
	if err != nil {
		if conn.Broken() {
			e.dropConn(manifest[0].Addr)
		}
		return nil, nil, err
	}
	return outcome.Output, outcome.Span, nil
}

// hopConn returns a cached connection to addr with the model pre-sent,
// dialing and pre-sending on first use.
func (e *ChainExecutor) hopConn(addr string) (*client.Conn, error) {
	e.mu.Lock()
	conn := e.conns[addr]
	e.mu.Unlock()
	if conn != nil && !conn.Broken() {
		return conn, nil
	}
	if conn != nil {
		e.dropConn(addr)
	}
	fresh, err := e.cfg.Dial(addr)
	if err != nil {
		return nil, err
	}
	fresh.EnableTelemetry()
	if err := fresh.PreSendModel(e.cfg.AppID, e.cfg.ModelName, e.cfg.Model, false); err != nil {
		fresh.Close()
		return nil, err
	}
	e.mu.Lock()
	if prev := e.conns[addr]; prev != nil {
		prev.Close()
	}
	e.conns[addr] = fresh
	e.mu.Unlock()
	return fresh, nil
}

// dropConn closes and forgets the cached connection to addr.
func (e *ChainExecutor) dropConn(addr string) {
	e.mu.Lock()
	conn := e.conns[addr]
	delete(e.conns, addr)
	e.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// audit records the single decision of one Execute call.
func (e *ChainExecutor) audit(report ChainReport, reason string) {
	addrs := make([]string, len(report.Hops))
	for i, h := range report.Hops {
		addrs[i] = h.Addr
	}
	e.cfg.Auditor.Record(obs.Decision{
		TraceID:   report.TraceID,
		AppID:     e.cfg.AppID,
		Path:      report.Path,
		Reason:    reason,
		Server:    strings.Join(addrs, ","),
		Predicted: report.Predicted,
		Measured:  report.Measured,
		HintAge:   -1,
	})
}

package roam

import (
	"net"
	"sync"
	"testing"
	"time"

	"websnap/internal/core"
	"websnap/internal/edge"
	"websnap/internal/models"
	"websnap/internal/nn"
	"websnap/internal/obs"
	"websnap/internal/protocol"
	"websnap/internal/telemetry"
	"websnap/internal/tensor"
)

// startChainEdge runs a chain-capable edge server that advertises its own
// listen address (so chain spans and relays carry the hop's identity).
func startChainEdge(t *testing.T) (addr string, shutdown func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cat, err := core.DefaultCatalog()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := edge.NewServer(edge.Config{Catalog: cat, Installed: true, AdvertiseAddr: ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	var once sync.Once
	return ln.Addr().String(), func() {
		once.Do(func() {
			srv.Close()
			<-done
		})
	}
}

// chainTestModel builds a deterministic small network plus an input.
func chainTestModel(t *testing.T) (*nn.Network, *tensor.Tensor) {
	t.Helper()
	model, err := models.BuildTinyNet("roam-chain", 3)
	if err != nil {
		t.Fatal(err)
	}
	in, err := tensor.New(model.InputShape()...)
	if err != nil {
		t.Fatal(err)
	}
	data := in.Data()
	s := uint64(77665544)
	for i := range data {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		data[i] = float32(s%100000)/10000 - 1
	}
	return model, in
}

// mixCount returns the decision count for one path in an audit summary.
func mixCount(sum obs.AuditSummary, path obs.DecisionPath) int64 {
	for _, pc := range sum.Mix {
		if pc.Path == path {
			return pc.Count
		}
	}
	return 0
}

// staticCandidates returns a fixed candidate supplier.
func staticCandidates(addrs ...string) func() []ChainServer {
	return func() []ChainServer {
		out := make([]ChainServer, len(addrs))
		for i, a := range addrs {
			out[i] = ChainServer{Addr: a}
		}
		return out
	}
}

func TestChainExecutorEndToEnd(t *testing.T) {
	model, in := chainTestModel(t)
	want, err := model.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	var addrs []string
	for i := 0; i < 3; i++ {
		addr, shutdown := startChainEdge(t)
		t.Cleanup(shutdown)
		addrs = append(addrs, addr)
	}
	audit := obs.NewAuditor(obs.AuditorOptions{Keep: 16})
	ex, err := NewChainExecutor(ChainConfig{
		AppID:           "chain-app",
		ModelName:       model.Name(),
		Model:           model,
		Depth:           3,
		RequireDenature: true,
		Candidates:      staticCandidates(addrs...),
		Auditor:         audit,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()

	out, report, err := ex.Execute(in)
	if err != nil {
		t.Fatal(err)
	}
	if report.Path != obs.PathChain {
		t.Fatalf("path = %q, want chain", report.Path)
	}
	if len(report.Hops) != 3 {
		t.Fatalf("manifest has %d hops, want 3: %+v", len(report.Hops), report.Hops)
	}
	// The manifest must tile the network: contiguous, strictly increasing
	// ranges ending at the last layer, starting past at least one client
	// layer (denature).
	if report.Hops[0].From < 1 {
		t.Fatalf("first server hop starts at %d; client kept no layer", report.Hops[0].From)
	}
	prev := report.Hops[0].From
	for i, h := range report.Hops {
		if h.From != prev || h.To <= h.From {
			t.Fatalf("hop %d range [%d,%d) not contiguous after %d", i+1, h.From, h.To, prev)
		}
		prev = h.To
	}
	if prev != model.NumLayers() {
		t.Fatalf("chain ends at layer %d, want %d", prev, model.NumLayers())
	}
	if !tensor.SameShape(out, want) {
		t.Fatalf("output shape %v != local %v", out.Shape(), want.Shape())
	}
	got, exp := out.Data(), want.Data()
	for i := range exp {
		if got[i] != exp[i] {
			t.Fatalf("chain output diverges at %d: %v != %v", i, got[i], exp[i])
		}
	}
	if report.Predicted <= 0 || report.Measured <= 0 {
		t.Errorf("report timings not populated: %+v", report)
	}
	if report.Span == nil {
		t.Error("no merged span tree returned")
	}
	sum := audit.Summary()
	if sum.Total != 1 || mixCount(sum, obs.PathChain) != 1 {
		t.Fatalf("audit mix = %+v, want exactly one chain decision", sum)
	}

	// A second execution reuses cached connections and audits once more.
	if _, _, err := ex.Execute(in); err != nil {
		t.Fatal(err)
	}
	if sum := audit.Summary(); sum.Total != 2 || mixCount(sum, obs.PathChain) != 2 {
		t.Fatalf("audit mix after second exec = %+v", sum)
	}
}

// TestChainExecutorReplanOnHopDeath kills the middle hop between requests:
// the next Execute must see the relay failure, attribute it to the dead
// hop, exclude it, re-plan a 2-server chain, and still return bit-identical
// output — with exactly one audit decision and a flight-recorder capture.
func TestChainExecutorReplanOnHopDeath(t *testing.T) {
	model, in := chainTestModel(t)
	want, err := model.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	var addrs []string
	var shutdowns []func()
	for i := 0; i < 3; i++ {
		addr, shutdown := startChainEdge(t)
		t.Cleanup(shutdown)
		addrs = append(addrs, addr)
		shutdowns = append(shutdowns, shutdown)
	}
	audit := obs.NewAuditor(obs.AuditorOptions{Keep: 16})
	flight := telemetry.NewFlightRecorder(0)
	ex, err := NewChainExecutor(ChainConfig{
		AppID:      "chain-app",
		ModelName:  model.Name(),
		Model:      model,
		Depth:      3,
		Candidates: staticCandidates(addrs...),
		Auditor:    audit,
		Flight:     flight,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()

	if _, report, err := ex.Execute(in); err != nil || report.Path != obs.PathChain {
		t.Fatalf("healthy chain exec: %v (path %q)", err, report.Path)
	}

	// Kill the middle hop; the first hop's relay to it will fail.
	shutdowns[1]()

	out, report, err := ex.Execute(in)
	if err != nil {
		t.Fatal(err)
	}
	if report.Path != obs.PathChain {
		t.Fatalf("path = %q, want chain after re-plan", report.Path)
	}
	if report.Replans == 0 {
		t.Fatal("no re-plan recorded despite dead hop")
	}
	for _, h := range report.Hops {
		if h.Addr == addrs[1] {
			t.Fatalf("dead hop %s still in manifest %+v", addrs[1], report.Hops)
		}
	}
	got, exp := out.Data(), want.Data()
	for i := range exp {
		if got[i] != exp[i] {
			t.Fatalf("re-planned output diverges at %d: %v != %v", i, got[i], exp[i])
		}
	}
	sum := audit.Summary()
	if sum.Total != 2 || mixCount(sum, obs.PathChain) != 2 {
		t.Fatalf("audit mix = %+v, want two chain decisions", sum)
	}
	replans := 0
	for _, e := range flight.Dump() {
		if e.Reason == telemetry.FlightReplan {
			replans++
			if e.TraceID != report.TraceID {
				t.Errorf("replan capture trace %q, want %q", e.TraceID, report.TraceID)
			}
		}
	}
	if replans == 0 {
		t.Fatal("no flight-recorder capture for the re-plan")
	}
}

// TestChainExecutorFallbackLocal points the executor at a dead address
// only: the chain fails, the executor falls back to local execution, and
// the (single) audit decision says so.
func TestChainExecutorFallbackLocal(t *testing.T) {
	model, in := chainTestModel(t)
	want, err := model.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()

	audit := obs.NewAuditor(obs.AuditorOptions{Keep: 16})
	ex, err := NewChainExecutor(ChainConfig{
		AppID:      "chain-app",
		ModelName:  model.Name(),
		Model:      model,
		Candidates: staticCandidates(dead),
		Auditor:    audit,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()

	out, report, err := ex.Execute(in)
	if err != nil {
		t.Fatal(err)
	}
	if report.Path != obs.PathFallback {
		t.Fatalf("path = %q, want fallback", report.Path)
	}
	if report.Replans == 0 {
		t.Fatal("dead hop produced no re-plan round")
	}
	got, exp := out.Data(), want.Data()
	for i := range exp {
		if got[i] != exp[i] {
			t.Fatalf("fallback output diverges at %d", i)
		}
	}
	sum := audit.Summary()
	if sum.Total != 1 || mixCount(sum, obs.PathFallback) != 1 {
		t.Fatalf("audit mix = %+v, want exactly one fallback decision", sum)
	}
}

// TestChainExecutorLocalNoCandidates runs with an empty fleet: pure local
// execution, audited as such.
func TestChainExecutorLocalNoCandidates(t *testing.T) {
	model, in := chainTestModel(t)
	audit := obs.NewAuditor(obs.AuditorOptions{Keep: 16})
	ex, err := NewChainExecutor(ChainConfig{
		AppID:      "chain-app",
		ModelName:  model.Name(),
		Model:      model,
		Candidates: func() []ChainServer { return nil },
		Auditor:    audit,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	_, report, err := ex.Execute(in)
	if err != nil {
		t.Fatal(err)
	}
	if report.Path != obs.PathLocal {
		t.Fatalf("path = %q, want local", report.Path)
	}
	sum := audit.Summary()
	if sum.Total != 1 || mixCount(sum, obs.PathLocal) != 1 {
		t.Fatalf("audit mix = %+v, want exactly one local decision", sum)
	}
}

// TestChainExecutorDegradesDepth asks for a deeper chain than there are
// candidates and still gets a working (shorter) one.
func TestChainExecutorDegradesDepth(t *testing.T) {
	model, in := chainTestModel(t)
	want, err := model.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	addr, shutdown := startChainEdge(t)
	t.Cleanup(shutdown)
	audit := obs.NewAuditor(obs.AuditorOptions{Keep: 16})
	ex, err := NewChainExecutor(ChainConfig{
		AppID:      "chain-app",
		ModelName:  model.Name(),
		Model:      model,
		Depth:      4,
		Candidates: staticCandidates(addr),
		Auditor:    audit,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	out, report, err := ex.Execute(in)
	if err != nil {
		t.Fatal(err)
	}
	if report.Path != obs.PathChain || len(report.Hops) != 1 {
		t.Fatalf("path %q hops %+v, want a 1-server chain", report.Path, report.Hops)
	}
	got, exp := out.Data(), want.Data()
	for i := range exp {
		if got[i] != exp[i] {
			t.Fatalf("degraded-depth output diverges at %d", i)
		}
	}
}

// TestChainCandidatesFromRoamer checks the roamer-side candidate view:
// fresh healthy servers in selection order, saturation and queueing hints
// carried through.
func TestChainCandidatesFromRoamer(t *testing.T) {
	probe := newLoadProbe()
	probe.set("fast", time.Millisecond, &protocol.LoadHint{QueueingMillis: 4})
	probe.set("slow", 20*time.Millisecond, &protocol.LoadHint{QueueingMillis: 1})
	probe.set("sat", 2*time.Millisecond, &protocol.LoadHint{Saturated: true})
	probe.set("dead", -1, nil)
	r, err := New(Config{Servers: []string{"slow", "fast", "sat", "dead"}, ProbeLoad: probe.probe, Dial: fakeDial})
	if err != nil {
		t.Fatal(err)
	}
	r.ProbeAll()
	got := r.ChainCandidates()
	if len(got) != 3 {
		t.Fatalf("candidates = %+v, want 3 (dead excluded)", got)
	}
	if got[0].Addr != "fast" || got[1].Addr != "slow" {
		t.Fatalf("order = %s,%s; want fast,slow", got[0].Addr, got[1].Addr)
	}
	if got[2].Addr != "sat" || !got[2].Saturated {
		t.Fatalf("saturated server not last or not flagged: %+v", got)
	}
	if got[0].QueueDelay != 4*time.Millisecond {
		t.Errorf("queue delay %v, want 4ms", got[0].QueueDelay)
	}
}

// TestFleetChainView checks the fleet-placement adapter.
func TestFleetChainView(t *testing.T) {
	view := FleetChainView(func() []protocol.FleetServer {
		return []protocol.FleetServer{
			{Addr: "a", Load: &protocol.LoadHint{QueueingMillis: 7}},
			{Addr: "b", Load: &protocol.LoadHint{Saturated: true}},
			{Addr: "c"},
		}
	})
	got := view()
	if len(got) != 3 {
		t.Fatalf("view = %+v", got)
	}
	if got[0].QueueDelay != 7*time.Millisecond || got[0].Saturated {
		t.Errorf("server a mapped wrong: %+v", got[0])
	}
	if !got[1].Saturated {
		t.Errorf("server b saturation dropped: %+v", got[1])
	}
	if got[2].QueueDelay != 0 || got[2].Saturated {
		t.Errorf("server c mapped wrong: %+v", got[2])
	}
}

package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Operations.")
	c.Add(3)
	r.CounterFunc("test_cb_total", "Callback counter.", func() int64 { return 7 })
	g := r.Gauge("test_depth", "Queue depth.")
	g.Set(2.5)
	r.GaugeFunc("test_workers", "Workers.", func() float64 { return 4 })
	cv := r.CounterVec("test_decisions_total", "Decisions.", "path", "reason")
	cv.With("full", "").Inc()
	cv.With("fallback", "conn-broken").Add(2)
	h := r.Histogram("test_latency_seconds", "Latency.")
	h.Observe(10 * time.Millisecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# HELP test_ops_total Operations.\n# TYPE test_ops_total counter\ntest_ops_total 3\n",
		"test_cb_total 7\n",
		"test_depth 2.5\n",
		"test_workers 4\n",
		`test_decisions_total{path="full",reason=""} 1`,
		`test_decisions_total{path="fallback",reason="conn-broken"} 2`,
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{le="+Inf"} 1`,
		"test_latency_seconds_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if problems := LintPrometheus([]byte(out)); len(problems) != 0 {
		t.Errorf("lint problems: %v", problems)
	}
}

func TestRegistryEscaping(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("test_esc_total", "Escaping.", "v")
	cv.With("a\\b\"c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `test_esc_total{v="a\\b\"c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaped series %q missing in:\n%s", want, b.String())
	}
	if problems := LintPrometheus([]byte(b.String())); len(problems) != 0 {
		t.Errorf("lint problems: %v", problems)
	}
}

func TestRegistryCardinalityBound(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("test_card_total", "Cardinality.", "id")
	for i := 0; i < DefaultMaxSeries+50; i++ {
		cv.With(fmt.Sprintf("id-%d", i)).Inc()
	}
	// 64 distinct series plus one overflow bucket.
	if n := r.SeriesCount("test_card_total"); n != DefaultMaxSeries+1 {
		t.Errorf("series count = %d, want %d", n, DefaultMaxSeries+1)
	}
	if v := cv.With(OverflowLabel).Value(); v != 50 {
		t.Errorf("overflow series = %d, want 50", v)
	}
	// A pre-existing series keeps working past the bound.
	cv.With("id-0").Inc()
	if v := cv.With("id-0").Value(); v != 2 {
		t.Errorf("id-0 = %d, want 2", v)
	}
}

func TestRegistrySchemaConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_x_total", "X.")
	defer func() {
		if recover() == nil {
			t.Error("re-registering with different schema should panic")
		}
	}()
	r.GaugeVec("test_x_total", "X.", "label")
}

func TestRegistryHistogramAttach(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("test_stage_seconds", "Stage latency.", "stage")
	ext := hv.With("encode")
	ext.Observe(time.Millisecond)
	// Attach an external histogram for another stage.
	other := hv.With("wire")
	other.Observe(2 * time.Millisecond)
	other.Observe(4 * time.Millisecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `test_stage_seconds_count{stage="encode"} 1`) {
		t.Errorf("encode count missing in:\n%s", out)
	}
	if !strings.Contains(out, `test_stage_seconds_count{stage="wire"} 2`) {
		t.Errorf("wire count missing in:\n%s", out)
	}
	if strings.Count(out, "# TYPE test_stage_seconds histogram") != 1 {
		t.Errorf("histogram family should have exactly one TYPE line:\n%s", out)
	}
	if problems := LintPrometheus([]byte(out)); len(problems) != 0 {
		t.Errorf("lint problems: %v", problems)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_conc_total", "Concurrency.")
	cv := r.CounterVec("test_conc_labeled_total", "Labeled.", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				cv.With(fmt.Sprintf("k-%d", i%4)).Inc()
				if j%100 == 0 {
					var b strings.Builder
					_ = r.WritePrometheus(&b)
				}
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	var total int64
	for i := 0; i < 4; i++ {
		total += cv.With(fmt.Sprintf("k-%d", i)).Value()
	}
	if total != 8000 {
		t.Errorf("labeled total = %d, want 8000", total)
	}
}

package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLoggerJSONLines(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelDebug)
	l.now = func() time.Time { return time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC) }
	l.Info("server started", F("addr", ":9191"), F("workers", 4))
	l.Error("offload failed", TraceID("0123456789abcdef"), Err(errors.New("conn broken")))

	sc := bufio.NewScanner(&buf)
	if !sc.Scan() {
		t.Fatal("no first line")
	}
	var m map[string]any
	if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if m["ts"] != "2026-08-06T12:00:00Z" || m["level"] != "info" || m["msg"] != "server started" {
		t.Errorf("line 1 = %v", m)
	}
	if m["addr"] != ":9191" || m["workers"] != float64(4) {
		t.Errorf("line 1 fields = %v", m)
	}
	if !sc.Scan() {
		t.Fatal("no second line")
	}
	if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
		t.Fatalf("line 2 not JSON: %v", err)
	}
	if m["level"] != "error" || m["traceId"] != "0123456789abcdef" || m["err"] != "conn broken" {
		t.Errorf("line 2 = %v", m)
	}
}

func TestLoggerLevelFilter(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelWarn)
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Errorf("lines = %d, want 2 (warn+error): %s", got, buf.String())
	}
	if !l.Enabled(LevelError) || l.Enabled(LevelInfo) {
		t.Error("Enabled thresholds wrong")
	}
}

func TestLoggerWithFields(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo).With(F("component", "edge"))
	l.Info("hello")
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m["component"] != "edge" {
		t.Errorf("bound field missing: %v", m)
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	l.Info("ignored", F("k", "v"))
	l.Logf("ignored %d", 1)
	if l.With(F("a", 1)) != nil {
		t.Error("nil With should stay nil")
	}
	if l.Enabled(LevelError) {
		t.Error("nil logger enabled")
	}
	if NewLogger(nil, LevelInfo) != nil {
		t.Error("nil writer should yield nil logger")
	}
}

func TestLoggerLogfBridge(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.Logf("edge: served %d conns", 3)
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m["msg"] != "edge: served 3 conns" {
		t.Errorf("msg = %v", m["msg"])
	}
}

func TestLoggerConcurrentLineAtomic(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			child := l.With(F("goroutine", i))
			for j := 0; j < 200; j++ {
				child.Info("tick", F("j", j))
			}
		}(i)
	}
	wg.Wait()
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		lines++
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d torn or not JSON: %v", lines, err)
		}
	}
	if lines != 1600 {
		t.Errorf("lines = %d, want 1600", lines)
	}
}

func TestLoggerUnencodableValue(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.Info("weird", F("ch", make(chan int))) // channels can't marshal
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("line should still be valid JSON: %v", err)
	}
	if _, ok := m["ch"].(string); !ok {
		t.Errorf("unencodable value should degrade to string: %v", m["ch"])
	}
}

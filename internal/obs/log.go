package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Level is a log severity.
type Level int8

// Log levels, in increasing severity.
const (
	LevelDebug Level = iota - 1
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int8(l))
	}
}

// Field is one structured key/value pair attached to a log line.
type Field struct {
	Key   string
	Value any
}

// F builds a Field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// TraceID builds the canonical trace-ID field, joining log lines to the
// span pipeline's traces.
func TraceID(id string) Field { return Field{Key: "traceId", Value: id} }

// Err builds the canonical error field (nil-safe).
func Err(err error) Field {
	if err == nil {
		return Field{Key: "err", Value: nil}
	}
	return Field{Key: "err", Value: err.Error()}
}

// Logger emits structured JSON-line leveled logs: one JSON object per
// line with ts, level, msg, and the attached fields. A nil *Logger is a
// valid no-op logger, so components can log unconditionally.
//
// Loggers derived with With share the parent's writer and mutex, so one
// file or stderr stream stays line-atomic across components.
type Logger struct {
	mu     *sync.Mutex
	w      io.Writer
	min    Level
	fields []Field
	// now is stubbed in tests for deterministic timestamps.
	now func() time.Time
}

// NewLogger creates a logger writing JSON lines at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	if w == nil {
		return nil
	}
	return &Logger{mu: &sync.Mutex{}, w: w, min: min, now: time.Now}
}

// With returns a logger that attaches fields to every line it emits.
func (l *Logger) With(fields ...Field) *Logger {
	if l == nil || len(fields) == 0 {
		return l
	}
	child := *l
	child.fields = append(append([]Field(nil), l.fields...), fields...)
	return &child
}

// Enabled reports whether the logger emits at the given level.
func (l *Logger) Enabled(level Level) bool { return l != nil && level >= l.min }

// Debug logs at debug level.
func (l *Logger) Debug(msg string, fields ...Field) { l.log(LevelDebug, msg, fields) }

// Info logs at info level.
func (l *Logger) Info(msg string, fields ...Field) { l.log(LevelInfo, msg, fields) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, fields ...Field) { l.log(LevelWarn, msg, fields) }

// Error logs at error level.
func (l *Logger) Error(msg string, fields ...Field) { l.log(LevelError, msg, fields) }

// Logf adapts the logger to the legacy printf-style Logf hooks: the
// formatted string becomes the msg of an info-level line. It lets code
// still holding a func(string, ...any) route through structured output.
func (l *Logger) Logf(format string, args ...any) {
	l.log(LevelInfo, fmt.Sprintf(format, args...), nil)
}

func (l *Logger) log(level Level, msg string, fields []Field) {
	if !l.Enabled(level) {
		return
	}
	// Build the line as an ordered JSON object: ts, level, msg, then
	// fields in attachment order (bound fields first). Duplicate keys keep
	// the last occurrence wins semantics of most JSON readers; we emit all
	// occurrences rather than deduplicating on the hot path.
	var b []byte
	b = append(b, '{')
	b = appendJSONField(b, "ts", l.now().UTC().Format(time.RFC3339Nano))
	b = append(b, ',')
	b = appendJSONField(b, "level", level.String())
	b = append(b, ',')
	b = appendJSONField(b, "msg", msg)
	for _, f := range l.fields {
		b = append(b, ',')
		b = appendJSONField(b, f.Key, f.Value)
	}
	for _, f := range fields {
		b = append(b, ',')
		b = appendJSONField(b, f.Key, f.Value)
	}
	b = append(b, '}', '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	l.w.Write(b) //nolint:errcheck // logging is best-effort
}

// appendJSONField appends `"key":value` with both sides JSON-encoded. An
// unencodable value degrades to its fmt representation instead of dropping
// the line.
func appendJSONField(b []byte, key string, value any) []byte {
	kb, _ := json.Marshal(key)
	b = append(b, kb...)
	b = append(b, ':')
	vb, err := json.Marshal(value)
	if err != nil {
		vb, _ = json.Marshal(fmt.Sprint(value))
	}
	return append(b, vb...)
}

package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAuditorSummary(t *testing.T) {
	a := NewAuditor(AuditorOptions{})
	a.Record(Decision{Path: PathFull, Predicted: 100 * time.Millisecond, Measured: 110 * time.Millisecond, HintAge: -1})
	a.Record(Decision{Path: PathFull, Predicted: 100 * time.Millisecond, Measured: 90 * time.Millisecond, HintAge: -1})
	a.Record(Decision{Path: PathShed, Reason: "hint-delay", HintAge: 20 * time.Millisecond})
	a.Record(Decision{Path: PathFallback, Reason: "conn-broken", HintAge: -1})

	s := a.Summary()
	if s.Total != 4 {
		t.Errorf("total = %d, want 4", s.Total)
	}
	wantMix := map[DecisionPath]int64{PathFull: 2, PathShed: 1, PathFallback: 1}
	if len(s.Mix) != len(wantMix) {
		t.Errorf("mix = %+v, want %d entries", s.Mix, len(wantMix))
	}
	for _, pc := range s.Mix {
		if wantMix[pc.Path] != pc.Count {
			t.Errorf("mix[%s] = %d, want %d", pc.Path, pc.Count, wantMix[pc.Path])
		}
	}
	// Only the two full decisions carried predictions: errors +0.10, -0.10.
	if s.PredErr.Count != 2 {
		t.Errorf("prediction samples = %d, want 2", s.PredErr.Count)
	}
	if s.PredErr.AbsP50 < 0.09 || s.PredErr.AbsP50 > 0.11 {
		t.Errorf("absP50 = %g, want ~0.10", s.PredErr.AbsP50)
	}
}

func TestDecisionPredictionError(t *testing.T) {
	d := Decision{Predicted: 100 * time.Millisecond, Measured: 150 * time.Millisecond}
	e, ok := d.PredictionError()
	if !ok || e < 0.49 || e > 0.51 {
		t.Errorf("error = %g ok=%v, want ~0.5", e, ok)
	}
	if _, ok := (Decision{Measured: time.Second}).PredictionError(); ok {
		t.Error("no prediction should yield no error sample")
	}
	if _, ok := (Decision{Predicted: time.Second}).PredictionError(); ok {
		t.Error("no measurement should yield no error sample")
	}
}

func TestAuditorSinkAndRegistry(t *testing.T) {
	var buf bytes.Buffer
	r := NewRegistry()
	a := NewAuditor(AuditorOptions{Registry: r, Sink: &buf, Keep: 2})
	a.Record(Decision{TraceID: "0123456789abcdef", Path: PathFull, Server: "edge:9191",
		Predicted: time.Millisecond, Measured: 2 * time.Millisecond, HintAge: 5 * time.Millisecond})
	a.Record(Decision{Path: PathFallback, Reason: "server-error", HintAge: -1})
	a.Record(Decision{Path: PathShed, Reason: "hint-delay", HintAge: 0})

	// Sink: one JSON line per decision, with units-in-names fields.
	lines := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		lines++
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		if _, ok := m["path"]; !ok {
			t.Errorf("line %d missing path: %s", lines, sc.Text())
		}
	}
	if lines != 3 {
		t.Errorf("sink lines = %d, want 3", lines)
	}

	// Registry: per-path/reason counters.
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`websnap_client_decisions_total{path="full",reason="ok"} 1`,
		`websnap_client_decisions_total{path="fallback",reason="server-error"} 1`,
		`websnap_client_decisions_total{path="shed",reason="hint-delay"} 1`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("missing %q in:\n%s", want, b.String())
		}
	}

	// Ring: keeps the most recent Keep decisions, oldest first.
	recent := a.Recent()
	if len(recent) != 2 || recent[0].Path != PathFallback || recent[1].Path != PathShed {
		t.Errorf("recent = %+v", recent)
	}
}

func TestDecisionJSONUnits(t *testing.T) {
	d := Decision{Path: PathFull, Predicted: 1500 * time.Microsecond,
		Measured: 2 * time.Millisecond, HintAge: 30 * time.Millisecond}
	raw, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m["predictedMicros"] != float64(1500) {
		t.Errorf("predictedMicros = %v", m["predictedMicros"])
	}
	if m["measuredMicros"] != float64(2000) {
		t.Errorf("measuredMicros = %v", m["measuredMicros"])
	}
	if m["hintAgeMillis"] != float64(30) {
		t.Errorf("hintAgeMillis = %v", m["hintAgeMillis"])
	}
	// Negative hint age means "no hint": the field is omitted.
	raw, _ = json.Marshal(Decision{Path: PathLocal, HintAge: -1})
	if strings.Contains(string(raw), "hintAgeMillis") {
		t.Errorf("hintAgeMillis should be omitted: %s", raw)
	}
}

func TestAuditorNilSafe(t *testing.T) {
	var a *Auditor
	a.Record(Decision{Path: PathFull})
	if a.Total() != 0 {
		t.Error("nil auditor total")
	}
	if a.Recent() != nil {
		t.Error("nil auditor recent")
	}
	if s := a.Summary(); s.Total != 0 {
		t.Error("nil auditor summary")
	}
}

func TestAuditorConcurrent(t *testing.T) {
	var buf bytes.Buffer
	a := NewAuditor(AuditorOptions{Sink: &buf, Keep: 8})
	var wg sync.WaitGroup
	const goroutines, each = 8, 500
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				a.Record(Decision{Path: PathFull, Predicted: time.Millisecond,
					Measured: time.Duration(j+1) * time.Microsecond, HintAge: -1})
			}
		}()
	}
	wg.Wait()
	if a.Total() != goroutines*each {
		t.Errorf("total = %d, want %d", a.Total(), goroutines*each)
	}
	if got := strings.Count(buf.String(), "\n"); got != goroutines*each {
		t.Errorf("sink lines = %d, want %d", got, goroutines*each)
	}
	if s := a.Summary(); s.PredErr.Count != goroutines*each {
		t.Errorf("prediction samples = %d, want %d", s.PredErr.Count, goroutines*each)
	}
}

func TestAuditorSampleCapReplacement(t *testing.T) {
	a := NewAuditor(AuditorOptions{})
	// Push past the cap; later samples must keep being folded in (replacing
	// slots) rather than being dropped.
	for i := 0; i < maxPredSamples+1000; i++ {
		a.Record(Decision{Path: PathFull, Predicted: time.Millisecond, Measured: 2 * time.Millisecond, HintAge: -1})
	}
	s := a.Summary()
	if s.PredErr.Count != maxPredSamples {
		t.Errorf("sample count = %d, want cap %d", s.PredErr.Count, maxPredSamples)
	}
	if s.PredErr.P50 < 0.99 || s.PredErr.P50 > 1.01 {
		t.Errorf("p50 = %g, want ~1.0", s.PredErr.P50)
	}
}

package obs

import (
	"os"
	"runtime"
)

// RegisterRuntimeStats registers the process runtime family — goroutine
// count, heap bytes, cumulative GC pause time, GC cycles, and open file
// descriptors — on the registry, visible through both exposition formats.
//
// These values are nondeterministic by nature, so they are deliberately
// NOT part of edge.NewServer's default registry (whose exposition is
// byte-pinned by golden tests); the daemons (cmd/edged, cmd/fleetd) opt in
// at startup.
func RegisterRuntimeStats(r *Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("websnap_runtime_goroutines",
		"Current goroutine count.", func() float64 {
			return float64(runtime.NumGoroutine())
		})
	r.GaugeFunc("websnap_runtime_heap_bytes",
		"Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).", func() float64 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			return float64(m.HeapAlloc)
		})
	r.CounterFunc("websnap_runtime_gc_pause_nanos_total",
		"Cumulative stop-the-world GC pause time in nanoseconds.", func() int64 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			return int64(m.PauseTotalNs)
		})
	r.CounterFunc("websnap_runtime_gc_cycles_total",
		"Completed GC cycles.", func() int64 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			return int64(m.NumGC)
		})
	r.GaugeFunc("websnap_runtime_open_fds",
		"Open file descriptors (-1 where /proc is unavailable).", func() float64 {
			return float64(countOpenFDs())
		})
}

// countOpenFDs counts entries in /proc/self/fd; -1 on platforms without
// procfs rather than a guess.
func countOpenFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	// The ReadDir traversal itself holds one descriptor open on the fd
	// directory; exclude it.
	return len(ents) - 1
}

package obs

import (
	"strings"
	"testing"
)

func TestLintCleanPayload(t *testing.T) {
	clean := `# HELP websnap_ops_total Operations.
# TYPE websnap_ops_total counter
websnap_ops_total 3
# HELP websnap_depth Queue depth.
# TYPE websnap_depth gauge
websnap_depth 2.5
# HELP websnap_lat_seconds Latency.
# TYPE websnap_lat_seconds histogram
websnap_lat_seconds_bucket{stage="encode",le="0.001"} 1
websnap_lat_seconds_bucket{stage="encode",le="0.002"} 3
websnap_lat_seconds_bucket{stage="encode",le="+Inf"} 4
websnap_lat_seconds_sum{stage="encode"} 0.005
websnap_lat_seconds_count{stage="encode"} 4
`
	if problems := LintPrometheus([]byte(clean)); len(problems) != 0 {
		t.Errorf("clean payload flagged: %v", problems)
	}
}

func TestLintViolations(t *testing.T) {
	cases := []struct {
		name    string
		payload string
		wantSub string
	}{
		{
			"sample before HELP/TYPE",
			"websnap_x_total 1\n",
			"without",
		},
		{
			"duplicate series",
			"# HELP websnap_x_total X.\n# TYPE websnap_x_total counter\nwebsnap_x_total 1\nwebsnap_x_total 2\n",
			"duplicate series",
		},
		{
			"duplicate TYPE",
			"# HELP websnap_x_total X.\n# TYPE websnap_x_total counter\n# TYPE websnap_x_total counter\nwebsnap_x_total 1\n",
			"duplicate TYPE",
		},
		{
			"non-cumulative buckets",
			"# HELP websnap_h H.\n# TYPE websnap_h histogram\n" +
				`websnap_h_bucket{le="0.1"} 5` + "\n" +
				`websnap_h_bucket{le="0.2"} 3` + "\n" +
				`websnap_h_bucket{le="+Inf"} 5` + "\n" +
				"websnap_h_sum 1\nwebsnap_h_count 5\n",
			"not cumulative",
		},
		{
			"non-monotone bucket bounds",
			"# HELP websnap_h H.\n# TYPE websnap_h histogram\n" +
				`websnap_h_bucket{le="0.2"} 1` + "\n" +
				`websnap_h_bucket{le="0.1"} 2` + "\n" +
				`websnap_h_bucket{le="+Inf"} 2` + "\n" +
				"websnap_h_sum 1\nwebsnap_h_count 2\n",
			"not increasing",
		},
		{
			"missing +Inf bucket",
			"# HELP websnap_h H.\n# TYPE websnap_h histogram\n" +
				`websnap_h_bucket{le="0.1"} 1` + "\n" +
				"websnap_h_sum 1\nwebsnap_h_count 1\n",
			"+Inf",
		},
		{
			"+Inf disagrees with count",
			"# HELP websnap_h H.\n# TYPE websnap_h histogram\n" +
				`websnap_h_bucket{le="+Inf"} 2` + "\n" +
				"websnap_h_sum 1\nwebsnap_h_count 3\n",
			"!= _count",
		},
		{
			"unescaped label value",
			"# HELP websnap_x_total X.\n# TYPE websnap_x_total counter\n" +
				"websnap_x_total{v=\"a\"b\"} 1\n",
			"line 3",
		},
		{
			"bad sample value",
			"# HELP websnap_x_total X.\n# TYPE websnap_x_total counter\nwebsnap_x_total banana\n",
			"not a float",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			problems := LintPrometheus([]byte(tc.payload))
			if len(problems) == 0 {
				t.Fatalf("no problems reported for %s", tc.name)
			}
			found := false
			for _, p := range problems {
				if strings.Contains(p, tc.wantSub) {
					found = true
				}
			}
			if !found {
				t.Errorf("problems %v contain no %q", problems, tc.wantSub)
			}
		})
	}
}

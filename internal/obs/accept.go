package obs

import (
	"strconv"
	"strings"
)

// MediaRange is one parsed element of an Accept header: a (possibly
// wildcarded) media type with its quality weight.
type MediaRange struct {
	// Type and Subtype are lowercased; "*" denotes a wildcard.
	Type, Subtype string
	// Q is the quality weight in [0, 1]; absent q defaults to 1.
	Q float64
	// Specificity orders ties: 2 = concrete type/subtype, 1 = type/*,
	// 0 = */*.
	Specificity int
}

// ParseAccept parses an HTTP Accept header into its media ranges per RFC
// 9110 §12.5.1: comma-separated media ranges, each with optional
// ;-separated parameters of which q is the quality weight. Malformed
// elements are skipped rather than failing the whole header — a scrape
// must not 400 on a sloppy client. An empty header yields nil (meaning
// "anything").
func ParseAccept(header string) []MediaRange {
	header = strings.TrimSpace(header)
	if header == "" {
		return nil
	}
	var out []MediaRange
	for _, elem := range strings.Split(header, ",") {
		parts := strings.Split(elem, ";")
		mt := strings.ToLower(strings.TrimSpace(parts[0]))
		slash := strings.IndexByte(mt, '/')
		if slash <= 0 || slash == len(mt)-1 {
			continue
		}
		mr := MediaRange{Type: mt[:slash], Subtype: mt[slash+1:], Q: 1}
		switch {
		case mr.Type == "*" && mr.Subtype == "*":
			mr.Specificity = 0
		case mr.Subtype == "*":
			mr.Specificity = 1
		case mr.Type == "*":
			// "*/json" is not a valid media range.
			continue
		default:
			mr.Specificity = 2
		}
		for _, p := range parts[1:] {
			k, v, ok := strings.Cut(strings.TrimSpace(p), "=")
			if !ok || !strings.EqualFold(strings.TrimSpace(k), "q") {
				// Non-q parameters (e.g. version=0.0.4, charset) don't
				// affect negotiation here.
				continue
			}
			q, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil || q < 0 {
				q = 0
			}
			if q > 1 {
				q = 1
			}
			mr.Q = q
		}
		out = append(out, mr)
	}
	return out
}

// qFor returns the weight the parsed header assigns to the concrete media
// type t/s: the q of the most specific matching range, 0 when nothing
// matches.
func qFor(ranges []MediaRange, t, s string) (q float64, matched bool) {
	bestSpec := -1
	for _, mr := range ranges {
		if mr.Type != "*" && mr.Type != t {
			continue
		}
		if mr.Subtype != "*" && mr.Subtype != s {
			continue
		}
		if mr.Specificity > bestSpec {
			bestSpec, q, matched = mr.Specificity, mr.Q, true
		}
	}
	return q, matched
}

// WantsPrometheus decides whether a /metrics request asked for Prometheus
// text exposition rather than JSON. The explicit ?format= query parameter
// wins; otherwise the Accept header is content-negotiated: the text
// exposition types a Prometheus scraper sends (text/plain and
// application/openmetrics-text, with q-values) compete against
// application/json, and the higher-weighted side wins. Ties — including no
// Accept header and bare */* — keep the original JSON default so existing
// consumers are unaffected.
func WantsPrometheus(formatParam, acceptHeader string) bool {
	switch formatParam {
	case "prometheus":
		return true
	case "json":
		return false
	}
	ranges := ParseAccept(acceptHeader)
	if len(ranges) == 0 {
		return false
	}
	promQ, promOK := qFor(ranges, "text", "plain")
	if omQ, ok := qFor(ranges, "application", "openmetrics-text"); ok && omQ > promQ {
		promQ, promOK = omQ, true
	}
	jsonQ, jsonOK := qFor(ranges, "application", "json")
	if !promOK || promQ <= 0 {
		return false
	}
	if !jsonOK {
		// A wildcard-only match for text/plain (e.g. a bare */*) is not a
		// request for text exposition.
		if explicit := explicitTextMatch(ranges); !explicit {
			return false
		}
		return true
	}
	return promQ > jsonQ
}

// explicitTextMatch reports whether any range names text/plain,
// application/openmetrics-text, or text/* directly (not via */*).
func explicitTextMatch(ranges []MediaRange) bool {
	for _, mr := range ranges {
		if mr.Type == "text" && (mr.Subtype == "plain" || mr.Subtype == "*") {
			return true
		}
		if mr.Type == "application" && mr.Subtype == "openmetrics-text" {
			return true
		}
	}
	return false
}

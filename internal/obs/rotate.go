package obs

import (
	"fmt"
	"os"
	"sync"
)

// DefaultRotateBytes is RotatingFile's size cap when the caller passes
// zero: 64 MiB per generation, two generations resident worst case.
const DefaultRotateBytes = 64 << 20

// RotatingFile is an append-only log writer with size-capped rotation:
// when the live file would exceed maxBytes, it is renamed to <path>.1
// (replacing any previous rotation) and a fresh file is started. Disk
// usage is therefore bounded at ~2×maxBytes no matter how long the
// process soaks — the write path for cmd/edged -trace-log, whose one
// JSON line per offload otherwise grows without bound.
//
// Writes are line-atomic: rotation happens between Write calls, never
// inside one, so each JSON trace line lands whole in exactly one
// generation.
type RotatingFile struct {
	path     string
	maxBytes int64

	mu   sync.Mutex
	f    *os.File
	size int64
}

// NewRotatingFile opens (or creates) path for appending with rotation at
// maxBytes (DefaultRotateBytes when <= 0).
func NewRotatingFile(path string, maxBytes int64) (*RotatingFile, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultRotateBytes
	}
	r := &RotatingFile{path: path, maxBytes: maxBytes}
	if err := r.open(); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *RotatingFile) open() error {
	f, err := os.OpenFile(r.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("open rotating log: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("stat rotating log: %w", err)
	}
	r.f, r.size = f, st.Size()
	return nil
}

// Write appends p, rotating first if it would push the live file past the
// cap. A single write larger than the cap is still written (after a
// rotation) rather than lost — the cap bounds steady-state growth, not
// one record.
func (r *RotatingFile) Write(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil {
		return 0, os.ErrClosed
	}
	if r.size > 0 && r.size+int64(len(p)) > r.maxBytes {
		if err := r.rotateLocked(); err != nil {
			return 0, err
		}
	}
	n, err := r.f.Write(p)
	r.size += int64(n)
	return n, err
}

// rotateLocked closes the live file, moves it to <path>.1, and opens a
// fresh one. A rename failure (e.g. a read-only directory appearing
// mid-run) keeps appending to the live file rather than dropping spans.
func (r *RotatingFile) rotateLocked() error {
	if err := r.f.Close(); err != nil {
		return err
	}
	if err := os.Rename(r.path, r.path+".1"); err != nil {
		// Reopen and keep going; the next write retries the rotation.
		return r.open()
	}
	return r.open()
}

// Close closes the live file; further writes fail.
func (r *RotatingFile) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	return err
}

package obs

import "testing"

func TestParseAccept(t *testing.T) {
	ranges := ParseAccept("application/openmetrics-text;version=1.0.0;q=0.75,text/plain;version=0.0.4;q=0.5,*/*;q=0.1")
	if len(ranges) != 3 {
		t.Fatalf("got %d ranges, want 3: %+v", len(ranges), ranges)
	}
	if ranges[0].Type != "application" || ranges[0].Subtype != "openmetrics-text" || ranges[0].Q != 0.75 {
		t.Errorf("range 0 = %+v", ranges[0])
	}
	if ranges[1].Type != "text" || ranges[1].Subtype != "plain" || ranges[1].Q != 0.5 {
		t.Errorf("range 1 = %+v", ranges[1])
	}
	if ranges[2].Type != "*" || ranges[2].Subtype != "*" || ranges[2].Q != 0.1 || ranges[2].Specificity != 0 {
		t.Errorf("range 2 = %+v", ranges[2])
	}
}

func TestParseAcceptMalformed(t *testing.T) {
	// Malformed elements are skipped, valid ones kept; a scrape must not
	// fail because one element is garbage.
	ranges := ParseAccept("garbage, text/plain;q=banana, /json, text/, */plain, application/json")
	want := map[string]bool{"text/plain": true, "application/json": true}
	if len(ranges) != 2 {
		t.Fatalf("got %d ranges, want 2: %+v", len(ranges), ranges)
	}
	for _, mr := range ranges {
		if !want[mr.Type+"/"+mr.Subtype] {
			t.Errorf("unexpected range %+v", mr)
		}
	}
	// q=banana clamps to 0 rather than dropping the range.
	if ranges[0].Q != 0 {
		t.Errorf("text/plain q = %g, want 0", ranges[0].Q)
	}
	if ParseAccept("") != nil {
		t.Error("empty header should parse to nil")
	}
}

func TestWantsPrometheus(t *testing.T) {
	cases := []struct {
		name   string
		format string
		accept string
		want   bool
	}{
		{"format param wins over accept", "prometheus", "application/json", true},
		{"format json wins over accept", "json", "text/plain", false},
		{"no header keeps JSON default", "", "", false},
		{"bare wildcard keeps JSON default", "", "*/*", false},
		{"plain text asks for exposition", "", "text/plain", true},
		{"openmetrics asks for exposition", "", "application/openmetrics-text", true},
		{"text wildcard asks for exposition", "", "text/*", true},
		{"json beats lower-q text", "", "text/plain;q=0.5, application/json", false},
		{"text beats lower-q json", "", "text/plain, application/json;q=0.5", true},
		{"tie keeps JSON default", "", "text/plain, application/json", false},
		{"zero-q text is a refusal", "", "text/plain;q=0", false},
		// The header a real Prometheus scraper sends: openmetrics at 0.75
		// outweighs the */* catchall at 0.1.
		{
			"real scraper header", "",
			"application/openmetrics-text;version=1.0.0;q=0.75,text/plain;version=0.0.4;q=0.5,*/*;q=0.1",
			true,
		},
		// A browser: html and xml explicit, everything else via */*;q=0.8 —
		// no explicit text/JSON preference, keep JSON.
		{
			"browser header keeps JSON default", "",
			"text/html,application/xhtml+xml,application/xml;q=0.9,*/*;q=0.8",
			false,
		},
		{"curl default wildcard keeps JSON", "", "*/*", false},
		{"specific json beats text wildcard", "", "text/*;q=0.9, application/json;q=0.8", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := WantsPrometheus(tc.format, tc.accept); got != tc.want {
				t.Errorf("WantsPrometheus(%q, %q) = %v, want %v", tc.format, tc.accept, got, tc.want)
			}
		})
	}
}

package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// DecisionPath names the chosen execution path of one offload decision —
// the runtime counterpart of the paper's offload-vs-local rule
// (T_trans + T_server < T_local).
type DecisionPath string

// Decision paths.
const (
	// PathLocal: the session is configured (or resolved) to execute
	// locally; no offload was considered for this request.
	PathLocal DecisionPath = "local"
	// PathFull: the whole inference handler was offloaded.
	PathFull DecisionPath = "full"
	// PathPartial: the DNN was split and the rear part offloaded.
	PathPartial DecisionPath = "partial"
	// PathShed: the client kept the request local up front because the
	// server's load hint predicted too much queueing delay.
	PathShed DecisionPath = "shed"
	// PathFallback: an offload was attempted, failed, and the request
	// completed locally (fallback-after-error).
	PathFallback DecisionPath = "fallback"
	// PathError: an offload was attempted, failed, and no local fallback
	// was configured; the request surfaced the error.
	PathError DecisionPath = "error"
	// PathChain: the DNN was split across a multi-hop chain of edge
	// servers (K-way partial inference); the request completed remotely
	// through the chain.
	PathChain DecisionPath = "chain"
)

// AllPaths lists every decision path in a stable reporting order.
func AllPaths() []DecisionPath {
	return []DecisionPath{PathLocal, PathFull, PathPartial, PathShed, PathFallback, PathError, PathChain}
}

// Decision is one structured offload decision event: why a request ran
// where it ran, what the cost model predicted, and what actually happened.
// Exactly one Decision is emitted per offload-eligible request.
type Decision struct {
	// TraceID joins the decision to the span pipeline's trace (empty for
	// decisions where no request was sent, e.g. shed).
	TraceID string `json:"traceId,omitempty"`
	// AppID identifies the app instance.
	AppID string `json:"appId,omitempty"`
	// Path is the chosen execution path.
	Path DecisionPath `json:"path"`
	// Reason qualifies non-success paths: the error kind for fallback and
	// error ("overloaded", "conn-broken", "server-error", ...), the hint
	// trigger for shed ("hint-saturated", "hint-delay").
	Reason string `json:"reason,omitempty"`
	// SplitLabel is the partition point for partial offloads.
	SplitLabel string `json:"splitLabel,omitempty"`
	// Delta marks an offload shipped as a delta snapshot.
	Delta bool `json:"delta,omitempty"`
	// Server identifies the edge server the decision targeted.
	Server string `json:"server,omitempty"`
	// Predicted is the cost model's end-to-end latency prediction for the
	// chosen configuration; zero when no prediction was available.
	Predicted time.Duration `json:"predictedMicros,omitempty"`
	// Measured is the observed end-to-end latency of the request.
	Measured time.Duration `json:"measuredMicros,omitempty"`
	// HintAge is how stale the server load hint consulted for this
	// decision was; negative when no hint had arrived.
	HintAge time.Duration `json:"hintAgeMillis,omitempty"`
	// BatchSize is the server-side execution batch the request rode in
	// (0 when unknown or local).
	BatchSize int `json:"batchSize,omitempty"`
	// Placement names the fleet placement policy that chose the target
	// server ("hash", "load"); empty outside a fleet.
	Placement string `json:"placement,omitempty"`
}

// MarshalJSON renders durations in the units the field names promise
// (micros for latencies, millis for hint age).
func (d Decision) MarshalJSON() ([]byte, error) {
	type alias struct {
		TraceID    string       `json:"traceId,omitempty"`
		AppID      string       `json:"appId,omitempty"`
		Path       DecisionPath `json:"path"`
		Reason     string       `json:"reason,omitempty"`
		SplitLabel string       `json:"splitLabel,omitempty"`
		Delta      bool         `json:"delta,omitempty"`
		Server     string       `json:"server,omitempty"`
		Predicted  int64        `json:"predictedMicros,omitempty"`
		Measured   int64        `json:"measuredMicros,omitempty"`
		HintAge    *int64       `json:"hintAgeMillis,omitempty"`
		BatchSize  int          `json:"batchSize,omitempty"`
		Placement  string       `json:"placement,omitempty"`
	}
	a := alias{
		TraceID: d.TraceID, AppID: d.AppID, Path: d.Path, Reason: d.Reason,
		SplitLabel: d.SplitLabel, Delta: d.Delta, Server: d.Server,
		Predicted: d.Predicted.Microseconds(), Measured: d.Measured.Microseconds(),
		BatchSize: d.BatchSize, Placement: d.Placement,
	}
	if d.HintAge >= 0 {
		ms := d.HintAge.Milliseconds()
		a.HintAge = &ms
	}
	return json.Marshal(a)
}

// PredictionError returns the signed relative prediction error
// (measured-predicted)/predicted, and whether both quantities are present.
func (d Decision) PredictionError() (float64, bool) {
	if d.Predicted <= 0 || d.Measured <= 0 {
		return 0, false
	}
	return float64(d.Measured-d.Predicted) / float64(d.Predicted), true
}

// maxPredSamples bounds the auditor's retained prediction-error samples.
// Beyond it, every new sample replaces a deterministic pseudo-random slot,
// keeping the quantile estimate fresh without unbounded memory.
const maxPredSamples = 1 << 16

// AuditorOptions configures an Auditor.
type AuditorOptions struct {
	// Registry, when non-nil, receives the auditor's labeled counters
	// (websnap_client_decisions_total by path/reason) and prediction-error
	// histogram, so a client-side /metrics endpoint exposes them.
	Registry *Registry
	// Sink, when non-nil, receives one JSON line per decision — the
	// client-side analogue of the server's trace log.
	Sink io.Writer
	// Logger, when non-nil, logs each decision at debug level with the
	// trace ID field.
	Logger *Logger
	// Keep retains the most recent Keep decisions for inspection via
	// Recent (0 keeps none).
	Keep int
}

// Auditor records offload decision events: per-path/per-reason counters, a
// prediction-error sample set for quantiles, and optional JSON-line and
// structured-log feeds. All methods are safe for concurrent use; a nil
// *Auditor is a valid no-op.
type Auditor struct {
	opts      AuditorOptions
	decisions *CounterVec

	mu sync.Mutex
	// mix counts decisions per path.
	mix map[DecisionPath]int64
	// predErr holds signed relative prediction errors.
	predErr []float64
	// seen counts all prediction-error samples ever recorded (for the
	// replacement policy once predErr is full).
	seen uint64
	// rng drives slot replacement; deterministic (seeded constant) so
	// audits are reproducible.
	rng uint64
	// recent is a ring of the last opts.Keep decisions.
	recent []Decision
	next   int
	total  int64
}

// NewAuditor creates an auditor.
func NewAuditor(opts AuditorOptions) *Auditor {
	a := &Auditor{
		opts: opts,
		mix:  make(map[DecisionPath]int64),
		rng:  0x9e3779b97f4a7c15,
	}
	if opts.Keep > 0 {
		a.recent = make([]Decision, 0, opts.Keep)
	}
	if opts.Registry != nil {
		a.decisions = opts.Registry.CounterVec("websnap_client_decisions_total",
			"Offload decisions by chosen path and reason.", "path", "reason")
	}
	return a
}

// Record folds one decision event into the audit.
func (a *Auditor) Record(d Decision) {
	if a == nil {
		return
	}
	if d.Reason == "" {
		// Successful offloads carry no failure reason; label them "ok" so
		// the counter series never exposes an empty label value.
		d.Reason = "ok"
	}
	if a.decisions != nil {
		a.decisions.With(string(d.Path), d.Reason).Inc()
	}
	a.mu.Lock()
	a.total++
	a.mix[d.Path]++
	if e, ok := d.PredictionError(); ok {
		if len(a.predErr) < maxPredSamples {
			a.predErr = append(a.predErr, e)
		} else {
			a.rng ^= a.rng << 13
			a.rng ^= a.rng >> 7
			a.rng ^= a.rng << 17
			a.predErr[a.rng%maxPredSamples] = e
		}
		a.seen++
	}
	if cap(a.recent) > 0 {
		if len(a.recent) < cap(a.recent) {
			a.recent = append(a.recent, d)
		} else {
			a.recent[a.next] = d
			a.next = (a.next + 1) % cap(a.recent)
		}
	}
	a.mu.Unlock()
	if a.opts.Sink != nil {
		if line, err := json.Marshal(d); err == nil {
			a.mu.Lock()
			a.opts.Sink.Write(append(line, '\n')) //nolint:errcheck // best-effort feed
			a.mu.Unlock()
		}
	}
	if a.opts.Logger.Enabled(LevelDebug) {
		a.opts.Logger.Debug("offload decision",
			TraceID(d.TraceID),
			F("path", string(d.Path)),
			F("reason", d.Reason),
			F("predictedMicros", d.Predicted.Microseconds()),
			F("measuredMicros", d.Measured.Microseconds()),
		)
	}
}

// Total returns the number of recorded decisions.
func (a *Auditor) Total() int64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

// Recent returns the retained most-recent decisions, oldest first.
func (a *Auditor) Recent() []Decision {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.recent) < cap(a.recent) || a.next == 0 {
		return append([]Decision(nil), a.recent...)
	}
	out := make([]Decision, 0, len(a.recent))
	out = append(out, a.recent[a.next:]...)
	out = append(out, a.recent[:a.next]...)
	return out
}

// PathCount is one path's decision count.
type PathCount struct {
	Path  DecisionPath `json:"path"`
	Count int64        `json:"count"`
}

// ErrQuantiles summarizes the signed relative prediction-error
// distribution: quantiles of (measured-predicted)/predicted and of its
// absolute value.
type ErrQuantiles struct {
	// Count is the number of decisions carrying both a prediction and a
	// measurement.
	Count int `json:"count"`
	// P50 and P95 are quantiles of the signed relative error (positive =
	// slower than predicted).
	P50 float64 `json:"p50,omitempty"`
	P95 float64 `json:"p95,omitempty"`
	// AbsP50 and AbsP95 are quantiles of |relative error|.
	AbsP50 float64 `json:"absP50,omitempty"`
	AbsP95 float64 `json:"absP95,omitempty"`
}

// AuditSummary is the aggregate view of an auditor: the decision mix and
// the cost model's prediction-error quantiles.
type AuditSummary struct {
	Total   int64        `json:"total"`
	Mix     []PathCount  `json:"mix"`
	PredErr ErrQuantiles `json:"predictionError"`
}

// Summary computes the current decision mix (in AllPaths order, non-zero
// paths only) and prediction-error quantiles.
func (a *Auditor) Summary() AuditSummary {
	if a == nil {
		return AuditSummary{}
	}
	a.mu.Lock()
	samples := append([]float64(nil), a.predErr...)
	sum := AuditSummary{Total: a.total}
	for _, p := range AllPaths() {
		if n := a.mix[p]; n > 0 {
			sum.Mix = append(sum.Mix, PathCount{Path: p, Count: n})
		}
	}
	a.mu.Unlock()
	sum.PredErr = errQuantiles(samples)
	return sum
}

// errQuantiles computes signed and absolute quantiles over the samples.
func errQuantiles(samples []float64) ErrQuantiles {
	q := ErrQuantiles{Count: len(samples)}
	if len(samples) == 0 {
		return q
	}
	signed := append([]float64(nil), samples...)
	sort.Float64s(signed)
	abs := make([]float64, len(samples))
	for i, v := range samples {
		if v < 0 {
			v = -v
		}
		abs[i] = v
	}
	sort.Float64s(abs)
	q.P50 = quantileF(signed, 0.50)
	q.P95 = quantileF(signed, 0.95)
	q.AbsP50 = quantileF(abs, 0.50)
	q.AbsP95 = quantileF(abs, 0.95)
	return q
}

// quantileF returns the q-quantile of a sorted sample by nearest-rank.
func quantileF(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

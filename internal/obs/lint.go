package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// LintPrometheus structurally validates a Prometheus text-exposition
// (version 0.0.4) payload and returns one message per violation (nil when
// clean). It checks what a scraper actually trips over:
//
//   - every sample's family has HELP and TYPE lines, emitted before the
//     first sample of that family;
//   - no family's HELP/TYPE appear twice, and no two samples repeat the
//     same series (identical name + label set);
//   - histogram `le` buckets are parseable, monotonically increasing in
//     upper bound, cumulative in count, and end with an le="+Inf" bucket
//     matching the series' _count sample;
//   - label values are properly quoted and escaped, and sample values
//     parse as floats.
//
// Registry refactors that silently break scrapers fail these checks in
// tests before any scraper sees them.
func LintPrometheus(data []byte) []string {
	var problems []string
	addf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	helpSeen := map[string]bool{}
	typeSeen := map[string]string{}
	sampleSeen := map[string]int{}
	// hist tracks per-series histogram bucket state, keyed by the series'
	// non-le labels.
	type bucketState struct {
		lastUpper float64
		lastCum   uint64
		infCount  uint64
		hasInf    bool
		buckets   int
	}
	hists := map[string]*bucketState{}
	counts := map[string]uint64{}

	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	for ln, line := range lines {
		n := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			name := firstToken(line[len("# HELP "):])
			if helpSeen[name] {
				addf("line %d: duplicate HELP for %s", n, name)
			}
			helpSeen[name] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.Fields(line[len("# TYPE "):])
			if len(rest) != 2 {
				addf("line %d: malformed TYPE line %q", n, line)
				continue
			}
			name := rest[0]
			if _, ok := typeSeen[name]; ok {
				addf("line %d: duplicate TYPE for %s", n, name)
			}
			typeSeen[name] = rest[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			addf("line %d: %v", n, err)
			continue
		}
		family := histFamily(name, typeSeen)
		if !helpSeen[family] {
			addf("line %d: sample %s before (or without) HELP %s", n, name, family)
			helpSeen[family] = true // report once
		}
		if _, ok := typeSeen[family]; !ok {
			addf("line %d: sample %s before (or without) TYPE %s", n, name, family)
			typeSeen[family] = "?"
		}
		seriesID := name + "{" + canonicalLabels(labels) + "}"
		if prev, dup := sampleSeen[seriesID]; dup {
			addf("line %d: duplicate series %s (first at line %d)", n, seriesID, prev)
		}
		sampleSeen[seriesID] = n

		if typeSeen[family] == "histogram" && strings.HasSuffix(name, "_bucket") {
			le, ok := labels["le"]
			if !ok {
				addf("line %d: histogram bucket without le label", n)
				continue
			}
			base := strings.TrimSuffix(name, "_bucket") + "{" + canonicalLabelsExcept(labels, "le") + "}"
			st := hists[base]
			if st == nil {
				st = &bucketState{lastUpper: -1}
				hists[base] = st
			}
			cum, err := strconv.ParseUint(strings.TrimSpace(value), 10, 64)
			if err != nil {
				addf("line %d: bucket count %q not an unsigned integer", n, value)
				continue
			}
			if le == "+Inf" {
				st.hasInf = true
				st.infCount = cum
				if cum < st.lastCum {
					addf("line %d: +Inf bucket count %d below prior cumulative %d", n, cum, st.lastCum)
				}
				continue
			}
			upper, err := strconv.ParseFloat(le, 64)
			if err != nil {
				addf("line %d: unparseable le %q", n, le)
				continue
			}
			if st.hasInf {
				addf("line %d: bucket le=%q after +Inf bucket", n, le)
			}
			if upper <= st.lastUpper {
				addf("line %d: bucket upper bounds not increasing (%g after %g)", n, upper, st.lastUpper)
			}
			if cum < st.lastCum {
				addf("line %d: bucket counts not cumulative (%d after %d)", n, cum, st.lastCum)
			}
			st.lastUpper, st.lastCum = upper, cum
			st.buckets++
			continue
		}
		if typeSeen[family] == "histogram" && strings.HasSuffix(name, "_count") {
			c, err := strconv.ParseUint(strings.TrimSpace(value), 10, 64)
			if err != nil {
				addf("line %d: histogram count %q not an unsigned integer", n, value)
				continue
			}
			counts[strings.TrimSuffix(name, "_count")+"{"+canonicalLabels(labels)+"}"] = c
			continue
		}
		if _, err := strconv.ParseFloat(strings.TrimSpace(value), 64); err != nil {
			addf("line %d: sample value %q not a float", n, value)
		}
	}
	for series, st := range hists {
		if !st.hasInf {
			problems = append(problems, fmt.Sprintf("series %s: no le=\"+Inf\" bucket", series))
			continue
		}
		if c, ok := counts[series]; ok && c != st.infCount {
			problems = append(problems,
				fmt.Sprintf("series %s: +Inf bucket %d != _count %d", series, st.infCount, c))
		}
	}
	sort.Strings(problems)
	return problems
}

func firstToken(s string) string {
	if i := strings.IndexByte(s, ' '); i >= 0 {
		return s[:i]
	}
	return s
}

// histFamily maps a sample name to its family name: histogram samples
// carry _bucket/_sum/_count suffixes on top of the family.
func histFamily(name string, types map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if t, ok := types[base]; ok && t == "histogram" {
				return base
			}
		}
	}
	return name
}

// parseSample splits one sample line into name, labels, and value,
// validating label quoting and escaping.
func parseSample(line string) (name string, labels map[string]string, value string, err error) {
	labels = map[string]string{}
	brace := strings.IndexByte(line, '{')
	if brace < 0 {
		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			return "", nil, "", fmt.Errorf("sample %q has no value", line)
		}
		return line[:sp], labels, line[sp+1:], nil
	}
	name = line[:brace]
	rest := line[brace+1:]
	for {
		rest = strings.TrimLeft(rest, " ,")
		if strings.HasPrefix(rest, "}") {
			rest = rest[1:]
			break
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return "", nil, "", fmt.Errorf("label in %q missing '='", line)
		}
		lname := rest[:eq]
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return "", nil, "", fmt.Errorf("label %s in %q not quoted", lname, line)
		}
		rest = rest[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' {
				if i+1 >= len(rest) {
					return "", nil, "", fmt.Errorf("dangling escape in %q", line)
				}
				i++
				switch rest[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return "", nil, "", fmt.Errorf("invalid escape \\%c in %q", rest[i], line)
				}
				continue
			}
			if c == '"' {
				rest = rest[i+1:]
				closed = true
				break
			}
			if c == '\n' {
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return "", nil, "", fmt.Errorf("unterminated label value in %q", line)
		}
		labels[lname] = val.String()
	}
	value = strings.TrimSpace(rest)
	if value == "" {
		return "", nil, "", fmt.Errorf("sample %q has no value", line)
	}
	return name, labels, value, nil
}

// canonicalLabels renders labels sorted by name for duplicate detection.
func canonicalLabels(labels map[string]string) string {
	return canonicalLabelsExcept(labels, "")
}

func canonicalLabelsExcept(labels map[string]string, skip string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != skip {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + strconv.Quote(labels[k])
	}
	return strings.Join(parts, ",")
}

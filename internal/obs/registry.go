// Package obs is the unified observability layer of the offloading system:
// a labeled metrics registry with Prometheus text exposition, structured
// JSON-line leveled logging, and the offload decision audit that makes the
// paper's central claim — offload exactly when T_trans + T_server < T_local
// — continuously measurable at runtime.
//
// The registry replaces per-component hard-coded counter structs and
// hand-rolled exposition: components register named counter/gauge/histogram
// families (with bounded label sets) once, increment handles on the hot
// path, and one renderer serves every scrape. The audit (see audit.go)
// records one structured event per offload decision — the chosen path, the
// cost model's prediction, and the measured outcome — turning prediction
// error into a first-class measured quantity.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"websnap/internal/trace"
)

// Kind is a metric family's type.
type Kind int

// Metric family kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// DefaultMaxSeries bounds the number of distinct label-value combinations a
// family accepts before folding new combinations into the overflow series.
// Decision reasons, error kinds, and model names are all naturally small
// sets; the bound is a guard against a cardinality leak (e.g. a label
// accidentally fed a request ID) blowing up scrape size and memory.
const DefaultMaxSeries = 64

// OverflowLabel is the label value series beyond the family's bound
// collapse into.
const OverflowLabel = "__other__"

// series is one (family, label values) time series.
type series struct {
	labelValues []string
	// count backs counters; bits backs set-style gauges (float64 bits);
	// fn backs callback-valued counters and gauges; hist backs histograms.
	count atomic.Int64
	bits  atomic.Uint64
	fn    func() float64
	hist  *trace.Histogram
}

// family is one named metric family with a fixed label schema.
type family struct {
	name       string
	help       string
	kind       Kind
	labelNames []string
	maxSeries  int

	mu     sync.RWMutex
	series map[string]*series
	// order preserves first-registration order for deterministic
	// exposition within one process lifetime.
	order []*series
}

// Registry holds metric families and renders them for scrapes. All methods
// are safe for concurrent use. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	order    []*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register adds a family, panicking on schema conflicts — metric
// registration happens at construction time, where a name collision is a
// programming error that must not ship.
func (r *Registry) register(name, help string, kind Kind, labelNames []string) *family {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.families[name]; ok {
		if prev.kind != kind || strings.Join(prev.labelNames, ",") != strings.Join(labelNames, ",") {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different schema", name))
		}
		return prev
	}
	f := &family{
		name: name, help: help, kind: kind,
		labelNames: append([]string(nil), labelNames...),
		maxSeries:  DefaultMaxSeries,
		series:     make(map[string]*series),
	}
	r.families[name] = f
	r.order = append(r.order, f)
	return f
}

// seriesKey joins label values into a map key. Values containing the
// separator still produce distinct keys because each value is
// length-prefixed.
func seriesKey(values []string) string {
	var b strings.Builder
	for _, v := range values {
		fmt.Fprintf(&b, "%d:%s;", len(v), v)
	}
	return b.String()
}

// get returns the series for the given label values, creating it if the
// family has room; beyond maxSeries every new combination collapses into
// the overflow series (all label values OverflowLabel).
func (f *family) get(values []string) *series {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: metric %q: %d label values for %d labels",
			f.name, len(values), len(f.labelNames)))
	}
	key := seriesKey(values)
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok = f.series[key]; ok {
		return s
	}
	if len(f.order) >= f.maxSeries {
		overflow := make([]string, len(values))
		for i := range overflow {
			overflow[i] = OverflowLabel
		}
		okey := seriesKey(overflow)
		if s, ok = f.series[okey]; ok {
			return s
		}
		key, values = okey, overflow
	}
	s = &series{labelValues: append([]string(nil), values...)}
	if f.kind == KindHistogram {
		s.hist = &trace.Histogram{}
	}
	f.series[key] = s
	f.order = append(f.order, s)
	return s
}

// Counter is a monotonically increasing integer metric handle.
type Counter struct{ s *series }

// Add increments the counter by n (negative deltas are dropped).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.s.count.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the counter's current value.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.s.count.Load()
}

// Gauge is a settable instantaneous-value metric handle.
type Gauge struct{ s *series }

// Set records the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.s.bits.Store(floatBits(v))
}

// Value returns the gauge's current value (callback gauges evaluate their
// function).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	if g.s.fn != nil {
		return g.s.fn()
	}
	return floatFromBits(g.s.bits.Load())
}

func floatBits(v float64) uint64     { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// CounterVec is a counter family handle with labels.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (created on first
// use; collapsed into the overflow series past the cardinality bound).
func (v *CounterVec) With(labelValues ...string) *Counter {
	return &Counter{s: v.f.get(labelValues)}
}

// GaugeVec is a gauge family handle with labels.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return &Gauge{s: v.f.get(labelValues)}
}

// HistogramVec is a histogram family handle with labels. Values are
// durations; exposition renders them in seconds.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *trace.Histogram {
	return v.f.get(labelValues).hist
}

// Attach registers an externally owned histogram as the series for the
// given label values, so existing recorders (e.g. the trace pipeline's
// per-stage histograms) expose through the registry without double
// bookkeeping. Attaching to an existing series replaces its histogram.
func (v *HistogramVec) Attach(h *trace.Histogram, labelValues ...string) {
	if h == nil {
		return
	}
	s := v.f.get(labelValues)
	v.f.mu.Lock()
	s.hist = h
	v.f.mu.Unlock()
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return &Counter{s: r.register(name, help, KindCounter, nil).get(nil)}
}

// CounterFunc registers a callback-valued counter: the function is
// evaluated at scrape time and must be monotonically non-decreasing.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	s := r.register(name, help, KindCounter, nil).get(nil)
	s.fn = func() float64 { return float64(fn()) }
}

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, KindCounter, labelNames)}
}

// Gauge registers (or fetches) an unlabeled settable gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return &Gauge{s: r.register(name, help, KindGauge, nil).get(nil)}
}

// GaugeFunc registers a callback-valued gauge, evaluated at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	s := r.register(name, help, KindGauge, nil).get(nil)
	s.fn = fn
}

// GaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, KindGauge, labelNames)}
}

// Histogram registers (or fetches) an unlabeled duration histogram.
func (r *Registry) Histogram(name, help string) *trace.Histogram {
	return r.register(name, help, KindHistogram, nil).get(nil).hist
}

// HistogramVec registers (or fetches) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, labelNames ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, KindHistogram, labelNames)}
}

// escapeLabelValue escapes a label value per the Prometheus text format:
// backslash, double-quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// labelString renders {a="x",b="y"} for the series, with extra appended as
// pre-rendered pairs (used for histogram le labels). Returns "" for
// unlabeled series with no extras.
func labelString(names, values []string, extra ...string) string {
	if len(names) == 0 && len(extra) == 0 {
		return ""
	}
	parts := make([]string, 0, len(names)+len(extra))
	for i, n := range names {
		parts = append(parts, n+`="`+escapeLabelValue(values[i])+`"`)
	}
	parts = append(parts, extra...)
	return "{" + strings.Join(parts, ",") + "}"
}

// formatFloat renders a sample value the way the pre-registry exposition
// did: strconv 'g' with minimal digits.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4). Families appear in registration
// order and series within a family in creation order, so repeated scrapes
// of one process are stable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	fams := append([]*family(nil), r.order...)
	r.mu.RUnlock()
	var b strings.Builder
	for _, f := range fams {
		f.mu.RLock()
		ss := append([]*series(nil), f.order...)
		f.mu.RUnlock()
		if len(ss) == 0 {
			continue
		}
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
		for _, s := range ss {
			labels := labelString(f.labelNames, s.labelValues)
			switch f.kind {
			case KindCounter:
				v := s.count.Load()
				if s.fn != nil {
					v = int64(s.fn())
				}
				fmt.Fprintf(&b, "%s%s %d\n", f.name, labels, v)
			case KindGauge:
				v := floatFromBits(s.bits.Load())
				if s.fn != nil {
					v = s.fn()
				}
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labels, formatFloat(v))
			case KindHistogram:
				writeHistogramSeries(&b, f, s)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogramSeries renders one histogram series: occupied buckets
// (cumulative), the mandatory +Inf bucket, sum, and count, in seconds. The
// log-bucketed histogram has hundreds of potential buckets; only populated
// ones are emitted.
func writeHistogramSeries(b *strings.Builder, f *family, s *series) {
	h := s.hist
	if h == nil {
		return
	}
	base := labelPairs(f.labelNames, s.labelValues)
	cum := uint64(0)
	h.ForEachBucket(func(upper time.Duration, count uint64) {
		cum += count
		le := `le="` + formatFloat(upper.Seconds()) + `"`
		fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, bracket(append(base, le)), cum)
	})
	fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, bracket(append(base, `le="+Inf"`)), h.Count())
	fmt.Fprintf(b, "%s_sum%s %s\n", f.name, bracket(base), formatFloat(h.Sum().Seconds()))
	fmt.Fprintf(b, "%s_count%s %d\n", f.name, bracket(base), h.Count())
}

// labelPairs renders each name/value pair; bracket joins them, returning ""
// when empty.
func labelPairs(names, values []string) []string {
	pairs := make([]string, 0, len(names)+1)
	for i, n := range names {
		pairs = append(pairs, n+`="`+escapeLabelValue(values[i])+`"`)
	}
	return pairs
}

func bracket(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	return "{" + strings.Join(pairs, ",") + "}"
}

// jsonSeries is one series in the JSON exposition.
type jsonSeries struct {
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value,omitempty"`
	Count  uint64            `json:"count,omitempty"`
	// SumSeconds and quantiles render histogram series.
	SumSeconds float64 `json:"sumSeconds,omitempty"`
	P50Seconds float64 `json:"p50Seconds,omitempty"`
	P95Seconds float64 `json:"p95Seconds,omitempty"`
	P99Seconds float64 `json:"p99Seconds,omitempty"`
}

// jsonFamily is one family in the JSON exposition.
type jsonFamily struct {
	Name   string       `json:"name"`
	Help   string       `json:"help"`
	Kind   string       `json:"kind"`
	Series []jsonSeries `json:"series"`
}

// WriteJSON renders every registered family as a JSON array — the same
// registry walk as WritePrometheus in the other exposition format, in the
// same deterministic family/series order.
func (r *Registry) WriteJSON(w io.Writer) error {
	r.mu.RLock()
	fams := append([]*family(nil), r.order...)
	r.mu.RUnlock()
	out := make([]jsonFamily, 0, len(fams))
	for _, f := range fams {
		f.mu.RLock()
		ss := append([]*series(nil), f.order...)
		f.mu.RUnlock()
		if len(ss) == 0 {
			continue
		}
		jf := jsonFamily{Name: f.name, Help: f.help, Kind: f.kind.String(), Series: make([]jsonSeries, 0, len(ss))}
		for _, s := range ss {
			js := jsonSeries{}
			if len(f.labelNames) > 0 {
				js.Labels = make(map[string]string, len(f.labelNames))
				for i, n := range f.labelNames {
					js.Labels[n] = s.labelValues[i]
				}
			}
			switch f.kind {
			case KindCounter:
				v := s.count.Load()
				if s.fn != nil {
					v = int64(s.fn())
				}
				js.Value = float64(v)
			case KindGauge:
				v := floatFromBits(s.bits.Load())
				if s.fn != nil {
					v = s.fn()
				}
				js.Value = v
			case KindHistogram:
				if s.hist == nil {
					continue
				}
				q := s.hist.Summary()
				js.Count = q.Count
				js.SumSeconds = s.hist.Sum().Seconds()
				js.P50Seconds = q.P50.Seconds()
				js.P95Seconds = q.P95.Seconds()
				js.P99Seconds = q.P99.Seconds()
			}
			jf.Series = append(jf.Series, js)
		}
		out = append(out, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Families returns the registered family names in registration order (for
// tests and debugging).
func (r *Registry) Families() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.order))
	for i, f := range r.order {
		out[i] = f.name
	}
	return out
}

// SeriesCount returns the number of live series in the named family (0 if
// absent), letting tests assert the cardinality bound.
func (r *Registry) SeriesCount(name string) int {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		return 0
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.order)
}

// SortedLabelValues returns the sorted first-label values of the named
// family's series, for deterministic test assertions.
func (r *Registry) SortedLabelValues(name string) []string {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		return nil
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	var out []string
	for _, s := range f.order {
		if len(s.labelValues) > 0 {
			out = append(out, s.labelValues[0])
		}
	}
	sort.Strings(out)
	return out
}

package fleet_test

import (
	"encoding/json"
	"net"
	"net/http/httptest"
	"regexp"
	"sync"
	"testing"
	"time"

	"websnap/internal/client"
	"websnap/internal/edge"
	"websnap/internal/fleet"
	"websnap/internal/mlapp"
	"websnap/internal/models"
	"websnap/internal/protocol"
	"websnap/internal/roam"
	"websnap/internal/telemetry"
	"websnap/internal/testutil"
	"websnap/internal/webapp"
)

// The telemetry integration tests drive the fleet-wide trace plane end to
// end: one trace ID propagated across a roam handoff's pre-send, through
// the new server's registry locate and peer blob fetch, merged back into a
// single span tree on the client — plus the SLO/flight-recorder incident
// path on a live edge server.

var traceIDRe = regexp.MustCompile(`^[0-9a-f]{16}$`)

// TestFleetRoamTraceTree is the tentpole acceptance test: a three-server
// fleet, a telemetry-enabled roaming client. The A→B handoff pre-send
// must come back as ONE span tree under one 16-hex trace ID covering
// every process the handoff touched: the client (root), server B (resolve),
// the registry (locate hop), and server A (peer blob serve).
func TestFleetRoamTraceTree(t *testing.T) {
	testutil.LeakCheck(t)
	regAddr := startRegistry(t, 2*time.Second)
	srvA, addrA := startFleetEdge(t, regAddr)
	_, addrB := startFleetEdge(t, regAddr)

	model, err := models.BuildTinyNet("tiny", 3)
	if err != nil {
		t.Fatal(err)
	}
	labels := []string{"cat", "dog", "bird"}

	var mu sync.Mutex
	preferred := addrA
	probe := func(addr string) (time.Duration, error) {
		mu.Lock()
		defer mu.Unlock()
		if addr == preferred {
			return time.Millisecond, nil
		}
		return 100 * time.Millisecond, nil
	}
	rc := fleet.NewRegistryClient(regAddr, fleet.ClientOptions{})
	roamer, err := roam.New(roam.Config{
		FleetView: fleet.PlacementView(rc, fleet.PolicyHash, "trace-app"),
		Probe:     probe,
	})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := roamer.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer roamer.Close()
	if addr, _ := roamer.Current(); addr != addrA {
		t.Fatalf("connected to %q, want A=%q", addr, addrA)
	}
	conn.EnableTelemetry()

	app, err := mlapp.NewFullApp("trace-app", "tiny", model, labels)
	if err != nil {
		t.Fatal(err)
	}
	flight := telemetry.NewFlightRecorder(1 << 20)
	off, err := client.NewOffloader(app, conn, client.Options{
		OffloadEventTypes: []string{mlapp.EventClick},
		Models:            []client.ModelToSend{{Name: "tiny", Net: model}},
		EnableDelta:       true,
		BlobRefPreSend:    true,
		FleetSync:         true,
		Placement:         string(fleet.PolicyHash),
		Flight:            flight,
	})
	if err != nil {
		t.Fatal(err)
	}
	off.StartPreSend()
	if err := off.WaitForAcks(); err != nil {
		t.Fatal(err)
	}
	// The session-start pre-send is not a handoff: no handoff trace yet.
	if off.Stats().LastHandoffSpan != nil {
		t.Fatal("LastHandoffSpan set before any handoff")
	}

	if err := mlapp.LoadImage(app, mlapp.SyntheticImage(3*16*16, 1)); err != nil {
		t.Fatal(err)
	}
	app.DispatchEvent(webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick})
	if _, err := off.Run(10); err != nil {
		t.Fatal(err)
	}

	// Roam A→B once A's heartbeat has advertised the model blob, so B's
	// pre-send resolution exercises the registry hop and a real peer fetch.
	waitForIndexedBlobs(t, rc, srvA)
	mu.Lock()
	preferred = addrB
	mu.Unlock()
	newConn, switched, err := roamer.Evaluate()
	if err != nil || !switched {
		t.Fatalf("hop A→B: switched=%v err=%v", switched, err)
	}
	newConn.EnableTelemetry()
	if err := off.Retarget(newConn); err != nil {
		t.Fatal(err)
	}
	if err := off.WaitForAcks(); err != nil {
		t.Fatal(err)
	}

	span := off.Stats().LastHandoffSpan
	if span == nil {
		t.Fatal("telemetry-enabled handoff produced no span tree")
	}
	if span.Op != "handoff_presend" || span.Addr != "client" {
		t.Fatalf("tree root = %s@%s, want handoff_presend@client", span.Op, span.Addr)
	}
	// Walk the merged tree: every process the handoff touched must appear,
	// and every node must be parented under the single client root.
	byOp := map[string]*protocol.SpanNode{}
	nodes := 0
	span.Walk(func(n *protocol.SpanNode) {
		nodes++
		byOp[n.Op] = n
	})
	for op, wantAddr := range map[string]string{
		"presend_resolve": addrB,      // server B resolved the reference
		"registry_rpc":    regAddr,    // B's locate round trip
		"registry_locate": "registry", // the registry's own span
		"peer_fetch":      addrA,      // B pulled the blob from A
		"blob_serve":      addrA,      // A's serving span
	} {
		n, ok := byOp[op]
		if !ok {
			t.Fatalf("span tree lacks %s:\n%s", op, spanJSON(t, span))
		}
		if n.Addr != wantAddr {
			t.Errorf("%s span addr = %q, want %q", op, n.Addr, wantAddr)
		}
		if n.Micros < 0 {
			t.Errorf("%s span has negative duration %d", op, n.Micros)
		}
	}
	if nodes < 6 {
		t.Errorf("span tree has %d nodes, want >= 6 (root + 5 hops):\n%s", nodes, spanJSON(t, span))
	}

	// The flight recorder captured the handoff under one well-formed trace
	// ID, with the same tree as evidence.
	var handoffs []telemetry.FlightEntry
	for _, e := range flight.Dump() {
		if e.Reason == telemetry.FlightHandoff {
			handoffs = append(handoffs, e)
		}
	}
	if len(handoffs) == 0 {
		t.Fatal("flight recorder holds no handoff entry")
	}
	for _, e := range handoffs {
		if !traceIDRe.MatchString(e.TraceID) {
			t.Errorf("handoff flight entry trace ID %q is not 16-hex", e.TraceID)
		}
		if e.TraceID != handoffs[0].TraceID {
			t.Errorf("handoff pre-sends split across trace IDs %q and %q, want one",
				handoffs[0].TraceID, e.TraceID)
		}
		if e.Span == nil {
			t.Error("handoff flight entry carries no span tree")
		}
	}

	// The offload after the handoff still answers correctly (the trace
	// plane is observation only).
	if err := mlapp.LoadImage(app, mlapp.SyntheticImage(3*16*16, 2)); err != nil {
		t.Fatal(err)
	}
	app.DispatchEvent(webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick})
	if _, err := off.Run(10); err != nil {
		t.Fatal(err)
	}
	if got, want := mlapp.Result(app), localResult(t, model, labels, 2); got != want {
		t.Errorf("post-handoff result %q, want %q", got, want)
	}
}

func spanJSON(t *testing.T, n *protocol.SpanNode) string {
	t.Helper()
	data, err := json.MarshalIndent(n, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestEdgeSLOBurnDepositsFlight induces a latency regression against an
// absurdly tight objective: the server's /slo must flip to burning, and
// the flight recorder must hold both the offending request's span tree
// (reason "slow") and the burn transition (reason "slo_burn").
func TestEdgeSLOBurnDepositsFlight(t *testing.T) {
	testutil.LeakCheck(t)
	cat := webapp.NewCatalog()
	if err := cat.Add(mlapp.FullRegistry()); err != nil {
		t.Fatal(err)
	}
	flight := telemetry.NewFlightRecorder(1 << 20)
	slo, err := telemetry.NewSLO(telemetry.SLOConfig{
		Name:      "edge-serve",
		Objective: time.Nanosecond, // every real request is a regression
		OnBurn: func(st telemetry.SLOStatus) {
			flight.Record(telemetry.FlightEntry{Reason: telemetry.FlightBurn, Note: st.Name})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := edge.NewServer(edge.Config{
		Catalog: cat, Installed: true, Workers: 1,
		SLO: slo, Flight: flight,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() {
		srv.Close()
		<-done
	}()

	model, err := models.BuildTinyNet("tiny", 3)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	app, err := mlapp.NewFullApp("slo-app", "tiny", model, []string{"cat", "dog", "bird"})
	if err != nil {
		t.Fatal(err)
	}
	off, err := client.NewOffloader(app, conn, client.Options{
		OffloadEventTypes: []string{mlapp.EventClick},
		Models:            []client.ModelToSend{{Name: "tiny", Net: model}},
	})
	if err != nil {
		t.Fatal(err)
	}
	off.StartPreSend()
	if err := off.WaitForAcks(); err != nil {
		t.Fatal(err)
	}
	if err := mlapp.LoadImage(app, mlapp.SyntheticImage(3*16*16, 7)); err != nil {
		t.Fatal(err)
	}
	app.DispatchEvent(webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick})
	if _, err := off.Run(10); err != nil {
		t.Fatal(err)
	}

	if st := slo.Status(); !st.Burning {
		t.Fatalf("SLO not burning after regression: %+v", st)
	}
	var slow, burn int
	for _, e := range flight.Dump() {
		switch e.Reason {
		case telemetry.FlightSlow:
			slow++
			if e.Span == nil || e.Span.Op != "serve" {
				t.Errorf("slow entry span = %+v, want a serve tree", e.Span)
			}
		case telemetry.FlightBurn:
			burn++
		}
	}
	if slow == 0 || burn == 0 {
		t.Fatalf("flight dump: %d slow / %d burn entries, want both > 0", slow, burn)
	}

	// The operator surfaces agree: /slo reports burning, /readyz stays
	// green (slow is degraded, not dead) while naming the burn, and
	// /debug/flight serves the deposited evidence.
	rr := httptest.NewRecorder()
	srv.SLOHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/slo", nil))
	var st telemetry.SLOStatus
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil || !st.Burning {
		t.Errorf("/slo = %s (err %v), want burning", rr.Body.String(), err)
	}
	rr = httptest.NewRecorder()
	srv.ReadyzHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/readyz", nil))
	if rr.Code != 200 || rr.Body.String() != "ready (slo burning)\n" {
		t.Errorf("/readyz = %d %q, want 200 'ready (slo burning)'", rr.Code, rr.Body.String())
	}
	rr = httptest.NewRecorder()
	srv.FlightHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flight", nil))
	var dump struct {
		Entries []telemetry.FlightEntry `json:"entries"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &dump); err != nil || len(dump.Entries) == 0 {
		t.Errorf("/debug/flight = err %v, %d entries; want evidence", err, len(dump.Entries))
	}
}

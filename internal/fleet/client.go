package fleet

import (
	"fmt"
	"net"
	"sync"
	"time"

	"websnap/internal/protocol"
)

// DefaultClientTimeout bounds one registry round trip (dial + request +
// response).
const DefaultClientTimeout = 2 * time.Second

// ClientOptions configures a RegistryClient.
type ClientOptions struct {
	// Timeout bounds each registry round trip (DefaultClientTimeout when
	// zero).
	Timeout time.Duration
	// Dial overrides the transport (tests inject in-memory pipes or
	// chaos-wrapped dialers). nil means net.DialTimeout("tcp", ...).
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
}

// RegistryClient talks to a registry over single-shot framed connections
// and keeps the last successfully fetched view. When the registry is
// unreachable, placement degrades to that last-known-good view instead of
// failing — a fleet with a dead registry keeps serving, it just stops
// learning about membership changes.
type RegistryClient struct {
	addr    string
	timeout time.Duration
	dial    func(addr string, timeout time.Duration) (net.Conn, error)

	mu       sync.Mutex
	cached   *protocol.FleetViewHeader
	cachedAt time.Time
}

// NewRegistryClient builds a client for the registry at addr.
func NewRegistryClient(addr string, opts ClientOptions) *RegistryClient {
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = DefaultClientTimeout
	}
	dial := opts.Dial
	if dial == nil {
		dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	return &RegistryClient{addr: addr, timeout: timeout, dial: dial}
}

// Addr returns the registry address this client targets.
func (c *RegistryClient) Addr() string { return c.addr }

// do runs one request/response round trip on a fresh connection.
func (c *RegistryClient) do(req protocol.Message) (protocol.Message, error) {
	conn, err := c.dial(c.addr, c.timeout)
	if err != nil {
		return protocol.Message{}, fmt.Errorf("fleet: dial registry %s: %w", c.addr, err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
		return protocol.Message{}, err
	}
	if err := protocol.Write(conn, req); err != nil {
		return protocol.Message{}, fmt.Errorf("fleet: write to registry: %w", err)
	}
	resp, err := protocol.Read(conn)
	if err != nil {
		return protocol.Message{}, fmt.Errorf("fleet: read from registry: %w", err)
	}
	if resp.Type == protocol.MsgError {
		var eh protocol.ErrorHeader
		if err := protocol.DecodeHeader(resp, &eh); err != nil {
			return protocol.Message{}, err
		}
		return protocol.Message{}, fmt.Errorf("fleet: registry error: %s", eh.Message)
	}
	return resp, nil
}

// Register sends one registration/heartbeat.
func (c *RegistryClient) Register(hdr protocol.FleetRegisterHeader) (protocol.FleetRegisteredHeader, error) {
	hdr.Hints = protocol.HintFleetV1
	req, err := protocol.Encode(protocol.MsgFleetRegister, hdr, nil)
	if err != nil {
		return protocol.FleetRegisteredHeader{}, err
	}
	resp, err := c.do(req)
	if err != nil {
		return protocol.FleetRegisteredHeader{}, err
	}
	if resp.Type != protocol.MsgFleetRegistered {
		return protocol.FleetRegisteredHeader{}, fmt.Errorf("fleet: unexpected reply %s", resp.Type)
	}
	var out protocol.FleetRegisteredHeader
	err = protocol.DecodeHeader(resp, &out)
	return out, err
}

// FetchView fetches the current fleet view and caches it on success.
func (c *RegistryClient) FetchView() (protocol.FleetViewHeader, error) {
	req, err := protocol.Encode(protocol.MsgFleetList,
		protocol.FleetListHeader{Hints: protocol.HintFleetV1}, nil)
	if err != nil {
		return protocol.FleetViewHeader{}, err
	}
	resp, err := c.do(req)
	if err != nil {
		return protocol.FleetViewHeader{}, err
	}
	if resp.Type != protocol.MsgFleetView {
		return protocol.FleetViewHeader{}, fmt.Errorf("fleet: unexpected reply %s", resp.Type)
	}
	var view protocol.FleetViewHeader
	if err := protocol.DecodeHeader(resp, &view); err != nil {
		return protocol.FleetViewHeader{}, err
	}
	c.mu.Lock()
	c.cached = &view
	c.cachedAt = time.Now()
	c.mu.Unlock()
	return view, nil
}

// View fetches the fleet view, degrading to the last-known-good cached
// view when the registry is unreachable. cached reports whether the result
// is the degraded copy; err is non-nil only when there is no cache to fall
// back on.
func (c *RegistryClient) View() (view protocol.FleetViewHeader, cached bool, err error) {
	view, err = c.FetchView()
	if err == nil {
		return view, false, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cached == nil {
		return protocol.FleetViewHeader{}, false, err
	}
	return *c.cached, true, nil
}

// CachedView returns the last successfully fetched view, if any.
func (c *RegistryClient) CachedView() (protocol.FleetViewHeader, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cached == nil {
		return protocol.FleetViewHeader{}, false
	}
	return *c.cached, true
}

// Locate asks the registry which servers hold each blob key.
func (c *RegistryClient) Locate(keys []string) (map[string][]string, error) {
	holders, _, err := c.LocateTraced(keys, "")
	return holders, err
}

// LocateTraced is Locate with cross-process trace propagation: traceID is
// stamped on the request (HintTelemetryV1) and the registry's span for the
// hop comes back alongside the holders. An empty traceID degrades to the
// untraced request, byte-identical to Locate against old registries.
func (c *RegistryClient) LocateTraced(keys []string, traceID string) (map[string][]string, *protocol.SpanNode, error) {
	hdr := protocol.BlobLocateHeader{Keys: keys, Hints: protocol.HintFleetV1}
	if traceID != "" {
		hdr.Hints = protocol.HintTelemetryV1
		hdr.TraceID = traceID
	}
	req, err := protocol.Encode(protocol.MsgBlobLocate, hdr, nil)
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	resp, err := c.do(req)
	if err != nil {
		return nil, nil, err
	}
	if resp.Type != protocol.MsgBlobLocation {
		return nil, nil, fmt.Errorf("fleet: unexpected reply %s", resp.Type)
	}
	var loc protocol.BlobLocationHeader
	if err := protocol.DecodeHeader(resp, &loc); err != nil {
		return nil, nil, err
	}
	span := loc.Span
	if traceID != "" && span != nil {
		// The registry measured only its own work; the caller's view of the
		// hop includes the round trip. Wrap so the tree keeps both.
		span = &protocol.SpanNode{
			Op:       "registry_rpc",
			Addr:     c.addr,
			Micros:   time.Since(start).Microseconds(),
			Children: []*protocol.SpanNode{loc.Span},
		}
	}
	return loc.Holders, span, nil
}

package fleet

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"websnap/internal/protocol"
)

// TestBlobStoreLRUCap pins the bounded store's core contract: Bytes never
// exceeds the cap, eviction order is least-recently-used, and Get counts
// as use.
func TestBlobStoreLRUCap(t *testing.T) {
	b := NewBlobStoreCap(10)
	b.Put("a", []byte("aaaa")) // 4
	b.Put("b", []byte("bbbb")) // 8
	if _, ok := b.Get("a"); !ok {
		t.Fatal("a missing before cap pressure")
	}
	// a was just used, so inserting c (4 bytes, total would be 12) must
	// evict b, the least recently used.
	b.Put("c", []byte("cccc"))
	if b.Has("b") {
		t.Fatal("LRU eviction removed the wrong entry: b survived")
	}
	if !b.Has("a") || !b.Has("c") {
		t.Fatalf("survivors wrong: a=%v c=%v", b.Has("a"), b.Has("c"))
	}
	if b.Bytes() > b.MaxBytes() {
		t.Fatalf("Bytes %d exceeds cap %d", b.Bytes(), b.MaxBytes())
	}
	if got := b.Evictions(); got != 1 {
		t.Fatalf("Evictions = %d, want 1", got)
	}
}

// TestBlobStoreCapUnderLoad hammers a small store with many distinct blobs
// and asserts the byte bound holds at every step.
func TestBlobStoreCapUnderLoad(t *testing.T) {
	const cap = 1 << 10
	b := NewBlobStoreCap(cap)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("blob-%03d", i)
		b.Put(key, []byte(strings.Repeat("x", 64+i%128)))
		if b.Bytes() > cap {
			t.Fatalf("after put %d: Bytes %d exceeds cap %d", i, b.Bytes(), cap)
		}
	}
	if b.Evictions() == 0 {
		t.Fatal("500 blobs through a 1KiB store evicted nothing")
	}
	if b.Len() == 0 {
		t.Fatal("store empty after load; eviction overshot")
	}
}

// TestBlobStoreRejectsOversized pins that a single blob larger than the
// whole cap is refused rather than evicting everything for nothing.
func TestBlobStoreRejectsOversized(t *testing.T) {
	b := NewBlobStoreCap(8)
	b.Put("small", []byte("ok"))
	b.Put("huge", []byte("0123456789"))
	if b.Has("huge") {
		t.Fatal("oversized blob admitted")
	}
	if !b.Has("small") {
		t.Fatal("oversized blob evicted the resident set on its way to rejection")
	}
}

// TestBlobStoreKeysMRU pins the recency-ordered key listing the heartbeat
// cap depends on: hottest first, optionally truncated.
func TestBlobStoreKeysMRU(t *testing.T) {
	b := NewBlobStore()
	b.Put("a", []byte("1"))
	b.Put("b", []byte("2"))
	b.Put("c", []byte("3"))
	b.Get("a") // a becomes hottest
	got := b.KeysMRU(0)
	if len(got) != 3 || got[0] != "a" || got[1] != "c" || got[2] != "b" {
		t.Fatalf("KeysMRU(0) = %v, want [a c b]", got)
	}
	if got := b.KeysMRU(2); len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("KeysMRU(2) = %v, want [a c]", got)
	}
}

// TestRegistryVersionPrunes pins that Version applies pending TTL lapses
// before reporting: a caller comparing Version against a concurrent View
// must never see the stale pre-expiry number.
func TestRegistryVersionPrunes(t *testing.T) {
	clk := newFakeClock()
	r := NewRegistry(RegistryOptions{TTL: time.Second, Now: clk.now})
	r.Register(reg("a:1"))
	_, v := r.Register(reg("b:1"))
	if got := r.Version(); got != v {
		t.Fatalf("Version = %d, want %d", got, v)
	}
	clk.advance(2 * time.Second)
	// Both registrations have lapsed but nothing has touched the registry
	// since; Version alone must surface the expiry bumps.
	if got := r.Version(); got != v+2 {
		t.Fatalf("Version after lapse = %d, want %d (two expiries applied)", got, v+2)
	}
	if got := r.View().Version; got != v+2 {
		t.Fatalf("View.Version = %d disagrees with Version", got)
	}
}

// TestAgentHeartbeatCapsBlobAdvertisement pins the heartbeat bound: a
// server holding more keys than one register header can carry still
// registers (advertising the hot prefix) instead of overflowing
// protocol.MaxHeaderLen and dropping out of the fleet.
func TestAgentHeartbeatCapsBlobAdvertisement(t *testing.T) {
	r := NewRegistry(RegistryOptions{TTL: 10 * time.Second})
	addr, stop := startWireRegistry(t, r)
	defer stop()

	// ~200-byte keys x 20000 would be a ~4 MiB header — far past the 1 MiB
	// frame bound. The default cap keeps the first 4096 (~800 KiB).
	keys := make([]string, 20000)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%05d-%s", i, strings.Repeat("k", 190))
	}
	a, err := StartAgent(AgentConfig{
		Client:   NewRegistryClient(addr, ClientOptions{}),
		Addr:     "edge-big:9000",
		Capacity: 2,
		TTL:      10 * time.Second,
		Blobs:    func() []string { return keys },
	})
	if err != nil {
		t.Fatalf("StartAgent with oversized blob set: %v", err)
	}
	defer a.Close()

	if got := r.Servers(); got != 1 {
		t.Fatalf("servers = %d, want 1", got)
	}
	// The hot prefix is advertised; the truncated tail is not.
	if holders := r.Locate([]string{keys[0]}); len(holders[keys[0]]) != 1 {
		t.Fatalf("hot key not advertised: %v", holders)
	}
	last := keys[DefaultMaxAdvertisedBlobs-1]
	if holders := r.Locate([]string{last}); len(holders[last]) != 1 {
		t.Fatal("key at the cap boundary not advertised")
	}
	beyond := keys[DefaultMaxAdvertisedBlobs]
	if holders := r.Locate([]string{beyond}); len(holders) != 0 {
		t.Fatalf("key beyond the cap advertised: %v", holders)
	}
}

// TestAgentHeartbeatUnlimitedBlobsOverflow pins WHY the cap exists: with
// MaxBlobs < 0 (unlimited) the same oversized set must fail registration
// at the frame layer.
func TestAgentHeartbeatUnlimitedBlobsOverflow(t *testing.T) {
	r := NewRegistry(RegistryOptions{TTL: 10 * time.Second})
	addr, stop := startWireRegistry(t, r)
	defer stop()

	keys := make([]string, 20000)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%05d-%s", i, strings.Repeat("k", 190))
	}
	_, err := StartAgent(AgentConfig{
		Client:   NewRegistryClient(addr, ClientOptions{}),
		Addr:     "edge-big:9000",
		Capacity: 2,
		TTL:      10 * time.Second,
		MaxBlobs: -1,
		Blobs:    func() []string { return keys },
	})
	if err == nil {
		t.Fatal("unlimited 4MiB blob advertisement registered; expected a frame-size failure")
	}
}

// TestHeartbeatEvictionRoundTrip pins the eviction round trip at the fleet
// layer: a key evicted from the blob store disappears from the next
// heartbeat's advertisement, and with it from Registry.Locate.
func TestHeartbeatEvictionRoundTrip(t *testing.T) {
	r := NewRegistry(RegistryOptions{TTL: 10 * time.Second})
	addr, stop := startWireRegistry(t, r)
	defer stop()

	b := NewBlobStoreCap(8)
	b.Put("old", []byte("aaaa"))
	client := NewRegistryClient(addr, ClientOptions{})
	hb := func() protocol.FleetRegisterHeader {
		return protocol.FleetRegisterHeader{Addr: "edge-a:9000", Capacity: 2, Blobs: b.KeysMRU(0)}
	}
	if _, err := client.Register(hb()); err != nil {
		t.Fatal(err)
	}
	if holders := r.Locate([]string{"old"}); len(holders["old"]) != 1 {
		t.Fatalf("old not advertised: %v", holders)
	}

	// Cap pressure evicts "old"; the next heartbeat must retract it.
	b.Put("new", []byte("bbbbbb"))
	if b.Has("old") {
		t.Fatal("old survived cap pressure")
	}
	if _, err := client.Register(hb()); err != nil {
		t.Fatal(err)
	}
	holders := r.Locate([]string{"old", "new"})
	if len(holders["old"]) != 0 {
		t.Fatalf("evicted key still located after heartbeat: %v", holders)
	}
	if len(holders["new"]) != 1 {
		t.Fatalf("resident key not located: %v", holders)
	}
}

var _ = protocol.MaxHeaderLen // the overflow test exercises this bound

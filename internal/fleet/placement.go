package fleet

import (
	"hash/fnv"
	"math"
	"sort"

	"websnap/internal/protocol"
)

// Policy names a placement strategy.
type Policy string

const (
	// PolicyHash is pure weighted-rendezvous consistent hashing over the
	// session ID with unit weights: placement depends only on membership,
	// so a stable fleet gives perfectly sticky sessions and a membership
	// change remaps only the sessions that were on the departed server.
	PolicyHash Policy = "hash"
	// PolicyLoadWeighted blends the same rendezvous hash with each
	// server's capacity and live load hint: weight = capacity softened by
	// the advertised queueing delay, and saturated servers rank after all
	// unsaturated ones. Sessions stay sticky while the fleet is balanced
	// and shift away from servers that fall behind — the multi-server
	// analogue of the client's single-server MaxQueueingDelay shedding.
	PolicyLoadWeighted Policy = "load"
)

// queueingSoftenMillis controls how strongly the advertised queueing delay
// discounts a server's weight under PolicyLoadWeighted: weight halves at
// this much queueing. Chosen near the paper's LTE RTT scale so a server
// needs network-significant queueing before placement moves sessions.
const queueingSoftenMillis = 50.0

// Rank orders the fleet view for one session, best candidate first.
// Ordering is deterministic for a given (policy, sessionID, view).
func Rank(policy Policy, sessionID string, servers []protocol.FleetServer) []protocol.FleetServer {
	type scored struct {
		s         protocol.FleetServer
		score     float64
		saturated bool
	}
	ranked := make([]scored, 0, len(servers))
	for _, s := range servers {
		w := 1.0
		saturated := false
		if policy == PolicyLoadWeighted {
			w = float64(s.Capacity)
			if w <= 0 {
				w = 1
			}
			if s.Load != nil {
				w /= 1 + s.Load.QueueingMillis/queueingSoftenMillis
				saturated = s.Load.Saturated
			}
		}
		ranked = append(ranked, scored{s: s, score: rendezvousScore(sessionID, s.Addr, w), saturated: saturated})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].saturated != ranked[j].saturated {
			return !ranked[i].saturated
		}
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].s.Addr < ranked[j].s.Addr
	})
	out := make([]protocol.FleetServer, len(ranked))
	for i, r := range ranked {
		out[i] = r.s
	}
	return out
}

// Pick returns the best server for the session, false on an empty view.
func Pick(policy Policy, sessionID string, servers []protocol.FleetServer) (protocol.FleetServer, bool) {
	if len(servers) == 0 {
		return protocol.FleetServer{}, false
	}
	return Rank(policy, sessionID, servers)[0], true
}

// PickChain returns up to k servers for a multi-hop chain, best candidate
// first: the session's rendezvous ranking with saturated servers skipped
// entirely (a chain is only as fast as its slowest hop, so a saturated
// mid-chain server would stall the whole pipeline). Fewer than k servers
// come back when the view is small or mostly saturated; the caller then
// plans a shorter chain or falls back to 2-way.
func PickChain(policy Policy, sessionID string, servers []protocol.FleetServer, k int) []protocol.FleetServer {
	if k <= 0 {
		return nil
	}
	ranked := Rank(policy, sessionID, servers)
	out := make([]protocol.FleetServer, 0, k)
	for _, s := range ranked {
		if s.Load != nil && s.Load.Saturated {
			continue
		}
		out = append(out, s)
		if len(out) == k {
			break
		}
	}
	return out
}

// PlacementView adapts a registry client to a dynamic candidate view (the
// shape internal/roam's Config.FleetView expects): each call fetches the
// fleet view — degrading to the client's last-known-good cache during a
// registry outage — ranks it for the session under the policy, and tags
// the source ("registry" live, "registry-cached" degraded) for the
// caller's audit trail. The error is non-nil only when the registry is
// unreachable and no cached view exists.
func PlacementView(rc *RegistryClient, policy Policy, sessionID string) func() ([]string, string, error) {
	return func() ([]string, string, error) {
		view, cached, err := rc.View()
		if err != nil {
			return nil, "", err
		}
		ranked := Rank(policy, sessionID, view.Servers)
		addrs := make([]string, len(ranked))
		for i, s := range ranked {
			addrs[i] = s.Addr
		}
		source := "registry"
		if cached {
			source = "registry-cached"
		}
		return addrs, source, nil
	}
}

// rendezvousScore is weighted rendezvous (highest-random-weight) hashing:
// hash (session, addr) to a uniform u in (0,1) and score it -w/ln(u).
// The server with the maximum score wins; because each (session, server)
// pair is hashed independently, removing a server only remaps the sessions
// it owned, and a server with twice the weight wins twice as often.
func rendezvousScore(sessionID, addr string, w float64) float64 {
	h := fnv.New64a()
	h.Write([]byte(sessionID))
	h.Write([]byte{0})
	h.Write([]byte(addr))
	// Map the top 53 bits to (0,1): the +0.5 offset keeps u strictly
	// inside the interval so ln(u) is finite and negative.
	u := (float64(h.Sum64()>>11) + 0.5) / (1 << 53)
	return -w / math.Log(u)
}

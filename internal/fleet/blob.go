package fleet

import (
	"sort"
	"sync"
)

// BlobStore is an in-memory content-addressed blob cache. Edge servers
// publish model weight blobs (keyed by nn.Fingerprint) and synced snapshot
// encodings (keyed by Snapshot.Hash) into it, advertise the key set on
// registry heartbeats, and serve peers' MsgBlobGet requests from it. Keys
// are opaque here; callers are responsible for key↔content integrity
// (verified on the fetch path via CRC plus fingerprint recomputation).
type BlobStore struct {
	mu    sync.RWMutex
	blobs map[string][]byte
	bytes int64
}

// NewBlobStore builds an empty store.
func NewBlobStore() *BlobStore {
	return &BlobStore{blobs: make(map[string][]byte)}
}

// Put stores data under key. Content addressing makes overwrites
// idempotent: a key collision means identical bytes, so the first copy is
// kept.
func (b *BlobStore) Put(key string, data []byte) {
	if key == "" {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.blobs[key]; ok {
		return
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	b.blobs[key] = cp
	b.bytes += int64(len(cp))
}

// Get returns the blob for key. The returned slice is shared; callers must
// not mutate it.
func (b *BlobStore) Get(key string) ([]byte, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	data, ok := b.blobs[key]
	return data, ok
}

// Has reports whether the store holds key.
func (b *BlobStore) Has(key string) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	_, ok := b.blobs[key]
	return ok
}

// Keys returns all stored keys, sorted — the set a registry heartbeat
// advertises.
func (b *BlobStore) Keys() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	keys := make([]string, 0, len(b.blobs))
	for k := range b.blobs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Len returns the number of stored blobs.
func (b *BlobStore) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.blobs)
}

// Bytes returns the total stored payload size.
func (b *BlobStore) Bytes() int64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.bytes
}

package fleet

import (
	"container/list"
	"sort"
	"sync"
)

// BlobStore is an in-memory content-addressed blob cache. Edge servers
// publish model weight blobs (keyed by nn.Fingerprint) and synced snapshot
// encodings (keyed by Snapshot.Hash) into it, advertise the key set on
// registry heartbeats, and serve peers' MsgBlobGet requests from it. Keys
// are opaque here; callers are responsible for key↔content integrity
// (verified on the fetch path via CRC plus fingerprint recomputation).
//
// A store built with NewBlobStoreCap bounds the total payload bytes: Put
// evicts least-recently-used blobs until the new one fits, and Get counts
// as use. Content addressing makes eviction safe — a dropped blob is never
// wrong, only absent, and the fetch path falls back to another holder or a
// client re-upload. Heartbeats re-advertise the surviving key set, so
// evicted keys drop out of the fleet index on the next beat.
type BlobStore struct {
	mu       sync.RWMutex
	blobs    map[string]*list.Element
	lru      *list.List // front = most recently used
	bytes    int64
	maxBytes int64 // 0 = unbounded
	evicted  int64
}

// blobEntry is one cached blob, owned by its lru list element.
type blobEntry struct {
	key  string
	data []byte
}

// NewBlobStore builds an empty, unbounded store.
func NewBlobStore() *BlobStore {
	return NewBlobStoreCap(0)
}

// NewBlobStoreCap builds an empty store bounded to maxBytes of payload
// (0 = unbounded). A single blob larger than the whole cap is rejected
// outright: storing it could only evict everything else and then exceed
// the cap anyway.
func NewBlobStoreCap(maxBytes int64) *BlobStore {
	return &BlobStore{
		blobs:    make(map[string]*list.Element),
		lru:      list.New(),
		maxBytes: maxBytes,
	}
}

// Put stores data under key. Content addressing makes overwrites
// idempotent: a key collision means identical bytes, so the first copy is
// kept (and refreshed in the LRU order). On a bounded store the put evicts
// least-recently-used blobs until the new one fits; a blob larger than the
// whole cap is dropped without disturbing the cache.
func (b *BlobStore) Put(key string, data []byte) {
	if key == "" {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if el, ok := b.blobs[key]; ok {
		b.lru.MoveToFront(el)
		return
	}
	if b.maxBytes > 0 && int64(len(data)) > b.maxBytes {
		return
	}
	for b.maxBytes > 0 && b.bytes+int64(len(data)) > b.maxBytes {
		if !b.evictOldestLocked() {
			break
		}
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	b.blobs[key] = b.lru.PushFront(&blobEntry{key: key, data: cp})
	b.bytes += int64(len(cp))
}

// evictOldestLocked drops the least-recently-used blob; false means the
// store is already empty.
func (b *BlobStore) evictOldestLocked() bool {
	el := b.lru.Back()
	if el == nil {
		return false
	}
	e := el.Value.(*blobEntry)
	b.lru.Remove(el)
	delete(b.blobs, e.key)
	b.bytes -= int64(len(e.data))
	b.evicted++
	return true
}

// Get returns the blob for key, marking it recently used. The returned
// slice is shared; callers must not mutate it.
func (b *BlobStore) Get(key string) ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	el, ok := b.blobs[key]
	if !ok {
		return nil, false
	}
	b.lru.MoveToFront(el)
	return el.Value.(*blobEntry).data, true
}

// Has reports whether the store holds key (without touching LRU order).
func (b *BlobStore) Has(key string) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	_, ok := b.blobs[key]
	return ok
}

// Delete drops key from the store, if present. Used by tests and
// operators to force the stale-holder path; normal turnover happens via
// LRU eviction.
func (b *BlobStore) Delete(key string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	el, ok := b.blobs[key]
	if !ok {
		return
	}
	e := el.Value.(*blobEntry)
	b.lru.Remove(el)
	delete(b.blobs, key)
	b.bytes -= int64(len(e.data))
}

// Keys returns all stored keys, sorted — the set a registry heartbeat
// advertises.
func (b *BlobStore) Keys() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	keys := make([]string, 0, len(b.blobs))
	for k := range b.blobs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// KeysMRU returns up to max keys in most-recently-used-first order (max
// <= 0 means all). Heartbeats on stores holding more blobs than the
// advertisement cap prefer the hot end: those are the keys peers are most
// likely to want and least likely to be evicted before a fetch arrives.
func (b *BlobStore) KeysMRU(max int) []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	n := b.lru.Len()
	if max > 0 && max < n {
		n = max
	}
	keys := make([]string, 0, n)
	for el := b.lru.Front(); el != nil && len(keys) < n; el = el.Next() {
		keys = append(keys, el.Value.(*blobEntry).key)
	}
	return keys
}

// Len returns the number of stored blobs.
func (b *BlobStore) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.blobs)
}

// Bytes returns the total stored payload size.
func (b *BlobStore) Bytes() int64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.bytes
}

// MaxBytes returns the configured byte cap (0 = unbounded).
func (b *BlobStore) MaxBytes() int64 {
	return b.maxBytes
}

// Evictions returns how many blobs the byte cap has evicted.
func (b *BlobStore) Evictions() int64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.evicted
}

package fleet_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"net"

	"websnap/internal/client"
	"websnap/internal/edge"
	"websnap/internal/fleet"
	"websnap/internal/mlapp"
	"websnap/internal/models"
	"websnap/internal/nn"
	"websnap/internal/obs"
	"websnap/internal/roam"
	"websnap/internal/testutil"
	"websnap/internal/webapp"
)

// The fleet integration test drives the whole subsystem end to end:
// registry + agents + placement-fed roaming + content-addressed blob
// sharing, asserting the tentpole's acceptance criteria — a client roaming
// A→B→C re-uploads zero model bytes after the first upload, every result
// is bit-identical to a local twin, and every event gets exactly one
// terminal audit decision.

// startRegistry runs a wire registry for integration tests.
func startRegistry(t *testing.T, ttl time.Duration) string {
	t.Helper()
	srv := fleet.NewRegistryServer(fleet.NewRegistry(fleet.RegistryOptions{TTL: ttl}), nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		<-done
	})
	return ln.Addr().String()
}

// startFleetEdge runs one fleet-enabled edge server: its own blob store, a
// registry client as blob locator, and a heartbeat agent advertising load
// and held blob keys.
func startFleetEdge(t *testing.T, registryAddr string) (*edge.Server, string) {
	t.Helper()
	cat := webapp.NewCatalog()
	if err := cat.Add(mlapp.FullRegistry()); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	rc := fleet.NewRegistryClient(registryAddr, fleet.ClientOptions{})
	srv, err := edge.NewServer(edge.Config{
		Catalog:       cat,
		Installed:     true,
		Workers:       2,
		AdvertiseAddr: addr,
		Blobs:         fleet.NewBlobStore(),
		Locator:       rc,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	agent, err := fleet.StartAgent(fleet.AgentConfig{
		Client:   rc,
		Addr:     addr,
		Capacity: 2,
		TTL:      2 * time.Second,
		Interval: 20 * time.Millisecond,
		Load:     srv.LoadHint,
		Blobs:    srv.BlobKeys,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		agent.Close()
		srv.Close()
		<-done
	})
	return srv, addr
}

// waitForIndexedBlobs blocks until the registry's blob index covers every
// key the server currently holds (one heartbeat interval, bounded).
func waitForIndexedBlobs(t *testing.T, rc *fleet.RegistryClient, srv *edge.Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		keys := srv.BlobKeys()
		holders, err := rc.Locate(keys)
		ok := err == nil && len(keys) > 0
		for _, k := range keys {
			if len(holders[k]) == 0 {
				ok = false
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("registry never indexed blobs %v (err %v)", keys, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// localResult computes the ground-truth result for one image seed on a
// local twin of the app.
func localResult(t *testing.T, model *nn.Network, labels []string, seed uint64) string {
	t.Helper()
	app, err := mlapp.NewFullApp("fleet-ref", "tiny", model, labels)
	if err != nil {
		t.Fatal(err)
	}
	if err := mlapp.LoadImage(app, mlapp.SyntheticImage(3*16*16, seed)); err != nil {
		t.Fatal(err)
	}
	app.DispatchEvent(webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick})
	if _, err := app.Run(10); err != nil {
		t.Fatal(err)
	}
	res := mlapp.Result(app)
	if res == "" {
		t.Fatalf("local twin produced no result for seed %d", seed)
	}
	return res
}

// TestFleetRoamingNoModelReupload is the headline acceptance test: three
// fleet-enabled edge servers, a client whose candidate set comes from the
// registry through a placement policy, roaming A→B→C. After the first
// upload, handoffs transfer zero model bytes from the client — each new
// server resolves the model by content reference, fetching the blob from a
// peer — while results stay bit-identical to a local twin and every event
// records exactly one audit decision carrying the placement policy.
func TestFleetRoamingNoModelReupload(t *testing.T) {
	testutil.LeakCheck(t)
	regAddr := startRegistry(t, 2*time.Second)
	srvA, addrA := startFleetEdge(t, regAddr)
	srvB, addrB := startFleetEdge(t, regAddr)
	srvC, addrC := startFleetEdge(t, regAddr)
	servers := map[string]*edge.Server{addrA: srvA, addrB: srvB, addrC: srvC}

	model, err := models.BuildTinyNet("tiny", 3)
	if err != nil {
		t.Fatal(err)
	}
	labels := []string{"cat", "dog", "bird"}
	modelKey := nn.Fingerprint(model)
	if modelKey == "" {
		t.Fatal("model has no fingerprint")
	}

	// The roamer's membership comes exclusively from the registry (no
	// static server list), ranked by the hash placement policy; a scripted
	// probe steers which server wins so the A→B→C itinerary is
	// deterministic.
	var mu sync.Mutex
	preferred := addrA
	setPreferred := func(addr string) {
		mu.Lock()
		preferred = addr
		mu.Unlock()
	}
	probe := func(addr string) (time.Duration, error) {
		mu.Lock()
		defer mu.Unlock()
		if addr == preferred {
			return time.Millisecond, nil
		}
		return 100 * time.Millisecond, nil
	}
	rc := fleet.NewRegistryClient(regAddr, fleet.ClientOptions{})
	var switchLog strings.Builder
	roamer, err := roam.New(roam.Config{
		FleetView: fleet.PlacementView(rc, fleet.PolicyHash, "fleet-app"),
		Probe:     probe,
		Logger:    obs.NewLogger(&switchLog, obs.LevelInfo),
	})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := roamer.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer roamer.Close()
	if addr, _ := roamer.Current(); addr != addrA {
		t.Fatalf("connected to %q, want A=%q", addr, addrA)
	}
	if src := roamer.ViewSource(); src != "registry" {
		t.Errorf("view source = %q, want registry", src)
	}

	app, err := mlapp.NewFullApp("fleet-app", "tiny", model, labels)
	if err != nil {
		t.Fatal(err)
	}
	auditor := obs.NewAuditor(obs.AuditorOptions{Keep: 16})
	off, err := client.NewOffloader(app, conn, client.Options{
		OffloadEventTypes: []string{mlapp.EventClick},
		Models:            []client.ModelToSend{{Name: "tiny", Net: model}},
		EnableDelta:       true,
		BlobRefPreSend:    true,
		FleetSync:         true,
		Placement:         string(fleet.PolicyHash),
		Audit:             auditor,
	})
	if err != nil {
		t.Fatal(err)
	}
	off.StartPreSend()
	if err := off.WaitForAcks(); err != nil {
		t.Fatal(err)
	}

	runOnce := func(seed uint64) string {
		t.Helper()
		if err := mlapp.LoadImage(app, mlapp.SyntheticImage(3*16*16, seed)); err != nil {
			t.Fatal(err)
		}
		app.DispatchEvent(webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick})
		if _, err := off.Run(10); err != nil {
			t.Fatal(err)
		}
		return mlapp.Result(app)
	}
	checkResult := func(stage string, seed uint64, got string) {
		t.Helper()
		if want := localResult(t, model, labels, seed); got != want {
			t.Errorf("%s: result %q, want %q (bit-identical to local twin)", stage, got, want)
		}
	}

	// First upload lands on A: the fleet holds nothing yet, so the
	// reference offer misses and the bytes go up exactly once.
	checkResult("A seed 1", 1, runOnce(1))
	st := off.Stats()
	if st.RefPreSendMisses != 1 || st.PreSendBytes != model.ModelBytes() {
		t.Fatalf("first upload: misses=%d bytes=%d, want 1 miss / %d bytes",
			st.RefPreSendMisses, st.PreSendBytes, model.ModelBytes())
	}

	// Roam A→B→C. Before each handoff, wait for the previous server's
	// heartbeat to advertise its blobs (model weights + synced state), so
	// the handoff exercises the index rather than racing it.
	hop := func(from, to string) {
		t.Helper()
		waitForIndexedBlobs(t, rc, servers[from])
		setPreferred(to)
		newConn, switched, err := roamer.Evaluate()
		if err != nil || !switched {
			t.Fatalf("hop %s→%s: switched=%v err=%v", from, to, switched, err)
		}
		if err := off.Retarget(newConn); err != nil {
			t.Fatal(err)
		}
		if err := off.WaitForAcks(); err != nil {
			t.Fatalf("pre-send after hop %s→%s: %v", from, to, err)
		}
	}

	hop(addrA, addrB)
	checkResult("B seed 2", 2, runOnce(2))
	hop(addrB, addrC)
	checkResult("C seed 3", 3, runOnce(3))
	// Same input as the very first event: C must answer exactly what A did.
	checkResult("C seed 1 (vs A)", 1, runOnce(1))

	// Zero model re-upload after the first: both handoffs resolved the
	// model by reference, and the servers hold the blob without the client
	// ever re-sending it.
	st = off.Stats()
	if st.PreSendBytes != model.ModelBytes() {
		t.Errorf("total pre-send bytes = %d, want %d (a single upload)", st.PreSendBytes, model.ModelBytes())
	}
	if st.RefPreSendHits != 2 || st.RefPreSendMisses != 1 {
		t.Errorf("ref pre-sends: hits=%d misses=%d, want 2 hits / 1 miss", st.RefPreSendHits, st.RefPreSendMisses)
	}
	for name, srv := range map[string]*edge.Server{"B": srvB, "C": srvC} {
		held := false
		for _, k := range srv.BlobKeys() {
			if k == modelKey {
				held = true
			}
		}
		if !held {
			t.Errorf("server %s does not hold model blob %s after handoff", name, modelKey)
		}
	}

	// Exactly-once execution: 4 events, one server execution each, split
	// 1/1/2 across the itinerary.
	if st.Offloads != 4 {
		t.Errorf("offloads = %d, want 4", st.Offloads)
	}
	wantExec := map[string]int64{addrA: 1, addrB: 1, addrC: 2}
	for addr, srv := range servers {
		m := srv.Metrics()
		if got := m.SnapshotsExecuted + m.DeltasExecuted; got != wantExec[addr] {
			t.Errorf("server %s executed %d events, want %d", addr, got, wantExec[addr])
		}
	}
	// FleetSync kept the delta sync point across the handoff: B's first
	// event arrived as a delta against a base it never saw, recovered from
	// the fleet's state blob rather than re-uploaded.
	if got := srvB.Metrics().DeltasExecuted; got < 1 {
		t.Errorf("B executed %d deltas, want >=1 (delta base recovered across handoff)", got)
	}

	// Exactly one terminal audit decision per event, each stamped with the
	// placement policy that chose the target.
	if got := auditor.Total(); got != 4 {
		t.Errorf("audit decisions = %d, want 4 (one per event)", got)
	}
	for _, d := range auditor.Recent() {
		if d.Path != obs.PathFull {
			t.Errorf("decision path = %s, want full", d.Path)
		}
		if d.Placement != string(fleet.PolicyHash) {
			t.Errorf("decision placement = %q, want %q", d.Placement, fleet.PolicyHash)
		}
	}

	// The switch audit trail names the live registry as the view source.
	if !strings.Contains(switchLog.String(), `"view":"registry"`) {
		t.Errorf("switch log lacks the registry view source:\n%s", switchLog.String())
	}
}

package fleet

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"websnap/internal/protocol"
)

// fakeClock drives registry expiry without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1700000000, 0)} }
func reg(addr string) protocol.FleetRegisterHeader {
	return protocol.FleetRegisterHeader{Addr: addr, Capacity: 4}
}

func TestRegistryTTLExpiry(t *testing.T) {
	clk := newFakeClock()
	r := NewRegistry(RegistryOptions{TTL: time.Second, Now: clk.now})
	r.Register(reg("a:1"))
	r.Register(reg("b:1"))
	if got := r.Servers(); got != 2 {
		t.Fatalf("servers = %d, want 2", got)
	}
	clk.advance(900 * time.Millisecond)
	r.Register(reg("a:1")) // heartbeat keeps a alive
	clk.advance(200 * time.Millisecond)
	view := r.View()
	if len(view.Servers) != 1 || view.Servers[0].Addr != "a:1" {
		t.Fatalf("after expiry view = %+v, want only a:1", view.Servers)
	}
	clk.advance(2 * time.Second)
	if got := r.Servers(); got != 0 {
		t.Fatalf("after full lapse servers = %d, want 0", got)
	}
}

func TestRegistryPerServerTTL(t *testing.T) {
	clk := newFakeClock()
	r := NewRegistry(RegistryOptions{TTL: time.Second, Now: clk.now})
	long := reg("long:1")
	long.TTLMillis = 10_000
	r.Register(long)
	r.Register(reg("short:1"))
	clk.advance(5 * time.Second)
	view := r.View()
	if len(view.Servers) != 1 || view.Servers[0].Addr != "long:1" {
		t.Fatalf("view = %+v, want only long:1", view.Servers)
	}
}

func TestRegistryReRegistrationAfterRestart(t *testing.T) {
	clk := newFakeClock()
	r := NewRegistry(RegistryOptions{TTL: time.Second, Now: clk.now})
	first := reg("a:1")
	first.Blobs = []string{"m1", "s1"}
	_, v1 := r.Register(first)

	// Server dies; its registration lapses and its blobs leave the index.
	clk.advance(2 * time.Second)
	if got := r.Servers(); got != 0 {
		t.Fatalf("servers = %d, want 0 after lapse", got)
	}
	if holders := r.Locate([]string{"m1"}); len(holders) != 0 {
		t.Fatalf("expired server still in blob index: %v", holders)
	}

	// Restart: same address, fresh (smaller) blob set after cache loss.
	second := reg("a:1")
	second.Blobs = []string{"m1"}
	servers, v2 := r.Register(second)
	if servers != 1 {
		t.Fatalf("servers = %d after re-registration, want 1", servers)
	}
	if v2 <= v1 {
		t.Fatalf("version did not advance across restart: %d -> %d", v1, v2)
	}
	holders := r.Locate([]string{"m1", "s1"})
	if len(holders["m1"]) != 1 || holders["m1"][0] != "a:1" {
		t.Fatalf("m1 holders = %v", holders["m1"])
	}
	if _, ok := holders["s1"]; ok {
		t.Fatal("stale blob s1 survived re-registration with a smaller set")
	}
}

func TestRegistryViewAges(t *testing.T) {
	clk := newFakeClock()
	r := NewRegistry(RegistryOptions{TTL: 10 * time.Second, Now: clk.now})
	r.Register(reg("a:1"))
	clk.advance(1500 * time.Millisecond)
	view := r.View()
	if got := view.Servers[0].AgeMillis; got != 1500 {
		t.Fatalf("AgeMillis = %d, want 1500", got)
	}
}

// startWireRegistry runs a RegistryServer on a real listener.
func startWireRegistry(t *testing.T, r *Registry) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewRegistryServer(r, nil)
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ln) }()
	return ln.Addr().String(), func() { srv.Close(); <-done }
}

func TestWireRegisterListLocate(t *testing.T) {
	r := NewRegistry(RegistryOptions{TTL: 10 * time.Second})
	addr, stop := startWireRegistry(t, r)
	defer stop()

	c := NewRegistryClient(addr, ClientOptions{})
	h := reg("edge-a:9000")
	h.Blobs = []string{"blob1"}
	ack, err := c.Register(h)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if ack.Servers != 1 || ack.Version == 0 {
		t.Fatalf("ack = %+v", ack)
	}
	view, err := c.FetchView()
	if err != nil {
		t.Fatalf("FetchView: %v", err)
	}
	if len(view.Servers) != 1 || view.Servers[0].Addr != "edge-a:9000" || view.Servers[0].Capacity != 4 {
		t.Fatalf("view = %+v", view.Servers)
	}
	holders, err := c.Locate([]string{"blob1", "missing"})
	if err != nil {
		t.Fatalf("Locate: %v", err)
	}
	if len(holders) != 1 || holders["blob1"][0] != "edge-a:9000" {
		t.Fatalf("holders = %v", holders)
	}
}

func TestClientCachedViewFallback(t *testing.T) {
	r := NewRegistry(RegistryOptions{TTL: 10 * time.Second})
	r.Register(reg("a:1"))
	addr, stop := startWireRegistry(t, r)

	c := NewRegistryClient(addr, ClientOptions{Timeout: 500 * time.Millisecond})
	view, cached, err := c.View()
	if err != nil || cached {
		t.Fatalf("live View: cached=%v err=%v", cached, err)
	}
	if len(view.Servers) != 1 {
		t.Fatalf("view = %+v", view.Servers)
	}

	// Registry goes away: View degrades to the last-known-good copy.
	stop()
	view, cached, err = c.View()
	if err != nil {
		t.Fatalf("degraded View: %v", err)
	}
	if !cached {
		t.Fatal("degraded View not marked cached")
	}
	if len(view.Servers) != 1 || view.Servers[0].Addr != "a:1" {
		t.Fatalf("degraded view = %+v", view.Servers)
	}
}

func TestClientNoCacheNoRegistry(t *testing.T) {
	c := NewRegistryClient("127.0.0.1:1", ClientOptions{
		Timeout: 200 * time.Millisecond,
		Dial: func(string, time.Duration) (net.Conn, error) {
			return nil, errors.New("refused")
		},
	})
	if _, cached, err := c.View(); err == nil || cached {
		t.Fatalf("View with no cache: cached=%v err=%v, want error", cached, err)
	}
}

func TestAgentKeepsRegistrationLive(t *testing.T) {
	clk := struct{}{} // real clock: agent heartbeats are time-driven
	_ = clk
	r := NewRegistry(RegistryOptions{TTL: 400 * time.Millisecond})
	addr, stop := startWireRegistry(t, r)
	defer stop()

	a, err := StartAgent(AgentConfig{
		Client:   NewRegistryClient(addr, ClientOptions{}),
		Addr:     "edge-a:9000",
		Capacity: 2,
		TTL:      400 * time.Millisecond,
		Interval: 100 * time.Millisecond,
		Blobs:    func() []string { return []string{"m1"} },
	})
	if err != nil {
		t.Fatalf("StartAgent: %v", err)
	}
	time.Sleep(time.Second) // several TTLs: only heartbeats keep it alive
	if got := r.Servers(); got != 1 {
		t.Fatalf("servers = %d during heartbeats, want 1", got)
	}
	a.Close()
	time.Sleep(600 * time.Millisecond)
	if got := r.Servers(); got != 0 {
		t.Fatalf("servers = %d after agent close, want 0", got)
	}
}

func view(n int) []protocol.FleetServer {
	servers := make([]protocol.FleetServer, n)
	for i := range servers {
		servers[i] = protocol.FleetServer{Addr: fmt.Sprintf("edge-%d:9000", i), Capacity: 4}
	}
	return servers
}

func TestPlacementDeterministic(t *testing.T) {
	servers := view(5)
	for _, policy := range []Policy{PolicyHash, PolicyLoadWeighted} {
		first, _ := Pick(policy, "session-42", servers)
		for i := 0; i < 10; i++ {
			again, ok := Pick(policy, "session-42", servers)
			if !ok || again.Addr != first.Addr {
				t.Fatalf("%s: placement not deterministic: %s vs %s", policy, again.Addr, first.Addr)
			}
		}
	}
}

func TestPlacementBalance(t *testing.T) {
	servers := view(4)
	counts := make(map[string]int)
	const n = 4000
	for i := 0; i < n; i++ {
		s, _ := Pick(PolicyHash, fmt.Sprintf("session-%d", i), servers)
		counts[s.Addr]++
	}
	for addr, c := range counts {
		if c < n/8 || c > n/2 {
			t.Errorf("%s got %d/%d sessions — badly unbalanced", addr, c, n)
		}
	}
}

// TestPlacementStability is the rendezvous property: removing one server
// remaps only the sessions it owned.
func TestPlacementStability(t *testing.T) {
	servers := view(5)
	removed := servers[2].Addr
	reduced := append(append([]protocol.FleetServer{}, servers[:2]...), servers[3:]...)
	moved, owned := 0, 0
	for i := 0; i < 2000; i++ {
		id := fmt.Sprintf("session-%d", i)
		before, _ := Pick(PolicyHash, id, servers)
		after, _ := Pick(PolicyHash, id, reduced)
		if before.Addr == removed {
			owned++
			continue // these must move somewhere
		}
		if after.Addr != before.Addr {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d sessions not owned by the removed server still moved", moved)
	}
	if owned == 0 {
		t.Fatal("test vacuous: removed server owned no sessions")
	}
}

func TestPlacementLoadWeighting(t *testing.T) {
	// Same capacity, but edge-0 advertises heavy queueing: it should lose
	// most (not necessarily all) placements relative to its fair share.
	servers := view(3)
	servers[0].Load = &protocol.LoadHint{QueueingMillis: 500}
	counts := make(map[string]int)
	const n = 3000
	for i := 0; i < n; i++ {
		s, _ := Pick(PolicyLoadWeighted, fmt.Sprintf("s%d", i), servers)
		counts[s.Addr]++
	}
	if counts[servers[0].Addr] >= n/3 {
		t.Fatalf("queued server kept its full share: %v", counts)
	}
	// PolicyHash must ignore load entirely.
	hashCounts := make(map[string]int)
	for i := 0; i < n; i++ {
		s, _ := Pick(PolicyHash, fmt.Sprintf("s%d", i), servers)
		hashCounts[s.Addr]++
	}
	if hashCounts[servers[0].Addr] < n/6 {
		t.Fatalf("hash policy reacted to load: %v", hashCounts)
	}
}

func TestPlacementSaturatedLast(t *testing.T) {
	servers := view(3)
	servers[1].Load = &protocol.LoadHint{Saturated: true}
	for i := 0; i < 200; i++ {
		ranked := Rank(PolicyLoadWeighted, fmt.Sprintf("s%d", i), servers)
		if ranked[len(ranked)-1].Addr != servers[1].Addr {
			t.Fatalf("saturated server not ranked last: %+v", ranked)
		}
	}
}

func TestPickEmptyView(t *testing.T) {
	if _, ok := Pick(PolicyHash, "s", nil); ok {
		t.Fatal("Pick on empty view returned a server")
	}
}

func TestBlobStore(t *testing.T) {
	b := NewBlobStore()
	b.Put("k1", []byte("hello"))
	b.Put("k1", []byte("ignored")) // content-addressed: first copy wins
	b.Put("", []byte("dropped"))
	if got, _ := b.Get("k1"); string(got) != "hello" {
		t.Fatalf("Get k1 = %q", got)
	}
	if b.Len() != 1 || b.Bytes() != 5 {
		t.Fatalf("Len=%d Bytes=%d", b.Len(), b.Bytes())
	}
	b.Put("k0", []byte("x"))
	keys := b.Keys()
	if len(keys) != 2 || keys[0] != "k0" || keys[1] != "k1" {
		t.Fatalf("Keys = %v", keys)
	}
	if !b.Has("k0") || b.Has("nope") {
		t.Fatal("Has mismatch")
	}
}

package fleet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"websnap/internal/obs"
	"websnap/internal/protocol"
)

// connIdleTimeout bounds how long a registry connection may sit between
// frames. Agents heartbeat well inside this; anything quieter is dead.
const connIdleTimeout = 30 * time.Second

// RegistryServer speaks the registry's slice of the wire protocol
// (MsgFleetRegister, MsgFleetList, MsgBlobLocate) over framed connections.
// It is deliberately thin: one goroutine per connection, no worker pool —
// registry traffic is a few frames per server per second.
type RegistryServer struct {
	reg *Registry
	log *obs.Logger

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	quit   chan struct{}
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewRegistryServer wraps a Registry in a wire server.
func NewRegistryServer(reg *Registry, logger *obs.Logger) *RegistryServer {
	return &RegistryServer{
		reg:   reg,
		log:   logger,
		quit:  make(chan struct{}),
		conns: make(map[net.Conn]struct{}),
	}
}

// Registry exposes the wrapped registry (for in-process callers and tests).
func (s *RegistryServer) Registry() *Registry { return s.reg }

// Serve accepts connections on ln until Close. It blocks; run it in a
// goroutine.
func (s *RegistryServer) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("fleet: registry server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return nil
			default:
				return fmt.Errorf("fleet: accept: %w", err)
			}
		}
		s.trackConn(conn, true)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.trackConn(conn, false)
			defer conn.Close()
			s.handleConn(conn)
		}()
	}
}

// Close stops accepting and terminates live connections.
func (s *RegistryServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.quit)
	ln := s.ln
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *RegistryServer) trackConn(conn net.Conn, add bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if add {
		s.conns[conn] = struct{}{}
	} else {
		delete(s.conns, conn)
	}
}

func (s *RegistryServer) handleConn(conn net.Conn) {
	for {
		if err := conn.SetReadDeadline(time.Now().Add(connIdleTimeout)); err != nil {
			return
		}
		msg, err := protocol.Read(conn)
		if err != nil {
			return
		}
		if err := s.dispatch(conn, msg); err != nil {
			s.log.Warn("fleet: registry request failed", obs.Err(err))
			reply, encErr := protocol.Encode(protocol.MsgError,
				protocol.ErrorHeader{Message: err.Error()}, nil)
			if encErr != nil || protocol.Write(conn, reply) != nil {
				return
			}
		}
	}
}

func (s *RegistryServer) dispatch(conn net.Conn, msg protocol.Message) error {
	switch msg.Type {
	case protocol.MsgFleetRegister:
		var hdr protocol.FleetRegisterHeader
		if err := protocol.DecodeHeader(msg, &hdr); err != nil {
			return err
		}
		if hdr.Addr == "" {
			return errors.New("fleet: register without address")
		}
		servers, version := s.reg.Register(hdr)
		reply, err := protocol.Encode(protocol.MsgFleetRegistered,
			protocol.FleetRegisteredHeader{Servers: servers, Version: version}, nil)
		if err != nil {
			return err
		}
		return protocol.Write(conn, reply)
	case protocol.MsgFleetList:
		var hdr protocol.FleetListHeader
		if err := protocol.DecodeHeader(msg, &hdr); err != nil {
			return err
		}
		reply, err := protocol.Encode(protocol.MsgFleetView, s.reg.View(), nil)
		if err != nil {
			return err
		}
		return protocol.Write(conn, reply)
	case protocol.MsgBlobLocate:
		var hdr protocol.BlobLocateHeader
		if err := protocol.DecodeHeader(msg, &hdr); err != nil {
			return err
		}
		start := time.Now()
		resp := protocol.BlobLocationHeader{Holders: s.reg.Locate(hdr.Keys)}
		if hdr.Hints >= protocol.HintTelemetryV1 {
			// The requester propagated a trace through the registry hop:
			// answer with the registry's span so the hop shows up in the
			// request's merged span tree. Old requesters get byte-identical
			// replies (the field is omitempty).
			resp.Span = &protocol.SpanNode{
				Op:     "registry_locate",
				Addr:   "registry",
				Micros: time.Since(start).Microseconds(),
			}
		}
		reply, err := protocol.Encode(protocol.MsgBlobLocation, resp, nil)
		if err != nil {
			return err
		}
		return protocol.Write(conn, reply)
	default:
		return fmt.Errorf("fleet: unexpected message %s", msg.Type)
	}
}

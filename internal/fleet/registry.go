// Package fleet turns a set of independent edge servers into one edge
// environment: a registry tracks live servers (TTL-based liveness) and the
// content-addressed blobs each holds, a placement layer maps sessions onto
// servers (consistent hashing blended with load hints), and a blob index
// lets servers fetch models and synced snapshots from peers so a roaming
// client never re-uploads state the fleet already holds. This is the
// multi-server counterpart of the paper's single edge server (§II):
// "cloud-like computing power located close to mobile devices" implies many
// servers, and a client that moves between them.
package fleet

import (
	"sort"
	"sync"
	"time"

	"websnap/internal/obs"
	"websnap/internal/protocol"
	"websnap/internal/telemetry"
)

// DefaultTTL is how long a registration stays live without a heartbeat
// when the registering server does not name its own TTL.
const DefaultTTL = 5 * time.Second

// entry is one registered server.
type entry struct {
	addr     string
	capacity int
	ttl      time.Duration
	load     *protocol.LoadHint
	blobs    map[string]struct{}
	last     time.Time // registry clock
	// stats is the member's last piggybacked telemetry digest (nil for
	// members that predate HintTelemetryV1). Digests are cumulative, so
	// keeping only the latest loses nothing.
	stats *protocol.StatsDigest
}

// RegistryOptions configures a Registry.
type RegistryOptions struct {
	// TTL is the default registration lifetime (DefaultTTL when zero).
	TTL time.Duration
	// Now supplies the registry clock; nil means time.Now. Tests inject a
	// fake clock to exercise expiry without sleeping.
	Now func() time.Time
	// Metrics, when set, receives the registry's counters and gauges.
	Metrics *obs.Registry
	// Logger, when set, records membership changes.
	Logger *obs.Logger
	// OnStats, when set, is called after each heartbeat that carries a
	// telemetry digest (outside the registry lock) — fleetd hooks SLO
	// burn accounting here.
	OnStats func(addr string, d *protocol.StatsDigest)
}

// Registry is the fleet membership and blob-location authority. Liveness is
// lazy: expired entries are pruned on the next read or write, so no
// background goroutine is needed and a fake clock drives expiry in tests.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
	version uint64
	ttl     time.Duration
	now     func() time.Time
	log     *obs.Logger
	onStats func(addr string, d *protocol.StatsDigest)

	regs    *obs.Counter
	expires *obs.Counter
	locates *obs.Counter
}

// NewRegistry builds an empty registry.
func NewRegistry(opts RegistryOptions) *Registry {
	ttl := opts.TTL
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	r := &Registry{
		entries: make(map[string]*entry),
		ttl:     ttl,
		now:     now,
		log:     opts.Logger,
		onStats: opts.OnStats,
	}
	if m := opts.Metrics; m != nil {
		r.regs = m.Counter("fleet_registrations_total",
			"Registrations and heartbeats accepted by the registry.")
		r.expires = m.Counter("fleet_expirations_total",
			"Registrations dropped because their TTL lapsed without a heartbeat.")
		r.locates = m.Counter("fleet_blob_locates_total",
			"Blob location queries answered by the registry.")
		m.GaugeFunc("fleet_servers",
			"Live fleet members (TTL not yet lapsed).",
			func() float64 { return float64(r.Servers()) })
	}
	return r
}

// Register records a server's registration or heartbeat and returns the
// live-member count and view version after it. The heartbeat carries the
// server's full blob-key list; replacing (not merging) the stored set keeps
// the index honest when a server evicts a blob.
func (r *Registry) Register(h protocol.FleetRegisterHeader) (servers int, version uint64) {
	if h.Stats != nil && r.onStats != nil {
		defer r.onStats(h.Addr, h.Stats)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	r.pruneLocked(now)
	ttl := time.Duration(h.TTLMillis) * time.Millisecond
	if ttl <= 0 {
		ttl = r.ttl
	}
	e, ok := r.entries[h.Addr]
	if !ok {
		e = &entry{addr: h.Addr}
		r.entries[h.Addr] = e
		r.log.Info("fleet: server joined", obs.F("addr", h.Addr), obs.F("capacity", h.Capacity))
	}
	e.capacity = h.Capacity
	e.ttl = ttl
	e.load = h.Load
	e.blobs = make(map[string]struct{}, len(h.Blobs))
	for _, k := range h.Blobs {
		e.blobs[k] = struct{}{}
	}
	if h.Stats != nil {
		e.stats = h.Stats
	}
	e.last = now
	r.version++
	if r.regs != nil {
		r.regs.Inc()
	}
	return len(r.entries), r.version
}

// View returns the current live membership. AgeMillis is relative to the
// registry's clock, so clients judge hint freshness without comparing their
// own clock against the registry's.
func (r *Registry) View() protocol.FleetViewHeader {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	r.pruneLocked(now)
	servers := make([]protocol.FleetServer, 0, len(r.entries))
	for _, e := range r.entries {
		servers = append(servers, protocol.FleetServer{
			Addr:      e.addr,
			Capacity:  e.capacity,
			Load:      e.load,
			AgeMillis: now.Sub(e.last).Milliseconds(),
		})
	}
	sort.Slice(servers, func(i, j int) bool { return servers[i].Addr < servers[j].Addr })
	return protocol.FleetViewHeader{Version: r.version, Servers: servers}
}

// Locate reports which live servers hold each blob key. Keys nobody holds
// are absent from the result.
func (r *Registry) Locate(keys []string) map[string][]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pruneLocked(r.now())
	if r.locates != nil {
		r.locates.Inc()
	}
	holders := make(map[string][]string)
	for _, key := range keys {
		var addrs []string
		for _, e := range r.entries {
			if _, ok := e.blobs[key]; ok {
				addrs = append(addrs, e.addr)
			}
		}
		if len(addrs) > 0 {
			sort.Strings(addrs)
			holders[key] = addrs
		}
	}
	return holders
}

// Stats snapshots every live member's identity, load, staleness, and last
// telemetry digest — the raw material for fleetd's rollup exposition,
// /fleet summary, and SLO accounting.
func (r *Registry) Stats() []telemetry.ServerStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	r.pruneLocked(now)
	out := make([]telemetry.ServerStats, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, telemetry.ServerStats{
			Addr:      e.addr,
			Capacity:  e.capacity,
			Load:      e.load,
			AgeMillis: now.Sub(e.last).Milliseconds(),
			Stats:     e.stats,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Servers returns the live-member count.
func (r *Registry) Servers() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pruneLocked(r.now())
	return len(r.entries)
}

// Version returns the current view version. Expiry is lazy, so pending
// TTL lapses are applied first — otherwise a freshly expired member would
// leave Version behind the version a concurrent View reports.
func (r *Registry) Version() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pruneLocked(r.now())
	return r.version
}

func (r *Registry) pruneLocked(now time.Time) {
	for addr, e := range r.entries {
		if now.Sub(e.last) > e.ttl {
			delete(r.entries, addr)
			r.version++
			if r.expires != nil {
				r.expires.Inc()
			}
			r.log.Warn("fleet: server expired", obs.F("addr", addr))
		}
	}
}

package fleet

import (
	"errors"
	"sync"
	"time"

	"websnap/internal/obs"
	"websnap/internal/protocol"
)

// AgentConfig configures a registration agent.
type AgentConfig struct {
	// Client talks to the registry.
	Client *RegistryClient
	// Addr is the server's advertised offload address (cmd/edged
	// -advertise), which peers and clients dial. It may differ from the
	// listen address behind NAT or a container port map.
	Addr string
	// Capacity is the server's worker-pool size.
	Capacity int
	// TTL is the registration lifetime named on each heartbeat (registry
	// default when zero).
	TTL time.Duration
	// Interval is the heartbeat period; defaults to TTL/3 (or one third
	// of the registry default) so two consecutive losses still leave the
	// registration live.
	Interval time.Duration
	// Load, when set, supplies the live load hint for each heartbeat.
	Load func() *protocol.LoadHint
	// Blobs, when set, supplies the content-addressed keys the server
	// currently holds.
	Blobs func() []string
	// Stats, when set, supplies the telemetry digest piggybacked on each
	// heartbeat (see edge.Server.StatsDigest); the registry keeps the
	// latest digest per member for fleetd's rollup endpoints. Old
	// registries ignore the extra field.
	Stats func() *protocol.StatsDigest
	// MaxBlobs caps how many keys one heartbeat advertises (negative =
	// unlimited; zero = DefaultMaxAdvertisedBlobs). The register frame's
	// JSON header is bounded by protocol.MaxHeaderLen, so a server holding
	// an unbounded blob set must truncate or its registration fails and it
	// drops out of the fleet entirely. Suppliers aware of recency (see
	// BlobStore.KeysMRU) should return the hot end first; the cap keeps
	// whatever prefix the supplier ordered.
	MaxBlobs int
	// Logger records heartbeat failures.
	Logger *obs.Logger
}

// Agent keeps an edge server registered: one registration up front, then a
// heartbeat loop until Close. Heartbeat failures are logged and retried on
// the next tick — a registry outage degrades the fleet view, it never
// takes the server down.
type Agent struct {
	cfg      AgentConfig
	interval time.Duration
	quit     chan struct{}
	done     sync.WaitGroup
	once     sync.Once
}

// StartAgent registers immediately and starts the heartbeat loop. The
// initial registration failing is an error (the operator pointed at a dead
// registry); later failures are not.
func StartAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.Client == nil {
		return nil, errors.New("fleet: agent without registry client")
	}
	if cfg.Addr == "" {
		return nil, errors.New("fleet: agent without advertised address")
	}
	interval := cfg.Interval
	if interval <= 0 {
		ttl := cfg.TTL
		if ttl <= 0 {
			ttl = DefaultTTL
		}
		interval = ttl / 3
	}
	a := &Agent{cfg: cfg, interval: interval, quit: make(chan struct{})}
	if err := a.heartbeat(); err != nil {
		return nil, err
	}
	a.done.Add(1)
	go a.run()
	return a, nil
}

// heartbeat sends one registration.
func (a *Agent) heartbeat() error {
	hdr := protocol.FleetRegisterHeader{
		Addr:      a.cfg.Addr,
		Capacity:  a.cfg.Capacity,
		TTLMillis: a.cfg.TTL.Milliseconds(),
	}
	if a.cfg.Load != nil {
		hdr.Load = a.cfg.Load()
	}
	if a.cfg.Blobs != nil {
		hdr.Blobs = a.cfg.Blobs()
		if max := a.maxBlobs(); max > 0 && len(hdr.Blobs) > max {
			hdr.Blobs = hdr.Blobs[:max]
		}
	}
	if a.cfg.Stats != nil {
		hdr.Stats = a.cfg.Stats()
	}
	_, err := a.cfg.Client.Register(hdr)
	return err
}

// DefaultMaxAdvertisedBlobs is the default heartbeat advertisement cap.
// Content keys are 64-hex strings (~70 bytes JSON-encoded), so 4096 keys
// stay well under protocol.MaxHeaderLen (1 MiB) with room for the rest of
// the register header.
const DefaultMaxAdvertisedBlobs = 4096

// maxBlobs resolves the advertisement cap (0 = default, <0 = unlimited).
func (a *Agent) maxBlobs() int {
	switch {
	case a.cfg.MaxBlobs < 0:
		return 0
	case a.cfg.MaxBlobs == 0:
		return DefaultMaxAdvertisedBlobs
	default:
		return a.cfg.MaxBlobs
	}
}

func (a *Agent) run() {
	defer a.done.Done()
	ticker := time.NewTicker(a.interval)
	defer ticker.Stop()
	for {
		select {
		case <-a.quit:
			return
		case <-ticker.C:
			if err := a.heartbeat(); err != nil {
				a.cfg.Logger.Warn("fleet: heartbeat failed", obs.Err(err))
			}
		}
	}
}

// Close stops the heartbeat loop. The registration then lapses at its TTL.
func (a *Agent) Close() {
	a.once.Do(func() { close(a.quit) })
	a.done.Wait()
}

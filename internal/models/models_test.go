package models

import (
	"testing"

	"websnap/internal/nn"
	"websnap/internal/tensor"
)

func TestBuildUnknown(t *testing.T) {
	if _, err := Build("resnet"); err == nil {
		t.Error("unknown model should fail")
	}
}

func TestNamesOrder(t *testing.T) {
	want := []string{GoogLeNet, AgeNet, GenderNet}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestGoogLeNetGeometry checks the stage dimensions the paper's Fig 1 shows.
func TestGoogLeNetGeometry(t *testing.T) {
	net, err := Build(GoogLeNet)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	infos, err := net.Describe()
	if err != nil {
		t.Fatalf("Describe: %v", err)
	}
	byName := map[string]nn.LayerInfo{}
	for _, li := range infos {
		byName[li.Name] = li
	}
	tests := []struct {
		layer string
		want  []int
	}{
		{"data", []int{3, 224, 224}},
		{"conv1", []int{64, 112, 112}},
		{"pool1", []int{64, 56, 56}}, // the paper's 56x56x64 feature data
		{"conv2", []int{192, 56, 56}},
		{"pool2", []int{192, 28, 28}},
		{"inception_3a", []int{256, 28, 28}},
		{"inception_3b", []int{480, 28, 28}},
		{"pool3", []int{480, 14, 14}},
		{"inception_4e", []int{832, 14, 14}},
		{"pool4", []int{832, 7, 7}},
		{"inception_5b", []int{1024, 7, 7}},
		{"pool5", []int{1024, 1, 1}},
		{"loss3_classifier", []int{1000}},
	}
	for _, tt := range tests {
		li, ok := byName[tt.layer]
		if !ok {
			t.Errorf("layer %q missing", tt.layer)
			continue
		}
		if tensor.Volume(li.OutputShape) != tensor.Volume(tt.want) || len(li.OutputShape) != len(tt.want) {
			t.Errorf("%s output = %v, want %v", tt.layer, li.OutputShape, tt.want)
			continue
		}
		for i := range tt.want {
			if li.OutputShape[i] != tt.want[i] {
				t.Errorf("%s output = %v, want %v", tt.layer, li.OutputShape, tt.want)
				break
			}
		}
	}
}

// TestModelSizes checks parameter bytes against the paper's reported model
// sizes (27 MB GoogLeNet, 44 MB AgeNet/GenderNet) with a 10% tolerance.
func TestModelSizes(t *testing.T) {
	tests := []struct {
		name    string
		paperMB float64
	}{
		{GoogLeNet, 27},
		{AgeNet, 44},
		{GenderNet, 44},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			net, err := Build(tt.name)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			gotMB := float64(net.ModelBytes()) / 1e6
			if gotMB < tt.paperMB*0.9 || gotMB > tt.paperMB*1.1 {
				t.Errorf("%s model size = %.1f MB, want within 10%% of %0.f MB",
					tt.name, gotMB, tt.paperMB)
			}
		})
	}
}

func TestAgeGenderDifferOnlyInClassifier(t *testing.T) {
	age, err := Build(AgeNet)
	if err != nil {
		t.Fatal(err)
	}
	gender, err := Build(GenderNet)
	if err != nil {
		t.Fatal(err)
	}
	if age.NumLayers() != gender.NumLayers() {
		t.Fatalf("layer counts differ: %d vs %d", age.NumLayers(), gender.NumLayers())
	}
	aOut, err := age.OutputShape()
	if err != nil {
		t.Fatal(err)
	}
	gOut, err := gender.OutputShape()
	if err != nil {
		t.Fatal(err)
	}
	if aOut[0] != 8 || gOut[0] != 2 {
		t.Errorf("outputs = %v / %v, want 8 age brackets / 2 genders", aOut, gOut)
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(AgeNet)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(AgeNet)
	if err != nil {
		t.Fatal(err)
	}
	ap := a.Layers()[1].Params()[0].Data()
	bp := b.Layers()[1].Params()[0].Data()
	for i := range ap {
		if ap[i] != bp[i] {
			t.Fatalf("weights not deterministic at %d", i)
		}
	}
}

func TestModelsSerializeRoundTrip(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			net, err := Build(name)
			if err != nil {
				t.Fatal(err)
			}
			data, err := nn.EncodeSpec(net)
			if err != nil {
				t.Fatalf("EncodeSpec: %v", err)
			}
			clone, err := nn.DecodeSpec(data)
			if err != nil {
				t.Fatalf("DecodeSpec: %v", err)
			}
			if clone.TotalParams() != net.TotalParams() {
				t.Errorf("params after round trip: %d != %d", clone.TotalParams(), net.TotalParams())
			}
		})
	}
}

// TestPartitionPointFeatureSizes verifies the paper's §IV.B observation in
// binary terms: GoogLeNet feature data surges at 1st_conv and shrinks at
// 1st_pool (14.7 MB vs 2.9 MB in the paper's textual snapshot encoding;
// here 3.21 MB vs 0.80 MB of float32s — the same 4x ratio).
func TestPartitionPointFeatureSizes(t *testing.T) {
	net, err := Build(GoogLeNet)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := net.PartitionPoints()
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]int64{}
	for _, p := range pts {
		byLabel[p.Label] = p.FeatureBytes
	}
	conv1, pool1 := byLabel["1st_conv"], byLabel["1st_pool"]
	if conv1 == 0 || pool1 == 0 {
		t.Fatalf("missing partition points: %v", byLabel)
	}
	if conv1 <= byLabel["Input"] {
		t.Error("1st_conv feature data should exceed the input size")
	}
	ratio := float64(conv1) / float64(pool1)
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("conv1/pool1 feature ratio = %.2f, want ~4 (paper: 14.7/2.9 ~= 5 textual)", ratio)
	}
}

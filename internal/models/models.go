// Package models builds the three benchmark DNN architectures the paper
// evaluates: GoogLeNet (Szegedy et al. 2015, per Fig 1) and the Levi–Hassner
// AgeNet and GenderNet CNNs.
//
// Weights are synthetic and deterministic (see DESIGN.md §1): every
// experiment in the paper depends on architecture shape — per-layer FLOPs,
// parameter bytes, and feature-data sizes — not on trained accuracy.
package models

import (
	"fmt"
	"hash/fnv"

	"websnap/internal/nn"
)

// Canonical model names used throughout the repository.
const (
	GoogLeNet = "googlenet"
	AgeNet    = "agenet"
	GenderNet = "gendernet"
)

// Names lists the benchmark models in the order the paper reports them.
func Names() []string { return []string{GoogLeNet, AgeNet, GenderNet} }

// Build constructs the named model with deterministic weights.
func Build(name string) (*nn.Network, error) {
	var (
		net *nn.Network
		err error
	)
	switch name {
	case GoogLeNet:
		net, err = BuildGoogLeNet()
	case AgeNet:
		net, err = BuildAgeNet()
	case GenderNet:
		net, err = BuildGenderNet()
	default:
		return nil, fmt.Errorf("models: unknown model %q", name)
	}
	if err != nil {
		return nil, err
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	net.InitWeights(h.Sum64())
	return net, nil
}

// BuildAgeNet constructs the Levi–Hassner age classification CNN
// (8 age-bracket outputs): three conv/pool/LRN stages followed by two
// 512-wide fully-connected layers. ~11.4 M parameters (~44 MB), matching
// the paper's reported model size.
func BuildAgeNet() (*nn.Network, error) {
	return buildLeviHassner(AgeNet, 8)
}

// BuildGenderNet constructs the Levi–Hassner gender classification CNN
// (2 outputs); identical topology to AgeNet except the final classifier.
func BuildGenderNet() (*nn.Network, error) {
	return buildLeviHassner(GenderNet, 2)
}

func buildLeviHassner(name string, classes int) (*nn.Network, error) {
	b := newBuilder()
	layers := []nn.Layer{
		b.input("data", 3, 227, 227),
		b.conv("conv1", 3, 96, 7, 4, 0),
		nn.NewReLU("relu1"),
		b.pool("pool1", nn.MaxPool, 3, 2, 0),
		b.lrn("norm1", 5, 0.0001, 0.75),
		b.conv("conv2", 96, 256, 5, 1, 2),
		nn.NewReLU("relu2"),
		b.pool("pool2", nn.MaxPool, 3, 2, 0),
		b.lrn("norm2", 5, 0.0001, 0.75),
		b.conv("conv3", 256, 384, 3, 1, 1),
		nn.NewReLU("relu3"),
		b.pool("pool3", nn.MaxPool, 3, 2, 0),
		b.fc("fc6", 384*7*7, 512),
		nn.NewReLU("relu6"),
		nn.NewDropout("drop6", 0.5),
		b.fc("fc7", 512, 512),
		nn.NewReLU("relu7"),
		nn.NewDropout("drop7", 0.5),
		b.fc("fc8", 512, classes),
		nn.NewSoftmax("prob"),
	}
	if b.err != nil {
		return nil, fmt.Errorf("models: %s: %w", name, b.err)
	}
	return nn.NewNetwork(name, layers...)
}

// BuildGoogLeNet constructs GoogLeNet exactly as sketched in the paper's
// Fig 1: a conv/pool stem producing 56×56×64 feature data, nine inception
// modules, global average pooling, and a 1000-way classifier. ~7 M
// parameters (~27 MB), matching the paper's reported model size.
func BuildGoogLeNet() (*nn.Network, error) {
	b := newBuilder()
	layers := []nn.Layer{
		b.input("data", 3, 224, 224),
		b.conv("conv1", 3, 64, 7, 2, 3),
		nn.NewReLU("relu_conv1"),
		b.pool("pool1", nn.MaxPool, 3, 2, 0),
		b.lrn("norm1", 5, 0.0001, 0.75),
		b.conv("conv2_reduce", 64, 64, 1, 1, 0),
		nn.NewReLU("relu_conv2_reduce"),
		b.conv("conv2", 64, 192, 3, 1, 1),
		nn.NewReLU("relu_conv2"),
		b.lrn("norm2", 5, 0.0001, 0.75),
		b.pool("pool2", nn.MaxPool, 3, 2, 0),
		b.inception("inception_3a", 192, 64, 96, 128, 16, 32, 32),
		b.inception("inception_3b", 256, 128, 128, 192, 32, 96, 64),
		b.pool("pool3", nn.MaxPool, 3, 2, 0),
		b.inception("inception_4a", 480, 192, 96, 208, 16, 48, 64),
		b.inception("inception_4b", 512, 160, 112, 224, 24, 64, 64),
		b.inception("inception_4c", 512, 128, 128, 256, 24, 64, 64),
		b.inception("inception_4d", 512, 112, 144, 288, 32, 64, 64),
		b.inception("inception_4e", 528, 256, 160, 320, 32, 128, 128),
		b.pool("pool4", nn.MaxPool, 3, 2, 0),
		b.inception("inception_5a", 832, 256, 160, 320, 32, 128, 128),
		b.inception("inception_5b", 832, 384, 192, 384, 48, 128, 128),
		b.pool("pool5", nn.AvgPool, 7, 1, 0),
		nn.NewDropout("drop", 0.4),
		b.fc("loss3_classifier", 1024, 1000),
		nn.NewSoftmax("prob"),
	}
	if b.err != nil {
		return nil, fmt.Errorf("models: googlenet: %w", b.err)
	}
	return nn.NewNetwork(GoogLeNet, layers...)
}

// BuildTinyNet constructs a small but complete CNN (16×16 input, two
// conv/pool stages, one classifier) with deterministic weights. It is not
// one of the paper's benchmarks; it exists so demos, examples, and tests
// can exercise the full offloading pipeline in milliseconds.
func BuildTinyNet(name string, classes int) (*nn.Network, error) {
	if classes <= 0 {
		return nil, fmt.Errorf("models: tiny net %q: classes must be positive, got %d", name, classes)
	}
	b := newBuilder()
	layers := []nn.Layer{
		b.input("data", 3, 16, 16),
		b.conv("conv1", 3, 8, 3, 1, 1),
		nn.NewReLU("relu1"),
		b.pool("pool1", nn.MaxPool, 2, 2, 0),
		b.conv("conv2", 8, 16, 3, 1, 1),
		nn.NewReLU("relu2"),
		b.pool("pool2", nn.MaxPool, 2, 2, 0),
		b.fc("fc", 16*4*4, classes),
		nn.NewSoftmax("prob"),
	}
	if b.err != nil {
		return nil, fmt.Errorf("models: tiny net %q: %w", name, b.err)
	}
	net, err := nn.NewNetwork(name, layers...)
	if err != nil {
		return nil, err
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	net.InitWeights(h.Sum64())
	return net, nil
}

// builder accumulates the first construction error so architecture tables
// above read declaratively.
type builder struct {
	err error
}

func newBuilder() *builder { return &builder{} }

func (b *builder) keep(l nn.Layer, err error) nn.Layer {
	if err != nil && b.err == nil {
		b.err = err
	}
	return l
}

func (b *builder) input(name string, shape ...int) nn.Layer {
	return b.keep(nn.NewInput(name, shape...))
}

func (b *builder) conv(name string, inC, outC, k, stride, pad int) nn.Layer {
	return b.keep(nn.NewConv(name, inC, outC, k, stride, pad))
}

func (b *builder) pool(name string, kind nn.Pooling, k, stride, pad int) nn.Layer {
	return b.keep(nn.NewPool(name, kind, k, stride, pad))
}

func (b *builder) lrn(name string, localSize int, alpha, beta float64) nn.Layer {
	return b.keep(nn.NewLRN(name, localSize, alpha, beta))
}

func (b *builder) fc(name string, in, out int) nn.Layer {
	return b.keep(nn.NewFC(name, in, out))
}

// inception assembles the standard four-branch GoogLeNet inception module:
// 1×1, 1×1→3×3, 1×1→5×5, and 3×3-maxpool→1×1 (each conv followed by ReLU).
func (b *builder) inception(name string, inC, c1, r3, c3, r5, c5, pp int) nn.Layer {
	branch := func(layers ...nn.Layer) []nn.Layer { return layers }
	l, err := nn.NewInception(name,
		branch(
			b.conv(name+"_1x1", inC, c1, 1, 1, 0),
			nn.NewReLU(name+"_relu_1x1"),
		),
		branch(
			b.conv(name+"_3x3_reduce", inC, r3, 1, 1, 0),
			nn.NewReLU(name+"_relu_3x3_reduce"),
			b.conv(name+"_3x3", r3, c3, 3, 1, 1),
			nn.NewReLU(name+"_relu_3x3"),
		),
		branch(
			b.conv(name+"_5x5_reduce", inC, r5, 1, 1, 0),
			nn.NewReLU(name+"_relu_5x5_reduce"),
			b.conv(name+"_5x5", r5, c5, 5, 1, 2),
			nn.NewReLU(name+"_relu_5x5"),
		),
		branch(
			b.keep(nn.NewPool(name+"_pool", nn.MaxPool, 3, 1, 1)),
			b.conv(name+"_pool_proj", inC, pp, 1, 1, 0),
			nn.NewReLU(name+"_relu_pool_proj"),
		),
	)
	return b.keep(l, err)
}

package models

import (
	"fmt"
	"testing"

	"websnap/internal/nn"
	"websnap/internal/tensor"
)

// convSite is one conv layer occurrence in the catalog: the layer itself
// plus the input shape it sees at its position in the network.
type convSite struct {
	model string
	conv  *nn.Conv
	in    []int
}

// collectConvs walks layers (recursing into inception branches, where
// every branch sees the module's input) and appends each conv with the
// input shape it executes on.
func collectConvs(t *testing.T, model string, layers []nn.Layer, in []int, out *[]convSite) []int {
	t.Helper()
	cur := in
	for _, l := range layers {
		if c, ok := l.(*nn.Conv); ok {
			*out = append(*out, convSite{model: model, conv: c, in: cur})
		}
		if inc, ok := l.(*nn.Inception); ok {
			for _, branch := range inc.Branches() {
				collectConvs(t, model, branch, cur, out)
			}
		}
		next, err := l.OutputShape(cur)
		if err != nil {
			t.Fatalf("%s: %s: OutputShape(%v): %v", model, l.Name(), cur, err)
		}
		cur = next
	}
	return cur
}

// catalogConvs gathers every conv shape in the model catalog (plus the
// tinynet fixture), deduplicated by geometry.
func catalogConvs(t *testing.T) []convSite {
	t.Helper()
	var sites []convSite
	for _, name := range Names() {
		net, err := Build(name)
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		collectConvs(t, name, net.Layers(), net.InputShape(), &sites)
	}
	tiny, err := BuildTinyNet("tinynet", 10)
	if err != nil {
		t.Fatalf("build tinynet: %v", err)
	}
	collectConvs(t, "tinynet", tiny.Layers(), tiny.InputShape(), &sites)

	seen := make(map[string]bool)
	uniq := sites[:0]
	for _, s := range sites {
		inC, outC, k, stride, pad := s.conv.Geometry()
		key := fmt.Sprintf("%d/%d/%d/%d/%d/%v", inC, outC, k, stride, pad, s.in)
		if seen[key] {
			continue
		}
		seen[key] = true
		uniq = append(uniq, s)
	}
	return uniq
}

func fillDet(d []float32, seed uint64) {
	s := seed*2654435761 + 7
	for i := range d {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		d[i] = float32(s%2048)/1024 - 1
	}
}

// TestCatalogConvKernelEquivalence checks, for every distinct conv shape
// the model catalog contains (padded, strided, 1x1, and inception-branch
// convs included), that the three convolution kernels agree: the plan's
// chosen algorithm (Forward), explicit im2col+GEMM (ForwardIm2col), and
// the packed direct kernel (tensor.GemmConv). The kernels are designed to
// be bit-identical; the test asserts the ISSUE's <= 1e-6 golden bound so
// a future kernel with a different (still correct) accumulation order has
// headroom.
func TestCatalogConvKernelEquivalence(t *testing.T) {
	sites := catalogConvs(t)
	if len(sites) < 10 {
		t.Fatalf("catalog walk found only %d distinct conv shapes", len(sites))
	}
	for _, s := range sites {
		inC, outC, k, stride, pad := s.conv.Geometry()
		name := fmt.Sprintf("%s/%s_%dx%dx%d_k%ds%dp%d", s.model, s.conv.Name(), inC, s.in[1], s.in[2], k, stride, pad)
		t.Run(name, func(t *testing.T) {
			in, err := tensor.New(s.in...)
			if err != nil {
				t.Fatal(err)
			}
			fillDet(in.Data(), uint64(tensor.Volume(s.in)))

			planOut, err := s.conv.Forward(in)
			if err != nil {
				t.Fatalf("Forward: %v", err)
			}
			im2colOut, err := s.conv.ForwardIm2col(in)
			if err != nil {
				t.Fatalf("ForwardIm2col: %v", err)
			}

			outShape, err := s.conv.OutputShape(s.in)
			if err != nil {
				t.Fatal(err)
			}
			oh, ow := outShape[1], outShape[2]
			g := tensor.ConvGeom{
				InC: inC, H: s.in[1], W: s.in[2],
				K: k, Stride: stride, Pad: pad,
				OutH: oh, OutW: ow,
			}
			params := s.conv.Params()
			weight, bias := params[0], params[1]
			direct := make([]float32, outC*oh*ow)
			tensor.GemmConv(direct, weight.Data(), bias.Data(), outC, in.Data(), g)

			ref := im2colOut.Data()
			for i, v := range planOut.Data() {
				if d := abs64(float64(v) - float64(ref[i])); d > 1e-6 {
					t.Fatalf("plan vs im2col at %d: %g vs %g (|d|=%g)", i, v, ref[i], d)
				}
			}
			for i, v := range direct {
				if d := abs64(float64(v) - float64(ref[i])); d > 1e-6 {
					t.Fatalf("direct vs im2col at %d: %g vs %g (|d|=%g)", i, v, ref[i], d)
				}
			}
		})
	}
}

func abs64(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// TestGoogLeNetInt8Top1Agreement pins the classification agreement between
// the float32 and calibrated int8 paths on the googlenet-style fixture.
// Everything in the pipeline is deterministic — weight init, the synthetic
// images, calibration, and the int8 kernels (exact int32 arithmetic) — so
// the agreement count is an exact pin, not a statistical bound.
func TestGoogLeNetInt8Top1Agreement(t *testing.T) {
	net, err := Build(GoogLeNet)
	if err != nil {
		t.Fatal(err)
	}
	const imgs = 4
	agree := 0
	for i := 0; i < imgs; i++ {
		in, err := tensor.New(net.InputShape()...)
		if err != nil {
			t.Fatal(err)
		}
		fillDet(in.Data(), uint64(1000+i))
		fOut, err := net.Forward(in)
		if err != nil {
			t.Fatalf("float32 forward: %v", err)
		}
		qOut, err := net.ForwardPrec(in, nn.PrecInt8)
		if err != nil {
			t.Fatalf("int8 forward: %v", err)
		}
		fi, _ := fOut.MaxIndex()
		qi, _ := qOut.MaxIndex()
		if fi == qi {
			agree++
		}
	}
	if agree != imgs {
		t.Fatalf("top-1 agreement %d/%d, want %d/%d", agree, imgs, imgs, imgs)
	}
}

package webapp

import (
	"fmt"
	"sync"
)

// Catalog maps code hashes to registered app code bundles. It stands in for
// the snapshot's embedded JavaScript text: the paper's snapshots carry the
// app's functions verbatim, whereas here both client and edge server
// resolve the same bundle by its content hash (see DESIGN.md §1).
//
// A Catalog is safe for concurrent use; the edge server looks bundles up
// from per-connection goroutines.
type Catalog struct {
	mu      sync.RWMutex
	bundles map[string]*Registry
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{bundles: make(map[string]*Registry)}
}

// Add registers a code bundle under its hash. Adding the same bundle twice
// is a no-op; adding a different bundle with a colliding hash is an error.
func (c *Catalog) Add(r *Registry) error {
	if r == nil {
		return fmt.Errorf("webapp: catalog: nil registry")
	}
	h := r.CodeHash()
	c.mu.Lock()
	defer c.mu.Unlock()
	if existing, ok := c.bundles[h]; ok && existing != r {
		return fmt.Errorf("webapp: catalog: hash collision for %q", h)
	}
	c.bundles[h] = r
	return nil
}

// Lookup resolves a code hash to its bundle.
func (c *Catalog) Lookup(codeHash string) (*Registry, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r, ok := c.bundles[codeHash]
	return r, ok
}

// Len returns the number of registered bundles.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.bundles)
}

package webapp

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	tests := []struct {
		name string
		in   Value
		want Value
	}{
		{"nil", nil, nil},
		{"bool", true, true},
		{"int", 3, float64(3)},
		{"int64", int64(4), float64(4)},
		{"float32", float32(1.5), float64(1.5)},
		{"string", "x", "x"},
		{"f32slice", []float32{1, 2}, Float32Array{1, 2}},
		{"nested", map[string]Value{"a": 1}, map[string]Value{"a": float64(1)}},
		{"list", []Value{1, "b"}, []Value{float64(1), "b"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Normalize(tt.in)
			if err != nil {
				t.Fatalf("Normalize: %v", err)
			}
			if !DeepEqual(got, tt.want) {
				t.Errorf("Normalize(%v) = %#v, want %#v", tt.in, got, tt.want)
			}
		})
	}
	if _, err := Normalize(struct{}{}); err == nil {
		t.Error("Normalize of struct should fail")
	}
	if _, err := Normalize(map[string]Value{"bad": struct{}{}}); err == nil {
		t.Error("Normalize of nested bad value should fail")
	}
}

func TestDeepEqualAndCopy(t *testing.T) {
	v := map[string]Value{
		"n":   float64(1),
		"s":   "hello",
		"arr": []Value{true, nil, Float32Array{1.5, -2}},
	}
	cp := DeepCopy(v)
	if !DeepEqual(v, cp) {
		t.Fatal("copy not equal")
	}
	cpMap, ok := cp.(map[string]Value)
	if !ok {
		t.Fatalf("copy has type %T", cp)
	}
	arr, ok := cpMap["arr"].([]Value)
	if !ok {
		t.Fatalf("arr copy type %T", cpMap["arr"])
	}
	fa, ok := arr[2].(Float32Array)
	if !ok {
		t.Fatalf("typed array copy type %T", arr[2])
	}
	fa[0] = 99
	orig := v["arr"].([]Value)[2].(Float32Array)
	if orig[0] == 99 {
		t.Error("DeepCopy aliases typed arrays")
	}
	if DeepEqual(float64(1), "1") {
		t.Error("number should not equal string")
	}
	nan := Float32Array{float32(math.NaN())}
	if !DeepEqual(nan, DeepCopy(nan)) {
		t.Error("NaN arrays should compare equal to their copies")
	}
}

func TestDOMFindAppendClone(t *testing.T) {
	root := NewNode("body", "root")
	div := root.AppendChild(NewNode("div", "container"))
	div.AppendChild(NewNode("button", "btn"))
	div.AppendChild(&Node{Tag: "p", ID: "result", Text: "?"})

	if got := root.Find("btn"); got == nil || got.Tag != "button" {
		t.Fatalf("Find(btn) = %+v", got)
	}
	if got := root.Find("missing"); got != nil {
		t.Fatalf("Find(missing) = %+v, want nil", got)
	}
	clone := root.Clone()
	if !root.Equal(clone) {
		t.Fatal("clone not equal")
	}
	clone.Find("result").Text = "cat"
	if root.Find("result").Text == "cat" {
		t.Error("clone aliases original")
	}
	if root.Equal(clone) {
		t.Error("Equal should detect text change")
	}
	if got := root.CountNodes(); got != 4 {
		t.Errorf("CountNodes = %d, want 4", got)
	}
}

func TestDOMAttrs(t *testing.T) {
	n := NewNode("img", "photo")
	if _, ok := n.Attr("src"); ok {
		t.Error("unset attr should be absent")
	}
	n.SetAttr("src", "cat.jpg")
	if v, ok := n.Attr("src"); !ok || v != "cat.jpg" {
		t.Errorf("Attr = %q, %v", v, ok)
	}
	m := n.Clone()
	m.SetAttr("src", "dog.jpg")
	if v, _ := n.Attr("src"); v != "cat.jpg" {
		t.Error("clone aliases attrs")
	}
}

func TestDOMMarshalRoundTrip(t *testing.T) {
	root := NewNode("body", "root")
	root.AppendChild(NewNode("div", "d")).SetAttr("class", "x")
	data, err := MarshalDOM(root)
	if err != nil {
		t.Fatalf("MarshalDOM: %v", err)
	}
	got, err := UnmarshalDOM(data)
	if err != nil {
		t.Fatalf("UnmarshalDOM: %v", err)
	}
	if !root.Equal(got) {
		t.Error("DOM round trip mismatch")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry("app")
	if err := r.Register("h", func(*App, Event) error { return nil }); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := r.Register("h", func(*App, Event) error { return nil }); err == nil {
		t.Error("duplicate registration should fail")
	}
	if err := r.Register("nil", nil); err == nil {
		t.Error("nil handler should fail")
	}
	if _, ok := r.Handler("h"); !ok {
		t.Error("Handler lookup failed")
	}
}

func TestCodeHashStability(t *testing.T) {
	mk := func(names ...string) *Registry {
		r := NewRegistry("app")
		for _, n := range names {
			r.MustRegister(n, func(*App, Event) error { return nil })
		}
		return r
	}
	a := mk("x", "y")
	b := mk("y", "x") // registration order must not matter
	if a.CodeHash() != b.CodeHash() {
		t.Error("hash should be order independent")
	}
	c := mk("x", "y", "z")
	if a.CodeHash() == c.CodeHash() {
		t.Error("different bundles should hash differently")
	}
	d := NewRegistry("other")
	d.MustRegister("x", func(*App, Event) error { return nil })
	d.MustRegister("y", func(*App, Event) error { return nil })
	if a.CodeHash() == d.CodeHash() {
		t.Error("bundle name should participate in the hash")
	}
}

func newTestApp(t *testing.T) *App {
	t.Helper()
	reg := NewRegistry("counter")
	reg.MustRegister("increment", func(app *App, ev Event) error {
		v, _ := app.Global("count")
		n, _ := v.(float64)
		return app.SetGlobal("count", n+1)
	})
	reg.MustRegister("chain", func(app *App, ev Event) error {
		app.DispatchEvent(Event{Target: "btn", Type: "click"})
		return nil
	})
	reg.MustRegister("boom", func(app *App, ev Event) error {
		return errors.New("kaput")
	})
	app, err := NewApp("app-1", reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.SetGlobal("count", 0); err != nil {
		t.Fatal(err)
	}
	if err := app.AddEventListener("btn", "click", "increment"); err != nil {
		t.Fatal(err)
	}
	return app
}

func TestEventLoop(t *testing.T) {
	app := newTestApp(t)
	app.DispatchEvent(Event{Target: "btn", Type: "click"})
	app.DispatchEvent(Event{Target: "btn", Type: "click"})
	steps, err := app.Run(10)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if steps != 2 {
		t.Errorf("steps = %d, want 2", steps)
	}
	v, _ := app.Global("count")
	if v != float64(2) {
		t.Errorf("count = %v, want 2", v)
	}
}

func TestUnboundEventDropped(t *testing.T) {
	app := newTestApp(t)
	app.DispatchEvent(Event{Target: "nowhere", Type: "hover"})
	if err := app.Step(); err != nil {
		t.Errorf("unbound event should be dropped, got %v", err)
	}
}

func TestStepEmptyQueue(t *testing.T) {
	app := newTestApp(t)
	if err := app.Step(); !errors.Is(err, ErrQueueEmpty) {
		t.Errorf("Step on empty queue = %v, want ErrQueueEmpty", err)
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	app := newTestApp(t)
	if err := app.AddEventListener("btn", "explode", "boom"); err != nil {
		t.Fatal(err)
	}
	app.DispatchEvent(Event{Target: "btn", Type: "explode"})
	if err := app.Step(); err == nil {
		t.Error("handler error should propagate")
	}
}

func TestHandlerDispatchChain(t *testing.T) {
	app := newTestApp(t)
	if err := app.AddEventListener("btn", "go", "chain"); err != nil {
		t.Fatal(err)
	}
	app.DispatchEvent(Event{Target: "btn", Type: "go"})
	if _, err := app.Run(10); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if v, _ := app.Global("count"); v != float64(1) {
		t.Errorf("count = %v, want 1 (chained click)", v)
	}
}

func TestRunQuiesceLimit(t *testing.T) {
	reg := NewRegistry("infinite")
	reg.MustRegister("loop", func(app *App, ev Event) error {
		app.DispatchEvent(ev)
		return nil
	})
	app, err := NewApp("a", reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.AddEventListener("t", "tick", "loop"); err != nil {
		t.Fatal(err)
	}
	app.DispatchEvent(Event{Target: "t", Type: "tick"})
	if _, err := app.Run(5); err == nil {
		t.Error("non-quiescing app should report an error")
	}
}

// TestMultipleListenersAllFire: like a browser, every listener bound to an
// event runs, in registration order.
func TestMultipleListenersAllFire(t *testing.T) {
	reg := NewRegistry("multi")
	reg.MustRegister("first", func(app *App, ev Event) error {
		v, _ := app.Global("order")
		s, _ := v.(string)
		return app.SetGlobal("order", s+"a")
	})
	reg.MustRegister("second", func(app *App, ev Event) error {
		v, _ := app.Global("order")
		s, _ := v.(string)
		return app.SetGlobal("order", s+"b")
	})
	app, err := NewApp("m", reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.SetGlobal("order", ""); err != nil {
		t.Fatal(err)
	}
	if err := app.AddEventListener("btn", "click", "first"); err != nil {
		t.Fatal(err)
	}
	if err := app.AddEventListener("btn", "click", "second"); err != nil {
		t.Fatal(err)
	}
	app.DispatchEvent(Event{Target: "btn", Type: "click"})
	if err := app.Step(); err != nil {
		t.Fatal(err)
	}
	if v, _ := app.Global("order"); v != "ab" {
		t.Errorf("order = %v, want \"ab\" (both listeners, registration order)", v)
	}
}

func TestAddEventListenerUnknownHandler(t *testing.T) {
	app := newTestApp(t)
	if err := app.AddEventListener("btn", "click", "nope"); !errors.Is(err, ErrUnknownHandler) {
		t.Errorf("err = %v, want ErrUnknownHandler", err)
	}
}

func TestGlobalsSnapshotIsolation(t *testing.T) {
	app := newTestApp(t)
	if err := app.SetGlobal("arr", []float32{1, 2}); err != nil {
		t.Fatal(err)
	}
	snap := app.Globals()
	snap["arr"].(Float32Array)[0] = 42
	v, _ := app.Global("arr")
	if v.(Float32Array)[0] == 42 {
		t.Error("Globals() must deep-copy")
	}
}

func TestReplaceBindingsValidates(t *testing.T) {
	app := newTestApp(t)
	err := app.ReplaceBindings([]Binding{{Target: "x", Event: "y", Handler: "ghost"}})
	if !errors.Is(err, ErrUnknownHandler) {
		t.Errorf("err = %v, want ErrUnknownHandler", err)
	}
}

// Property: Normalize is idempotent — normalizing a normalized value is
// identical.
func TestQuickNormalizeIdempotent(t *testing.T) {
	f := func(n float64, s string, fs []float32, flag bool) bool {
		v := map[string]Value{
			"n": n, "s": s, "f": fs, "b": flag,
			"list": []Value{n, s},
		}
		once, err := Normalize(v)
		if err != nil {
			return false
		}
		twice, err := Normalize(once)
		if err != nil {
			return false
		}
		return DeepEqual(once, twice)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: DeepCopy always produces a DeepEqual value, for arbitrary
// generated trees.
func TestQuickDeepCopyEqual(t *testing.T) {
	f := func(a float64, b string, c []float32, depth uint8) bool {
		var v Value = map[string]Value{"a": a, "b": b, "c": Float32Array(c)}
		for i := 0; i < int(depth%4); i++ {
			v = []Value{v, float64(i)}
		}
		return DeepEqual(v, DeepCopy(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func ExampleApp() {
	reg := NewRegistry("hello")
	reg.MustRegister("greet", func(app *App, ev Event) error {
		app.DOM().Find("out").Text = "hello, edge"
		return nil
	})
	app, _ := NewApp("demo", reg)
	app.DOM().AppendChild(NewNode("p", "out"))
	_ = app.AddEventListener("btn", "click", "greet")
	app.DispatchEvent(Event{Target: "btn", Type: "click"})
	_, _ = app.Run(1)
	fmt.Println(app.DOM().Find("out").Text)
	// Output: hello, edge
}

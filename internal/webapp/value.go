// Package webapp is the browser substrate the snapshot mechanism operates
// on: a deterministic web-app runtime with a DOM tree, JavaScript-like heap
// values, event targets and dispatch, and a single-threaded event loop.
//
// It stands in for the paper's WebKit browser (DESIGN.md §1). App *state*
// (globals, heap objects, DOM, pending events) is fully serializable by
// package snapshot; app *code* is a bundle of registered handler functions
// identified by a content hash, mirroring the paper's snapshots, which carry
// the app's functions as JavaScript text.
package webapp

import (
	"fmt"
	"math"
	"sort"
)

// Value is a JavaScript-like heap value. The dynamic type must be one of:
//
//	nil, bool, float64, string, []Value, map[string]Value, Float32Array
//
// (the JSON value universe plus typed arrays, which ML web apps use for
// image pixels and DNN feature data).
type Value = any

// Float32Array is the typed-array value used for pixel and feature data,
// mirroring JavaScript's Float32Array. It serializes textually in
// snapshots, which is what gives feature data its large on-the-wire size
// (paper §IV.B: 14.7 MB at 1st_conv vs 2.9 MB at 1st_pool for GoogLeNet).
type Float32Array []float32

// Normalize converts v into canonical Value form (e.g. int -> float64,
// []float32 -> Float32Array, map[string]string -> map[string]Value). It
// returns an error for types outside the value universe.
func Normalize(v Value) (Value, error) {
	switch t := v.(type) {
	case nil, bool, float64, string, Float32Array:
		return t, nil
	case int:
		return float64(t), nil
	case int64:
		return float64(t), nil
	case float32:
		return float64(t), nil
	case []float32:
		return Float32Array(t), nil
	case []Value:
		out := make([]Value, len(t))
		for i, e := range t {
			n, err := Normalize(e)
			if err != nil {
				return nil, err
			}
			out[i] = n
		}
		return out, nil
	case map[string]Value:
		out := make(map[string]Value, len(t))
		for k, e := range t {
			n, err := Normalize(e)
			if err != nil {
				return nil, err
			}
			out[k] = n
		}
		return out, nil
	default:
		return nil, fmt.Errorf("webapp: unsupported value type %T", v)
	}
}

// DeepEqual compares two canonical Values structurally. NaNs compare equal
// to each other so round-trip tests behave sensibly.
func DeepEqual(a, b Value) bool {
	switch x := a.(type) {
	case nil:
		return b == nil
	case bool:
		y, ok := b.(bool)
		return ok && x == y
	case float64:
		y, ok := b.(float64)
		if !ok {
			return false
		}
		return x == y || (math.IsNaN(x) && math.IsNaN(y))
	case string:
		y, ok := b.(string)
		return ok && x == y
	case Float32Array:
		y, ok := b.(Float32Array)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] &&
				!(math.IsNaN(float64(x[i])) && math.IsNaN(float64(y[i]))) {
				return false
			}
		}
		return true
	case []Value:
		y, ok := b.([]Value)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !DeepEqual(x[i], y[i]) {
				return false
			}
		}
		return true
	case map[string]Value:
		y, ok := b.(map[string]Value)
		if !ok || len(x) != len(y) {
			return false
		}
		for k, v := range x {
			w, exists := y[k]
			if !exists || !DeepEqual(v, w) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// DeepCopy clones a canonical Value so that captured state cannot alias
// live app state.
func DeepCopy(v Value) Value {
	switch t := v.(type) {
	case []Value:
		out := make([]Value, len(t))
		for i, e := range t {
			out[i] = DeepCopy(e)
		}
		return out
	case map[string]Value:
		out := make(map[string]Value, len(t))
		for k, e := range t {
			out[k] = DeepCopy(e)
		}
		return out
	case Float32Array:
		out := make(Float32Array, len(t))
		copy(out, t)
		return out
	default:
		return t
	}
}

// sortedKeys returns map keys in deterministic order; snapshot encoding and
// code hashing both rely on stable iteration.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

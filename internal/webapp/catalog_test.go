package webapp

import "testing"

func newBundle(name string, handlers ...string) *Registry {
	r := NewRegistry(name)
	for _, h := range handlers {
		r.MustRegister(h, func(*App, Event) error { return nil })
	}
	return r
}

func TestCatalogAddLookup(t *testing.T) {
	cat := NewCatalog()
	if cat.Len() != 0 {
		t.Fatalf("new catalog len = %d", cat.Len())
	}
	a := newBundle("app-a", "h1")
	if err := cat.Add(a); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := cat.Add(a); err != nil {
		t.Errorf("re-adding the same bundle should be a no-op: %v", err)
	}
	if cat.Len() != 1 {
		t.Errorf("len = %d, want 1", cat.Len())
	}
	got, ok := cat.Lookup(a.CodeHash())
	if !ok || got != a {
		t.Error("lookup failed")
	}
	if _, ok := cat.Lookup("nope"); ok {
		t.Error("unknown hash should miss")
	}
	if err := cat.Add(nil); err == nil {
		t.Error("nil registry should fail")
	}
}

func TestCatalogCollision(t *testing.T) {
	cat := NewCatalog()
	// Two distinct bundles with identical name and handler names hash
	// the same: a collision must be rejected, not silently replaced.
	a := newBundle("app", "h")
	b := newBundle("app", "h")
	if a.CodeHash() != b.CodeHash() {
		t.Fatal("test setup: hashes should collide")
	}
	if err := cat.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := cat.Add(b); err == nil {
		t.Error("colliding distinct bundle should be rejected")
	}
}

func TestAppAccessors(t *testing.T) {
	reg := newBundle("acc-app", "h")
	app, err := NewApp("instance-1", reg)
	if err != nil {
		t.Fatal(err)
	}
	if app.ID() != "instance-1" {
		t.Errorf("ID = %q", app.ID())
	}
	if app.Registry() != reg {
		t.Error("Registry accessor broken")
	}
	if app.CodeHash() != reg.CodeHash() {
		t.Error("CodeHash mismatch")
	}
	if reg.Name() != "acc-app" {
		t.Errorf("Name = %q", reg.Name())
	}
	if err := app.SetGlobal("b", 2); err != nil {
		t.Fatal(err)
	}
	if err := app.SetGlobal("a", 1); err != nil {
		t.Fatal(err)
	}
	names := app.GlobalNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("GlobalNames = %v, want sorted [a b]", names)
	}

	app.DispatchEvent(Event{Target: "t", Type: "x"})
	app.DispatchEvent(Event{Target: "t", Type: "y"})
	pending := app.PendingEvents()
	if len(pending) != 2 || pending[0].Type != "x" {
		t.Errorf("PendingEvents = %v", pending)
	}
	if ev, ok := app.PeekEvent(); !ok || ev.Type != "x" {
		t.Errorf("PeekEvent = %v, %v", ev, ok)
	}
	app.ClearEvents()
	if _, ok := app.PeekEvent(); ok {
		t.Error("ClearEvents left events behind")
	}

	// Replace* round trips.
	app2, err := NewApp("instance-2", reg)
	if err != nil {
		t.Fatal(err)
	}
	app2.ReplaceGlobals(app.Globals())
	if v, _ := app2.Global("a"); v != float64(1) {
		t.Error("ReplaceGlobals lost data")
	}
	dom := NewNode("body", "root")
	dom.AppendChild(NewNode("div", "x"))
	app2.ReplaceDOM(dom)
	if app2.DOM().Find("x") == nil {
		t.Error("ReplaceDOM lost tree")
	}
	if err := app.AddEventListener("t", "x", "h"); err != nil {
		t.Fatal(err)
	}
	if err := app2.ReplaceBindings(app.Bindings()); err != nil {
		t.Fatal(err)
	}
	if got := app2.Bindings(); len(got) != 1 || got[0].Handler != "h" {
		t.Errorf("Bindings = %v", got)
	}
}

func TestNewAppNilRegistry(t *testing.T) {
	if _, err := NewApp("x", nil); err == nil {
		t.Error("nil registry should fail")
	}
}

func TestMustRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustRegister on duplicate should panic")
		}
	}()
	r := newBundle("p", "h")
	r.MustRegister("h", func(*App, Event) error { return nil })
}

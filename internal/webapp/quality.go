package webapp

import "websnap/internal/nn"

// GlobalQuality is the well-known global holding an app's model quality
// tier ("float32" or "int8"). It is an ordinary snapshotted global, so an
// offloaded session's quality choice travels to the edge server with the
// rest of the app state and the server-side layers run at the same
// precision the client chose. Missing or empty means float32.
const GlobalQuality = "quality"

// SetQuality selects the app's model quality tier. The empty string
// resets to the float32 default.
func SetQuality(app *App, prec nn.Precision) error {
	return app.SetGlobal(GlobalQuality, string(prec))
}

// Quality reads the app's quality tier, defaulting to float32 when the
// global is missing, empty, or malformed — handlers must keep working on
// snapshots captured before the knob existed.
func Quality(app *App) nn.Precision {
	if v, ok := app.Global(GlobalQuality); ok {
		if s, ok := v.(string); ok {
			if p, err := nn.ParsePrecision(s); err == nil {
				return p
			}
		}
	}
	return nn.PrecFloat32
}

package webapp

import (
	"encoding/json"
	"fmt"
)

// Node is one element of the app's DOM tree, which controls the screen
// display of the web app. The paper's snapshots include the DOM so that the
// edge server can even update the client's screen (§I).
type Node struct {
	Tag      string            `json:"tag"`
	ID       string            `json:"id,omitempty"`
	Text     string            `json:"text,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*Node           `json:"children,omitempty"`
}

// NewNode constructs a DOM node.
func NewNode(tag, id string) *Node {
	return &Node{Tag: tag, ID: id}
}

// AppendChild attaches child as the last child of n and returns child for
// chaining.
func (n *Node) AppendChild(child *Node) *Node {
	n.Children = append(n.Children, child)
	return child
}

// SetAttr sets an attribute on the node.
func (n *Node) SetAttr(key, value string) {
	if n.Attrs == nil {
		n.Attrs = make(map[string]string)
	}
	n.Attrs[key] = value
}

// Attr returns the attribute value and whether it exists.
func (n *Node) Attr(key string) (string, bool) {
	v, ok := n.Attrs[key]
	return v, ok
}

// Find returns the first node in the subtree (pre-order) whose ID matches,
// like document.getElementById, or nil if absent.
func (n *Node) Find(id string) *Node {
	if n == nil {
		return nil
	}
	if n.ID == id {
		return n
	}
	for _, c := range n.Children {
		if got := c.Find(id); got != nil {
			return got
		}
	}
	return nil
}

// Clone deep-copies the subtree.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	out := &Node{Tag: n.Tag, ID: n.ID, Text: n.Text}
	if n.Attrs != nil {
		out.Attrs = make(map[string]string, len(n.Attrs))
		for k, v := range n.Attrs {
			out.Attrs[k] = v
		}
	}
	if n.Children != nil {
		out.Children = make([]*Node, len(n.Children))
		for i, c := range n.Children {
			out.Children[i] = c.Clone()
		}
	}
	return out
}

// Equal reports whether two subtrees are structurally identical.
func (n *Node) Equal(other *Node) bool {
	if n == nil || other == nil {
		return n == other
	}
	if n.Tag != other.Tag || n.ID != other.ID || n.Text != other.Text {
		return false
	}
	if len(n.Attrs) != len(other.Attrs) || len(n.Children) != len(other.Children) {
		return false
	}
	for k, v := range n.Attrs {
		if w, ok := other.Attrs[k]; !ok || v != w {
			return false
		}
	}
	for i := range n.Children {
		if !n.Children[i].Equal(other.Children[i]) {
			return false
		}
	}
	return true
}

// CountNodes returns the number of nodes in the subtree.
func (n *Node) CountNodes() int {
	if n == nil {
		return 0
	}
	total := 1
	for _, c := range n.Children {
		total += c.CountNodes()
	}
	return total
}

// MarshalDOM encodes the tree as JSON (single line, snapshot-friendly).
func MarshalDOM(n *Node) ([]byte, error) {
	data, err := json.Marshal(n)
	if err != nil {
		return nil, fmt.Errorf("webapp: marshal dom: %w", err)
	}
	return data, nil
}

// UnmarshalDOM decodes a tree produced by MarshalDOM.
func UnmarshalDOM(data []byte) (*Node, error) {
	var n Node
	if err := json.Unmarshal(data, &n); err != nil {
		return nil, fmt.Errorf("webapp: unmarshal dom: %w", err)
	}
	return &n, nil
}

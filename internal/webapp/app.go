package webapp

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"

	"websnap/internal/nn"
)

// Errors returned by the runtime.
var (
	ErrNoHandler      = errors.New("webapp: no handler bound for event")
	ErrUnknownHandler = errors.New("webapp: handler not registered")
	ErrQueueEmpty     = errors.New("webapp: event queue empty")
)

// Event is a DOM event: a type ("click", "front_complete", ...) dispatched
// at a target element, optionally carrying a payload value.
type Event struct {
	Target  string `json:"target"`
	Type    string `json:"type"`
	Payload Value  `json:"payload,omitempty"`
}

// HandlerFunc is the body of an event handler: the app's "JavaScript". It
// may read and write globals, mutate the DOM, run model inference, and
// dispatch further events.
type HandlerFunc func(app *App, ev Event) error

// BatchHandlerFunc executes one event on each of several app instances in
// a single coalesced invocation — the batched counterpart of a HandlerFunc.
// apps and evs are parallel slices; the function must leave every app in
// exactly the state its per-app handler would have produced.
type BatchHandlerFunc func(apps []*App, evs []Event) error

// Registry is an app's code bundle: named handler functions. Its content
// hash is the app's code identity; a snapshot records the hash and is only
// restorable against a registry with the same hash (the stand-in for the
// paper's snapshots carrying the JavaScript functions verbatim).
type Registry struct {
	name     string
	handlers map[string]HandlerFunc
	// batch holds optional batched implementations of registered
	// handlers. They are an execution strategy with identical semantics,
	// not new code, so they do not contribute to the code hash.
	batch map[string]BatchHandlerFunc
}

// NewRegistry creates an empty code bundle named name.
func NewRegistry(name string) *Registry {
	return &Registry{
		name:     name,
		handlers: make(map[string]HandlerFunc),
		batch:    make(map[string]BatchHandlerFunc),
	}
}

// RegisterBatch attaches a batched implementation to an already-registered
// handler. The edge scheduler uses it to coalesce offloads that dispatch
// the same handler into one batched execution; semantics must match the
// per-app handler exactly.
func (r *Registry) RegisterBatch(name string, fn BatchHandlerFunc) error {
	if fn == nil {
		return fmt.Errorf("webapp: register batch %q: nil handler", name)
	}
	if _, ok := r.handlers[name]; !ok {
		return fmt.Errorf("webapp: register batch %q: no such handler", name)
	}
	if _, dup := r.batch[name]; dup {
		return fmt.Errorf("webapp: register batch %q: already registered", name)
	}
	r.batch[name] = fn
	return nil
}

// MustRegisterBatch is RegisterBatch but panics on error.
func (r *Registry) MustRegisterBatch(name string, fn BatchHandlerFunc) {
	if err := r.RegisterBatch(name, fn); err != nil {
		panic(err)
	}
}

// BatchHandler looks up a batched handler implementation by name.
func (r *Registry) BatchHandler(name string) (BatchHandlerFunc, bool) {
	fn, ok := r.batch[name]
	return fn, ok
}

// Register adds a handler under the given name. Re-registering a name is an
// error: code bundles are immutable app code.
func (r *Registry) Register(name string, fn HandlerFunc) error {
	if fn == nil {
		return fmt.Errorf("webapp: register %q: nil handler", name)
	}
	if _, dup := r.handlers[name]; dup {
		return fmt.Errorf("webapp: register %q: already registered", name)
	}
	r.handlers[name] = fn
	return nil
}

// MustRegister is Register but panics on error; for app-definition tables.
func (r *Registry) MustRegister(name string, fn HandlerFunc) {
	if err := r.Register(name, fn); err != nil {
		panic(err)
	}
}

// Handler looks up a handler by name.
func (r *Registry) Handler(name string) (HandlerFunc, bool) {
	fn, ok := r.handlers[name]
	return fn, ok
}

// Name returns the bundle's name.
func (r *Registry) Name() string { return r.name }

// CodeHash returns the bundle's identity: a hash over its name and sorted
// handler names.
func (r *Registry) CodeHash() string {
	h := sha256.New()
	h.Write([]byte(r.name))
	for _, k := range sortedKeys(r.handlers) {
		h.Write([]byte{0})
		h.Write([]byte(k))
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// Binding wires an (element, event type) pair to a named handler, i.e.
// addEventListener.
type Binding struct {
	Target  string `json:"target"`
	Event   string `json:"event"`
	Handler string `json:"handler"`
}

// App is a running web app: code (registry) plus mutable execution state
// (globals, DOM, bindings, loaded models, pending events). It is
// single-threaded, like a browser page; callers must not share an App
// across goroutines without external synchronization.
type App struct {
	id       string
	registry *Registry
	globals  map[string]Value
	dom      *Node
	bindings []Binding
	queue    []Event
	models   map[string]*nn.Network
}

// NewApp creates an app instance running the given code bundle, with an
// empty "<body>" DOM root.
func NewApp(id string, registry *Registry) (*App, error) {
	if registry == nil {
		return nil, errors.New("webapp: nil registry")
	}
	return &App{
		id:       id,
		registry: registry,
		globals:  make(map[string]Value),
		dom:      NewNode("body", "root"),
		models:   make(map[string]*nn.Network),
	}, nil
}

// ID returns the app instance identity.
func (a *App) ID() string { return a.id }

// Registry returns the app's code bundle.
func (a *App) Registry() *Registry { return a.registry }

// CodeHash returns the app's code identity.
func (a *App) CodeHash() string { return a.registry.CodeHash() }

// SetGlobal assigns a global variable after normalizing v.
func (a *App) SetGlobal(name string, v Value) error {
	n, err := Normalize(v)
	if err != nil {
		return fmt.Errorf("webapp: set global %q: %w", name, err)
	}
	a.globals[name] = n
	return nil
}

// Global reads a global variable.
func (a *App) Global(name string) (Value, bool) {
	v, ok := a.globals[name]
	return v, ok
}

// GlobalNames returns the global variable names in sorted order.
func (a *App) GlobalNames() []string { return sortedKeys(a.globals) }

// Globals returns a deep copy of all globals, for snapshot capture.
func (a *App) Globals() map[string]Value {
	out := make(map[string]Value, len(a.globals))
	for k, v := range a.globals {
		out[k] = DeepCopy(v)
	}
	return out
}

// ReplaceGlobals substitutes the whole global heap (snapshot restore).
func (a *App) ReplaceGlobals(globals map[string]Value) {
	a.globals = make(map[string]Value, len(globals))
	for k, v := range globals {
		a.globals[k] = DeepCopy(v)
	}
}

// DOM returns the root of the app's DOM tree (live, not a copy).
func (a *App) DOM() *Node { return a.dom }

// ReplaceDOM substitutes the DOM tree (snapshot restore).
func (a *App) ReplaceDOM(root *Node) { a.dom = root }

// AddEventListener binds a handler name to (target, event type). The
// handler must exist in the app's registry.
func (a *App) AddEventListener(target, eventType, handler string) error {
	if _, ok := a.registry.Handler(handler); !ok {
		return fmt.Errorf("%w: %q", ErrUnknownHandler, handler)
	}
	a.bindings = append(a.bindings, Binding{Target: target, Event: eventType, Handler: handler})
	return nil
}

// Bindings returns a copy of the app's event bindings.
func (a *App) Bindings() []Binding {
	out := make([]Binding, len(a.bindings))
	copy(out, a.bindings)
	return out
}

// ReplaceBindings substitutes the bindings (snapshot restore). Handlers are
// validated against the registry.
func (a *App) ReplaceBindings(bindings []Binding) error {
	for _, b := range bindings {
		if _, ok := a.registry.Handler(b.Handler); !ok {
			return fmt.Errorf("%w: %q", ErrUnknownHandler, b.Handler)
		}
	}
	a.bindings = make([]Binding, len(bindings))
	copy(a.bindings, bindings)
	return nil
}

// handlersFor resolves every handler bound to an event, in registration
// order — like a browser, all matching listeners fire.
func (a *App) handlersFor(ev Event) []HandlerFunc {
	var fns []HandlerFunc
	for _, b := range a.bindings {
		if b.Target == ev.Target && b.Event == ev.Type {
			if fn, ok := a.registry.Handler(b.Handler); ok {
				fns = append(fns, fn)
			}
		}
	}
	return fns
}

// DispatchEvent enqueues an event for the event loop. The payload is
// normalized to canonical value form when possible so that an event
// captured into a snapshot round-trips exactly; payloads outside the value
// universe are kept as-is (they work locally but cannot be offloaded).
func (a *App) DispatchEvent(ev Event) {
	if ev.Payload != nil {
		if n, err := Normalize(ev.Payload); err == nil {
			ev.Payload = n
		}
	}
	a.queue = append(a.queue, ev)
}

// PendingEvents returns a copy of the queued events.
func (a *App) PendingEvents() []Event {
	out := make([]Event, len(a.queue))
	copy(out, a.queue)
	return out
}

// PeekEvent returns the next queued event without removing it.
func (a *App) PeekEvent() (Event, bool) {
	if len(a.queue) == 0 {
		return Event{}, false
	}
	return a.queue[0], true
}

// PopEvent removes and returns the next queued event.
func (a *App) PopEvent() (Event, bool) {
	if len(a.queue) == 0 {
		return Event{}, false
	}
	ev := a.queue[0]
	a.queue = a.queue[1:]
	return ev, true
}

// ClearEvents drops all queued events (snapshot restore).
func (a *App) ClearEvents() { a.queue = nil }

// Step pops the next event and runs every handler bound to it (in
// registration order), like one turn of the browser event loop. Events
// with no binding are dropped silently, as in a browser. Returns
// ErrQueueEmpty if nothing is pending.
func (a *App) Step() error {
	ev, ok := a.PopEvent()
	if !ok {
		return ErrQueueEmpty
	}
	for _, fn := range a.handlersFor(ev) {
		if err := fn(a, ev); err != nil {
			return fmt.Errorf("webapp: handler for %s@%s: %w", ev.Type, ev.Target, err)
		}
	}
	return nil
}

// Run steps the event loop until the queue drains or maxSteps handlers have
// run, returning the number of handler invocations.
func (a *App) Run(maxSteps int) (int, error) {
	steps := 0
	for steps < maxSteps && len(a.queue) > 0 {
		if err := a.Step(); err != nil {
			return steps, err
		}
		steps++
	}
	if len(a.queue) > 0 {
		return steps, fmt.Errorf("webapp: app %q did not quiesce within %d steps", a.id, maxSteps)
	}
	return steps, nil
}

// LoadModel attaches a DNN model under the given name, like Caffe.js
// loading a pre-trained network into the page.
func (a *App) LoadModel(name string, net *nn.Network) {
	a.models[name] = net
}

// Model returns the loaded model by name.
func (a *App) Model(name string) (*nn.Network, bool) {
	m, ok := a.models[name]
	return m, ok
}

// ModelNames returns loaded model names in sorted order.
func (a *App) ModelNames() []string { return sortedKeys(a.models) }

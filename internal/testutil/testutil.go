// Package testutil holds leak-checking helpers shared by integration and
// soak tests: a goroutine-leak checker based on runtime.Stack snapshot
// diffing, and a pooled-buffer balance assertion over the tensor buffer
// pool's traffic counters.
package testutil

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"websnap/internal/tensor"
)

// TB is the subset of testing.TB the helpers need; tests pass *testing.T.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Cleanup(func())
}

// benignSubstrings mark goroutines that are allowed to outlive a test:
// runtime helpers, the testing framework itself, and this checker.
var benignSubstrings = []string{
	"testing.(*T).Run",
	"testing.Main",
	"testing.tRunner",
	"testing.runTests",
	"testing.(*M).",
	"runtime.goexit",
	"runtime.gc",
	"runtime.MHeap",
	"runtime/trace",
	"signal.signal_recv",
	"testutil.interestingStacks",
	"created by runtime",
	// The net poller and DNS resolver park goroutines that the runtime
	// reuses across tests.
	"internal/poll.runtime_pollWait",
	"net._C2func_getaddrinfo",
}

// interestingStacks returns the stack dump split per goroutine, keeping
// only goroutines that match none of the benign filters.
func interestingStacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var out []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		if g == "" {
			continue
		}
		benign := false
		for _, s := range benignSubstrings {
			if strings.Contains(g, s) {
				benign = true
				break
			}
		}
		if !benign {
			out = append(out, g)
		}
	}
	return out
}

// stackKey reduces one goroutine dump to its identity-free shape (the
// header line "goroutine 123 [running]:" carries the ID, which changes
// every run), so before/after snapshots can be compared as sets.
func stackKey(g string) string {
	if i := strings.IndexByte(g, '\n'); i >= 0 {
		return g[i+1:]
	}
	return g
}

// CheckGoroutines snapshots the current goroutine set and registers a
// cleanup that fails the test if goroutines not present at the snapshot —
// and not matching the benign filters — are still running when the test
// ends. Shutdown is asynchronous (connection handlers unwinding, workers
// draining), so the check retries for up to grace before reporting.
func CheckGoroutines(t TB, grace time.Duration) {
	t.Helper()
	if grace <= 0 {
		grace = 2 * time.Second
	}
	before := make(map[string]int)
	for _, g := range interestingStacks() {
		before[stackKey(g)]++
	}
	t.Cleanup(func() {
		deadline := time.Now().Add(grace)
		var leaked []string
		for {
			leaked = leaked[:0]
			seen := make(map[string]int)
			for _, g := range interestingStacks() {
				key := stackKey(g)
				seen[key]++
				if seen[key] > before[key] {
					leaked = append(leaked, g)
				}
			}
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d goroutine(s) outlived the test:\n%s",
			len(leaked), strings.Join(leaked, "\n\n"))
	})
}

// CheckPoolBalance samples the tensor buffer pool's outstanding count and
// registers a cleanup asserting it grew by at most maxGrowth. Zero growth
// is too strict a contract: pooled ExecContexts legitimately retain their
// scratch buffers between runs, so a bounded allowance covers the contexts
// a test's apps and servers create, while an unbounded climb — a PutBuf
// missing on some error path — still fails.
func CheckPoolBalance(t TB, maxGrowth int64) {
	t.Helper()
	before := tensor.ReadPoolStats().Outstanding()
	t.Cleanup(func() {
		after := tensor.ReadPoolStats().Outstanding()
		if grew := after - before; grew > maxGrowth {
			t.Errorf("pooled-buffer leak: outstanding buffers grew %d (from %d to %d), allowance %d",
				grew, before, after, maxGrowth)
		}
	})
}

// LeakCheck applies both checkers with defaults suitable for integration
// tests: a 2-second goroutine grace and a pool allowance that covers the
// execution contexts a handful of apps retain.
func LeakCheck(t TB) {
	t.Helper()
	CheckGoroutines(t, 2*time.Second)
	CheckPoolBalance(t, 256)
}

// Seed formats a replay seed for failure messages so every soak failure
// tells the reader how to reproduce it.
func Seed(seed int64) string {
	return fmt.Sprintf("replay with seed %d", seed)
}

package testutil

import (
	"strings"
	"testing"
	"time"

	"websnap/internal/tensor"
)

// fakeTB records failures and lets the test drive cleanup explicitly.
type fakeTB struct {
	errors   []string
	cleanups []func()
}

func (f *fakeTB) Helper() {}
func (f *fakeTB) Errorf(format string, args ...any) {
	f.errors = append(f.errors, strings.TrimSpace(format))
}
func (f *fakeTB) Cleanup(fn func()) { f.cleanups = append(f.cleanups, fn) }
func (f *fakeTB) runCleanups() {
	for i := len(f.cleanups) - 1; i >= 0; i-- {
		f.cleanups[i]()
	}
}

func TestCheckGoroutinesDetectsLeak(t *testing.T) {
	ft := &fakeTB{}
	CheckGoroutines(ft, 50*time.Millisecond)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { // the leak: parked until stop closes
		defer close(done)
		<-stop
	}()
	ft.runCleanups()
	close(stop)
	<-done
	if len(ft.errors) == 0 {
		t.Fatal("leaked goroutine not detected")
	}
	if !strings.Contains(ft.errors[0], "goroutine leak") {
		t.Errorf("error = %q", ft.errors[0])
	}
}

func TestCheckGoroutinesPassesWhenClean(t *testing.T) {
	ft := &fakeTB{}
	CheckGoroutines(ft, 50*time.Millisecond)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	ft.runCleanups()
	if len(ft.errors) != 0 {
		t.Fatalf("clean run reported: %v", ft.errors)
	}
}

func TestCheckGoroutinesWaitsForShutdown(t *testing.T) {
	// A goroutine that exits within the grace window must not be reported.
	ft := &fakeTB{}
	CheckGoroutines(ft, time.Second)
	go func() { time.Sleep(50 * time.Millisecond) }()
	ft.runCleanups()
	if len(ft.errors) != 0 {
		t.Fatalf("slow-exiting goroutine reported as leak: %v", ft.errors)
	}
}

func TestCheckPoolBalance(t *testing.T) {
	ft := &fakeTB{}
	CheckPoolBalance(ft, 2)
	// Within allowance: two buffers retained.
	a, b := tensor.GetBuf(64), tensor.GetBuf(64)
	ft.runCleanups()
	if len(ft.errors) != 0 {
		t.Fatalf("growth within allowance reported: %v", ft.errors)
	}
	// Beyond allowance: leak detected.
	ft = &fakeTB{}
	CheckPoolBalance(ft, 2)
	var held [][]float32
	for i := 0; i < 5; i++ {
		held = append(held, tensor.GetBuf(64))
	}
	ft.runCleanups()
	if len(ft.errors) == 0 {
		t.Fatal("pool growth beyond allowance not detected")
	}
	tensor.PutBuf(a)
	tensor.PutBuf(b)
	for _, s := range held {
		tensor.PutBuf(s)
	}
}

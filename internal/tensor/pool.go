package tensor

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"unsafe"
)

// bufPools recycles float32 scratch buffers in power-of-two size classes.
// Index i holds buffers of capacity exactly 1<<i. The execution engine
// allocates its arenas (ping-pong intermediates, im2col scratch, packed
// GEMM panels) through this pool so steady-state inference performs no
// large allocations.
//
// The pools store *pooledF32 / *pooledI8 headers rather than raw slices:
// boxing a pointer into sync.Pool's interface is allocation-free, whereas
// boxing a slice header allocates, and the packed GEMM kernels check
// buffers in and out on every call.
var bufPools [33]sync.Pool

// bufPoolsI8 recycles int8 buffers (quantized activations and packed int8
// panels) in the same power-of-two size-class scheme.
var bufPoolsI8 [33]sync.Pool

type pooledF32 struct{ s []float32 }

type pooledI8 struct{ s []int8 }

// hdrPoolF32 and hdrPoolI8 recycle the header structs themselves, so a
// steady-state Get/Put cycle performs zero allocations.
var hdrPoolF32 = sync.Pool{New: func() any { return new(pooledF32) }}

var hdrPoolI8 = sync.Pool{New: func() any { return new(pooledI8) }}

// poolGets and poolPuts count pool traffic for leak accounting: the
// difference is how many pooled buffers are currently held by callers.
// Holders with retained scratch (pooled ExecContexts) keep the difference
// legitimately above zero, so leak checks assert bounded growth over a
// repeated workload rather than a zero balance. Both the float32 and the
// int8 pool feed the same counters, so one balance covers every pooled
// buffer class.
var poolGets, poolPuts atomic.Int64

// PoolStats reports cumulative pool traffic. Outstanding is Gets-Puts: the
// number of pooled buffers currently checked out.
type PoolStats struct {
	Gets, Puts int64
}

// Outstanding is the number of buffers currently held by callers.
func (s PoolStats) Outstanding() int64 { return s.Gets - s.Puts }

// ReadPoolStats returns the current cumulative pool counters.
func ReadPoolStats() PoolStats {
	return PoolStats{Gets: poolGets.Load(), Puts: poolPuts.Load()}
}

// BufAlign is the byte alignment of every pooled buffer's base pointer.
// Packed GEMM panels rely on it: a 64-byte base keeps each MRxKC / NRxKC
// panel sliver on whole cache lines, so the micro-kernel never issues a
// split-line load and a future vectorized kernel can use aligned moves.
const BufAlign = 64

// alignUp returns the number of leading elements (elemSize bytes each) to
// skip so the slice data starts on a BufAlign boundary.
func alignUp(p unsafe.Pointer, elemSize int) int {
	rem := int(uintptr(p) & (BufAlign - 1))
	if rem == 0 {
		return 0
	}
	return (BufAlign - rem) / elemSize
}

// alignedFloats allocates a float32 slice with capacity exactly 1<<class
// whose base pointer is BufAlign-aligned. The over-allocation needed to
// find the boundary is hidden behind the three-index slice: PutBuf sees a
// power-of-two capacity and recovers the class, and the alignment survives
// pool recycling because the base pointer never changes.
func alignedFloats(class int) []float32 {
	n := 1 << class
	raw := make([]float32, n+BufAlign/4)
	off := alignUp(unsafe.Pointer(&raw[0]), 4)
	return raw[off : off+n : off+n]
}

func alignedBytes(class int) []int8 {
	n := 1 << class
	raw := make([]int8, n+BufAlign)
	off := alignUp(unsafe.Pointer(&raw[0]), 1)
	return raw[off : off+n : off+n]
}

// GetBuf returns a float32 buffer with len n from the pool, allocating a
// power-of-two-capacity slice when the pool is empty. The buffer's base
// pointer is always BufAlign-byte aligned — packed GEMM panels and the
// int32 accumulator views of the quantized path depend on this guarantee.
// Contents are unspecified — callers that rely on zeroing must clear it
// themselves. Return the buffer with PutBuf when done.
func GetBuf(n int) []float32 {
	if n <= 0 {
		return nil
	}
	class := bits.Len(uint(n - 1))
	if class >= len(bufPools) {
		return make([]float32, n)
	}
	poolGets.Add(1)
	if v := bufPools[class].Get(); v != nil {
		h := v.(*pooledF32)
		s := h.s[:n]
		h.s = nil
		hdrPoolF32.Put(h)
		return s
	}
	return alignedFloats(class)[:n]
}

// PutBuf recycles a buffer obtained from GetBuf. Buffers whose capacity
// is not an exact power of two (not pool-allocated) are dropped.
func PutBuf(s []float32) {
	c := cap(s)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	class := bits.Len(uint(c - 1))
	if class >= len(bufPools) {
		return
	}
	poolPuts.Add(1)
	h := hdrPoolF32.Get().(*pooledF32)
	h.s = s[:c]
	bufPools[class].Put(h)
}

// GetBufI8 returns an int8 buffer with len n from the pool with the same
// power-of-two size classes, BufAlign-aligned base, and leak accounting as
// GetBuf. The quantized forward path draws its activation images and
// packed int8 panels from this pool. Return with PutBufI8.
func GetBufI8(n int) []int8 {
	if n <= 0 {
		return nil
	}
	class := bits.Len(uint(n - 1))
	if class >= len(bufPoolsI8) {
		return make([]int8, n)
	}
	poolGets.Add(1)
	if v := bufPoolsI8[class].Get(); v != nil {
		h := v.(*pooledI8)
		s := h.s[:n]
		h.s = nil
		hdrPoolI8.Put(h)
		return s
	}
	return alignedBytes(class)[:n]
}

// PutBufI8 recycles a buffer obtained from GetBufI8.
func PutBufI8(s []int8) {
	c := cap(s)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	class := bits.Len(uint(c - 1))
	if class >= len(bufPoolsI8) {
		return
	}
	poolPuts.Add(1)
	h := hdrPoolI8.Get().(*pooledI8)
	h.s = s[:c]
	bufPoolsI8[class].Put(h)
}

// AsInt32 reinterprets a float32 slice as int32 in place (same length,
// same memory). The quantized kernels accumulate int32 partial sums
// directly in the destination tensor's storage and dequantize in a final
// pass, so no separate accumulator buffer exists; float32 and int32 have
// identical size and alignment, making the view always valid.
func AsInt32(s []float32) []int32 {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&s[0])), len(s))
}

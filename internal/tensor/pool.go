package tensor

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// bufPools recycles float32 scratch buffers in power-of-two size classes.
// Index i holds buffers of capacity exactly 1<<i. The execution engine
// allocates its arenas (ping-pong intermediates, im2col scratch) through
// this pool so steady-state inference performs no large allocations.
var bufPools [33]sync.Pool

// poolGets and poolPuts count pool traffic for leak accounting: the
// difference is how many pooled buffers are currently held by callers.
// Holders with retained scratch (pooled ExecContexts) keep the difference
// legitimately above zero, so leak checks assert bounded growth over a
// repeated workload rather than a zero balance.
var poolGets, poolPuts atomic.Int64

// PoolStats reports cumulative pool traffic. Outstanding is Gets-Puts: the
// number of pooled buffers currently checked out.
type PoolStats struct {
	Gets, Puts int64
}

// Outstanding is the number of buffers currently held by callers.
func (s PoolStats) Outstanding() int64 { return s.Gets - s.Puts }

// ReadPoolStats returns the current cumulative pool counters.
func ReadPoolStats() PoolStats {
	return PoolStats{Gets: poolGets.Load(), Puts: poolPuts.Load()}
}

// GetBuf returns a float32 buffer with len n from the pool, allocating a
// power-of-two-capacity slice when the pool is empty. Contents are
// unspecified — callers that rely on zeroing must clear it themselves.
// Return the buffer with PutBuf when done.
func GetBuf(n int) []float32 {
	if n <= 0 {
		return nil
	}
	class := bits.Len(uint(n - 1))
	if class >= len(bufPools) {
		return make([]float32, n)
	}
	poolGets.Add(1)
	if v := bufPools[class].Get(); v != nil {
		return v.([]float32)[:n]
	}
	return make([]float32, n, 1<<class)
}

// PutBuf recycles a buffer obtained from GetBuf. Buffers whose capacity
// is not an exact power of two (not pool-allocated) are dropped.
func PutBuf(s []float32) {
	c := cap(s)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	class := bits.Len(uint(c - 1))
	if class >= len(bufPools) {
		return
	}
	poolPuts.Add(1)
	bufPools[class].Put(s[:c]) //nolint:staticcheck // slice header, not pointer: the value is small
}

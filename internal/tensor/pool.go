package tensor

import (
	"math/bits"
	"sync"
)

// bufPools recycles float32 scratch buffers in power-of-two size classes.
// Index i holds buffers of capacity exactly 1<<i. The execution engine
// allocates its arenas (ping-pong intermediates, im2col scratch) through
// this pool so steady-state inference performs no large allocations.
var bufPools [33]sync.Pool

// GetBuf returns a float32 buffer with len n from the pool, allocating a
// power-of-two-capacity slice when the pool is empty. Contents are
// unspecified — callers that rely on zeroing must clear it themselves.
// Return the buffer with PutBuf when done.
func GetBuf(n int) []float32 {
	if n <= 0 {
		return nil
	}
	class := bits.Len(uint(n - 1))
	if class >= len(bufPools) {
		return make([]float32, n)
	}
	if v := bufPools[class].Get(); v != nil {
		return v.([]float32)[:n]
	}
	return make([]float32, n, 1<<class)
}

// PutBuf recycles a buffer obtained from GetBuf. Buffers whose capacity
// is not an exact power of two (not pool-allocated) are dropped.
func PutBuf(s []float32) {
	c := cap(s)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	class := bits.Len(uint(c - 1))
	if class >= len(bufPools) {
		return
	}
	bufPools[class].Put(s[:c]) //nolint:staticcheck // slice header, not pointer: the value is small
}

// Package tensor provides N-dimensional float32 tensors used by the neural
// network engine. Tensors are dense, row-major, and deliberately simple: the
// goal is a faithful, dependency-free substrate for CNN forward execution,
// not a general autograd system.
package tensor

import (
	"errors"
	"fmt"
)

// ErrShapeMismatch is returned when an operation receives tensors whose
// shapes are incompatible.
var ErrShapeMismatch = errors.New("tensor: shape mismatch")

// Tensor is a dense, row-major N-dimensional array of float32.
//
// The zero value is an empty tensor with no dimensions and no data.
type Tensor struct {
	shape []int
	data  []float32
}

// New returns a zero-filled tensor with the given shape. A dimension of zero
// or below is invalid and yields an error.
func New(shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			return nil, fmt.Errorf("tensor: invalid dimension %d in shape %v", d, shape)
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: make([]float32, n)}, nil
}

// MustNew is New but panics on invalid shape. It is intended for package
// initialization and tests where the shape is a compile-time constant.
func MustNew(shape ...int) *Tensor {
	t, err := New(shape...)
	if err != nil {
		panic(err)
	}
	return t
}

// FromSlice wraps data in a tensor with the given shape. The data slice is
// used directly (not copied); len(data) must equal the shape's volume.
func FromSlice(data []float32, shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			return nil, fmt.Errorf("tensor: invalid dimension %d in shape %v", d, shape)
		}
		n *= d
	}
	if len(data) != n {
		return nil, fmt.Errorf("tensor: data length %d does not match shape %v (volume %d): %w",
			len(data), shape, n, ErrShapeMismatch)
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: data}, nil
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int {
	s := make([]int, len(t.shape))
	copy(s, t.shape)
	return s
}

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the underlying storage. Mutating the returned slice mutates
// the tensor; callers that need isolation should Clone first.
func (t *Tensor) Data() []float32 { return t.data }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	d := make([]float32, len(t.data))
	copy(d, t.data)
	s := make([]int, len(t.shape))
	copy(s, t.shape)
	return &Tensor{shape: s, data: d}
}

// Reshape returns a view of the same data with a new shape. The volume must
// match; the data is shared, not copied.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			return nil, fmt.Errorf("tensor: invalid dimension %d in shape %v", d, shape)
		}
		n *= d
	}
	if n != len(t.data) {
		return nil, fmt.Errorf("tensor: cannot reshape volume %d to %v: %w", len(t.data), shape, ErrShapeMismatch)
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: t.data}, nil
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float32 {
	return t.data[t.offset(idx)]
}

// Set assigns the element at the given multi-dimensional index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d != tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if a.Rank() != b.Rank() {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}

// Volume returns the product of the dimensions of shape.
func Volume(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

// Fill sets every element of t to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Add accumulates src into t elementwise.
func (t *Tensor) Add(src *Tensor) error {
	if !SameShape(t, src) {
		return fmt.Errorf("tensor: add %v to %v: %w", src.shape, t.shape, ErrShapeMismatch)
	}
	for i, v := range src.data {
		t.data[i] += v
	}
	return nil
}

// Scale multiplies every element of t by v.
func (t *Tensor) Scale(v float32) {
	for i := range t.data {
		t.data[i] *= v
	}
}

// MaxIndex returns the index of the maximum element and its value. For an
// empty tensor it returns (-1, 0).
func (t *Tensor) MaxIndex() (int, float32) {
	if len(t.data) == 0 {
		return -1, 0
	}
	best, bv := 0, t.data[0]
	for i, v := range t.data[1:] {
		if v > bv {
			best, bv = i+1, v
		}
	}
	return best, bv
}

// SumSquaredDiff returns the sum of squared differences between a and b.
func SumSquaredDiff(a, b *Tensor) (float64, error) {
	if !SameShape(a, b) {
		return 0, fmt.Errorf("tensor: diff %v vs %v: %w", a.shape, b.shape, ErrShapeMismatch)
	}
	var s float64
	for i := range a.data {
		d := float64(a.data[i] - b.data[i])
		s += d * d
	}
	return s, nil
}

// String renders a compact description (shape only, to keep logs readable).
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v", t.shape)
}

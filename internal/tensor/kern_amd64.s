//go:build amd64

#include "textflag.h"

// func hasAVX() bool
// CPUID leaf 1: ECX bit 27 (OSXSAVE) and bit 28 (AVX), then XGETBV to
// confirm the OS enables XMM+YMM state (XCR0 bits 1 and 2).
TEXT ·hasAVX(SB), NOSPLIT, $0-1
	MOVL $1, AX
	CPUID
	ANDL $0x18000000, CX
	CMPL CX, $0x18000000
	JNE  noavx
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  noavx
	MOVB $1, ret+0(FP)
	RET

noavx:
	MOVB $0, ret+0(FP)
	RET

// func hasAVX2() bool
// CPUID leaf 7 subleaf 0: EBX bit 5. Callers already require hasAVX, so
// YMM OS support is established.
TEXT ·hasAVX2(SB), NOSPLIT, $0-1
	MOVL $7, AX
	XORL CX, CX
	CPUID
	SHRL $5, BX
	ANDL $1, BX
	MOVB BX, ret+0(FP)
	RET

// func kern4x8AVX(dst *float32, ldd int, ap, bp *float32, kc int)
//
// One full 4x8 register tile accumulated across a KC chunk. The four
// accumulator rows live in Y0-Y3 for the whole k loop; each k step
// broadcasts the four packed A values and issues a separate vmulps and
// vaddps per row — never a fused multiply-add — so every output element
// receives exactly the scalar kernel's operation sequence (one rounding
// per multiply, one per add, k strictly increasing) and the results are
// bit-identical to kern4x8.
TEXT ·kern4x8AVX(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ ldd+8(FP), SI
	SHLQ $2, SI                 // row stride in bytes
	MOVQ ap+16(FP), R8
	MOVQ bp+24(FP), R9
	MOVQ kc+32(FP), CX

	LEAQ (DI)(SI*2), R10        // &dst row 2
	VMOVUPS (DI), Y0
	VMOVUPS (DI)(SI*1), Y1
	VMOVUPS (R10), Y2
	VMOVUPS (R10)(SI*1), Y3

	MOVQ CX, DX
	SHRQ $1, DX                 // k pairs (unrolled by 2)
	JZ   ftail

fpair:
	VMOVUPS (R9), Y5            // b row p
	VBROADCASTSS (R8), Y4
	VMULPS Y5, Y4, Y6
	VADDPS Y6, Y0, Y0
	VBROADCASTSS 4(R8), Y4
	VMULPS Y5, Y4, Y6
	VADDPS Y6, Y1, Y1
	VBROADCASTSS 8(R8), Y4
	VMULPS Y5, Y4, Y6
	VADDPS Y6, Y2, Y2
	VBROADCASTSS 12(R8), Y4
	VMULPS Y5, Y4, Y6
	VADDPS Y6, Y3, Y3

	VMOVUPS 32(R9), Y7          // b row p+1
	VBROADCASTSS 16(R8), Y4
	VMULPS Y7, Y4, Y6
	VADDPS Y6, Y0, Y0
	VBROADCASTSS 20(R8), Y4
	VMULPS Y7, Y4, Y6
	VADDPS Y6, Y1, Y1
	VBROADCASTSS 24(R8), Y4
	VMULPS Y7, Y4, Y6
	VADDPS Y6, Y2, Y2
	VBROADCASTSS 28(R8), Y4
	VMULPS Y7, Y4, Y6
	VADDPS Y6, Y3, Y3

	ADDQ $32, R8
	ADDQ $64, R9
	DECQ DX
	JNZ  fpair

ftail:
	ANDQ $1, CX                 // odd trailing k step
	JZ   fdone
	VMOVUPS (R9), Y5
	VBROADCASTSS (R8), Y4
	VMULPS Y5, Y4, Y6
	VADDPS Y6, Y0, Y0
	VBROADCASTSS 4(R8), Y4
	VMULPS Y5, Y4, Y6
	VADDPS Y6, Y1, Y1
	VBROADCASTSS 8(R8), Y4
	VMULPS Y5, Y4, Y6
	VADDPS Y6, Y2, Y2
	VBROADCASTSS 12(R8), Y4
	VMULPS Y5, Y4, Y6
	VADDPS Y6, Y3, Y3

fdone:
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, (DI)(SI*1)
	VMOVUPS Y2, (R10)
	VMOVUPS Y3, (R10)(SI*1)
	VZEROUPPER
	RET

// func kern4x8I8AVX2(dst *int32, ldd int, ap, bp *int8, kc int)
//
// Int8 4x8 tile with int32 accumulators in Y0-Y3. k steps are consumed
// two at a time: the two packed B rows widen to int16 and interleave so
// each int32 lane holds one column's (p, p+1) pair, each A row's pair
// assembles into one broadcast dword, and vpmaddwd produces the exact
// two-product int32 partial sum per column. Integer arithmetic is exact,
// so pairing changes nothing: results equal the scalar kernel's.
TEXT ·kern4x8I8AVX2(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ ldd+8(FP), SI
	SHLQ $2, SI
	MOVQ ap+16(FP), R8
	MOVQ bp+24(FP), R9
	MOVQ kc+32(FP), R11

	LEAQ (DI)(SI*2), R10
	VMOVDQU (DI), Y0
	VMOVDQU (DI)(SI*1), Y1
	VMOVDQU (R10), Y2
	VMOVDQU (R10)(SI*1), Y3

	MOVQ R11, DX
	SHRQ $1, DX
	JZ   itail

ipair:
	VPMOVSXBW (R9), X5          // b row p   -> 8 x int16
	VPMOVSXBW 8(R9), X6         // b row p+1 -> 8 x int16
	VPUNPCKLWD X6, X5, X7       // cols 0-3 as (p, p+1) int16 pairs
	VPUNPCKHWD X6, X5, X8       // cols 4-7
	VINSERTI128 $1, X8, Y7, Y7  // all 8 column pairs in one YMM

	MOVBLSX 0(R8), AX           // row 0 pair: a[0][p] | a[0][p+1]<<16
	MOVBLSX 4(R8), BX
	SHLL $16, BX
	ANDL $0xFFFF, AX
	ORL  BX, AX
	VMOVD AX, X4
	VPBROADCASTD X4, Y4
	VPMADDWD Y7, Y4, Y5
	VPADDD Y5, Y0, Y0

	MOVBLSX 1(R8), AX
	MOVBLSX 5(R8), BX
	SHLL $16, BX
	ANDL $0xFFFF, AX
	ORL  BX, AX
	VMOVD AX, X4
	VPBROADCASTD X4, Y4
	VPMADDWD Y7, Y4, Y5
	VPADDD Y5, Y1, Y1

	MOVBLSX 2(R8), AX
	MOVBLSX 6(R8), BX
	SHLL $16, BX
	ANDL $0xFFFF, AX
	ORL  BX, AX
	VMOVD AX, X4
	VPBROADCASTD X4, Y4
	VPMADDWD Y7, Y4, Y5
	VPADDD Y5, Y2, Y2

	MOVBLSX 3(R8), AX
	MOVBLSX 7(R8), BX
	SHLL $16, BX
	ANDL $0xFFFF, AX
	ORL  BX, AX
	VMOVD AX, X4
	VPBROADCASTD X4, Y4
	VPMADDWD Y7, Y4, Y5
	VPADDD Y5, Y3, Y3

	ADDQ $8, R8
	ADDQ $16, R9
	DECQ DX
	JNZ  ipair

itail:
	ANDQ $1, R11                // odd trailing k step: pair partner is 0
	JZ   idone
	VPMOVSXBW (R9), X5
	VPXOR X6, X6, X6
	VPUNPCKLWD X6, X5, X7
	VPUNPCKHWD X6, X5, X8
	VINSERTI128 $1, X8, Y7, Y7

	MOVBLSX 0(R8), AX
	ANDL $0xFFFF, AX
	VMOVD AX, X4
	VPBROADCASTD X4, Y4
	VPMADDWD Y7, Y4, Y5
	VPADDD Y5, Y0, Y0

	MOVBLSX 1(R8), AX
	ANDL $0xFFFF, AX
	VMOVD AX, X4
	VPBROADCASTD X4, Y4
	VPMADDWD Y7, Y4, Y5
	VPADDD Y5, Y1, Y1

	MOVBLSX 2(R8), AX
	ANDL $0xFFFF, AX
	VMOVD AX, X4
	VPBROADCASTD X4, Y4
	VPMADDWD Y7, Y4, Y5
	VPADDD Y5, Y2, Y2

	MOVBLSX 3(R8), AX
	ANDL $0xFFFF, AX
	VMOVD AX, X4
	VPBROADCASTD X4, Y4
	VPMADDWD Y7, Y4, Y5
	VPADDD Y5, Y3, Y3

idone:
	VMOVDQU Y0, (DI)
	VMOVDQU Y1, (DI)(SI*1)
	VMOVDQU Y2, (R10)
	VMOVDQU Y3, (R10)(SI*1)
	VZEROUPPER
	RET

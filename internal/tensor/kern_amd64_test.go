//go:build amd64

package tensor

import "testing"

// TestKernAVXMatchesScalar pins the assembly micro-kernels to their
// scalar oracles on raw packed panels: the float32 kernel must be
// bit-identical (same mul/add sequence per element), the int8 kernel
// exactly equal (int32 arithmetic is exact). Odd and even kc exercise
// the unrolled pair loop and the trailing step.
func TestKernAVXMatchesScalar(t *testing.T) {
	if !haveAVX {
		t.Skip("no AVX on this machine")
	}
	for _, kc := range []int{1, 2, 3, 7, 64, 255, 256} {
		ap := make([]float32, packMR*kc)
		bp := make([]float32, packNR*kc)
		fillSeq(ap, 3)
		fillSeq(bp, 5)
		const ldd = packNR + 3 // non-contiguous rows, like a dst sub-tile
		ref := make([]float32, packMR*ldd)
		got := make([]float32, packMR*ldd)
		fillSeq(ref, 7)
		copy(got, ref)
		kern4x8(ref[0:], ref[ldd:], ref[2*ldd:], ref[3*ldd:], ap, bp, kc)
		kern4x8AVX(&got[0], ldd, &ap[0], &bp[0], kc)
		for i := range ref {
			if ref[i] != got[i] {
				t.Fatalf("kc=%d: float kernel diverges at %d: %g vs %g", kc, i, ref[i], got[i])
			}
		}

		if !haveAVX2 {
			continue
		}
		api := make([]int8, packMR*kc)
		bpi := make([]int8, packNR*kc)
		for i := range api {
			api[i] = int8(i*37 + 11)
		}
		for i := range bpi {
			bpi[i] = int8(i*53 + 29)
		}
		refI := make([]int32, packMR*ldd)
		gotI := make([]int32, packMR*ldd)
		for i := range refI {
			refI[i] = int32(i) - 40
		}
		copy(gotI, refI)
		kern4x8i8(refI[0:], refI[ldd:], refI[2*ldd:], refI[3*ldd:], api, bpi, kc)
		kern4x8I8AVX2(&gotI[0], ldd, &api[0], &bpi[0], kc)
		for i := range refI {
			if refI[i] != gotI[i] {
				t.Fatalf("kc=%d: int8 kernel diverges at %d: %d vs %d", kc, i, refI[i], gotI[i])
			}
		}
	}
}

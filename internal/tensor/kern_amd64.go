//go:build amd64

package tensor

// Runtime SIMD dispatch for the packed micro-kernels. The assembly
// kernels consume the exact panel layouts documented in pack.go and
// replay the scalar kernels' arithmetic: kern4x8AVX issues one vmulps +
// one vaddps per packed product (never a fused multiply-add), so every
// output element sees the same single-rounded float32 operation sequence
// in the same k order as kern4x8 — the two are bit-identical, and the
// scalar kernel doubles as the oracle in tests. The int8 kernel
// accumulates in exact int32 arithmetic where order is immaterial.

// haveAVX gates the float32 micro-kernel (needs AVX YMM state);
// haveAVX2 gates the int8 micro-kernel (needs AVX2 integer YMM ops).
var (
	haveAVX  = hasAVX()
	haveAVX2 = haveAVX && hasAVX2()
)

// hasAVX reports CPU+OS support for AVX (CPUID leaf 1 OSXSAVE+AVX and
// XCR0 enabling XMM+YMM state). Implemented in kern_amd64.s.
func hasAVX() bool

// hasAVX2 reports CPUID leaf 7 AVX2 support. Implemented in kern_amd64.s.
func hasAVX2() bool

// kern4x8AVX accumulates one full MR x NR (4x8) dst tile across a KC
// chunk: dst rows start at dst with row stride ldd (in elements), ap is
// a packed A panel (kc groups of 4), bp a packed B sliver (kc groups of
// 8). Implemented in kern_amd64.s.
//
//go:noescape
func kern4x8AVX(dst *float32, ldd int, ap, bp *float32, kc int)

// kern4x8I8AVX2 is the int8 twin: int32 accumulation into a full 4x8
// tile, widening the packed int8 panels on load. Implemented in
// kern_amd64.s.
//
//go:noescape
func kern4x8I8AVX2(dst *int32, ldd int, ap, bp *int8, kc int)

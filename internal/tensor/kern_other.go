//go:build !amd64

package tensor

// Non-amd64 builds always take the portable scalar micro-kernels; the
// results are bit-identical to the assembly paths by the determinism
// contract (see kern_amd64.go), so cross-platform outputs match.
const (
	haveAVX  = false
	haveAVX2 = false
)

func kern4x8AVX(dst *float32, ldd int, ap, bp *float32, kc int) {
	panic("tensor: kern4x8AVX called without AVX support")
}

func kern4x8I8AVX2(dst *int32, ldd int, ap, bp *int8, kc int) {
	panic("tensor: kern4x8I8AVX2 called without AVX2 support")
}

package tensor

import (
	"runtime"
	"sync"
)

// gemmParallelFLOPs is the multiply-add count above which Gemm fans row
// blocks out across CPUs. Below it the goroutine hand-off costs more than
// it saves. The value matches the convolution engine's historical
// parallel threshold so algorithm choices stay comparable across layers.
const gemmParallelFLOPs = 4 << 20

// Gemm computes dst = a·b (+ bias), the one matrix kernel every dense
// layer in the engine routes through: a is m×k, b is k×n, dst is m×n,
// all row-major float32. bias, when non-nil, has length m and seeds each
// output row (dst[i][j] starts at bias[i]); a nil bias seeds rows with
// zero. dst is fully overwritten.
//
// The kernel is blocked four output rows at a time so each streamed row
// of b is reused from registers, and row blocks are fanned out across
// CPUs when the problem is large enough to amortize the goroutines.
// Determinism contract: for every output element the accumulation order
// is strictly increasing in k, independent of blocking and worker count,
// so results are bit-identical across machines, GOMAXPROCS settings, and
// the n==1 vector fast path.
func Gemm(dst, a, b, bias []float32, m, k, n int) {
	if m <= 0 || n <= 0 {
		return
	}
	workers := 1
	if flops := 2 * int64(m) * int64(k) * int64(n); flops > gemmParallelFLOPs {
		workers = runtime.GOMAXPROCS(0)
		if mx := (m + 3) / 4; workers > mx {
			workers = mx
		}
	}
	if workers <= 1 {
		gemmRows(dst, a, b, bias, k, n, 0, m)
		return
	}
	// Chunks are 4-row aligned so every full block stays on the fast
	// 4-row path; each worker owns a disjoint row range of dst.
	chunk := ((m+workers-1)/workers + 3) &^ 3
	var wg sync.WaitGroup
	for lo := 0; lo < m; lo += chunk {
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			gemmRows(dst, a, b, bias, k, n, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// gemmRows computes output rows [lo, hi).
func gemmRows(dst, a, b, bias []float32, k, n, lo, hi int) {
	if n == 1 {
		gemvRows(dst, a, b, bias, k, lo, hi)
		return
	}
	i := lo
	for ; i+4 <= hi; i += 4 {
		gemm4(dst, a, b, bias, k, n, i)
	}
	for ; i < hi; i++ {
		gemm1(dst, a, b, bias, k, n, i)
	}
}

// gemm4 computes four adjacent output rows at once: each row of b is
// loaded once and applied to four accumulator rows, quartering the
// memory traffic of the row-at-a-time kernel.
func gemm4(dst, a, b, bias []float32, k, n, i int) {
	r0 := dst[(i+0)*n : (i+0)*n+n]
	r1 := dst[(i+1)*n : (i+1)*n+n]
	r2 := dst[(i+2)*n : (i+2)*n+n]
	r3 := dst[(i+3)*n : (i+3)*n+n]
	var s0, s1, s2, s3 float32
	if bias != nil {
		s0, s1, s2, s3 = bias[i], bias[i+1], bias[i+2], bias[i+3]
	}
	for j := range r0 {
		r0[j] = s0
		r1[j] = s1
		r2[j] = s2
		r3[j] = s3
	}
	a0 := a[(i+0)*k : (i+0)*k+k]
	a1 := a[(i+1)*k : (i+1)*k+k]
	a2 := a[(i+2)*k : (i+2)*k+k]
	a3 := a[(i+3)*k : (i+3)*k+k]
	for kk := 0; kk < k; kk++ {
		brow := b[kk*n : kk*n+n]
		c0, c1, c2, c3 := a0[kk], a1[kk], a2[kk], a3[kk]
		for j, v := range brow {
			r0[j] += c0 * v
			r1[j] += c1 * v
			r2[j] += c2 * v
			r3[j] += c3 * v
		}
	}
}

// gemm1 computes one output row (the <4-row remainder path).
func gemm1(dst, a, b, bias []float32, k, n, i int) {
	row := dst[i*n : i*n+n]
	var s float32
	if bias != nil {
		s = bias[i]
	}
	for j := range row {
		row[j] = s
	}
	arow := a[i*k : i*k+k]
	for kk := 0; kk < k; kk++ {
		c := arow[kk]
		brow := b[kk*n : kk*n+n]
		for j, v := range brow {
			row[j] += c * v
		}
	}
}

// gemvRows is the n==1 fast path: dst[o] = bias[o] + a[o]·x, a plain dot
// product per output row with no per-column loop overhead.
func gemvRows(dst, a, x, bias []float32, k, lo, hi int) {
	x = x[:k]
	for o := lo; o < hi; o++ {
		row := a[o*k : o*k+k]
		var sum float32
		if bias != nil {
			sum = bias[o]
		}
		for i, v := range x {
			sum += v * row[i]
		}
		dst[o] = sum
	}
}

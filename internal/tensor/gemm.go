package tensor

import (
	"runtime"
	"sync"
)

// gemmParallelFLOPs is the multiply-add count above which Gemm fans column
// blocks out across CPUs. Below it the goroutine hand-off costs more than
// it saves. The value matches the convolution engine's historical
// parallel threshold so algorithm choices stay comparable across layers.
const gemmParallelFLOPs = 4 << 20

// gemmPackedFLOPs is the multiply-add count above which Gemm routes
// through the packed blocked kernel. Below it the panel-packing pass costs
// more than the cache locality it buys, and the streaming reference kernel
// wins.
const gemmPackedFLOPs = 1 << 17

// Gemm computes dst = a·b (+ bias), the one matrix kernel every dense
// layer in the engine routes through: a is m×k, b is k×n, dst is m×n,
// all row-major float32. bias, when non-nil, has length m and seeds each
// output row (dst[i][j] starts at bias[i]); a nil bias seeds rows with
// zero. dst is fully overwritten.
//
// Large problems run the packed blocked kernel: both operands are
// repacked into register-tile panels (MR×KC for a, KC×NR for b) in pooled
// aligned buffers, and an MR×NR micro-kernel keeps every accumulator in a
// local across the whole k loop, so dst is touched once per KC block
// instead of once per k step. Small problems keep the streaming reference
// kernel, and n==1 takes a plain dot-product path.
//
// Determinism contract: for every output element the accumulation order
// is strictly increasing in k with one float32 addition per product,
// independent of kernel choice, blocking, and worker count, so results
// are bit-identical across machines, GOMAXPROCS settings, and the packed,
// unpacked, and n==1 paths.
func Gemm(dst, a, b, bias []float32, m, k, n int) {
	if m <= 0 || n <= 0 {
		return
	}
	if n >= packNR && m >= packMR && 2*int64(m)*int64(k)*int64(n) >= gemmPackedFLOPs {
		var pa PackedA
		packAPooledInto(&pa, a, m, k, k)
		gemmPackedDrive(dst, &pa, bSrc{mat: b, ldb: n}, bias, n)
		pa.Release()
		return
	}
	gemmRef(dst, a, b, bias, m, k, n)
}

// GemmConv computes a direct (im2col-free) convolution as an implicit
// GEMM: dst = w · B(src) + bias, where w is [m, InC*K*K] filter weights
// and B(src) is the virtual im2col matrix described by g, gathered into
// packed panels one cache block at a time. Values and per-element
// accumulation order match im2col + Gemm exactly, so the two kernels are
// bit-identical; this one never materializes the column matrix.
func GemmConv(dst, w, bias []float32, m int, src []float32, g ConvGeom) {
	k, n := g.Rows(), g.Cols()
	if m <= 0 || n <= 0 {
		return
	}
	var pa PackedA
	packAPooledInto(&pa, w, m, k, k)
	gemmPackedDrive(dst, &pa, bSrc{conv: src, g: g}, bias, n)
	pa.Release()
}

// GemmBPack is Gemm with the b operand supplied as a packer callback
// instead of a materialized matrix. It exists for callers with exotic
// virtual operands; the convolution path uses the allocation-free
// GemmConv.
func GemmBPack(dst, a, bias []float32, m, k, n int, packB BPacker) {
	if m <= 0 || n <= 0 {
		return
	}
	var pa PackedA
	packAPooledInto(&pa, a, m, k, k)
	gemmPackedDrive(dst, &pa, bSrc{pk: packB}, bias, n)
	pa.Release()
}

// GemmPacked runs the blocked kernel with a prepacked A (typically layer
// weights packed once at plan-compile time) against an in-memory k x n
// matrix b with row stride ldb. dst is m×n for pa's (m, k).
func GemmPacked(dst []float32, pa *PackedA, b []float32, ldb int, bias []float32, n int) {
	gemmPackedDrive(dst, pa, bSrc{mat: b, ldb: ldb}, bias, n)
}

// bSrc is the B operand of the packed driver: an in-memory matrix, a
// convolution input image, or a caller packer. A plain value struct (not
// a closure) so the per-call GEMM paths stay allocation-free.
type bSrc struct {
	mat  []float32 // in-memory matrix ...
	ldb  int       // ... with this row stride
	conv []float32 // convolution input image described by g
	g    ConvGeom
	pk   BPacker // caller-supplied packer (GemmBPack)
}

func (s *bSrc) pack(dst []float32, p0, kc, j0, nc int) {
	switch {
	case s.mat != nil:
		packBBlock(dst, s.mat, s.ldb, p0, kc, j0, nc)
	case s.conv != nil:
		packBConv(dst, s.conv, s.g, p0, kc, j0, nc)
	default:
		s.pk(dst, p0, kc, j0, nc)
	}
}

func gemmPackedDrive(dst []float32, pa *PackedA, src bSrc, bias []float32, n int) {
	m, k := pa.m, pa.k
	if m <= 0 || n <= 0 {
		return
	}
	workers := 1
	if flops := 2 * int64(m) * int64(k) * int64(n); flops > gemmParallelFLOPs {
		workers = runtime.GOMAXPROCS(0)
		if mx := (n + packNR - 1) / packNR; workers > mx {
			workers = mx
		}
	}
	if workers <= 1 {
		bufB := GetBuf(bPanelLen(k, n))
		gemmPackedCols(dst, pa, &src, bias, n, 0, n, bufB)
		PutBuf(bufB)
		return
	}
	gemmPackedParallel(dst, *pa, src, bias, n, workers)
}

// gemmPackedParallel fans NR-aligned column chunks out across workers. It
// takes PackedA and bSrc by value so the single-worker fast path's locals
// never escape to the heap: only this function's own copies are captured
// by the goroutine closures. Chunks are NR-aligned so no two workers share
// a packed sliver or an output tile; each worker owns a disjoint column
// range of dst and packs b for its own range, keeping per-element
// accumulation order identical at any worker count.
func gemmPackedParallel(dst []float32, pa PackedA, src bSrc, bias []float32, n, workers int) {
	chunk := ((n+workers-1)/workers + packNR - 1) &^ (packNR - 1)
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			wsrc := src
			bufB := GetBuf(bPanelLen(pa.k, hi-lo))
			gemmPackedCols(dst, &pa, &wsrc, bias, n, lo, hi, bufB)
			PutBuf(bufB)
		}(lo, hi)
	}
	wg.Wait()
}

// bPanelLen is the pooled buffer size for one packed B block covering a
// column span of width span.
func bPanelLen(k, span int) int {
	kc := min(k, packKC)
	nc := min(span, packNC)
	return kc * ((nc + packNR - 1) &^ (packNR - 1))
}

// gemmPackedCols runs the blocked loops for dst columns [j0, j1): for each
// (NC, KC) cache block, pack b into slivers once, then sweep every A panel
// past each sliver with the register-tile micro-kernel. dst rows are
// seeded with bias up front; each KC block's partial sums accumulate into
// dst, which preserves the per-element k-increasing accumulation order
// exactly (one float32 add per product, chunk after chunk).
func gemmPackedCols(dst []float32, pa *PackedA, src *bSrc, bias []float32, n, j0, j1 int, bufB []float32) {
	m, k := pa.m, pa.k
	for i := 0; i < m; i++ {
		row := dst[i*n+j0 : i*n+j1]
		var s float32
		if bias != nil {
			s = bias[i]
		}
		for j := range row {
			row[j] = s
		}
	}
	for jc := j0; jc < j1; jc += packNC {
		nc := min(packNC, j1-jc)
		nSlivers := (nc + packNR - 1) / packNR
		for bIdx, pc := 0, 0; pc < k; bIdx, pc = bIdx+1, pc+packKC {
			kc := min(packKC, k-pc)
			src.pack(bufB, pc, kc, jc, nc)
			for s := 0; s < nSlivers; s++ {
				j := jc + s*packNR
				nr := min(packNR, j1-j)
				bsl := bufB[s*kc*packNR:]
				for i0 := 0; i0 < m; i0 += packMR {
					apan := pa.panel(bIdx, i0, kc)
					if nr == packNR && m-i0 >= packMR {
						off := i0*n + j
						if haveAVX {
							kern4x8AVX(&dst[off], n, &apan[0], &bsl[0], kc)
						} else {
							kern4x8(dst[off:], dst[off+n:], dst[off+2*n:], dst[off+3*n:], apan, bsl, kc)
						}
					} else {
						kernTail(dst[i0*n+j:], n, apan, bsl, kc, min(packMR, m-i0), nr)
					}
				}
			}
		}
	}
}

// kern4x8 is the register-tile micro-kernel: a full 4-row by 8-column dst
// tile accumulated across one KC chunk. The 32 accumulators live in
// locals for the whole k loop — dst is read once and written once per
// chunk — and each accumulator receives its products one float32 add at a
// time in increasing k order, preserving the determinism contract.
func kern4x8(d0, d1, d2, d3, ap, bp []float32, kc int) {
	c00, c01, c02, c03, c04, c05, c06, c07 := d0[0], d0[1], d0[2], d0[3], d0[4], d0[5], d0[6], d0[7]
	c10, c11, c12, c13, c14, c15, c16, c17 := d1[0], d1[1], d1[2], d1[3], d1[4], d1[5], d1[6], d1[7]
	c20, c21, c22, c23, c24, c25, c26, c27 := d2[0], d2[1], d2[2], d2[3], d2[4], d2[5], d2[6], d2[7]
	c30, c31, c32, c33, c34, c35, c36, c37 := d3[0], d3[1], d3[2], d3[3], d3[4], d3[5], d3[6], d3[7]
	ap = ap[:kc*4]
	for len(ap) >= 4 && len(bp) >= 8 {
		a0, a1, a2, a3 := ap[0], ap[1], ap[2], ap[3]
		b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
		b4, b5, b6, b7 := bp[4], bp[5], bp[6], bp[7]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c04 += a0 * b4
		c05 += a0 * b5
		c06 += a0 * b6
		c07 += a0 * b7
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c14 += a1 * b4
		c15 += a1 * b5
		c16 += a1 * b6
		c17 += a1 * b7
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c24 += a2 * b4
		c25 += a2 * b5
		c26 += a2 * b6
		c27 += a2 * b7
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
		c34 += a3 * b4
		c35 += a3 * b5
		c36 += a3 * b6
		c37 += a3 * b7
		ap = ap[4:]
		bp = bp[8:]
	}
	d0[0], d0[1], d0[2], d0[3], d0[4], d0[5], d0[6], d0[7] = c00, c01, c02, c03, c04, c05, c06, c07
	d1[0], d1[1], d1[2], d1[3], d1[4], d1[5], d1[6], d1[7] = c10, c11, c12, c13, c14, c15, c16, c17
	d2[0], d2[1], d2[2], d2[3], d2[4], d2[5], d2[6], d2[7] = c20, c21, c22, c23, c24, c25, c26, c27
	d3[0], d3[1], d3[2], d3[3], d3[4], d3[5], d3[6], d3[7] = c30, c31, c32, c33, c34, c35, c36, c37
}

// kernTail handles ragged tiles (mr < MR rows and/or nr < NR columns): the
// packed panels are zero-padded to full geometry, but only the valid
// mr×nr elements are loaded from and stored to dst, so the padding never
// perturbs results.
func kernTail(dst []float32, ldd int, ap, bp []float32, kc, mr, nr int) {
	var acc [packMR][packNR]float32
	for r := 0; r < mr; r++ {
		drow := dst[r*ldd:]
		for c := 0; c < nr; c++ {
			acc[r][c] = drow[c]
		}
	}
	for p := 0; p < kc; p++ {
		av := ap[p*packMR : p*packMR+packMR]
		bv := bp[p*packNR : p*packNR+packNR]
		for r := 0; r < mr; r++ {
			a := av[r]
			for c := 0; c < nr; c++ {
				acc[r][c] += a * bv[c]
			}
		}
	}
	for r := 0; r < mr; r++ {
		drow := dst[r*ldd:]
		for c := 0; c < nr; c++ {
			drow[c] = acc[r][c]
		}
	}
}

// gemmRef is the streaming reference kernel (the pre-packing engine
// kernel, kept for small problems and as the packed path's bit-identity
// oracle): four output rows at a time, each row of b loaded once and
// applied to four accumulator rows, with row blocks fanned out across
// CPUs for large problems.
func gemmRef(dst, a, b, bias []float32, m, k, n int) {
	workers := 1
	if flops := 2 * int64(m) * int64(k) * int64(n); flops > gemmParallelFLOPs {
		workers = runtime.GOMAXPROCS(0)
		if mx := (m + 3) / 4; workers > mx {
			workers = mx
		}
	}
	if workers <= 1 {
		gemmRows(dst, a, b, bias, k, n, 0, m)
		return
	}
	// Chunks are 4-row aligned so every full block stays on the fast
	// 4-row path; each worker owns a disjoint row range of dst.
	chunk := ((m+workers-1)/workers + 3) &^ 3
	var wg sync.WaitGroup
	for lo := 0; lo < m; lo += chunk {
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			gemmRows(dst, a, b, bias, k, n, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// gemmRows computes output rows [lo, hi).
func gemmRows(dst, a, b, bias []float32, k, n, lo, hi int) {
	if n == 1 {
		gemvRows(dst, a, b, bias, k, lo, hi)
		return
	}
	i := lo
	for ; i+4 <= hi; i += 4 {
		gemm4(dst, a, b, bias, k, n, i)
	}
	for ; i < hi; i++ {
		gemm1(dst, a, b, bias, k, n, i)
	}
}

// gemm4 computes four adjacent output rows at once: each row of b is
// loaded once and applied to four accumulator rows, quartering the
// memory traffic of the row-at-a-time kernel.
func gemm4(dst, a, b, bias []float32, k, n, i int) {
	r0 := dst[(i+0)*n : (i+0)*n+n]
	r1 := dst[(i+1)*n : (i+1)*n+n]
	r2 := dst[(i+2)*n : (i+2)*n+n]
	r3 := dst[(i+3)*n : (i+3)*n+n]
	var s0, s1, s2, s3 float32
	if bias != nil {
		s0, s1, s2, s3 = bias[i], bias[i+1], bias[i+2], bias[i+3]
	}
	for j := range r0 {
		r0[j] = s0
		r1[j] = s1
		r2[j] = s2
		r3[j] = s3
	}
	a0 := a[(i+0)*k : (i+0)*k+k]
	a1 := a[(i+1)*k : (i+1)*k+k]
	a2 := a[(i+2)*k : (i+2)*k+k]
	a3 := a[(i+3)*k : (i+3)*k+k]
	for kk := 0; kk < k; kk++ {
		brow := b[kk*n : kk*n+n]
		c0, c1, c2, c3 := a0[kk], a1[kk], a2[kk], a3[kk]
		for j, v := range brow {
			r0[j] += c0 * v
			r1[j] += c1 * v
			r2[j] += c2 * v
			r3[j] += c3 * v
		}
	}
}

// gemm1 computes one output row (the <4-row remainder path).
func gemm1(dst, a, b, bias []float32, k, n, i int) {
	row := dst[i*n : i*n+n]
	var s float32
	if bias != nil {
		s = bias[i]
	}
	for j := range row {
		row[j] = s
	}
	arow := a[i*k : i*k+k]
	for kk := 0; kk < k; kk++ {
		c := arow[kk]
		brow := b[kk*n : kk*n+n]
		for j, v := range brow {
			row[j] += c * v
		}
	}
}

// gemvRows is the n==1 fast path: dst[o] = bias[o] + a[o]·x, a plain dot
// product per output row with no per-column loop overhead.
func gemvRows(dst, a, x, bias []float32, k, lo, hi int) {
	x = x[:k]
	for o := lo; o < hi; o++ {
		row := a[o*k : o*k+k]
		var sum float32
		if bias != nil {
			sum = bias[o]
		}
		for i, v := range x {
			sum += v * row[i]
		}
		dst[o] = sum
	}
}

package tensor

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapes(t *testing.T) {
	tests := []struct {
		name    string
		shape   []int
		wantLen int
		wantErr bool
	}{
		{name: "scalar-ish", shape: []int{1}, wantLen: 1},
		{name: "vector", shape: []int{7}, wantLen: 7},
		{name: "chw", shape: []int{3, 4, 5}, wantLen: 60},
		{name: "zero dim", shape: []int{3, 0}, wantErr: true},
		{name: "negative dim", shape: []int{-1}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := New(tt.shape...)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("New(%v) succeeded, want error", tt.shape)
				}
				return
			}
			if err != nil {
				t.Fatalf("New(%v): %v", tt.shape, err)
			}
			if got.Len() != tt.wantLen {
				t.Errorf("Len() = %d, want %d", got.Len(), tt.wantLen)
			}
		})
	}
}

func TestFromSlice(t *testing.T) {
	data := []float32{1, 2, 3, 4, 5, 6}
	tt, err := FromSlice(data, 2, 3)
	if err != nil {
		t.Fatalf("FromSlice: %v", err)
	}
	if got := tt.At(1, 2); got != 6 {
		t.Errorf("At(1,2) = %v, want 6", got)
	}
	if got := tt.At(0, 1); got != 2 {
		t.Errorf("At(0,1) = %v, want 2", got)
	}
	if _, err := FromSlice(data, 2, 2); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("FromSlice with wrong volume: err = %v, want ErrShapeMismatch", err)
	}
}

func TestSetAtRowMajor(t *testing.T) {
	tt := MustNew(2, 3, 4)
	tt.Set(42, 1, 2, 3)
	if got := tt.Data()[1*12+2*4+3]; got != 42 {
		t.Errorf("row-major offset wrong: got %v, want 42", got)
	}
	if got := tt.At(1, 2, 3); got != 42 {
		t.Errorf("At after Set = %v, want 42", got)
	}
}

func TestCloneIsolation(t *testing.T) {
	a := MustNew(2, 2)
	a.Set(1, 0, 0)
	b := a.Clone()
	b.Set(9, 0, 0)
	if a.At(0, 0) != 1 {
		t.Error("mutating clone affected original")
	}
	if !SameShape(a, b) {
		t.Error("clone shape differs")
	}
}

func TestReshapeSharesData(t *testing.T) {
	a := MustNew(2, 6)
	b, err := a.Reshape(3, 4)
	if err != nil {
		t.Fatalf("Reshape: %v", err)
	}
	b.Set(7, 0, 0)
	if a.At(0, 0) != 7 {
		t.Error("reshape should share storage")
	}
	if _, err := a.Reshape(5); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("bad reshape err = %v, want ErrShapeMismatch", err)
	}
}

func TestShapeCopyIsIsolated(t *testing.T) {
	a := MustNew(2, 3)
	s := a.Shape()
	s[0] = 99
	if a.Dim(0) != 2 {
		t.Error("Shape() must return a copy")
	}
}

func TestAdd(t *testing.T) {
	a, _ := FromSlice([]float32{1, 2}, 2)
	b, _ := FromSlice([]float32{10, 20}, 2)
	if err := a.Add(b); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if a.At(0) != 11 || a.At(1) != 22 {
		t.Errorf("Add result = %v", a.Data())
	}
	c := MustNew(3)
	if err := a.Add(c); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("Add mismatched err = %v, want ErrShapeMismatch", err)
	}
}

func TestFillScale(t *testing.T) {
	a := MustNew(4)
	a.Fill(2)
	a.Scale(3)
	for i, v := range a.Data() {
		if v != 6 {
			t.Fatalf("element %d = %v, want 6", i, v)
		}
	}
}

func TestMaxIndex(t *testing.T) {
	a, _ := FromSlice([]float32{1, 5, 3, 5}, 4)
	idx, v := a.MaxIndex()
	if idx != 1 || v != 5 {
		t.Errorf("MaxIndex = (%d, %v), want (1, 5) (first max wins)", idx, v)
	}
	empty := &Tensor{}
	if idx, _ := empty.MaxIndex(); idx != -1 {
		t.Errorf("empty MaxIndex = %d, want -1", idx)
	}
}

func TestSumSquaredDiff(t *testing.T) {
	a, _ := FromSlice([]float32{1, 2}, 2)
	b, _ := FromSlice([]float32{3, 0}, 2)
	got, err := SumSquaredDiff(a, b)
	if err != nil {
		t.Fatalf("SumSquaredDiff: %v", err)
	}
	if math.Abs(got-8) > 1e-9 {
		t.Errorf("SumSquaredDiff = %v, want 8", got)
	}
	c := MustNew(3)
	if _, err := SumSquaredDiff(a, c); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("mismatched err = %v, want ErrShapeMismatch", err)
	}
}

func TestVolume(t *testing.T) {
	if got := Volume([]int{2, 3, 4}); got != 24 {
		t.Errorf("Volume = %d, want 24", got)
	}
	if got := Volume(nil); got != 1 {
		t.Errorf("Volume(nil) = %d, want 1", got)
	}
}

// Property: for any data, FromSlice then Reshape preserves the flat content.
func TestQuickReshapePreservesData(t *testing.T) {
	f := func(raw []float32) bool {
		if len(raw) == 0 {
			return true
		}
		tt, err := FromSlice(raw, len(raw))
		if err != nil {
			return false
		}
		r, err := tt.Reshape(1, len(raw))
		if err != nil {
			return false
		}
		for i, v := range r.Data() {
			// NaN-safe bitwise comparison is overkill here; quick
			// only generates finite values by default.
			if v != raw[i] && !(math.IsNaN(float64(v)) && math.IsNaN(float64(raw[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: adding a zero tensor is the identity, and SumSquaredDiff of a
// tensor with its clone is exactly zero.
func TestQuickAddZeroIdentity(t *testing.T) {
	f := func(raw []float32) bool {
		if len(raw) == 0 {
			return true
		}
		a, err := FromSlice(append([]float32(nil), raw...), len(raw))
		if err != nil {
			return false
		}
		orig := a.Clone()
		zero := MustNew(len(raw))
		if err := a.Add(zero); err != nil {
			return false
		}
		for i := range a.Data() {
			av, ov := a.Data()[i], orig.Data()[i]
			if av != ov && !(math.IsNaN(float64(av)) && math.IsNaN(float64(ov))) {
				return false
			}
		}
		d, err := SumSquaredDiff(orig, orig)
		return err == nil && d == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package tensor

import (
	"runtime"
	"testing"
)

// naiveGemm is the straightforward triple loop the blocked kernel must
// match: dst[i][j] = bias[i] + Σ_kk a[i][kk]·b[kk][j], accumulated in
// kk-increasing order (the engine's determinism contract).
func naiveGemm(dst, a, b, bias []float32, m, k, n int) {
	for i := 0; i < m; i++ {
		row := dst[i*n : (i+1)*n]
		for j := range row {
			if bias != nil {
				row[j] = bias[i]
			} else {
				row[j] = 0
			}
		}
		for kk := 0; kk < k; kk++ {
			c := a[i*k+kk]
			brow := b[kk*n : (kk+1)*n]
			for j, v := range brow {
				row[j] += c * v
			}
		}
	}
}

func fillSeq(s []float32, seed uint64) {
	for i := range s {
		seed ^= seed >> 12
		seed ^= seed << 25
		seed ^= seed >> 27
		s[i] = float32(seed%2000)/1000 - 1
	}
}

func TestGemmMatchesNaive(t *testing.T) {
	cases := []struct{ m, k, n int }{
		{1, 1, 1},
		{1, 64, 1},    // gemv path
		{7, 33, 1},    // gemv with odd sizes
		{4, 16, 8},    // exact 4-row blocks
		{5, 16, 8},    // 4-row block + 1 remainder
		{6, 7, 9},     // 4 + 2 remainder, odd dims
		{3, 128, 17},  // pure remainder rows
		{64, 128, 96}, // big enough to matter
	}
	for _, tc := range cases {
		a := make([]float32, tc.m*tc.k)
		b := make([]float32, tc.k*tc.n)
		bias := make([]float32, tc.m)
		fillSeq(a, uint64(tc.m*1000+tc.k))
		fillSeq(b, uint64(tc.k*1000+tc.n))
		fillSeq(bias, uint64(tc.n))
		for _, withBias := range []bool{true, false} {
			bs := bias
			if !withBias {
				bs = nil
			}
			want := make([]float32, tc.m*tc.n)
			got := make([]float32, tc.m*tc.n)
			naiveGemm(want, a, b, bs, tc.m, tc.k, tc.n)
			Gemm(got, a, b, bs, tc.m, tc.k, tc.n)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("m=%d k=%d n=%d bias=%v: dst[%d] = %g, want %g (must be bit-identical)",
						tc.m, tc.k, tc.n, withBias, i, got[i], want[i])
				}
			}
		}
	}
}

// TestGemmDeterministicAcrossWorkers pins that a GEMM large enough to
// parallelize produces bit-identical output regardless of GOMAXPROCS:
// row partitioning must never change per-element accumulation order.
func TestGemmDeterministicAcrossWorkers(t *testing.T) {
	const m, k, n = 96, 144, 200 // 2·m·k·n ≈ 5.5M FLOPs > gemmParallelFLOPs
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	bias := make([]float32, m)
	fillSeq(a, 1)
	fillSeq(b, 2)
	fillSeq(bias, 3)

	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	want := make([]float32, m*n)
	Gemm(want, a, b, bias, m, k, n)

	for _, procs := range []int{2, 4, 7} {
		runtime.GOMAXPROCS(procs)
		got := make([]float32, m*n)
		Gemm(got, a, b, bias, m, k, n)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("GOMAXPROCS=%d: dst[%d] = %g, want %g", procs, i, got[i], want[i])
			}
		}
	}
}

func TestBufPoolRoundTrip(t *testing.T) {
	b := GetBuf(1000)
	if len(b) != 1000 {
		t.Fatalf("GetBuf(1000) returned len %d", len(b))
	}
	if cap(b) != 1024 {
		t.Fatalf("GetBuf(1000) returned cap %d, want power-of-two 1024", cap(b))
	}
	PutBuf(b)
	b2 := GetBuf(1024)
	if cap(b2) != 1024 {
		t.Fatalf("GetBuf(1024) returned cap %d", cap(b2))
	}
	PutBuf(b2)
	// Zero and odd-capacity slices must not poison the pool.
	PutBuf(nil)
	PutBuf(make([]float32, 3))
	if got := GetBuf(1); len(got) != 1 {
		t.Fatalf("GetBuf(1) returned len %d", len(got))
	}
}

func benchmarkGemm(b *testing.B, m, k, n int) {
	a := make([]float32, m*k)
	bb := make([]float32, k*n)
	bias := make([]float32, m)
	dst := make([]float32, m*n)
	fillSeq(a, 1)
	fillSeq(bb, 2)
	fillSeq(bias, 3)
	b.ReportAllocs()
	b.SetBytes(int64(4 * (m*k + k*n + m*n)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemm(dst, a, bb, bias, m, k, n)
	}
}

func BenchmarkGemmSmall(b *testing.B)  { benchmarkGemm(b, 32, 64, 64) }    // below parallel cutoff
func BenchmarkGemmMedium(b *testing.B) { benchmarkGemm(b, 128, 256, 196) } // conv-like column GEMM
func BenchmarkGemmLarge(b *testing.B)  { benchmarkGemm(b, 256, 512, 512) } // parallel path
func BenchmarkGemv(b *testing.B)       { benchmarkGemm(b, 1024, 1024, 1) } // FC path

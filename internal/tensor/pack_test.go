package tensor

import (
	"fmt"
	"runtime"
	"testing"
	"unsafe"
)

// fillRand fills s with deterministic pseudo-random values in [-1, 1).
func fillRand(s []float32, seed uint64) {
	rng := seed | 1
	for i := range s {
		rng ^= rng >> 12
		rng ^= rng << 25
		rng ^= rng >> 27
		v := rng * 2685821657736338717
		s[i] = float32(int32(v>>40)-1<<23) / (1 << 23)
	}
}

func fillRandI8(s []int8, seed uint64) {
	rng := seed | 1
	for i := range s {
		rng ^= rng >> 12
		rng ^= rng << 25
		rng ^= rng >> 27
		s[i] = int8(rng % 255)
	}
}

// TestPackARoundTrip packs and unpacks matrices across ragged and
// degenerate geometries, including views with row stride lda > k.
func TestPackARoundTrip(t *testing.T) {
	cases := []struct{ m, k, lda int }{
		{1, 1, 1}, {1, 7, 7}, {7, 1, 1}, {4, 8, 8}, {5, 8, 8},
		{3, 300, 300}, {9, 513, 513}, {64, 256, 256}, {17, 259, 300},
		{4, 300, 512}, {11, 1, 9},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("m%d_k%d_lda%d", c.m, c.k, c.lda), func(t *testing.T) {
			a := make([]float32, c.m*c.lda)
			fillRand(a, uint64(c.m*1000+c.k))
			pa := PackA(a, c.m, c.k, c.lda)
			got := pa.UnpackA()
			for i := 0; i < c.m; i++ {
				for j := 0; j < c.k; j++ {
					if got[i*c.k+j] != a[i*c.lda+j] {
						t.Fatalf("unpack[%d][%d] = %v, want %v", i, j, got[i*c.k+j], a[i*c.lda+j])
					}
				}
			}
			if m, k := pa.Dims(); m != c.m || k != c.k {
				t.Fatalf("Dims() = (%d, %d), want (%d, %d)", m, k, c.m, c.k)
			}
		})
	}
}

// TestPackAI8RoundTrip mirrors the float32 round trip for the int8 packer.
func TestPackAI8RoundTrip(t *testing.T) {
	cases := []struct{ m, k, lda int }{
		{1, 1, 1}, {5, 8, 8}, {9, 513, 513}, {17, 259, 300}, {4, 256, 256},
	}
	for _, c := range cases {
		a := make([]int8, c.m*c.lda)
		fillRandI8(a, uint64(c.m*77+c.k))
		pa := PackAI8(a, c.m, c.k, c.lda)
		got := pa.UnpackA()
		for i := 0; i < c.m; i++ {
			for j := 0; j < c.k; j++ {
				if got[i*c.k+j] != a[i*c.lda+j] {
					t.Fatalf("m=%d k=%d lda=%d: unpack[%d][%d] = %d, want %d",
						c.m, c.k, c.lda, i, j, got[i*c.k+j], a[i*c.lda+j])
				}
			}
		}
	}
}

// TestGemmEdgeGeometries pins the packed kernel against the naive oracle
// on ragged tails and degenerate shapes, bit-identically. Sizes straddle
// the packed-path threshold so both kernels are exercised.
func TestGemmEdgeGeometries(t *testing.T) {
	cases := []struct{ m, k, n int }{
		{1, 64, 512},   // 1xN degenerate
		{512, 64, 1},   // Mx1 degenerate (gemv path)
		{4, 8, 8},      // exactly one register tile
		{5, 9, 9},      // all-ragged tiny
		{31, 257, 63},  // ragged M/K/N tails around block sizes
		{33, 513, 129}, // spans multiple KC blocks with tails
		{128, 256, 8},  // minimum packed width
		{4, 1024, 96},  // single panel row, many KC blocks
		{97, 3, 200},   // k smaller than any block
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("%dx%dx%d", c.m, c.k, c.n), func(t *testing.T) {
			a := make([]float32, c.m*c.k)
			b := make([]float32, c.k*c.n)
			bias := make([]float32, c.m)
			fillRand(a, uint64(c.m))
			fillRand(b, uint64(c.k)+7)
			fillRand(bias, uint64(c.n)+13)
			want := make([]float32, c.m*c.n)
			naiveGemm(want, a, b, bias, c.m, c.k, c.n)
			got := make([]float32, c.m*c.n)
			Gemm(got, a, b, bias, c.m, c.k, c.n)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("Gemm[%d] = %v, want %v (bit-exact)", i, got[i], want[i])
				}
			}
			// The explicit packed driver must agree bit-identically too,
			// including below the dispatch threshold.
			pa := PackA(a, c.m, c.k, c.k)
			got2 := make([]float32, c.m*c.n)
			GemmPacked(got2, pa, b, c.n, bias, c.n)
			for i := range want {
				if got2[i] != want[i] {
					t.Fatalf("GemmPacked[%d] = %v, want %v (bit-exact)", i, got2[i], want[i])
				}
			}
		})
	}
}

// TestGemmPackedStridedView runs the packed kernel over a B sub-view with
// ldb > n and an A view with lda > k, against the oracle on compacted
// copies.
func TestGemmPackedStridedView(t *testing.T) {
	m, k, n, lda, ldb := 13, 100, 50, 160, 77
	aw := make([]float32, m*lda)
	bw := make([]float32, k*ldb)
	fillRand(aw, 3)
	fillRand(bw, 5)
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	for i := 0; i < m; i++ {
		copy(a[i*k:(i+1)*k], aw[i*lda:i*lda+k])
	}
	for p := 0; p < k; p++ {
		copy(b[p*n:(p+1)*n], bw[p*ldb:p*ldb+n])
	}
	want := make([]float32, m*n)
	naiveGemm(want, a, b, nil, m, k, n)
	pa := PackA(aw, m, k, lda)
	got := make([]float32, m*n)
	GemmPacked(got, pa, bw, ldb, nil, n)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("strided GemmPacked[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// convRef materializes the virtual im2col matrix of a ConvGeom — the
// golden reference the direct-convolution packer must reproduce.
func convRef(src []float32, g ConvGeom) []float32 {
	rows, cols := g.Rows(), g.Cols()
	col := make([]float32, rows*cols)
	for p := 0; p < rows; p++ {
		kx := p % g.K
		tmp := p / g.K
		ky := tmp % g.K
		ic := tmp / g.K
		for oy := 0; oy < g.OutH; oy++ {
			for ox := 0; ox < g.OutW; ox++ {
				iy := oy*g.Stride + ky - g.Pad
				ix := ox*g.Stride + kx - g.Pad
				var v float32
				if iy >= 0 && iy < g.H && ix >= 0 && ix < g.W {
					v = src[(ic*g.H+iy)*g.W+ix]
				}
				col[p*cols+oy*g.OutW+ox] = v
			}
		}
	}
	return col
}

func convOutDim(in, k, stride, pad int) int { return (in+2*pad-k)/stride + 1 }

// TestGemmConvMatchesIm2col checks the direct convolution against
// materialized im2col + Gemm, bit-identically, over padded, strided, and
// degenerate geometries.
func TestGemmConvMatchesIm2col(t *testing.T) {
	cases := []ConvGeom{
		{InC: 1, H: 5, W: 5, K: 3, Stride: 1, Pad: 0},
		{InC: 3, H: 17, W: 17, K: 3, Stride: 1, Pad: 1},
		{InC: 3, H: 33, W: 33, K: 7, Stride: 2, Pad: 3},
		{InC: 8, H: 14, W: 14, K: 5, Stride: 1, Pad: 2},
		{InC: 16, H: 9, W: 9, K: 1, Stride: 1, Pad: 0},
		{InC: 4, H: 12, W: 10, K: 3, Stride: 3, Pad: 1},
		{InC: 2, H: 3, W: 3, K: 3, Stride: 1, Pad: 0}, // 1x1 output
	}
	for ci, g := range cases {
		g.OutH = convOutDim(g.H, g.K, g.Stride, g.Pad)
		g.OutW = convOutDim(g.W, g.K, g.Stride, g.Pad)
		outC := 10
		src := make([]float32, g.InC*g.H*g.W)
		w := make([]float32, outC*g.Rows())
		bias := make([]float32, outC)
		fillRand(src, uint64(ci)+21)
		fillRand(w, uint64(ci)+22)
		fillRand(bias, uint64(ci)+23)
		col := convRef(src, g)
		want := make([]float32, outC*g.Cols())
		Gemm(want, w, col, bias, outC, g.Rows(), g.Cols())
		got := make([]float32, outC*g.Cols())
		GemmConv(got, w, bias, outC, src, g)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("geom %+v: GemmConv[%d] = %v, want %v", g, i, got[i], want[i])
			}
		}
	}
}

// naiveGemmI8 is the unpacked int8 oracle: plain triple loop, int32
// accumulation.
func naiveGemmI8(dst []int32, a, b []int8, m, k, n int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc int32
			for p := 0; p < k; p++ {
				acc += int32(a[i*k+p]) * int32(b[p*n+j])
			}
			dst[i*n+j] = acc
		}
	}
}

// TestGemmPackedI8MatchesNaive pins the packed int8 kernel against the
// unpacked oracle — exact integer equality, any blocking.
func TestGemmPackedI8MatchesNaive(t *testing.T) {
	cases := []struct{ m, k, n int }{
		{1, 1, 1}, {4, 8, 8}, {5, 9, 9}, {31, 257, 63}, {64, 300, 120}, {3, 513, 17},
	}
	for _, c := range cases {
		a := make([]int8, c.m*c.k)
		b := make([]int8, c.k*c.n)
		fillRandI8(a, uint64(c.m)+1)
		fillRandI8(b, uint64(c.n)+2)
		want := make([]int32, c.m*c.n)
		naiveGemmI8(want, a, b, c.m, c.k, c.n)
		pa := PackAI8(a, c.m, c.k, c.k)
		got := make([]int32, c.m*c.n)
		GemmPackedI8(got, pa, b, c.n, c.n)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%dx%dx%d: I8[%d] = %d, want %d", c.m, c.k, c.n, i, got[i], want[i])
			}
		}
	}
}

// TestGemmConvI8MatchesNaive checks the int8 direct convolution against
// the materialized-matrix oracle.
func TestGemmConvI8MatchesNaive(t *testing.T) {
	g := ConvGeom{InC: 3, H: 15, W: 15, K: 3, Stride: 2, Pad: 1}
	g.OutH = convOutDim(g.H, g.K, g.Stride, g.Pad)
	g.OutW = convOutDim(g.W, g.K, g.Stride, g.Pad)
	outC := 7
	src := make([]int8, g.InC*g.H*g.W)
	w := make([]int8, outC*g.Rows())
	fillRandI8(src, 31)
	fillRandI8(w, 32)
	// Materialize the im2col matrix in int8.
	rows, cols := g.Rows(), g.Cols()
	col := make([]int8, rows*cols)
	for p := 0; p < rows; p++ {
		kx := p % g.K
		tmp := p / g.K
		ky := tmp % g.K
		ic := tmp / g.K
		for oy := 0; oy < g.OutH; oy++ {
			for ox := 0; ox < g.OutW; ox++ {
				iy := oy*g.Stride + ky - g.Pad
				ix := ox*g.Stride + kx - g.Pad
				if iy >= 0 && iy < g.H && ix >= 0 && ix < g.W {
					col[p*cols+oy*g.OutW+ox] = src[(ic*g.H+iy)*g.W+ix]
				}
			}
		}
	}
	want := make([]int32, outC*cols)
	naiveGemmI8(want, w, col, outC, rows, cols)
	pa := PackAI8(w, outC, rows, rows)
	got := make([]int32, outC*cols)
	GemmConvI8(got, pa, src, g)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("GemmConvI8[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestGemmI8DeterministicAcrossWorkers: the int8 driver is exact integer
// math, so any GOMAXPROCS must give identical bytes.
func TestGemmI8DeterministicAcrossWorkers(t *testing.T) {
	m, k, n := 96, 144, 200
	a := make([]int8, m*k)
	b := make([]int8, k*n)
	fillRandI8(a, 41)
	fillRandI8(b, 42)
	pa := PackAI8(a, m, k, k)
	ref := make([]int32, m*n)
	GemmPackedI8(ref, pa, b, n, n)
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, w := range []int{1, 2, 4, 7} {
		runtime.GOMAXPROCS(w)
		got := make([]int32, m*n)
		GemmPackedI8(got, pa, b, n, n)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("GOMAXPROCS=%d: [%d] = %d, want %d", w, i, got[i], ref[i])
			}
		}
	}
}

// TestGetBufAlignment verifies the documented guarantee: every pooled
// buffer's base pointer is BufAlign-byte aligned, including after
// recycling through the pool.
func TestGetBufAlignment(t *testing.T) {
	for _, n := range []int{1, 7, 64, 1000, 4097, 1 << 16} {
		for round := 0; round < 3; round++ {
			f := GetBuf(n)
			if p := uintptr(unsafe.Pointer(&f[0])); p%BufAlign != 0 {
				t.Fatalf("GetBuf(%d) round %d: base %#x not %d-byte aligned", n, round, p, BufAlign)
			}
			b := GetBufI8(n)
			if p := uintptr(unsafe.Pointer(&b[0])); p%BufAlign != 0 {
				t.Fatalf("GetBufI8(%d) round %d: base %#x not %d-byte aligned", n, round, p, BufAlign)
			}
			PutBuf(f)
			PutBufI8(b)
		}
	}
}

// TestBufPoolI8RoundTrip mirrors the float32 pool-balance test for the
// int8 class: Get/Put traffic must balance over a packed-kernel workload.
func TestBufPoolI8RoundTrip(t *testing.T) {
	before := ReadPoolStats()
	s := GetBufI8(1000)
	if len(s) != 1000 || cap(s) != 1024 {
		t.Fatalf("GetBufI8(1000): len %d cap %d, want 1000/1024", len(s), cap(s))
	}
	PutBufI8(s)
	// Kernel round trips: every internal Get must be matched by a Put.
	m, k, n := 40, 300, 120
	a := make([]int8, m*k)
	b := make([]int8, k*n)
	fillRandI8(a, 5)
	fillRandI8(b, 6)
	pa := PackAI8(a, m, k, k)
	dst := make([]int32, m*n)
	mid := ReadPoolStats()
	for i := 0; i < 10; i++ {
		GemmPackedI8(dst, pa, b, n, n)
	}
	after := ReadPoolStats()
	if out := (after.Outstanding() - mid.Outstanding()); out != 0 {
		t.Fatalf("int8 kernel leaked %d pooled buffers", out)
	}
	if after.Gets <= before.Gets {
		t.Fatal("expected pool traffic from the int8 kernel")
	}
	// Non-pool-allocated slices are dropped, not recycled.
	PutBufI8(make([]int8, 1000))
}

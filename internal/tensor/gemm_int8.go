package tensor

import (
	"runtime"
	"sync"
)

// Int8 blocked GEMM: the quantized inference path's compute core.
//
// Operands are symmetric int8 (zero-point 0): weights quantized per
// output channel at plan-compile time, activations quantized per tensor
// at each layer entry. Accumulation is int32 — integer adds are exact and
// associative, so the quantized path is bit-identical across blocking,
// kernel choice, and worker count by construction, with no accumulation-
// order contract needed. The caller dequantizes the int32 accumulators
// back to float32 (DequantizeRows), so every layer boundary — and thus
// every partition cut point — stays float32 on the wire.

// GemmPackedI8 computes dst(int32) = pa · b for a prepacked int8 A and an
// in-memory int8 k x n matrix b with row stride ldb. dst is fully
// overwritten (no bias; bias joins at dequantization, in float32).
func GemmPackedI8(dst []int32, pa *PackedAI8, b []int8, ldb, n int) {
	gemmI8Drive(dst, pa, bSrcI8{mat: b, ldb: ldb}, n)
}

// GemmConvI8 is GemmConv's int8 twin: a direct convolution over a
// quantized input image src, accumulating int32 into dst.
func GemmConvI8(dst []int32, pa *PackedAI8, src []int8, g ConvGeom) {
	gemmI8Drive(dst, pa, bSrcI8{conv: src, g: g}, g.Cols())
}

// bSrcI8 mirrors bSrc for int8 operands.
type bSrcI8 struct {
	mat  []int8
	ldb  int
	conv []int8
	g    ConvGeom
}

func (s *bSrcI8) pack(dst []int8, p0, kc, j0, nc int) {
	if s.mat != nil {
		packBBlockI8(dst, s.mat, s.ldb, p0, kc, j0, nc)
		return
	}
	packBConvI8(dst, s.conv, s.g, p0, kc, j0, nc)
}

func gemmI8Drive(dst []int32, pa *PackedAI8, src bSrcI8, n int) {
	m, k := pa.m, pa.k
	if m <= 0 || n <= 0 {
		return
	}
	workers := 1
	if flops := 2 * int64(m) * int64(k) * int64(n); flops > gemmParallelFLOPs {
		workers = runtime.GOMAXPROCS(0)
		if mx := (n + packNR - 1) / packNR; workers > mx {
			workers = mx
		}
	}
	if workers <= 1 {
		bufB := GetBufI8(bPanelLen(k, n))
		gemmI8Cols(dst, pa, &src, n, 0, n, bufB)
		PutBufI8(bufB)
		return
	}
	gemmI8Parallel(dst, *pa, src, n, workers)
}

// gemmI8Parallel mirrors gemmPackedParallel: by-value params keep the
// single-worker fast path allocation-free; int32 accumulation makes any
// chunking bit-identical regardless, but chunks stay NR-aligned so no two
// workers share a packed sliver or an output tile.
func gemmI8Parallel(dst []int32, pa PackedAI8, src bSrcI8, n, workers int) {
	chunk := ((n+workers-1)/workers + packNR - 1) &^ (packNR - 1)
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			wsrc := src
			bufB := GetBufI8(bPanelLen(pa.k, hi-lo))
			gemmI8Cols(dst, &pa, &wsrc, n, lo, hi, bufB)
			PutBufI8(bufB)
		}(lo, hi)
	}
	wg.Wait()
}

func gemmI8Cols(dst []int32, pa *PackedAI8, src *bSrcI8, n, j0, j1 int, bufB []int8) {
	m, k := pa.m, pa.k
	for i := 0; i < m; i++ {
		row := dst[i*n+j0 : i*n+j1]
		for j := range row {
			row[j] = 0
		}
	}
	for jc := j0; jc < j1; jc += packNC {
		nc := min(packNC, j1-jc)
		nSlivers := (nc + packNR - 1) / packNR
		for bIdx, pc := 0, 0; pc < k; bIdx, pc = bIdx+1, pc+packKC {
			kc := min(packKC, k-pc)
			src.pack(bufB, pc, kc, jc, nc)
			for s := 0; s < nSlivers; s++ {
				j := jc + s*packNR
				nr := min(packNR, j1-j)
				bsl := bufB[s*kc*packNR:]
				for i0 := 0; i0 < m; i0 += packMR {
					apan := pa.panel(bIdx, i0, kc)
					if nr == packNR && m-i0 >= packMR {
						off := i0*n + j
						if haveAVX2 {
							kern4x8I8AVX2(&dst[off], n, &apan[0], &bsl[0], kc)
						} else {
							kern4x8i8(dst[off:], dst[off+n:], dst[off+2*n:], dst[off+3*n:], apan, bsl, kc)
						}
					} else {
						kernTailI8(dst[i0*n+j:], n, apan, bsl, kc, min(packMR, m-i0), nr)
					}
				}
			}
		}
	}
}

// kern4x8i8 is the int8 register-tile micro-kernel: int32 accumulators in
// locals, widening int8 loads from the packed panels.
func kern4x8i8(d0, d1, d2, d3 []int32, ap, bp []int8, kc int) {
	c00, c01, c02, c03, c04, c05, c06, c07 := d0[0], d0[1], d0[2], d0[3], d0[4], d0[5], d0[6], d0[7]
	c10, c11, c12, c13, c14, c15, c16, c17 := d1[0], d1[1], d1[2], d1[3], d1[4], d1[5], d1[6], d1[7]
	c20, c21, c22, c23, c24, c25, c26, c27 := d2[0], d2[1], d2[2], d2[3], d2[4], d2[5], d2[6], d2[7]
	c30, c31, c32, c33, c34, c35, c36, c37 := d3[0], d3[1], d3[2], d3[3], d3[4], d3[5], d3[6], d3[7]
	ap = ap[:kc*4]
	for len(ap) >= 4 && len(bp) >= 8 {
		a0, a1, a2, a3 := int32(ap[0]), int32(ap[1]), int32(ap[2]), int32(ap[3])
		b0, b1, b2, b3 := int32(bp[0]), int32(bp[1]), int32(bp[2]), int32(bp[3])
		b4, b5, b6, b7 := int32(bp[4]), int32(bp[5]), int32(bp[6]), int32(bp[7])
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c04 += a0 * b4
		c05 += a0 * b5
		c06 += a0 * b6
		c07 += a0 * b7
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c14 += a1 * b4
		c15 += a1 * b5
		c16 += a1 * b6
		c17 += a1 * b7
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c24 += a2 * b4
		c25 += a2 * b5
		c26 += a2 * b6
		c27 += a2 * b7
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
		c34 += a3 * b4
		c35 += a3 * b5
		c36 += a3 * b6
		c37 += a3 * b7
		ap = ap[4:]
		bp = bp[8:]
	}
	d0[0], d0[1], d0[2], d0[3], d0[4], d0[5], d0[6], d0[7] = c00, c01, c02, c03, c04, c05, c06, c07
	d1[0], d1[1], d1[2], d1[3], d1[4], d1[5], d1[6], d1[7] = c10, c11, c12, c13, c14, c15, c16, c17
	d2[0], d2[1], d2[2], d2[3], d2[4], d2[5], d2[6], d2[7] = c20, c21, c22, c23, c24, c25, c26, c27
	d3[0], d3[1], d3[2], d3[3], d3[4], d3[5], d3[6], d3[7] = c30, c31, c32, c33, c34, c35, c36, c37
}

func kernTailI8(dst []int32, ldd int, ap, bp []int8, kc, mr, nr int) {
	var acc [packMR][packNR]int32
	for r := 0; r < mr; r++ {
		drow := dst[r*ldd:]
		for c := 0; c < nr; c++ {
			acc[r][c] = drow[c]
		}
	}
	for p := 0; p < kc; p++ {
		av := ap[p*packMR : p*packMR+packMR]
		bv := bp[p*packNR : p*packNR+packNR]
		for r := 0; r < mr; r++ {
			a := int32(av[r])
			for c := 0; c < nr; c++ {
				acc[r][c] += a * int32(bv[c])
			}
		}
	}
	for r := 0; r < mr; r++ {
		drow := dst[r*ldd:]
		for c := 0; c < nr; c++ {
			drow[c] = acc[r][c]
		}
	}
}

// GemvI8 is the quantized fully-connected path: int8 dot products with
// int32 accumulation, dequantized per output row in the same pass.
// dst[o] = float32(Σ w[o]·x) · deq[o] + bias[o].
func GemvI8(dst []float32, w, x []int8, deq, bias []float32, m, k int) {
	x = x[:k]
	for o := 0; o < m; o++ {
		row := w[o*k : o*k+k]
		var acc int32
		for i, v := range x {
			acc += int32(v) * int32(row[i])
		}
		f := float32(acc) * deq[o]
		if bias != nil {
			f += bias[o]
		}
		dst[o] = f
	}
}

// Quantize writes round-half-away-from-zero(src[i]/scale) clamped to
// [-127, 127] — symmetric quantization, zero-point 0. The rounding rule
// is branch-based and platform-independent, so quantized values (and
// everything downstream, given exact int32 accumulation) are
// deterministic everywhere.
func Quantize(dst []int8, src []float32, scale float32) {
	inv := float32(0)
	if scale != 0 {
		inv = 1 / scale
	}
	for i, v := range src {
		f := v * inv
		switch {
		case f >= 127:
			dst[i] = 127
		case f <= -127:
			dst[i] = -127
		case f >= 0:
			dst[i] = int8(f + 0.5)
		default:
			dst[i] = int8(f - 0.5)
		}
	}
}

// MaxAbs returns max(|s[i]|), the calibration statistic behind every
// activation scale.
func MaxAbs(s []float32) float32 {
	var m float32
	for _, v := range s {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// DequantizeRows converts the int32 accumulators occupying dst's storage
// (see AsInt32) into float32 in place: dst[i*n+j] = acc[i*n+j]*deq[i] +
// bias[i]. Each slot is read as int32 then overwritten as float32, so the
// conversion needs no second buffer.
func DequantizeRows(dst []float32, deq, bias []float32, m, n int) {
	acc := AsInt32(dst)
	for i := 0; i < m; i++ {
		d := deq[i]
		var b float32
		if bias != nil {
			b = bias[i]
		}
		row := acc[i*n : i*n+n]
		out := dst[i*n : i*n+n]
		for j, v := range row {
			out[j] = float32(v)*d + b
		}
	}
}

package tensor

// Panel packing for the blocked GEMM kernels.
//
// The micro-kernel computes an MR-row by NR-column tile of dst with every
// accumulator in a local, so its two streams must be contiguous:
//
//   - an A panel interleaves MR rows of a: for each k index p, the MR
//     values a[i..i+MR-1][p] are adjacent. Rows past m are zero-padded;
//     the padding rows are never stored to dst, so they cannot perturb
//     results.
//   - a B sliver interleaves NR columns of b: for each k index p, the NR
//     values b[p][j..j+NR-1] are adjacent. Columns past the valid range
//     are zero-padded and likewise never stored.
//
// Packing copies each matrix element exactly once per GEMM call, and in
// exchange the kernel reads both operands sequentially — the B sliver
// stays resident in L1 while every A panel streams past it.

// Register-tile and cache-block geometry, shared by the float32 and int8
// kernels. KC and NC are sized for this class of machine (tens of KiB of
// L1d, 1-2 MiB of L2): one float32 B block (KC x NC) fits in L2, one B
// sliver (KC x NR) in L1, and one A panel (MR x KC) spans a few KiB.
const (
	packMR = 4
	packNR = 8
	packKC = 256
	packNC = 1024
)

// PanelRows (MR) and PanelCols (NR) expose the register-tile geometry for
// tests and external packers.
const (
	PanelRows = packMR
	PanelCols = packNR
)

// BPacker fills dst with the packed form of a virtual B-matrix block:
// rows [p0, p0+kc) by columns [j0, j0+nc) of a k x n matrix that need not
// exist in memory. dst receives ceil(nc/NR) slivers of kc*NR floats each;
// within a sliver, element (p, c) lands at p*NR + c, and columns past nc
// (the ragged tail) must be written as zeros. kc never exceeds the KC
// block size.
type BPacker func(dst []float32, p0, kc, j0, nc int)

// PackedA is matrix a (m x k, row-major) repacked into MR-interleaved
// panels, grouped by KC block. Block offsets are closed-form — every
// block except the last has exactly KC depth — so the struct carries no
// per-block bookkeeping and lives on the caller's stack in the per-call
// packing path.
type PackedA struct {
	m, k   int
	data   []float32
	pooled bool
}

// packedALen is the packed storage size for an m x k matrix: full MR
// panels per KC block, ragged tails zero-padded.
func packedALen(m, k int) int {
	panels := (m + packMR - 1) / packMR
	return panels * packMR * k
}

// blockOff is the data offset of KC block bIdx: every preceding block
// holds panels*MR*KC floats.
func (pa *PackedA) blockOff(bIdx int) int {
	panels := (pa.m + packMR - 1) / packMR
	return bIdx * panels * packMR * packKC
}

// panel returns the packed panel of rows [i0, i0+MR) within KC block
// bIdx, whose depth is kc.
func (pa *PackedA) panel(bIdx, i0, kc int) []float32 {
	off := pa.blockOff(bIdx) + (i0/packMR)*packMR*kc
	return pa.data[off : off+packMR*kc]
}

// PackA packs matrix a with row stride lda (lda >= k; lda == k for a
// contiguous matrix) into MR-interleaved panels. The result is immutable
// and safe for concurrent GEMM calls.
func PackA(a []float32, m, k, lda int) *PackedA {
	pa := &PackedA{m: m, k: k, data: make([]float32, packedALen(m, k))}
	pa.fill(a, lda)
	return pa
}

// packAPooledInto initializes pa with pool-backed storage; the caller
// must PutBuf(pa.data) when done.
func packAPooledInto(pa *PackedA, a []float32, m, k, lda int) {
	pa.m, pa.k = m, k
	pa.data = GetBuf(packedALen(m, k))
	pa.pooled = true
	pa.fill(a, lda)
}

// Release returns pool-backed packing storage. No-op for PackA results.
func (pa *PackedA) Release() {
	if pa.pooled {
		PutBuf(pa.data)
		pa.data = nil
	}
}

// Dims returns the packed matrix's (m, k).
func (pa *PackedA) Dims() (m, k int) { return pa.m, pa.k }

func (pa *PackedA) fill(a []float32, lda int) {
	m, k := pa.m, pa.k
	for bIdx, pc := 0, 0; pc < k; bIdx, pc = bIdx+1, pc+packKC {
		kc := min(packKC, k-pc)
		d := pa.data[pa.blockOff(bIdx):]
		di := 0
		for i0 := 0; i0 < m; i0 += packMR {
			for p := pc; p < pc+kc; p++ {
				for r := 0; r < packMR; r++ {
					if i0+r < m {
						d[di] = a[(i0+r)*lda+p]
					} else {
						d[di] = 0
					}
					di++
				}
			}
		}
	}
}

// UnpackA reverses PackA into a freshly allocated m x k row-major matrix,
// dropping the zero padding. It exists for round-trip tests and debugging.
func (pa *PackedA) UnpackA() []float32 {
	out := make([]float32, pa.m*pa.k)
	for bIdx, pc := 0, 0; pc < pa.k; bIdx, pc = bIdx+1, pc+packKC {
		kc := min(packKC, pa.k-pc)
		for i0 := 0; i0 < pa.m; i0 += packMR {
			pan := pa.panel(bIdx, i0, kc)
			for p := 0; p < kc; p++ {
				for r := 0; r < packMR && i0+r < pa.m; r++ {
					out[(i0+r)*pa.k+pc+p] = pan[p*packMR+r]
				}
			}
		}
	}
	return out
}

// ConvGeom describes a convolution's implicit-GEMM B matrix: the virtual
// [InC*K*K, OutH*OutW] im2col matrix of an [InC, H, W] input under a KxK
// kernel with the given stride and padding. The direct-convolution packer
// gathers panel slivers of this matrix straight from the input image, so
// the full column matrix never exists in memory.
type ConvGeom struct {
	InC, H, W      int
	K, Stride, Pad int
	OutH, OutW     int
}

// Rows returns the virtual B matrix's row count (GEMM k).
func (g ConvGeom) Rows() int { return g.InC * g.K * g.K }

// Cols returns the virtual B matrix's column count (GEMM n).
func (g ConvGeom) Cols() int { return g.OutH * g.OutW }

// packBBlock packs one cache block of an in-memory k x n matrix stored
// row-major with row stride ldb (ldb >= n; a larger ldb packs a sub-view
// of a wider matrix). Layout as documented on BPacker.
func packBBlock(dst, b []float32, ldb, p0, kc, j0, nc int) {
	di := 0
	for s := 0; s < nc; s += packNR {
		nr := min(packNR, nc-s)
		for p := p0; p < p0+kc; p++ {
			row := b[p*ldb+j0+s:]
			for c := 0; c < nr; c++ {
				dst[di] = row[c]
				di++
			}
			for c := nr; c < packNR; c++ {
				dst[di] = 0
				di++
			}
		}
	}
}

// packBConv packs one cache block of the virtual im2col matrix directly
// from the input image src ([InC, H, W] row-major): row p decomposes into
// (ic, ky, kx), column j into (oy, ox), and padding positions pack as
// exact zeros — the same values buildColumns materializes, in the same
// row order, so direct convolution is bit-identical to im2col + GEMM.
func packBConv(dst, src []float32, g ConvGeom, p0, kc, j0, nc int) {
	var icArr, rowArr, kxArr [packKC]int32
	for i := 0; i < kc; i++ {
		p := p0 + i
		kx := p % g.K
		t := p / g.K
		ky := t % g.K
		ic := t / g.K
		icArr[i] = int32(ic)
		rowArr[i] = int32(ky - g.Pad) // iy = oy*Stride + rowArr
		kxArr[i] = int32(kx - g.Pad)  // ix = ox*Stride + kxArr
	}
	di := 0
	for s := 0; s < nc; s += packNR {
		nr := min(packNR, nc-s)
		jBase := j0 + s
		oy0 := jBase / g.OutW
		ox0 := jBase - oy0*g.OutW
		for i := 0; i < kc; i++ {
			base := int(icArr[i]) * g.H * g.W
			dy := int(rowArr[i])
			dx := int(kxArr[i])
			oy, ox := oy0, ox0
			for c := 0; c < packNR; c++ {
				var v float32
				if c < nr {
					iy := oy*g.Stride + dy
					ix := ox*g.Stride + dx
					if iy >= 0 && iy < g.H && ix >= 0 && ix < g.W {
						v = src[base+iy*g.W+ix]
					}
				}
				dst[di] = v
				di++
				ox++
				if ox == g.OutW {
					ox = 0
					oy++
				}
			}
		}
	}
}

// PackedAI8 is PackedA for int8 operands: the quantized path packs
// per-channel-quantized weights once at plan compile time and reuses them
// for every forward pass.
type PackedAI8 struct {
	m, k int
	data []int8
}

func (pa *PackedAI8) blockOff(bIdx int) int {
	panels := (pa.m + packMR - 1) / packMR
	return bIdx * panels * packMR * packKC
}

func (pa *PackedAI8) panel(bIdx, i0, kc int) []int8 {
	off := pa.blockOff(bIdx) + (i0/packMR)*packMR*kc
	return pa.data[off : off+packMR*kc]
}

// PackAI8 packs int8 matrix a (row stride lda >= k) into MR-interleaved
// panels, mirroring PackA.
func PackAI8(a []int8, m, k, lda int) *PackedAI8 {
	pa := &PackedAI8{m: m, k: k, data: make([]int8, packedALen(m, k))}
	for bIdx, pc := 0, 0; pc < k; bIdx, pc = bIdx+1, pc+packKC {
		kc := min(packKC, k-pc)
		d := pa.data[pa.blockOff(bIdx):]
		di := 0
		for i0 := 0; i0 < m; i0 += packMR {
			for p := pc; p < pc+kc; p++ {
				for r := 0; r < packMR; r++ {
					if i0+r < m {
						d[di] = a[(i0+r)*lda+p]
					} else {
						d[di] = 0
					}
					di++
				}
			}
		}
	}
	return pa
}

// Dims returns the packed matrix's (m, k).
func (pa *PackedAI8) Dims() (m, k int) { return pa.m, pa.k }

// UnpackA reverses PackAI8 for round-trip tests.
func (pa *PackedAI8) UnpackA() []int8 {
	out := make([]int8, pa.m*pa.k)
	for bIdx, pc := 0, 0; pc < pa.k; bIdx, pc = bIdx+1, pc+packKC {
		kc := min(packKC, pa.k-pc)
		for i0 := 0; i0 < pa.m; i0 += packMR {
			pan := pa.panel(bIdx, i0, kc)
			for p := 0; p < kc; p++ {
				for r := 0; r < packMR && i0+r < pa.m; r++ {
					out[(i0+r)*pa.k+pc+p] = pan[p*packMR+r]
				}
			}
		}
	}
	return out
}

// packBBlockI8 is packBBlock for an int8 matrix.
func packBBlockI8(dst, b []int8, ldb, p0, kc, j0, nc int) {
	di := 0
	for s := 0; s < nc; s += packNR {
		nr := min(packNR, nc-s)
		for p := p0; p < p0+kc; p++ {
			row := b[p*ldb+j0+s:]
			for c := 0; c < nr; c++ {
				dst[di] = row[c]
				di++
			}
			for c := nr; c < packNR; c++ {
				dst[di] = 0
				di++
			}
		}
	}
}

// packBConvI8 is packBConv over a quantized int8 input image.
func packBConvI8(dst, src []int8, g ConvGeom, p0, kc, j0, nc int) {
	var icArr, rowArr, kxArr [packKC]int32
	for i := 0; i < kc; i++ {
		p := p0 + i
		kx := p % g.K
		t := p / g.K
		ky := t % g.K
		ic := t / g.K
		icArr[i] = int32(ic)
		rowArr[i] = int32(ky - g.Pad)
		kxArr[i] = int32(kx - g.Pad)
	}
	di := 0
	for s := 0; s < nc; s += packNR {
		nr := min(packNR, nc-s)
		jBase := j0 + s
		oy0 := jBase / g.OutW
		ox0 := jBase - oy0*g.OutW
		for i := 0; i < kc; i++ {
			base := int(icArr[i]) * g.H * g.W
			dy := int(rowArr[i])
			dx := int(kxArr[i])
			oy, ox := oy0, ox0
			for c := 0; c < packNR; c++ {
				var v int8
				if c < nr {
					iy := oy*g.Stride + dy
					ix := ox*g.Stride + dx
					if iy >= 0 && iy < g.H && ix >= 0 && ix < g.W {
						v = src[base+iy*g.W+ix]
					}
				}
				dst[di] = v
				di++
				ox++
				if ox == g.OutW {
					ox = 0
					oy++
				}
			}
		}
	}
}

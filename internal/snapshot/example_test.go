package snapshot_test

import (
	"fmt"

	"websnap/internal/snapshot"
	"websnap/internal/webapp"
)

// Example demonstrates the paper's core loop in miniature: capture a
// running app's execution state, ship it as text, restore it elsewhere,
// and continue execution from exactly where it stopped.
func Example() {
	// App code: one handler that increments a counter.
	reg := webapp.NewRegistry("counter-app")
	reg.MustRegister("increment", func(app *webapp.App, ev webapp.Event) error {
		v, _ := app.Global("count")
		n, _ := v.(float64)
		return app.SetGlobal("count", n+1)
	})

	// The "client": run the app to count = 1, then capture just before
	// the next increment.
	app, _ := webapp.NewApp("instance-1", reg)
	_ = app.SetGlobal("count", 0)
	_ = app.AddEventListener("btn", "click", "increment")
	app.DispatchEvent(webapp.Event{Target: "btn", Type: "click"})
	_, _ = app.Run(1)

	snap, _ := snapshot.Capture(app, snapshot.Options{
		PendingEvent: &webapp.Event{Target: "btn", Type: "click"},
	})
	wire, _ := snap.Encode() // the snapshot is a textual program

	// The "edge server": decode, restore, resume.
	decoded, _ := snapshot.Decode(wire)
	restored, _ := snapshot.Restore(decoded, reg, snapshot.RestoreOptions{})
	_, _ = restored.Run(1) // executes the pending click there

	v, _ := restored.Global("count")
	fmt.Println("count after offloaded step:", v)
	// Output: count after offloaded step: 2
}

// ExampleDiff shows the §VI delta mechanism: only changed state travels.
func ExampleDiff() {
	reg := webapp.NewRegistry("delta-app")
	reg.MustRegister("noop", func(*webapp.App, webapp.Event) error { return nil })
	app, _ := webapp.NewApp("instance", reg)
	_ = app.SetGlobal("big", make(webapp.Float32Array, 10000))
	_ = app.SetGlobal("small", 1.0)

	base, _ := snapshot.Capture(app, snapshot.Options{})
	_ = app.SetGlobal("small", 2.0) // only this changes
	cur, _ := snapshot.Capture(app, snapshot.Options{})

	delta, _ := snapshot.Diff(base, cur)
	fullWire, _ := cur.Encode()
	deltaWire, _ := delta.Encode()
	fmt.Println("delta carries globals:", len(delta.SetGlobals))
	fmt.Println("delta is smaller:", len(deltaWire) < len(fullWire)/10)
	// Output:
	// delta carries globals: 1
	// delta is smaller: true
}

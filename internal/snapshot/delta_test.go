package snapshot

import (
	"errors"
	"testing"
	"testing/quick"

	"websnap/internal/webapp"
)

func capture(t *testing.T, app *webapp.App) *Snapshot {
	t.Helper()
	snap, err := Capture(app, Options{DefaultModelPolicy: ModelOmit})
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestDiffApplyRoundTrip: for arbitrary mutations between two captures,
// Apply(base, Diff(base, cur)) must reproduce cur exactly.
func TestDiffApplyRoundTrip(t *testing.T) {
	app, _ := inferenceApp(t)
	base := capture(t, app)

	// Mutate: change a global, add one, remove one, touch the DOM,
	// enqueue an event.
	if err := app.SetGlobal("image", webapp.Float32Array{9, 8, 7}); err != nil {
		t.Fatal(err)
	}
	if err := app.SetGlobal("newFlag", true); err != nil {
		t.Fatal(err)
	}
	cur := capture(t, app)
	delete(cur.Globals, "scores") // simulate a removed global
	cur.DOM.Find("result").Text = "changed"
	cur.Pending = append(cur.Pending, webapp.Event{Target: "btn", Type: "click"})

	d, err := Diff(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if got.AppID != cur.AppID || got.CodeHash != cur.CodeHash {
		t.Error("identity fields wrong")
	}
	if len(got.Globals) != len(cur.Globals) {
		t.Fatalf("globals %d != %d", len(got.Globals), len(cur.Globals))
	}
	for name, v := range cur.Globals {
		if !webapp.DeepEqual(got.Globals[name], v) {
			t.Errorf("global %q differs", name)
		}
	}
	if !got.DOM.Equal(cur.DOM) {
		t.Error("DOM differs")
	}
	if len(got.Pending) != 1 || got.Pending[0].Type != "click" {
		t.Errorf("pending = %+v", got.Pending)
	}
	gh, err := got.Hash()
	if err != nil {
		t.Fatal(err)
	}
	ch, err := cur.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if gh != ch {
		t.Error("reconstructed snapshot hash differs from original")
	}
}

func TestDiffIsMinimal(t *testing.T) {
	app, _ := inferenceApp(t)
	base := capture(t, app)
	cur := capture(t, app)
	d, err := Diff(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.SetGlobals) != 0 || len(d.DelGlobals) != 0 || d.DOM != nil || d.BindingsChanged {
		t.Errorf("no-op diff carries state: %+v", d)
	}

	if err := app.SetGlobal("counter", 1.0); err != nil {
		t.Fatal(err)
	}
	cur2 := capture(t, app)
	d2, err := Diff(base, cur2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.SetGlobals) != 1 {
		t.Errorf("single-global change carries %d globals", len(d2.SetGlobals))
	}
	if d2.DOM != nil {
		t.Error("unchanged DOM must be omitted")
	}
}

// TestDeltaMuchSmallerThanSnapshot pins the extension's purpose: a small
// state change after a large first snapshot ships a tiny delta.
func TestDeltaMuchSmallerThanSnapshot(t *testing.T) {
	app, _ := inferenceApp(t)
	// Make the heap big: a large feature array.
	big := make(webapp.Float32Array, 50000)
	for i := range big {
		big[i] = float32(i%97) / 97
	}
	if err := app.SetGlobal("bigFeature", big); err != nil {
		t.Fatal(err)
	}
	base := capture(t, app)
	baseWire, err := base.Encode()
	if err != nil {
		t.Fatal(err)
	}

	if err := app.SetGlobal("counter", 42.0); err != nil {
		t.Fatal(err)
	}
	cur := capture(t, app)
	d, err := Diff(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	deltaWire, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(deltaWire))*20 > int64(len(baseWire)) {
		t.Errorf("delta %d B not ≪ snapshot %d B", len(deltaWire), len(baseWire))
	}
}

func TestDeltaEncodeDecodeRoundTrip(t *testing.T) {
	app, _ := inferenceApp(t)
	if err := app.SetGlobal("doomed", "bye"); err != nil {
		t.Fatal(err)
	}
	base := capture(t, app)
	if err := app.SetGlobal("image", webapp.Float32Array{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	app.DOM().Find("result").Text = "dog"
	cur := capture(t, app)
	delete(cur.Globals, "doomed")
	cur.Pending = []webapp.Event{{Target: "btn", Type: "go", Payload: "x"}}

	d, err := Diff(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDelta(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.AppID != d.AppID || got.CodeHash != d.CodeHash || got.BaseHash != d.BaseHash {
		t.Error("identity fields corrupted")
	}
	if len(got.SetGlobals) != len(d.SetGlobals) {
		t.Fatalf("set globals %d != %d", len(got.SetGlobals), len(d.SetGlobals))
	}
	for name, v := range d.SetGlobals {
		if !webapp.DeepEqual(got.SetGlobals[name], v) {
			t.Errorf("global %q corrupted", name)
		}
	}
	if len(got.DelGlobals) != 1 || got.DelGlobals[0] != "doomed" {
		t.Errorf("deletes = %v", got.DelGlobals)
	}
	if got.DOM == nil || !got.DOM.Equal(d.DOM) {
		t.Error("DOM corrupted")
	}
	if len(got.Pending) != 1 || got.Pending[0].Payload != "x" {
		t.Errorf("pending = %+v", got.Pending)
	}

	// The decoded delta must apply identically.
	a1, err := d.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := got.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	h1, _ := a1.Hash()
	h2, _ := a2.Hash()
	if h1 != h2 {
		t.Error("decoded delta applies differently")
	}
}

func TestApplyBaseMismatch(t *testing.T) {
	app, _ := inferenceApp(t)
	base := capture(t, app)
	if err := app.SetGlobal("x", 1.0); err != nil {
		t.Fatal(err)
	}
	cur := capture(t, app)
	d, err := Diff(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.SetGlobal("x", 2.0); err != nil {
		t.Fatal(err)
	}
	otherBase := capture(t, app)
	if _, err := d.Apply(otherBase); !errors.Is(err, ErrBaseMismatch) {
		t.Errorf("err = %v, want ErrBaseMismatch", err)
	}
}

func TestDiffAcrossAppsFails(t *testing.T) {
	app, _ := inferenceApp(t)
	base := capture(t, app)
	other := *base
	other.AppID = "someone-else"
	if _, err := Diff(base, &other); err == nil {
		t.Error("cross-app diff should fail")
	}
}

func TestHashIgnoresModels(t *testing.T) {
	app, _ := inferenceApp(t)
	withModels, err := Capture(app, Options{DefaultModelPolicy: ModelFull})
	if err != nil {
		t.Fatal(err)
	}
	withoutModels, err := Capture(app, Options{DefaultModelPolicy: ModelOmit})
	if err != nil {
		t.Fatal(err)
	}
	h1, err := withModels.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := withoutModels.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Error("hash must cover state, not model placement")
	}
}

func TestDecodeDeltaCorrupt(t *testing.T) {
	tests := [][]byte{
		nil,
		[]byte("// wrong header\n"),
		[]byte(deltaHeader + "\nmeow;\n"),
		[]byte(deltaHeader + "\nvar __appID = \"a\";\n"), // missing hashes
	}
	for i, data := range tests {
		if _, err := DecodeDelta(data); err == nil {
			t.Errorf("case %d decoded without error", i)
		}
	}
}

// Property: diff/apply round-trips for arbitrary single-global changes.
func TestQuickDiffApply(t *testing.T) {
	app, _ := inferenceApp(t)
	base := capture(t, app)
	f := func(val float64, s string, fs []float32) bool {
		cur := *base
		cur.Globals = make(map[string]webapp.Value, len(base.Globals)+1)
		for k, v := range base.Globals {
			cur.Globals[k] = v
		}
		v, err := webapp.Normalize(map[string]webapp.Value{"n": val, "s": s, "f": fs})
		if err != nil {
			return false
		}
		cur.Globals["mut"] = v
		d, err := Diff(base, &cur)
		if err != nil {
			return false
		}
		wire, err := d.Encode()
		if err != nil {
			return false
		}
		dd, err := DecodeDelta(wire)
		if err != nil {
			return false
		}
		got, err := dd.Apply(base)
		if err != nil {
			return false
		}
		return webapp.DeepEqual(got.Globals["mut"], v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

package snapshot

import (
	"testing"

	"websnap/internal/webapp"
)

// FuzzDecode hardens the snapshot parser: arbitrary bytes must either
// decode into a snapshot that re-encodes cleanly, or fail — never panic.
func FuzzDecode(f *testing.F) {
	app, err := webapp.NewApp("fuzz", seedRegistry())
	if err != nil {
		f.Fatal(err)
	}
	if err := app.SetGlobal("x", webapp.Float32Array{1, 2, 3}); err != nil {
		f.Fatal(err)
	}
	snap, err := Capture(app, Options{})
	if err != nil {
		f.Fatal(err)
	}
	wire, err := snap.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(wire)
	f.Add([]byte(header + "\n"))
	f.Add([]byte(header + "\nvar x = {\"__f32__\":[1e999]};\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		if _, err := s.Encode(); err != nil {
			t.Errorf("decoded snapshot failed to re-encode: %v", err)
		}
	})
}

// FuzzDecodeDelta hardens the delta parser the same way.
func FuzzDecodeDelta(f *testing.F) {
	app, err := webapp.NewApp("fuzz", seedRegistry())
	if err != nil {
		f.Fatal(err)
	}
	base, err := Capture(app, Options{})
	if err != nil {
		f.Fatal(err)
	}
	if err := app.SetGlobal("y", 4.5); err != nil {
		f.Fatal(err)
	}
	cur, err := Capture(app, Options{})
	if err != nil {
		f.Fatal(err)
	}
	d, err := Diff(base, cur)
	if err != nil {
		f.Fatal(err)
	}
	wire, err := d.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(wire)
	f.Add([]byte(deltaHeader + "\n__delete(\"x\");\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dd, err := DecodeDelta(data)
		if err != nil {
			return
		}
		if _, err := dd.Encode(); err != nil {
			t.Errorf("decoded delta failed to re-encode: %v", err)
		}
	})
}

func seedRegistry() *webapp.Registry {
	reg := webapp.NewRegistry("fuzz-app")
	reg.MustRegister("noop", func(*webapp.App, webapp.Event) error { return nil })
	return reg
}

package snapshot

import (
	"errors"
	"testing"

	"websnap/internal/mlapp"
	"websnap/internal/models"
	"websnap/internal/webapp"
)

// FuzzDecode hardens the snapshot parser: arbitrary bytes must either
// decode into a snapshot that re-encodes cleanly, or fail — never panic.
func FuzzDecode(f *testing.F) {
	app, err := webapp.NewApp("fuzz", seedRegistry())
	if err != nil {
		f.Fatal(err)
	}
	if err := app.SetGlobal("x", webapp.Float32Array{1, 2, 3}); err != nil {
		f.Fatal(err)
	}
	snap, err := Capture(app, Options{})
	if err != nil {
		f.Fatal(err)
	}
	wire, err := snap.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(wire)
	f.Add([]byte(header + "\n"))
	f.Add([]byte(header + "\nvar x = {\"__f32__\":[1e999]};\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		if _, err := s.Encode(); err != nil {
			t.Errorf("decoded snapshot failed to re-encode: %v", err)
		}
	})
}

// FuzzDecodeDelta hardens the delta parser the same way.
func FuzzDecodeDelta(f *testing.F) {
	app, err := webapp.NewApp("fuzz", seedRegistry())
	if err != nil {
		f.Fatal(err)
	}
	base, err := Capture(app, Options{})
	if err != nil {
		f.Fatal(err)
	}
	if err := app.SetGlobal("y", 4.5); err != nil {
		f.Fatal(err)
	}
	cur, err := Capture(app, Options{})
	if err != nil {
		f.Fatal(err)
	}
	d, err := Diff(base, cur)
	if err != nil {
		f.Fatal(err)
	}
	wire, err := d.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(wire)
	f.Add([]byte(deltaHeader + "\n__delete(\"x\");\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dd, err := DecodeDelta(data)
		if err != nil {
			return
		}
		if _, err := dd.Encode(); err != nil {
			t.Errorf("decoded delta failed to re-encode: %v", err)
		}
	})
}

// FuzzDeltaApply exercises the full delta pipeline — decode a delta,
// decode a base, apply one to the other — against arbitrary byte pairs.
// The corpus is seeded with real mlapp state (feature tensors, DOM
// mutations, pending events) so the fuzzer starts from wire bytes the
// production path actually produces. Invariants: Apply never panics, a
// failed apply is the typed ErrBaseMismatch (given a hashable base),
// Apply never mutates its base, and a successful apply yields a snapshot
// that re-encodes, re-decodes, and keeps a stable identity hash.
func FuzzDeltaApply(f *testing.F) {
	model, err := models.BuildTinyNet("tiny", 3)
	if err != nil {
		f.Fatal(err)
	}
	app, err := mlapp.NewFullApp("fuzz-ml", "tiny", model, []string{"a", "b", "c"})
	if err != nil {
		f.Fatal(err)
	}
	// Omit model weights from the corpus: they dominate the wire size and
	// make per-exec decode cost too high for the fuzzer to make progress,
	// while contributing nothing to delta coverage (deltas never carry
	// models).
	capOpts := Options{DefaultModelPolicy: ModelOmit}
	base, err := Capture(app, capOpts)
	if err != nil {
		f.Fatal(err)
	}
	baseWire, err := base.Encode()
	if err != nil {
		f.Fatal(err)
	}
	// Mutate through the real app: load an image (feature globals change),
	// then click (DOM result text changes, pending event queued).
	if err := mlapp.LoadImage(app, mlapp.SyntheticImage(3*16*16, 7)); err != nil {
		f.Fatal(err)
	}
	app.DispatchEvent(webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick})
	cur, err := Capture(app, capOpts)
	if err != nil {
		f.Fatal(err)
	}
	d, err := Diff(base, cur)
	if err != nil {
		f.Fatal(err)
	}
	deltaWire, err := d.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(deltaWire, baseWire)

	// A mismatched base from an unrelated app seeds the ErrBaseMismatch path.
	other, err := webapp.NewApp("fuzz", seedRegistry())
	if err != nil {
		f.Fatal(err)
	}
	otherSnap, err := Capture(other, Options{})
	if err != nil {
		f.Fatal(err)
	}
	otherWire, err := otherSnap.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(deltaWire, otherWire)
	f.Add([]byte(deltaHeader+"\nvar __appID = \"a\";\nvar __codeHash = \"b\";\nvar __baseHash = \"c\";\n__delete(\"x\");\n"), baseWire)

	f.Fuzz(func(t *testing.T, deltaBytes, baseBytes []byte) {
		dd, err := DecodeDelta(deltaBytes)
		if err != nil {
			return
		}
		bs, err := Decode(baseBytes)
		if err != nil {
			return
		}
		hashBefore, err := bs.Hash()
		if err != nil {
			return
		}
		out, err := dd.Apply(bs)
		if err != nil {
			// The base hashed fine above, so the only legitimate failure
			// left is the typed base-identity mismatch.
			if !errors.Is(err, ErrBaseMismatch) {
				t.Errorf("apply failed with untyped error: %v", err)
			}
			return
		}
		if h, err := bs.Hash(); err != nil || h != hashBefore {
			t.Errorf("Apply mutated its base: hash %s -> %s (err %v)", hashBefore, h, err)
		}
		wire, err := out.Encode()
		if err != nil {
			t.Errorf("applied snapshot failed to encode: %v", err)
			return
		}
		back, err := Decode(wire)
		if err != nil {
			t.Errorf("applied snapshot failed to re-decode: %v", err)
			return
		}
		h1, err := out.Hash()
		if err != nil {
			t.Errorf("applied snapshot failed to hash: %v", err)
			return
		}
		if h2, err := back.Hash(); err != nil || h1 != h2 {
			t.Errorf("apply result changed identity across a round trip: %s vs %s (err %v)", h1, h2, err)
		}
		out2, err := dd.Apply(bs)
		if err != nil {
			t.Errorf("second apply of the same delta failed: %v", err)
			return
		}
		if h3, err := out2.Hash(); err != nil || h3 != h1 {
			t.Errorf("apply is not deterministic: %s vs %s (err %v)", h1, h3, err)
		}
	})
}

func seedRegistry() *webapp.Registry {
	reg := webapp.NewRegistry("fuzz-app")
	reg.MustRegister("noop", func(*webapp.App, webapp.Event) error { return nil })
	return reg
}

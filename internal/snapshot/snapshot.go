// Package snapshot implements the paper's core mechanism: saving the
// current execution state of a web app in the form of another web app (the
// *snapshot*), and restoring it — on any browser runtime — to continue
// execution from the point where it was saved.
//
// A snapshot is a textual program (one declaration per line, JS-like), so
// typed-array feature data serializes as text; that is what makes feature
// size the dominant transmission cost in partial inference (paper §IV.B).
//
// Two size optimizations from §III.B are implemented:
//   - model exclusion: once a model has been pre-sent to the edge server,
//     snapshots carry only its descriptor, not its weights;
//   - rear-only models: for partial inference, the front part of the DNN is
//     never shipped, which both shrinks the transfer and denies the server
//     the layers needed to invert the feature data (privacy, §III.B.2).
package snapshot

import (
	"errors"
	"fmt"

	"websnap/internal/nn"
	"websnap/internal/webapp"
)

// Errors reported by capture/restore.
var (
	ErrCodeMismatch     = errors.New("snapshot: code hash does not match registry")
	ErrModelUnavailable = errors.New("snapshot: model weights not in snapshot and no resolver provided")
	ErrReservedKey      = errors.New("snapshot: value uses reserved key")
	ErrCorrupt          = errors.New("snapshot: corrupt encoding")
	// ErrBaseMismatch is returned when a delta is applied to a different
	// base snapshot than it was computed against.
	ErrBaseMismatch = errors.New("snapshot: delta base mismatch")
)

// ModelPolicy controls how much of a loaded model a captured snapshot
// carries.
type ModelPolicy int

// Model policies.
const (
	// ModelFull includes descriptor and weights — the pre-ACK case where
	// the client must send the model along with the snapshot.
	ModelFull ModelPolicy = iota + 1
	// ModelSpecOnly includes only the descriptor; the receiver resolves
	// weights from its pre-sent model store.
	ModelSpecOnly
	// ModelOmit drops the model from the snapshot entirely — used for
	// result snapshots returning to the client, which already has it.
	ModelOmit
)

// Options configures Capture.
type Options struct {
	// DefaultModelPolicy applies to models not listed in ModelPolicies.
	// The zero value means ModelFull (safe: the snapshot stays
	// self-contained).
	DefaultModelPolicy ModelPolicy
	// ModelPolicies overrides the policy per model name.
	ModelPolicies map[string]ModelPolicy
	// PendingEvent, if non-nil, is recorded for re-dispatch at restore
	// time: "there is also the code to dispatch the event again at the
	// server" (§III.A). Typically the event whose handler is offloaded.
	PendingEvent *webapp.Event
}

// ModelState is one model carried by a snapshot.
type ModelState struct {
	Name    string
	Spec    nn.NetSpec
	Weights []byte // nil when excluded by policy
}

// Snapshot is the captured execution state of a web app. Encode renders it
// as the textual snapshot app; Restore re-creates a running App from it.
type Snapshot struct {
	AppID    string
	CodeHash string
	Globals  map[string]webapp.Value
	DOM      *webapp.Node
	Bindings []webapp.Binding
	Models   []ModelState
	// Pending holds the events to re-dispatch on restore, in order.
	Pending []webapp.Event
}

// Capture saves the app's current execution state. The app is not modified;
// all captured state is deep-copied.
func Capture(app *webapp.App, opts Options) (*Snapshot, error) {
	if opts.DefaultModelPolicy == 0 {
		opts.DefaultModelPolicy = ModelFull
	}
	globals := app.Globals()
	for name, v := range globals {
		if err := checkReserved(v); err != nil {
			return nil, fmt.Errorf("global %q: %w", name, err)
		}
	}
	s := &Snapshot{
		AppID:    app.ID(),
		CodeHash: app.CodeHash(),
		Globals:  globals,
		DOM:      app.DOM().Clone(),
		Bindings: app.Bindings(),
	}
	for _, ev := range app.PendingEvents() {
		s.Pending = append(s.Pending, webapp.Event{
			Target: ev.Target, Type: ev.Type, Payload: webapp.DeepCopy(ev.Payload),
		})
	}
	if opts.PendingEvent != nil {
		ev := *opts.PendingEvent
		ev.Payload = webapp.DeepCopy(ev.Payload)
		s.Pending = append(s.Pending, ev)
	}
	for _, name := range app.ModelNames() {
		policy := opts.DefaultModelPolicy
		if p, ok := opts.ModelPolicies[name]; ok {
			policy = p
		}
		if policy == ModelOmit {
			continue
		}
		net, _ := app.Model(name)
		spec, err := net.Spec()
		if err != nil {
			return nil, fmt.Errorf("snapshot: model %q: %w", name, err)
		}
		ms := ModelState{Name: name, Spec: spec}
		if policy == ModelFull {
			ms.Weights, err = encodeWeights(net)
			if err != nil {
				return nil, fmt.Errorf("snapshot: model %q: %w", name, err)
			}
		}
		s.Models = append(s.Models, ms)
	}
	return s, nil
}

// ModelResolver supplies pre-sent models at restore time (the edge server's
// model store). It returns the stored network for name, or false.
type ModelResolver interface {
	ResolveModel(name string) (*nn.Network, bool)
}

// ResolverFunc adapts a function to the ModelResolver interface.
type ResolverFunc func(name string) (*nn.Network, bool)

// ResolveModel implements ModelResolver.
func (f ResolverFunc) ResolveModel(name string) (*nn.Network, bool) { return f(name) }

// RestoreOptions configures Restore.
type RestoreOptions struct {
	// Models resolves weights for models the snapshot carries spec-only.
	// May be nil if every model in the snapshot is self-contained.
	Models ModelResolver
	// KeepModels, when a model is absent from the snapshot, preserves
	// any model of that name already loaded in the target app (used when
	// restoring a result snapshot onto the original client app).
	KeepModels map[string]*nn.Network
}

// Restore re-creates a running app from the snapshot: execution state is
// restored exactly, models are rebuilt or resolved, and pending events are
// re-dispatched so that a subsequent Step continues execution from the
// capture point.
func Restore(s *Snapshot, registry *webapp.Registry, opts RestoreOptions) (*webapp.App, error) {
	if registry.CodeHash() != s.CodeHash {
		return nil, fmt.Errorf("%w: snapshot %s, registry %s (bundle %q)",
			ErrCodeMismatch, s.CodeHash, registry.CodeHash(), registry.Name())
	}
	app, err := webapp.NewApp(s.AppID, registry)
	if err != nil {
		return nil, err
	}
	for name, net := range opts.KeepModels {
		app.LoadModel(name, net)
	}
	if err := s.ApplyTo(app, opts); err != nil {
		return nil, err
	}
	return app, nil
}

// ApplyTo restores the snapshot's execution state into an existing app —
// the client side of the return path: the result snapshot from the edge
// server is "run" on the client's browser to continue the app. Models the
// snapshot omits remain as loaded in app; models it carries are rebuilt or
// resolved and replace the loaded ones.
func (s *Snapshot) ApplyTo(app *webapp.App, opts RestoreOptions) error {
	if app.CodeHash() != s.CodeHash {
		return fmt.Errorf("%w: snapshot %s, app %s", ErrCodeMismatch, s.CodeHash, app.CodeHash())
	}
	app.ReplaceGlobals(s.Globals)
	app.ReplaceDOM(s.DOM.Clone())
	if err := app.ReplaceBindings(s.Bindings); err != nil {
		return fmt.Errorf("snapshot: restore bindings: %w", err)
	}
	for _, ms := range s.Models {
		net, err := restoreModel(ms, opts.Models)
		if err != nil {
			return err
		}
		app.LoadModel(ms.Name, net)
	}
	app.ClearEvents()
	for _, ev := range s.Pending {
		app.DispatchEvent(ev)
	}
	return nil
}

func restoreModel(ms ModelState, resolver ModelResolver) (*nn.Network, error) {
	if ms.Weights == nil {
		if resolver == nil {
			return nil, fmt.Errorf("%w: %q", ErrModelUnavailable, ms.Name)
		}
		net, ok := resolver.ResolveModel(ms.Name)
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrModelUnavailable, ms.Name)
		}
		return net, nil
	}
	net, err := nn.Build(ms.Spec)
	if err != nil {
		return nil, fmt.Errorf("snapshot: rebuild model %q: %w", ms.Name, err)
	}
	if err := decodeWeights(net, ms.Weights); err != nil {
		return nil, fmt.Errorf("snapshot: model %q: %w", ms.Name, err)
	}
	return net, nil
}

package snapshot

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"websnap/internal/webapp"
)

// This file implements the paper's stated future work (§VI): "how to
// simplify the snapshot creation/transmission/restoration for future
// offloading using the data and code left at the server from the first
// offloading". A Delta carries only the state that changed relative to a
// base snapshot both sides already hold; repeated offloads therefore ship
// kilobytes instead of re-serializing the full heap.

// deltaHeader is the first line of an encoded delta.
const deltaHeader = "// websnap-delta v1"

// Hash returns the snapshot's content identity: a hash over its canonical
// encoding with models excluded (model placement differs between client
// and server; the synchronized *state* is what deltas are relative to).
func (s *Snapshot) Hash() (string, error) {
	bare := *s
	bare.Models = nil
	data, err := bare.Encode()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:16]), nil
}

// Delta is the difference between two snapshots of the same app.
type Delta struct {
	AppID    string
	CodeHash string
	// BaseHash identifies the snapshot this delta applies to.
	BaseHash string
	// SetGlobals holds new or changed globals.
	SetGlobals map[string]webapp.Value
	// DelGlobals lists removed globals.
	DelGlobals []string
	// DOM is the full new tree when it changed, nil when unchanged.
	// (A finer node-level diff is possible; DOM trees are tiny next to
	// feature data, so whole-tree replacement keeps the format simple.)
	DOM *webapp.Node
	// BindingsChanged signals that Bindings replaces the base's set.
	BindingsChanged bool
	Bindings        []webapp.Binding
	// Pending always replaces the base's pending events.
	Pending []webapp.Event
}

// Diff computes cur − base. Both snapshots must belong to the same app and
// code bundle. Models are ignored: deltas never carry them (they are
// already at the receiver).
func Diff(base, cur *Snapshot) (*Delta, error) {
	if base.AppID != cur.AppID || base.CodeHash != cur.CodeHash {
		return nil, fmt.Errorf("snapshot: diff across apps (%s/%s vs %s/%s)",
			base.AppID, base.CodeHash, cur.AppID, cur.CodeHash)
	}
	baseHash, err := base.Hash()
	if err != nil {
		return nil, err
	}
	d := &Delta{
		AppID:      cur.AppID,
		CodeHash:   cur.CodeHash,
		BaseHash:   baseHash,
		SetGlobals: make(map[string]webapp.Value),
	}
	for name, v := range cur.Globals {
		if old, ok := base.Globals[name]; !ok || !webapp.DeepEqual(old, v) {
			d.SetGlobals[name] = webapp.DeepCopy(v)
		}
	}
	for name := range base.Globals {
		if _, ok := cur.Globals[name]; !ok {
			d.DelGlobals = append(d.DelGlobals, name)
		}
	}
	sort.Strings(d.DelGlobals)
	if !base.DOM.Equal(cur.DOM) {
		d.DOM = cur.DOM.Clone()
	}
	if !bindingsEqual(base.Bindings, cur.Bindings) {
		d.BindingsChanged = true
		d.Bindings = append([]webapp.Binding(nil), cur.Bindings...)
	}
	for _, ev := range cur.Pending {
		d.Pending = append(d.Pending, webapp.Event{
			Target: ev.Target, Type: ev.Type, Payload: webapp.DeepCopy(ev.Payload),
		})
	}
	return d, nil
}

func bindingsEqual(a, b []webapp.Binding) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Apply reconstructs the full snapshot d was diffed from, given the same
// base. The base's hash must match d.BaseHash.
func (d *Delta) Apply(base *Snapshot) (*Snapshot, error) {
	baseHash, err := base.Hash()
	if err != nil {
		return nil, err
	}
	if baseHash != d.BaseHash {
		return nil, fmt.Errorf("%w: delta base %s, snapshot %s", ErrBaseMismatch, d.BaseHash, baseHash)
	}
	out := &Snapshot{
		AppID:    d.AppID,
		CodeHash: d.CodeHash,
		Globals:  make(map[string]webapp.Value, len(base.Globals)+len(d.SetGlobals)),
		DOM:      base.DOM.Clone(),
		Bindings: append([]webapp.Binding(nil), base.Bindings...),
	}
	for name, v := range base.Globals {
		out.Globals[name] = webapp.DeepCopy(v)
	}
	for name, v := range d.SetGlobals {
		out.Globals[name] = webapp.DeepCopy(v)
	}
	for _, name := range d.DelGlobals {
		delete(out.Globals, name)
	}
	if d.DOM != nil {
		out.DOM = d.DOM.Clone()
	}
	if d.BindingsChanged {
		out.Bindings = append([]webapp.Binding(nil), d.Bindings...)
	}
	for _, ev := range d.Pending {
		out.Pending = append(out.Pending, webapp.Event{
			Target: ev.Target, Type: ev.Type, Payload: webapp.DeepCopy(ev.Payload),
		})
	}
	return out, nil
}

// Encode renders the delta in the same one-statement-per-line style as full
// snapshots:
//
//	// websnap-delta v1
//	var __appID = "...";
//	var __codeHash = "...";
//	var __baseHash = "...";
//	var feature = {"__f32__":[...]};
//	__delete("oldGlobal");
//	__dom({...});            (only when the DOM changed)
//	__bindings([{...}]);     (only when bindings changed)
//	__dispatch({...});
func (d *Delta) Encode() ([]byte, error) {
	var buf bytes.Buffer
	hint := len(deltaHeader) + 1 + len(d.AppID) + len(d.CodeHash) + len(d.BaseHash) + 96
	for name, v := range d.SetGlobals {
		hint += len(name) + 12 + wireSizeHint(v)
	}
	buf.Grow(hint)
	w := &buf
	fmt.Fprintln(w, deltaHeader)
	if err := writeVar(w, "__appID", d.AppID); err != nil {
		return nil, err
	}
	if err := writeVar(w, "__codeHash", d.CodeHash); err != nil {
		return nil, err
	}
	if err := writeVar(w, "__baseHash", d.BaseHash); err != nil {
		return nil, err
	}
	for _, name := range sortedGlobalNames(d.SetGlobals) {
		if err := checkReserved(d.SetGlobals[name]); err != nil {
			return nil, fmt.Errorf("snapshot: delta global %q: %w", name, err)
		}
		enc, err := encodeValue(d.SetGlobals[name])
		if err != nil {
			return nil, fmt.Errorf("snapshot: delta global %q: %w", name, err)
		}
		fmt.Fprintf(w, "var %s = %s;\n", name, enc)
	}
	for _, name := range d.DelGlobals {
		enc, err := json.Marshal(name)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "__delete(%s);\n", enc)
	}
	if d.DOM != nil {
		dom, err := webapp.MarshalDOM(d.DOM)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "__dom(%s);\n", dom)
	}
	if d.BindingsChanged {
		enc, err := json.Marshal(d.Bindings)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "__bindings(%s);\n", enc)
	}
	for _, ev := range d.Pending {
		enc, err := json.Marshal(wireEvent{
			Target: ev.Target, Type: ev.Type, Payload: toWire(ev.Payload),
		})
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "__dispatch(%s);\n", enc)
	}
	return buf.Bytes(), nil
}

// DecodeDelta parses a delta produced by Encode.
func DecodeDelta(data []byte) (*Delta, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1024), 1<<30)
	if !sc.Scan() || sc.Text() != deltaHeader {
		return nil, fmt.Errorf("%w: missing delta header", ErrCorrupt)
	}
	d := &Delta{SetGlobals: make(map[string]webapp.Value)}
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if err := d.decodeLine(line); err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrCorrupt, lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("snapshot: decode delta: %w", err)
	}
	if d.AppID == "" || d.CodeHash == "" || d.BaseHash == "" {
		return nil, fmt.Errorf("%w: delta missing identity fields", ErrCorrupt)
	}
	return d, nil
}

func (d *Delta) decodeLine(line string) error {
	switch {
	case strings.HasPrefix(line, "var "):
		rest := strings.TrimPrefix(line, "var ")
		eq := strings.Index(rest, " = ")
		if eq < 0 || !strings.HasSuffix(rest, ";") {
			return fmt.Errorf("malformed var statement")
		}
		name := rest[:eq]
		body := rest[eq+3 : len(rest)-1]
		switch name {
		case "__appID", "__codeHash", "__baseHash":
			var v string
			if err := json.Unmarshal([]byte(body), &v); err != nil {
				return err
			}
			switch name {
			case "__appID":
				d.AppID = v
			case "__codeHash":
				d.CodeHash = v
			default:
				d.BaseHash = v
			}
			return nil
		default:
			v, err := decodeValue(body)
			if err != nil {
				return fmt.Errorf("global %q: %w", name, err)
			}
			d.SetGlobals[name] = v
			return nil
		}
	case strings.HasPrefix(line, "__delete("):
		body, err := callBody(line, "__delete")
		if err != nil {
			return err
		}
		var name string
		if err := json.Unmarshal([]byte(body), &name); err != nil {
			return err
		}
		d.DelGlobals = append(d.DelGlobals, name)
		return nil
	case strings.HasPrefix(line, "__dom("):
		body, err := callBody(line, "__dom")
		if err != nil {
			return err
		}
		dom, err := webapp.UnmarshalDOM([]byte(body))
		if err != nil {
			return err
		}
		d.DOM = dom
		return nil
	case strings.HasPrefix(line, "__bindings("):
		body, err := callBody(line, "__bindings")
		if err != nil {
			return err
		}
		var bs []webapp.Binding
		if err := json.Unmarshal([]byte(body), &bs); err != nil {
			return err
		}
		d.BindingsChanged = true
		d.Bindings = bs
		return nil
	case strings.HasPrefix(line, "__dispatch("):
		body, err := callBody(line, "__dispatch")
		if err != nil {
			return err
		}
		var we wireEvent
		if err := json.Unmarshal([]byte(body), &we); err != nil {
			return err
		}
		payload, err := fromWire(we.Payload)
		if err != nil {
			return err
		}
		d.Pending = append(d.Pending, webapp.Event{Target: we.Target, Type: we.Type, Payload: payload})
		return nil
	default:
		return fmt.Errorf("unrecognized statement %.40q", line)
	}
}

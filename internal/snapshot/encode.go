package snapshot

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"websnap/internal/nn"
	"websnap/internal/webapp"
)

// header is the first line of every encoded snapshot.
const header = "// websnap-snapshot v1"

// f32Key marks a Float32Array inside the JSON value encoding, standing in
// for JavaScript's `new Float32Array([...])`. It is reserved: captured app
// state must not use it as a map key.
const f32Key = "__f32__"

// Encode renders the snapshot as its textual program form — "the snapshot
// app". One declaration per line:
//
//	// websnap-snapshot v1
//	var __appID = "...";
//	var __codeHash = "...";
//	__model("gnet", {...spec...}, "<base64 weights or empty>");
//	var feature = {"__f32__":[0.12,-1.5,...]};
//	__dom({...});
//	__bind({...});
//	__dispatch({"target":"btn","type":"front_complete"});
//
// Running the snapshot (Restore) rebuilds exactly this state and
// re-dispatches the pending events.
//
// The encoder writes directly into one bytes.Buffer pre-sized from the
// model blob and feature-array sizes, so a snapshot dominated by weights
// is assembled in a single allocation with no intermediate buffering.
func (s *Snapshot) Encode() ([]byte, error) {
	var buf bytes.Buffer
	buf.Grow(s.encodedSizeHint())
	w := &buf
	fmt.Fprintln(w, header)
	if err := writeVar(w, "__appID", s.AppID); err != nil {
		return nil, err
	}
	if err := writeVar(w, "__codeHash", s.CodeHash); err != nil {
		return nil, err
	}
	for _, ms := range s.Models {
		spec, err := json.Marshal(ms.Spec)
		if err != nil {
			return nil, fmt.Errorf("snapshot: encode model %q spec: %w", ms.Name, err)
		}
		name, err := json.Marshal(ms.Name)
		if err != nil {
			return nil, err
		}
		blob := ""
		if ms.Weights != nil {
			blob = base64.StdEncoding.EncodeToString(ms.Weights)
		}
		fmt.Fprintf(w, "__model(%s, %s, %q);\n", name, spec, blob)
	}
	for _, name := range sortedGlobalNames(s.Globals) {
		enc, err := encodeValue(s.Globals[name])
		if err != nil {
			return nil, fmt.Errorf("snapshot: encode global %q: %w", name, err)
		}
		fmt.Fprintf(w, "var %s = %s;\n", name, enc)
	}
	dom, err := webapp.MarshalDOM(s.DOM)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "__dom(%s);\n", dom)
	for _, b := range s.Bindings {
		enc, err := json.Marshal(b)
		if err != nil {
			return nil, fmt.Errorf("snapshot: encode binding: %w", err)
		}
		fmt.Fprintf(w, "__bind(%s);\n", enc)
	}
	for _, ev := range s.Pending {
		enc, err := json.Marshal(wireEvent{
			Target: ev.Target, Type: ev.Type, Payload: toWire(ev.Payload),
		})
		if err != nil {
			return nil, fmt.Errorf("snapshot: encode event: %w", err)
		}
		fmt.Fprintf(w, "__dispatch(%s);\n", enc)
	}
	return buf.Bytes(), nil
}

// encodedSizeHint estimates the encoded snapshot size so Encode can
// reserve the buffer up front. The dominant terms — base64 model weights
// and textual Float32Array features — are computed exactly or nearly so;
// structural framing is a rough floor (Grow tolerates underestimates, a
// short tail just appends normally).
func (s *Snapshot) encodedSizeHint() int {
	n := len(header) + 1
	n += len(s.AppID) + len(s.CodeHash) + 2*len(`var __codeHash = "";`+"\n")
	for _, ms := range s.Models {
		n += len(`__model(, , "");`+"\n") + len(ms.Name) + 2
		n += base64.StdEncoding.EncodedLen(len(ms.Weights))
		n += 512 // serialized layer spec
	}
	for name, v := range s.Globals {
		n += len(`var  = ;`+"\n") + len(name) + wireSizeHint(v)
	}
	n += 256 // __dom / __bind / __dispatch framing floor
	return n
}

// wireSizeHint estimates the JSON-encoded size of a captured value.
func wireSizeHint(v webapp.Value) int {
	switch t := v.(type) {
	case webapp.Float32Array:
		// {"__f32__":[...]} with ~12 digits plus separator per float.
		return len(f32Key) + 6 + 13*len(t)
	case []webapp.Value:
		n := 2
		for _, e := range t {
			n += wireSizeHint(e) + 1
		}
		return n
	case map[string]webapp.Value:
		n := 2
		for k, e := range t {
			n += len(k) + 4 + wireSizeHint(e)
		}
		return n
	case string:
		return len(t) + 2
	default:
		return 8
	}
}

// Decode parses a textual snapshot produced by Encode.
func Decode(data []byte) (*Snapshot, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1024), 1<<30)
	if !sc.Scan() || sc.Text() != header {
		return nil, fmt.Errorf("%w: missing header", ErrCorrupt)
	}
	s := &Snapshot{Globals: make(map[string]webapp.Value)}
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if err := s.decodeLine(line); err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrCorrupt, lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("snapshot: decode: %w", err)
	}
	if s.AppID == "" || s.CodeHash == "" {
		return nil, fmt.Errorf("%w: missing __appID or __codeHash", ErrCorrupt)
	}
	if s.DOM == nil {
		return nil, fmt.Errorf("%w: missing __dom", ErrCorrupt)
	}
	return s, nil
}

type wireEvent struct {
	Target  string `json:"target"`
	Type    string `json:"type"`
	Payload any    `json:"payload,omitempty"`
}

func (s *Snapshot) decodeLine(line string) error {
	switch {
	case strings.HasPrefix(line, "var "):
		return s.decodeVar(line)
	case strings.HasPrefix(line, "__model("):
		return s.decodeModel(line)
	case strings.HasPrefix(line, "__dom("):
		body, err := callBody(line, "__dom")
		if err != nil {
			return err
		}
		dom, err := webapp.UnmarshalDOM([]byte(body))
		if err != nil {
			return err
		}
		s.DOM = dom
		return nil
	case strings.HasPrefix(line, "__bind("):
		body, err := callBody(line, "__bind")
		if err != nil {
			return err
		}
		var b webapp.Binding
		if err := json.Unmarshal([]byte(body), &b); err != nil {
			return err
		}
		s.Bindings = append(s.Bindings, b)
		return nil
	case strings.HasPrefix(line, "__dispatch("):
		body, err := callBody(line, "__dispatch")
		if err != nil {
			return err
		}
		var we wireEvent
		if err := json.Unmarshal([]byte(body), &we); err != nil {
			return err
		}
		payload, err := fromWire(we.Payload)
		if err != nil {
			return err
		}
		s.Pending = append(s.Pending, webapp.Event{Target: we.Target, Type: we.Type, Payload: payload})
		return nil
	default:
		return fmt.Errorf("unrecognized statement %.40q", line)
	}
}

func (s *Snapshot) decodeVar(line string) error {
	rest := strings.TrimPrefix(line, "var ")
	eq := strings.Index(rest, " = ")
	if eq < 0 || !strings.HasSuffix(rest, ";") {
		return fmt.Errorf("malformed var statement")
	}
	name := rest[:eq]
	body := rest[eq+3 : len(rest)-1]
	switch name {
	case "__appID", "__codeHash":
		var v string
		if err := json.Unmarshal([]byte(body), &v); err != nil {
			return err
		}
		if name == "__appID" {
			s.AppID = v
		} else {
			s.CodeHash = v
		}
		return nil
	default:
		v, err := decodeValue(body)
		if err != nil {
			return fmt.Errorf("global %q: %w", name, err)
		}
		s.Globals[name] = v
		return nil
	}
}

func (s *Snapshot) decodeModel(line string) error {
	body, err := callBody(line, "__model")
	if err != nil {
		return err
	}
	dec := json.NewDecoder(strings.NewReader("[" + body + "]"))
	var args []json.RawMessage
	if err := dec.Decode(&args); err != nil || len(args) != 3 {
		return fmt.Errorf("malformed __model arguments: %v", err)
	}
	var ms ModelState
	if err := json.Unmarshal(args[0], &ms.Name); err != nil {
		return err
	}
	if err := json.Unmarshal(args[1], &ms.Spec); err != nil {
		return err
	}
	var blob string
	if err := json.Unmarshal(args[2], &blob); err != nil {
		return err
	}
	if blob != "" {
		ms.Weights, err = base64.StdEncoding.DecodeString(blob)
		if err != nil {
			return fmt.Errorf("model weights: %w", err)
		}
	}
	s.Models = append(s.Models, ms)
	return nil
}

// writeVar emits `var name = "<json string>";`.
func writeVar(w *bytes.Buffer, name, value string) error {
	enc, err := json.Marshal(value)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "var %s = %s;\n", name, enc)
	return err
}

// callBody extracts X from `name(X);`.
func callBody(line, name string) (string, error) {
	if !strings.HasPrefix(line, name+"(") || !strings.HasSuffix(line, ");") {
		return "", fmt.Errorf("malformed %s statement", name)
	}
	return line[len(name)+1 : len(line)-2], nil
}

// encodeValue renders a canonical value as single-line JSON with
// Float32Array as the {"__f32__": [...]} marker object. Typed-array floats
// therefore serialize textually, like JS array literals in the paper's
// snapshots.
func encodeValue(v webapp.Value) (string, error) {
	data, err := json.Marshal(toWire(v))
	if err != nil {
		return "", err
	}
	return string(data), nil
}

func decodeValue(body string) (webapp.Value, error) {
	var raw any
	if err := json.Unmarshal([]byte(body), &raw); err != nil {
		return nil, err
	}
	return fromWire(raw)
}

// toWire maps the canonical value tree to a json.Marshal-able tree.
func toWire(v webapp.Value) any {
	switch t := v.(type) {
	case webapp.Float32Array:
		return map[string]any{f32Key: []float32(t)}
	case []webapp.Value:
		out := make([]any, len(t))
		for i, e := range t {
			out[i] = toWire(e)
		}
		return out
	case map[string]webapp.Value:
		out := make(map[string]any, len(t))
		for k, e := range t {
			out[k] = toWire(e)
		}
		return out
	default:
		return t
	}
}

// fromWire maps a json.Unmarshal-ed tree back to canonical value form.
func fromWire(v any) (webapp.Value, error) {
	switch t := v.(type) {
	case nil, bool, float64, string:
		return t, nil
	case []any:
		out := make([]webapp.Value, len(t))
		for i, e := range t {
			n, err := fromWire(e)
			if err != nil {
				return nil, err
			}
			out[i] = n
		}
		return out, nil
	case map[string]any:
		if raw, ok := t[f32Key]; ok && len(t) == 1 {
			arr, ok := raw.([]any)
			if !ok {
				return nil, fmt.Errorf("%s marker is not an array", f32Key)
			}
			fa := make(webapp.Float32Array, len(arr))
			for i, e := range arr {
				f, ok := e.(float64)
				if !ok {
					return nil, fmt.Errorf("%s element %d is not a number", f32Key, i)
				}
				fa[i] = float32(f)
			}
			return fa, nil
		}
		out := make(map[string]webapp.Value, len(t))
		for k, e := range t {
			n, err := fromWire(e)
			if err != nil {
				return nil, err
			}
			out[k] = n
		}
		return out, nil
	default:
		return nil, fmt.Errorf("unsupported wire type %T", v)
	}
}

// checkReserved rejects values that would collide with the Float32Array
// marker encoding.
func checkReserved(v webapp.Value) error {
	switch t := v.(type) {
	case []webapp.Value:
		for _, e := range t {
			if err := checkReserved(e); err != nil {
				return err
			}
		}
	case map[string]webapp.Value:
		for k, e := range t {
			if k == f32Key {
				return fmt.Errorf("%w: %q", ErrReservedKey, f32Key)
			}
			if err := checkReserved(e); err != nil {
				return err
			}
		}
	}
	return nil
}

func sortedGlobalNames(globals map[string]webapp.Value) []string {
	names := make([]string, 0, len(globals))
	for k := range globals {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

func encodeWeights(net *nn.Network) ([]byte, error) {
	var buf bytes.Buffer
	if err := net.EncodeWeights(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeWeights(net *nn.Network, blob []byte) error {
	return net.DecodeWeights(bytes.NewReader(blob))
}

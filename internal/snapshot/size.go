package snapshot

import (
	"encoding/base64"
	"encoding/json"

	"websnap/internal/webapp"
)

// SizeBreakdown decomposes a snapshot's encoded size the way the paper's
// Table 1 reports it: the model part (which pre-sending removes), the
// feature-data part (the typed arrays, dominant in partial inference), and
// the small remainder of code and state.
type SizeBreakdown struct {
	// TotalBytes is the full encoded size.
	TotalBytes int64 `json:"totalBytes"`
	// ModelBytes is the size of the __model lines (descriptors plus any
	// included weight blobs).
	ModelBytes int64 `json:"modelBytes"`
	// FeatureBytes is the textual size of all Float32Array content in
	// globals and pending event payloads.
	FeatureBytes int64 `json:"featureBytes"`
	// StateBytes is everything else: plain globals, DOM, bindings,
	// pending-event scaffolding — "snapshot except feature data" minus
	// the model.
	StateBytes int64 `json:"stateBytes"`
}

// ExceptFeatureBytes returns the Table 1 quantity "snapshot except feature
// data": total size minus the typed-array payloads.
func (b SizeBreakdown) ExceptFeatureBytes() int64 { return b.TotalBytes - b.FeatureBytes }

// Breakdown encodes the snapshot and decomposes its size.
func (s *Snapshot) Breakdown() (SizeBreakdown, error) {
	data, err := s.Encode()
	if err != nil {
		return SizeBreakdown{}, err
	}
	var bd SizeBreakdown
	bd.TotalBytes = int64(len(data))
	for _, ms := range s.Models {
		spec, err := json.Marshal(ms.Spec)
		if err != nil {
			return SizeBreakdown{}, err
		}
		// "__model(" + name-json + ", " + spec + ", " + quoted blob + ");\n"
		name, err := json.Marshal(ms.Name)
		if err != nil {
			return SizeBreakdown{}, err
		}
		blobLen := int64(2) // the surrounding quotes
		if ms.Weights != nil {
			blobLen += int64(base64.StdEncoding.EncodedLen(len(ms.Weights)))
		}
		bd.ModelBytes += int64(len("__model(")+len(name)+2+len(spec)+2) + blobLen + int64(len(");\n"))
	}
	for _, v := range s.Globals {
		bd.FeatureBytes += featureTextBytes(v)
	}
	for _, ev := range s.Pending {
		bd.FeatureBytes += featureTextBytes(ev.Payload)
	}
	bd.StateBytes = bd.TotalBytes - bd.ModelBytes - bd.FeatureBytes
	return bd, nil
}

// featureTextBytes measures the textual size of every Float32Array in the
// value tree, as encoded inside the snapshot.
func featureTextBytes(v webapp.Value) int64 {
	switch t := v.(type) {
	case webapp.Float32Array:
		data, err := json.Marshal([]float32(t))
		if err != nil {
			return 0
		}
		return int64(len(data))
	case []webapp.Value:
		var total int64
		for _, e := range t {
			total += featureTextBytes(e)
		}
		return total
	case map[string]webapp.Value:
		var total int64
		for _, e := range t {
			total += featureTextBytes(e)
		}
		return total
	default:
		return 0
	}
}

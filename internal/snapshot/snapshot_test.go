package snapshot

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"websnap/internal/nn"
	"websnap/internal/tensor"
	"websnap/internal/webapp"
)

// tinyModel builds a small but real CNN for snapshot tests.
func tinyModel(t *testing.T) *nn.Network {
	t.Helper()
	in, err := nn.NewInput("data", 1, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	conv, err := nn.NewConv("conv1", 1, 2, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := nn.NewPool("pool1", nn.MaxPool, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := nn.NewFC("fc1", 2*3*3, 3)
	if err != nil {
		t.Fatal(err)
	}
	net, err := nn.NewNetwork("tinymodel", in, conv, nn.NewReLU("relu1"), pool, fc, nn.NewSoftmax("prob"))
	if err != nil {
		t.Fatal(err)
	}
	net.InitWeights(42)
	return net
}

// inferenceApp mirrors the paper's Fig 2 example: a load handler that puts
// an image into a global, and an inference handler that runs the model and
// writes the result into the DOM.
func inferenceApp(t *testing.T) (*webapp.App, *webapp.Registry) {
	t.Helper()
	reg := webapp.NewRegistry("fig2-app")
	reg.MustRegister("load_image", func(app *webapp.App, ev webapp.Event) error {
		img := make(webapp.Float32Array, 36)
		for i := range img {
			img[i] = float32(i%7) * 0.3
		}
		return app.SetGlobal("image", img)
	})
	reg.MustRegister("inference", func(app *webapp.App, ev webapp.Event) error {
		model, ok := app.Model("tinymodel")
		if !ok {
			return errors.New("model not loaded")
		}
		imgV, ok := app.Global("image")
		if !ok {
			return errors.New("image not loaded")
		}
		img := imgV.(webapp.Float32Array)
		in, err := tensor.FromSlice([]float32(img), 1, 6, 6)
		if err != nil {
			return err
		}
		out, err := model.Forward(in)
		if err != nil {
			return err
		}
		idx, _ := out.MaxIndex()
		app.DOM().Find("result").Text = []string{"cat", "dog", "bird"}[idx]
		return app.SetGlobal("scores", webapp.Float32Array(out.Data()))
	})
	app, err := webapp.NewApp("fig2-instance", reg)
	if err != nil {
		t.Fatal(err)
	}
	app.DOM().AppendChild(webapp.NewNode("button", "btn"))
	app.DOM().AppendChild(webapp.NewNode("p", "result"))
	app.LoadModel("tinymodel", tinyModel(t))
	if err := app.AddEventListener("btn", "load", "load_image"); err != nil {
		t.Fatal(err)
	}
	if err := app.AddEventListener("btn", "click", "inference"); err != nil {
		t.Fatal(err)
	}
	app.DispatchEvent(webapp.Event{Target: "btn", Type: "load"})
	if _, err := app.Run(1); err != nil {
		t.Fatal(err)
	}
	return app, reg
}

// TestOffloadRoundTrip exercises the paper's whole Fig 3 flow in-process:
// capture just before the inference handler runs, encode, decode, restore
// on a "server", run the handler there, capture the result, bring it back,
// and check the client sees the same result as local execution.
func TestOffloadRoundTrip(t *testing.T) {
	app, reg := inferenceApp(t)

	// Local reference execution.
	local, _ := webapp.NewApp("ref", reg)
	local.ReplaceGlobals(app.Globals())
	local.ReplaceDOM(app.DOM().Clone())
	if err := local.ReplaceBindings(app.Bindings()); err != nil {
		t.Fatal(err)
	}
	m, _ := app.Model("tinymodel")
	local.LoadModel("tinymodel", m)
	local.DispatchEvent(webapp.Event{Target: "btn", Type: "click"})
	if _, err := local.Run(1); err != nil {
		t.Fatal(err)
	}
	wantResult := local.DOM().Find("result").Text
	if wantResult == "" || wantResult == "?" {
		t.Fatalf("reference run produced no result")
	}

	// Client: capture with the pending inference event.
	snap, err := Capture(app, Options{
		PendingEvent: &webapp.Event{Target: "btn", Type: "click"},
	})
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	wire, err := snap.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}

	// Server: decode, restore, continue execution.
	serverSnap, err := Decode(wire)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	serverApp, err := Restore(serverSnap, reg, RestoreOptions{})
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if _, err := serverApp.Run(5); err != nil {
		t.Fatalf("server Run: %v", err)
	}
	if got := serverApp.DOM().Find("result").Text; got != wantResult {
		t.Fatalf("server result = %q, want %q", got, wantResult)
	}

	// Server: capture the result snapshot (no model — client has it).
	resultSnap, err := Capture(serverApp, Options{DefaultModelPolicy: ModelOmit})
	if err != nil {
		t.Fatalf("result Capture: %v", err)
	}
	resultWire, err := resultSnap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(resultWire) >= len(wire) {
		t.Errorf("result snapshot (%d B) should be smaller than full snapshot (%d B)", len(resultWire), len(wire))
	}

	// Client: restore the result and keep its own model.
	back, err := Decode(resultWire)
	if err != nil {
		t.Fatal(err)
	}
	clientApp, err := Restore(back, reg, RestoreOptions{
		KeepModels: map[string]*nn.Network{"tinymodel": m},
	})
	if err != nil {
		t.Fatalf("client Restore: %v", err)
	}
	if got := clientApp.DOM().Find("result").Text; got != wantResult {
		t.Errorf("client result = %q, want %q", got, wantResult)
	}
	if _, ok := clientApp.Model("tinymodel"); !ok {
		t.Error("client should retain its model")
	}
	scores, ok := clientApp.Global("scores")
	if !ok {
		t.Fatal("scores global missing after round trip")
	}
	wantScores, _ := local.Global("scores")
	if !webapp.DeepEqual(scores, wantScores) {
		t.Error("scores differ from local execution")
	}
}

func TestEncodeDecodeStateFidelity(t *testing.T) {
	app, _ := inferenceApp(t)
	if err := app.SetGlobal("config", map[string]webapp.Value{
		"threshold": 0.5,
		"labels":    []webapp.Value{"a", "b"},
		"debug":     true,
		"none":      nil,
	}); err != nil {
		t.Fatal(err)
	}
	snap, err := Capture(app, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wire, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.AppID != snap.AppID || got.CodeHash != snap.CodeHash {
		t.Error("identity fields corrupted")
	}
	if !got.DOM.Equal(snap.DOM) {
		t.Error("DOM corrupted")
	}
	if len(got.Bindings) != len(snap.Bindings) {
		t.Fatalf("bindings %d != %d", len(got.Bindings), len(snap.Bindings))
	}
	for name, v := range snap.Globals {
		if !webapp.DeepEqual(got.Globals[name], v) {
			t.Errorf("global %q corrupted", name)
		}
	}
	if len(got.Models) != 1 || got.Models[0].Name != "tinymodel" {
		t.Fatalf("models = %+v", got.Models)
	}
	if got.Models[0].Weights == nil {
		t.Error("ModelFull policy should include weights")
	}
}

func TestCaptureIsolation(t *testing.T) {
	app, _ := inferenceApp(t)
	snap, err := Capture(app, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the app after capture; the snapshot must not change.
	img, _ := app.Global("image")
	img.(webapp.Float32Array)[0] = 777
	app.DOM().Find("result").Text = "mutated"
	if snap.Globals["image"].(webapp.Float32Array)[0] == 777 {
		t.Error("snapshot aliases app globals")
	}
	if snap.DOM.Find("result").Text == "mutated" {
		t.Error("snapshot aliases app DOM")
	}
}

func TestModelPolicies(t *testing.T) {
	app, _ := inferenceApp(t)

	full, err := Capture(app, Options{})
	if err != nil {
		t.Fatal(err)
	}
	specOnly, err := Capture(app, Options{DefaultModelPolicy: ModelSpecOnly})
	if err != nil {
		t.Fatal(err)
	}
	omit, err := Capture(app, Options{DefaultModelPolicy: ModelOmit})
	if err != nil {
		t.Fatal(err)
	}
	fullWire, _ := full.Encode()
	specWire, _ := specOnly.Encode()
	omitWire, _ := omit.Encode()
	if !(len(fullWire) > len(specWire) && len(specWire) > len(omitWire)) {
		t.Errorf("size ordering violated: full=%d spec=%d omit=%d",
			len(fullWire), len(specWire), len(omitWire))
	}
	if len(omit.Models) != 0 {
		t.Error("ModelOmit should drop models")
	}
	if specOnly.Models[0].Weights != nil {
		t.Error("ModelSpecOnly should not carry weights")
	}

	perModel, err := Capture(app, Options{
		DefaultModelPolicy: ModelFull,
		ModelPolicies:      map[string]ModelPolicy{"tinymodel": ModelSpecOnly},
	})
	if err != nil {
		t.Fatal(err)
	}
	if perModel.Models[0].Weights != nil {
		t.Error("per-model policy override ignored")
	}
}

func TestRestoreSpecOnlyNeedsResolver(t *testing.T) {
	app, reg := inferenceApp(t)
	snap, err := Capture(app, Options{DefaultModelPolicy: ModelSpecOnly})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(snap, reg, RestoreOptions{}); !errors.Is(err, ErrModelUnavailable) {
		t.Errorf("restore without resolver = %v, want ErrModelUnavailable", err)
	}
	m, _ := app.Model("tinymodel")
	restored, err := Restore(snap, reg, RestoreOptions{
		Models: ResolverFunc(func(name string) (*nn.Network, bool) {
			if name == "tinymodel" {
				return m, true
			}
			return nil, false
		}),
	})
	if err != nil {
		t.Fatalf("restore with resolver: %v", err)
	}
	if _, ok := restored.Model("tinymodel"); !ok {
		t.Error("resolved model missing")
	}
}

func TestRestoreCodeMismatch(t *testing.T) {
	app, _ := inferenceApp(t)
	snap, err := Capture(app, Options{})
	if err != nil {
		t.Fatal(err)
	}
	other := webapp.NewRegistry("different-app")
	other.MustRegister("x", func(*webapp.App, webapp.Event) error { return nil })
	if _, err := Restore(snap, other, RestoreOptions{}); !errors.Is(err, ErrCodeMismatch) {
		t.Errorf("err = %v, want ErrCodeMismatch", err)
	}
}

func TestReservedKeyRejected(t *testing.T) {
	app, _ := inferenceApp(t)
	if err := app.SetGlobal("sneaky", map[string]webapp.Value{"__f32__": "boom"}); err != nil {
		t.Fatal(err)
	}
	if _, err := Capture(app, Options{}); !errors.Is(err, ErrReservedKey) {
		t.Errorf("err = %v, want ErrReservedKey", err)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	app, _ := inferenceApp(t)
	snap, err := Capture(app, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wire, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad header", []byte("// not a snapshot\n")},
		{"garbage line", append([]byte(header+"\n"), []byte("meow;\n")...)},
		{"truncated", wire[:len(wire)/3]},
		{"no dom", []byte(header + "\nvar __appID = \"a\";\nvar __codeHash = \"b\";\n")},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Decode(tt.data); err == nil {
				t.Error("corrupt input decoded without error")
			}
		})
	}
}

func TestDecodeCorruptModelLine(t *testing.T) {
	lines := []string{
		header,
		`var __appID = "a";`,
		`var __codeHash = "b";`,
		`__model("m", {"name":"m","layers":[]}, "!!notbase64!!");`,
		`__dom({"tag":"body"});`,
	}
	if _, err := Decode([]byte(strings.Join(lines, "\n") + "\n")); err == nil {
		t.Error("bad base64 weights decoded without error")
	}
}

func TestBreakdown(t *testing.T) {
	app, _ := inferenceApp(t)
	snap, err := Capture(app, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bd, err := snap.Breakdown()
	if err != nil {
		t.Fatal(err)
	}
	if bd.TotalBytes <= 0 {
		t.Fatal("total must be positive")
	}
	if bd.ModelBytes <= 0 || bd.FeatureBytes <= 0 || bd.StateBytes <= 0 {
		t.Errorf("breakdown has non-positive component: %+v", bd)
	}
	if bd.ModelBytes+bd.FeatureBytes+bd.StateBytes != bd.TotalBytes {
		t.Errorf("breakdown does not sum: %+v", bd)
	}
	if bd.ExceptFeatureBytes() != bd.TotalBytes-bd.FeatureBytes {
		t.Error("ExceptFeatureBytes inconsistent")
	}

	// Pre-sending (spec-only) must shrink the model part but leave the
	// feature part unchanged.
	specOnly, err := Capture(app, Options{DefaultModelPolicy: ModelSpecOnly})
	if err != nil {
		t.Fatal(err)
	}
	bd2, err := specOnly.Breakdown()
	if err != nil {
		t.Fatal(err)
	}
	if bd2.ModelBytes >= bd.ModelBytes {
		t.Error("spec-only model part should shrink")
	}
	if bd2.FeatureBytes != bd.FeatureBytes {
		t.Error("feature part should be unaffected by model policy")
	}
}

// Property: any normalized value tree survives the snapshot wire encoding.
func TestQuickValueWireRoundTrip(t *testing.T) {
	f := func(n float64, s string, fs []float32, flag bool) bool {
		v, err := webapp.Normalize(map[string]webapp.Value{
			"n": n, "s": s, "f": fs, "b": flag,
			"nested": []webapp.Value{n, map[string]webapp.Value{"x": s}},
		})
		if err != nil {
			return false
		}
		enc, err := encodeValue(v)
		if err != nil {
			return false
		}
		got, err := decodeValue(enc)
		if err != nil {
			return false
		}
		return webapp.DeepEqual(v, got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: encoding is deterministic — same snapshot, same bytes.
func TestQuickEncodeDeterministic(t *testing.T) {
	app, _ := inferenceApp(t)
	snap, err := Capture(app, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		b, err := snap.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatal("Encode is not deterministic")
		}
	}
}

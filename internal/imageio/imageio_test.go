package imageio

import (
	"bytes"
	"image"
	"image/color"
	"image/png"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// testImage builds an 8x8 image: left half red, right half blue.
func testImage() image.Image {
	img := image.NewRGBA(image.Rect(0, 0, 8, 8))
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			if x < 4 {
				img.Set(x, y, color.RGBA{R: 255, A: 255})
			} else {
				img.Set(x, y, color.RGBA{B: 255, A: 255})
			}
		}
	}
	return img
}

func TestFromImageChannelPlanes(t *testing.T) {
	out, err := FromImage(testImage(), []int{3, 8, 8}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3*8*8 {
		t.Fatalf("len = %d", len(out))
	}
	plane := 64
	// Left pixel: red plane ~1, blue plane ~0.
	if out[0*plane+0] < 0.99 || out[2*plane+0] > 0.01 {
		t.Errorf("left pixel R=%v B=%v, want ~1/~0", out[0*plane+0], out[2*plane+0])
	}
	// Right pixel: blue plane ~1.
	if out[2*plane+7] < 0.99 || out[0*plane+7] > 0.01 {
		t.Errorf("right pixel R=%v B=%v, want ~0/~1", out[0*plane+7], out[2*plane+7])
	}
}

func TestFromImageResize(t *testing.T) {
	out, err := FromImage(testImage(), []int{3, 4, 4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3*4*4 {
		t.Fatalf("len = %d", len(out))
	}
	plane := 16
	// Downsampled left still red, right still blue.
	if out[0*plane+0] < 0.99 {
		t.Error("resize lost red plane")
	}
	if out[2*plane+3] < 0.99 {
		t.Error("resize lost blue plane")
	}
	// Upsample too.
	up, err := FromImage(testImage(), []int{3, 16, 16}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(up) != 3*16*16 {
		t.Fatalf("upsample len = %d", len(up))
	}
}

func TestMeanSubtraction(t *testing.T) {
	plain, err := FromImage(testImage(), []int{3, 8, 8}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	norm, err := FromImage(testImage(), []int{3, 8, 8}, Options{MeanRGB: ImageNetMean})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		want := plain[c*64] - ImageNetMean[c]
		if got := norm[c*64]; math.Abs(float64(got-want)) > 1e-6 {
			t.Errorf("channel %d: %v, want %v", c, got, want)
		}
	}
}

func TestDecodeAndLoadPNG(t *testing.T) {
	var buf bytes.Buffer
	if err := png.Encode(&buf, testImage()); err != nil {
		t.Fatal(err)
	}
	out, err := Decode(bytes.NewReader(buf.Bytes()), []int{3, 8, 8}, Options{})
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if out[0] < 0.99 {
		t.Error("decoded red plane wrong")
	}

	path := filepath.Join(t.TempDir(), "img.png")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	out2, err := Load(path, []int{3, 8, 8}, Options{})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for i := range out {
		if out[i] != out2[i] {
			t.Fatal("Load and Decode disagree")
		}
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.png"), []int{3, 8, 8}, Options{}); err == nil {
		t.Error("missing file should fail")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("not an image")), []int{3, 4, 4}, Options{}); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := FromImage(testImage(), []int{1, 4, 4}, Options{}); err == nil {
		t.Error("non-RGB shape should fail")
	}
	if _, err := FromImage(testImage(), []int{3, 4}, Options{}); err == nil {
		t.Error("rank-2 shape should fail")
	}
}

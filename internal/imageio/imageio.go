// Package imageio converts real image files (PNG, JPEG) into the
// Float32Array pixel tensors the ML web apps consume, with Caffe-style
// preprocessing: RGB channel planes, resize to the model's input geometry,
// and optional per-channel mean subtraction. It lets the offload CLI and
// examples classify actual photos instead of synthetic pixels.
package imageio

import (
	"fmt"
	"image"
	_ "image/jpeg" // register JPEG decoding
	_ "image/png"  // register PNG decoding
	"io"
	"os"

	"websnap/internal/webapp"
)

// Options controls preprocessing.
type Options struct {
	// MeanRGB is subtracted per channel after scaling to [0,1]. Zero
	// means no subtraction.
	MeanRGB [3]float32
}

// Load reads and decodes an image file and converts it to a [3,H,W]
// channel-planar Float32Array matching the given input shape.
func Load(path string, shape []int, opts Options) (webapp.Float32Array, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("imageio: %w", err)
	}
	defer f.Close()
	return Decode(f, shape, opts)
}

// Decode converts an encoded image stream to a [3,H,W] channel-planar
// Float32Array, resizing (nearest neighbor) to the target shape.
func Decode(r io.Reader, shape []int, opts Options) (webapp.Float32Array, error) {
	img, format, err := image.Decode(r)
	if err != nil {
		return nil, fmt.Errorf("imageio: decode: %w", err)
	}
	_ = format
	return FromImage(img, shape, opts)
}

// FromImage converts a decoded image to the target shape.
func FromImage(img image.Image, shape []int, opts Options) (webapp.Float32Array, error) {
	if len(shape) != 3 || shape[0] != 3 {
		return nil, fmt.Errorf("imageio: target shape %v is not [3 H W]", shape)
	}
	h, w := shape[1], shape[2]
	if h <= 0 || w <= 0 {
		return nil, fmt.Errorf("imageio: non-positive target size %dx%d", h, w)
	}
	bounds := img.Bounds()
	sw, sh := bounds.Dx(), bounds.Dy()
	if sw == 0 || sh == 0 {
		return nil, fmt.Errorf("imageio: empty source image")
	}
	out := make(webapp.Float32Array, 3*h*w)
	plane := h * w
	for y := 0; y < h; y++ {
		sy := bounds.Min.Y + y*sh/h
		for x := 0; x < w; x++ {
			sx := bounds.Min.X + x*sw/w
			r16, g16, b16, _ := img.At(sx, sy).RGBA()
			off := y*w + x
			out[0*plane+off] = float32(r16)/65535 - opts.MeanRGB[0]
			out[1*plane+off] = float32(g16)/65535 - opts.MeanRGB[1]
			out[2*plane+off] = float32(b16)/65535 - opts.MeanRGB[2]
		}
	}
	return out, nil
}

// ImageNetMean is the conventional per-channel RGB mean (on the [0,1]
// scale) used by Caffe-trained classification models.
var ImageNetMean = [3]float32{0.485, 0.456, 0.406}

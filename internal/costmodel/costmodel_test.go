package costmodel

import (
	"testing"
	"time"

	"websnap/internal/models"
	"websnap/internal/nn"
)

func TestServerFasterThanClient(t *testing.T) {
	for _, name := range models.Names() {
		t.Run(name, func(t *testing.T) {
			net, err := models.Build(name)
			if err != nil {
				t.Fatal(err)
			}
			client, err := ClientOdroid.NetworkTime(net)
			if err != nil {
				t.Fatal(err)
			}
			server, err := ServerX86.NetworkTime(net)
			if err != nil {
				t.Fatal(err)
			}
			if server >= client {
				t.Errorf("server %v >= client %v", server, client)
			}
			// The paper's Fig 6 shape: the server is several times
			// faster (same order as the HW ratio).
			if ratio := float64(client) / float64(server); ratio < 3 || ratio > 30 {
				t.Errorf("client/server ratio = %.1f, want 3..30", ratio)
			}
		})
	}
}

func TestLayerTimeMonotonicInFLOPs(t *testing.T) {
	small := nn.LayerInfo{Type: nn.TypeConv, FLOPs: 1e6}
	big := nn.LayerInfo{Type: nn.TypeConv, FLOPs: 1e9}
	ts, err := ClientOdroid.LayerTime(small)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := ClientOdroid.LayerTime(big)
	if err != nil {
		t.Fatal(err)
	}
	if tb <= ts {
		t.Errorf("1 GFLOP layer (%v) should take longer than 1 MFLOP layer (%v)", tb, ts)
	}
}

func TestLayerTimeDefaultThroughput(t *testing.T) {
	d := Device{Name: "d", DefaultFLOPS: 1e9, LayerOverhead: 0}
	got, err := d.LayerTime(nn.LayerInfo{Type: nn.TypeConv, FLOPs: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if got != time.Second {
		t.Errorf("LayerTime = %v, want 1s", got)
	}
}

func TestLayerTimeBadThroughput(t *testing.T) {
	d := Device{Name: "broken"}
	if _, err := d.LayerTime(nn.LayerInfo{Type: nn.TypeConv, FLOPs: 1}); err == nil {
		t.Error("zero throughput should error")
	}
}

func TestRangeTimeBounds(t *testing.T) {
	net, err := models.Build(models.AgeNet)
	if err != nil {
		t.Fatal(err)
	}
	infos, err := net.Describe()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ClientOdroid.RangeTime(infos, 5, 2); err == nil {
		t.Error("reversed range should error")
	}
	if _, err := ClientOdroid.RangeTime(infos, 0, len(infos)+1); err == nil {
		t.Error("overlong range should error")
	}
	zero, err := ClientOdroid.RangeTime(infos, 3, 3)
	if err != nil || zero != 0 {
		t.Errorf("empty range = %v, %v; want 0, nil", zero, err)
	}
}

func TestRangeTimeAdditive(t *testing.T) {
	net, err := models.Build(models.GenderNet)
	if err != nil {
		t.Fatal(err)
	}
	infos, err := net.Describe()
	if err != nil {
		t.Fatal(err)
	}
	k := len(infos) / 2
	front, err := ClientOdroid.RangeTime(infos, 0, k)
	if err != nil {
		t.Fatal(err)
	}
	rear, err := ClientOdroid.RangeTime(infos, k, len(infos))
	if err != nil {
		t.Fatal(err)
	}
	full, err := ClientOdroid.RangeTime(infos, 0, len(infos))
	if err != nil {
		t.Fatal(err)
	}
	if diff := (front + rear) - full; diff < -time.Microsecond || diff > time.Microsecond {
		t.Errorf("front+rear = %v, full = %v", front+rear, full)
	}
}

func TestSnapshotTimeGrowsWithSize(t *testing.T) {
	small := ClientOdroid.SnapshotTime(1 << 10)
	big := ClientOdroid.SnapshotTime(100 << 20)
	if big <= small {
		t.Errorf("snapshot time should grow with size: %v vs %v", small, big)
	}
	d := Device{SnapshotFixed: time.Millisecond}
	if got := d.SnapshotTime(1 << 30); got != time.Millisecond {
		t.Errorf("zero rate should fall back to fixed cost, got %v", got)
	}
}

// TestPaperCalibration pins the Fig 6 orderings the profiles were calibrated
// for; see DESIGN.md §4.
func TestPaperCalibration(t *testing.T) {
	google, err := models.Build(models.GoogLeNet)
	if err != nil {
		t.Fatal(err)
	}
	client, err := ClientOdroid.NetworkTime(google)
	if err != nil {
		t.Fatal(err)
	}
	server, err := ServerX86.NetworkTime(google)
	if err != nil {
		t.Fatal(err)
	}
	// GoogLeNet: tens of seconds on the client, a few seconds on the
	// server (no-GPU JS framework, per the paper).
	if client < 10*time.Second || client > 60*time.Second {
		t.Errorf("GoogLeNet client time = %v, want 10..60s", client)
	}
	if server < 500*time.Millisecond || server > 10*time.Second {
		t.Errorf("GoogLeNet server time = %v, want 0.5..10s", server)
	}
}

func TestBatchRangeTime(t *testing.T) {
	net, err := models.Build(models.AgeNet)
	if err != nil {
		t.Fatal(err)
	}
	infos, err := net.Describe()
	if err != nil {
		t.Fatal(err)
	}
	d := ServerX86
	one, err := d.RangeTime(infos, 0, len(infos))
	if err != nil {
		t.Fatal(err)
	}
	b1, err := d.BatchRangeTime(infos, 0, len(infos), 1)
	if err != nil {
		t.Fatal(err)
	}
	if b1 != one {
		t.Errorf("batch=1 time %v != RangeTime %v", b1, one)
	}
	b4, err := d.BatchRangeTime(infos, 0, len(infos), 4)
	if err != nil {
		t.Fatal(err)
	}
	if b4 <= one {
		t.Errorf("batch=4 time %v not greater than single %v", b4, one)
	}
	if b4 >= 4*one {
		t.Errorf("batch=4 time %v should beat 4 sequential passes %v", b4, 4*one)
	}
	// A device with no calibration gets no batching benefit beyond
	// amortized dispatch overhead.
	plain := d
	plain.BatchMarginalCost = 0
	p4, err := plain.BatchRangeTime(infos, 0, len(infos), 4)
	if err != nil {
		t.Fatal(err)
	}
	overhead := time.Duration(len(infos)) * d.LayerOverhead
	want := one + 3*(one-overhead)
	if p4 != want {
		t.Errorf("uncalibrated batch=4 = %v, want %v", p4, want)
	}
	if _, err := d.BatchRangeTime(infos, 0, len(infos), 0); err == nil {
		t.Error("batch=0 should error")
	}
}

// Package costmodel predicts per-layer DNN execution latency on a given
// device, in the style of Neurosurgeon's per-layer-type prediction models
// (Kang et al. 2017), which the paper uses to decide partial-inference
// partitioning points (§III.B.2).
//
// It also carries the calibrated device profiles that stand in for the
// paper's hardware: an Odroid-XU4-class client running a JS ML framework,
// and an x86 server (no GPU — the paper notes Caffe.js cannot use GPUs).
// Calibration constants are documented in DESIGN.md §4.
package costmodel

import (
	"fmt"
	"time"

	"websnap/internal/nn"
)

// Device models one execution platform's effective DNN throughput. The
// prediction model is linear per layer type (Neurosurgeon-style): predicted
// latency = FLOPs / throughput(type) + fixed per-layer dispatch overhead.
type Device struct {
	// Name identifies the profile in logs and experiment output.
	Name string
	// FLOPSByType maps a layer type to its effective throughput in
	// FLOP/s on this device. Types absent from the map fall back to
	// DefaultFLOPS.
	FLOPSByType map[nn.LayerType]float64
	// DefaultFLOPS is the throughput for layer types without a specific
	// regression.
	DefaultFLOPS float64
	// LayerOverhead is the fixed dispatch cost added per layer.
	LayerOverhead time.Duration
	// SnapshotFixed and SnapshotBytesPerSec model the cost of capturing
	// or restoring a snapshot of a given serialized size on this device
	// (the paper's Fig 7 "Snapshot Capture/Restoration" bars).
	SnapshotFixed       time.Duration
	SnapshotBytesPerSec float64
	// BatchMarginalCost is the relative compute cost of each additional
	// sample in a batched forward pass: a batch of n costs
	// 1 + (n-1)*BatchMarginalCost times one sample's compute. Batching
	// amortizes per-layer weight streaming and dispatch across the batch
	// (the same memory-reuse effect that makes im2col+GEMM convolution
	// several times faster than naive loops), so marginal samples are
	// cheaper than the first. Zero means "not calibrated" and is treated
	// as 1.0 — batching gives no benefit — so single-request experiment
	// results are unchanged.
	BatchMarginalCost float64
	// Int8Speedup is the throughput multiplier the quantized (int8)
	// quality tier gains on the compute-heavy layer types (Conv,
	// Inception, FC). Narrow arithmetic helps bandwidth-starved clients
	// more than wide servers, so the client's factor is typically larger
	// — which is what moves the optimal partition point when the int8
	// tier is selected. Zero means "not calibrated" and is treated as
	// 1.0: int8 predictions equal float32 ones.
	Int8Speedup float64
}

// quantizable reports whether the int8 tier accelerates this layer type.
// Only the GEMM-backed types execute in int8; activations, pooling, and
// normalization stay float32 at every precision.
func quantizable(t nn.LayerType) bool {
	return t == nn.TypeConv || t == nn.TypeInception || t == nn.TypeFC
}

// Profiles calibrated to reproduce the paper's orderings (DESIGN.md §4).
var (
	// ClientOdroid models the Odroid-XU4 ARM board executing a
	// JavaScript ML framework (slow: no SIMD, no GPU).
	ClientOdroid = Device{
		Name: "client-odroid-xu4",
		FLOPSByType: map[nn.LayerType]float64{
			nn.TypeConv:      0.15e9,
			nn.TypeInception: 0.15e9,
			nn.TypeFC:        0.25e9,
			nn.TypePool:      1.0e9,
			nn.TypeReLU:      2.0e9,
			nn.TypeLRN:       0.5e9,
			nn.TypeSoftmax:   1.0e9,
		},
		DefaultFLOPS:        0.5e9,
		LayerOverhead:       time.Millisecond,
		SnapshotFixed:       40 * time.Millisecond,
		SnapshotBytesPerSec: 60e6,
		// int8 typed arrays avoid the JS engine's float boxing and quarter
		// the memory traffic, a large win on this bandwidth-bound board.
		Int8Speedup: 3.0,
	}
	// ServerX86 models the 3.4 GHz quad-core x86 edge server, roughly
	// 10x the client's effective throughput.
	ServerX86 = Device{
		Name: "server-x86",
		FLOPSByType: map[nn.LayerType]float64{
			nn.TypeConv:      1.5e9,
			nn.TypeInception: 1.5e9,
			nn.TypeFC:        2.5e9,
			nn.TypePool:      10e9,
			nn.TypeReLU:      20e9,
			nn.TypeLRN:       5e9,
			nn.TypeSoftmax:   10e9,
		},
		DefaultFLOPS:        5e9,
		LayerOverhead:       200 * time.Microsecond,
		SnapshotFixed:       15 * time.Millisecond,
		SnapshotBytesPerSec: 400e6,
		// Marginal batched samples reuse each layer's weights already
		// resident in cache, so they cost ~60% of a cold pass on this
		// memory-bandwidth-bound x86 profile.
		BatchMarginalCost: 0.6,
		// The x86 float path is already vectorized, so int8 gains less
		// here than on the client — which is exactly why quantization
		// shifts the optimal split toward the client (more layers become
		// cheap enough to run locally).
		Int8Speedup: 2.0,
	}
)

// ServerX86GPU projects the near-future edge server the paper anticipates
// in §IV.A: "The server execution time itself will be sharply reduced in
// the near future, since ML web frameworks are starting to use GPUs for DNN
// execution (e.g., webGL can give ~80x speedup for DNN inference)". The
// compute-bound layer types get the 80x factor; memory-bound bookkeeping
// (snapshots, dispatch) is unchanged.
var ServerX86GPU = Device{
	Name: "server-x86-webgl",
	FLOPSByType: map[nn.LayerType]float64{
		nn.TypeConv:      80 * 1.5e9,
		nn.TypeInception: 80 * 1.5e9,
		nn.TypeFC:        80 * 2.5e9,
		nn.TypePool:      80 * 10e9,
		nn.TypeReLU:      80 * 20e9,
		nn.TypeLRN:       80 * 5e9,
		nn.TypeSoftmax:   80 * 10e9,
	},
	DefaultFLOPS:        80 * 5e9,
	LayerOverhead:       200 * time.Microsecond,
	SnapshotFixed:       15 * time.Millisecond,
	SnapshotBytesPerSec: 400e6,
	// The GPU path is compute-dense already; int8 texture formats give a
	// modest further gain.
	Int8Speedup: 1.5,
}

// LayerTime predicts the execution latency of one layer on the device at
// the float32 default precision.
func (d Device) LayerTime(li nn.LayerInfo) (time.Duration, error) {
	return d.LayerTimePrec(li, nn.PrecFloat32)
}

// LayerTimePrec predicts the execution latency of one layer on the device
// at the given compute precision. At PrecInt8 the GEMM-backed layer types
// (Conv, Inception, FC) run Int8Speedup times faster; other layer types
// and the per-layer dispatch overhead are unchanged.
func (d Device) LayerTimePrec(li nn.LayerInfo, prec nn.Precision) (time.Duration, error) {
	fl := d.DefaultFLOPS
	if v, ok := d.FLOPSByType[li.Type]; ok {
		fl = v
	}
	if fl <= 0 {
		return 0, fmt.Errorf("costmodel: device %q: non-positive throughput for %s", d.Name, li.Type)
	}
	if prec == nn.PrecInt8 && d.Int8Speedup > 0 && quantizable(li.Type) {
		fl *= d.Int8Speedup
	}
	secs := float64(li.FLOPs) / fl
	return d.LayerOverhead + time.Duration(secs*float64(time.Second)), nil
}

// RangeTime predicts the latency of executing layers [from, to) described
// by infos at the float32 default precision.
func (d Device) RangeTime(infos []nn.LayerInfo, from, to int) (time.Duration, error) {
	return d.RangeTimePrec(infos, from, to, nn.PrecFloat32)
}

// RangeTimePrec predicts the latency of executing layers [from, to) at the
// given compute precision.
func (d Device) RangeTimePrec(infos []nn.LayerInfo, from, to int, prec nn.Precision) (time.Duration, error) {
	if from < 0 || to > len(infos) || from > to {
		return 0, fmt.Errorf("costmodel: range [%d, %d) out of bounds for %d layers", from, to, len(infos))
	}
	var total time.Duration
	for _, li := range infos[from:to] {
		t, err := d.LayerTimePrec(li, prec)
		if err != nil {
			return 0, err
		}
		total += t
	}
	return total, nil
}

// BatchRangeTime predicts the latency of one batched forward pass over
// layers [from, to) with batch samples: per-layer dispatch overhead is paid
// once, and samples beyond the first cost BatchMarginalCost of the first
// sample's compute. With batch=1 it equals RangeTime.
func (d Device) BatchRangeTime(infos []nn.LayerInfo, from, to, batch int) (time.Duration, error) {
	return d.BatchRangeTimePrec(infos, from, to, batch, nn.PrecFloat32)
}

// BatchRangeTimePrec is BatchRangeTime at the given compute precision.
func (d Device) BatchRangeTimePrec(infos []nn.LayerInfo, from, to, batch int, prec nn.Precision) (time.Duration, error) {
	if batch < 1 {
		return 0, fmt.Errorf("costmodel: device %q: batch %d < 1", d.Name, batch)
	}
	one, err := d.RangeTimePrec(infos, from, to, prec)
	if err != nil {
		return 0, err
	}
	if batch == 1 {
		return one, nil
	}
	marginal := d.BatchMarginalCost
	if marginal <= 0 || marginal > 1 {
		marginal = 1
	}
	overhead := time.Duration(to-from) * d.LayerOverhead
	compute := one - overhead
	extra := time.Duration(float64(compute) * float64(batch-1) * marginal)
	return one + extra, nil
}

// NetworkTime predicts the latency of a full forward pass of net.
func (d Device) NetworkTime(net *nn.Network) (time.Duration, error) {
	infos, err := net.Describe()
	if err != nil {
		return 0, err
	}
	return d.RangeTime(infos, 0, len(infos))
}

// SnapshotTime predicts the time to capture or restore a snapshot whose
// serialized size is bytes.
func (d Device) SnapshotTime(bytes int64) time.Duration {
	if d.SnapshotBytesPerSec <= 0 {
		return d.SnapshotFixed
	}
	return d.SnapshotFixed + time.Duration(float64(bytes)/d.SnapshotBytesPerSec*float64(time.Second))
}

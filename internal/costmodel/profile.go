package costmodel

import (
	"fmt"
	"time"

	"websnap/internal/nn"
	"websnap/internal/tensor"
)

// Profile builds a Device by *measuring* a network on the current machine:
// a forward pass runs through the network's compiled execution plan with
// per-step timing, and each step's wall-clock time is attributed to its
// layer type, yielding per-type effective throughputs — exactly how
// Neurosurgeon constructs its per-layer prediction models from profiling
// runs. Measuring through the plan (not standalone per-layer Forward
// calls) means predicted layer times reflect the production kernels:
// pooled buffers, in-place activation steps, and the shared GEMM. Use it
// to replace the calibrated paper profiles with a profile of real
// hardware:
//
//	dev, _ := costmodel.Profile("my-laptop", net, 3)
//	plan, _ := partition.Analyze(net, partition.Config{Client: dev, ...})
//
// runs is the number of timed passes (the per-step minimum across passes
// is kept, which rejects scheduler noise).
func Profile(name string, net *nn.Network, runs int) (Device, error) {
	return ProfilePrec(name, net, runs, nn.PrecFloat32)
}

// ProfilePrec is Profile at an explicit compute precision: the timed plan
// is compiled at prec, so a PrecInt8 profile's per-type throughputs
// reflect the quantized kernels directly (the device's Int8Speedup stays
// unset — the speedup is already baked into the measured numbers). The
// ratio of a device's PrecFloat32 and PrecInt8 profiles on the same
// hardware is how the calibrated Int8Speedup constants were derived.
func ProfilePrec(name string, net *nn.Network, runs int, prec nn.Precision) (Device, error) {
	if runs <= 0 {
		return Device{}, fmt.Errorf("costmodel: profile %q: runs must be positive", name)
	}
	infos, err := net.Describe()
	if err != nil {
		return Device{}, err
	}
	plan, err := net.PlanPrec(prec, net.InputShape()...)
	if err != nil {
		return Device{}, fmt.Errorf("costmodel: profile %q: %w", name, err)
	}
	in, err := tensor.New(net.InputShape()...)
	if err != nil {
		return Device{}, err
	}
	seed := uint64(len(name)) + 12345
	for i := range in.Data() {
		seed ^= seed >> 12
		seed ^= seed << 25
		seed ^= seed >> 27
		in.Data()[i] = float32(seed%1000)/500 - 1
	}

	best := make([]time.Duration, plan.NumSteps())
	times := make([]time.Duration, plan.NumSteps())
	for r := 0; r < runs; r++ {
		if _, err := plan.ForwardTimed(in, times); err != nil {
			return Device{}, fmt.Errorf("costmodel: profile %q: %w", name, err)
		}
		for i, t := range times {
			if r == 0 || t < best[i] {
				best[i] = t
			}
		}
	}

	flopsByType := make(map[nn.LayerType]int64)
	timeByType := make(map[nn.LayerType]time.Duration)
	for i, li := range infos {
		flopsByType[li.Type] += li.FLOPs
		timeByType[li.Type] += best[i]
	}

	dev := Device{
		Name:        name,
		FLOPSByType: make(map[nn.LayerType]float64, len(flopsByType)),
		// Bookkeeping costs: modest defaults; refine with real snapshot
		// measurements if needed.
		LayerOverhead:       50 * time.Microsecond,
		SnapshotFixed:       10 * time.Millisecond,
		SnapshotBytesPerSec: 200e6,
	}
	var totalFLOPs int64
	var totalTime time.Duration
	for typ, fl := range flopsByType {
		t := timeByType[typ]
		totalFLOPs += fl
		totalTime += t
		if fl > 0 && t > 0 {
			dev.FLOPSByType[typ] = float64(fl) / t.Seconds()
		}
	}
	if totalTime <= 0 || totalFLOPs <= 0 {
		return Device{}, fmt.Errorf("costmodel: profile %q: nothing measurable in network %q", name, net.Name())
	}
	dev.DefaultFLOPS = float64(totalFLOPs) / totalTime.Seconds()
	return dev, nil
}

package costmodel

import (
	"testing"
	"time"

	"websnap/internal/models"
	"websnap/internal/nn"
	"websnap/internal/tensor"
)

func TestProfileMeasuresRealDevice(t *testing.T) {
	net, err := models.BuildTinyNet("profile-net", 3)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := Profile("test-machine", net, 2)
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	if dev.Name != "test-machine" {
		t.Errorf("name = %q", dev.Name)
	}
	if dev.DefaultFLOPS <= 0 {
		t.Fatal("no aggregate throughput measured")
	}
	// Conv dominates this net; a conv throughput must be measured and be
	// physically plausible (somewhere between 1 MFLOP/s and 1 TFLOP/s).
	conv, ok := dev.FLOPSByType[nn.TypeConv]
	if !ok {
		t.Fatal("conv throughput missing")
	}
	if conv < 1e6 || conv > 1e12 {
		t.Errorf("conv throughput = %.0f FLOP/s, implausible", conv)
	}
	// The resulting device must be usable by the estimator.
	predicted, err := dev.NetworkTime(net)
	if err != nil {
		t.Fatal(err)
	}
	if predicted <= 0 || predicted > 10*time.Second {
		t.Errorf("predicted forward time = %v, implausible for the tiny net", predicted)
	}
}

func TestProfileValidation(t *testing.T) {
	net, err := models.BuildTinyNet("p", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Profile("x", net, 0); err == nil {
		t.Error("zero runs should fail")
	}
}

// TestProfilePredictionTracksReality: the profiled device's prediction for
// the very network it was profiled on should be within a small factor of a
// real measured forward pass (it cannot be exact: prediction sums per-type
// averages).
func TestProfilePredictionTracksReality(t *testing.T) {
	net, err := models.BuildTinyNet("track", 3)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := Profile("here", net, 3)
	if err != nil {
		t.Fatal(err)
	}
	predicted, err := dev.NetworkTime(net)
	if err != nil {
		t.Fatal(err)
	}
	in, err := tensor.New(net.InputShape()...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in.Data() {
		in.Data()[i] = float32(i%251) / 251
	}
	start := time.Now()
	if _, err := net.Forward(in); err != nil {
		t.Fatal(err)
	}
	measured := time.Since(start)
	ratio := float64(predicted) / float64(measured)
	if ratio < 0.05 || ratio > 20 {
		t.Errorf("prediction %v vs measurement %v (ratio %.2f), want same order of magnitude",
			predicted, measured, ratio)
	}
}

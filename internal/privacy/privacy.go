// Package privacy quantifies the paper's privacy argument for partial
// inference (§III.B.2): feature data leaving the client is not easily
// recognizable, and — unless the attacker holds the front part of the DNN —
// the input cannot be reconstructed from it. It implements the
// hill-climbing reconstruction attack the paper cites ([17], Mahendran &
// Vedaldi) in a gradient-free form, plus denaturing metrics.
package privacy

import (
	"errors"
	"fmt"
	"math"

	"websnap/internal/nn"
	"websnap/internal/tensor"
)

// AttackOptions tunes the reconstruction attack.
type AttackOptions struct {
	// Iterations is the number of hill-climbing steps.
	Iterations int
	// StepSize is the initial perturbation magnitude; it decays as the
	// search progresses.
	StepSize float32
	// BatchSize is how many input coordinates are perturbed per step.
	BatchSize int
	// Seed makes the attack deterministic.
	Seed uint64
}

// DefaultAttackOptions returns settings adequate for the small networks
// used in tests and examples.
func DefaultAttackOptions() AttackOptions {
	return AttackOptions{Iterations: 4000, StepSize: 0.25, BatchSize: 8, Seed: 1}
}

// AttackResult reports a reconstruction attempt.
type AttackResult struct {
	// Reconstruction is the attacker's best input estimate.
	Reconstruction *tensor.Tensor
	// FeatureLoss is the final distance between the reconstruction's
	// feature and the target feature (the attack's own objective).
	FeatureLoss float64
	// Iterations actually performed.
	Iterations int
}

// Reconstruct runs the hill-climbing attack: given the front sub-network
// and the observed feature data, search for an input whose feature matches.
// This models an edge server that has obtained the front model; withholding
// the front model denies the attacker this function entirely.
func Reconstruct(front *nn.Network, feature *tensor.Tensor, opts AttackOptions) (AttackResult, error) {
	if front == nil || feature == nil {
		return AttackResult{}, errors.New("privacy: nil front network or feature")
	}
	if opts.Iterations <= 0 || opts.BatchSize <= 0 || opts.StepSize <= 0 {
		return AttackResult{}, fmt.Errorf("privacy: invalid attack options %+v", opts)
	}
	inShape := front.InputShape()
	guess, err := tensor.New(inShape...)
	if err != nil {
		return AttackResult{}, err
	}
	rng := newRNG(opts.Seed)
	gd := guess.Data()
	for i := range gd {
		gd[i] = rng.uniform()
	}
	best, err := featureLoss(front, guess, feature)
	if err != nil {
		return AttackResult{}, err
	}
	idx := make([]int, opts.BatchSize)
	old := make([]float32, opts.BatchSize)
	for it := 0; it < opts.Iterations; it++ {
		// Step size anneals linearly to 10% over the run.
		step := opts.StepSize * (1 - 0.9*float32(it)/float32(opts.Iterations))
		for j := 0; j < opts.BatchSize; j++ {
			k := int(rng.next() % uint64(len(gd)))
			idx[j] = k
			old[j] = gd[k]
			gd[k] = clamp01(gd[k] + (rng.uniform()*2-1)*step)
		}
		loss, err := featureLoss(front, guess, feature)
		if err != nil {
			return AttackResult{}, err
		}
		if loss < best {
			best = loss
		} else {
			for j := opts.BatchSize - 1; j >= 0; j-- {
				gd[idx[j]] = old[j]
			}
		}
	}
	return AttackResult{Reconstruction: guess, FeatureLoss: best, Iterations: opts.Iterations}, nil
}

func featureLoss(front *nn.Network, input, target *tensor.Tensor) (float64, error) {
	out, err := front.Forward(input)
	if err != nil {
		return 0, err
	}
	d, err := tensor.SumSquaredDiff(out, target)
	if err != nil {
		return 0, err
	}
	return d / float64(target.Len()), nil
}

func clamp01(v float32) float32 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	default:
		return v
	}
}

// MSE returns the mean squared error between two equal-shaped tensors —
// the reconstruction-quality metric.
func MSE(a, b *tensor.Tensor) (float64, error) {
	d, err := tensor.SumSquaredDiff(a, b)
	if err != nil {
		return 0, err
	}
	return d / float64(a.Len()), nil
}

// RandomBaselineMSE estimates the expected MSE an attacker achieves with no
// information at all (a uniform random guess against the true input),
// averaged over trials. Reconstruction quality should be judged against
// this prior.
func RandomBaselineMSE(truth *tensor.Tensor, trials int, seed uint64) (float64, error) {
	if trials <= 0 {
		return 0, errors.New("privacy: trials must be positive")
	}
	rng := newRNG(seed)
	var total float64
	guess, err := tensor.New(truth.Shape()...)
	if err != nil {
		return 0, err
	}
	for t := 0; t < trials; t++ {
		gd := guess.Data()
		for i := range gd {
			gd[i] = rng.uniform()
		}
		m, err := MSE(guess, truth)
		if err != nil {
			return 0, err
		}
		total += m
	}
	return total / float64(trials), nil
}

// DenatureScore quantifies how unrecognizable feature data is relative to
// the input: the normalized correlation between the input image and the
// feature map resampled to the input's size. 1 means structurally identical
// (no denaturing); values near 0 mean the spatial structure is gone. The
// paper's Fig 1 makes this argument visually; this makes it measurable.
func DenatureScore(input, feature *tensor.Tensor) (float64, error) {
	a := flattenNormalize(input)
	b := resample(flattenNormalize(feature), len(a))
	if len(a) == 0 || len(b) == 0 {
		return 0, errors.New("privacy: empty tensors")
	}
	var dot, na, nb float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
		na += float64(a[i]) * float64(a[i])
		nb += float64(b[i]) * float64(b[i])
	}
	if na == 0 || nb == 0 {
		return 0, nil
	}
	return math.Abs(dot) / math.Sqrt(na*nb), nil
}

func flattenNormalize(t *tensor.Tensor) []float32 {
	d := t.Data()
	if len(d) == 0 {
		return nil
	}
	var mean float64
	for _, v := range d {
		mean += float64(v)
	}
	mean /= float64(len(d))
	out := make([]float32, len(d))
	for i, v := range d {
		out[i] = v - float32(mean)
	}
	return out
}

func resample(src []float32, n int) []float32 {
	if len(src) == 0 || n == 0 {
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = src[i*len(src)/n]
	}
	return out
}

// rng is a small deterministic xorshift64* generator.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng { return &rng{s: seed*2685821657736338717 + 1} }

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 2685821657736338717
}

// uniform returns a float32 in [0, 1).
func (r *rng) uniform() float32 {
	return float32(r.next()>>40) / (1 << 24)
}

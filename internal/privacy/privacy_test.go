package privacy

import (
	"testing"

	"websnap/internal/nn"
	"websnap/internal/tensor"
)

// smallFront builds a one-conv front network (the minimum the paper's
// privacy constraint requires: at least one layer to denature the input).
func smallFront(t *testing.T) *nn.Network {
	t.Helper()
	in, err := nn.NewInput("data", 1, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	conv, err := nn.NewConv("conv1", 1, 4, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	net, err := nn.NewNetwork("front", in, conv)
	if err != nil {
		t.Fatal(err)
	}
	net.InitWeights(7)
	return net
}

func trueInput(t *testing.T, shape ...int) *tensor.Tensor {
	t.Helper()
	in, err := tensor.New(shape...)
	if err != nil {
		t.Fatal(err)
	}
	r := newRNG(12345)
	d := in.Data()
	for i := range d {
		d[i] = r.uniform()
	}
	return in
}

// TestReconstructionWithFrontModel demonstrates the attack the paper cites:
// holding the front model, hill climbing recovers the input substantially
// better than an uninformed random guess.
func TestReconstructionWithFrontModel(t *testing.T) {
	front := smallFront(t)
	truth := trueInput(t, 1, 4, 4)
	feat, err := front.Forward(truth)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := RandomBaselineMSE(truth, 50, 99)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Reconstruct(front, feat, AttackOptions{
		Iterations: 8000, StepSize: 0.3, BatchSize: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := MSE(res.Reconstruction, truth)
	if err != nil {
		t.Fatal(err)
	}
	if got > baseline/2 {
		t.Errorf("attack with front model: reconstruction MSE %.4f vs baseline %.4f — attack should work",
			got, baseline)
	}
	if res.FeatureLoss < 0 {
		t.Error("negative feature loss")
	}
}

// TestAttackReducesItsObjective: the hill climb must strictly improve its
// own feature-matching loss over a random start.
func TestAttackReducesItsObjective(t *testing.T) {
	front := smallFront(t)
	truth := trueInput(t, 1, 4, 4)
	feat, err := front.Forward(truth)
	if err != nil {
		t.Fatal(err)
	}
	short, err := Reconstruct(front, feat, AttackOptions{Iterations: 10, StepSize: 0.3, BatchSize: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	long, err := Reconstruct(front, feat, AttackOptions{Iterations: 5000, StepSize: 0.3, BatchSize: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if long.FeatureLoss >= short.FeatureLoss {
		t.Errorf("longer attack did not improve: %.6f vs %.6f", long.FeatureLoss, short.FeatureLoss)
	}
}

// TestWrongFrontModelDefeatsAttack models the paper's defense: "by not
// sending the front part of the DNN model, we can prevent the server from
// reconstructing the input from the feature data." An attacker forced to
// guess the front model (different weights) reconstructs no better than the
// random baseline.
func TestWrongFrontModelDefeatsAttack(t *testing.T) {
	front := smallFront(t)
	truth := trueInput(t, 1, 4, 4)
	feat, err := front.Forward(truth)
	if err != nil {
		t.Fatal(err)
	}
	guessedFront := smallFront(t)
	guessedFront.InitWeights(999999) // attacker's wrong guess at the withheld model
	res, err := Reconstruct(guessedFront, feat, AttackOptions{
		Iterations: 8000, StepSize: 0.3, BatchSize: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := MSE(res.Reconstruction, truth)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := RandomBaselineMSE(truth, 50, 99)
	if err != nil {
		t.Fatal(err)
	}
	if got < baseline/2 {
		t.Errorf("attack with wrong model should fail: MSE %.4f vs baseline %.4f", got, baseline)
	}
}

func TestReconstructValidation(t *testing.T) {
	front := smallFront(t)
	feat := tensor.MustNew(4, 4, 4)
	if _, err := Reconstruct(nil, feat, DefaultAttackOptions()); err == nil {
		t.Error("nil front should fail")
	}
	if _, err := Reconstruct(front, nil, DefaultAttackOptions()); err == nil {
		t.Error("nil feature should fail")
	}
	if _, err := Reconstruct(front, feat, AttackOptions{}); err == nil {
		t.Error("zero options should fail")
	}
}

func TestMSE(t *testing.T) {
	a, _ := tensor.FromSlice([]float32{1, 2}, 2)
	b, _ := tensor.FromSlice([]float32{1, 4}, 2)
	got, err := MSE(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("MSE = %v, want 2", got)
	}
	c := tensor.MustNew(3)
	if _, err := MSE(a, c); err == nil {
		t.Error("shape mismatch should fail")
	}
}

func TestRandomBaselineMSE(t *testing.T) {
	truth := trueInput(t, 1, 8, 8)
	got, err := RandomBaselineMSE(truth, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Two independent U[0,1) draws have E[(x-y)^2] = 1/6.
	if got < 0.1 || got > 0.25 {
		t.Errorf("baseline = %.4f, want ~1/6", got)
	}
	if _, err := RandomBaselineMSE(truth, 0, 1); err == nil {
		t.Error("zero trials should fail")
	}
}

// TestDenatureScoreDropsThroughLayers: the Fig 1 argument — the deeper into
// the network the feature data comes from, the less it resembles the input.
func TestDenatureScoreDropsThroughLayers(t *testing.T) {
	in, err := nn.NewInput("data", 1, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	conv, err := nn.NewConv("conv1", 1, 4, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := nn.NewPool("pool1", nn.MaxPool, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	net, err := nn.NewNetwork("front", in, conv, nn.NewReLU("relu1"), pool)
	if err != nil {
		t.Fatal(err)
	}
	net.InitWeights(21)
	truth := trueInput(t, 1, 8, 8)

	self, err := DenatureScore(truth, truth)
	if err != nil {
		t.Fatal(err)
	}
	if self < 0.999 {
		t.Errorf("self-similarity = %.4f, want ~1", self)
	}
	feat, err := net.Forward(truth)
	if err != nil {
		t.Fatal(err)
	}
	deep, err := DenatureScore(truth, feat)
	if err != nil {
		t.Fatal(err)
	}
	if deep >= self {
		t.Errorf("deep feature similarity %.4f should be below self-similarity %.4f", deep, self)
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := newRNG(42), newRNG(42)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("rng not deterministic")
		}
	}
	v := newRNG(1).uniform()
	if v < 0 || v >= 1 {
		t.Errorf("uniform out of range: %v", v)
	}
}

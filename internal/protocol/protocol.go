// Package protocol frames the messages exchanged between the client device
// and the edge server's offloading program: model pre-sending with
// acknowledgement (§III.B.1), snapshot shipping, and result return (§III.A).
//
// Wire format (all integers little-endian):
//
//	magic   uint32  "WSNP"
//	version uint8
//	type    uint8
//	hdrLen  uint32  JSON header length
//	header  []byte  JSON, message-type specific
//	bodyLen uint64  payload length
//	body    []byte  raw payload (weights blob, snapshot text, ...)
package protocol

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"
)

const (
	magic   = uint32(0x57534e50) // "WSNP"
	version = uint8(1)

	// MaxHeaderLen bounds the JSON header; headers are small metadata.
	MaxHeaderLen = 1 << 20
	// MaxBodyLen bounds the payload (models and snapshots can reach tens
	// of MB; 1 GiB is a generous safety cap).
	MaxBodyLen = 1 << 30
)

// MsgType identifies a message.
type MsgType uint8

// Message types.
const (
	// MsgModelPreSend carries one model's descriptor (header) and weight
	// blob (body) from client to server, ahead of any offloading.
	MsgModelPreSend MsgType = iota + 1
	// MsgAck acknowledges a model pre-send.
	MsgAck
	// MsgSnapshot carries an encoded snapshot from client to server.
	MsgSnapshot
	// MsgResultSnapshot carries the result snapshot back to the client.
	MsgResultSnapshot
	// MsgError reports a server-side failure.
	MsgError
	// MsgInstallOverlay carries a VM overlay for on-demand installation
	// of the offloading system (§III.B.3).
	MsgInstallOverlay
	// MsgInstallDone acknowledges VM synthesis completion.
	MsgInstallDone
	// MsgSnapshotDelta carries an encoded snapshot delta relative to the
	// state left at the server by a previous offload (§VI future work).
	MsgSnapshotDelta
	// MsgResultDelta carries the result as a delta relative to the state
	// the client shipped.
	MsgResultDelta
	// MsgPing asks the server for its current status without submitting
	// work; used by load probes and roaming server selection.
	MsgPing
	// MsgPong answers a ping with the server's install state and load.
	MsgPong
	// MsgFleetRegister announces an edge server to a fleet registry:
	// address, capacity, current load, and the content-addressed blob keys
	// it holds. Re-sent periodically as a liveness heartbeat.
	MsgFleetRegister
	// MsgFleetRegistered acknowledges a registration.
	MsgFleetRegistered
	// MsgFleetList asks the registry for the current fleet view.
	MsgFleetList
	// MsgFleetView answers with the live (non-expired) fleet members.
	MsgFleetView
	// MsgBlobLocate asks the registry which servers hold the given
	// content-addressed blobs (model weights, synced snapshot states).
	MsgBlobLocate
	// MsgBlobLocation answers with the holders per blob key.
	MsgBlobLocation
	// MsgBlobGet asks a peer edge server for one blob by content key.
	MsgBlobGet
	// MsgBlobData answers a blob fetch with the blob bytes in the body.
	MsgBlobData
	// MsgChainExec asks an edge server to execute its layer range of a
	// multi-hop partial-inference chain. The header carries the full hop
	// manifest and this hop's position; the body is the boundary feature
	// tensor as raw little-endian float32s. A mid-chain hop executes its
	// range, relays the next MsgChainExec to the next hop, and returns the
	// downstream result upstream.
	MsgChainExec
	// MsgChainResult answers a chain exec with the final output tensor
	// (raw little-endian float32 body), relayed back hop by hop.
	MsgChainResult
)

func (t MsgType) String() string {
	switch t {
	case MsgModelPreSend:
		return "model-presend"
	case MsgAck:
		return "ack"
	case MsgSnapshot:
		return "snapshot"
	case MsgResultSnapshot:
		return "result-snapshot"
	case MsgError:
		return "error"
	case MsgInstallOverlay:
		return "install-overlay"
	case MsgInstallDone:
		return "install-done"
	case MsgSnapshotDelta:
		return "snapshot-delta"
	case MsgResultDelta:
		return "result-delta"
	case MsgPing:
		return "ping"
	case MsgPong:
		return "pong"
	case MsgFleetRegister:
		return "fleet-register"
	case MsgFleetRegistered:
		return "fleet-registered"
	case MsgFleetList:
		return "fleet-list"
	case MsgFleetView:
		return "fleet-view"
	case MsgBlobLocate:
		return "blob-locate"
	case MsgBlobLocation:
		return "blob-location"
	case MsgBlobGet:
		return "blob-get"
	case MsgBlobData:
		return "blob-data"
	case MsgChainExec:
		return "chain-exec"
	case MsgChainResult:
		return "chain-result"
	default:
		return fmt.Sprintf("unknown(%d)", uint8(t))
	}
}

// Errors returned by the codec.
var (
	ErrBadMagic    = errors.New("protocol: bad magic")
	ErrBadVersion  = errors.New("protocol: unsupported version")
	ErrTooLarge    = errors.New("protocol: message exceeds size limit")
	ErrUnknownType = errors.New("protocol: unknown message type")
	// ErrChecksum marks a body whose content does not match the checksum
	// its header carries: the frame arrived complete but corrupted, so the
	// payload must not be trusted (and must never be executed or applied).
	ErrChecksum = errors.New("protocol: body checksum mismatch")
)

// crcTable is the Castagnoli polynomial table used for body checksums
// (hardware-accelerated on amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// BodyChecksum returns the integrity checksum senders attach to snapshot
// and model bodies (over the wire bytes, i.e. after any compression).
func BodyChecksum(body []byte) uint32 {
	return crc32.Checksum(body, crcTable)
}

// VerifyBody checks body against the checksum a header carried. A zero
// sum means the peer predates the integrity extension (or the body is
// empty) and no check applies.
func VerifyBody(body []byte, sum uint32) error {
	if sum == 0 {
		return nil
	}
	if got := BodyChecksum(body); got != sum {
		return fmt.Errorf("%w: got %#08x, header says %#08x", ErrChecksum, got, sum)
	}
	return nil
}

// Extension versions. Requests advertise the highest version they
// understand in their header's Hints field; each version implies all lower
// ones. Servers attach version-gated response fields only when the request
// advertised at least the matching version. The negotiation rides inside
// the JSON headers, so peers that predate an extension interoperate
// unchanged: old servers ignore the unknown Hints field, old clients never
// advertise and never receive the gated fields.
const (
	// HintLoadV1 gates the LoadHint attached to responses.
	HintLoadV1 = 1
	// HintTraceV1 gates the trace extension: the client stamps snapshot
	// requests with a TraceID and the server answers with a ServerTrace
	// carrying its per-stage span durations, letting the client merge
	// server-side spans into the offload's end-to-end trace.
	HintTraceV1 = 2
	// HintCRCV1 gates the body-integrity extension: requests always MAY
	// carry a BodyCRC (receivers verify whenever the field is non-zero),
	// and servers attach a BodyCRC to responses only for clients that
	// advertised at least this version, keeping old-client response
	// headers byte-identical.
	HintCRCV1 = 3
	// HintFleetV1 gates the fleet extension: pongs advertise fleet
	// membership (Fleet field), and model pre-sends may ship a
	// content-addressed BlobKey reference instead of the weight bytes; a
	// fleet-capable server resolves the blob from its cache or a peer and
	// answers NeedBlob when it cannot, telling the client to re-send in
	// full. Servers that predate the extension answer a reference-only
	// pre-send with a decode error, which clients treat like NeedBlob.
	HintFleetV1 = 4
	// HintMuxV1 gates the stream-multiplexing extension: every request
	// header carries a client-chosen Seq identifying its logical stream,
	// the server dispatches requests from one connection concurrently and
	// echoes the Seq on the matching response, and responses may arrive in
	// any order. Pongs advertise the capability (Mux field) so clients
	// only interleave against servers that demultiplex; against older
	// servers the connection stays strictly serial and the wire bytes are
	// identical to a pre-extension client.
	HintMuxV1 = 5
	// HintTelemetryV1 gates the fleet telemetry extension: requests may
	// carry the offload's 16-hex TraceID across fleet hops (reference
	// pre-sends, registry locates, peer blob fetches), and servers answer
	// with a SpanNode tree describing the remote work done under that
	// trace (resolve → registry locate → peer fetch → remote serve), plus
	// a StreamWaitMicros span on ServerTrace accounting time spent waiting
	// for a multiplexed stream slot. Heartbeats may additionally piggyback
	// a StatsDigest rollup. All gated fields are omitempty and attached
	// only when the request advertised at least this version, so peers
	// that predate the extension see byte-identical frames.
	HintTelemetryV1 = 6
	// HintChainV1 gates the multi-hop chain extension: clients may submit
	// MsgChainExec frames carrying a hop manifest and a raw float32
	// boundary tensor, mid-chain servers relay the next hop over the same
	// message type, and chain results return each relay's span subtree
	// grafted under its hop. Pongs advertise the capability (Chain field)
	// so planners only route chains through servers that relay; servers
	// that predate the extension reject the unknown message type, which
	// clients treat as a chain failure and fall back.
	HintChainV1 = 7
)

// LoadHint is the edge server's advertised scheduling load, attached to
// responses for clients that negotiated the extension. Clients fold the
// estimated queueing delay into their local/full/partial offload decision
// and shed load to local execution when the server saturates.
type LoadHint struct {
	// QueueDepth is the number of snapshot sessions waiting for a worker.
	QueueDepth int `json:"queueDepth"`
	// QueueCap is the admission queue's capacity (0 = unbounded).
	QueueCap int `json:"queueCap,omitempty"`
	// Workers and Busy report the worker pool size and how many workers
	// are currently executing.
	Workers int `json:"workers"`
	Busy    int `json:"busy"`
	// EWMAServiceMillis is the smoothed per-session service time.
	EWMAServiceMillis float64 `json:"ewmaServiceMillis"`
	// QueueingMillis is the server's estimate of the delay a request
	// submitted now would spend waiting for a worker.
	QueueingMillis float64 `json:"queueingMillis"`
	// Saturated marks a server whose admission queue is full; clients
	// should prefer local execution or another server.
	Saturated bool `json:"saturated,omitempty"`
}

// QueueingDelay returns the advertised queueing estimate as a duration.
func (h LoadHint) QueueingDelay() time.Duration {
	return time.Duration(h.QueueingMillis * float64(time.Millisecond))
}

// ServerTrace carries the server-side span durations of one offload back to
// the client on the result frame, keyed by the request's TraceID. Attached
// only when the request advertised HintTraceV1; durations are microseconds
// to keep the header compact.
type ServerTrace struct {
	// TraceID echoes the request's trace identifier.
	TraceID string `json:"traceId"`
	// DecodeMicros covers request body decompression + snapshot decoding.
	DecodeMicros int64 `json:"decodeMicros"`
	// QueueMicros is the time the session waited in the admission queue
	// for a scheduler worker.
	QueueMicros int64 `json:"queueMicros"`
	// ExecuteMicros covers restore + handler execution + result capture
	// inside the worker.
	ExecuteMicros int64 `json:"executeMicros"`
	// EncodeMicros covers result encoding + compression.
	EncodeMicros int64 `json:"encodeMicros"`
	// BatchSize is how many coalesced sessions shared the worker's batched
	// forward pass (1 = solo execution).
	BatchSize int `json:"batchSize,omitempty"`
	// StreamWaitMicros is the time the request spent waiting for a
	// multiplexed stream slot before dispatch (per-connection stream
	// semaphore). Attached only when the request advertised
	// HintTelemetryV1, keeping older trace-capable clients byte-identical.
	StreamWaitMicros int64 `json:"streamWaitMicros,omitempty"`
}

// Total returns the server-side time accounted to this offload. The mux
// stream-semaphore wait (zero for pre-telemetry clients) is server-side
// time too: counting it keeps the client's derived wire time honest when a
// saturated stream window, not the network, delayed the response.
func (t ServerTrace) Total() time.Duration {
	return time.Duration(t.DecodeMicros+t.QueueMicros+t.ExecuteMicros+t.EncodeMicros+t.StreamWaitMicros) * time.Microsecond
}

// SpanNode is one node of a cross-process span tree, the unit of the
// HintTelemetryV1 trace-propagation extension. A server that does remote
// work on behalf of a traced request (locating a blob at the registry,
// fetching it from a peer) answers with a SpanNode describing that work;
// each hop nests the spans it received from its own downstream calls as
// children, so the requester ends up holding one tree, under one trace ID,
// covering every process the request touched. Durations are microseconds
// to keep headers compact.
type SpanNode struct {
	// Op names the operation ("presend_resolve", "registry_locate",
	// "peer_fetch", "blob_serve", ...).
	Op string `json:"op"`
	// Addr identifies the process that performed the operation (an
	// advertised server address, "registry", or "client").
	Addr string `json:"addr,omitempty"`
	// Micros is the operation's wall-clock duration.
	Micros int64 `json:"us"`
	// Detail optionally carries the operation's object (a blob key, a
	// holder address).
	Detail string `json:"detail,omitempty"`
	// Children are the nested downstream operations.
	Children []*SpanNode `json:"ch,omitempty"`
}

// Walk visits n and every descendant in depth-first order.
func (n *SpanNode) Walk(visit func(*SpanNode)) {
	if n == nil {
		return
	}
	visit(n)
	for _, c := range n.Children {
		c.Walk(visit)
	}
}

// HistDigest is a compact wire form of one latency histogram: sparse
// occupied buckets plus exact count and sum, so a receiver can reconstruct
// and merge the histogram losslessly (bucket indexes refer to the shared
// trace.Histogram bucket layout).
type HistDigest struct {
	// Buckets lists occupied buckets as [bucketIndex, count] pairs in
	// index order.
	Buckets [][2]int64 `json:"b,omitempty"`
	// Count is the total number of observations.
	Count uint64 `json:"n"`
	// SumNanos is the exact sum of observed durations in nanoseconds.
	SumNanos int64 `json:"s"`
}

// StatsDigest is the compact per-server telemetry rollup an edge server
// piggybacks on fleet heartbeats (HintTelemetryV1). Histograms and
// counters are cumulative since process start; the registry keeps the
// latest digest per member and fleetd merges them into fleet-wide
// exposition, per-server summaries, and SLO burn accounting.
type StatsDigest struct {
	// Stages maps trace stage names to their latency digests.
	Stages map[string]HistDigest `json:"stages,omitempty"`
	// Decisions counts executed request outcomes by path (full, partial,
	// shed, error) — the server-side mirror of the client decision mix.
	Decisions map[string]uint64 `json:"decisions,omitempty"`
	// QueueDepth is the scheduler admission-queue depth at digest time.
	QueueDepth int `json:"queueDepth,omitempty"`
	// StoreBytes is the session store's resident byte size at digest time.
	StoreBytes int64 `json:"storeBytes,omitempty"`
	// UptimeMillis is how long the process has been serving.
	UptimeMillis int64 `json:"uptimeMillis,omitempty"`
}

// ModelPreSendHeader is the JSON header of MsgModelPreSend. The weight blob
// travels in the body; together they are "the NN model files (including the
// description/parameters of the NN)".
type ModelPreSendHeader struct {
	AppID     string          `json:"appId"`
	ModelName string          `json:"modelName"`
	Spec      json.RawMessage `json:"spec"`
	// Seq matches this request to its ack on a multiplexed connection
	// (zero on serial connections, keeping old-peer bytes identical).
	Seq uint64 `json:"seq,omitempty"`
	// Partial marks a rear-only model pre-send: the front part is
	// withheld for privacy (§III.B.2).
	Partial bool `json:"partial,omitempty"`
	// Hints advertises the extension versions the sender understands.
	Hints int `json:"hints,omitempty"`
	// BodyCRC is the weight blob's integrity checksum (BodyChecksum);
	// zero means unchecked (old peer or empty body).
	BodyCRC uint32 `json:"bodyCrc,omitempty"`
	// BlobKey is the model's content-addressed fleet identity
	// (nn.Fingerprint over spec+weights). Senders that advertised
	// HintFleetV1 attach it so the server can index the blob fleet-wide.
	BlobKey string `json:"blobKey,omitempty"`
	// RefOnly marks a reference-only pre-send: the body is empty and the
	// server must resolve BlobKey from its own cache or a fleet peer. A
	// server that cannot answers NeedBlob on the ack (or, if it predates
	// the extension, a decode error — clients treat both as "send the
	// bytes").
	RefOnly bool `json:"refOnly,omitempty"`
	// TraceID propagates the offload trace across the pre-send hop
	// (stamped when the sender advertises HintTelemetryV1): the server
	// tags its blob-resolution work — registry locate, peer fetches — with
	// the same ID and answers with the resulting span tree on the ack.
	TraceID string `json:"traceId,omitempty"`
}

// AckHeader is the JSON header of MsgAck.
type AckHeader struct {
	AppID     string `json:"appId"`
	ModelName string `json:"modelName"`
	// Seq echoes the request's stream id on a multiplexed connection.
	Seq uint64 `json:"seq,omitempty"`
	// Load is the server's scheduling load; present only when the request
	// advertised HintLoadV1.
	Load *LoadHint `json:"load,omitempty"`
	// NeedBlob rejects a reference-only pre-send: the server could not
	// resolve the BlobKey locally or from a peer, and the client must
	// retry with the full weight bytes.
	NeedBlob bool `json:"needBlob,omitempty"`
	// Span is the server-side span tree of this pre-send's blob
	// resolution (registry locate, peer fetches), under the request's
	// TraceID. Attached only when the request advertised HintTelemetryV1.
	Span *SpanNode `json:"span,omitempty"`
}

// SnapshotHeader is the JSON header of MsgSnapshot, MsgResultSnapshot,
// MsgSnapshotDelta, and MsgResultDelta.
type SnapshotHeader struct {
	AppID string `json:"appId"`
	// Seq matches a request to its response on a multiplexed connection.
	Seq uint64 `json:"seq"`
	// Encoding is the body encoding (EncodingRaw or EncodingFlate).
	Encoding string `json:"encoding,omitempty"`
	// Hints advertises the extension versions the sender understands
	// (request direction only).
	Hints int `json:"hints,omitempty"`
	// TraceID identifies this offload's trace (request direction only;
	// stamped when the client advertises HintTraceV1). Servers that
	// predate the extension ignore it.
	TraceID string `json:"traceId,omitempty"`
	// BodyCRC is the body's integrity checksum over the wire bytes (after
	// compression). Receivers verify whenever it is non-zero; zero means
	// unchecked. Servers attach it to responses only when the request
	// advertised HintCRCV1.
	BodyCRC uint32 `json:"bodyCrc,omitempty"`
	// Load is the server's scheduling load (response direction only;
	// present only when the request advertised HintLoadV1).
	Load *LoadHint `json:"load,omitempty"`
	// ServerTrace carries the server-side spans of this offload (response
	// direction only; present only when the request advertised
	// HintTraceV1).
	ServerTrace *ServerTrace `json:"serverTrace,omitempty"`
}

// ErrorHeader is the JSON header of MsgError.
type ErrorHeader struct {
	Message string `json:"message"`
	Seq     uint64 `json:"seq,omitempty"`
	// Overloaded marks an error caused by admission-queue rejection
	// rather than a failure: the request was well-formed but the server
	// is saturated, so the client should execute locally instead.
	Overloaded bool `json:"overloaded,omitempty"`
	// Load carries the server's scheduling load alongside an overload
	// rejection (when the request advertised HintLoadV1).
	Load *LoadHint `json:"load,omitempty"`
	// ChainHop locates a chain failure: the 1-based index into the chain
	// manifest of the hop that failed (a relay that cannot reach its
	// downstream reports the downstream's index). Zero means "not a chain
	// error". The client's re-planner uses it to exclude the dead hop.
	ChainHop int `json:"chainHop,omitempty"`
}

// PingHeader is the JSON header of MsgPing.
type PingHeader struct {
	Hints int `json:"hints,omitempty"`
	// Seq matches this ping to its pong on a multiplexed connection.
	Seq uint64 `json:"seq,omitempty"`
}

// PongHeader is the JSON header of MsgPong.
type PongHeader struct {
	Installed bool      `json:"installed"`
	Load      *LoadHint `json:"load,omitempty"`
	// Fleet advertises that the server participates in a fleet (blob
	// sharing + registry); attached only when the ping advertised
	// HintFleetV1.
	Fleet bool `json:"fleet,omitempty"`
	// Mux advertises that the server demultiplexes concurrent streams on
	// one connection; attached only when the ping advertised HintMuxV1.
	Mux bool `json:"mux,omitempty"`
	// Chain advertises that the server executes and relays multi-hop
	// chain frames; attached only when the ping advertised HintChainV1.
	Chain bool `json:"chain,omitempty"`
	// Seq echoes the ping's stream id on a multiplexed connection.
	Seq uint64 `json:"seq,omitempty"`
}

// InstallOverlayHeader is the JSON header of MsgInstallOverlay; the
// compressed overlay bytes travel in the body.
type InstallOverlayHeader struct {
	BaseImage string `json:"baseImage"`
	// Hints advertises the extension versions the sender understands.
	Hints int `json:"hints,omitempty"`
	// Seq matches this request to its done-ack on a multiplexed connection.
	Seq uint64 `json:"seq,omitempty"`
}

// InstallDoneHeader is the JSON header of MsgInstallDone.
type InstallDoneHeader struct {
	BaseImage string `json:"baseImage"`
	// SynthesisMillis reports how long VM synthesis took on the server.
	SynthesisMillis int64 `json:"synthesisMillis"`
	// Seq echoes the request's stream id on a multiplexed connection.
	Seq uint64 `json:"seq,omitempty"`
}

// MuxEnvelope is the slice of every request header the demultiplexer
// needs before type-specific dispatch: the advertised extension versions
// and the logical stream id. All request headers above embed these two
// fields under the same JSON keys, so a server peeks the envelope once,
// decides serial vs concurrent dispatch, and re-decodes the full header
// inside the handler.
type MuxEnvelope struct {
	Hints int    `json:"hints"`
	Seq   uint64 `json:"seq"`
}

// Muxed reports whether the request advertised the multiplexing
// extension and therefore expects its Seq echoed on the response.
func (e MuxEnvelope) Muxed() bool { return e.Hints >= HintMuxV1 }

// FleetServer is one fleet member as seen in a registry view.
type FleetServer struct {
	// Addr is the server's advertised (dialable) offload address.
	Addr string `json:"addr"`
	// Capacity is the server's worker-pool size, the static weight the
	// placement layer blends with the live load hint.
	Capacity int `json:"capacity"`
	// Load is the member's last registered scheduling load, if any.
	Load *LoadHint `json:"load,omitempty"`
	// AgeMillis is how old this member's last heartbeat was when the view
	// was served (registry clock; lets clients judge hint freshness
	// without trusting their own clock against the registry's).
	AgeMillis int64 `json:"ageMillis"`
}

// FleetRegisterHeader is the JSON header of MsgFleetRegister, an edge
// server's registration/heartbeat with the registry.
type FleetRegisterHeader struct {
	// Addr is the server's advertised offload address (see cmd/edged
	// -advertise; may differ from the listen address behind NAT).
	Addr string `json:"addr"`
	// Capacity is the server's worker-pool size.
	Capacity int `json:"capacity"`
	// TTLMillis is how long the registration stays live without a fresh
	// heartbeat; 0 means the registry default.
	TTLMillis int64 `json:"ttlMillis,omitempty"`
	// Load is the server's current scheduling load.
	Load *LoadHint `json:"load,omitempty"`
	// Blobs lists content-addressed blob keys the server holds (models by
	// nn.Fingerprint, synced snapshots by Snapshot.Hash), merged into the
	// fleet blob index.
	Blobs []string `json:"blobs,omitempty"`
	// Hints advertises the extension versions the sender understands.
	Hints int `json:"hints,omitempty"`
	// Stats is the server's telemetry rollup digest, piggybacked on the
	// heartbeat when the agent has a digest supplier (HintTelemetryV1).
	Stats *StatsDigest `json:"stats,omitempty"`
}

// FleetRegisteredHeader is the JSON header of MsgFleetRegistered.
type FleetRegisteredHeader struct {
	// Servers is the number of live fleet members after this registration.
	Servers int `json:"servers"`
	// Version is the registry's monotonically increasing view version.
	Version uint64 `json:"version"`
}

// FleetListHeader is the JSON header of MsgFleetList, a client's request
// for the current fleet view.
type FleetListHeader struct {
	Hints int `json:"hints,omitempty"`
}

// FleetViewHeader is the JSON header of MsgFleetView.
type FleetViewHeader struct {
	// Version is the registry's view version; it increases whenever
	// membership or registered state changes.
	Version uint64 `json:"version"`
	// Servers lists the live fleet members.
	Servers []FleetServer `json:"servers"`
}

// BlobLocateHeader is the JSON header of MsgBlobLocate, asking the
// registry which fleet members hold the given content-addressed blobs.
type BlobLocateHeader struct {
	Keys  []string `json:"keys"`
	Hints int      `json:"hints,omitempty"`
	// TraceID propagates the trace of the request that triggered this
	// locate through the registry hop (HintTelemetryV1).
	TraceID string `json:"traceId,omitempty"`
}

// BlobLocationHeader is the JSON header of MsgBlobLocation. Keys absent
// from Holders are unknown to the fleet.
type BlobLocationHeader struct {
	// Holders maps each located blob key to the advertised addresses of
	// live servers holding it.
	Holders map[string][]string `json:"holders,omitempty"`
	// Span is the registry's span for this locate, attached only when the
	// request advertised HintTelemetryV1.
	Span *SpanNode `json:"span,omitempty"`
}

// BlobGetHeader is the JSON header of MsgBlobGet, a peer-to-peer fetch of
// a content-addressed blob from another edge server.
type BlobGetHeader struct {
	Key   string `json:"key"`
	Hints int    `json:"hints,omitempty"`
	// TraceID propagates the trace of the request that triggered this
	// peer fetch (HintTelemetryV1).
	TraceID string `json:"traceId,omitempty"`
}

// BlobDataHeader is the JSON header of MsgBlobData; the blob bytes travel
// in the body.
type BlobDataHeader struct {
	Key string `json:"key"`
	// BodyCRC is the blob's integrity checksum (BodyChecksum); receivers
	// verify whenever it is non-zero.
	BodyCRC uint32 `json:"bodyCrc,omitempty"`
	// Span is the serving peer's span for this fetch, attached only when
	// the request advertised HintTelemetryV1.
	Span *SpanNode `json:"span,omitempty"`
}

// ChainHop is one server entry in a chain's hop manifest: the address to
// relay to and the layer range [From, To) it executes. The client itself
// is not listed — it runs the front range locally and sends the first
// boundary tensor to Hops[0].
type ChainHop struct {
	// Addr is the hop's dialable offload address.
	Addr string `json:"addr"`
	// From and To delimit the layer range [From, To) this hop executes on
	// the pre-sent full model.
	From int `json:"from"`
	To   int `json:"to"`
}

// ChainExecHeader is the JSON header of MsgChainExec. The body is the
// boundary feature tensor as raw little-endian float32s (bit-exact: text
// encoding would round-trip through decimal and break the chain's
// bit-identity bar).
type ChainExecHeader struct {
	// AppID and ModelName identify the pre-sent model whose layers run.
	AppID     string `json:"appId"`
	ModelName string `json:"modelName"`
	// Seq matches this request to its response on a multiplexed connection.
	Seq uint64 `json:"seq"`
	// Hints advertises the extension versions the sender understands.
	Hints int `json:"hints,omitempty"`
	// Hop is the index into Hops of the server this frame addresses; the
	// receiver executes Hops[Hop] and relays to Hops[Hop+1], if any.
	Hop int `json:"hop"`
	// Hops is the chain manifest, identical on every frame of one chain
	// execution so any hop can report or re-plan against the full route.
	Hops []ChainHop `json:"hops"`
	// Shape is the boundary tensor's shape; the body holds exactly
	// prod(Shape) float32 values.
	Shape []int `json:"shape"`
	// TraceID identifies the chain's end-to-end trace (stamped when the
	// client advertises HintTraceV1); every hop tags its spans with it.
	TraceID string `json:"traceId,omitempty"`
	// BodyCRC is the tensor body's integrity checksum; receivers verify
	// whenever it is non-zero.
	BodyCRC uint32 `json:"bodyCrc,omitempty"`
}

// ChainResultHeader is the JSON header of MsgChainResult; the body is the
// final output tensor as raw little-endian float32s, relayed unchanged
// through every hop on the way back.
type ChainResultHeader struct {
	// Seq echoes the request's stream id.
	Seq uint64 `json:"seq"`
	// Shape is the output tensor's shape.
	Shape []int `json:"shape"`
	// BodyCRC is the output body's checksum, attached when the request
	// advertised HintCRCV1.
	BodyCRC uint32 `json:"bodyCrc,omitempty"`
	// Load is this hop's scheduling load (HintLoadV1), letting the client
	// refresh per-hop queue hints from a single chain round trip.
	Load *LoadHint `json:"load,omitempty"`
	// Span is this hop's span subtree for the chain execution, with the
	// downstream hop's subtree grafted as a child (HintTelemetryV1 +
	// TraceID), so the client ends up holding one parented tree:
	// client root → hop1 → hop2 → …
	Span *SpanNode `json:"span,omitempty"`
}

// Float32Bytes renders vals as the raw little-endian float32 wire body of
// chain frames. The encoding preserves every bit of every value.
func Float32Bytes(vals []float32) []byte {
	out := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(v))
	}
	return out
}

// BytesFloat32 decodes a raw little-endian float32 wire body.
func BytesFloat32(body []byte) ([]float32, error) {
	if len(body)%4 != 0 {
		return nil, fmt.Errorf("protocol: float32 body length %d not a multiple of 4", len(body))
	}
	out := make([]float32, len(body)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[4*i:]))
	}
	return out, nil
}

// Message is one framed message.
type Message struct {
	Type   MsgType
	Header []byte // JSON, type-specific
	Body   []byte
}

// Write frames and writes msg to w.
func Write(w io.Writer, msg Message) error {
	if len(msg.Header) > MaxHeaderLen {
		return fmt.Errorf("%w: header %d bytes", ErrTooLarge, len(msg.Header))
	}
	if len(msg.Body) > MaxBodyLen {
		return fmt.Errorf("%w: body %d bytes", ErrTooLarge, len(msg.Body))
	}
	var hdr [18]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magic)
	hdr[4] = version
	hdr[5] = uint8(msg.Type)
	binary.LittleEndian.PutUint32(hdr[6:10], uint32(len(msg.Header)))
	binary.LittleEndian.PutUint64(hdr[10:18], uint64(len(msg.Body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("protocol: write frame header: %w", err)
	}
	// Skip zero-length writes: on rendezvous transports (net.Pipe) a
	// 0-byte Write blocks for a matching Read that io.ReadFull(0) on the
	// peer never issues.
	if len(msg.Header) > 0 {
		if _, err := w.Write(msg.Header); err != nil {
			return fmt.Errorf("protocol: write header: %w", err)
		}
	}
	if len(msg.Body) > 0 {
		if _, err := w.Write(msg.Body); err != nil {
			return fmt.Errorf("protocol: write body: %w", err)
		}
	}
	return nil
}

// Read reads one framed message from r.
func Read(r io.Reader) (Message, error) {
	var hdr [18]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, fmt.Errorf("protocol: read frame header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:4]); m != magic {
		return Message{}, fmt.Errorf("%w: %#x", ErrBadMagic, m)
	}
	if v := hdr[4]; v != version {
		return Message{}, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	msg := Message{Type: MsgType(hdr[5])}
	if msg.Type < MsgModelPreSend || msg.Type > MsgChainResult {
		return Message{}, fmt.Errorf("%w: %d", ErrUnknownType, hdr[5])
	}
	hdrLen := binary.LittleEndian.Uint32(hdr[6:10])
	bodyLen := binary.LittleEndian.Uint64(hdr[10:18])
	if hdrLen > MaxHeaderLen {
		return Message{}, fmt.Errorf("%w: header %d bytes", ErrTooLarge, hdrLen)
	}
	if bodyLen > MaxBodyLen {
		return Message{}, fmt.Errorf("%w: body %d bytes", ErrTooLarge, bodyLen)
	}
	msg.Header = make([]byte, hdrLen)
	if _, err := io.ReadFull(r, msg.Header); err != nil {
		return Message{}, fmt.Errorf("protocol: read header: %w", err)
	}
	body, err := readBody(r, bodyLen)
	if err != nil {
		return Message{}, fmt.Errorf("protocol: read body: %w", err)
	}
	msg.Body = body
	return msg, nil
}

// readBody reads exactly n body bytes without trusting n for the initial
// allocation: a corrupted length prefix claiming up to MaxBodyLen (1 GiB)
// must not allocate that much before the stream proves it actually carries
// the bytes. Allocation grows with the data actually read, chunk by chunk.
func readBody(r io.Reader, n uint64) ([]byte, error) {
	const chunk = 1 << 20
	if n <= chunk {
		body := make([]byte, n)
		if _, err := io.ReadFull(r, body); err != nil {
			return nil, err
		}
		return body, nil
	}
	var buf bytes.Buffer
	if _, err := io.CopyN(&buf, r, int64(n)); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf.Bytes(), nil
}

// Encode builds a Message from a header struct and body.
func Encode(t MsgType, header any, body []byte) (Message, error) {
	h, err := json.Marshal(header)
	if err != nil {
		return Message{}, fmt.Errorf("protocol: marshal %s header: %w", t, err)
	}
	return Message{Type: t, Header: h, Body: body}, nil
}

// DecodeHeader parses a message's JSON header into out.
func DecodeHeader(msg Message, out any) error {
	if err := json.Unmarshal(msg.Header, out); err != nil {
		return fmt.Errorf("protocol: unmarshal %s header: %w", msg.Type, err)
	}
	return nil
}

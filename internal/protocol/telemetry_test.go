package protocol

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestTelemetryHeaderCompat checks that the HintTelemetryV1 extension
// fields stay invisible to old peers: every header that grew a gated field
// encodes byte-identically to the pre-extension layout when the field is
// unset.
func TestTelemetryHeaderCompat(t *testing.T) {
	cases := []struct {
		name string
		v    any
		leak string
	}{
		{"presend trace", ModelPreSendHeader{AppID: "a", ModelName: "m", Spec: json.RawMessage(`{}`)}, "traceId"},
		{"ack span", AckHeader{AppID: "a", ModelName: "m"}, "span"},
		{"locate trace", BlobLocateHeader{Keys: []string{"k"}}, "traceId"},
		{"location span", BlobLocationHeader{Holders: map[string][]string{"k": {"s"}}}, "span"},
		{"blob get trace", BlobGetHeader{Key: "k"}, "traceId"},
		{"blob data span", BlobDataHeader{Key: "k", BodyCRC: 1}, "span"},
		{"register stats", FleetRegisterHeader{Addr: "a", Capacity: 1}, "stats"},
		{"server trace stream wait", ServerTrace{TraceID: "t", ExecuteMicros: 5}, "streamWaitMicros"},
	}
	for _, tc := range cases {
		data, err := json.Marshal(tc.v)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if strings.Contains(string(data), tc.leak) {
			t.Errorf("%s: unset telemetry field leaked into header: %s", tc.name, data)
		}
	}
}

// TestServerTraceTotalIncludesStreamWait pins the honest wire-time
// derivation: the client subtracts the server's reported total from the
// round trip, so the semaphore wait a multiplexed request spent before
// service must count as server time, not network time.
func TestServerTraceTotalIncludesStreamWait(t *testing.T) {
	st := ServerTrace{DecodeMicros: 1, QueueMicros: 2, ExecuteMicros: 3, EncodeMicros: 4}
	if got := st.Total(); got != 10*time.Microsecond {
		t.Fatalf("Total without stream wait = %v, want 10µs", got)
	}
	st.StreamWaitMicros = 90
	if got := st.Total(); got != 100*time.Microsecond {
		t.Fatalf("Total with stream wait = %v, want 100µs", got)
	}
}

func TestSpanNodeWalkAndRoundTrip(t *testing.T) {
	root := &SpanNode{
		Op: "serve", Addr: "edge-a", Micros: 100, Detail: "app",
		Children: []*SpanNode{
			{Op: "execute", Micros: 60},
			{Op: "presend_resolve", Addr: "edge-b", Micros: 30, Children: []*SpanNode{
				{Op: "registry_locate", Addr: "reg", Micros: 5},
				{Op: "blob_serve", Addr: "edge-c", Micros: 20},
			}},
		},
	}
	var ops []string
	root.Walk(func(n *SpanNode) { ops = append(ops, n.Op) })
	want := []string{"serve", "execute", "presend_resolve", "registry_locate", "blob_serve"}
	if !reflect.DeepEqual(ops, want) {
		t.Fatalf("Walk order = %v, want %v", ops, want)
	}
	data, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	var back SpanNode
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, root) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, *root)
	}
	(*SpanNode)(nil).Walk(func(*SpanNode) { t.Fatal("nil walk visited a node") })
}

func TestStatsDigestRoundTrip(t *testing.T) {
	d := &StatsDigest{
		Stages: map[string]HistDigest{
			"execute": {Buckets: [][2]int64{{3, 7}, {9, 1}}, Count: 8, SumNanos: 12345},
		},
		Decisions:    map[string]uint64{"snapshot_full": 7, "shed": 1},
		QueueDepth:   2,
		StoreBytes:   1 << 20,
		UptimeMillis: 4200,
	}
	data, err := json.Marshal(FleetRegisterHeader{Addr: "a", Capacity: 1, Stats: d})
	if err != nil {
		t.Fatal(err)
	}
	var back FleetRegisterHeader
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Stats, d) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back.Stats, d)
	}
}

package protocol

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"net"
	"runtime"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestRoundTripAllTypes(t *testing.T) {
	tests := []struct {
		name   string
		msg    Message
		header any
	}{
		{"presend", mustEncode(t, MsgModelPreSend,
			ModelPreSendHeader{AppID: "a", ModelName: "m", Spec: json.RawMessage(`{"name":"m"}`), Partial: true},
			[]byte{1, 2, 3}), nil},
		{"ack", mustEncode(t, MsgAck, AckHeader{AppID: "a", ModelName: "m"}, nil), nil},
		{"snapshot", mustEncode(t, MsgSnapshot, SnapshotHeader{AppID: "a", Seq: 7}, []byte("// snap")), nil},
		{"result", mustEncode(t, MsgResultSnapshot, SnapshotHeader{AppID: "a", Seq: 7}, []byte("// snap")), nil},
		{"error", mustEncode(t, MsgError, ErrorHeader{Message: "boom"}, nil), nil},
		{"overlay", mustEncode(t, MsgInstallOverlay, InstallOverlayHeader{BaseImage: "ubuntu"}, []byte{9}), nil},
		{"done", mustEncode(t, MsgInstallDone, InstallDoneHeader{SynthesisMillis: 1900}, nil), nil},
		{"fleet-register", mustEncode(t, MsgFleetRegister,
			FleetRegisterHeader{Addr: "10.0.0.1:9000", Capacity: 4, TTLMillis: 3000,
				Load: &LoadHint{Workers: 4, Busy: 2}, Blobs: []string{"abc123", "def456"}, Hints: HintFleetV1},
			nil), nil},
		{"fleet-registered", mustEncode(t, MsgFleetRegistered, FleetRegisteredHeader{Servers: 3, Version: 17}, nil), nil},
		{"fleet-list", mustEncode(t, MsgFleetList, FleetListHeader{Hints: HintFleetV1}, nil), nil},
		{"fleet-view", mustEncode(t, MsgFleetView,
			FleetViewHeader{Version: 17, Servers: []FleetServer{{Addr: "10.0.0.1:9000", Capacity: 4, AgeMillis: 120}}},
			nil), nil},
		{"blob-locate", mustEncode(t, MsgBlobLocate, BlobLocateHeader{Keys: []string{"abc123"}}, nil), nil},
		{"blob-location", mustEncode(t, MsgBlobLocation,
			BlobLocationHeader{Holders: map[string][]string{"abc123": {"10.0.0.1:9000"}}}, nil), nil},
		{"blob-get", mustEncode(t, MsgBlobGet, BlobGetHeader{Key: "abc123"}, nil), nil},
		{"blob-data", mustEncode(t, MsgBlobData, BlobDataHeader{Key: "abc123", BodyCRC: 7}, []byte{4, 5, 6}), nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Write(&buf, tt.msg); err != nil {
				t.Fatalf("Write: %v", err)
			}
			got, err := Read(&buf)
			if err != nil {
				t.Fatalf("Read: %v", err)
			}
			if got.Type != tt.msg.Type {
				t.Errorf("type %s != %s", got.Type, tt.msg.Type)
			}
			if !bytes.Equal(got.Header, tt.msg.Header) {
				t.Error("header corrupted")
			}
			if !bytes.Equal(got.Body, tt.msg.Body) {
				t.Error("body corrupted")
			}
		})
	}
}

func mustEncode(t *testing.T, typ MsgType, header any, body []byte) Message {
	t.Helper()
	msg, err := Encode(typ, header, body)
	if err != nil {
		t.Fatal(err)
	}
	return msg
}

func TestMultipleMessagesOnStream(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 3; i++ {
		msg := mustEncode(t, MsgAck, AckHeader{ModelName: "m"}, nil)
		if err := Write(&buf, msg); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := Read(&buf); err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
	}
	if _, err := Read(&buf); !errors.Is(err, io.EOF) {
		t.Errorf("after stream end: %v, want EOF", err)
	}
}

func TestReadBadMagic(t *testing.T) {
	data := make([]byte, 18)
	if _, err := Read(bytes.NewReader(data)); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestReadBadVersion(t *testing.T) {
	var buf bytes.Buffer
	msg := Message{Type: MsgAck, Header: []byte("{}")}
	if err := Write(&buf, msg); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99
	if _, err := Read(bytes.NewReader(data)); !errors.Is(err, ErrBadVersion) {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestReadUnknownType(t *testing.T) {
	var buf bytes.Buffer
	msg := Message{Type: MsgAck, Header: []byte("{}")}
	if err := Write(&buf, msg); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[5] = 200
	if _, err := Read(bytes.NewReader(data)); !errors.Is(err, ErrUnknownType) {
		t.Errorf("err = %v, want ErrUnknownType", err)
	}
}

func TestReadTruncated(t *testing.T) {
	var buf bytes.Buffer
	msg := mustEncode(t, MsgSnapshot, SnapshotHeader{AppID: "a"}, make([]byte, 100))
	if err := Write(&buf, msg); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{3, 17, 20, buf.Len() - 1} {
		if _, err := Read(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Errorf("truncated at %d decoded without error", cut)
		}
	}
}

func TestReadOversizedDeclared(t *testing.T) {
	var buf bytes.Buffer
	msg := Message{Type: MsgAck, Header: []byte("{}")}
	if err := Write(&buf, msg); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Corrupt the declared body length to something enormous.
	for i := 10; i < 18; i++ {
		data[i] = 0xFF
	}
	if _, err := Read(bytes.NewReader(data)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestWriteTooLarge(t *testing.T) {
	msg := Message{Type: MsgAck, Header: make([]byte, MaxHeaderLen+1)}
	if err := Write(io.Discard, msg); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestDecodeHeader(t *testing.T) {
	msg := mustEncode(t, MsgAck, AckHeader{AppID: "a", ModelName: "m"}, nil)
	var hdr AckHeader
	if err := DecodeHeader(msg, &hdr); err != nil {
		t.Fatalf("DecodeHeader: %v", err)
	}
	if hdr.AppID != "a" || hdr.ModelName != "m" {
		t.Errorf("header = %+v", hdr)
	}
	msg.Header = []byte("not json")
	if err := DecodeHeader(msg, &hdr); err == nil {
		t.Error("bad JSON header should fail")
	}
}

func TestMsgTypeString(t *testing.T) {
	if MsgSnapshot.String() != "snapshot" {
		t.Errorf("MsgSnapshot = %q", MsgSnapshot)
	}
	if MsgType(99).String() != "unknown(99)" {
		t.Errorf("unknown = %q", MsgType(99))
	}
	for typ, want := range map[MsgType]string{
		MsgFleetRegister:   "fleet-register",
		MsgFleetRegistered: "fleet-registered",
		MsgFleetList:       "fleet-list",
		MsgFleetView:       "fleet-view",
		MsgBlobLocate:      "blob-locate",
		MsgBlobLocation:    "blob-location",
		MsgBlobGet:         "blob-get",
		MsgBlobData:        "blob-data",
	} {
		if typ.String() != want {
			t.Errorf("%d.String() = %q, want %q", typ, typ, want)
		}
	}
}

// TestRefPreSendHeaderCompat checks that the fleet extension fields stay
// invisible to old peers: a header without BlobKey/RefOnly/NeedBlob/Fleet
// encodes byte-identically to the pre-extension layout.
func TestRefPreSendHeaderCompat(t *testing.T) {
	plain, err := json.Marshal(ModelPreSendHeader{AppID: "a", ModelName: "m", Spec: json.RawMessage(`{}`)})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(plain), "blobKey") || strings.Contains(string(plain), "refOnly") {
		t.Errorf("unset fleet fields leaked into header: %s", plain)
	}
	ack, err := json.Marshal(AckHeader{AppID: "a", ModelName: "m"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(ack), "needBlob") {
		t.Errorf("unset NeedBlob leaked into ack header: %s", ack)
	}
	pong, err := json.Marshal(PongHeader{Installed: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(pong), "fleet") {
		t.Errorf("unset Fleet leaked into pong header: %s", pong)
	}
}

// TestEmptyBodyOverPipe is a regression test: messages with empty bodies
// (ACKs, errors) must not deadlock on rendezvous transports like net.Pipe,
// where a zero-byte Write blocks for a Read that io.ReadFull(0) never
// issues.
func TestEmptyBodyOverPipe(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	msg := mustEncode(t, MsgAck, AckHeader{AppID: "x", ModelName: "m"}, nil)
	errCh := make(chan error, 1)
	go func() { errCh <- Write(a, msg) }()
	got, err := Read(b)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Type != MsgAck || len(got.Body) != 0 {
		t.Errorf("got %+v", got)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("Write: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Write deadlocked on empty body")
	}
}

func TestCompressDecodeBody(t *testing.T) {
	text := []byte(strings.Repeat("var feature = [0.1,0.2,0.3];\n", 500))
	compressed, err := CompressBody(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(compressed) >= len(text)/2 {
		t.Errorf("snapshot-like text should compress well: %d vs %d", len(compressed), len(text))
	}
	plain, err := DecodeBody(compressed, EncodingFlate)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, text) {
		t.Error("compression round trip corrupted the body")
	}
	raw, err := DecodeBody(text, EncodingRaw)
	if err != nil || !bytes.Equal(raw, text) {
		t.Errorf("raw DecodeBody should pass through: %v", err)
	}
	if _, err := DecodeBody(text, "lzma"); err == nil {
		t.Error("unknown encoding should fail")
	}
	if _, err := DecodeBody([]byte("garbage not flate"), EncodingFlate); err == nil {
		t.Error("corrupt compressed body should fail")
	}
}

// Property: any header/body payload round-trips bit-exactly.
func TestQuickRoundTrip(t *testing.T) {
	f := func(body []byte, app, model string) bool {
		msg, err := Encode(MsgModelPreSend, ModelPreSendHeader{
			AppID: app, ModelName: model, Spec: json.RawMessage(`{}`),
		}, body)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := Write(&buf, msg); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return got.Type == msg.Type && bytes.Equal(got.Header, msg.Header) && bytes.Equal(got.Body, msg.Body)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBodyChecksumVerify(t *testing.T) {
	body := []byte("var feature = [0.1,0.2];")
	sum := BodyChecksum(body)
	if sum == 0 {
		t.Fatal("checksum of non-empty body should be non-zero")
	}
	if err := VerifyBody(body, sum); err != nil {
		t.Errorf("matching checksum rejected: %v", err)
	}
	// Zero sum means "unchecked" (old peer): always passes.
	if err := VerifyBody(body, 0); err != nil {
		t.Errorf("zero checksum must be skipped: %v", err)
	}
	corrupted := append([]byte(nil), body...)
	corrupted[5] ^= 0x40
	err := VerifyBody(corrupted, sum)
	if !errors.Is(err, ErrChecksum) {
		t.Errorf("err = %v, want ErrChecksum", err)
	}
}

// TestReadHugeClaimedBodyBoundedAlloc is a regression test: a frame header
// whose corrupted length prefix claims a body near MaxBodyLen (1 GiB) but
// whose stream ends after a few bytes must fail with a truncation error
// WITHOUT allocating the claimed size up front.
func TestReadHugeClaimedBodyBoundedAlloc(t *testing.T) {
	var buf bytes.Buffer
	msg := Message{Type: MsgSnapshot, Header: []byte("{}")}
	if err := Write(&buf, msg); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	binary.LittleEndian.PutUint64(data[10:18], MaxBodyLen) // claim 1 GiB
	data = append(data, []byte("only a few bytes arrive")...)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	_, err := Read(bytes.NewReader(data))
	runtime.ReadMemStats(&after)
	if err == nil {
		t.Fatal("truncated huge-claim frame decoded without error")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
		t.Errorf("err = %v, want unexpected-EOF truncation", err)
	}
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 64<<20 {
		t.Errorf("Read allocated %d bytes for a body that never arrived; want bounded growth", grew)
	}
}

// TestReadLargeBodyStillRoundTrips pins that the chunked body reader
// reassembles multi-chunk bodies bit-exactly.
func TestReadLargeBodyStillRoundTrips(t *testing.T) {
	body := make([]byte, 3<<20+12345)
	for i := range body {
		body[i] = byte(i * 31)
	}
	var buf bytes.Buffer
	if err := Write(&buf, Message{Type: MsgSnapshot, Header: []byte("{}"), Body: body}); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Body, body) {
		t.Error("multi-chunk body corrupted in reassembly")
	}
}

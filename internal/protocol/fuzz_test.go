package protocol

import (
	"bytes"
	"errors"
	"testing"
	"unicode/utf8"
)

// FuzzRead hardens the frame parser: arbitrary bytes must either parse into
// a message that round-trips, or fail cleanly — never panic or over-read.
func FuzzRead(f *testing.F) {
	msg, err := Encode(MsgSnapshot, SnapshotHeader{AppID: "a", Seq: 1}, []byte("body"))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, msg); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(make([]byte, 18))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Write(&out, got); err != nil {
			t.Errorf("parsed message failed to re-frame: %v", err)
			return
		}
		reread, err := Read(&out)
		if err != nil {
			t.Errorf("re-framed message failed to parse: %v", err)
			return
		}
		if reread.Type != got.Type || !bytes.Equal(reread.Header, got.Header) || !bytes.Equal(reread.Body, got.Body) {
			t.Error("round trip not stable")
		}
	})
}

// FuzzFrameRoundTrip fuzzes the structured path: a SnapshotHeader under
// arbitrary hint-version permutations (none, HintLoadV1, HintTraceV1,
// HintCRCV1, and unknown future versions) must frame, parse, and decode
// back field-for-field, and the body checksum must verify exactly when it
// was computed over the bytes that arrived.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(0, uint64(0), "app", "", []byte(nil), false)
	f.Add(int(HintLoadV1), uint64(1), "a", "", []byte("body"), false)
	f.Add(int(HintTraceV1), uint64(7), "roam-app", "0123456789abcdef", []byte("snapshot body"), false)
	f.Add(int(HintCRCV1), uint64(1)<<40, "x", "deadbeef", bytes.Repeat([]byte{0xA5}, 300), true)
	f.Add(99, uint64(1), "", "", []byte{0}, true)
	f.Fuzz(func(t *testing.T, hints int, seq uint64, appID, traceID string, body []byte, flipCRC bool) {
		if len(appID)+len(traceID) > MaxHeaderLen/2 {
			return // oversized metadata is rejected by Write, not round-tripped
		}
		hdr := SnapshotHeader{
			AppID:   appID,
			Seq:     seq,
			Hints:   hints,
			TraceID: traceID,
			BodyCRC: BodyChecksum(body),
		}
		if flipCRC {
			hdr.BodyCRC++
		}
		msg, err := Encode(MsgSnapshot, hdr, body)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, msg); err != nil {
			t.Fatalf("write: %v", err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("failed to read back own frame: %v", err)
		}
		if got.Type != MsgSnapshot || !bytes.Equal(got.Body, body) {
			t.Fatalf("frame did not round-trip: type %v, body %d bytes", got.Type, len(got.Body))
		}
		var back SnapshotHeader
		if err := DecodeHeader(got, &back); err != nil {
			t.Fatalf("decode header: %v", err)
		}
		if back.Seq != seq || back.Hints != hints || back.BodyCRC != hdr.BodyCRC {
			t.Errorf("header round-trip mismatch: got %+v, sent %+v", back, hdr)
		}
		// JSON replaces invalid UTF-8 in strings, so only well-formed
		// identifiers are expected back verbatim.
		if utf8.ValidString(appID) && back.AppID != appID {
			t.Errorf("appID round-trip: got %q, sent %q", back.AppID, appID)
		}
		if utf8.ValidString(traceID) && back.TraceID != traceID {
			t.Errorf("traceID round-trip: got %q, sent %q", back.TraceID, traceID)
		}
		err = VerifyBody(got.Body, back.BodyCRC)
		switch {
		case back.BodyCRC == 0:
			// Zero means unchecked, regardless of how it came about.
			if err != nil {
				t.Errorf("zero checksum must be accepted: %v", err)
			}
		case flipCRC:
			if !errors.Is(err, ErrChecksum) {
				t.Errorf("corrupted checksum not detected (err = %v)", err)
			}
		default:
			if err != nil {
				t.Errorf("valid checksum rejected: %v", err)
			}
		}
	})
}

package protocol

import (
	"bytes"
	"testing"
)

// FuzzRead hardens the frame parser: arbitrary bytes must either parse into
// a message that round-trips, or fail cleanly — never panic or over-read.
func FuzzRead(f *testing.F) {
	msg, err := Encode(MsgSnapshot, SnapshotHeader{AppID: "a", Seq: 1}, []byte("body"))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, msg); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(make([]byte, 18))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Write(&out, got); err != nil {
			t.Errorf("parsed message failed to re-frame: %v", err)
			return
		}
		reread, err := Read(&out)
		if err != nil {
			t.Errorf("re-framed message failed to parse: %v", err)
			return
		}
		if reread.Type != got.Type || !bytes.Equal(reread.Header, got.Header) || !bytes.Equal(reread.Body, got.Body) {
			t.Error("round trip not stable")
		}
	})
}

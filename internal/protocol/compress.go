package protocol

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
)

// Body encodings carried in snapshot headers. Snapshots are textual
// programs, so they compress well; compression is optional (and off by
// default, matching the paper's plain-text snapshots) because it trades
// client CPU for bandwidth.
const (
	// EncodingRaw is the default: the body is the literal snapshot text.
	EncodingRaw = ""
	// EncodingFlate marks a DEFLATE-compressed body.
	EncodingFlate = "flate"
)

// CompressBody compresses a message body with DEFLATE.
func CompressBody(body []byte) ([]byte, error) {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return nil, fmt.Errorf("protocol: compress: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return nil, fmt.Errorf("protocol: compress: %w", err)
	}
	if err := w.Close(); err != nil {
		return nil, fmt.Errorf("protocol: compress: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeBody returns the plain body for the given encoding, enforcing the
// frame size cap on the decompressed size.
func DecodeBody(body []byte, encoding string) ([]byte, error) {
	switch encoding {
	case EncodingRaw:
		return body, nil
	case EncodingFlate:
		r := flate.NewReader(bytes.NewReader(body))
		defer r.Close()
		var buf bytes.Buffer
		n, err := io.Copy(&buf, io.LimitReader(r, MaxBodyLen+1))
		if err != nil {
			return nil, fmt.Errorf("protocol: decompress: %w", err)
		}
		if n > MaxBodyLen {
			return nil, fmt.Errorf("%w: decompressed body exceeds %d bytes", ErrTooLarge, int64(MaxBodyLen))
		}
		return buf.Bytes(), nil
	default:
		return nil, fmt.Errorf("protocol: unknown body encoding %q", encoding)
	}
}

// Package vmsynth implements on-demand installation of the offloading
// system at an edge server via VM synthesis (paper §III.B.3, after
// Satyanarayanan's cloudlet work): the client ships a compressed *VM
// overlay* containing the offloading server program, the browser, the
// support libraries, and optionally the DNN model; the edge server
// synthesizes a VM instance from the overlay on top of a base image.
//
// Substitutions (DESIGN.md §1): the stdlib has flate, not LZMA, so real
// overlay blobs use flate, while the analytic size model uses per-component
// compression ratios calibrated from the paper's Table 1 (binary
// executables/libraries compress to ~0.38, float32 model weights are
// incompressible at ~1.0 — the two ratios that exactly reproduce the 65 MB
// and 82 MB overlays). QEMU/KVM instance launch is abstracted into a
// calibrated apply rate (~33 MB/s, from Table 1's synthesis times minus
// transfer times).
package vmsynth

import (
	"bytes"
	"compress/flate"
	"errors"
	"fmt"
	"io"
	"time"
)

// Calibrated constants (see the package comment and DESIGN.md §4).
const (
	// BrowserBytes, LibraryBytes, ServerBytes are the paper's overlay
	// component inventory before compression (§IV.C).
	BrowserBytes = 45 << 20
	LibraryBytes = 54 << 20
	ServerBytes  = 1 << 20

	// BinaryCompressRatio is the compressed/raw ratio for executable and
	// library components.
	BinaryCompressRatio = 0.38
	// ModelCompressRatio is the compressed/raw ratio for float32 weight
	// blobs (effectively incompressible).
	ModelCompressRatio = 1.0

	// DefaultApplyBytesPerSec is the calibrated VM-synthesis apply rate.
	DefaultApplyBytesPerSec = 33 << 20
)

// Component is one part of a VM overlay.
type Component struct {
	// Name identifies the component ("browser", "libs", ...).
	Name string
	// RawBytes is the uncompressed size. When Data is set it must equal
	// len(Data).
	RawBytes int64
	// CompressRatio is the expected compressed/raw ratio, used by the
	// analytic size model when Data is absent.
	CompressRatio float64
	// Data optionally carries real bytes, enabling real compression.
	Data []byte
}

// Validate checks internal consistency.
func (c Component) Validate() error {
	if c.Name == "" {
		return errors.New("vmsynth: component with empty name")
	}
	if c.RawBytes < 0 {
		return fmt.Errorf("vmsynth: component %q: negative size", c.Name)
	}
	if c.Data != nil && int64(len(c.Data)) != c.RawBytes {
		return fmt.Errorf("vmsynth: component %q: data length %d != RawBytes %d",
			c.Name, len(c.Data), c.RawBytes)
	}
	if c.CompressRatio < 0 || c.CompressRatio > 1 {
		return fmt.Errorf("vmsynth: component %q: compress ratio %f out of [0,1]",
			c.Name, c.CompressRatio)
	}
	return nil
}

// StandardComponents returns the paper's overlay inventory for a model of
// the given size: browser + libraries + offloading server + model.
func StandardComponents(modelBytes int64) []Component {
	return []Component{
		{Name: "browser", RawBytes: BrowserBytes, CompressRatio: BinaryCompressRatio},
		{Name: "libs", RawBytes: LibraryBytes, CompressRatio: BinaryCompressRatio},
		{Name: "offload-server", RawBytes: ServerBytes, CompressRatio: BinaryCompressRatio},
		{Name: "model", RawBytes: modelBytes, CompressRatio: ModelCompressRatio},
	}
}

// Overlay is a VM overlay assembled from components.
type Overlay struct {
	Components []Component
	// Compressed is the real compressed blob, present only when every
	// component carried data.
	Compressed []byte
	// CompressedBytes is the overlay's (real or estimated) compressed
	// size — what travels to the edge server.
	CompressedBytes int64
	// RawBytes is the total uncompressed size.
	RawBytes int64
}

// BuildOverlay assembles an overlay. If every component carries Data, the
// blob is actually flate-compressed; otherwise the compressed size is
// estimated from the per-component ratios.
func BuildOverlay(comps ...Component) (*Overlay, error) {
	if len(comps) == 0 {
		return nil, errors.New("vmsynth: empty overlay")
	}
	o := &Overlay{Components: comps}
	allData := true
	for _, c := range comps {
		if err := c.Validate(); err != nil {
			return nil, err
		}
		o.RawBytes += c.RawBytes
		if c.Data == nil {
			allData = false
		}
	}
	if allData {
		var buf bytes.Buffer
		w, err := flate.NewWriter(&buf, flate.BestSpeed)
		if err != nil {
			return nil, fmt.Errorf("vmsynth: flate: %w", err)
		}
		for _, c := range comps {
			if _, err := w.Write(c.Data); err != nil {
				return nil, fmt.Errorf("vmsynth: compress %q: %w", c.Name, err)
			}
		}
		if err := w.Close(); err != nil {
			return nil, fmt.Errorf("vmsynth: compress: %w", err)
		}
		o.Compressed = buf.Bytes()
		o.CompressedBytes = int64(buf.Len())
		return o, nil
	}
	var est float64
	for _, c := range comps {
		est += float64(c.RawBytes) * c.CompressRatio
	}
	o.CompressedBytes = int64(est)
	return o, nil
}

// BaseImage is a VM base image available at the edge server (e.g. "the OS
// necessary to run our offloading system", Ubuntu 12.04 in the paper).
type BaseImage struct {
	Name  string
	Bytes int64
}

// Result reports one completed synthesis.
type Result struct {
	BaseImage string
	// OverlayBytes is the compressed overlay size that was applied.
	OverlayBytes int64
	// DecompressedBytes is the overlay's size after decompression.
	DecompressedBytes int64
	// SynthesisTime is the modeled time to synthesize the VM instance
	// (decompress + apply), excluding network transfer.
	SynthesisTime time.Duration
}

// Synthesizer performs VM synthesis at an edge server.
type Synthesizer struct {
	// BaseImages lists the base images present at the server.
	BaseImages map[string]BaseImage
	// ApplyBytesPerSec is the synthesis apply rate over the decompressed
	// overlay; zero selects DefaultApplyBytesPerSec.
	ApplyBytesPerSec float64
	// Wait, when true, makes Synthesize sleep for the modeled synthesis
	// time (live demos); tests leave it false.
	Wait bool
}

// NewSynthesizer creates a synthesizer with the given base images
// available.
func NewSynthesizer(images ...BaseImage) *Synthesizer {
	m := make(map[string]BaseImage, len(images))
	for _, img := range images {
		m[img.Name] = img
	}
	return &Synthesizer{BaseImages: m}
}

// Synthesize validates and "applies" a compressed overlay blob onto the
// named base image, returning the modeled synthesis cost. The blob must be
// real flate data (as produced by BuildOverlay with component data).
func (s *Synthesizer) Synthesize(base string, compressedOverlay []byte) (Result, error) {
	if _, ok := s.BaseImages[base]; !ok {
		return Result{}, fmt.Errorf("vmsynth: base image %q not present at this edge server", base)
	}
	if len(compressedOverlay) == 0 {
		return Result{}, errors.New("vmsynth: empty overlay")
	}
	n, err := io.Copy(io.Discard, flate.NewReader(bytes.NewReader(compressedOverlay)))
	if err != nil {
		return Result{}, fmt.Errorf("vmsynth: corrupt overlay: %w", err)
	}
	res := Result{
		BaseImage:         base,
		OverlayBytes:      int64(len(compressedOverlay)),
		DecompressedBytes: n,
		SynthesisTime:     s.EstimateApply(int64(len(compressedOverlay))),
	}
	if s.Wait {
		time.Sleep(res.SynthesisTime)
	}
	return res, nil
}

// EstimateApply returns the modeled decompress-and-apply time for a
// compressed overlay of n bytes. Table 1's synthesis times are transfer
// plus this quantity.
func (s *Synthesizer) EstimateApply(n int64) time.Duration {
	rate := s.ApplyBytesPerSec
	if rate <= 0 {
		rate = DefaultApplyBytesPerSec
	}
	return time.Duration(float64(n) / rate * float64(time.Second))
}

package vmsynth

import (
	"strings"
	"testing"
	"time"

	"websnap/internal/netem"
)

func TestStandardComponentsInventory(t *testing.T) {
	comps := StandardComponents(27 << 20)
	if len(comps) != 4 {
		t.Fatalf("got %d components, want 4", len(comps))
	}
	var total int64
	names := map[string]bool{}
	for _, c := range comps {
		if err := c.Validate(); err != nil {
			t.Errorf("component %q invalid: %v", c.Name, err)
		}
		total += c.RawBytes
		names[c.Name] = true
	}
	for _, want := range []string{"browser", "libs", "offload-server", "model"} {
		if !names[want] {
			t.Errorf("missing component %q", want)
		}
	}
	if total != BrowserBytes+LibraryBytes+ServerBytes+27<<20 {
		t.Errorf("total raw = %d", total)
	}
}

// TestTable1OverlaySizes checks the analytic compressed overlay sizes
// against the paper's Table 1: 65 MB for GoogLeNet (27 MB model) and 82 MB
// for AgeNet/GenderNet (44 MB models), within 10%.
func TestTable1OverlaySizes(t *testing.T) {
	tests := []struct {
		name       string
		modelBytes int64
		paperMB    float64
	}{
		{"googlenet", 27 << 20, 65},
		{"agenet", 44 << 20, 82},
		{"gendernet", 44 << 20, 82},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			o, err := BuildOverlay(StandardComponents(tt.modelBytes)...)
			if err != nil {
				t.Fatal(err)
			}
			gotMB := float64(o.CompressedBytes) / (1 << 20)
			if gotMB < tt.paperMB*0.9 || gotMB > tt.paperMB*1.1 {
				t.Errorf("overlay = %.1f MB, want within 10%% of %.0f MB", gotMB, tt.paperMB)
			}
		})
	}
}

// TestTable1SynthesisTimes checks transfer + apply against the paper's
// 19.31 s and 24.29 s synthesis times (within 15%).
func TestTable1SynthesisTimes(t *testing.T) {
	syn := NewSynthesizer(BaseImage{Name: "ubuntu-12.04", Bytes: 1 << 30})
	tests := []struct {
		modelBytes int64
		paperSecs  float64
	}{
		{27 << 20, 19.31},
		{44 << 20, 24.29},
	}
	for _, tt := range tests {
		o, err := BuildOverlay(StandardComponents(tt.modelBytes)...)
		if err != nil {
			t.Fatal(err)
		}
		total := netem.WiFi30Mbps.TransferTime(o.CompressedBytes) + syn.EstimateApply(o.CompressedBytes)
		got := total.Seconds()
		if got < tt.paperSecs*0.85 || got > tt.paperSecs*1.15 {
			t.Errorf("synthesis total = %.2fs, want within 15%% of %.2fs", got, tt.paperSecs)
		}
	}
}

func TestBuildOverlayRealCompression(t *testing.T) {
	// Compressible "binary" component and incompressible-ish component.
	binData := []byte(strings.Repeat("LIBC-SYMBOLS-", 1000))
	comps := []Component{
		{Name: "bin", RawBytes: int64(len(binData)), CompressRatio: 0.4, Data: binData},
	}
	o, err := BuildOverlay(comps...)
	if err != nil {
		t.Fatal(err)
	}
	if o.Compressed == nil {
		t.Fatal("real data should produce a real blob")
	}
	if o.CompressedBytes >= o.RawBytes {
		t.Errorf("repetitive data did not compress: %d >= %d", o.CompressedBytes, o.RawBytes)
	}

	syn := NewSynthesizer(BaseImage{Name: "base", Bytes: 1})
	res, err := syn.Synthesize("base", o.Compressed)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if res.DecompressedBytes != o.RawBytes {
		t.Errorf("decompressed %d bytes, want %d", res.DecompressedBytes, o.RawBytes)
	}
	if res.SynthesisTime <= 0 {
		t.Error("synthesis time should be positive")
	}
}

func TestSynthesizeErrors(t *testing.T) {
	syn := NewSynthesizer(BaseImage{Name: "base", Bytes: 1})
	if _, err := syn.Synthesize("missing-base", []byte{1}); err == nil {
		t.Error("unknown base image should fail")
	}
	if _, err := syn.Synthesize("base", nil); err == nil {
		t.Error("empty overlay should fail")
	}
	if _, err := syn.Synthesize("base", []byte("definitely not flate data")); err == nil {
		t.Error("corrupt overlay should fail")
	}
}

func TestBuildOverlayValidation(t *testing.T) {
	if _, err := BuildOverlay(); err == nil {
		t.Error("empty overlay should fail")
	}
	if _, err := BuildOverlay(Component{Name: "", RawBytes: 1}); err == nil {
		t.Error("unnamed component should fail")
	}
	if _, err := BuildOverlay(Component{Name: "x", RawBytes: 5, Data: []byte{1}}); err == nil {
		t.Error("size mismatch should fail")
	}
	if _, err := BuildOverlay(Component{Name: "x", RawBytes: 1, CompressRatio: 2}); err == nil {
		t.Error("ratio > 1 should fail")
	}
}

func TestEstimateApplyDefaultRate(t *testing.T) {
	syn := &Synthesizer{}
	got := syn.EstimateApply(DefaultApplyBytesPerSec)
	if got < 999*time.Millisecond || got > 1001*time.Millisecond {
		t.Errorf("EstimateApply at default rate = %v, want ~1s", got)
	}
}

// K-way chain partitioning: generalize the paper's single client/server
// split into an ordered cut set over a chain of devices (client → relay
// edge servers → terminal server), in the spirit of DEFER's pipelined
// multi-device partitioning. The 2-device Analyze/Choose API remains the
// K=2 special case: a chain of [client, server] with one link reproduces
// the legacy candidate costs exactly.

package partition

import (
	"errors"
	"fmt"
	"time"

	"websnap/internal/costmodel"
	"websnap/internal/netem"
	"websnap/internal/nn"
)

// ErrBadConfig tags configuration validation failures; test with
// errors.Is(err, ErrBadConfig).
var ErrBadConfig = errors.New("partition: invalid config")

// BadConfigError reports which configuration field is unusable and why. It
// unwraps to ErrBadConfig.
type BadConfigError struct {
	// Field names the offending field, e.g. "Network.BandwidthBitsPerSec"
	// or "Hops[2].Device.DefaultFLOPS".
	Field string
	// Reason says what is wrong with it.
	Reason string
}

func (e *BadConfigError) Error() string {
	return fmt.Sprintf("partition: invalid config: %s: %s", e.Field, e.Reason)
}

func (e *BadConfigError) Unwrap() error { return ErrBadConfig }

// validateDevice rejects device profiles that would yield non-positive or
// non-finite layer times: the DP minimizes over candidate sums, and a NaN
// or Inf term silently poisons every comparison downstream.
func validateDevice(field string, d costmodel.Device) error {
	if d.DefaultFLOPS <= 0 {
		return &BadConfigError{Field: field + ".DefaultFLOPS", Reason: fmt.Sprintf("non-positive FLOP/s %g", d.DefaultFLOPS)}
	}
	for typ, v := range d.FLOPSByType {
		if v <= 0 {
			return &BadConfigError{Field: fmt.Sprintf("%s.FLOPSByType[%s]", field, typ), Reason: fmt.Sprintf("non-positive FLOP/s %g", v)}
		}
	}
	if d.LayerOverhead < 0 {
		return &BadConfigError{Field: field + ".LayerOverhead", Reason: fmt.Sprintf("negative duration %v", d.LayerOverhead)}
	}
	if d.SnapshotFixed < 0 {
		return &BadConfigError{Field: field + ".SnapshotFixed", Reason: fmt.Sprintf("negative duration %v", d.SnapshotFixed)}
	}
	if d.SnapshotBytesPerSec < 0 {
		return &BadConfigError{Field: field + ".SnapshotBytesPerSec", Reason: fmt.Sprintf("negative throughput %g", d.SnapshotBytesPerSec)}
	}
	return nil
}

// validateLink rejects unusable link profiles. Unlike netem.Profile (where
// zero bandwidth means "unshaped"), the estimator needs a real bandwidth:
// a zero here almost always means an unset field, and taking it as
// infinite silently drags every cut toward the largest feature.
func validateLink(field string, p netem.Profile) error {
	if p.BandwidthBitsPerSec <= 0 {
		return &BadConfigError{Field: field + ".BandwidthBitsPerSec", Reason: fmt.Sprintf("non-positive bandwidth %g", p.BandwidthBitsPerSec)}
	}
	if p.Latency < 0 {
		return &BadConfigError{Field: field + ".Latency", Reason: fmt.Sprintf("negative latency %v", p.Latency)}
	}
	return nil
}

// Validate rejects configurations that would produce NaN/Inf or negative
// candidate times: non-positive bandwidth or FLOP/s, negative sizes or
// delays. Analyze calls it; callers constructing configs from external
// input can call it earlier for a typed error.
func (cfg Config) Validate() error {
	if err := validateDevice("Client", cfg.Client); err != nil {
		return err
	}
	if err := validateDevice("Server", cfg.Server); err != nil {
		return err
	}
	if err := validateLink("Network", cfg.Network); err != nil {
		return err
	}
	if cfg.TextBytesPerValue < 0 {
		return &BadConfigError{Field: "TextBytesPerValue", Reason: fmt.Sprintf("negative width %g", cfg.TextBytesPerValue)}
	}
	if cfg.StateOverheadBytes < 0 {
		return &BadConfigError{Field: "StateOverheadBytes", Reason: fmt.Sprintf("negative size %d", cfg.StateOverheadBytes)}
	}
	if cfg.ResultBytes < 0 {
		return &BadConfigError{Field: "ResultBytes", Reason: fmt.Sprintf("negative size %d", cfg.ResultBytes)}
	}
	if cfg.ServerQueueDelay < 0 {
		return &BadConfigError{Field: "ServerQueueDelay", Reason: fmt.Sprintf("negative delay %v", cfg.ServerQueueDelay)}
	}
	if cfg.Precision != "" && !cfg.Precision.Valid() {
		return &BadConfigError{Field: "Precision", Reason: fmt.Sprintf("unknown precision %q", cfg.Precision)}
	}
	return nil
}

// Objective selects what the chain DP minimizes.
type Objective int

const (
	// ObjectiveLatency minimizes one request's end-to-end latency: the sum
	// of every hop's compute, every boundary transfer, and the result
	// return.
	ObjectiveLatency Objective = iota
	// ObjectiveThroughput minimizes the pipeline bottleneck: with a steady
	// request stream, each hop works on request n while its upstream works
	// on n+1, so sustained throughput is 1/max(stage time). A stage's time
	// is its compute plus its outbound boundary cost; the terminal stage
	// carries the result return.
	ObjectiveThroughput
)

// Hop is one device on the chain. Hops[0] is the client; its QueueDelay is
// ignored (the client does not queue behind itself).
type Hop struct {
	// Device is the hop's latency model.
	Device costmodel.Device
	// QueueDelay is the hop's estimated scheduler queueing delay, from its
	// live load hint: how long relayed work waits before this hop's layer
	// range runs.
	QueueDelay time.Duration
}

// ChainConfig parametrizes the K-way chain estimator. A chain of
// [client, server] with one link is exactly the legacy 2-device Config.
type ChainConfig struct {
	// Hops lists the devices front to back: Hops[0] is the client, the
	// rest are edge servers in relay order. len(Hops) >= 2.
	Hops []Hop
	// Links[i] is the network between Hops[i] and Hops[i+1];
	// len(Links) == len(Hops)-1.
	Links []netem.Profile
	// TextBytesPerValue converts feature element counts to snapshot text
	// bytes. Zero selects MeasuredTextBytesPerValue().
	TextBytesPerValue float64
	// StateOverheadBytes is the non-feature part of each boundary
	// snapshot.
	StateOverheadBytes int64
	// ResultBytes is the size of the returning result snapshot.
	ResultBytes int64
	// Objective selects latency (default) or pipelined throughput.
	Objective Objective
	// Precision is the compute precision every hop runs its layer range
	// at (empty means float32). Boundary feature sizes are unchanged —
	// quantized plans dequantize at cut points — but hop compute shrinks
	// by each device's Int8Speedup.
	Precision nn.Precision
}

// Validate rejects chain configurations that would produce NaN/Inf or
// negative candidate times.
func (cfg ChainConfig) Validate() error {
	if len(cfg.Hops) < 2 {
		return &BadConfigError{Field: "Hops", Reason: fmt.Sprintf("need at least 2 hops, got %d", len(cfg.Hops))}
	}
	if len(cfg.Links) != len(cfg.Hops)-1 {
		return &BadConfigError{Field: "Links", Reason: fmt.Sprintf("need %d links for %d hops, got %d", len(cfg.Hops)-1, len(cfg.Hops), len(cfg.Links))}
	}
	for i, h := range cfg.Hops {
		if err := validateDevice(fmt.Sprintf("Hops[%d].Device", i), h.Device); err != nil {
			return err
		}
		if h.QueueDelay < 0 {
			return &BadConfigError{Field: fmt.Sprintf("Hops[%d].QueueDelay", i), Reason: fmt.Sprintf("negative delay %v", h.QueueDelay)}
		}
	}
	for i, l := range cfg.Links {
		if err := validateLink(fmt.Sprintf("Links[%d]", i), l); err != nil {
			return err
		}
	}
	if cfg.TextBytesPerValue < 0 {
		return &BadConfigError{Field: "TextBytesPerValue", Reason: fmt.Sprintf("negative width %g", cfg.TextBytesPerValue)}
	}
	if cfg.StateOverheadBytes < 0 {
		return &BadConfigError{Field: "StateOverheadBytes", Reason: fmt.Sprintf("negative size %d", cfg.StateOverheadBytes)}
	}
	if cfg.ResultBytes < 0 {
		return &BadConfigError{Field: "ResultBytes", Reason: fmt.Sprintf("negative size %d", cfg.ResultBytes)}
	}
	if cfg.Precision != "" && !cfg.Precision.Valid() {
		return &BadConfigError{Field: "Precision", Reason: fmt.Sprintf("unknown precision %q", cfg.Precision)}
	}
	return nil
}

// Chain lifts the legacy 2-device Config into the equivalent 2-hop
// ChainConfig: same devices, same link, server queue delay on the server
// hop. AnalyzeChain over it reproduces Analyze's candidate costs exactly.
func (cfg Config) Chain() ChainConfig {
	return ChainConfig{
		Hops: []Hop{
			{Device: cfg.Client},
			{Device: cfg.Server, QueueDelay: cfg.ServerQueueDelay},
		},
		Links:              []netem.Profile{cfg.Network},
		TextBytesPerValue:  cfg.TextBytesPerValue,
		StateOverheadBytes: cfg.StateOverheadBytes,
		ResultBytes:        cfg.ResultBytes,
		Precision:          cfg.Precision,
	}
}

// HopCost is one hop's share of a chain candidate.
type HopCost struct {
	// From and To delimit the layer range [From, To) this hop executes.
	// Hop 0's range starts at layer 0; the last hop's range ends at the
	// network's layer count.
	From, To int
	// Compute is the predicted execution time of the range on this hop.
	Compute time.Duration
	// QueueDelay is the hop's estimated scheduler wait (zero for hop 0).
	QueueDelay time.Duration
}

// ChainCandidate is one evaluated cut set with its cost breakdown.
type ChainCandidate struct {
	// Cuts are the K-1 chosen partition points in chain order: Hops[i]
	// hands off to Hops[i+1] at Cuts[i].
	Cuts []nn.PartitionPoint
	// Hops breaks the plan down per device, aligned with ChainConfig.Hops.
	Hops []HopCost
	// TransferTime sums every boundary feature transfer plus the result
	// return across all links.
	TransferTime time.Duration
	// SnapshotOverhead sums capture/restore at every boundary plus the
	// result capture/restore.
	SnapshotOverhead time.Duration
	// QueueDelay sums the relay hops' estimated scheduler waits.
	QueueDelay time.Duration
	// Latency is the end-to-end single-request estimate (the sum of all of
	// the above).
	Latency time.Duration
	// Bottleneck is the pipelined-throughput stage bound: the largest
	// single stage (hop compute + outbound boundary cost).
	Bottleneck time.Duration
	// Total is the objective value the DP minimized: Latency under
	// ObjectiveLatency, Bottleneck under ObjectiveThroughput.
	Total time.Duration
}

// ChainPlan is the chain analysis of one network: the optimal cut set with
// and without the paper's input-denaturing constraint.
type ChainPlan struct {
	NetworkName string
	// Best is the unconstrained optimum.
	Best *ChainCandidate
	// BestDenatured is the optimum whose first cut keeps at least one real
	// layer on the client (no cut at Input); nil when no such cut set
	// exists.
	BestDenatured *ChainCandidate
}

// Choose returns the optimal cut set, honoring the paper's privacy
// constraint when requireDenature is set.
func (p ChainPlan) Choose(requireDenature bool) (ChainCandidate, error) {
	c := p.Best
	if requireDenature {
		c = p.BestDenatured
	}
	if c == nil {
		return ChainCandidate{}, fmt.Errorf("%w (requireDenature=%v)", ErrNoCandidate, requireDenature)
	}
	return *c, nil
}

// AnalyzeChain chooses the optimal ordered cut set placing net's layers
// across cfg.Hops. With K hops it selects K-1 strictly increasing cuts
// from the network's partition points by dynamic programming over cut
// positions: dp[i][j] is the best objective over hops 0..i-1 with cut i at
// point j, combined left to right (sum under ObjectiveLatency, max under
// ObjectiveThroughput — both monotone, so the prefix optimum is safe to
// reuse). O(K·m²) for m partition points, versus C(m, K-1) brute force.
func AnalyzeChain(net *nn.Network, cfg ChainConfig) (ChainPlan, error) {
	if cfg.TextBytesPerValue <= 0 {
		cfg.TextBytesPerValue = MeasuredTextBytesPerValue()
	}
	if err := cfg.Validate(); err != nil {
		return ChainPlan{}, err
	}
	infos, err := net.Describe()
	if err != nil {
		return ChainPlan{}, fmt.Errorf("partition: %w", err)
	}
	pts, err := net.PartitionPoints()
	if err != nil {
		return ChainPlan{}, fmt.Errorf("partition: %w", err)
	}
	if len(pts) < len(cfg.Hops)-1 {
		return ChainPlan{}, fmt.Errorf("%w: %d partition points cannot seat %d cuts",
			ErrNoCandidate, len(pts), len(cfg.Hops)-1)
	}
	plan := ChainPlan{NetworkName: net.Name()}
	if best, ok, err := solveChain(infos, pts, cfg, false); err != nil {
		return ChainPlan{}, err
	} else if ok {
		plan.Best = &best
	}
	if best, ok, err := solveChain(infos, pts, cfg, true); err != nil {
		return ChainPlan{}, err
	} else if ok {
		plan.BestDenatured = &best
	}
	if plan.Best == nil {
		return ChainPlan{}, ErrNoCandidate
	}
	return plan, nil
}

// solveChain runs the cut-position DP. requireDenature restricts the first
// cut to points after Input (layer index >= 1).
func solveChain(infos []nn.LayerInfo, pts []nn.PartitionPoint, cfg ChainConfig, requireDenature bool) (ChainCandidate, bool, error) {
	k := len(cfg.Hops)
	m := len(pts)
	// prefix[h][l] is hop h's predicted time for layers [0, l); a range is
	// an exact difference of prefixes, so chain sums match the legacy
	// RangeTime sums bit for bit.
	prec := cfg.Precision
	if prec == "" {
		prec = nn.PrecFloat32
	}
	prefix := make([][]time.Duration, k)
	for h := range prefix {
		prefix[h] = make([]time.Duration, len(infos)+1)
		for l, li := range infos {
			lt, err := cfg.Hops[h].Device.LayerTimePrec(li, prec)
			if err != nil {
				return ChainCandidate{}, false, err
			}
			prefix[h][l+1] = prefix[h][l] + lt
		}
	}
	hopRange := func(h, from, to int) time.Duration { return prefix[h][to] - prefix[h][from] }
	// cutCost[i][j]: hand-off cost of cut slot i (1-based; between
	// Hops[i-1] and Hops[i]) placed at pts[j]: boundary transfer over
	// Links[i-1], capture on the sender, restore + queueing on the
	// receiver. For K=2 this is exactly the legacy candidate's upstream
	// share.
	cutCost := make([][]time.Duration, k)
	for i := 1; i < k; i++ {
		cutCost[i] = make([]time.Duration, m)
		for j, p := range pts {
			up := featureTextBytes(p, cfg.TextBytesPerValue) + cfg.StateOverheadBytes
			cutCost[i][j] = cfg.Links[i-1].TransferTime(up) +
				cfg.Hops[i-1].Device.SnapshotTime(up) +
				cfg.Hops[i].Device.SnapshotTime(up) +
				cfg.Hops[i].QueueDelay
		}
	}
	// The result snapshot rides every link back; relays forward it without
	// re-capturing, so only the terminal hop captures and the client
	// restores. For K=2 this is exactly the legacy downstream share.
	downBytes := cfg.ResultBytes + cfg.StateOverheadBytes
	var downCost time.Duration
	for _, l := range cfg.Links {
		downCost += l.TransferTime(downBytes)
	}
	downCost += cfg.Hops[k-1].Device.SnapshotTime(downBytes) +
		cfg.Hops[0].Device.SnapshotTime(downBytes)

	combine := func(a, b time.Duration) time.Duration {
		if cfg.Objective == ObjectiveThroughput {
			if a > b {
				return a
			}
			return b
		}
		return a + b
	}

	const unset = time.Duration(-1)
	dp := make([][]time.Duration, k)
	parent := make([][]int, k)
	for i := 1; i < k; i++ {
		dp[i] = make([]time.Duration, m)
		parent[i] = make([]int, m)
		for j := range dp[i] {
			dp[i][j] = unset
			parent[i][j] = -1
		}
	}
	for j, p := range pts {
		if requireDenature && p.Index == 0 {
			continue
		}
		// Stage 0: client computes [0, p] and pays the first hand-off.
		// Within a stage, compute and outbound hand-off always add; only
		// across stages does the objective pick sum (latency) or max
		// (pipeline bottleneck).
		dp[1][j] = hopRange(0, 0, p.Index+1) + cutCost[1][j]
	}
	for i := 2; i < k; i++ {
		for j := range pts {
			for jp := 0; jp < j; jp++ {
				if dp[i-1][jp] == unset {
					continue
				}
				stage := hopRange(i-1, pts[jp].Index+1, pts[j].Index+1) + cutCost[i][j]
				total := combine(dp[i-1][jp], stage)
				if dp[i][j] == unset || total < dp[i][j] {
					dp[i][j] = total
					parent[i][j] = jp
				}
			}
		}
	}
	bestJ, bestTotal := -1, unset
	for j := range pts {
		if dp[k-1][j] == unset {
			continue
		}
		tail := hopRange(k-1, pts[j].Index+1, len(infos)) + downCost
		total := combine(dp[k-1][j], tail)
		if bestJ < 0 || total < bestTotal {
			bestJ, bestTotal = j, total
		}
	}
	if bestJ < 0 {
		return ChainCandidate{}, false, nil
	}
	cutIdx := make([]int, k-1)
	for i, j := k-1, bestJ; i >= 1; i-- {
		cutIdx[i-1] = j
		j = parent[i][j]
	}
	cand := evaluateChain(infos, pts, cutIdx, cfg, hopRange, cutCost, downCost)
	return cand, true, nil
}

// evaluateChain expands a chosen cut index set into a full candidate with
// per-hop and per-phase cost breakdowns.
func evaluateChain(infos []nn.LayerInfo, pts []nn.PartitionPoint, cutIdx []int, cfg ChainConfig,
	hopRange func(h, from, to int) time.Duration, cutCost [][]time.Duration, downCost time.Duration) ChainCandidate {
	k := len(cfg.Hops)
	cand := ChainCandidate{
		Cuts: make([]nn.PartitionPoint, len(cutIdx)),
		Hops: make([]HopCost, k),
	}
	for i, j := range cutIdx {
		cand.Cuts[i] = pts[j]
	}
	for h := 0; h < k; h++ {
		from := 0
		if h > 0 {
			from = pts[cutIdx[h-1]].Index + 1
		}
		to := len(infos)
		if h < k-1 {
			to = pts[cutIdx[h]].Index + 1
		}
		cand.Hops[h] = HopCost{From: from, To: to, Compute: hopRange(h, from, to)}
		if h > 0 {
			cand.Hops[h].QueueDelay = cfg.Hops[h].QueueDelay
			cand.QueueDelay += cfg.Hops[h].QueueDelay
		}
	}
	downBytes := cfg.ResultBytes + cfg.StateOverheadBytes
	for i := 1; i < k; i++ {
		j := cutIdx[i-1]
		up := featureTextBytes(pts[j], cfg.TextBytesPerValue) + cfg.StateOverheadBytes
		cand.TransferTime += cfg.Links[i-1].TransferTime(up)
		cand.SnapshotOverhead += cfg.Hops[i-1].Device.SnapshotTime(up) + cfg.Hops[i].Device.SnapshotTime(up)
	}
	for _, l := range cfg.Links {
		cand.TransferTime += l.TransferTime(downBytes)
	}
	cand.SnapshotOverhead += cfg.Hops[k-1].Device.SnapshotTime(downBytes) + cfg.Hops[0].Device.SnapshotTime(downBytes)
	var compute time.Duration
	for h := 0; h < k; h++ {
		compute += cand.Hops[h].Compute
		stage := cand.Hops[h].Compute
		if h < k-1 {
			stage += cutCost[h+1][cutIdx[h]]
		} else {
			stage += downCost
		}
		if stage > cand.Bottleneck {
			cand.Bottleneck = stage
		}
	}
	cand.Latency = compute + cand.TransferTime + cand.SnapshotOverhead + cand.QueueDelay
	cand.Total = cand.Latency
	if cfg.Objective == ObjectiveThroughput {
		cand.Total = cand.Bottleneck
	}
	return cand
}

// featureTextBytes converts a partition point's binary feature size to its
// snapshot text size — the same conversion the legacy evaluate applies.
func featureTextBytes(p nn.PartitionPoint, textBytesPerValue float64) int64 {
	return int64(float64(p.FeatureBytes/4) * textBytesPerValue)
}

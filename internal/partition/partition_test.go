package partition

import (
	"errors"
	"testing"
	"time"

	"websnap/internal/costmodel"
	"websnap/internal/models"
	"websnap/internal/netem"
	"websnap/internal/nn"
)

func paperConfig() Config {
	return Config{
		Client:             costmodel.ClientOdroid,
		Server:             costmodel.ServerX86,
		Network:            netem.WiFi30Mbps,
		StateOverheadBytes: 90 << 10, // Table 1: ~0.09 MB snapshot sans feature data
		ResultBytes:        4 << 10,
	}
}

func analyzeModel(t *testing.T, name string) Plan {
	t.Helper()
	net, err := models.Build(name)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Analyze(net, paperConfig())
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestMeasuredTextBytesPerValue(t *testing.T) {
	got := MeasuredTextBytesPerValue()
	if got < 4 || got > 24 {
		t.Errorf("bytes/value = %.2f, want a plausible textual width (4..24)", got)
	}
}

// TestPoolBeatsPrecedingConv pins the paper's Fig 8 observation: "the
// inference time decreases when the offloading point moves from a conv
// layer to a pool layer", for every conv→pool adjacency in all three
// models.
func TestPoolBeatsPrecedingConv(t *testing.T) {
	for _, name := range models.Names() {
		t.Run(name, func(t *testing.T) {
			plan := analyzeModel(t, name)
			checked := 0
			for i := 1; i < len(plan.Candidates); i++ {
				prev, cur := plan.Candidates[i-1], plan.Candidates[i]
				if prev.Point.Label[len(prev.Point.Label)-4:] == "conv" &&
					cur.Point.Label[len(cur.Point.Label)-4:] == "pool" {
					checked++
					if cur.Total >= prev.Total {
						t.Errorf("%s (%v) should beat %s (%v)",
							cur.Point.Label, cur.Total, prev.Point.Label, prev.Total)
					}
					if cur.FeatureTextBytes >= prev.FeatureTextBytes {
						t.Errorf("%s feature (%d B) should be smaller than %s (%d B)",
							cur.Point.Label, cur.FeatureTextBytes,
							prev.Point.Label, prev.FeatureTextBytes)
					}
				}
			}
			if checked == 0 {
				t.Error("no conv→pool adjacency found")
			}
		})
	}
}

// TestFirstPoolIsBestPrivacyPoint pins the paper's §IV.B conclusion: "the
// first pool layer (1st_pool) appears to be the best offloading point that
// can minimize the inference time, yet still denaturing the input data."
func TestFirstPoolIsBestPrivacyPoint(t *testing.T) {
	for _, name := range models.Names() {
		t.Run(name, func(t *testing.T) {
			plan := analyzeModel(t, name)
			best, err := plan.Choose(true)
			if err != nil {
				t.Fatal(err)
			}
			if best.Point.Label != "1st_pool" {
				t.Errorf("best privacy point = %s, paper says 1st_pool", best.Point.Label)
			}
		})
	}
}

// TestFullOffloadFastestWithoutPrivacy: without the denaturing constraint,
// offloading everything (Input) minimizes time for these models — partial
// inference "leads to lower performance than offloading of full inference".
func TestFullOffloadFastestWithoutPrivacy(t *testing.T) {
	for _, name := range models.Names() {
		t.Run(name, func(t *testing.T) {
			plan := analyzeModel(t, name)
			best, err := plan.Choose(false)
			if err != nil {
				t.Fatal(err)
			}
			if best.Point.Label != "Input" {
				t.Errorf("unconstrained best = %s, want Input", best.Point.Label)
			}
			constrained, err := plan.Choose(true)
			if err != nil {
				t.Fatal(err)
			}
			if constrained.Total <= best.Total {
				t.Error("privacy constraint should cost something")
			}
		})
	}
}

func TestClientTimeMonotonic(t *testing.T) {
	plan := analyzeModel(t, models.GoogLeNet)
	for i := 1; i < len(plan.Candidates); i++ {
		if plan.Candidates[i].ClientTime < plan.Candidates[i-1].ClientTime {
			t.Errorf("client time decreased from %s to %s",
				plan.Candidates[i-1].Point.Label, plan.Candidates[i].Point.Label)
		}
	}
}

func TestTotalsAreConsistent(t *testing.T) {
	plan := analyzeModel(t, models.AgeNet)
	for _, c := range plan.Candidates {
		sum := c.ClientTime + c.ServerTime + c.TransferTime + c.SnapshotOverhead
		if c.Total != sum {
			t.Errorf("%s: total %v != sum %v", c.Point.Label, c.Total, sum)
		}
		if c.Total <= 0 {
			t.Errorf("%s: non-positive total", c.Point.Label)
		}
	}
}

// TestBandwidthShiftsPartitionPoint: under a much slower network, shipping
// big features gets expensive, so the chosen point must not move toward
// larger features; under an extremely fast network, the transfer term
// vanishes and full offloading dominates everything.
func TestBandwidthShiftsPartitionPoint(t *testing.T) {
	net, err := models.Build(models.GoogLeNet)
	if err != nil {
		t.Fatal(err)
	}
	slow := paperConfig()
	slow.Network = netem.Profile{BandwidthBitsPerSec: 1e6, Latency: 20 * time.Millisecond}
	slowPlan, err := Analyze(net, slow)
	if err != nil {
		t.Fatal(err)
	}
	slowBest, err := slowPlan.Choose(true)
	if err != nil {
		t.Fatal(err)
	}
	fast := paperConfig()
	fast.Network = netem.Profile{BandwidthBitsPerSec: 10e9}
	fastPlan, err := Analyze(net, fast)
	if err != nil {
		t.Fatal(err)
	}
	fastBest, err := fastPlan.Choose(true)
	if err != nil {
		t.Fatal(err)
	}
	slowC, _ := slowPlan.ByLabel(slowBest.Point.Label)
	fastC, _ := fastPlan.ByLabel(fastBest.Point.Label)
	if slowC.FeatureTextBytes > fastC.FeatureTextBytes {
		t.Errorf("slow network chose a larger feature (%d B) than fast (%d B)",
			slowC.FeatureTextBytes, fastC.FeatureTextBytes)
	}
}

func TestByLabel(t *testing.T) {
	plan := analyzeModel(t, models.GenderNet)
	if _, ok := plan.ByLabel("1st_pool"); !ok {
		t.Error("1st_pool missing")
	}
	if _, ok := plan.ByLabel("42nd_pool"); ok {
		t.Error("nonexistent label found")
	}
}

func TestChooseNoCandidate(t *testing.T) {
	// A network whose only partition point is Input: the privacy
	// constraint leaves nothing.
	in, err := nn.NewInput("data", 1, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := nn.NewFC("fc", 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	net, err := nn.NewNetwork("fc-only", in, fc)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Analyze(net, paperConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Choose(true); !errors.Is(err, ErrNoCandidate) {
		t.Errorf("err = %v, want ErrNoCandidate", err)
	}
	if _, err := plan.Choose(false); err != nil {
		t.Errorf("unconstrained choose should succeed: %v", err)
	}
}

func TestAnalyzeBadNetwork(t *testing.T) {
	net, err := models.Build(models.AgeNet)
	if err != nil {
		t.Fatal(err)
	}
	cfg := paperConfig()
	cfg.Network = netem.Profile{BandwidthBitsPerSec: -5}
	if _, err := Analyze(net, cfg); err == nil {
		t.Error("invalid network profile should fail")
	}
}

package partition_test

import (
	"fmt"

	"websnap/internal/costmodel"
	"websnap/internal/models"
	"websnap/internal/netem"
	"websnap/internal/partition"
)

// Example reproduces the paper's partition decision for GoogLeNet on a
// 30 Mbps link: full offloading (Input) is fastest, but with the privacy
// constraint the first pool layer wins.
func Example() {
	net, err := models.Build(models.GoogLeNet)
	if err != nil {
		fmt.Println(err)
		return
	}
	plan, err := partition.Analyze(net, partition.Config{
		Client:  costmodel.ClientOdroid,
		Server:  costmodel.ServerX86,
		Network: netem.WiFi30Mbps,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fastest, _ := plan.Choose(false)
	private, _ := plan.Choose(true)
	fmt.Println("fastest point:", fastest.Point.Label)
	fmt.Println("privacy-preserving point:", private.Point.Label)
	// Output:
	// fastest point: Input
	// privacy-preserving point: 1st_pool
}

package partition

import (
	"errors"
	"testing"
	"time"

	"websnap/internal/costmodel"
	"websnap/internal/models"
	"websnap/internal/netem"
	"websnap/internal/nn"
)

func chainConfig3() ChainConfig {
	return ChainConfig{
		Hops: []Hop{
			{Device: costmodel.ClientOdroid},
			{Device: costmodel.ServerX86, QueueDelay: 3 * time.Millisecond},
			{Device: costmodel.ServerX86GPU, QueueDelay: time.Millisecond},
		},
		Links: []netem.Profile{
			netem.WiFi30Mbps,
			{BandwidthBitsPerSec: 100e6, Latency: time.Millisecond},
		},
		StateOverheadBytes: 90 << 10,
		ResultBytes:        4 << 10,
	}
}

func TestValidateRejectsBadConfig(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero bandwidth", func(c *Config) { c.Network = netem.Profile{} }},
		{"negative bandwidth", func(c *Config) { c.Network.BandwidthBitsPerSec = -5 }},
		{"zero default FLOPS", func(c *Config) { c.Client.DefaultFLOPS = 0; c.Client.FLOPSByType = nil }},
		{"negative default FLOPS", func(c *Config) { c.Server.DefaultFLOPS = -1 }},
		{"negative typed FLOPS", func(c *Config) {
			c.Server.FLOPSByType = map[nn.LayerType]float64{nn.TypeConv: -1e9}
		}},
		{"negative snapshot rate", func(c *Config) { c.Client.SnapshotBytesPerSec = -1 }},
		{"negative state bytes", func(c *Config) { c.StateOverheadBytes = -1 }},
		{"negative result bytes", func(c *Config) { c.ResultBytes = -1 }},
		{"negative queue delay", func(c *Config) { c.ServerQueueDelay = -time.Second }},
		{"negative text width", func(c *Config) { c.TextBytesPerValue = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := paperConfig()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if !errors.Is(err, ErrBadConfig) {
				t.Fatalf("err = %v, want ErrBadConfig", err)
			}
			var bad *BadConfigError
			if !errors.As(err, &bad) || bad.Field == "" {
				t.Fatalf("err = %#v, want *BadConfigError with a field name", err)
			}
		})
	}
	if err := paperConfig().Validate(); err != nil {
		t.Fatalf("paper config should validate: %v", err)
	}
}

// TestAnalyzeRejectsZeroBandwidth is the regression for the NaN/Inf guard:
// a zero bandwidth used to be taken as "unlimited" and silently skewed
// every candidate toward the largest feature; now it is a typed error.
func TestAnalyzeRejectsZeroBandwidth(t *testing.T) {
	net, err := models.Build(models.AgeNet)
	if err != nil {
		t.Fatal(err)
	}
	cfg := paperConfig()
	cfg.Network = netem.Profile{}
	if _, err := Analyze(net, cfg); !errors.Is(err, ErrBadConfig) {
		t.Errorf("Analyze err = %v, want ErrBadConfig", err)
	}
	chain := chainConfig3()
	chain.Links[1] = netem.Profile{}
	if _, err := AnalyzeChain(net, chain); !errors.Is(err, ErrBadConfig) {
		t.Errorf("AnalyzeChain err = %v, want ErrBadConfig", err)
	}
	chain = chainConfig3()
	chain.Hops[2].Device.DefaultFLOPS = 0
	chain.Hops[2].Device.FLOPSByType = nil
	if _, err := AnalyzeChain(net, chain); !errors.Is(err, ErrBadConfig) {
		t.Errorf("AnalyzeChain bad device err = %v, want ErrBadConfig", err)
	}
}

// legacyVariants are the 2-device configs every existing table test runs
// under, plus the bandwidth extremes of TestBandwidthShiftsPartitionPoint
// and a loaded server.
func legacyVariants() map[string]Config {
	slow := paperConfig()
	slow.Network = netem.Profile{BandwidthBitsPerSec: 1e6, Latency: 20 * time.Millisecond}
	fast := paperConfig()
	fast.Network = netem.Profile{BandwidthBitsPerSec: 10e9, Latency: time.Microsecond}
	queued := paperConfig()
	queued.ServerQueueDelay = 40 * time.Millisecond
	return map[string]Config{"paper": paperConfig(), "slow": slow, "fast": fast, "queued": queued}
}

// TestChainK2MatchesLegacy pins the refactor's compatibility bar: the
// 2-hop chain DP must reproduce the legacy single-split analysis exactly —
// same chosen point, same total — on every catalog model under every
// legacy table-test configuration.
func TestChainK2MatchesLegacy(t *testing.T) {
	for _, name := range models.Names() {
		net, err := models.Build(name)
		if err != nil {
			t.Fatal(err)
		}
		for cfgName, cfg := range legacyVariants() {
			t.Run(name+"/"+cfgName, func(t *testing.T) {
				// Pin the conversion width: both analyses must use one
				// measurement, not two calls to the measuring encoder.
				cfg.TextBytesPerValue = MeasuredTextBytesPerValue()
				plan, err := Analyze(net, cfg)
				if err != nil {
					t.Fatal(err)
				}
				chainPlan, err := AnalyzeChain(net, cfg.Chain())
				if err != nil {
					t.Fatal(err)
				}
				for _, denature := range []bool{false, true} {
					want, err := plan.Choose(denature)
					if err != nil {
						t.Fatal(err)
					}
					got, err := chainPlan.Choose(denature)
					if err != nil {
						t.Fatal(err)
					}
					if len(got.Cuts) != 1 || got.Cuts[0].Index != want.Point.Index {
						t.Fatalf("denature=%v: chain cut %+v, legacy point %+v", denature, got.Cuts, want.Point)
					}
					if got.Total != want.Total {
						t.Errorf("denature=%v: chain total %v != legacy total %v", denature, got.Total, want.Total)
					}
					if got.Latency != want.Total {
						t.Errorf("denature=%v: chain latency %v != legacy total %v", denature, got.Latency, want.Total)
					}
				}
			})
		}
	}
}

// bruteChainTotal recomputes a cut set's objective value from first
// principles (public costmodel/netem API only), independently of the DP's
// prefix tables.
func bruteChainTotal(t *testing.T, infos []nn.LayerInfo, pts []nn.PartitionPoint, cuts []int, cfg ChainConfig) (latency, bottleneck time.Duration) {
	t.Helper()
	k := len(cfg.Hops)
	downBytes := cfg.ResultBytes + cfg.StateOverheadBytes
	var downCost time.Duration
	for _, l := range cfg.Links {
		downCost += l.TransferTime(downBytes)
	}
	downCost += cfg.Hops[k-1].Device.SnapshotTime(downBytes) + cfg.Hops[0].Device.SnapshotTime(downBytes)
	for h := 0; h < k; h++ {
		from, to := 0, len(infos)
		if h > 0 {
			from = pts[cuts[h-1]].Index + 1
		}
		if h < k-1 {
			to = pts[cuts[h]].Index + 1
		}
		compute, err := cfg.Hops[h].Device.RangeTime(infos, from, to)
		if err != nil {
			t.Fatal(err)
		}
		stage := compute
		if h < k-1 {
			p := pts[cuts[h]]
			up := int64(float64(p.FeatureBytes/4)*cfg.TextBytesPerValue) + cfg.StateOverheadBytes
			stage += cfg.Links[h].TransferTime(up) +
				cfg.Hops[h].Device.SnapshotTime(up) +
				cfg.Hops[h+1].Device.SnapshotTime(up) +
				cfg.Hops[h+1].QueueDelay
		} else {
			stage += downCost
		}
		latency += stage
		if stage > bottleneck {
			bottleneck = stage
		}
	}
	return latency, bottleneck
}

// bruteForceBest enumerates every strictly increasing cut tuple and
// returns the minimal objective value.
func bruteForceBest(t *testing.T, infos []nn.LayerInfo, pts []nn.PartitionPoint, cfg ChainConfig, denature bool) (time.Duration, bool) {
	t.Helper()
	k := len(cfg.Hops)
	cuts := make([]int, k-1)
	best, found := time.Duration(0), false
	var walk func(slot, from int)
	walk = func(slot, from int) {
		if slot == k-1 {
			lat, bot := bruteChainTotal(t, infos, pts, cuts, cfg)
			total := lat
			if cfg.Objective == ObjectiveThroughput {
				total = bot
			}
			if !found || total < best {
				best, found = total, true
			}
			return
		}
		for j := from; j < len(pts); j++ {
			if slot == 0 && denature && pts[j].Index == 0 {
				continue
			}
			cuts[slot] = j
			walk(slot+1, j+1)
		}
	}
	walk(0, 0)
	return best, found
}

// TestChainDPMatchesBruteForce is the DP's correctness property: on a
// small net and on every catalog model, for K of 2 and 3, both objectives,
// with and without the denaturing constraint, the DP's chosen cut set
// achieves exactly the exhaustive-enumeration optimum, and its reported
// breakdown re-evaluates to its reported total.
func TestChainDPMatchesBruteForce(t *testing.T) {
	nets := make(map[string]*nn.Network)
	tiny, err := models.BuildTinyNet("tiny-chain", 4)
	if err != nil {
		t.Fatal(err)
	}
	nets["tiny"] = tiny
	for _, name := range models.Names() {
		net, err := models.Build(name)
		if err != nil {
			t.Fatal(err)
		}
		nets[name] = net
	}
	for name, net := range nets {
		infos, err := net.Describe()
		if err != nil {
			t.Fatal(err)
		}
		pts, err := net.PartitionPoints()
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{2, 3} {
			for _, obj := range []Objective{ObjectiveLatency, ObjectiveThroughput} {
				for _, denature := range []bool{false, true} {
					cfg := chainConfig3()
					cfg.Hops = cfg.Hops[:k]
					cfg.Links = cfg.Links[:k-1]
					cfg.Objective = obj
					cfg.TextBytesPerValue = MeasuredTextBytesPerValue()
					plan, err := AnalyzeChain(net, cfg)
					if err != nil {
						t.Fatalf("%s k=%d obj=%d: %v", name, k, obj, err)
					}
					got, gotErr := plan.Choose(denature)
					want, feasible := bruteForceBest(t, infos, pts, cfg, denature)
					if !feasible {
						if !errors.Is(gotErr, ErrNoCandidate) {
							t.Fatalf("%s k=%d obj=%d denature=%v: DP found %v, brute force found nothing", name, k, obj, denature, got.Total)
						}
						continue
					}
					if gotErr != nil {
						t.Fatalf("%s k=%d obj=%d denature=%v: DP failed (%v), brute force found %v", name, k, obj, denature, gotErr, want)
					}
					if got.Total != want {
						t.Errorf("%s k=%d obj=%d denature=%v: DP total %v != brute-force optimum %v (cuts %v)",
							name, k, obj, denature, got.Total, want, got.Cuts)
					}
					// The candidate's own breakdown must re-evaluate to the
					// total it claims.
					cutIdx := make([]int, len(got.Cuts))
					for i, c := range got.Cuts {
						found := false
						for j, p := range pts {
							if p.Index == c.Index {
								cutIdx[i], found = j, true
							}
						}
						if !found {
							t.Fatalf("cut %+v not a partition point", c)
						}
					}
					lat, bot := bruteChainTotal(t, infos, pts, cutIdx, cfg)
					if got.Latency != lat || got.Bottleneck != bot {
						t.Errorf("%s k=%d obj=%d denature=%v: breakdown latency %v/bottleneck %v, recomputed %v/%v",
							name, k, obj, denature, got.Latency, got.Bottleneck, lat, bot)
					}
				}
			}
		}
	}
}

func TestChainHopRangesPartitionAllLayers(t *testing.T) {
	net, err := models.Build(models.GoogLeNet)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := AnalyzeChain(net, chainConfig3())
	if err != nil {
		t.Fatal(err)
	}
	best, err := plan.Choose(true)
	if err != nil {
		t.Fatal(err)
	}
	if best.Cuts[0].Index == 0 {
		t.Error("denatured plan must keep at least one real layer on the client")
	}
	next := 0
	for i, h := range best.Hops {
		if h.From != next {
			t.Errorf("hop %d starts at %d, want %d", i, h.From, next)
		}
		if h.To <= h.From {
			t.Errorf("hop %d has empty range [%d,%d)", i, h.From, h.To)
		}
		next = h.To
	}
	if next != net.NumLayers() {
		t.Errorf("chain covers layers [0,%d), network has %d", next, net.NumLayers())
	}
}

func TestChainNoCandidate(t *testing.T) {
	// An fc-only net has a single partition point (Input): it cannot seat
	// two cuts, and with denaturing required it cannot even seat one.
	in, err := nn.NewInput("data", 1, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := nn.NewFC("fc", 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	net, err := nn.NewNetwork("fc-only", in, fc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := chainConfig3()
	if _, err := AnalyzeChain(net, cfg); !errors.Is(err, ErrNoCandidate) {
		t.Errorf("3-hop over 1 point: err = %v, want ErrNoCandidate", err)
	}
	cfg.Hops = cfg.Hops[:2]
	cfg.Links = cfg.Links[:1]
	plan, err := AnalyzeChain(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Choose(true); !errors.Is(err, ErrNoCandidate) {
		t.Errorf("denatured choose: err = %v, want ErrNoCandidate", err)
	}
	if _, err := plan.Choose(false); err != nil {
		t.Errorf("unconstrained choose should succeed: %v", err)
	}
}

func TestChainThroughputObjective(t *testing.T) {
	net, err := models.Build(models.AgeNet)
	if err != nil {
		t.Fatal(err)
	}
	cfg := chainConfig3()
	cfg.Objective = ObjectiveThroughput
	plan, err := AnalyzeChain(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	best, err := plan.Choose(false)
	if err != nil {
		t.Fatal(err)
	}
	if best.Total != best.Bottleneck {
		t.Errorf("throughput objective total %v != bottleneck %v", best.Total, best.Bottleneck)
	}
	if best.Bottleneck > best.Latency {
		t.Errorf("bottleneck %v exceeds end-to-end latency %v", best.Bottleneck, best.Latency)
	}
}

// Package partition decides where to split a DNN between client and edge
// server for partial inference (paper §III.B.2): "the partitioning point
// ... can be decided dynamically based on two factors. One is the execution
// time of each DNN layer, estimated by a prediction model for the DNN
// layers, as used in Neurosurgeon. The other is the runtime network status.
// We estimate the total execution time for forward execution and select a
// partitioning point that can minimize the total execution time, while
// including at least one layer from the front part of the DNN to denature
// the input data."
package partition

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"websnap/internal/costmodel"
	"websnap/internal/netem"
	"websnap/internal/nn"
)

// ErrNoCandidate is returned when no partition point satisfies the
// constraints.
var ErrNoCandidate = errors.New("partition: no feasible partition point")

// Config parametrizes the estimator.
type Config struct {
	// Client and Server are the device latency models.
	Client, Server costmodel.Device
	// Network is the current network status.
	Network netem.Profile
	// TextBytesPerValue converts feature element counts to snapshot text
	// bytes. Zero selects MeasuredTextBytesPerValue().
	TextBytesPerValue float64
	// StateOverheadBytes is the size of the non-feature part of the
	// snapshot (code stub, DOM, plain globals); small, per Table 1.
	StateOverheadBytes int64
	// ResultBytes is the size of the returning result snapshot.
	ResultBytes int64
	// ServerQueueDelay is the edge server's estimated queueing delay (from
	// its load hint): how long an offloaded session waits for a scheduler
	// worker before its server-side layers run. It burdens every candidate
	// that offloads work, so a loaded server shifts the optimum toward
	// later split points — or to fully local execution.
	ServerQueueDelay time.Duration
	// Precision is the compute precision both sides run the model at (the
	// catalog's quality tier). Empty means float32. Feature sizes are
	// unaffected — quantized plans dequantize at every layer boundary, so
	// cut tensors cross the link as float32 either way — but per-device
	// compute times shrink by each device's Int8Speedup, which moves the
	// optimal cut when client and server gain unequally.
	Precision nn.Precision
}

// Candidate is one evaluated offloading point with its estimated cost
// components — exactly the quantities plotted in Fig 8.
type Candidate struct {
	Point nn.PartitionPoint
	// ClientTime covers layers [0, Point.Index] on the client.
	ClientTime time.Duration
	// SnapshotOverhead covers capture (client) and restore (server) of
	// the outbound snapshot plus capture (server) / restore (client) of
	// the result.
	SnapshotOverhead time.Duration
	// TransferTime covers the feature-bearing snapshot up and the result
	// snapshot down.
	TransferTime time.Duration
	// ServerTime covers the remaining layers on the server.
	ServerTime time.Duration
	// QueueDelay is the estimated wait for a scheduler worker at the
	// server (zero for an idle server or when no load hint is known).
	QueueDelay time.Duration
	// FeatureTextBytes is the textual (snapshot) size of the feature
	// data crossing the link.
	FeatureTextBytes int64
	// Total is the end-to-end estimated inference time.
	Total time.Duration
}

// Plan is the full per-point analysis of one network.
type Plan struct {
	NetworkName string
	Candidates  []Candidate
}

// MeasuredTextBytesPerValue measures how many bytes one float32 activation
// occupies in the snapshot's textual encoding, by encoding a deterministic
// sample of activation-like values the way the snapshot encoder does.
func MeasuredTextBytesPerValue() float64 {
	const n = 4096
	sample := make([]float32, n)
	s := uint64(99991)
	for i := range sample {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		// Activation-like magnitudes: mostly small positives with spread.
		sample[i] = float32(s%100000)/10000 - 1
	}
	data, err := json.Marshal(sample)
	if err != nil {
		return 12 // conservative fallback; never taken for a valid sample
	}
	return float64(len(data)) / n
}

// Analyze evaluates every candidate offloading point of net under cfg.
// Candidates are ordered front to back, starting at the Input point (full
// offloading).
func Analyze(net *nn.Network, cfg Config) (Plan, error) {
	if cfg.TextBytesPerValue <= 0 {
		cfg.TextBytesPerValue = MeasuredTextBytesPerValue()
	}
	if err := cfg.Validate(); err != nil {
		return Plan{}, err
	}
	infos, err := net.Describe()
	if err != nil {
		return Plan{}, fmt.Errorf("partition: %w", err)
	}
	points, err := net.PartitionPoints()
	if err != nil {
		return Plan{}, fmt.Errorf("partition: %w", err)
	}
	plan := Plan{NetworkName: net.Name(), Candidates: make([]Candidate, 0, len(points))}
	for _, p := range points {
		c, err := evaluate(infos, p, cfg)
		if err != nil {
			return Plan{}, err
		}
		plan.Candidates = append(plan.Candidates, c)
	}
	if len(plan.Candidates) == 0 {
		return Plan{}, ErrNoCandidate
	}
	return plan, nil
}

func evaluate(infos []nn.LayerInfo, p nn.PartitionPoint, cfg Config) (Candidate, error) {
	prec := cfg.Precision
	if prec == "" {
		prec = nn.PrecFloat32
	}
	clientTime, err := cfg.Client.RangeTimePrec(infos, 0, p.Index+1, prec)
	if err != nil {
		return Candidate{}, err
	}
	serverTime, err := cfg.Server.RangeTimePrec(infos, p.Index+1, len(infos), prec)
	if err != nil {
		return Candidate{}, err
	}
	featureValues := p.FeatureBytes / 4
	featureText := int64(float64(featureValues) * cfg.TextBytesPerValue)
	upBytes := featureText + cfg.StateOverheadBytes
	downBytes := cfg.ResultBytes + cfg.StateOverheadBytes
	transfer := cfg.Network.TransferTime(upBytes) + cfg.Network.TransferTime(downBytes)
	overhead := cfg.Client.SnapshotTime(upBytes) + cfg.Server.SnapshotTime(upBytes) +
		cfg.Server.SnapshotTime(downBytes) + cfg.Client.SnapshotTime(downBytes)
	c := Candidate{
		Point:            p,
		ClientTime:       clientTime,
		ServerTime:       serverTime,
		TransferTime:     transfer,
		SnapshotOverhead: overhead,
		QueueDelay:       cfg.ServerQueueDelay,
		FeatureTextBytes: featureText,
	}
	c.Total = c.ClientTime + c.ServerTime + c.TransferTime + c.SnapshotOverhead + c.QueueDelay
	return c, nil
}

// Choose selects the candidate minimizing total inference time. With
// requireDenature set (the paper's privacy constraint), the Input point is
// excluded so at least one real layer runs on the client.
func (p Plan) Choose(requireDenature bool) (Candidate, error) {
	var best *Candidate
	for i := range p.Candidates {
		c := &p.Candidates[i]
		if requireDenature && c.Point.Index == 0 {
			continue
		}
		if best == nil || c.Total < best.Total {
			best = c
		}
	}
	if best == nil {
		return Candidate{}, fmt.Errorf("%w (requireDenature=%v)", ErrNoCandidate, requireDenature)
	}
	return *best, nil
}

// ByLabel returns the candidate with the given Fig 8 label ("1st_pool", ...).
func (p Plan) ByLabel(label string) (Candidate, bool) {
	for _, c := range p.Candidates {
		if c.Point.Label == label {
			return c, true
		}
	}
	return Candidate{}, false
}

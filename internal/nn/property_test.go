package nn

import (
	"bytes"
	"math"
	"testing"

	"websnap/internal/tensor"
)

// archRNG drives deterministic random architecture generation.
type archRNG struct{ s uint64 }

func (r *archRNG) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 2685821657736338717
}

func (r *archRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// randomNetwork generates a small random-but-valid CNN: a stem of
// conv/pool/relu/lrn/dropout layers followed by a classifier. It exercises
// the engine across a much wider architecture space than the fixed models.
func randomNetwork(t *testing.T, seed uint64) *Network {
	t.Helper()
	rng := &archRNG{s: seed*2654435761 + 99}
	channels := 1 + rng.intn(3)
	size := 6 + rng.intn(10) // 6..15
	in, err := NewInput("data", channels, size, size)
	if err != nil {
		t.Fatal(err)
	}
	layers := []Layer{in}
	curC, curH := channels, size
	nStem := 1 + rng.intn(4)
	for i := 0; i < nStem; i++ {
		switch rng.intn(5) {
		case 0: // conv, kernel must fit
			k := 1 + rng.intn(3)
			if k > curH {
				k = 1
			}
			outC := 1 + rng.intn(4)
			conv, err := NewConv(name("conv", i), curC, outC, k, 1, rng.intn(2))
			if err != nil {
				t.Fatal(err)
			}
			layers = append(layers, conv)
			curC = outC
		case 1: // pool (only when the spatial size allows halving)
			if curH >= 4 {
				kind := MaxPool
				if rng.intn(2) == 0 {
					kind = AvgPool
				}
				pool, err := NewPool(name("pool", i), kind, 2, 2, 0)
				if err != nil {
					t.Fatal(err)
				}
				layers = append(layers, pool)
			} else {
				layers = append(layers, NewReLU(name("relu", i)))
			}
		case 2:
			layers = append(layers, NewReLU(name("relu", i)))
		case 3:
			lrn, err := NewLRN(name("lrn", i), 3, 0.0001, 0.75)
			if err != nil {
				t.Fatal(err)
			}
			layers = append(layers, lrn)
		default:
			layers = append(layers, NewDropout(name("drop", i), 0.5))
		}
		// Track spatial size through the stem for kernel-fit decisions.
		cur, err := layers[len(layers)-1].OutputShape(curShape(t, layers, in.ExpectedShape()))
		if err != nil {
			t.Fatalf("seed %d: stem shape: %v", seed, err)
		}
		curC, curH = cur[0], cur[1]
	}
	vol := curC * curH * curH
	classes := 2 + rng.intn(5)
	fc, err := NewFC("fc", vol, classes)
	if err != nil {
		t.Fatal(err)
	}
	layers = append(layers, fc, NewSoftmax("prob"))
	net, err := NewNetwork("random", layers...)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	net.InitWeights(seed)
	return net
}

func name(prefix string, i int) string {
	return prefix + string(rune('a'+i))
}

// curShape chains OutputShape through all layers but the last to get the
// last layer's input shape.
func curShape(t *testing.T, layers []Layer, input []int) []int {
	t.Helper()
	cur := input
	for _, l := range layers[:len(layers)-1] {
		next, err := l.OutputShape(cur)
		if err != nil {
			t.Fatal(err)
		}
		cur = next
	}
	return cur
}

func randomInput(net *Network, seed uint64) *tensor.Tensor {
	in := tensor.MustNew(net.InputShape()...)
	rng := &archRNG{s: seed + 7}
	for i := range in.Data() {
		in.Data()[i] = float32(rng.intn(2000))/1000 - 1
	}
	return in
}

// TestPropertyRandomNetworks checks engine invariants across 25 random
// architectures:
//  1. Forward output matches OutputShape.
//  2. Softmax output sums to 1 and is non-negative.
//  3. Split-at-every-point equals full forward (partial inference).
//  4. Spec+weights serialization round-trips to identical behavior.
//  5. Describe() chains shapes consistently and FLOPs are non-negative.
func TestPropertyRandomNetworks(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		net := randomNetwork(t, seed)
		in := randomInput(net, seed)

		full, err := net.Forward(in)
		if err != nil {
			t.Fatalf("seed %d: forward: %v", seed, err)
		}
		wantShape, err := net.OutputShape()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if full.Len() != tensor.Volume(wantShape) {
			t.Fatalf("seed %d: output len %d != shape %v", seed, full.Len(), wantShape)
		}
		var sum float64
		for _, v := range full.Data() {
			if v < 0 || math.IsNaN(float64(v)) {
				t.Fatalf("seed %d: softmax output %v", seed, v)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-4 {
			t.Fatalf("seed %d: softmax sum %v", seed, sum)
		}

		for k := 0; k < net.NumLayers()-1; k++ {
			front, rear, err := net.Split(k)
			if err != nil {
				t.Fatalf("seed %d split %d: %v", seed, k, err)
			}
			feat, err := front.Forward(in)
			if err != nil {
				t.Fatalf("seed %d split %d front: %v", seed, k, err)
			}
			if rs := rear.InputShape(); tensor.Volume(rs) == feat.Len() && len(rs) != feat.Rank() {
				feat, err = feat.Reshape(rs...)
				if err != nil {
					t.Fatal(err)
				}
			}
			got, err := rear.Forward(feat)
			if err != nil {
				t.Fatalf("seed %d split %d rear: %v", seed, k, err)
			}
			for i := range full.Data() {
				if d := math.Abs(float64(got.Data()[i] - full.Data()[i])); d > 1e-5 {
					t.Fatalf("seed %d split %d: diverges by %g at %d", seed, k, d, i)
				}
			}
		}

		spec, err := EncodeSpec(net)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		clone, err := DecodeSpec(spec)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var wbuf bytes.Buffer
		if err := net.EncodeWeights(&wbuf); err != nil {
			t.Fatal(err)
		}
		if err := clone.DecodeWeights(&wbuf); err != nil {
			t.Fatal(err)
		}
		cloneOut, err := clone.Forward(in)
		if err != nil {
			t.Fatalf("seed %d: clone forward: %v", seed, err)
		}
		for i := range full.Data() {
			if cloneOut.Data()[i] != full.Data()[i] {
				t.Fatalf("seed %d: serialization changed behavior at %d", seed, i)
			}
		}

		infos, err := net.Describe()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i, li := range infos {
			if li.FLOPs < 0 || li.ParamCount < 0 || li.OutputBytes <= 0 {
				t.Fatalf("seed %d layer %d: bad accounting %+v", seed, i, li)
			}
		}
	}
}

// TestPropertyPlannedMatchesReference drives randomly generated
// architectures through the planned execution engine and checks every
// output element against the naive per-layer reference implementations
// (engine_test.go) within 1e-6. This is the property-level half of the
// golden equivalence suite: where TestEngineMatchesReferenceLayers pins
// each layer type in isolation, this covers arbitrary compositions and
// the buffer/in-place assignment decisions they induce.
func TestPropertyPlannedMatchesReference(t *testing.T) {
	for seed := uint64(1); seed <= 15; seed++ {
		net := randomNetwork(t, seed)
		in := randomInput(net, seed)

		want := refNetForward(t, net, in)
		got, err := net.Forward(in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if d := maxAbsDiff(want, got); d > 1e-6 {
			t.Fatalf("seed %d: planned engine diverges from reference by %g", seed, d)
		}
	}
}

package nn

import (
	"fmt"

	"websnap/internal/tensor"
)

// Conv is a 2-D convolution layer with square filters, matching the paper's
// description: each of OutC filters scans the input with stride Stride and
// zero padding Pad, producing one output feature map per filter.
type Conv struct {
	name   string
	inC    int
	outC   int
	k      int
	stride int
	pad    int
	// weight shape: [outC, inC, k, k]; bias shape: [outC].
	weight *tensor.Tensor
	bias   *tensor.Tensor
}

var _ Layer = (*Conv)(nil)

// NewConv constructs a convolution layer with zeroed parameters.
func NewConv(name string, inC, outC, k, stride, pad int) (*Conv, error) {
	if inC <= 0 || outC <= 0 || k <= 0 || stride <= 0 || pad < 0 {
		return nil, fmt.Errorf("nn: conv %q: invalid geometry inC=%d outC=%d k=%d stride=%d pad=%d",
			name, inC, outC, k, stride, pad)
	}
	w, err := tensor.New(outC, inC, k, k)
	if err != nil {
		return nil, err
	}
	b, err := tensor.New(outC)
	if err != nil {
		return nil, err
	}
	return &Conv{name: name, inC: inC, outC: outC, k: k, stride: stride, pad: pad, weight: w, bias: b}, nil
}

// Name implements Layer.
func (c *Conv) Name() string { return c.name }

// Type implements Layer.
func (c *Conv) Type() LayerType { return TypeConv }

// Geometry returns (inC, outC, kernel, stride, pad).
func (c *Conv) Geometry() (inC, outC, k, stride, pad int) {
	return c.inC, c.outC, c.k, c.stride, c.pad
}

// OutputShape implements Layer.
func (c *Conv) OutputShape(in []int) ([]int, error) {
	ic, h, w, err := shapeCHW(in)
	if err != nil {
		return nil, fmt.Errorf("conv %q: %w", c.name, err)
	}
	if ic != c.inC {
		return nil, fmt.Errorf("conv %q: %w: got %d input channels, want %d", c.name, ErrBadShape, ic, c.inC)
	}
	oh := convOut(h, c.k, c.stride, c.pad)
	ow := convOut(w, c.k, c.stride, c.pad)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("conv %q: %w: input %dx%d too small for k=%d stride=%d pad=%d",
			c.name, ErrBadShape, h, w, c.k, c.stride, c.pad)
	}
	return []int{c.outC, oh, ow}, nil
}

// parallelThreshold is the FLOP count above which Forward fans the output
// channels out across CPUs. Small convolutions stay single-threaded: the
// goroutine hand-off costs more than it saves.
const parallelThreshold = 4 << 20

// directPackedFLOPs is the FLOP count above which the plan picks the
// im2col-free direct convolution (tensor.GemmConv): input tiles are
// gathered straight into packed GEMM panels, so the column matrix never
// exists and the layer needs no scratch. Mid-size layers keep im2col +
// GEMM — materializing the column matrix once is cheap at that scale and
// its sequential reads pack faster than the gather.
const directPackedFLOPs = 16 << 20

// Forward implements Layer via the standalone shim.
func (c *Conv) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	return forwardStandalone(c, in)
}

// algoFor is the plan-time kernel choice for an oh x ow output: "direct"
// (naive loops, no setup cost) for small layers, "im2col" + column
// scratch for mid-size layers, and "direct-packed" (im2col-free packed
// GEMM, zero scratch) above directPackedFLOPs.
func (c *Conv) algoFor(oh, ow int) (algo string, scratch int) {
	flops := int64(2*c.k*c.k*c.inC) * int64(c.outC*oh*ow)
	switch {
	case flops <= parallelThreshold:
		return "direct", 0
	case flops <= directPackedFLOPs:
		return "im2col", c.inC * c.k * c.k * oh * ow
	default:
		return "direct-packed", 0
	}
}

// geom describes the layer's implicit-GEMM geometry for an h x w input.
func (c *Conv) geom(h, w, oh, ow int) tensor.ConvGeom {
	return tensor.ConvGeom{
		InC: c.inC, H: h, W: w,
		K: c.k, Stride: c.stride, Pad: c.pad,
		OutH: oh, OutW: ow,
	}
}

// Traits implements Layer: the kernel choice (see algoFor) is made at
// plan compile time from the layer shape.
func (c *Conv) Traits(in []int) (StepTraits, error) {
	out, err := c.OutputShape(in)
	if err != nil {
		return StepTraits{}, err
	}
	algo, scratch := c.algoFor(out[1], out[2])
	return StepTraits{Algo: algo, ScratchFloats: scratch}, nil
}

// ForwardCtx implements Layer. The im2col and direct-packed paths route
// through the shared packed GEMM kernel, which fans column blocks across
// CPUs for large layers. The per-element accumulation order is identical
// in every path, so results are deterministic and bit-identical
// regardless of algorithm or parallelism.
func (c *Conv) ForwardCtx(ctx *ExecContext, in, out *tensor.Tensor) error {
	oh, ow := out.Dim(1), out.Dim(2)
	algo, _ := c.algoFor(oh, ow)
	switch algo {
	case "direct":
		c.forwardChannels(in, out, 0, c.outC)
	case "direct-packed":
		g := c.geom(in.Dim(1), in.Dim(2), oh, ow)
		tensor.GemmConv(out.Data(), c.weight.Data(), c.bias.Data(), c.outC, in.Data(), g)
	default:
		cols := oh * ow
		rows := c.inC * c.k * c.k
		col := ctx.Scratch(rows * cols)
		c.buildColumns(in, oh, ow, col)
		tensor.Gemm(out.Data(), c.weight.Data(), col, c.bias.Data(), c.outC, rows, cols)
	}
	return nil
}

// forwardChannels computes output channels [ocLo, ocHi).
func (c *Conv) forwardChannels(in, out *tensor.Tensor, ocLo, ocHi int) {
	h, w := in.Dim(1), in.Dim(2)
	oh, ow := out.Dim(1), out.Dim(2)
	src := in.Data()
	dst := out.Data()
	wt := c.weight.Data()
	bias := c.bias.Data()
	for oc := ocLo; oc < ocHi; oc++ {
		wBase := oc * c.inC * c.k * c.k
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*c.stride - c.pad
			for ox := 0; ox < ow; ox++ {
				ix0 := ox*c.stride - c.pad
				sum := bias[oc]
				for ic := 0; ic < c.inC; ic++ {
					sBase := ic * h * w
					wcBase := wBase + ic*c.k*c.k
					for ky := 0; ky < c.k; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							continue
						}
						rowS := sBase + iy*w
						rowW := wcBase + ky*c.k
						for kx := 0; kx < c.k; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= w {
								continue
							}
							sum += src[rowS+ix] * wt[rowW+kx]
						}
					}
				}
				dst[(oc*oh+oy)*ow+ox] = sum
			}
		}
	}
}

// FLOPs implements Layer: 2*k*k*inC multiply-accumulates per output element.
func (c *Conv) FLOPs(in []int) (int64, error) {
	out, err := c.OutputShape(in)
	if err != nil {
		return 0, err
	}
	perOut := int64(2 * c.k * c.k * c.inC)
	return perOut * int64(tensor.Volume(out)), nil
}

// ParamCount implements Layer.
func (c *Conv) ParamCount() int64 {
	return int64(c.outC*c.inC*c.k*c.k) + int64(c.outC)
}

// Params implements Layer.
func (c *Conv) Params() []*tensor.Tensor { return []*tensor.Tensor{c.weight, c.bias} }

// Pooling selects the pooling function of a Pool layer.
type Pooling string

// Pooling kinds.
const (
	MaxPool Pooling = "max"
	AvgPool Pooling = "avg"
)

// Pool is a spatial pooling layer. A max pool selects the maximum value in
// each window; following the paper, its output is smaller than its input,
// which is what makes pool boundaries attractive offloading points.
type Pool struct {
	name   string
	kind   Pooling
	k      int
	stride int
	pad    int
}

var _ Layer = (*Pool)(nil)

// NewPool constructs a pooling layer.
func NewPool(name string, kind Pooling, k, stride, pad int) (*Pool, error) {
	if kind != MaxPool && kind != AvgPool {
		return nil, fmt.Errorf("nn: pool %q: unknown pooling kind %q", name, kind)
	}
	if k <= 0 || stride <= 0 || pad < 0 {
		return nil, fmt.Errorf("nn: pool %q: invalid geometry k=%d stride=%d pad=%d", name, k, stride, pad)
	}
	return &Pool{name: name, kind: kind, k: k, stride: stride, pad: pad}, nil
}

// Name implements Layer.
func (p *Pool) Name() string { return p.name }

// Type implements Layer.
func (p *Pool) Type() LayerType { return TypePool }

// Kind returns the pooling function.
func (p *Pool) Kind() Pooling { return p.kind }

// Geometry returns (kernel, stride, pad).
func (p *Pool) Geometry() (k, stride, pad int) { return p.k, p.stride, p.pad }

// OutputShape implements Layer. Caffe-style ceil-mode pooling is used so the
// canonical GoogLeNet/AgeNet geometries come out exactly.
func (p *Pool) OutputShape(in []int) ([]int, error) {
	c, h, w, err := shapeCHW(in)
	if err != nil {
		return nil, fmt.Errorf("pool %q: %w", p.name, err)
	}
	oh := ceilDiv(h+2*p.pad-p.k, p.stride) + 1
	ow := ceilDiv(w+2*p.pad-p.k, p.stride) + 1
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("pool %q: %w: input %dx%d too small for k=%d stride=%d",
			p.name, ErrBadShape, h, w, p.k, p.stride)
	}
	return []int{c, oh, ow}, nil
}

func ceilDiv(a, b int) int {
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// Forward implements Layer via the standalone shim.
func (p *Pool) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	return forwardStandalone(p, in)
}

// Traits implements Layer.
func (p *Pool) Traits(in []int) (StepTraits, error) {
	return StepTraits{Algo: string(p.kind)}, nil
}

// ForwardCtx implements Layer.
func (p *Pool) ForwardCtx(_ *ExecContext, in, out *tensor.Tensor) error {
	c, h, w := in.Dim(0), in.Dim(1), in.Dim(2)
	oh, ow := out.Dim(1), out.Dim(2)
	src := in.Data()
	dst := out.Data()
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*p.stride - p.pad
			for ox := 0; ox < ow; ox++ {
				ix0 := ox*p.stride - p.pad
				var acc float32
				n := 0
				first := true
				for ky := 0; ky < p.k; ky++ {
					iy := iy0 + ky
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < p.k; kx++ {
						ix := ix0 + kx
						if ix < 0 || ix >= w {
							continue
						}
						v := src[base+iy*w+ix]
						switch {
						case p.kind == MaxPool && (first || v > acc):
							acc = v
						case p.kind == AvgPool:
							acc += v
						}
						first = false
						n++
					}
				}
				if p.kind == AvgPool && n > 0 {
					acc /= float32(n)
				}
				dst[(ch*oh+oy)*ow+ox] = acc
			}
		}
	}
	return nil
}

// FLOPs implements Layer: one comparison/add per window element.
func (p *Pool) FLOPs(in []int) (int64, error) {
	out, err := p.OutputShape(in)
	if err != nil {
		return 0, err
	}
	return int64(p.k*p.k) * int64(tensor.Volume(out)), nil
}

// ParamCount implements Layer.
func (p *Pool) ParamCount() int64 { return 0 }

// Params implements Layer.
func (p *Pool) Params() []*tensor.Tensor { return nil }

package nn

import (
	"runtime"
	"testing"

	"websnap/internal/tensor"
)

// freshInput builds a deterministic random input slightly inside the
// calibration range, so analytic per-step bounds (valid while the input
// stays within the calibrated activation range) apply.
func freshInput(t *testing.T, seed uint64, shape ...int) *tensor.Tensor {
	t.Helper()
	in, err := tensor.New(shape...)
	if err != nil {
		t.Fatal(err)
	}
	rng := seed | 1
	d := in.Data()
	for i := range d {
		rng ^= rng >> 12
		rng ^= rng << 25
		rng ^= rng >> 27
		v := rng * 2685821657736338717
		d[i] = 0.99 * float32(int32(v>>40)-1<<23) / (1 << 23)
	}
	return in
}

func mustNet(t *testing.T, name string, layers ...Layer) *Network {
	t.Helper()
	net, err := NewNetwork(name, layers...)
	if err != nil {
		t.Fatal(err)
	}
	net.InitWeights(uint64(len(name)) + 11)
	return net
}

// ql unwraps a layer constructor's (layer, error) pair; construction in
// these tests uses static geometries that cannot fail.
func ql[L Layer](l L, err error) L {
	if err != nil {
		panic(err)
	}
	return l
}

// quantTestNet is a conv/pool/inception/fc chain exercising every
// quantizable layer kind, small enough to calibrate quickly.
func quantTestNet(t *testing.T) *Network {
	t.Helper()
	b1 := []Layer{ql(NewConv("i1b1", 8, 6, 1, 1, 0)), NewReLU("i1b1r")}
	b2 := []Layer{
		ql(NewConv("i1b2a", 8, 4, 1, 1, 0)),
		ql(NewConv("i1b2b", 4, 6, 3, 1, 1)),
		NewReLU("i1b2r"),
	}
	b3 := []Layer{ql(NewPool("i1b3p", MaxPool, 3, 1, 1)), ql(NewConv("i1b3c", 8, 4, 1, 1, 0))}
	inc := ql(NewInception("inc1", b1, b2, b3))
	return mustNet(t, "quant-chain",
		ql(NewInput("data", 3, 16, 16)),
		ql(NewConv("conv1", 3, 8, 3, 1, 1)),
		NewReLU("relu1"),
		ql(NewPool("pool1", MaxPool, 2, 2, 0)), // 8x8x8
		inc,                                    // 16x8x8
		NewDropout("drop", 0.4),
		ql(NewFC("fc", 16*8*8, 10)),
		NewSoftmax("prob"),
	)
}

func TestParsePrecision(t *testing.T) {
	for s, want := range map[string]Precision{
		"": PrecFloat32, "float32": PrecFloat32, "fp32": PrecFloat32,
		"int8": PrecInt8, "quantized": PrecInt8, "q8": PrecInt8,
	} {
		got, err := ParsePrecision(s)
		if err != nil || got != want {
			t.Errorf("ParsePrecision(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParsePrecision("fp16"); err == nil {
		t.Error("ParsePrecision(fp16) should fail")
	}
	if !PrecInt8.Valid() || Precision("bf16").Valid() {
		t.Error("Precision.Valid misclassifies")
	}
}

// TestQuantSingleLayerBound checks the per-layer property: for randomized
// single conv and FC layers, int8 output error vs the float32 reference
// stays under the step's analytic calibrated bound.
func TestQuantSingleLayerBound(t *testing.T) {
	type tc struct {
		name string
		net  *Network
	}
	cases := []tc{
		{"conv3x3", mustNet(t, "q-conv3",
			ql(NewInput("d", 4, 12, 12)),
			ql(NewConv("c", 4, 6, 3, 1, 1)))},
		{"conv5x5s2", mustNet(t, "q-conv5",
			ql(NewInput("d", 3, 19, 19)),
			ql(NewConv("c", 3, 8, 5, 2, 2)))},
		{"conv1x1", mustNet(t, "q-conv1",
			ql(NewInput("d", 16, 7, 7)),
			ql(NewConv("c", 16, 12, 1, 1, 0)))},
		{"fc", mustNet(t, "q-fc",
			ql(NewInput("d", 6, 5, 5)),
			ql(NewFC("f", 150, 40)))},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			shape := c.net.InputShape()
			qp, err := c.net.PlanPrec(PrecInt8, shape...)
			if err != nil {
				t.Fatal(err)
			}
			qi := qp.Quant()
			if qi == nil || len(qi.Steps) != 1 {
				t.Fatalf("Quant() = %+v, want one quantized step", qi)
			}
			bound := qi.Steps[0].Bound
			if bound <= 0 {
				t.Fatalf("step bound = %v, want > 0", bound)
			}
			for trial := uint64(0); trial < 5; trial++ {
				in := freshInput(t, 100+trial, shape...)
				ref, err := c.net.Forward(in)
				if err != nil {
					t.Fatal(err)
				}
				got, err := qp.Forward(in)
				if err != nil {
					t.Fatal(err)
				}
				if d := maxAbsDiff(got, ref); d > float64(bound) {
					t.Fatalf("trial %d: |int8-f32| = %v exceeds analytic bound %v", trial, d, bound)
				}
			}
		})
	}
}

// TestQuantEndToEndBound checks the end-to-end property on a randomized
// multi-layer net (conv, pool, inception, FC, softmax): fresh-input int8
// error stays under the plan's calibrated end-to-end bound.
func TestQuantEndToEndBound(t *testing.T) {
	net := quantTestNet(t)
	shape := net.InputShape()
	qp, err := net.PlanPrec(PrecInt8, shape...)
	if err != nil {
		t.Fatal(err)
	}
	qi := qp.Quant()
	if qi == nil || qi.ErrBound <= 0 {
		t.Fatalf("Quant() = %+v, want calibrated bound", qi)
	}
	// Every quantizable layer — including those inside inception
	// branches — must have been quantized: conv1, 4 branch convs, fc.
	if len(qi.Steps) != 6 {
		t.Fatalf("quantized %d steps (%+v), want 6", len(qi.Steps), qi.Steps)
	}
	for trial := uint64(0); trial < 5; trial++ {
		in := freshInput(t, 200+trial, shape...)
		ref, err := net.Forward(in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := qp.Forward(in)
		if err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(got, ref); d > float64(qi.ErrBound) {
			t.Fatalf("trial %d: e2e |int8-f32| = %v exceeds calibrated bound %v", trial, d, qi.ErrBound)
		}
	}
}

// TestQuantDeterministic pins the int8 path's bit-identity: across
// GOMAXPROCS settings, across repeated runs, and across independently
// compiled plans of identically seeded networks. Integer accumulation
// plus deterministic calibration makes all of these exact.
func TestQuantDeterministic(t *testing.T) {
	net := quantTestNet(t)
	shape := net.InputShape()
	in := freshInput(t, 77, shape...)
	qp, err := net.PlanPrec(PrecInt8, shape...)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := qp.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, w := range []int{1, 2, 4} {
		runtime.GOMAXPROCS(w)
		got, err := qp.Forward(in)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got.Data() {
			if v != ref.Data()[i] {
				t.Fatalf("GOMAXPROCS=%d: out[%d] = %v != %v", w, i, v, ref.Data()[i])
			}
		}
	}
	runtime.GOMAXPROCS(prev)
	// An independently built and calibrated twin must agree exactly.
	net2 := quantTestNet(t)
	got2, err := net2.ForwardPrec(in, PrecInt8)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got2.Data() {
		if v != ref.Data()[i] {
			t.Fatalf("independent plan: out[%d] = %v != %v", i, v, ref.Data()[i])
		}
	}
}

// TestQuantSplitBoundary checks partial inference under int8: the front
// plan's output is an ordinary float32 tensor, the rear net (calibrated
// independently, as a server would) consumes it, and the combined result
// stays within the combined calibrated bounds of the float32 reference.
func TestQuantSplitBoundary(t *testing.T) {
	net := quantTestNet(t)
	shape := net.InputShape()
	cut := 4 // after the inception module
	front, rear, err := net.Split(cut)
	if err != nil {
		t.Fatal(err)
	}
	in := freshInput(t, 300, shape...)
	ref, err := net.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	feat, err := front.ForwardPrec(in, PrecInt8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rear.ForwardPrec(feat, PrecInt8)
	if err != nil {
		t.Fatal(err)
	}
	fq, err := front.PlanPrec(PrecInt8, shape...)
	if err != nil {
		t.Fatal(err)
	}
	rq, err := rear.PlanPrec(PrecInt8, feat.Shape()...)
	if err != nil {
		t.Fatal(err)
	}
	// The rear half is FC+softmax: softmax is 1-Lipschitz in the logits,
	// and the FC error bound already covers perturbed inputs via the
	// dynamic range fallback, so the combined error is within the sum of
	// the advertised bounds (front error enters the rear FC linearly,
	// bounded by ||W||·frontBound; fold that in via the rear bound scale).
	bound := fq.Quant().ErrBound*float32(rear.TotalParams()) + rq.Quant().ErrBound
	if d := maxAbsDiff(got, ref); d > float64(bound) {
		t.Fatalf("split int8 |got-ref| = %v exceeds %v", d, bound)
	}
	// And the cut tensor is plain float32 with the expected shape — the
	// wire format is unchanged by quantization.
	wantShape := rear.InputShape()
	if tensor.Volume(feat.Shape()) != tensor.Volume(wantShape) {
		t.Fatalf("cut feature shape %v incompatible with rear input %v", feat.Shape(), wantShape)
	}
}

// TestQuantPlanCache: float32 and int8 plans are cached under separate
// keys and report their precision and metadata correctly.
func TestQuantPlanCache(t *testing.T) {
	net := quantTestNet(t)
	shape := net.InputShape()
	fp, err := net.Plan(shape...)
	if err != nil {
		t.Fatal(err)
	}
	qp, err := net.PlanPrec(PrecInt8, shape...)
	if err != nil {
		t.Fatal(err)
	}
	if fp == qp {
		t.Fatal("float32 and int8 plans share a cache slot")
	}
	if fp.Precision() != PrecFloat32 || fp.Quant() != nil {
		t.Errorf("float32 plan reports %v / %+v", fp.Precision(), fp.Quant())
	}
	if qp.Precision() != PrecInt8 || qp.Quant() == nil {
		t.Errorf("int8 plan reports %v / %+v", qp.Precision(), qp.Quant())
	}
	qp2, err := net.PlanPrec(PrecInt8, shape...)
	if err != nil {
		t.Fatal(err)
	}
	if qp2 != qp {
		t.Error("int8 plan not cached")
	}
	if _, err := net.PlanPrec(Precision("fp16"), shape...); err == nil {
		t.Error("invalid precision accepted")
	}
}

// TestQuantFloat32Unaffected: compiling an int8 plan must not perturb the
// float32 path (quantization state is plan-owned, layers are untouched).
func TestQuantFloat32Unaffected(t *testing.T) {
	net := quantTestNet(t)
	shape := net.InputShape()
	in := freshInput(t, 55, shape...)
	before, err := net.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.PlanPrec(PrecInt8, shape...); err != nil {
		t.Fatal(err)
	}
	after, err := net.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range after.Data() {
		if v != before.Data()[i] {
			t.Fatalf("float32 out[%d] changed after int8 compile: %v != %v", i, v, before.Data()[i])
		}
	}
}

// Package nn implements the deep-neural-network substrate the paper's web
// apps run on: CNN layers (convolution, pooling, fully-connected, ReLU, LRN,
// dropout, softmax, inception), a network abstraction with real forward
// execution, per-layer FLOP and parameter accounting, model serialization,
// and front/rear splitting for partial inference.
//
// It plays the role of the Caffe.js framework in the paper: it loads a
// pre-trained model (a net descriptor plus a weight blob) into the web app
// and performs forward execution on it.
package nn

import (
	"errors"
	"fmt"

	"websnap/internal/tensor"
)

// LayerType identifies the kind of a layer. It is serialized into net
// descriptors, so values are stable strings rather than iota constants.
type LayerType string

// Layer types understood by the engine.
const (
	TypeInput     LayerType = "input"
	TypeConv      LayerType = "conv"
	TypePool      LayerType = "pool"
	TypeFC        LayerType = "fc"
	TypeReLU      LayerType = "relu"
	TypeLRN       LayerType = "lrn"
	TypeDropout   LayerType = "dropout"
	TypeSoftmax   LayerType = "softmax"
	TypeInception LayerType = "inception"
)

var (
	// ErrBadShape is returned when a layer receives an input shape it
	// cannot process.
	ErrBadShape = errors.New("nn: incompatible input shape")
	// ErrUnknownLayer is returned when deserializing an unrecognized
	// layer type.
	ErrUnknownLayer = errors.New("nn: unknown layer type")
)

// Layer is one node in the network's forward chain.
//
// The engine treats a network as a series of layer executions (the paper's
// "forward execution"); composite structures such as GoogLeNet's inception
// modules are modeled as a single composite layer so that partition points
// remain simple layer boundaries.
type Layer interface {
	// Name returns the layer's unique name within its network (e.g.
	// "conv1", "1st_pool").
	Name() string
	// Type returns the layer's kind.
	Type() LayerType
	// OutputShape returns the output dimensions for the given input
	// dimensions (channels-first: [C, H, W], or [N] after flattening).
	OutputShape(in []int) ([]int, error)
	// Forward executes the layer on in and returns an output tensor the
	// caller owns. Most layers allocate it fresh; identity layers
	// (Dropout at inference) may return in unchanged. This is the
	// standalone compatibility path — compiled plans use ForwardCtx.
	Forward(in *tensor.Tensor) (*tensor.Tensor, error)
	// ForwardCtx executes the layer as one step of a compiled plan,
	// reading in and writing the pre-allocated out. Shapes are validated
	// at plan-compile time, not here. Per-step scratch comes from ctx.
	// Layers whose Traits declare InPlace must tolerate out aliasing in;
	// all layers must tolerate distinct in/out.
	ForwardCtx(ctx *ExecContext, in, out *tensor.Tensor) error
	// Traits reports the layer's execution properties for the given
	// input shape (in-place capability, identity elision, scratch need,
	// kernel choice) so the plan compiler can assign buffers.
	Traits(in []int) (StepTraits, error)
	// FLOPs estimates the floating point operations needed to execute the
	// layer on the given input shape.
	FLOPs(in []int) (int64, error)
	// ParamCount returns the number of learned parameters.
	ParamCount() int64
	// Params returns the parameter tensors in a stable order for weight
	// (de)serialization. Layers without parameters return nil.
	Params() []*tensor.Tensor
}

// shapeCHW validates a [C,H,W] input shape.
func shapeCHW(in []int) (c, h, w int, err error) {
	if len(in) != 3 {
		return 0, 0, 0, fmt.Errorf("%w: want [C H W], got %v", ErrBadShape, in)
	}
	return in[0], in[1], in[2], nil
}

// convOut computes the output spatial size for a window op.
func convOut(in, k, stride, pad int) int {
	return (in+2*pad-k)/stride + 1
}

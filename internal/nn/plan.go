package nn

import (
	"fmt"
	"sync"
	"time"

	"websnap/internal/tensor"
)

// This file implements the planned execution engine. A Network + input
// shape is compiled once into an ExecPlan: per-layer output shapes,
// scratch sizes, and kernel choices (im2col vs direct convolution) are
// derived at compile time, identity layers (input validation, inference
// dropout) are elided, and every remaining step is assigned a buffer in a
// ping-pong arena so a steady-state forward pass performs no per-layer
// allocation. Plans are immutable after compilation and safe for
// concurrent use; mutable per-call state lives in pooled ExecContexts.

// StepTraits reports how a layer behaves as one step of a compiled plan.
// The plan compiler uses it to assign buffers and size the scratch arena.
type StepTraits struct {
	// InPlace means ForwardCtx tolerates out aliasing in (same backing
	// array), letting the plan run the step without a second buffer.
	InPlace bool
	// Identity means the step computes nothing at inference time
	// (out = in); the plan elides it entirely.
	Identity bool
	// ScratchFloats is the ExecContext scratch the step requests per
	// call for this input shape (e.g. the im2col column matrix).
	ScratchFloats int
	// Algo names the kernel the step will use ("direct", "im2col",
	// "gemv", ...) for plan introspection and benchmarks.
	Algo string
}

// Buffer codes used by compiled plan steps. A step reads src and writes
// dst; src==dst marks an in-place step.
const (
	bufInput  int8 = -1 // the caller's input tensor (never written)
	bufPing   int8 = 0  // pooled intermediate A
	bufPong   int8 = 1  // pooled intermediate B
	bufOutput int8 = 2  // the caller's result tensor
)

// progStep is one compiled layer execution.
type progStep struct {
	layer    Layer
	inShape  []int
	outShape []int
	outVol   int
	traits   StepTraits
	src, dst int8
	skip     bool       // identity step, elided at run time
	quant    *quantStep // int8 kernel, set only in quantized plans
}

// program is the compiled form shared by ExecPlan and inception branch
// sub-plans. It is immutable after compileProgram returns.
type program struct {
	steps      []progStep
	inShape    []int
	outShape   []int
	inVol      int
	outVol     int
	bufVol     [2]int // required float32 capacity of ping/pong buffers
	scratchVol int    // largest per-step scratch request
	wroteOut   bool   // some step writes the result tensor directly
}

// compileProgram walks the layer chain once, deriving every shape, trait,
// and buffer assignment.
//
// Buffer assignment: intermediates ping-pong between two pooled buffers;
// the last step that must materialize a new tensor writes straight into
// the caller's result, and the trailing run of in-place steps (ReLU,
// softmax, ...) then mutates the result in place. An in-place step that
// would otherwise read the caller's input is redirected into a buffer so
// inputs are never mutated. Identity steps are elided.
func compileProgram(layers []Layer, inShape []int) (*program, error) {
	p := &program{
		steps:   make([]progStep, len(layers)),
		inShape: append([]int(nil), inShape...),
	}
	cur := p.inShape
	for i, l := range layers {
		out, err := l.OutputShape(cur)
		if err != nil {
			return nil, fmt.Errorf("layer %q: %w", l.Name(), err)
		}
		tr, err := l.Traits(cur)
		if err != nil {
			return nil, fmt.Errorf("layer %q: %w", l.Name(), err)
		}
		p.steps[i] = progStep{
			layer:    l,
			inShape:  cur,
			outShape: out,
			outVol:   tensor.Volume(out),
			traits:   tr,
		}
		cur = out
	}
	p.outShape = cur
	p.inVol = tensor.Volume(p.inShape)
	p.outVol = tensor.Volume(p.outShape)

	// lastMat is the last step that cannot run in place: it materializes
	// directly into the result tensor, and everything after it operates
	// on the result.
	lastMat := -1
	for i := range p.steps {
		if !p.steps[i].traits.Identity && !p.steps[i].traits.InPlace {
			lastMat = i
		}
	}
	buf := bufInput
	for i := range p.steps {
		st := &p.steps[i]
		switch {
		case st.traits.Identity:
			st.skip = true
			st.src, st.dst = buf, buf
		case i >= lastMat:
			// The materialization point, or the in-place tail behind
			// it (when lastMat == -1 the first compute step lands
			// here and writes the result reading the raw input).
			st.src, st.dst = buf, bufOutput
			buf = bufOutput
		case st.traits.InPlace && buf != bufInput:
			st.src, st.dst = buf, buf
		default:
			// Needs a fresh destination: either a true materializing
			// step mid-chain, or an in-place-capable step that must
			// not mutate the caller's input.
			nxt := bufPing
			if buf == bufPing {
				nxt = bufPong
			}
			st.src, st.dst = buf, nxt
			buf = nxt
		}
	}
	for i := range p.steps {
		st := &p.steps[i]
		if st.traits.ScratchFloats > p.scratchVol {
			p.scratchVol = st.traits.ScratchFloats
		}
		if st.skip {
			continue
		}
		if st.dst == bufPing || st.dst == bufPong {
			if st.outVol > p.bufVol[st.dst] {
				p.bufVol[st.dst] = st.outVol
			}
		}
		if st.dst == bufOutput {
			p.wroteOut = true
		}
	}
	return p, nil
}

// runStep executes step i. in and out are the caller's input and result
// tensors; intermediates come from the context's arena.
func (p *program) runStep(ctx *ExecContext, i int, in, out *tensor.Tensor) error {
	st := &p.steps[i]
	if st.skip {
		return nil
	}
	src, err := ctx.bind(i, 0, st.src, st.inShape, in, out)
	if err != nil {
		return fmt.Errorf("layer %q: %w", st.layer.Name(), err)
	}
	dst, err := ctx.bind(i, 1, st.dst, st.outShape, in, out)
	if err != nil {
		return fmt.Errorf("layer %q: %w", st.layer.Name(), err)
	}
	ctx.soff = 0
	if q := st.quant; q != nil {
		if ctx.rec != nil && q.inc == nil {
			if mx := tensor.MaxAbs(src.Data()); mx > ctx.rec[st] {
				ctx.rec[st] = mx
			}
		}
		if err := q.forward(ctx, src, dst); err != nil {
			return fmt.Errorf("layer %q: %w", st.layer.Name(), err)
		}
		return nil
	}
	if err := st.layer.ForwardCtx(ctx, src, dst); err != nil {
		return fmt.Errorf("layer %q: %w", st.layer.Name(), err)
	}
	return nil
}

// run executes the whole program. When times is non-nil it must have
// len(p.steps) entries and receives per-step wall times (elided steps
// record zero) — the costmodel calibrates through this hook so predicted
// layer times reflect the real kernels.
func (p *program) run(ctx *ExecContext, in, out *tensor.Tensor, times []time.Duration) error {
	for i := range p.steps {
		if times == nil {
			if err := p.runStep(ctx, i, in, out); err != nil {
				return err
			}
			continue
		}
		start := time.Now()
		if err := p.runStep(ctx, i, in, out); err != nil {
			return err
		}
		times[i] = time.Since(start)
	}
	if !p.wroteOut {
		// Every step was elided (e.g. a pure input+dropout range): the
		// result is a copy of the input.
		copy(out.Data(), in.Data())
	}
	return nil
}

// ExecContext carries the mutable per-call state of plan execution: the
// ping-pong intermediate buffers, the step scratch arena, cached tensor
// headers, and per-branch sub-contexts for inception modules. Contexts
// are pooled by ExecPlan and must only be used by one goroutine at a
// time; the buffers come from the tensor package's sync.Pool-backed
// arena, so steady-state inference allocates nothing.
type ExecContext struct {
	bufs    [2][]float32
	io      [][2]*tensor.Tensor // cached headers per (step, src/dst)
	scratch []float32
	soff    int
	subs    map[*program]*ExecContext
	// Cached output view for inception branch contexts: the channel
	// window of the parent's output this branch writes into.
	viewOf *tensor.Tensor
	view   *tensor.Tensor
	// rec, when non-nil, records max|input| per step — the calibration
	// pass of quantized plan compilation. Inherited by sub-contexts so
	// inception branch steps are observed too.
	rec map[*progStep]float32
}

// newExecContext sizes a context for prog. A nil prog yields an empty
// context that grows on demand (the standalone layer-Forward shim).
func newExecContext(prog *program) *ExecContext {
	c := &ExecContext{}
	if prog != nil {
		c.bufs[0] = tensor.GetBuf(prog.bufVol[0])
		c.bufs[1] = tensor.GetBuf(prog.bufVol[1])
		c.scratch = tensor.GetBuf(prog.scratchVol)
		c.io = make([][2]*tensor.Tensor, len(prog.steps))
	}
	return c
}

// bind resolves a step's buffer code to a tensor, caching headers for
// pooled buffers so repeat executions allocate nothing.
func (c *ExecContext) bind(step, role int, code int8, shape []int, in, out *tensor.Tensor) (*tensor.Tensor, error) {
	switch code {
	case bufInput:
		return in, nil
	case bufOutput:
		return out, nil
	}
	if t := c.io[step][role]; t != nil {
		return t, nil
	}
	t, err := tensor.FromSlice(c.bufs[code][:tensor.Volume(shape)], shape...)
	if err != nil {
		return nil, err
	}
	c.io[step][role] = t
	return t, nil
}

// Scratch returns an n-float scratch slice from the context's arena.
// The slice is valid only until the current plan step returns and its
// contents are unspecified. Plan contexts are pre-sized at compile time;
// standalone contexts grow on first use.
func (c *ExecContext) Scratch(n int) []float32 {
	if c.soff+n > len(c.scratch) {
		if c.soff == 0 {
			tensor.PutBuf(c.scratch)
			c.scratch = tensor.GetBuf(n)
		} else {
			// Mid-step growth: earlier carve-outs keep their backing
			// array, this request gets a fresh one. Correct, just not
			// allocation-free; plans never hit this path.
			return make([]float32, n)
		}
	}
	s := c.scratch[c.soff : c.soff+n]
	c.soff += n
	return s
}

// sub returns the child context for an inception branch program, creating
// and caching it on first use.
func (c *ExecContext) sub(p *program) *ExecContext {
	if s := c.subs[p]; s != nil {
		return s
	}
	if c.subs == nil {
		c.subs = make(map[*program]*ExecContext)
	}
	s := newExecContext(p)
	s.rec = c.rec
	c.subs[p] = s
	return s
}

// free returns the context's pooled buffers, recursively through
// sub-contexts. Only one-shot contexts (plan calibration) call it; pooled
// inference contexts keep their buffers for reuse.
func (c *ExecContext) free() {
	tensor.PutBuf(c.bufs[0])
	tensor.PutBuf(c.bufs[1])
	tensor.PutBuf(c.scratch)
	c.bufs[0], c.bufs[1], c.scratch = nil, nil, nil
	for _, s := range c.subs {
		s.free()
	}
}

// outView returns a tensor viewing out's floats [off, off+volume(shape)),
// caching the header while the parent output tensor is stable (pooled
// intermediate buffers keep the same header across runs).
func (c *ExecContext) outView(out *tensor.Tensor, off int, shape []int) (*tensor.Tensor, error) {
	if c.viewOf == out {
		return c.view, nil
	}
	v, err := tensor.FromSlice(out.Data()[off:off+tensor.Volume(shape)], shape...)
	if err != nil {
		return nil, err
	}
	c.viewOf, c.view = out, v
	return v, nil
}

// ExecPlan is a Network (or layer range) compiled for one input shape.
// Plans are immutable and safe for concurrent use: every Forward call
// draws a pooled ExecContext, so the scheduler's batch path can hammer
// one cached plan from many goroutines.
type ExecPlan struct {
	netName string
	prog    *program
	prec    Precision
	quant   *QuantInfo // non-nil iff prec == PrecInt8
	ctxs    sync.Pool
}

// newExecPlan compiles layers for inShape at the given precision. An
// int8 plan additionally quantizes and calibrates during compilation, so
// the returned plan is immutable and concurrency-safe either way.
func newExecPlan(netName string, layers []Layer, inShape []int, prec Precision) (*ExecPlan, error) {
	prog, err := compileProgram(layers, inShape)
	if err != nil {
		return nil, err
	}
	p := &ExecPlan{netName: netName, prog: prog, prec: prec}
	if prec == PrecInt8 {
		bound, err := quantizeProgram(prog)
		if err != nil {
			return nil, err
		}
		p.quant = &QuantInfo{
			Precision: PrecInt8,
			ErrBound:  bound,
			Steps:     collectQuantSteps(prog, nil),
		}
	}
	return p, nil
}

// Precision returns the plan's compute precision.
func (p *ExecPlan) Precision() Precision {
	if p.prec == "" {
		return PrecFloat32
	}
	return p.prec
}

// Quant returns the quantization metadata of an int8 plan — calibrated
// end-to-end error bound and per-step scales — or nil for float32 plans.
func (p *ExecPlan) Quant() *QuantInfo { return p.quant }

// InputShape returns a copy of the plan's expected input shape.
func (p *ExecPlan) InputShape() []int { return append([]int(nil), p.prog.inShape...) }

// OutputShape returns a copy of the plan's output shape.
func (p *ExecPlan) OutputShape() []int { return append([]int(nil), p.prog.outShape...) }

// NumSteps returns the number of compiled steps (one per layer in the
// compiled range, including elided identity steps).
func (p *ExecPlan) NumSteps() int { return len(p.prog.steps) }

// PlanStep describes one compiled step for introspection (costmodel
// calibration, benchmarks, tests).
type PlanStep struct {
	Index         int
	Name          string
	Type          LayerType
	InShape       []int
	OutShape      []int
	InPlace       bool
	Elided        bool
	Algo          string
	ScratchFloats int
}

// Steps returns a description of every compiled step.
func (p *ExecPlan) Steps() []PlanStep {
	out := make([]PlanStep, len(p.prog.steps))
	for i := range p.prog.steps {
		st := &p.prog.steps[i]
		out[i] = PlanStep{
			Index:         i,
			Name:          st.layer.Name(),
			Type:          st.layer.Type(),
			InShape:       append([]int(nil), st.inShape...),
			OutShape:      append([]int(nil), st.outShape...),
			InPlace:       st.src == st.dst && !st.skip,
			Elided:        st.skip,
			Algo:          st.traits.Algo,
			ScratchFloats: st.traits.ScratchFloats,
		}
	}
	return out
}

func (p *ExecPlan) acquire() *ExecContext {
	if v := p.ctxs.Get(); v != nil {
		return v.(*ExecContext)
	}
	return newExecContext(p.prog)
}

func (p *ExecPlan) release(c *ExecContext) { p.ctxs.Put(c) }

func (p *ExecPlan) checkInput(in *tensor.Tensor) error {
	if in.Rank() != len(p.prog.inShape) {
		return fmt.Errorf("network %q: %w: got rank %d, want %v",
			p.netName, ErrBadShape, in.Rank(), p.prog.inShape)
	}
	for i, d := range p.prog.inShape {
		if in.Dim(i) != d {
			return fmt.Errorf("network %q: %w: got dim %d = %d, want %v",
				p.netName, ErrBadShape, i, in.Dim(i), p.prog.inShape)
		}
	}
	return nil
}

// Forward executes the plan on in, returning a freshly allocated output
// tensor. The input is never mutated.
func (p *ExecPlan) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	out, _, err := p.forward(in, nil)
	return out, err
}

// ForwardTimed is Forward plus per-step wall times: times[i] is the wall
// time of step i (zero for elided steps). times must have NumSteps()
// entries. The costmodel profiles devices through this hook.
func (p *ExecPlan) ForwardTimed(in *tensor.Tensor, times []time.Duration) (*tensor.Tensor, error) {
	if len(times) != len(p.prog.steps) {
		return nil, fmt.Errorf("network %q: ForwardTimed: %d time slots for %d steps",
			p.netName, len(times), len(p.prog.steps))
	}
	out, _, err := p.forward(in, times)
	return out, err
}

func (p *ExecPlan) forward(in *tensor.Tensor, times []time.Duration) (*tensor.Tensor, *ExecContext, error) {
	if err := p.checkInput(in); err != nil {
		return nil, nil, err
	}
	out, err := tensor.New(p.prog.outShape...)
	if err != nil {
		return nil, nil, err
	}
	ctx := p.acquire()
	err = p.prog.run(ctx, in, out, times)
	p.release(ctx)
	if err != nil {
		return nil, nil, fmt.Errorf("network %q: %w", p.netName, err)
	}
	return out, nil, nil
}

// ForwardBatch executes the plan over a batch, layer-major: every sample
// is advanced through step k before any sample touches step k+1, so each
// layer's weights are fetched into cache once and reused across the whole
// batch. Results are bit-identical to per-sample Forward calls because
// each sample's per-step computation is unchanged.
func (p *ExecPlan) ForwardBatch(ins []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(ins) == 0 {
		return nil, fmt.Errorf("nn: network %q: empty batch", p.netName)
	}
	for i, in := range ins {
		if err := p.checkInput(in); err != nil {
			return nil, fmt.Errorf("batch member %d: %w", i, err)
		}
	}
	outs := make([]*tensor.Tensor, len(ins))
	ctxs := make([]*ExecContext, len(ins))
	for i := range ins {
		out, err := tensor.New(p.prog.outShape...)
		if err != nil {
			return nil, err
		}
		outs[i] = out
		ctxs[i] = p.acquire()
	}
	defer func() {
		for _, c := range ctxs {
			p.release(c)
		}
	}()
	for step := range p.prog.steps {
		for i := range ins {
			if err := p.prog.runStep(ctxs[i], step, ins[i], outs[i]); err != nil {
				return nil, fmt.Errorf("network %q: batch member %d: %w", p.netName, i, err)
			}
		}
	}
	if !p.prog.wroteOut {
		for i := range ins {
			copy(outs[i].Data(), ins[i].Data())
		}
	}
	return outs, nil
}

// standaloneCtxs pools contexts for the Layer.Forward compatibility shim,
// which executes a single layer outside any compiled plan.
var standaloneCtxs = sync.Pool{New: func() any { return &ExecContext{} }}

// forwardStandalone runs one layer the pre-plan way — validate, allocate
// the output, execute — through its context-aware kernel. It backs every
// layer's Forward method so external callers keep working unchanged.
func forwardStandalone(l Layer, in *tensor.Tensor) (*tensor.Tensor, error) {
	outShape, err := l.OutputShape(in.Shape())
	if err != nil {
		return nil, err
	}
	out, err := tensor.New(outShape...)
	if err != nil {
		return nil, err
	}
	ctx := standaloneCtxs.Get().(*ExecContext)
	ctx.soff = 0
	err = l.ForwardCtx(ctx, in, out)
	standaloneCtxs.Put(ctx)
	if err != nil {
		return nil, err
	}
	return out, nil
}

package nn

import (
	"bytes"
	"testing"

	"websnap/internal/tensor"
)

// inceptionNet builds a small net containing every layer type, so the
// serialization and accounting paths for all of them are exercised here
// (the big models cover them indirectly from other packages).
func inceptionNet(t *testing.T) *Network {
	t.Helper()
	in, err := NewInput("data", 3, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	lrn, err := NewLRN("norm", 3, 0.0001, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := NewConv("inc_1x1", 3, 2, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	b2r, err := NewConv("inc_3x3_reduce", 3, 2, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := NewConv("inc_3x3", 2, 4, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	b3p, err := NewPool("inc_pool", MaxPool, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	b3, err := NewConv("inc_proj", 3, 2, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewInception("inc",
		[]Layer{b1, NewReLU("r1")},
		[]Layer{b2r, b2},
		[]Layer{b3p, b3},
	)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewPool("pool", AvgPool, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := NewFC("fc", 8*4*4, 4)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork("mini-inception",
		in, lrn, inc, NewDropout("drop", 0.4), pool, fc, NewSoftmax("prob"))
	if err != nil {
		t.Fatal(err)
	}
	net.InitWeights(5)
	return net
}

func TestInceptionNetAccounting(t *testing.T) {
	net := inceptionNet(t)
	if net.Name() != "mini-inception" {
		t.Errorf("Name = %q", net.Name())
	}
	fl, err := net.TotalFLOPs()
	if err != nil || fl <= 0 {
		t.Errorf("TotalFLOPs = %d, %v", fl, err)
	}
	if net.ModelBytes() != 4*net.TotalParams() {
		t.Error("ModelBytes != 4*params")
	}
	var inc *Inception
	for _, l := range net.Layers() {
		if v, ok := l.(*Inception); ok {
			inc = v
		}
	}
	if inc == nil {
		t.Fatal("no inception layer")
	}
	if inc.Name() != "inc" || inc.Type() != TypeInception {
		t.Errorf("inception identity: %s/%s", inc.Name(), inc.Type())
	}
	if len(inc.Branches()) != 3 {
		t.Errorf("branches = %d", len(inc.Branches()))
	}
	if inc.ParamCount() <= 0 || len(inc.Params()) == 0 {
		t.Error("inception params not accounted")
	}
	flInc, err := inc.FLOPs([]int{3, 8, 8})
	if err != nil || flInc <= 0 {
		t.Errorf("inception FLOPs = %d, %v", flInc, err)
	}
}

func TestInceptionNetSerializeRoundTrip(t *testing.T) {
	net := inceptionNet(t)
	data, err := EncodeSpec(net)
	if err != nil {
		t.Fatal(err)
	}
	clone, err := DecodeSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if clone.TotalParams() != net.TotalParams() {
		t.Fatalf("params %d != %d", clone.TotalParams(), net.TotalParams())
	}
	// Behavior equivalence after weight transfer.
	var buf bytes.Buffer
	if err := net.EncodeWeights(&buf); err != nil {
		t.Fatal(err)
	}
	if err := clone.DecodeWeights(&buf); err != nil {
		t.Fatal(err)
	}
	in := tensor.MustNew(3, 8, 8)
	for i := range in.Data() {
		in.Data()[i] = float32(i%17) * 0.1
	}
	a, err := net.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := clone.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data() {
		if a.Data()[i] != b.Data()[i] {
			t.Fatalf("outputs differ at %d", i)
		}
	}
	// Layer metadata survived.
	for i, l := range clone.Layers() {
		orig := net.Layers()[i]
		if l.Name() != orig.Name() || l.Type() != orig.Type() {
			t.Errorf("layer %d: %s/%s != %s/%s", i, l.Name(), l.Type(), orig.Name(), orig.Type())
		}
	}
	// Spot-check preserved settings.
	lrn, ok := clone.Layers()[1].(*LRN)
	if !ok {
		t.Fatal("layer 1 is not LRN after round trip")
	}
	if ls, a1, b1 := lrn.Settings(); ls != 3 || a1 != 0.0001 || b1 != 0.75 {
		t.Errorf("LRN settings = %d/%v/%v", ls, a1, b1)
	}
	drop, ok := clone.Layers()[3].(*Dropout)
	if !ok {
		t.Fatal("layer 3 is not Dropout after round trip")
	}
	if drop.Ratio() != 0.4 {
		t.Errorf("dropout ratio = %v", drop.Ratio())
	}
	if drop.Name() != "drop" || drop.Type() != TypeDropout {
		t.Error("dropout identity lost")
	}
	if shape, err := drop.OutputShape([]int{8, 8, 8}); err != nil || len(shape) != 3 {
		t.Errorf("dropout OutputShape = %v, %v", shape, err)
	}
	if fl, err := drop.FLOPs([]int{8}); err != nil || fl != 0 {
		t.Errorf("dropout FLOPs = %d, %v", fl, err)
	}
	if drop.ParamCount() != 0 || drop.Params() != nil {
		t.Error("dropout must be parameterless")
	}
}

func TestSerializeUnknownLayerType(t *testing.T) {
	if _, err := Build(NetSpec{Name: "x", Layers: []LayerSpec{{Type: "warp-drive", Name: "w"}}}); err == nil {
		t.Error("unknown layer type should fail")
	}
}

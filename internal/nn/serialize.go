package nn

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// weightsMagic guards the binary weight-blob format.
const weightsMagic = uint32(0x574e4e31) // "WNN1"

// LayerSpec is the serializable description of one layer. Together with the
// weight blob it forms the "description/parameters of the NN" that the
// paper's client pre-sends to the edge server (§III.B.1).
type LayerSpec struct {
	Type LayerType `json:"type"`
	Name string    `json:"name"`

	// Conv / FC geometry.
	InC    int `json:"inC,omitempty"`
	OutC   int `json:"outC,omitempty"`
	K      int `json:"k,omitempty"`
	Stride int `json:"stride,omitempty"`
	Pad    int `json:"pad,omitempty"`
	In     int `json:"in,omitempty"`
	Out    int `json:"out,omitempty"`

	// Pool.
	Pooling Pooling `json:"pooling,omitempty"`

	// LRN.
	LocalSize int     `json:"localSize,omitempty"`
	Alpha     float64 `json:"alpha,omitempty"`
	Beta      float64 `json:"beta,omitempty"`

	// Dropout.
	Ratio float64 `json:"ratio,omitempty"`

	// Input.
	Shape []int `json:"shape,omitempty"`

	// Inception.
	Branches [][]LayerSpec `json:"branches,omitempty"`
}

// NetSpec is the serializable description of a whole network.
type NetSpec struct {
	Name   string      `json:"name"`
	Layers []LayerSpec `json:"layers"`
}

// Spec returns the serializable description of the network.
func (n *Network) Spec() (NetSpec, error) {
	specs, err := layersToSpecs(n.layers)
	if err != nil {
		return NetSpec{}, err
	}
	return NetSpec{Name: n.name, Layers: specs}, nil
}

func layersToSpecs(layers []Layer) ([]LayerSpec, error) {
	specs := make([]LayerSpec, 0, len(layers))
	for _, l := range layers {
		s, err := layerToSpec(l)
		if err != nil {
			return nil, err
		}
		specs = append(specs, s)
	}
	return specs, nil
}

func layerToSpec(l Layer) (LayerSpec, error) {
	switch t := l.(type) {
	case *Input:
		return LayerSpec{Type: TypeInput, Name: t.Name(), Shape: t.ExpectedShape()}, nil
	case *Conv:
		inC, outC, k, stride, pad := t.Geometry()
		return LayerSpec{Type: TypeConv, Name: t.Name(), InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad}, nil
	case *Pool:
		k, stride, pad := t.Geometry()
		return LayerSpec{Type: TypePool, Name: t.Name(), Pooling: t.Kind(), K: k, Stride: stride, Pad: pad}, nil
	case *FC:
		in, out := t.Geometry()
		return LayerSpec{Type: TypeFC, Name: t.Name(), In: in, Out: out}, nil
	case *ReLU:
		return LayerSpec{Type: TypeReLU, Name: t.Name()}, nil
	case *LRN:
		ls, a, b := t.Settings()
		return LayerSpec{Type: TypeLRN, Name: t.Name(), LocalSize: ls, Alpha: a, Beta: b}, nil
	case *Dropout:
		return LayerSpec{Type: TypeDropout, Name: t.Name(), Ratio: t.Ratio()}, nil
	case *Softmax:
		return LayerSpec{Type: TypeSoftmax, Name: t.Name()}, nil
	case *Inception:
		branches := make([][]LayerSpec, 0, len(t.Branches()))
		for _, b := range t.Branches() {
			bs, err := layersToSpecs(b)
			if err != nil {
				return LayerSpec{}, err
			}
			branches = append(branches, bs)
		}
		return LayerSpec{Type: TypeInception, Name: t.Name(), Branches: branches}, nil
	default:
		return LayerSpec{}, fmt.Errorf("%w: %T", ErrUnknownLayer, l)
	}
}

// Build constructs a network from its serialized description. Weights are
// zeroed; load them with DecodeWeights.
func Build(spec NetSpec) (*Network, error) {
	layers, err := specsToLayers(spec.Layers)
	if err != nil {
		return nil, fmt.Errorf("nn: build %q: %w", spec.Name, err)
	}
	return NewNetwork(spec.Name, layers...)
}

func specsToLayers(specs []LayerSpec) ([]Layer, error) {
	layers := make([]Layer, 0, len(specs))
	for _, s := range specs {
		l, err := specToLayer(s)
		if err != nil {
			return nil, err
		}
		layers = append(layers, l)
	}
	return layers, nil
}

func specToLayer(s LayerSpec) (Layer, error) {
	switch s.Type {
	case TypeInput:
		return NewInput(s.Name, s.Shape...)
	case TypeConv:
		return NewConv(s.Name, s.InC, s.OutC, s.K, s.Stride, s.Pad)
	case TypePool:
		return NewPool(s.Name, s.Pooling, s.K, s.Stride, s.Pad)
	case TypeFC:
		return NewFC(s.Name, s.In, s.Out)
	case TypeReLU:
		return NewReLU(s.Name), nil
	case TypeLRN:
		return NewLRN(s.Name, s.LocalSize, s.Alpha, s.Beta)
	case TypeDropout:
		return NewDropout(s.Name, s.Ratio), nil
	case TypeSoftmax:
		return NewSoftmax(s.Name), nil
	case TypeInception:
		branches := make([][]Layer, 0, len(s.Branches))
		for _, bs := range s.Branches {
			b, err := specsToLayers(bs)
			if err != nil {
				return nil, err
			}
			branches = append(branches, b)
		}
		return NewInception(s.Name, branches...)
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownLayer, s.Type)
	}
}

// EncodeSpec renders the net descriptor as JSON.
func EncodeSpec(n *Network) ([]byte, error) {
	spec, err := n.Spec()
	if err != nil {
		return nil, err
	}
	return json.Marshal(spec)
}

// DecodeSpec parses a JSON net descriptor and builds the network.
func DecodeSpec(data []byte) (*Network, error) {
	var spec NetSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, fmt.Errorf("nn: decode spec: %w", err)
	}
	return Build(spec)
}

// Fingerprint hashes a model's architecture and weights into its stable
// content identity: sha256 over the encoded spec followed by the encoded
// weights, truncated to 24 hex chars. Equal fingerprints mean
// byte-identical models; the fleet blob index and the cross-server model
// transfer path key blobs by this value.
func Fingerprint(n *Network) string {
	h := sha256.New()
	if spec, err := EncodeSpec(n); err == nil {
		h.Write(spec)
	}
	if err := n.EncodeWeights(h); err != nil {
		return ""
	}
	return hex.EncodeToString(h.Sum(nil)[:12])
}

// EncodeWeights writes all parameter tensors as little-endian float32,
// preceded by a magic word and the total count for integrity checking.
func (n *Network) EncodeWeights(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], weightsMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(n.TotalParams()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("nn: encode weights: %w", err)
	}
	var buf [4]byte
	for _, l := range n.layers {
		for _, p := range l.Params() {
			for _, v := range p.Data() {
				binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
				if _, err := bw.Write(buf[:]); err != nil {
					return fmt.Errorf("nn: encode weights: %w", err)
				}
			}
		}
	}
	return bw.Flush()
}

// DecodeWeights reads a weight blob produced by EncodeWeights into the
// network's parameter tensors. The parameter count must match exactly.
func (n *Network) DecodeWeights(r io.Reader) error {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("nn: decode weights header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:4]); m != weightsMagic {
		return fmt.Errorf("nn: decode weights: bad magic %#x", m)
	}
	count := binary.LittleEndian.Uint32(hdr[4:8])
	if int64(count) != n.TotalParams() {
		return fmt.Errorf("nn: decode weights: blob has %d params, network needs %d", count, n.TotalParams())
	}
	var buf [4]byte
	for _, l := range n.layers {
		for _, p := range l.Params() {
			d := p.Data()
			for i := range d {
				if _, err := io.ReadFull(br, buf[:]); err != nil {
					return fmt.Errorf("nn: decode weights (layer %q): %w", l.Name(), err)
				}
				d[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[:]))
			}
		}
	}
	return nil
}

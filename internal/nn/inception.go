package nn

import (
	"fmt"
	"sync"

	"websnap/internal/tensor"
)

// Inception is GoogLeNet's inception module: several branches of layers run
// in parallel on the same input, and their outputs are concatenated along
// the channel dimension into a single output vector (paper §II.B).
//
// Modeling the module as one composite layer keeps the network a simple
// series of layer executions, which is exactly the view the paper's
// partial-inference partitioning takes.
type Inception struct {
	name     string
	branches [][]Layer

	// planMu guards plans, the per-input-shape compiled branch programs.
	// Compilation is idempotent (same layers, same shapes), so concurrent
	// first uses at worst compile twice and keep one.
	planMu sync.RWMutex
	plans  map[[3]int]*incPlan
}

// incPlan is an inception module compiled for one input shape: each
// branch is a standalone sub-program writing a channel window of the
// module's output.
type incPlan struct {
	branches []incBranch
}

type incBranch struct {
	prog     *program
	off      int // float32 offset of this branch's window in the output
	outShape []int
}

var _ Layer = (*Inception)(nil)

// NewInception constructs an inception module from its branches. Every
// branch must contain at least one layer, and every branch output must have
// the same spatial dimensions so the channel concat is well-defined.
func NewInception(name string, branches ...[]Layer) (*Inception, error) {
	if len(branches) == 0 {
		return nil, fmt.Errorf("nn: inception %q: no branches", name)
	}
	for i, b := range branches {
		if len(b) == 0 {
			return nil, fmt.Errorf("nn: inception %q: branch %d is empty", name, i)
		}
	}
	return &Inception{name: name, branches: branches}, nil
}

// Name implements Layer.
func (l *Inception) Name() string { return l.name }

// Type implements Layer.
func (l *Inception) Type() LayerType { return TypeInception }

// Branches returns the module's branches. The returned slices are the live
// internals; callers must not mutate them.
func (l *Inception) Branches() [][]Layer { return l.branches }

func (l *Inception) branchShape(branch []Layer, in []int) ([]int, error) {
	cur := in
	for _, lay := range branch {
		next, err := lay.OutputShape(cur)
		if err != nil {
			return nil, fmt.Errorf("inception %q/%s: %w", l.name, lay.Name(), err)
		}
		cur = next
	}
	return cur, nil
}

// OutputShape implements Layer.
func (l *Inception) OutputShape(in []int) ([]int, error) {
	var oh, ow, totalC int
	for i, b := range l.branches {
		s, err := l.branchShape(b, in)
		if err != nil {
			return nil, err
		}
		if len(s) != 3 {
			return nil, fmt.Errorf("inception %q: branch %d output %v is not [C H W]: %w",
				l.name, i, s, ErrBadShape)
		}
		if i == 0 {
			oh, ow = s[1], s[2]
		} else if s[1] != oh || s[2] != ow {
			return nil, fmt.Errorf("inception %q: branch %d spatial %dx%d != %dx%d: %w",
				l.name, i, s[1], s[2], oh, ow, ErrBadShape)
		}
		totalC += s[0]
	}
	return []int{totalC, oh, ow}, nil
}

// Forward implements Layer via the standalone shim.
func (l *Inception) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	return forwardStandalone(l, in)
}

// planFor returns the module compiled for a [c,h,w] input, compiling and
// caching branch sub-programs on first use. Branch programs write their
// output directly into the module's channel-concatenated output window,
// so no per-branch result tensor or concat copy exists at run time.
func (l *Inception) planFor(c, h, w int) (*incPlan, error) {
	key := [3]int{c, h, w}
	l.planMu.RLock()
	ip := l.plans[key]
	l.planMu.RUnlock()
	if ip != nil {
		return ip, nil
	}
	in := []int{c, h, w}
	ip = &incPlan{branches: make([]incBranch, len(l.branches))}
	chOff := 0
	plane := 0
	for i, b := range l.branches {
		prog, err := compileProgram(b, in)
		if err != nil {
			return nil, fmt.Errorf("inception %q: %w", l.name, err)
		}
		if len(prog.outShape) != 3 {
			return nil, fmt.Errorf("inception %q: branch %d output %v is not [C H W]: %w",
				l.name, i, prog.outShape, ErrBadShape)
		}
		plane = prog.outShape[1] * prog.outShape[2]
		ip.branches[i] = incBranch{prog: prog, off: chOff * plane, outShape: prog.outShape}
		chOff += prog.outShape[0]
	}
	l.planMu.Lock()
	if l.plans == nil {
		l.plans = make(map[[3]int]*incPlan)
	}
	if exist := l.plans[key]; exist != nil {
		ip = exist
	} else {
		l.plans[key] = ip
	}
	l.planMu.Unlock()
	return ip, nil
}

// Traits implements Layer, compiling the branch sub-programs as a side
// effect so plan construction surfaces branch shape errors eagerly.
func (l *Inception) Traits(in []int) (StepTraits, error) {
	c, h, w, err := shapeCHW(in)
	if err != nil {
		return StepTraits{}, fmt.Errorf("inception %q: %w", l.name, err)
	}
	if _, err := l.planFor(c, h, w); err != nil {
		return StepTraits{}, err
	}
	return StepTraits{Algo: "concat"}, nil
}

// ForwardCtx implements Layer: each branch sub-program runs in its own
// cached child context and writes straight into its channel window of
// out.
func (l *Inception) ForwardCtx(ctx *ExecContext, in, out *tensor.Tensor) error {
	ip, err := l.planFor(in.Dim(0), in.Dim(1), in.Dim(2))
	if err != nil {
		return err
	}
	for i := range ip.branches {
		br := &ip.branches[i]
		sub := ctx.sub(br.prog)
		view, err := sub.outView(out, br.off, br.outShape)
		if err != nil {
			return fmt.Errorf("inception %q: %w", l.name, err)
		}
		if err := br.prog.run(sub, in, view, nil); err != nil {
			return fmt.Errorf("inception %q: %w", l.name, err)
		}
	}
	return nil
}

// FLOPs implements Layer: the sum over all branch layers.
func (l *Inception) FLOPs(in []int) (int64, error) {
	var total int64
	for _, b := range l.branches {
		cur := in
		for _, lay := range b {
			f, err := lay.FLOPs(cur)
			if err != nil {
				return 0, fmt.Errorf("inception %q/%s: %w", l.name, lay.Name(), err)
			}
			total += f
			cur, err = lay.OutputShape(cur)
			if err != nil {
				return 0, err
			}
		}
	}
	return total, nil
}

// ParamCount implements Layer.
func (l *Inception) ParamCount() int64 {
	var total int64
	for _, b := range l.branches {
		for _, lay := range b {
			total += lay.ParamCount()
		}
	}
	return total
}

// Params implements Layer: branch-major, layer order within branch.
func (l *Inception) Params() []*tensor.Tensor {
	var ps []*tensor.Tensor
	for _, b := range l.branches {
		for _, lay := range b {
			ps = append(ps, lay.Params()...)
		}
	}
	return ps
}

package nn

import (
	"fmt"

	"websnap/internal/tensor"
)

// Inception is GoogLeNet's inception module: several branches of layers run
// in parallel on the same input, and their outputs are concatenated along
// the channel dimension into a single output vector (paper §II.B).
//
// Modeling the module as one composite layer keeps the network a simple
// series of layer executions, which is exactly the view the paper's
// partial-inference partitioning takes.
type Inception struct {
	name     string
	branches [][]Layer
}

var _ Layer = (*Inception)(nil)

// NewInception constructs an inception module from its branches. Every
// branch must contain at least one layer, and every branch output must have
// the same spatial dimensions so the channel concat is well-defined.
func NewInception(name string, branches ...[]Layer) (*Inception, error) {
	if len(branches) == 0 {
		return nil, fmt.Errorf("nn: inception %q: no branches", name)
	}
	for i, b := range branches {
		if len(b) == 0 {
			return nil, fmt.Errorf("nn: inception %q: branch %d is empty", name, i)
		}
	}
	return &Inception{name: name, branches: branches}, nil
}

// Name implements Layer.
func (l *Inception) Name() string { return l.name }

// Type implements Layer.
func (l *Inception) Type() LayerType { return TypeInception }

// Branches returns the module's branches. The returned slices are the live
// internals; callers must not mutate them.
func (l *Inception) Branches() [][]Layer { return l.branches }

func (l *Inception) branchShape(branch []Layer, in []int) ([]int, error) {
	cur := in
	for _, lay := range branch {
		next, err := lay.OutputShape(cur)
		if err != nil {
			return nil, fmt.Errorf("inception %q/%s: %w", l.name, lay.Name(), err)
		}
		cur = next
	}
	return cur, nil
}

// OutputShape implements Layer.
func (l *Inception) OutputShape(in []int) ([]int, error) {
	var oh, ow, totalC int
	for i, b := range l.branches {
		s, err := l.branchShape(b, in)
		if err != nil {
			return nil, err
		}
		if len(s) != 3 {
			return nil, fmt.Errorf("inception %q: branch %d output %v is not [C H W]: %w",
				l.name, i, s, ErrBadShape)
		}
		if i == 0 {
			oh, ow = s[1], s[2]
		} else if s[1] != oh || s[2] != ow {
			return nil, fmt.Errorf("inception %q: branch %d spatial %dx%d != %dx%d: %w",
				l.name, i, s[1], s[2], oh, ow, ErrBadShape)
		}
		totalC += s[0]
	}
	return []int{totalC, oh, ow}, nil
}

// Forward implements Layer: run each branch and concatenate along channels.
func (l *Inception) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	outShape, err := l.OutputShape(in.Shape())
	if err != nil {
		return nil, err
	}
	out, err := tensor.New(outShape...)
	if err != nil {
		return nil, err
	}
	dst := out.Data()
	plane := outShape[1] * outShape[2]
	chOff := 0
	for _, b := range l.branches {
		cur := in
		for _, lay := range b {
			cur, err = lay.Forward(cur)
			if err != nil {
				return nil, fmt.Errorf("inception %q/%s: %w", l.name, lay.Name(), err)
			}
		}
		bc := cur.Dim(0)
		copy(dst[chOff*plane:(chOff+bc)*plane], cur.Data())
		chOff += bc
	}
	return out, nil
}

// FLOPs implements Layer: the sum over all branch layers.
func (l *Inception) FLOPs(in []int) (int64, error) {
	var total int64
	for _, b := range l.branches {
		cur := in
		for _, lay := range b {
			f, err := lay.FLOPs(cur)
			if err != nil {
				return 0, fmt.Errorf("inception %q/%s: %w", l.name, lay.Name(), err)
			}
			total += f
			cur, err = lay.OutputShape(cur)
			if err != nil {
				return 0, err
			}
		}
	}
	return total, nil
}

// ParamCount implements Layer.
func (l *Inception) ParamCount() int64 {
	var total int64
	for _, b := range l.branches {
		for _, lay := range b {
			total += lay.ParamCount()
		}
	}
	return total
}

// Params implements Layer: branch-major, layer order within branch.
func (l *Inception) Params() []*tensor.Tensor {
	var ps []*tensor.Tensor
	for _, b := range l.branches {
		for _, lay := range b {
			ps = append(ps, lay.Params()...)
		}
	}
	return ps
}

package nn

import (
	"websnap/internal/tensor"
)

// ForwardIm2col computes the same convolution as Forward via im2col + GEMM:
// the input is unrolled into a column matrix so the convolution becomes a
// dense [outC, inC·k·k] × [inC·k·k, oh·ow] matrix product with sequential
// memory access. For large layers this trades memory (the column matrix)
// for cache locality.
//
// The result is numerically identical to the direct path when accumulation
// order per output element is the same, which this implementation
// preserves (channels-major, kernel row, kernel column).
func (c *Conv) ForwardIm2col(in *tensor.Tensor) (*tensor.Tensor, error) {
	outShape, err := c.OutputShape(in.Shape())
	if err != nil {
		return nil, err
	}
	oh, ow := outShape[1], outShape[2]
	cols := oh * ow
	rows := c.inC * c.k * c.k
	col := c.buildColumns(in, oh, ow)
	out, err := tensor.New(outShape...)
	if err != nil {
		return nil, err
	}
	c.gemmRows(col, out, rows, cols, 0, c.outC)
	return out, nil
}

// buildColumns unrolls the input into the im2col matrix.
func (c *Conv) buildColumns(in *tensor.Tensor, oh, ow int) []float32 {
	h, w := in.Dim(1), in.Dim(2)
	cols := oh * ow
	rows := c.inC * c.k * c.k
	col := make([]float32, rows*cols)
	src := in.Data()
	r := 0
	for ic := 0; ic < c.inC; ic++ {
		base := ic * h * w
		for ky := 0; ky < c.k; ky++ {
			for kx := 0; kx < c.k; kx++ {
				dst := col[r*cols : (r+1)*cols]
				p := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*c.stride - c.pad + ky
					if iy < 0 || iy >= h {
						p += ow
						continue
					}
					rowBase := base + iy*w
					for ox := 0; ox < ow; ox++ {
						ix := ox*c.stride - c.pad + kx
						if ix >= 0 && ix < w {
							dst[p] = src[rowBase+ix]
						}
						p++
					}
				}
				r++
			}
		}
	}
	return col
}

// gemmRows multiplies weight rows [ocLo, ocHi) against the column matrix.
func (c *Conv) gemmRows(col []float32, out *tensor.Tensor, rows, cols, ocLo, ocHi int) {
	dst := out.Data()
	wt := c.weight.Data()
	bias := c.bias.Data()
	for oc := ocLo; oc < ocHi; oc++ {
		outRow := dst[oc*cols : (oc+1)*cols]
		for p := range outRow {
			outRow[p] = bias[oc]
		}
		wRow := wt[oc*rows : (oc+1)*rows]
		for rr := 0; rr < rows; rr++ {
			wv := wRow[rr]
			if wv == 0 {
				continue
			}
			colRow := col[rr*cols : (rr+1)*cols]
			for p, v := range colRow {
				outRow[p] += wv * v
			}
		}
	}
}

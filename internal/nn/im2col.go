package nn

import (
	"websnap/internal/tensor"
)

// ForwardIm2col computes the same convolution as Forward via im2col +
// GEMM: the input is unrolled into a column matrix so the convolution
// becomes a dense [outC, inC·k·k] × [inC·k·k, oh·ow] matrix product with
// sequential memory access, executed by the shared tensor.Gemm kernel.
// For large layers this trades memory (the column matrix) for cache
// locality.
//
// The result is numerically identical to the direct path when the
// accumulation order per output element is the same, which this
// implementation preserves (channels-major, kernel row, kernel column —
// padding positions contribute exact-zero terms).
func (c *Conv) ForwardIm2col(in *tensor.Tensor) (*tensor.Tensor, error) {
	outShape, err := c.OutputShape(in.Shape())
	if err != nil {
		return nil, err
	}
	oh, ow := outShape[1], outShape[2]
	cols := oh * ow
	rows := c.inC * c.k * c.k
	out, err := tensor.New(outShape...)
	if err != nil {
		return nil, err
	}
	col := tensor.GetBuf(rows * cols)
	c.buildColumns(in, oh, ow, col)
	tensor.Gemm(out.Data(), c.weight.Data(), col, c.bias.Data(), c.outC, rows, cols)
	tensor.PutBuf(col)
	return out, nil
}

// buildColumns unrolls the input into the im2col matrix col, which must
// hold inC·k·k·oh·ow floats. Every position is written — padding
// positions get explicit zeros — so col may be reused scratch.
func (c *Conv) buildColumns(in *tensor.Tensor, oh, ow int, col []float32) {
	h, w := in.Dim(1), in.Dim(2)
	cols := oh * ow
	src := in.Data()
	r := 0
	for ic := 0; ic < c.inC; ic++ {
		base := ic * h * w
		for ky := 0; ky < c.k; ky++ {
			for kx := 0; kx < c.k; kx++ {
				dst := col[r*cols : (r+1)*cols]
				p := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*c.stride - c.pad + ky
					if iy < 0 || iy >= h {
						for e := 0; e < ow; e++ {
							dst[p] = 0
							p++
						}
						continue
					}
					rowBase := base + iy*w
					for ox := 0; ox < ow; ox++ {
						ix := ox*c.stride - c.pad + kx
						if ix >= 0 && ix < w {
							dst[p] = src[rowBase+ix]
						} else {
							dst[p] = 0
						}
						p++
					}
				}
				r++
			}
		}
	}
}

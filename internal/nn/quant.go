package nn

import (
	"fmt"

	"websnap/internal/tensor"
)

// Quantized inference (the catalog's int8 quality tier).
//
// A plan compiled with PrecInt8 executes its Conv and FC steps in int8:
// weights are quantized per output channel with symmetric scales
// (zero-point 0) at plan-compile time, activations per tensor at each
// layer entry with scales calibrated from a deterministic synthetic
// batch, and products accumulate in int32 — exact integer arithmetic, so
// the quantized path is bit-identical across kernels, blocking, and
// worker counts by construction. Every step dequantizes back to float32
// on the way out, so layer boundaries — and therefore every partition cut
// point — carry ordinary float32 tensors and partial inference can split
// a quantized plan anywhere without protocol changes.
//
// Quantization state is owned by the compiled plan, never by the shared
// Layer values: Split() shares layer pointers between the full, front,
// and rear networks, and plan-owned state keeps each network's
// calibration independent of which plan compiled first. For the same
// reason a quantized Inception step compiles private branch programs
// instead of reusing the module's shared float32 branch cache.

// Precision selects a plan's compute precision: the model quality knob
// the partition policy and the webapp catalog expose.
type Precision string

// Supported precisions.
const (
	PrecFloat32 Precision = "float32"
	PrecInt8    Precision = "int8"
)

// ParsePrecision maps user-facing spellings of the quality tier onto a
// Precision. The empty string means the float32 default.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", "float32", "fp32", "full":
		return PrecFloat32, nil
	case "int8", "quantized", "q8":
		return PrecInt8, nil
	}
	return "", fmt.Errorf("nn: unknown precision %q (want float32 or int8)", s)
}

// Valid reports whether p is a supported precision.
func (p Precision) Valid() bool { return p == PrecFloat32 || p == PrecInt8 }

// calibBatch is the number of synthetic inputs a plan's calibration pass
// runs. Activation ranges stabilize after a handful of samples because
// the inputs share one distribution; more samples only slow plan compile.
const calibBatch = 4

// quantSafety multiplies the worst error observed on the calibration
// batch into the end-to-end bound the plan advertises, covering inputs
// the calibration batch did not see.
const quantSafety = 8

// quantStep is the plan-owned quantized kernel attached to one compiled
// step. Exactly one of conv, fc, or inc is set. Until armed (calibration
// scales applied) forward falls through to the float32 layer kernel,
// which is how the calibration passes themselves run.
type quantStep struct {
	armed bool

	conv *Conv
	fc   *FC

	pa       *tensor.PackedAI8 // conv weights, quantized and prepacked
	wq       []int8            // fc weights, quantized flat
	wScale   []float32         // per-output-channel weight scales
	actScale float32           // input activation scale (calibrated)
	deq      []float32         // wScale[o] * actScale
	geom     tensor.ConvGeom
	inVol    int
	bound    float32 // analytic per-step output error bound

	inc      *Inception
	branches []incBranch // private branch programs (plan-owned)
}

// forward executes the step: quantize input, int8 GEMM with int32
// accumulation, dequantize into the float32 destination.
func (q *quantStep) forward(ctx *ExecContext, in, out *tensor.Tensor) error {
	if q.inc != nil {
		for i := range q.branches {
			br := &q.branches[i]
			sub := ctx.sub(br.prog)
			view, err := sub.outView(out, br.off, br.outShape)
			if err != nil {
				return fmt.Errorf("inception %q: %w", q.inc.name, err)
			}
			if err := br.prog.run(sub, in, view, nil); err != nil {
				return fmt.Errorf("inception %q: %w", q.inc.name, err)
			}
		}
		return nil
	}
	if !q.armed {
		if q.conv != nil {
			return q.conv.ForwardCtx(ctx, in, out)
		}
		return q.fc.ForwardCtx(ctx, in, out)
	}
	// Calibrated activation scale, with a dynamic range fallback: an
	// input hotter than anything the calibration batch saw (a rear-net
	// plan fed real cut-point features, say) widens the scale to fit
	// instead of clamping, so quantization error stays bounded by the
	// rounding terms for every input. The fallback is deterministic —
	// MaxAbs of the same input always picks the same scale.
	scale, deq := q.actScale, q.deq
	var tmp []float32
	if am := tensor.MaxAbs(in.Data()); am > scale*127 {
		scale = am / 127
		tmp = tensor.GetBuf(len(q.deq))
		for o, ws := range q.wScale {
			tmp[o] = ws * scale
		}
		deq = tmp
	}
	xq := tensor.GetBufI8(q.inVol)
	tensor.Quantize(xq, in.Data(), scale)
	if q.conv != nil {
		tensor.GemmConvI8(tensor.AsInt32(out.Data()), q.pa, xq, q.geom)
		tensor.DequantizeRows(out.Data(), deq, q.conv.bias.Data(), q.conv.outC, q.geom.Cols())
	} else {
		tensor.GemvI8(out.Data(), q.wq, xq, deq, q.fc.bias.Data(), q.fc.out, q.fc.in)
	}
	tensor.PutBufI8(xq)
	if tmp != nil {
		tensor.PutBuf(tmp)
	}
	return nil
}

// attachQuant walks a compiled program and hangs an (unarmed) quantStep
// on every quantizable step. Inception steps get freshly compiled,
// plan-owned branch programs, recursively attached.
func attachQuant(p *program) error {
	for i := range p.steps {
		st := &p.steps[i]
		if st.skip {
			continue
		}
		switch l := st.layer.(type) {
		case *Conv:
			oh, ow := st.outShape[1], st.outShape[2]
			st.quant = &quantStep{
				conv:  l,
				geom:  l.geom(st.inShape[1], st.inShape[2], oh, ow),
				inVol: tensor.Volume(st.inShape),
			}
		case *FC:
			st.quant = &quantStep{fc: l, inVol: l.in}
		case *Inception:
			qs := &quantStep{inc: l}
			chOff, plane := 0, 0
			for bi, b := range l.branches {
				prog, err := compileProgram(b, st.inShape)
				if err != nil {
					return fmt.Errorf("inception %q branch %d: %w", l.name, bi, err)
				}
				if err := attachQuant(prog); err != nil {
					return err
				}
				plane = prog.outShape[1] * prog.outShape[2]
				qs.branches = append(qs.branches, incBranch{prog: prog, off: chOff * plane, outShape: prog.outShape})
				chOff += prog.outShape[0]
			}
			st.quant = qs
		}
	}
	return nil
}

// armQuant applies the calibrated activation scales: per-channel weight
// quantization, weight prepacking, dequant scale tables, and the analytic
// per-step error bound. rec holds max|input| per step from the
// calibration passes.
func armQuant(p *program, rec map[*progStep]float32) {
	for i := range p.steps {
		st := &p.steps[i]
		q := st.quant
		if q == nil {
			continue
		}
		if q.inc != nil {
			for _, br := range q.branches {
				armQuant(br.prog, rec)
			}
			continue
		}
		q.actScale = rec[st] / 127
		var w []float32
		var m, k int
		if q.conv != nil {
			w = q.conv.weight.Data()
			m, k = q.conv.outC, q.conv.inC*q.conv.k*q.conv.k
		} else {
			w = q.fc.weight.Data()
			m, k = q.fc.out, q.fc.in
		}
		wq := make([]int8, m*k)
		q.wScale = make([]float32, m)
		q.deq = make([]float32, m)
		for o := 0; o < m; o++ {
			row := w[o*k : (o+1)*k]
			ws := tensor.MaxAbs(row) / 127
			q.wScale[o] = ws
			if ws != 0 {
				tensor.Quantize(wq[o*k:(o+1)*k], row, ws)
			}
			q.deq[o] = ws * q.actScale
			// Analytic output bound for channel o: each of the k products
			// w·x carries at most |w|·aS/2 (activation rounding) +
			// |x|max·wS/2 (weight rounding) + wS·aS/4 (cross term) of
			// error, with |x|max = 127·aS the calibrated input range.
			var sumAbsW float32
			for _, v := range row {
				if v < 0 {
					v = -v
				}
				sumAbsW += v
			}
			b := sumAbsW*q.actScale/2 + float32(k)*ws*q.actScale*(127.0/2+0.25)
			if b > q.bound {
				q.bound = b
			}
		}
		if q.conv != nil {
			q.pa = tensor.PackAI8(wq, m, k, k)
		} else {
			q.wq = wq
		}
		q.armed = true
	}
}

// calibInputs builds the deterministic synthetic calibration batch:
// xorshift64*-filled tensors in [-1, 1), the same distribution
// InitWeights assumes, seeded purely by shape so every compile of the
// same plan calibrates identically on every machine.
func calibInputs(shape []int) []*tensor.Tensor {
	vol := tensor.Volume(shape)
	ins := make([]*tensor.Tensor, calibBatch)
	rng := uint64(vol)*2654435761 + 99991
	for i := range ins {
		t, err := tensor.New(shape...)
		if err != nil {
			panic(err) // shape already validated by compileProgram
		}
		d := t.Data()
		for j := range d {
			rng ^= rng >> 12
			rng ^= rng << 25
			rng ^= rng >> 27
			v := rng * 2685821657736338717
			d[j] = float32(int32(v>>40)-1<<23) / (1 << 23)
		}
		ins[i] = t
	}
	return ins
}

// quantizeProgram runs the full calibration pipeline on a compiled
// program: attach quant steps, record activation ranges over float32
// calibration passes, arm the quantized kernels, then measure the
// end-to-end error of the armed program against the float32 reference on
// the same batch. The returned bound is that worst observed error times
// quantSafety.
func quantizeProgram(p *program) (float32, error) {
	if err := attachQuant(p); err != nil {
		return 0, err
	}
	ins := calibInputs(p.inShape)
	rec := make(map[*progStep]float32)
	refs := make([]*tensor.Tensor, len(ins))
	ctx := newExecContext(p)
	ctx.rec = rec
	for i, in := range ins {
		out, err := tensor.New(p.outShape...)
		if err != nil {
			return 0, err
		}
		if err := p.run(ctx, in, out, nil); err != nil {
			return 0, fmt.Errorf("calibration: %w", err)
		}
		refs[i] = out
	}
	ctx.free()
	armQuant(p, rec)
	var maxErr float32
	qctx := newExecContext(p)
	for i, in := range ins {
		out, err := tensor.New(p.outShape...)
		if err != nil {
			return 0, err
		}
		if err := p.run(qctx, in, out, nil); err != nil {
			return 0, fmt.Errorf("calibration (int8 pass): %w", err)
		}
		ref := refs[i].Data()
		for j, v := range out.Data() {
			d := v - ref[j]
			if d < 0 {
				d = -d
			}
			if d > maxErr {
				maxErr = d
			}
		}
	}
	qctx.free()
	return maxErr*quantSafety + 1e-6, nil
}

// QuantStepInfo describes one quantized step for introspection.
type QuantStepInfo struct {
	Name     string  `json:"name"`
	ActScale float32 `json:"actScale"`
	// Bound is the analytic worst-case output error of this step alone,
	// valid while its input stays within the calibrated range.
	Bound float32 `json:"bound"`
}

// QuantInfo describes a quantized plan: the calibrated end-to-end error
// bound (what the chaos soak and the error-bound tests assert against)
// and the per-step scales and bounds.
type QuantInfo struct {
	Precision Precision       `json:"precision"`
	ErrBound  float32         `json:"errBound"`
	Steps     []QuantStepInfo `json:"steps"`
}

func collectQuantSteps(p *program, out []QuantStepInfo) []QuantStepInfo {
	for i := range p.steps {
		st := &p.steps[i]
		q := st.quant
		if q == nil {
			continue
		}
		if q.inc != nil {
			for _, br := range q.branches {
				out = collectQuantSteps(br.prog, out)
			}
			continue
		}
		out = append(out, QuantStepInfo{Name: st.layer.Name(), ActScale: q.actScale, Bound: q.bound})
	}
	return out
}

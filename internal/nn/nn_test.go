package nn

import (
	"bytes"
	"errors"
	"math"
	"runtime"
	"testing"
	"testing/quick"

	"websnap/internal/tensor"
)

func TestConvForwardKnownValues(t *testing.T) {
	// 1 input channel, 1 output channel, 2x2 kernel of ones, stride 1, no
	// pad: output is the sum of each 2x2 window.
	c, err := NewConv("c", 1, 1, 2, 1, 0)
	if err != nil {
		t.Fatalf("NewConv: %v", err)
	}
	c.weight.Fill(1)
	in, _ := tensor.FromSlice([]float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	out, err := c.Forward(in)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	want := []float32{12, 16, 24, 28}
	for i, w := range want {
		if got := out.Data()[i]; got != w {
			t.Errorf("out[%d] = %v, want %v", i, got, w)
		}
	}
}

func TestConvBiasAndPadding(t *testing.T) {
	c, err := NewConv("c", 1, 1, 3, 1, 1)
	if err != nil {
		t.Fatalf("NewConv: %v", err)
	}
	c.weight.Fill(1)
	c.bias.Fill(10)
	in, _ := tensor.FromSlice([]float32{1, 1, 1, 1}, 1, 2, 2)
	out, err := c.Forward(in)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if got := out.Shape(); got[1] != 2 || got[2] != 2 {
		t.Fatalf("padded output shape = %v, want [1 2 2]", got)
	}
	// Every 3x3 window with pad 1 over the all-ones 2x2 input covers
	// exactly the 4 ones.
	for i, v := range out.Data() {
		if v != 14 {
			t.Errorf("out[%d] = %v, want 14 (4 window + 10 bias)", i, v)
		}
	}
}

func TestConvChannelMismatch(t *testing.T) {
	c, _ := NewConv("c", 3, 8, 3, 1, 1)
	in := tensor.MustNew(4, 8, 8)
	if _, err := c.Forward(in); !errors.Is(err, ErrBadShape) {
		t.Errorf("Forward wrong channels err = %v, want ErrBadShape", err)
	}
}

func TestMaxPoolForward(t *testing.T) {
	p, err := NewPool("p", MaxPool, 2, 2, 0)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	in, _ := tensor.FromSlice([]float32{
		1, 2, 5, 6,
		3, 4, 7, 8,
		-1, -2, 0, 0,
		-3, -4, 0, 1,
	}, 1, 4, 4)
	out, err := p.Forward(in)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	want := []float32{4, 8, -1, 1}
	for i, w := range want {
		if out.Data()[i] != w {
			t.Errorf("out[%d] = %v, want %v", i, out.Data()[i], w)
		}
	}
}

func TestMaxPoolAllNegative(t *testing.T) {
	// Regression guard: max over negative values must not return 0.
	p, _ := NewPool("p", MaxPool, 2, 2, 0)
	in, _ := tensor.FromSlice([]float32{-5, -3, -9, -7}, 1, 2, 2)
	out, err := p.Forward(in)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if out.Data()[0] != -3 {
		t.Errorf("max of negatives = %v, want -3", out.Data()[0])
	}
}

func TestAvgPoolForward(t *testing.T) {
	p, _ := NewPool("p", AvgPool, 2, 2, 0)
	in, _ := tensor.FromSlice([]float32{1, 3, 5, 7}, 1, 2, 2)
	out, err := p.Forward(in)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if out.Data()[0] != 4 {
		t.Errorf("avg = %v, want 4", out.Data()[0])
	}
}

func TestPoolCeilMode(t *testing.T) {
	// Caffe ceil-mode: 56 -> 28 with k=3, s=2 (the GoogLeNet pool1 case
	// from Fig 1 would be 112 -> 56).
	p, _ := NewPool("p", MaxPool, 3, 2, 0)
	out, err := p.OutputShape([]int{64, 56, 56})
	if err != nil {
		t.Fatalf("OutputShape: %v", err)
	}
	if out[1] != 28 || out[2] != 28 {
		t.Errorf("ceil-mode output = %v, want [64 28 28]", out)
	}
}

func TestFCForward(t *testing.T) {
	fc, err := NewFC("fc", 3, 2)
	if err != nil {
		t.Fatalf("NewFC: %v", err)
	}
	copy(fc.weight.Data(), []float32{1, 2, 3, 4, 5, 6})
	copy(fc.bias.Data(), []float32{0.5, -0.5})
	in, _ := tensor.FromSlice([]float32{1, 1, 1}, 3)
	out, err := fc.Forward(in)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if out.Data()[0] != 6.5 || out.Data()[1] != 14.5 {
		t.Errorf("fc out = %v, want [6.5 14.5]", out.Data())
	}
}

func TestFCFlattensCHW(t *testing.T) {
	fc, _ := NewFC("fc", 8, 2)
	in := tensor.MustNew(2, 2, 2)
	if _, err := fc.Forward(in); err != nil {
		t.Errorf("FC should accept [2 2 2] input with volume 8: %v", err)
	}
}

func TestReLU(t *testing.T) {
	r := NewReLU("r")
	in, _ := tensor.FromSlice([]float32{-1, 0, 2}, 3)
	out, err := r.Forward(in)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	want := []float32{0, 0, 2}
	for i := range want {
		if out.Data()[i] != want[i] {
			t.Errorf("relu[%d] = %v, want %v", i, out.Data()[i], want[i])
		}
	}
	if in.Data()[0] != -1 {
		t.Error("ReLU must not mutate its input")
	}
}

func TestLRNIdentityWhenAlphaZero(t *testing.T) {
	l, err := NewLRN("l", 5, 0, 0.75)
	if err != nil {
		t.Fatalf("NewLRN: %v", err)
	}
	in := tensor.MustNew(4, 2, 2)
	for i := range in.Data() {
		in.Data()[i] = float32(i)
	}
	out, err := l.Forward(in)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	for i := range in.Data() {
		if out.Data()[i] != in.Data()[i] {
			t.Fatalf("alpha=0 LRN changed element %d: %v -> %v", i, in.Data()[i], out.Data()[i])
		}
	}
}

func TestLRNDampensLargeActivations(t *testing.T) {
	l, _ := NewLRN("l", 3, 1.0, 0.75)
	in := tensor.MustNew(3, 1, 1)
	in.Data()[1] = 100
	out, err := l.Forward(in)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if out.Data()[1] >= 100 {
		t.Errorf("LRN should dampen: got %v", out.Data()[1])
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	s := NewSoftmax("s")
	in, _ := tensor.FromSlice([]float32{1, 2, 3, 4}, 4)
	out, err := s.Forward(in)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	var sum float64
	prev := float32(-1)
	for _, v := range out.Data() {
		sum += float64(v)
		if v <= prev {
			t.Error("softmax must preserve ordering for increasing input")
		}
		prev = v
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Errorf("softmax sum = %v, want 1", sum)
	}
}

func TestSoftmaxLargeValuesStable(t *testing.T) {
	s := NewSoftmax("s")
	in, _ := tensor.FromSlice([]float32{1000, 1001}, 2)
	out, err := s.Forward(in)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	for i, v := range out.Data() {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("softmax[%d] = %v, want finite", i, v)
		}
	}
}

func TestDropoutIsIdentityAtInference(t *testing.T) {
	d := NewDropout("d", 0.5)
	in, _ := tensor.FromSlice([]float32{1, 2, 3}, 3)
	out, err := d.Forward(in)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	for i := range in.Data() {
		if out.Data()[i] != in.Data()[i] {
			t.Fatal("dropout must be identity at inference")
		}
	}
}

func TestInceptionConcatMatchesBranches(t *testing.T) {
	c1, _ := NewConv("b1", 2, 3, 1, 1, 0)
	c2, _ := NewConv("b2", 2, 5, 1, 1, 0)
	for _, c := range []*Conv{c1, c2} {
		for i := range c.weight.Data() {
			c.weight.Data()[i] = float32(i%7) * 0.25
		}
	}
	inc, err := NewInception("inc", []Layer{c1}, []Layer{c2})
	if err != nil {
		t.Fatalf("NewInception: %v", err)
	}
	in := tensor.MustNew(2, 4, 4)
	for i := range in.Data() {
		in.Data()[i] = float32(i) * 0.1
	}
	out, err := inc.Forward(in)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if s := out.Shape(); s[0] != 8 || s[1] != 4 || s[2] != 4 {
		t.Fatalf("inception out shape = %v, want [8 4 4]", s)
	}
	o1, _ := c1.Forward(in)
	o2, _ := c2.Forward(in)
	for i, v := range o1.Data() {
		if out.Data()[i] != v {
			t.Fatalf("branch-1 mismatch at %d", i)
		}
	}
	for i, v := range o2.Data() {
		if out.Data()[o1.Len()+i] != v {
			t.Fatalf("branch-2 mismatch at %d", i)
		}
	}
}

func TestInceptionSpatialMismatch(t *testing.T) {
	c1, _ := NewConv("b1", 2, 3, 1, 1, 0)
	c2, _ := NewConv("b2", 2, 3, 3, 1, 0) // shrinks spatially
	inc, err := NewInception("inc", []Layer{c1}, []Layer{c2})
	if err != nil {
		t.Fatalf("NewInception: %v", err)
	}
	if _, err := inc.OutputShape([]int{2, 4, 4}); !errors.Is(err, ErrBadShape) {
		t.Errorf("spatial mismatch err = %v, want ErrBadShape", err)
	}
}

func tinyNet(t *testing.T) *Network {
	t.Helper()
	in, err := NewInput("data", 2, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	conv, err := NewConv("conv1", 2, 4, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewPool("pool1", MaxPool, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	conv2, err := NewConv("conv2", 4, 6, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	pool2, err := NewPool("pool2", MaxPool, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := NewFC("fc1", 6*2*2, 5)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork("tiny",
		in, conv, NewReLU("relu1"), pool, conv2, NewReLU("relu2"), pool2, fc, NewSoftmax("prob"))
	if err != nil {
		t.Fatal(err)
	}
	net.InitWeights(1234)
	return net
}

func randInput(net *Network, seed int64) *tensor.Tensor {
	in := tensor.MustNew(net.InputShape()...)
	s := uint64(seed)*2654435761 + 1
	for i := range in.Data() {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		in.Data()[i] = float32(s%1000)/500 - 1
	}
	return in
}

func TestNetworkForwardShapes(t *testing.T) {
	net := tinyNet(t)
	out, err := net.Forward(randInput(net, 1))
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if out.Len() != 5 {
		t.Errorf("output len = %d, want 5", out.Len())
	}
	shape, err := net.OutputShape()
	if err != nil || len(shape) != 1 || shape[0] != 5 {
		t.Errorf("OutputShape = %v, %v", shape, err)
	}
}

func TestNetworkValidation(t *testing.T) {
	conv, _ := NewConv("c", 2, 4, 3, 1, 1)
	if _, err := NewNetwork("bad", conv); err == nil {
		t.Error("network without input layer should fail")
	}
	in, _ := NewInput("data", 2, 4, 4)
	fc, _ := NewFC("fc", 999, 2)
	if _, err := NewNetwork("bad2", in, fc); err == nil {
		t.Error("shape-incompatible network should fail")
	}
	in2, _ := NewInput("data", 2, 4, 4)
	r1 := NewReLU("same")
	r2 := NewReLU("same")
	if _, err := NewNetwork("bad3", in2, r1, r2); err == nil {
		t.Error("duplicate layer names should fail")
	}
}

func TestDescribeConsistency(t *testing.T) {
	net := tinyNet(t)
	infos, err := net.Describe()
	if err != nil {
		t.Fatalf("Describe: %v", err)
	}
	if len(infos) != net.NumLayers() {
		t.Fatalf("Describe len = %d, want %d", len(infos), net.NumLayers())
	}
	for i := 1; i < len(infos); i++ {
		prev := infos[i-1].OutputShape
		cur := infos[i].InputShape
		if tensor.Volume(prev) != tensor.Volume(cur) {
			t.Errorf("layer %d input volume != layer %d output volume", i, i-1)
		}
	}
	for _, li := range infos {
		if li.OutputBytes != 4*int64(tensor.Volume(li.OutputShape)) {
			t.Errorf("layer %s OutputBytes inconsistent", li.Name)
		}
		if li.FLOPs < 0 || li.ParamCount < 0 {
			t.Errorf("layer %s negative accounting", li.Name)
		}
	}
}

// The core partial-inference invariant: splitting the network at any point
// and running front-then-rear must compute the same function as a full
// forward pass (paper §III.B.2).
func TestSplitEquivalenceAllPoints(t *testing.T) {
	net := tinyNet(t)
	in := randInput(net, 7)
	full, err := net.Forward(in)
	if err != nil {
		t.Fatalf("full forward: %v", err)
	}
	for k := 0; k < net.NumLayers()-1; k++ {
		front, rear, err := net.Split(k)
		if err != nil {
			t.Fatalf("Split(%d): %v", k, err)
		}
		feat, err := front.Forward(in)
		if err != nil {
			t.Fatalf("front(%d): %v", k, err)
		}
		if rs := rear.InputShape(); tensor.Volume(rs) == feat.Len() && len(rs) != feat.Rank() {
			feat, err = feat.Reshape(rs...)
			if err != nil {
				t.Fatalf("reshape feature at %d: %v", k, err)
			}
		}
		got, err := rear.Forward(feat)
		if err != nil {
			t.Fatalf("rear(%d): %v", k, err)
		}
		if got.Len() != full.Len() {
			t.Fatalf("split %d: output len %d != %d", k, got.Len(), full.Len())
		}
		for i := range full.Data() {
			if d := math.Abs(float64(got.Data()[i] - full.Data()[i])); d > 1e-5 {
				t.Fatalf("split %d: output[%d] differs by %g", k, i, d)
			}
		}
	}
}

func TestSplitBounds(t *testing.T) {
	net := tinyNet(t)
	if _, _, err := net.Split(-1); !errors.Is(err, ErrBadSplit) {
		t.Errorf("Split(-1) err = %v, want ErrBadSplit", err)
	}
	if _, _, err := net.Split(net.NumLayers() - 1); !errors.Is(err, ErrBadSplit) {
		t.Errorf("Split(last) err = %v, want ErrBadSplit", err)
	}
}

func TestForwardRangeBounds(t *testing.T) {
	net := tinyNet(t)
	in := randInput(net, 3)
	if _, err := net.ForwardRange(in, 3, 2); !errors.Is(err, ErrBadSplit) {
		t.Errorf("reversed range err = %v, want ErrBadSplit", err)
	}
	out, err := net.ForwardRange(in, 0, 0)
	if err != nil {
		t.Fatalf("empty range: %v", err)
	}
	out.Data()[0] = 12345
	if in.Data()[0] == 12345 {
		t.Error("empty-range forward must return a copy, not alias the input")
	}
}

func TestPartitionPoints(t *testing.T) {
	net := tinyNet(t)
	pts, err := net.PartitionPoints()
	if err != nil {
		t.Fatalf("PartitionPoints: %v", err)
	}
	if len(pts) == 0 || pts[0].Label != "Input" {
		t.Fatalf("first point = %+v, want Input", pts)
	}
	labels := map[string]bool{}
	for _, p := range pts {
		if labels[p.Label] {
			t.Errorf("duplicate label %q", p.Label)
		}
		labels[p.Label] = true
		if p.FeatureBytes <= 0 {
			t.Errorf("point %q has non-positive feature bytes", p.Label)
		}
	}
	for _, want := range []string{"1st_conv", "1st_pool", "2nd_conv", "2nd_pool"} {
		if !labels[want] {
			t.Errorf("missing expected partition point %q", want)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	net := tinyNet(t)
	data, err := EncodeSpec(net)
	if err != nil {
		t.Fatalf("EncodeSpec: %v", err)
	}
	got, err := DecodeSpec(data)
	if err != nil {
		t.Fatalf("DecodeSpec: %v", err)
	}
	if got.NumLayers() != net.NumLayers() {
		t.Fatalf("layer count %d != %d", got.NumLayers(), net.NumLayers())
	}
	if got.TotalParams() != net.TotalParams() {
		t.Fatalf("params %d != %d", got.TotalParams(), net.TotalParams())
	}
	for i, l := range got.Layers() {
		if l.Type() != net.Layers()[i].Type() || l.Name() != net.Layers()[i].Name() {
			t.Errorf("layer %d: %s/%s != %s/%s", i, l.Type(), l.Name(),
				net.Layers()[i].Type(), net.Layers()[i].Name())
		}
	}
}

func TestWeightsRoundTrip(t *testing.T) {
	net := tinyNet(t)
	var buf bytes.Buffer
	if err := net.EncodeWeights(&buf); err != nil {
		t.Fatalf("EncodeWeights: %v", err)
	}
	wantLen := 8 + 4*net.TotalParams()
	if int64(buf.Len()) != wantLen {
		t.Fatalf("weight blob %d bytes, want %d", buf.Len(), wantLen)
	}
	spec, err := net.Spec()
	if err != nil {
		t.Fatal(err)
	}
	clone, err := Build(spec)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := clone.DecodeWeights(&buf); err != nil {
		t.Fatalf("DecodeWeights: %v", err)
	}
	in := randInput(net, 11)
	a, err := net.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := clone.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data() {
		if a.Data()[i] != b.Data()[i] {
			t.Fatalf("round-tripped network diverges at output %d", i)
		}
	}
}

func TestWeightsDecodeErrors(t *testing.T) {
	net := tinyNet(t)
	if err := net.DecodeWeights(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("truncated header should fail")
	}
	bad := make([]byte, 8)
	if err := net.DecodeWeights(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic should fail")
	}
	var buf bytes.Buffer
	if err := net.EncodeWeights(&buf); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()/2]
	if err := net.DecodeWeights(bytes.NewReader(truncated)); err == nil {
		t.Error("truncated body should fail")
	}
}

func TestInitWeightsDeterministic(t *testing.T) {
	a := tinyNet(t)
	b := tinyNet(t)
	for i, l := range a.Layers() {
		bp := b.Layers()[i].Params()
		for j, p := range l.Params() {
			for k := range p.Data() {
				if p.Data()[k] != bp[j].Data()[k] {
					t.Fatalf("weights differ at layer %d param %d idx %d", i, j, k)
				}
			}
		}
	}
	c := tinyNet(t)
	c.InitWeights(999)
	same := true
	p := a.Layers()[1].Params()[0].Data()
	q := c.Layers()[1].Params()[0].Data()
	for i := range p {
		if p[i] != q[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should produce different weights")
	}
}

// TestConvParallelMatchesSequential: the fan-out across output channels
// must be bit-identical to the single-threaded path.
func TestConvParallelMatchesSequential(t *testing.T) {
	// Big enough to cross parallelThreshold: 2*3*3*32*64*32*32 ≈ 38 MFLOP.
	c, err := NewConv("c", 32, 64, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.weight.Data() {
		c.weight.Data()[i] = float32(i%13)*0.1 - 0.6
	}
	in := tensor.MustNew(32, 32, 32)
	for i := range in.Data() {
		in.Data()[i] = float32(i%29)*0.05 - 0.7
	}
	fl, err := c.FLOPs(in.Shape())
	if err != nil {
		t.Fatal(err)
	}
	if fl <= parallelThreshold {
		t.Fatalf("test layer too small to exercise the parallel path (%d FLOPs)", fl)
	}
	// Force multiple workers even on single-CPU machines.
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	parallel, err := c.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	sequential := tensor.MustNew(parallel.Shape()...)
	c.forwardChannels(in, sequential, 0, 64)
	for i := range parallel.Data() {
		if parallel.Data()[i] != sequential.Data()[i] {
			t.Fatalf("parallel and sequential conv differ at %d", i)
		}
	}
}

// Property: for random valid conv geometries, FLOPs is exactly
// 2*k*k*inC*outVolume and the forward output matches OutputShape.
func TestQuickConvAccounting(t *testing.T) {
	f := func(inC, outC, k, size uint8) bool {
		ic := int(inC%3) + 1
		oc := int(outC%4) + 1
		kk := int(k%3) + 1
		sz := int(size%5) + kk // ensure input >= kernel
		c, err := NewConv("c", ic, oc, kk, 1, 0)
		if err != nil {
			return false
		}
		in := tensor.MustNew(ic, sz, sz)
		out, err := c.Forward(in)
		if err != nil {
			return false
		}
		wantShape, err := c.OutputShape(in.Shape())
		if err != nil {
			return false
		}
		if !tensor.SameShape(out, tensor.MustNew(wantShape...)) {
			return false
		}
		fl, err := c.FLOPs(in.Shape())
		if err != nil {
			return false
		}
		return fl == int64(2*kk*kk*ic)*int64(tensor.Volume(wantShape))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestForwardBatchMatchesForward(t *testing.T) {
	net := tinyNet(t)
	ins := make([]*tensor.Tensor, 3)
	for i := range ins {
		ins[i] = randInput(net, int64(i+1))
	}
	outs, err := net.ForwardBatch(ins)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range ins {
		want, err := net.Forward(in)
		if err != nil {
			t.Fatal(err)
		}
		got := outs[i].Data()
		for j, w := range want.Data() {
			if got[j] != w {
				t.Fatalf("batch member %d element %d: %v != %v", i, j, got[j], w)
			}
		}
	}
	if _, err := net.ForwardBatch(nil); err == nil {
		t.Error("empty batch should error")
	}
}

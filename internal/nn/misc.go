package nn

import (
	"fmt"
	"math"

	"websnap/internal/tensor"
)

// Input marks the network's input layer and validates the expected shape.
// It performs no computation; per the paper, the input layer receives the
// user's data and passes it on as a vector.
type Input struct {
	name  string
	shape []int
}

var _ Layer = (*Input)(nil)

// NewInput constructs an input layer expecting the given [C,H,W] shape.
func NewInput(name string, shape ...int) (*Input, error) {
	if _, _, _, err := shapeCHW(shape); err != nil {
		return nil, fmt.Errorf("nn: input %q: %w", name, err)
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Input{name: name, shape: s}, nil
}

// Name implements Layer.
func (l *Input) Name() string { return l.name }

// Type implements Layer.
func (l *Input) Type() LayerType { return TypeInput }

// ExpectedShape returns the declared input shape.
func (l *Input) ExpectedShape() []int {
	s := make([]int, len(l.shape))
	copy(s, l.shape)
	return s
}

// OutputShape implements Layer.
func (l *Input) OutputShape(in []int) ([]int, error) {
	if len(in) != len(l.shape) {
		return nil, fmt.Errorf("input %q: %w: got %v, want %v", l.name, ErrBadShape, in, l.shape)
	}
	for i := range in {
		if in[i] != l.shape[i] {
			return nil, fmt.Errorf("input %q: %w: got %v, want %v", l.name, ErrBadShape, in, l.shape)
		}
	}
	return l.ExpectedShape(), nil
}

// Forward implements Layer: validate the shape and hand back a copy.
func (l *Input) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	return forwardStandalone(l, in)
}

// Traits implements Layer: pure validation, elided from compiled plans
// (the plan validates the input shape once up front).
func (l *Input) Traits(in []int) (StepTraits, error) {
	return StepTraits{InPlace: true, Identity: true}, nil
}

// ForwardCtx implements Layer.
func (l *Input) ForwardCtx(_ *ExecContext, in, out *tensor.Tensor) error {
	if out != in {
		copy(out.Data(), in.Data())
	}
	return nil
}

// FLOPs implements Layer.
func (l *Input) FLOPs(in []int) (int64, error) { return 0, nil }

// ParamCount implements Layer.
func (l *Input) ParamCount() int64 { return 0 }

// Params implements Layer.
func (l *Input) Params() []*tensor.Tensor { return nil }

// FC is a fully-connected (inner product) layer: each neuron computes the
// weighted sum of all inputs. Any [C,H,W] input is implicitly flattened.
type FC struct {
	name string
	in   int
	out  int
	// weight shape: [out, in]; bias shape: [out].
	weight *tensor.Tensor
	bias   *tensor.Tensor
}

var _ Layer = (*FC)(nil)

// NewFC constructs a fully-connected layer with zeroed parameters.
func NewFC(name string, in, out int) (*FC, error) {
	if in <= 0 || out <= 0 {
		return nil, fmt.Errorf("nn: fc %q: invalid geometry in=%d out=%d", name, in, out)
	}
	w, err := tensor.New(out, in)
	if err != nil {
		return nil, err
	}
	b, err := tensor.New(out)
	if err != nil {
		return nil, err
	}
	return &FC{name: name, in: in, out: out, weight: w, bias: b}, nil
}

// Name implements Layer.
func (l *FC) Name() string { return l.name }

// Type implements Layer.
func (l *FC) Type() LayerType { return TypeFC }

// Geometry returns (in, out).
func (l *FC) Geometry() (in, out int) { return l.in, l.out }

// OutputShape implements Layer.
func (l *FC) OutputShape(in []int) ([]int, error) {
	if tensor.Volume(in) != l.in {
		return nil, fmt.Errorf("fc %q: %w: input volume %d, want %d", l.name, ErrBadShape, tensor.Volume(in), l.in)
	}
	return []int{l.out}, nil
}

// Forward implements Layer via the standalone shim.
func (l *FC) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	return forwardStandalone(l, in)
}

// Traits implements Layer.
func (l *FC) Traits(in []int) (StepTraits, error) {
	return StepTraits{Algo: "gemv"}, nil
}

// ForwardCtx implements Layer: the inner product is the shared GEMM
// kernel's n==1 matrix-vector path (any [C,H,W] input is implicitly
// flattened by reading its storage directly).
func (l *FC) ForwardCtx(_ *ExecContext, in, out *tensor.Tensor) error {
	tensor.Gemm(out.Data(), l.weight.Data(), in.Data(), l.bias.Data(), l.out, l.in, 1)
	return nil
}

// FLOPs implements Layer.
func (l *FC) FLOPs(in []int) (int64, error) {
	if _, err := l.OutputShape(in); err != nil {
		return 0, err
	}
	return 2 * int64(l.in) * int64(l.out), nil
}

// ParamCount implements Layer.
func (l *FC) ParamCount() int64 { return int64(l.in)*int64(l.out) + int64(l.out) }

// Params implements Layer.
func (l *FC) Params() []*tensor.Tensor { return []*tensor.Tensor{l.weight, l.bias} }

// ReLU applies max(0, x) elementwise.
type ReLU struct {
	name string
}

var _ Layer = (*ReLU)(nil)

// NewReLU constructs a ReLU layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name implements Layer.
func (l *ReLU) Name() string { return l.name }

// Type implements Layer.
func (l *ReLU) Type() LayerType { return TypeReLU }

// OutputShape implements Layer.
func (l *ReLU) OutputShape(in []int) ([]int, error) {
	out := make([]int, len(in))
	copy(out, in)
	return out, nil
}

// Forward implements Layer via the standalone shim.
func (l *ReLU) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	return forwardStandalone(l, in)
}

// Traits implements Layer.
func (l *ReLU) Traits(in []int) (StepTraits, error) {
	return StepTraits{InPlace: true}, nil
}

// ForwardCtx implements Layer. Alias-safe: each element is read before
// its slot is written.
func (l *ReLU) ForwardCtx(_ *ExecContext, in, out *tensor.Tensor) error {
	src := in.Data()
	dst := out.Data()
	for i, v := range src {
		if v < 0 {
			dst[i] = 0
		} else {
			dst[i] = v
		}
	}
	return nil
}

// FLOPs implements Layer.
func (l *ReLU) FLOPs(in []int) (int64, error) { return int64(tensor.Volume(in)), nil }

// ParamCount implements Layer.
func (l *ReLU) ParamCount() int64 { return 0 }

// Params implements Layer.
func (l *ReLU) Params() []*tensor.Tensor { return nil }

// LRN is local response normalization across channels (Krizhevsky-style),
// used by GoogLeNet and the Levi–Hassner age/gender networks.
type LRN struct {
	name      string
	localSize int
	alpha     float64
	beta      float64
}

var _ Layer = (*LRN)(nil)

// NewLRN constructs an LRN layer.
func NewLRN(name string, localSize int, alpha, beta float64) (*LRN, error) {
	if localSize <= 0 || localSize%2 == 0 {
		return nil, fmt.Errorf("nn: lrn %q: local size must be odd and positive, got %d", name, localSize)
	}
	return &LRN{name: name, localSize: localSize, alpha: alpha, beta: beta}, nil
}

// Name implements Layer.
func (l *LRN) Name() string { return l.name }

// Type implements Layer.
func (l *LRN) Type() LayerType { return TypeLRN }

// Settings returns (localSize, alpha, beta).
func (l *LRN) Settings() (int, float64, float64) { return l.localSize, l.alpha, l.beta }

// OutputShape implements Layer.
func (l *LRN) OutputShape(in []int) ([]int, error) {
	if _, _, _, err := shapeCHW(in); err != nil {
		return nil, fmt.Errorf("lrn %q: %w", l.name, err)
	}
	out := make([]int, len(in))
	copy(out, in)
	return out, nil
}

// Forward implements Layer via the standalone shim.
func (l *LRN) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	return forwardStandalone(l, in)
}

// Traits implements Layer: in-place with a C-float scratch column (the
// channel window must read pre-normalization values even when out
// aliases in).
func (l *LRN) Traits(in []int) (StepTraits, error) {
	if _, _, _, err := shapeCHW(in); err != nil {
		return StepTraits{}, fmt.Errorf("lrn %q: %w", l.name, err)
	}
	return StepTraits{InPlace: true, ScratchFloats: in[0]}, nil
}

// ForwardCtx implements Layer. For each spatial position the channel
// column is copied to scratch first, so normalization reads original
// values regardless of aliasing; values and accumulation order match the
// pre-plan implementation exactly.
func (l *LRN) ForwardCtx(ctx *ExecContext, in, out *tensor.Tensor) error {
	c, h, w := in.Dim(0), in.Dim(1), in.Dim(2)
	src := in.Data()
	dst := out.Data()
	column := ctx.Scratch(c)
	half := l.localSize / 2
	plane := h * w
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			off := y*w + x
			for ch := 0; ch < c; ch++ {
				column[ch] = src[ch*plane+off]
			}
			for ch := 0; ch < c; ch++ {
				var sum float64
				lo := ch - half
				if lo < 0 {
					lo = 0
				}
				hi := ch + half
				if hi >= c {
					hi = c - 1
				}
				for j := lo; j <= hi; j++ {
					v := float64(column[j])
					sum += v * v
				}
				scale := math.Pow(1+l.alpha/float64(l.localSize)*sum, -l.beta)
				dst[ch*plane+off] = float32(float64(column[ch]) * scale)
			}
		}
	}
	return nil
}

// FLOPs implements Layer: roughly 2 ops per neighbor plus the power.
func (l *LRN) FLOPs(in []int) (int64, error) {
	return int64(tensor.Volume(in)) * int64(2*l.localSize+2), nil
}

// ParamCount implements Layer.
func (l *LRN) ParamCount() int64 { return 0 }

// Params implements Layer.
func (l *LRN) Params() []*tensor.Tensor { return nil }

// Dropout is an identity at inference time (the paper offloads only the
// inference phase); it exists so architectures match their training-time
// descriptions layer-for-layer.
type Dropout struct {
	name  string
	ratio float64
}

var _ Layer = (*Dropout)(nil)

// NewDropout constructs a dropout layer with the given training-time ratio.
func NewDropout(name string, ratio float64) *Dropout {
	return &Dropout{name: name, ratio: ratio}
}

// Name implements Layer.
func (l *Dropout) Name() string { return l.name }

// Type implements Layer.
func (l *Dropout) Type() LayerType { return TypeDropout }

// Ratio returns the training-time drop ratio.
func (l *Dropout) Ratio() float64 { return l.ratio }

// OutputShape implements Layer.
func (l *Dropout) OutputShape(in []int) ([]int, error) {
	out := make([]int, len(in))
	copy(out, in)
	return out, nil
}

// Forward implements Layer. Inference dropout is the identity, so the
// input is returned unchanged — no clone, no allocation. Callers that
// need an isolated copy (there are none in this repo: Network always
// copy-guards its final output) must Clone explicitly.
func (l *Dropout) Forward(in *tensor.Tensor) (*tensor.Tensor, error) { return in, nil }

// Traits implements Layer: identity, elided from compiled plans.
func (l *Dropout) Traits(in []int) (StepTraits, error) {
	return StepTraits{InPlace: true, Identity: true}, nil
}

// ForwardCtx implements Layer.
func (l *Dropout) ForwardCtx(_ *ExecContext, in, out *tensor.Tensor) error {
	if out != in {
		copy(out.Data(), in.Data())
	}
	return nil
}

// FLOPs implements Layer.
func (l *Dropout) FLOPs(in []int) (int64, error) { return 0, nil }

// ParamCount implements Layer.
func (l *Dropout) ParamCount() int64 { return 0 }

// Params implements Layer.
func (l *Dropout) Params() []*tensor.Tensor { return nil }

// Softmax turns the final scores into a probability distribution over the
// output labels.
type Softmax struct {
	name string
}

var _ Layer = (*Softmax)(nil)

// NewSoftmax constructs a softmax layer.
func NewSoftmax(name string) *Softmax { return &Softmax{name: name} }

// Name implements Layer.
func (l *Softmax) Name() string { return l.name }

// Type implements Layer.
func (l *Softmax) Type() LayerType { return TypeSoftmax }

// OutputShape implements Layer.
func (l *Softmax) OutputShape(in []int) ([]int, error) {
	out := make([]int, len(in))
	copy(out, in)
	return out, nil
}

// Forward implements Layer via the standalone shim.
func (l *Softmax) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	return forwardStandalone(l, in)
}

// Traits implements Layer.
func (l *Softmax) Traits(in []int) (StepTraits, error) {
	return StepTraits{InPlace: true}, nil
}

// ForwardCtx implements Layer. Alias-safe: the max is taken before any
// write, and each element is read before its slot is written.
func (l *Softmax) ForwardCtx(_ *ExecContext, in, out *tensor.Tensor) error {
	src := in.Data()
	dst := out.Data()
	if len(src) == 0 {
		return nil
	}
	maxV := src[0]
	for _, v := range src[1:] {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for i, v := range src {
		e := math.Exp(float64(v - maxV))
		dst[i] = float32(e)
		sum += e
	}
	if sum > 0 {
		inv := float32(1 / sum)
		for i := range dst {
			dst[i] *= inv
		}
	}
	return nil
}

// FLOPs implements Layer.
func (l *Softmax) FLOPs(in []int) (int64, error) { return 3 * int64(tensor.Volume(in)), nil }

// ParamCount implements Layer.
func (l *Softmax) ParamCount() int64 { return 0 }

// Params implements Layer.
func (l *Softmax) Params() []*tensor.Tensor { return nil }

package nn

import (
	"fmt"
	"math"

	"websnap/internal/tensor"
)

// Input marks the network's input layer and validates the expected shape.
// It performs no computation; per the paper, the input layer receives the
// user's data and passes it on as a vector.
type Input struct {
	name  string
	shape []int
}

var _ Layer = (*Input)(nil)

// NewInput constructs an input layer expecting the given [C,H,W] shape.
func NewInput(name string, shape ...int) (*Input, error) {
	if _, _, _, err := shapeCHW(shape); err != nil {
		return nil, fmt.Errorf("nn: input %q: %w", name, err)
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Input{name: name, shape: s}, nil
}

// Name implements Layer.
func (l *Input) Name() string { return l.name }

// Type implements Layer.
func (l *Input) Type() LayerType { return TypeInput }

// ExpectedShape returns the declared input shape.
func (l *Input) ExpectedShape() []int {
	s := make([]int, len(l.shape))
	copy(s, l.shape)
	return s
}

// OutputShape implements Layer.
func (l *Input) OutputShape(in []int) ([]int, error) {
	if len(in) != len(l.shape) {
		return nil, fmt.Errorf("input %q: %w: got %v, want %v", l.name, ErrBadShape, in, l.shape)
	}
	for i := range in {
		if in[i] != l.shape[i] {
			return nil, fmt.Errorf("input %q: %w: got %v, want %v", l.name, ErrBadShape, in, l.shape)
		}
	}
	return l.ExpectedShape(), nil
}

// Forward implements Layer.
func (l *Input) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	if _, err := l.OutputShape(in.Shape()); err != nil {
		return nil, err
	}
	return in.Clone(), nil
}

// FLOPs implements Layer.
func (l *Input) FLOPs(in []int) (int64, error) { return 0, nil }

// ParamCount implements Layer.
func (l *Input) ParamCount() int64 { return 0 }

// Params implements Layer.
func (l *Input) Params() []*tensor.Tensor { return nil }

// FC is a fully-connected (inner product) layer: each neuron computes the
// weighted sum of all inputs. Any [C,H,W] input is implicitly flattened.
type FC struct {
	name string
	in   int
	out  int
	// weight shape: [out, in]; bias shape: [out].
	weight *tensor.Tensor
	bias   *tensor.Tensor
}

var _ Layer = (*FC)(nil)

// NewFC constructs a fully-connected layer with zeroed parameters.
func NewFC(name string, in, out int) (*FC, error) {
	if in <= 0 || out <= 0 {
		return nil, fmt.Errorf("nn: fc %q: invalid geometry in=%d out=%d", name, in, out)
	}
	w, err := tensor.New(out, in)
	if err != nil {
		return nil, err
	}
	b, err := tensor.New(out)
	if err != nil {
		return nil, err
	}
	return &FC{name: name, in: in, out: out, weight: w, bias: b}, nil
}

// Name implements Layer.
func (l *FC) Name() string { return l.name }

// Type implements Layer.
func (l *FC) Type() LayerType { return TypeFC }

// Geometry returns (in, out).
func (l *FC) Geometry() (in, out int) { return l.in, l.out }

// OutputShape implements Layer.
func (l *FC) OutputShape(in []int) ([]int, error) {
	if tensor.Volume(in) != l.in {
		return nil, fmt.Errorf("fc %q: %w: input volume %d, want %d", l.name, ErrBadShape, tensor.Volume(in), l.in)
	}
	return []int{l.out}, nil
}

// Forward implements Layer.
func (l *FC) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	if _, err := l.OutputShape(in.Shape()); err != nil {
		return nil, err
	}
	out, err := tensor.New(l.out)
	if err != nil {
		return nil, err
	}
	src := in.Data()
	dst := out.Data()
	wt := l.weight.Data()
	bias := l.bias.Data()
	for o := 0; o < l.out; o++ {
		sum := bias[o]
		row := wt[o*l.in : (o+1)*l.in]
		for i, v := range src {
			sum += v * row[i]
		}
		dst[o] = sum
	}
	return out, nil
}

// FLOPs implements Layer.
func (l *FC) FLOPs(in []int) (int64, error) {
	if _, err := l.OutputShape(in); err != nil {
		return 0, err
	}
	return 2 * int64(l.in) * int64(l.out), nil
}

// ParamCount implements Layer.
func (l *FC) ParamCount() int64 { return int64(l.in)*int64(l.out) + int64(l.out) }

// Params implements Layer.
func (l *FC) Params() []*tensor.Tensor { return []*tensor.Tensor{l.weight, l.bias} }

// ReLU applies max(0, x) elementwise.
type ReLU struct {
	name string
}

var _ Layer = (*ReLU)(nil)

// NewReLU constructs a ReLU layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name implements Layer.
func (l *ReLU) Name() string { return l.name }

// Type implements Layer.
func (l *ReLU) Type() LayerType { return TypeReLU }

// OutputShape implements Layer.
func (l *ReLU) OutputShape(in []int) ([]int, error) {
	out := make([]int, len(in))
	copy(out, in)
	return out, nil
}

// Forward implements Layer.
func (l *ReLU) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	out := in.Clone()
	d := out.Data()
	for i, v := range d {
		if v < 0 {
			d[i] = 0
		}
	}
	return out, nil
}

// FLOPs implements Layer.
func (l *ReLU) FLOPs(in []int) (int64, error) { return int64(tensor.Volume(in)), nil }

// ParamCount implements Layer.
func (l *ReLU) ParamCount() int64 { return 0 }

// Params implements Layer.
func (l *ReLU) Params() []*tensor.Tensor { return nil }

// LRN is local response normalization across channels (Krizhevsky-style),
// used by GoogLeNet and the Levi–Hassner age/gender networks.
type LRN struct {
	name      string
	localSize int
	alpha     float64
	beta      float64
}

var _ Layer = (*LRN)(nil)

// NewLRN constructs an LRN layer.
func NewLRN(name string, localSize int, alpha, beta float64) (*LRN, error) {
	if localSize <= 0 || localSize%2 == 0 {
		return nil, fmt.Errorf("nn: lrn %q: local size must be odd and positive, got %d", name, localSize)
	}
	return &LRN{name: name, localSize: localSize, alpha: alpha, beta: beta}, nil
}

// Name implements Layer.
func (l *LRN) Name() string { return l.name }

// Type implements Layer.
func (l *LRN) Type() LayerType { return TypeLRN }

// Settings returns (localSize, alpha, beta).
func (l *LRN) Settings() (int, float64, float64) { return l.localSize, l.alpha, l.beta }

// OutputShape implements Layer.
func (l *LRN) OutputShape(in []int) ([]int, error) {
	if _, _, _, err := shapeCHW(in); err != nil {
		return nil, fmt.Errorf("lrn %q: %w", l.name, err)
	}
	out := make([]int, len(in))
	copy(out, in)
	return out, nil
}

// Forward implements Layer.
func (l *LRN) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	if _, err := l.OutputShape(in.Shape()); err != nil {
		return nil, err
	}
	c, h, w := in.Dim(0), in.Dim(1), in.Dim(2)
	out := in.Clone()
	src := in.Data()
	dst := out.Data()
	half := l.localSize / 2
	plane := h * w
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			off := y*w + x
			for ch := 0; ch < c; ch++ {
				var sum float64
				lo := ch - half
				if lo < 0 {
					lo = 0
				}
				hi := ch + half
				if hi >= c {
					hi = c - 1
				}
				for j := lo; j <= hi; j++ {
					v := float64(src[j*plane+off])
					sum += v * v
				}
				scale := math.Pow(1+l.alpha/float64(l.localSize)*sum, -l.beta)
				dst[ch*plane+off] = float32(float64(src[ch*plane+off]) * scale)
			}
		}
	}
	return out, nil
}

// FLOPs implements Layer: roughly 2 ops per neighbor plus the power.
func (l *LRN) FLOPs(in []int) (int64, error) {
	return int64(tensor.Volume(in)) * int64(2*l.localSize+2), nil
}

// ParamCount implements Layer.
func (l *LRN) ParamCount() int64 { return 0 }

// Params implements Layer.
func (l *LRN) Params() []*tensor.Tensor { return nil }

// Dropout is an identity at inference time (the paper offloads only the
// inference phase); it exists so architectures match their training-time
// descriptions layer-for-layer.
type Dropout struct {
	name  string
	ratio float64
}

var _ Layer = (*Dropout)(nil)

// NewDropout constructs a dropout layer with the given training-time ratio.
func NewDropout(name string, ratio float64) *Dropout {
	return &Dropout{name: name, ratio: ratio}
}

// Name implements Layer.
func (l *Dropout) Name() string { return l.name }

// Type implements Layer.
func (l *Dropout) Type() LayerType { return TypeDropout }

// Ratio returns the training-time drop ratio.
func (l *Dropout) Ratio() float64 { return l.ratio }

// OutputShape implements Layer.
func (l *Dropout) OutputShape(in []int) ([]int, error) {
	out := make([]int, len(in))
	copy(out, in)
	return out, nil
}

// Forward implements Layer.
func (l *Dropout) Forward(in *tensor.Tensor) (*tensor.Tensor, error) { return in.Clone(), nil }

// FLOPs implements Layer.
func (l *Dropout) FLOPs(in []int) (int64, error) { return 0, nil }

// ParamCount implements Layer.
func (l *Dropout) ParamCount() int64 { return 0 }

// Params implements Layer.
func (l *Dropout) Params() []*tensor.Tensor { return nil }

// Softmax turns the final scores into a probability distribution over the
// output labels.
type Softmax struct {
	name string
}

var _ Layer = (*Softmax)(nil)

// NewSoftmax constructs a softmax layer.
func NewSoftmax(name string) *Softmax { return &Softmax{name: name} }

// Name implements Layer.
func (l *Softmax) Name() string { return l.name }

// Type implements Layer.
func (l *Softmax) Type() LayerType { return TypeSoftmax }

// OutputShape implements Layer.
func (l *Softmax) OutputShape(in []int) ([]int, error) {
	out := make([]int, len(in))
	copy(out, in)
	return out, nil
}

// Forward implements Layer.
func (l *Softmax) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	out := in.Clone()
	d := out.Data()
	if len(d) == 0 {
		return out, nil
	}
	maxV := d[0]
	for _, v := range d[1:] {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for i, v := range d {
		e := math.Exp(float64(v - maxV))
		d[i] = float32(e)
		sum += e
	}
	if sum > 0 {
		inv := float32(1 / sum)
		for i := range d {
			d[i] *= inv
		}
	}
	return out, nil
}

// FLOPs implements Layer.
func (l *Softmax) FLOPs(in []int) (int64, error) { return 3 * int64(tensor.Volume(in)), nil }

// ParamCount implements Layer.
func (l *Softmax) ParamCount() int64 { return 0 }

// Params implements Layer.
func (l *Softmax) Params() []*tensor.Tensor { return nil }

package nn

import (
	"fmt"
	"testing"

	"websnap/internal/tensor"
)

// TestIm2colMatchesDirect: both convolution algorithms must agree across a
// range of geometries (strides, padding, kernels, channels).
func TestIm2colMatchesDirect(t *testing.T) {
	cases := []struct{ inC, outC, k, stride, pad, size int }{
		{1, 1, 1, 1, 0, 4},
		{3, 8, 3, 1, 1, 8},
		{2, 4, 5, 2, 2, 11},
		{4, 2, 3, 2, 0, 9},
		{8, 16, 3, 1, 1, 14},
		{3, 96, 7, 4, 0, 27},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("c%d_o%d_k%d_s%d_p%d", tc.inC, tc.outC, tc.k, tc.stride, tc.pad), func(t *testing.T) {
			conv, err := NewConv("c", tc.inC, tc.outC, tc.k, tc.stride, tc.pad)
			if err != nil {
				t.Fatal(err)
			}
			rng := &archRNG{s: uint64(tc.inC*1000 + tc.k)}
			for i := range conv.weight.Data() {
				conv.weight.Data()[i] = float32(rng.intn(2000))/1000 - 1
			}
			for i := range conv.bias.Data() {
				conv.bias.Data()[i] = float32(rng.intn(100)) / 100
			}
			in := tensor.MustNew(tc.inC, tc.size, tc.size)
			for i := range in.Data() {
				in.Data()[i] = float32(rng.intn(512))/256 - 1
			}
			direct := tensor.MustNew(mustShape(t, conv, in)...)
			conv.forwardChannels(in, direct, 0, tc.outC)
			gemm, err := conv.ForwardIm2col(in)
			if err != nil {
				t.Fatal(err)
			}
			if !tensor.SameShape(direct, gemm) {
				t.Fatalf("shapes differ: %v vs %v", direct.Shape(), gemm.Shape())
			}
			for i := range direct.Data() {
				if direct.Data()[i] != gemm.Data()[i] {
					t.Fatalf("algorithms disagree at %d: %v vs %v",
						i, direct.Data()[i], gemm.Data()[i])
				}
			}
		})
	}
}

func mustShape(t *testing.T, c *Conv, in *tensor.Tensor) []int {
	t.Helper()
	s, err := c.OutputShape(in.Shape())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// BenchmarkConvAlgorithms compares the direct and im2col paths on an
// AgeNet-conv2-like layer (5x5 over 96 channels at 28x28).
func BenchmarkConvAlgorithms(b *testing.B) {
	conv, err := NewConv("c", 96, 256, 5, 1, 2)
	if err != nil {
		b.Fatal(err)
	}
	rng := &archRNG{s: 9}
	for i := range conv.weight.Data() {
		conv.weight.Data()[i] = float32(rng.intn(2000))/1000 - 1
	}
	in := tensor.MustNew(96, 28, 28)
	for i := range in.Data() {
		in.Data()[i] = float32(rng.intn(512))/256 - 1
	}
	fl, err := conv.FLOPs(in.Shape())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("direct", func(b *testing.B) {
		b.SetBytes(fl)
		for i := 0; i < b.N; i++ {
			out := tensor.MustNew(256, 28, 28)
			conv.forwardChannels(in, out, 0, 256)
		}
	})
	b.Run("im2col", func(b *testing.B) {
		b.SetBytes(fl)
		for i := 0; i < b.N; i++ {
			if _, err := conv.ForwardIm2col(in); err != nil {
				b.Fatal(err)
			}
		}
	})
}

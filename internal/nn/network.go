package nn

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"websnap/internal/tensor"
)

// ErrBadSplit is returned for an out-of-range partition point.
var ErrBadSplit = errors.New("nn: invalid split point")

// Network is a DNN: a series of layers executed front to back (the paper's
// "forward execution"). Composite structures (inception modules) are single
// layers, so every index into the layer slice is a valid partition point.
type Network struct {
	name   string
	layers []Layer
	input  []int

	// planMu guards plans, the compiled-execution cache keyed by layer
	// range and input shape. Plans are immutable once stored, so lookups
	// are cheap reads and Forward/ForwardRange/ForwardBatch are safe for
	// concurrent use (the scheduler's batch path shares one plan).
	planMu sync.RWMutex
	plans  map[planKey]*ExecPlan
}

// planKey identifies a compiled plan: the layer range, the input shape,
// and the compute precision, inlined into a comparable struct so cache
// hits allocate nothing.
type planKey struct {
	from, to int
	rank     int
	dims     [4]int
	prec     Precision
}

// NewNetwork assembles a network. The first layer must be an *Input, which
// fixes the expected input shape, and all layer shapes must chain correctly;
// this is validated eagerly so a malformed architecture fails at build time.
func NewNetwork(name string, layers ...Layer) (*Network, error) {
	if len(layers) == 0 {
		return nil, fmt.Errorf("nn: network %q: no layers", name)
	}
	in, ok := layers[0].(*Input)
	if !ok {
		return nil, fmt.Errorf("nn: network %q: first layer must be input, got %s", name, layers[0].Type())
	}
	n := &Network{name: name, layers: layers, input: in.ExpectedShape()}
	if _, err := n.OutputShape(); err != nil {
		return nil, fmt.Errorf("nn: network %q: %w", name, err)
	}
	seen := make(map[string]struct{}, len(layers))
	for _, l := range layers {
		if _, dup := seen[l.Name()]; dup {
			return nil, fmt.Errorf("nn: network %q: duplicate layer name %q", name, l.Name())
		}
		seen[l.Name()] = struct{}{}
	}
	return n, nil
}

// Name returns the network's name.
func (n *Network) Name() string { return n.name }

// Layers returns the layer chain. The slice is shared; callers must not
// mutate it.
func (n *Network) Layers() []Layer { return n.layers }

// NumLayers returns the number of layers, including the input layer.
func (n *Network) NumLayers() int { return len(n.layers) }

// InputShape returns the expected input shape.
func (n *Network) InputShape() []int {
	s := make([]int, len(n.input))
	copy(s, n.input)
	return s
}

// OutputShape returns the network's final output shape.
func (n *Network) OutputShape() ([]int, error) {
	cur := n.InputShape()
	var err error
	for _, l := range n.layers {
		cur, err = l.OutputShape(cur)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// Forward runs the full forward execution on in through the cached
// execution plan for in's shape. The input is never mutated and the
// result is always freshly allocated.
func (n *Network) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	return n.ForwardRange(in, 0, len(n.layers))
}

// ForwardRange executes layers [from, to) on in. from=0, to=NumLayers() is a
// full forward pass; partial inference executes [0, k) on the client and
// [k, NumLayers()) on the server. Execution goes through a compiled plan
// cached per (range, input shape); the first call for a shape compiles,
// later calls reuse pooled buffers.
func (n *Network) ForwardRange(in *tensor.Tensor, from, to int) (*tensor.Tensor, error) {
	p, err := n.planFor(in, from, to, PrecFloat32)
	if err != nil {
		return nil, err
	}
	return p.Forward(in)
}

// ForwardPrec is Forward at an explicit compute precision — the quality
// knob. PrecInt8 runs the calibrated quantized kernels; boundary tensors
// stay float32 either way.
func (n *Network) ForwardPrec(in *tensor.Tensor, prec Precision) (*tensor.Tensor, error) {
	return n.ForwardRangePrec(in, 0, len(n.layers), prec)
}

// ForwardRangePrec is ForwardRange at an explicit compute precision.
func (n *Network) ForwardRangePrec(in *tensor.Tensor, from, to int, prec Precision) (*tensor.Tensor, error) {
	p, err := n.planFor(in, from, to, prec)
	if err != nil {
		return nil, err
	}
	return p.Forward(in)
}

// Plan returns the compiled execution plan for a full forward pass on the
// given input shape, compiling and caching it on first use. Plans are
// safe for concurrent use.
func (n *Network) Plan(shape ...int) (*ExecPlan, error) {
	return n.PlanRange(0, len(n.layers), shape...)
}

// PlanPrec is Plan at an explicit compute precision.
func (n *Network) PlanPrec(prec Precision, shape ...int) (*ExecPlan, error) {
	return n.PlanRangePrec(prec, 0, len(n.layers), shape...)
}

// PlanRange returns the compiled plan for layers [from, to) on the given
// input shape, compiling and caching it on first use.
func (n *Network) PlanRange(from, to int, shape ...int) (*ExecPlan, error) {
	return n.PlanRangePrec(PrecFloat32, from, to, shape...)
}

// PlanRangePrec is PlanRange at an explicit compute precision. Int8 plans
// quantize and calibrate on first compile; the result is cached per
// (range, shape, precision) like any other plan.
func (n *Network) PlanRangePrec(prec Precision, from, to int, shape ...int) (*ExecPlan, error) {
	if from < 0 || to > len(n.layers) || from > to {
		return nil, fmt.Errorf("%w: [%d, %d) of %d layers", ErrBadSplit, from, to, len(n.layers))
	}
	if !prec.Valid() {
		return nil, fmt.Errorf("nn: network %q: unknown precision %q", n.name, prec)
	}
	key, cacheable := n.planKeyFromShape(from, to, shape, prec)
	if cacheable {
		n.planMu.RLock()
		p := n.plans[key]
		n.planMu.RUnlock()
		if p != nil {
			return p, nil
		}
	}
	p, err := newExecPlan(n.name, n.layers[from:to], shape, prec)
	if err != nil {
		return nil, fmt.Errorf("network %q: %w", n.name, err)
	}
	if cacheable {
		n.planMu.Lock()
		if n.plans == nil {
			n.plans = make(map[planKey]*ExecPlan)
		}
		if exist := n.plans[key]; exist != nil {
			p = exist // lost a compile race; keep the shared one
		} else {
			n.plans[key] = p
		}
		n.planMu.Unlock()
	}
	return p, nil
}

func (n *Network) planKeyFromShape(from, to int, shape []int, prec Precision) (planKey, bool) {
	key := planKey{from: from, to: to, rank: len(shape), prec: prec}
	if len(shape) > len(key.dims) {
		return key, false
	}
	copy(key.dims[:], shape)
	return key, true
}

// planFor is PlanRangePrec keyed straight off a tensor's dimensions, so
// cache hits allocate nothing.
func (n *Network) planFor(in *tensor.Tensor, from, to int, prec Precision) (*ExecPlan, error) {
	if from < 0 || to > len(n.layers) || from > to {
		return nil, fmt.Errorf("%w: [%d, %d) of %d layers", ErrBadSplit, from, to, len(n.layers))
	}
	if rank := in.Rank(); rank <= 4 {
		key := planKey{from: from, to: to, rank: rank, prec: prec}
		for i := 0; i < rank; i++ {
			key.dims[i] = in.Dim(i)
		}
		n.planMu.RLock()
		p := n.plans[key]
		n.planMu.RUnlock()
		if p != nil {
			return p, nil
		}
	}
	return n.PlanRangePrec(prec, from, to, in.Shape()...)
}

// ForwardBatch runs one forward pass over a batch of inputs, layer-major:
// every sample is advanced through layer k before any sample touches layer
// k+1. That is the batched execution the edge scheduler's micro-batching
// relies on — each layer's weights are fetched into cache once and reused
// across the whole batch instead of being re-streamed per request, which is
// where batched inference wins over running the samples back to back.
// Results are bit-identical to per-sample Forward calls because each
// sample's per-step computation is unchanged. Same-shaped batches (the
// scheduler's case) share one cached plan; mixed shapes fall back to
// per-sample forwards.
func (n *Network) ForwardBatch(ins []*tensor.Tensor) ([]*tensor.Tensor, error) {
	return n.ForwardBatchPrec(ins, PrecFloat32)
}

// ForwardBatchPrec is ForwardBatch at an explicit compute precision.
func (n *Network) ForwardBatchPrec(ins []*tensor.Tensor, prec Precision) ([]*tensor.Tensor, error) {
	if len(ins) == 0 {
		return nil, fmt.Errorf("nn: network %q: empty batch", n.name)
	}
	uniform := true
	for _, t := range ins[1:] {
		if !tensor.SameShape(t, ins[0]) {
			uniform = false
			break
		}
	}
	if !uniform {
		outs := make([]*tensor.Tensor, len(ins))
		for i, t := range ins {
			out, err := n.ForwardPrec(t, prec)
			if err != nil {
				return nil, fmt.Errorf("batch member %d: %w", i, err)
			}
			outs[i] = out
		}
		return outs, nil
	}
	p, err := n.planFor(ins[0], 0, len(n.layers), prec)
	if err != nil {
		return nil, err
	}
	return p.ForwardBatch(ins)
}

// LayerInfo describes one layer's static properties at its position in the
// network, as needed by the cost model, the partition chooser, and Fig 1.
type LayerInfo struct {
	Index       int       `json:"index"`
	Name        string    `json:"name"`
	Type        LayerType `json:"type"`
	InputShape  []int     `json:"inputShape"`
	OutputShape []int     `json:"outputShape"`
	FLOPs       int64     `json:"flops"`
	ParamCount  int64     `json:"paramCount"`
	// OutputBytes is the binary (float32) size of the layer's output
	// feature data.
	OutputBytes int64 `json:"outputBytes"`
}

// Describe returns per-layer information for the whole network.
func (n *Network) Describe() ([]LayerInfo, error) {
	infos := make([]LayerInfo, 0, len(n.layers))
	cur := n.InputShape()
	for i, l := range n.layers {
		out, err := l.OutputShape(cur)
		if err != nil {
			return nil, err
		}
		fl, err := l.FLOPs(cur)
		if err != nil {
			return nil, err
		}
		infos = append(infos, LayerInfo{
			Index:       i,
			Name:        l.Name(),
			Type:        l.Type(),
			InputShape:  cur,
			OutputShape: out,
			FLOPs:       fl,
			ParamCount:  l.ParamCount(),
			OutputBytes: 4 * int64(tensor.Volume(out)),
		})
		cur = out
	}
	return infos, nil
}

// TotalFLOPs returns the FLOPs of a full forward pass.
func (n *Network) TotalFLOPs() (int64, error) {
	infos, err := n.Describe()
	if err != nil {
		return 0, err
	}
	var total int64
	for _, li := range infos {
		total += li.FLOPs
	}
	return total, nil
}

// TotalParams returns the number of learned parameters.
func (n *Network) TotalParams() int64 {
	var total int64
	for _, l := range n.layers {
		total += l.ParamCount()
	}
	return total
}

// ModelBytes returns the size of the serialized weights (4 bytes per
// parameter), which is what the client pre-sends to the edge server.
func (n *Network) ModelBytes() int64 { return 4 * n.TotalParams() }

// Split partitions the network after layer k (layers [0,k] front, (k,end]
// rear), returning two networks that together compute the same function:
// front.Forward is the paper's inference_front, rear the inference_rear.
// k must leave at least the input layer in front and one layer in the rear.
// The rear network is given a fresh input layer matching the feature shape.
func (n *Network) Split(k int) (front, rear *Network, err error) {
	if k < 0 || k >= len(n.layers)-1 {
		return nil, nil, fmt.Errorf("%w: k=%d with %d layers", ErrBadSplit, k, len(n.layers))
	}
	frontLayers := n.layers[:k+1]
	front, err = NewNetwork(n.name+"_front", frontLayers...)
	if err != nil {
		return nil, nil, err
	}
	featShape := n.InputShape()
	for _, l := range frontLayers {
		featShape, err = l.OutputShape(featShape)
		if err != nil {
			return nil, nil, err
		}
	}
	rearInput, err := NewInput("feature_input", featShape...)
	if err != nil {
		// Post-split feature data can be a flat vector; in that case wrap
		// it as [C,1,1] so the rear input layer accepts it.
		if len(featShape) == 1 {
			rearInput, err = NewInput("feature_input", featShape[0], 1, 1)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("nn: split %q at %d: %w", n.name, k, err)
		}
	}
	rearLayers := make([]Layer, 0, len(n.layers)-k)
	rearLayers = append(rearLayers, rearInput)
	rearLayers = append(rearLayers, n.layers[k+1:]...)
	rear, err = NewNetwork(n.name+"_rear", rearLayers...)
	if err != nil {
		return nil, nil, err
	}
	return front, rear, nil
}

// PartitionPoint is a candidate offloading point: execute layers [0,Index]
// on the client and the rest on the server. Label follows the paper's Fig 8
// naming (Input, 1st_conv, 1st_pool, ...).
type PartitionPoint struct {
	Index int
	Label string
	// FeatureBytes is the float32 size of the data crossing the split.
	FeatureBytes int64
}

// PartitionPoints enumerates the candidate offloading points the paper
// sweeps in Fig 8: the input layer plus every conv, pool, and inception
// boundary. The final layer is excluded (offloading nothing is the Client
// configuration, covered separately).
func (n *Network) PartitionPoints() ([]PartitionPoint, error) {
	infos, err := n.Describe()
	if err != nil {
		return nil, err
	}
	counts := map[LayerType]int{}
	pts := make([]PartitionPoint, 0, len(infos))
	for _, li := range infos[:len(infos)-1] {
		switch li.Type {
		case TypeInput:
			pts = append(pts, PartitionPoint{Index: li.Index, Label: "Input", FeatureBytes: li.OutputBytes})
		case TypeConv, TypePool, TypeInception:
			counts[li.Type]++
			pts = append(pts, PartitionPoint{
				Index:        li.Index,
				Label:        fmt.Sprintf("%s_%s", ordinal(counts[li.Type]), li.Type),
				FeatureBytes: li.OutputBytes,
			})
		}
	}
	return pts, nil
}

func ordinal(i int) string {
	switch i {
	case 1:
		return "1st"
	case 2:
		return "2nd"
	case 3:
		return "3rd"
	default:
		return fmt.Sprintf("%dth", i)
	}
}

// InitWeights fills every parameter tensor deterministically from seed using
// a He-style fan-in scaling. Deterministic synthetic weights stand in for
// the paper's pre-trained Caffe models: the experiments depend on parameter
// counts and feature sizes, not accuracy (see DESIGN.md §1).
func (n *Network) InitWeights(seed uint64) {
	rng := seed | 1
	next := func() float32 {
		// xorshift64* — deterministic across platforms, no math/rand
		// global state.
		rng ^= rng >> 12
		rng ^= rng << 25
		rng ^= rng >> 27
		v := rng * 2685821657736338717
		// Map the top 24 bits to [-1, 1).
		return float32(int32(v>>40)-1<<23) / (1 << 23)
	}
	for _, l := range n.layers {
		for _, p := range l.Params() {
			fanIn := p.Len()
			if s := p.Shape(); len(s) > 1 {
				fanIn = tensor.Volume(s[1:])
			}
			scale := float32(math.Sqrt(2 / float64(fanIn)))
			d := p.Data()
			for i := range d {
				d[i] = next() * scale
			}
		}
	}
}

package nn

import (
	"math"
	"sync"
	"testing"

	"websnap/internal/tensor"
)

// This file is the golden equivalence suite for the planned execution
// engine: every layer type is checked against an independent naive
// reference implementation that reproduces the pre-refactor per-layer
// math (float32 accumulation, channels-major kernel order), plus
// concurrency and allocation pins for the plan cache.

// refForward executes one layer with naive reference loops.
func refForward(t *testing.T, l Layer, in *tensor.Tensor) *tensor.Tensor {
	t.Helper()
	outShape, err := l.OutputShape(in.Shape())
	if err != nil {
		t.Fatalf("reference %q: %v", l.Name(), err)
	}
	out := tensor.MustNew(outShape...)
	switch v := l.(type) {
	case *Input, *Dropout:
		copy(out.Data(), in.Data())
	case *Conv:
		refConv(v, in, out)
	case *Pool:
		refPool(v, in, out)
	case *FC:
		refFC(v, in, out)
	case *ReLU:
		for i, x := range in.Data() {
			if x > 0 {
				out.Data()[i] = x
			}
		}
	case *LRN:
		refLRN(v, in, out)
	case *Softmax:
		refSoftmax(in, out)
	case *Inception:
		refInception(t, v, in, out)
	default:
		t.Fatalf("reference: unhandled layer type %T", l)
	}
	return out
}

// refNetForward chains refForward over the whole network.
func refNetForward(t *testing.T, net *Network, in *tensor.Tensor) *tensor.Tensor {
	t.Helper()
	cur := in
	for _, l := range net.Layers() {
		cur = refForward(t, l, cur)
	}
	return cur
}

func refConv(c *Conv, in, out *tensor.Tensor) {
	inC, outC, k, stride, pad := c.Geometry()
	h, w := in.Dim(1), in.Dim(2)
	oh, ow := out.Dim(1), out.Dim(2)
	wt := c.weight.Data()
	bias := c.bias.Data()
	for oc := 0; oc < outC; oc++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				sum := bias[oc]
				for ic := 0; ic < inC; ic++ {
					for ky := 0; ky < k; ky++ {
						iy := oy*stride - pad + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < k; kx++ {
							ix := ox*stride - pad + kx
							if ix < 0 || ix >= w {
								continue
							}
							sum += in.Data()[(ic*h+iy)*w+ix] * wt[((oc*inC+ic)*k+ky)*k+kx]
						}
					}
				}
				out.Data()[(oc*oh+oy)*ow+ox] = sum
			}
		}
	}
}

func refPool(p *Pool, in, out *tensor.Tensor) {
	k, stride, pad := p.Geometry()
	ch, h, w := in.Dim(0), in.Dim(1), in.Dim(2)
	oh, ow := out.Dim(1), out.Dim(2)
	for c := 0; c < ch; c++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var acc float32
				n := 0
				first := true
				for ky := 0; ky < k; ky++ {
					iy := oy*stride - pad + ky
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < k; kx++ {
						ix := ox*stride - pad + kx
						if ix < 0 || ix >= w {
							continue
						}
						v := in.Data()[(c*h+iy)*w+ix]
						switch {
						case p.Kind() == MaxPool && (first || v > acc):
							acc = v
						case p.Kind() == AvgPool:
							acc += v
						}
						first = false
						n++
					}
				}
				if p.Kind() == AvgPool && n > 0 {
					acc /= float32(n)
				}
				out.Data()[(c*oh+oy)*ow+ox] = acc
			}
		}
	}
}

func refFC(l *FC, in, out *tensor.Tensor) {
	nIn, nOut := l.Geometry()
	wt := l.weight.Data()
	bias := l.bias.Data()
	for o := 0; o < nOut; o++ {
		sum := bias[o]
		for i := 0; i < nIn; i++ {
			sum += in.Data()[i] * wt[o*nIn+i]
		}
		out.Data()[o] = sum
	}
}

func refLRN(l *LRN, in, out *tensor.Tensor) {
	size, alpha, beta := l.Settings()
	c, h, w := in.Dim(0), in.Dim(1), in.Dim(2)
	half := size / 2
	plane := h * w
	for pos := 0; pos < plane; pos++ {
		for ch := 0; ch < c; ch++ {
			var sum float64
			for j := ch - half; j <= ch+half; j++ {
				if j < 0 || j >= c {
					continue
				}
				v := float64(in.Data()[j*plane+pos])
				sum += v * v
			}
			scale := math.Pow(1+alpha/float64(size)*sum, -beta)
			out.Data()[ch*plane+pos] = float32(float64(in.Data()[ch*plane+pos]) * scale)
		}
	}
}

func refSoftmax(in, out *tensor.Tensor) {
	src := in.Data()
	maxV := src[0]
	for _, v := range src[1:] {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for i, v := range src {
		e := math.Exp(float64(v - maxV))
		out.Data()[i] = float32(e)
		sum += e
	}
	if sum > 0 {
		inv := float32(1 / sum)
		for i := range out.Data() {
			out.Data()[i] *= inv
		}
	}
}

func refInception(t *testing.T, l *Inception, in, out *tensor.Tensor) {
	t.Helper()
	plane := out.Dim(1) * out.Dim(2)
	chOff := 0
	for _, branch := range l.Branches() {
		cur := in
		for _, lay := range branch {
			cur = refForward(t, lay, cur)
		}
		bc := cur.Dim(0)
		copy(out.Data()[chOff*plane:(chOff+bc)*plane], cur.Data())
		chOff += bc
	}
}

func maxAbsDiff(a, b *tensor.Tensor) float64 {
	var worst float64
	for i := range a.Data() {
		if d := math.Abs(float64(a.Data()[i]) - float64(b.Data()[i])); d > worst {
			worst = d
		}
	}
	return worst
}

// engineCases builds one small network per layer type (plus both conv
// kernel paths) so every ForwardCtx implementation is exercised through a
// compiled plan.
func engineCases(t *testing.T) map[string]*Network {
	t.Helper()
	mk := func(name string, c, h, w int, mid ...Layer) *Network {
		in, err := NewInput("data", c, h, w)
		if err != nil {
			t.Fatal(err)
		}
		net, err := NewNetwork(name, append([]Layer{in}, mid...)...)
		if err != nil {
			t.Fatal(err)
		}
		net.InitWeights(uint64(len(name)) + 17)
		return net
	}
	convSmall, err := NewConv("c", 3, 5, 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Large enough to clear parallelThreshold and take the im2col+GEMM
	// path: 2·9·16·32·32·32 ≈ 9.4M FLOPs.
	convBig, err := NewConv("c", 16, 32, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	maxP, err := NewPool("p", MaxPool, 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	avgP, err := NewPool("p", AvgPool, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := NewFC("f", 3*6*6, 7)
	if err != nil {
		t.Fatal(err)
	}
	lrn, err := NewLRN("n", 5, 0.0001, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	fcSm, err := NewFC("f", 4*6*6, 9)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Network{
		"conv-direct":  mk("conv-direct", 3, 9, 9, convSmall),
		"conv-im2col":  mk("conv-im2col", 16, 32, 32, convBig),
		"pool-max":     mk("pool-max", 3, 7, 7, maxP),
		"pool-avg":     mk("pool-avg", 3, 8, 8, avgP),
		"fc":           mk("fc", 3, 6, 6, fc),
		"relu":         mk("relu", 2, 5, 5, NewReLU("r")),
		"lrn":          mk("lrn", 8, 6, 6, lrn),
		"dropout":      mk("dropout", 2, 4, 4, NewDropout("d", 0.5)),
		"softmax":      mk("softmax", 1, 1, 11, NewSoftmax("s")),
		"mixed-tail":   mk("mixed-tail", 4, 6, 6, NewReLU("r"), NewDropout("d", 0.3), fcSm, NewSoftmax("s")),
		"inplace-head": mk("inplace-head", 2, 5, 5, NewDropout("d", 0.2), NewReLU("r")),
	}
}

func fillDeterministic(in *tensor.Tensor, seed uint64) {
	rng := &archRNG{s: seed*977 + 11}
	for i := range in.Data() {
		in.Data()[i] = float32(rng.intn(2000))/1000 - 1
	}
}

// TestEngineMatchesReferenceLayers checks every layer type through a
// compiled plan against the naive reference within 1e-6, pins that the
// input is never mutated, and that a second run through the cached plan
// is bit-identical to the first.
func TestEngineMatchesReferenceLayers(t *testing.T) {
	for name, net := range engineCases(t) {
		t.Run(name, func(t *testing.T) {
			in := tensor.MustNew(net.InputShape()...)
			fillDeterministic(in, uint64(len(name)))
			pristine := in.Clone()

			want := refNetForward(t, net, in)
			got, err := net.Forward(in)
			if err != nil {
				t.Fatal(err)
			}
			if d := maxAbsDiff(want, got); d > 1e-6 {
				t.Fatalf("planned engine diverges from reference by %g", d)
			}
			for i := range in.Data() {
				if in.Data()[i] != pristine.Data()[i] {
					t.Fatalf("input mutated at %d", i)
				}
			}
			again, err := net.Forward(in)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got.Data() {
				if got.Data()[i] != again.Data()[i] {
					t.Fatalf("cached plan not deterministic at %d", i)
				}
			}
		})
	}
}

// stackedInceptionNet is a GoogLeNet-style stem with two chained
// inception modules, pooling, and a classifier head.
func stackedInceptionNet(t testing.TB) *Network {
	t.Helper()
	mustConv := func(name string, inC, outC, k, s, p int) *Conv {
		c, err := NewConv(name, inC, outC, k, s, p)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	mustPool := func(name string, kind Pooling, k, s, p int) *Pool {
		pl, err := NewPool(name, kind, k, s, p)
		if err != nil {
			t.Fatal(err)
		}
		return pl
	}
	in, err := NewInput("data", 3, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	lrn, err := NewLRN("norm1", 5, 0.0001, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	inc1, err := NewInception("inc1",
		[]Layer{mustConv("i1_1x1", 8, 4, 1, 1, 0), NewReLU("i1_r1")},
		[]Layer{mustConv("i1_3x3r", 8, 3, 1, 1, 0), NewReLU("i1_r2"), mustConv("i1_3x3", 3, 6, 3, 1, 1)},
		[]Layer{mustPool("i1_pool", MaxPool, 3, 1, 1), mustConv("i1_proj", 8, 2, 1, 1, 0)},
	)
	if err != nil {
		t.Fatal(err)
	}
	inc2, err := NewInception("inc2",
		[]Layer{mustConv("i2_1x1", 12, 5, 1, 1, 0)},
		[]Layer{mustConv("i2_5x5r", 12, 2, 1, 1, 0), mustConv("i2_5x5", 2, 4, 5, 1, 2), NewReLU("i2_r")},
		[]Layer{mustPool("i2_pool", AvgPool, 3, 1, 1), mustConv("i2_proj", 12, 3, 1, 1, 0)},
	)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := NewFC("fc", 12*4*4, 6)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork("stacked-inception",
		in,
		mustConv("conv1", 3, 8, 3, 1, 1),
		NewReLU("relu1"),
		lrn,
		mustPool("pool1", MaxPool, 2, 2, 0), // 8x8x8
		inc1,                                // 12x8x8
		inc2,                                // 12x8x8
		NewDropout("drop", 0.4),
		mustPool("pool2", MaxPool, 2, 2, 0), // 12x4x4
		fc,
		NewSoftmax("prob"),
	)
	if err != nil {
		t.Fatal(err)
	}
	net.InitWeights(42)
	return net
}

// TestEngineMatchesReferenceInceptionStack is the whole-network golden
// check for a GoogLeNet-style inception stack, including split points
// (the partial-inference path also rides on plans).
func TestEngineMatchesReferenceInceptionStack(t *testing.T) {
	net := stackedInceptionNet(t)
	in := tensor.MustNew(net.InputShape()...)
	fillDeterministic(in, 404)

	want := refNetForward(t, net, in)
	got, err := net.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(want, got); d > 1e-6 {
		t.Fatalf("planned engine diverges from reference by %g", d)
	}

	for k := 0; k < net.NumLayers()-1; k++ {
		front, rear, err := net.Split(k)
		if err != nil {
			t.Fatal(err)
		}
		feat, err := front.Forward(in)
		if err != nil {
			t.Fatalf("split %d front: %v", k, err)
		}
		if rs := rear.InputShape(); tensor.Volume(rs) == feat.Len() && len(rs) != feat.Rank() {
			feat, err = feat.Reshape(rs...)
			if err != nil {
				t.Fatal(err)
			}
		}
		end, err := rear.Forward(feat)
		if err != nil {
			t.Fatalf("split %d rear: %v", k, err)
		}
		if d := maxAbsDiff(want, end); d > 1e-6 {
			t.Fatalf("split %d diverges from reference by %g", k, d)
		}
	}
}

// TestCachedPlanConcurrentForwardBatch hammers one cached plan from many
// goroutines through ForwardBatch and Forward simultaneously; run under
// -race this pins the concurrency contract for plan reuse (the
// scheduler's batch path shares one plan per model).
func TestCachedPlanConcurrentForwardBatch(t *testing.T) {
	net := stackedInceptionNet(t)
	in := tensor.MustNew(net.InputShape()...)
	fillDeterministic(in, 777)
	want, err := net.Forward(in) // warm the plan cache
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const iters = 10
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				if g%2 == 0 {
					outs, err := net.ForwardBatch([]*tensor.Tensor{in, in, in})
					if err != nil {
						errs <- err
						return
					}
					for _, out := range outs {
						for i := range want.Data() {
							if out.Data()[i] != want.Data()[i] {
								t.Errorf("goroutine %d: batch output differs at %d", g, i)
								return
							}
						}
					}
				} else {
					out, err := net.Forward(in)
					if err != nil {
						errs <- err
						return
					}
					for i := range want.Data() {
						if out.Data()[i] != want.Data()[i] {
							t.Errorf("goroutine %d: output differs at %d", g, i)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestDropoutForwardNoAlloc pins the satellite fix: inference dropout is
// a pass-through, not a clone.
func TestDropoutForwardNoAlloc(t *testing.T) {
	d := NewDropout("drop", 0.5)
	in := tensor.MustNew(4, 8, 8)
	fillDeterministic(in, 5)
	out, err := d.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatal("dropout Forward should return its input unchanged")
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := d.Forward(in); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("dropout Forward allocates %v times per call, want 0", allocs)
	}
}

// TestPlannedForwardAllocsBelowLegacy verifies the arena actually pays:
// a steady-state planned forward allocates far less than chaining the
// standalone per-layer path (the pre-refactor execution shape).
func TestPlannedForwardAllocsBelowLegacy(t *testing.T) {
	net := stackedInceptionNet(t)
	in := tensor.MustNew(net.InputShape()...)
	fillDeterministic(in, 99)
	legacyForward := func() {
		cur := in
		for _, l := range net.Layers() {
			out, err := l.Forward(cur)
			if err != nil {
				t.Fatal(err)
			}
			cur = out
		}
	}
	// Warm the plan cache and pools before measuring.
	if _, err := net.Forward(in); err != nil {
		t.Fatal(err)
	}
	planned := testing.AllocsPerRun(20, func() {
		if _, err := net.Forward(in); err != nil {
			t.Fatal(err)
		}
	})
	legacy := testing.AllocsPerRun(20, legacyForward)
	t.Logf("allocs/inference: planned=%.1f legacy=%.1f", planned, legacy)
	if planned > legacy/2 {
		t.Fatalf("planned forward allocates %.1f times per inference, legacy %.1f — want < half", planned, legacy)
	}
}

// TestPlanIntrospection sanity-checks compiled plan metadata: identity
// layers elided, activations in place, conv kernel choice recorded.
func TestPlanIntrospection(t *testing.T) {
	net := stackedInceptionNet(t)
	plan, err := net.Plan(net.InputShape()...)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumSteps() != net.NumLayers() {
		t.Fatalf("NumSteps = %d, want %d", plan.NumSteps(), net.NumLayers())
	}
	byName := map[string]PlanStep{}
	for _, st := range plan.Steps() {
		byName[st.Name] = st
	}
	if !byName["data"].Elided || !byName["drop"].Elided {
		t.Error("input and dropout steps should be elided")
	}
	if byName["conv1"].Elided || byName["conv1"].Algo != "direct" {
		t.Errorf("conv1 step = %+v, want live direct conv", byName["conv1"])
	}
	if !byName["relu1"].InPlace {
		t.Errorf("relu1 step = %+v, want in-place", byName["relu1"])
	}
	if byName["prob"].Name != "prob" {
		t.Error("missing softmax step")
	}
	// A conv above the parallel threshold plans the im2col kernel with
	// scratch reserved for the column matrix.
	big, err := NewConv("big", 16, 32, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := big.Traits([]int{16, 32, 32})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Algo != "im2col" || tr.ScratchFloats != 16*3*3*32*32 {
		t.Errorf("big conv traits = %+v, want im2col with column scratch", tr)
	}
}

// BenchmarkNetworkForward compares a steady-state planned forward pass
// against chaining the standalone per-layer path (the shape of the
// pre-refactor engine) on the GoogLeNet-style stacked-inception net.
func BenchmarkNetworkForward(b *testing.B) {
	net := stackedInceptionNet(b)
	in := tensor.MustNew(net.InputShape()...)
	fillDeterministic(in, 7)
	b.Run("planned", func(b *testing.B) {
		if _, err := net.Forward(in); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := net.Forward(in); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("per-layer", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cur := in
			for _, l := range net.Layers() {
				out, err := l.Forward(cur)
				if err != nil {
					b.Fatal(err)
				}
				cur = out
			}
		}
	})
}

// BenchmarkForwardBatch measures the scheduler's batch path: one cached
// plan, per-sample contexts, layer-major execution.
func BenchmarkForwardBatch(b *testing.B) {
	net := stackedInceptionNet(b)
	in := tensor.MustNew(net.InputShape()...)
	fillDeterministic(in, 8)
	batch := []*tensor.Tensor{in, in, in, in}
	if _, err := net.ForwardBatch(batch); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.ForwardBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
}

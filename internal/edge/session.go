package edge

import (
	"container/list"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"websnap/internal/nn"
	"websnap/internal/snapshot"
)

// SessionStore is the server's single bounded home for per-session state:
// pre-sent models and the synchronized post-offload snapshots that delta
// offloads build on. Everything is content-addressed — models by
// nn.Fingerprint, states by Snapshot.Hash — with per-app name indices on
// top, so byte-identical payloads shared by many sessions are stored once
// and a configurable byte cap holds regardless of how many sessions come
// and go. It replaces the earlier trio of unbounded maps (models, prints,
// states): a long-running edged now evicts least-recently-used entries at
// the cap instead of growing until the process dies.
//
// Two bounding mechanisms work together:
//
//   - LRU eviction: when MaxBytes is set, storing a new entry evicts the
//     least-recently-used entries until the new one fits. Eviction only
//     ever loses a cache — an evicted model makes the next offload for
//     that session fail over to the client's local execution (or a fresh
//     pre-send), and an evicted state makes the next delta recover its
//     base from the fleet or fall back to a full snapshot.
//   - Delta-chain compaction: each app keeps exactly one synced state.
//     Storing the next state in the chain releases the superseded base
//     immediately (when no other app references it), so a session that
//     offloads thousands of times occupies one state slot, not thousands.
//
// It is safe for concurrent use.
type SessionStore struct {
	mu      sync.Mutex
	entries map[string]*sessionEntry
	lru     *list.List                   // front = most recently used
	models  map[string]map[string]string // appID -> model name -> content key
	states  map[string]string            // appID -> content key

	bytes    int64
	maxBytes int64

	evictions   int64
	compactions int64

	// onEvict observes cap evictions (not compactions) with the evicted
	// content key. Called with mu held: it must not reenter the store.
	// The server wires it to drop the key from the fleet blob cache, so
	// the next heartbeat stops advertising what we no longer hold.
	onEvict func(key string)

	// dir, when non-empty, persists model files to disk (see store.go).
	dir string
}

// sessionEntry is one content-addressed payload: a model or a synced
// state, depending on which pointer is set.
type sessionEntry struct {
	key  string
	size int64
	net  *nn.Network
	snap *snapshot.Snapshot
	refs map[storeRef]struct{}
	elem *list.Element
}

// storeRef is one index reference to an entry: a (app, model-name) pair
// for models, or an app's synced-state slot when name is empty.
type storeRef struct{ appID, name string }

// ModelStore is the session store's historical name, kept for embedders
// and tests that predate the unified store.
type ModelStore = SessionStore

// newSessionStore builds a store bounded to maxBytes (0 = unbounded).
func newSessionStore(maxBytes int64) *SessionStore {
	return &SessionStore{
		entries:  make(map[string]*sessionEntry),
		lru:      list.New(),
		models:   make(map[string]map[string]string),
		states:   make(map[string]string),
		maxBytes: maxBytes,
	}
}

// NewModelStore creates an empty, unbounded store.
func NewModelStore() *SessionStore { return newSessionStore(0) }

// Put stores a model for an app. With a directory-backed store the model
// files are also written to disk; persistence failures are returned but the
// in-memory copy is kept, so the current session still works.
func (s *SessionStore) Put(appID, name string, net *nn.Network) error {
	s.putModel(appID, name, net)
	if s.dir == "" {
		return nil
	}
	return s.persist(appID, name, net)
}

// putModel indexes a model under (appID, name). Byte-identical models
// fingerprint to the same content key and share one stored copy.
func (s *SessionStore) putModel(appID, name string, net *nn.Network) {
	fp := nn.Fingerprint(net)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.models[appID] == nil {
		s.models[appID] = make(map[string]string)
	}
	ref := storeRef{appID: appID, name: name}
	if old, ok := s.models[appID][name]; ok {
		if old == fp {
			s.touchLocked(s.entries[old])
			return
		}
		s.derefLocked(old, ref)
	}
	s.models[appID][name] = fp
	s.refLocked(fp, ref, func() *sessionEntry {
		return &sessionEntry{key: fp, size: modelSize(net), net: net}
	})
	s.enforceCapLocked(fp)
}

// modelSize is a model's byte-cap charge: the serialized weights dominate;
// the spec is noise by comparison.
func modelSize(net *nn.Network) int64 { return net.ModelBytes() }

// PutState records snap as appID's synchronized server-side state — "the
// data and code left at the server from the first offloading" (§VI) — and
// compacts the delta chain: the superseded base is released as soon as no
// app references it. size is the state's byte-cap charge (its encoded
// length); the content key is returned for fleet publication.
func (s *SessionStore) PutState(appID string, snap *snapshot.Snapshot, size int64) (string, error) {
	key, err := snap.Hash()
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ref := storeRef{appID: appID}
	if old, ok := s.states[appID]; ok {
		if old == key {
			s.touchLocked(s.entries[old])
			return key, nil
		}
		s.derefLocked(old, ref)
		s.compactions++
	}
	s.states[appID] = key
	s.refLocked(key, ref, func() *sessionEntry {
		return &sessionEntry{key: key, size: size, snap: snap}
	})
	s.enforceCapLocked(key)
	return key, nil
}

// GetState returns appID's synced state, marking it recently used.
func (s *SessionStore) GetState(appID string) (*snapshot.Snapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key, ok := s.states[appID]
	if !ok {
		return nil, false
	}
	e := s.entries[key]
	s.touchLocked(e)
	return e.snap, true
}

// refLocked adds ref to key's entry, creating it via mk on first
// reference, and marks the entry recently used.
func (s *SessionStore) refLocked(key string, ref storeRef, mk func() *sessionEntry) {
	e, ok := s.entries[key]
	if !ok {
		e = mk()
		e.refs = make(map[storeRef]struct{}, 1)
		e.elem = s.lru.PushFront(e)
		s.entries[key] = e
		s.bytes += e.size
	} else {
		s.touchLocked(e)
	}
	e.refs[ref] = struct{}{}
}

// derefLocked removes ref from key's entry and releases the entry when no
// reference remains. A release is bookkeeping (replacement, compaction),
// not an eviction: it does not notify onEvict — in-flight fleet copies of
// a superseded base may still serve a roaming peer, and the fleet cache
// ages them out on its own.
func (s *SessionStore) derefLocked(key string, ref storeRef) {
	e, ok := s.entries[key]
	if !ok {
		return
	}
	delete(e.refs, ref)
	if len(e.refs) > 0 {
		return
	}
	s.removeLocked(e)
}

// removeLocked drops an entry from the store (shared by release and
// eviction; callers handle index cleanup and accounting beyond bytes).
func (s *SessionStore) removeLocked(e *sessionEntry) {
	s.lru.Remove(e.elem)
	delete(s.entries, e.key)
	s.bytes -= e.size
}

// touchLocked marks an entry most recently used.
func (s *SessionStore) touchLocked(e *sessionEntry) {
	if e != nil {
		s.lru.MoveToFront(e.elem)
	}
}

// enforceCapLocked evicts least-recently-used entries until the store fits
// its byte cap. The just-stored entry (protect) is never evicted — the
// session that stored it needs it this instant, so a single entry larger
// than the whole cap leaves the store briefly over budget rather than
// broken.
func (s *SessionStore) enforceCapLocked(protect string) {
	if s.maxBytes <= 0 {
		return
	}
	el := s.lru.Back()
	for s.bytes > s.maxBytes && el != nil {
		e := el.Value.(*sessionEntry)
		el = el.Prev()
		if e.key == protect {
			continue
		}
		s.evictLocked(e)
	}
}

// evictLocked drops an entry at the cap: every index reference to it is
// unlinked (including any on-disk model files), and onEvict is told the
// key so the fleet layer stops advertising it.
func (s *SessionStore) evictLocked(e *sessionEntry) {
	for ref := range e.refs {
		if ref.name == "" {
			delete(s.states, ref.appID)
			continue
		}
		if m := s.models[ref.appID]; m != nil {
			delete(m, ref.name)
			if len(m) == 0 {
				delete(s.models, ref.appID)
			}
		}
		if s.dir != "" {
			base := filepath.Join(s.dir, escape(ref.appID), escape(ref.name))
			os.Remove(base + specSuffix)
			os.Remove(base + weightsSuffix)
		}
	}
	s.removeLocked(e)
	s.evictions++
	if s.onEvict != nil {
		s.onEvict(e.key)
	}
}

// Get retrieves a model for an app, marking it recently used.
func (s *SessionStore) Get(appID, name string) (*nn.Network, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key, ok := s.models[appID][name]
	if !ok {
		return nil, false
	}
	e := s.entries[key]
	s.touchLocked(e)
	return e.net, true
}

// FingerprintSet returns a stable summary of every model stored for an app:
// sorted "name=fingerprint" pairs. Two apps with equal sets hold
// byte-identical model files under the same names.
func (s *SessionStore) FingerprintSet(appID string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.models[appID]))
	for name := range s.models[appID] {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, name := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(name)
		b.WriteByte('=')
		b.WriteString(s.models[appID][name])
	}
	return b.String()
}

// Names returns the model names stored for an app, in sorted order.
func (s *SessionStore) Names(appID string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.models[appID]))
	for name := range s.models[appID] {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Resolver returns a snapshot.ModelResolver scoped to one app.
func (s *SessionStore) Resolver(appID string) snapshot.ModelResolver {
	return snapshot.ResolverFunc(func(name string) (*nn.Network, bool) {
		return s.Get(appID, name)
	})
}

// Bytes returns the store's current byte-cap charge across models and
// states.
func (s *SessionStore) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// MaxBytes returns the configured byte cap (0 = unbounded).
func (s *SessionStore) MaxBytes() int64 { return s.maxBytes }

// Entries returns the number of distinct content-addressed payloads held.
func (s *SessionStore) Entries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Evictions returns how many entries the byte cap has evicted.
func (s *SessionStore) Evictions() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evictions
}

// Compactions returns how many superseded delta bases the store released.
func (s *SessionStore) Compactions() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactions
}

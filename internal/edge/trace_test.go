package edge

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"websnap/internal/mlapp"
	"websnap/internal/protocol"
	"websnap/internal/snapshot"
	"websnap/internal/trace"
	"websnap/internal/webapp"
)

// syncBuffer is a goroutine-safe bytes.Buffer for capturing the trace log.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// offloadRaw performs one snapshot offload at the raw protocol level with
// full control over the negotiated hints, and returns the response header.
func offloadRaw(t *testing.T, addr string, hints int, traceID string) protocol.SnapshotHeader {
	t.Helper()
	model := tinyModel(t, "tiny")
	app, err := mlapp.NewFullApp("trace-app", "tiny", model, tinyLabels)
	if err != nil {
		t.Fatal(err)
	}
	if err := mlapp.LoadImage(app, mlapp.SyntheticImage(3*16*16, 7)); err != nil {
		t.Fatal(err)
	}
	ev := webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick}
	snap, err := snapshot.Capture(app, snapshot.Options{PendingEvent: &ev})
	if err != nil {
		t.Fatal(err)
	}
	wire, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	req, err := protocol.Encode(protocol.MsgSnapshot, protocol.SnapshotHeader{
		AppID: "trace-app", Seq: 1, Hints: hints, TraceID: traceID,
	}, wire)
	if err != nil {
		t.Fatal(err)
	}
	if err := protocol.Write(c, req); err != nil {
		t.Fatal(err)
	}
	resp, err := protocol.Read(c)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != protocol.MsgResultSnapshot {
		t.Fatalf("response type = %s, want %s", resp.Type, protocol.MsgResultSnapshot)
	}
	var hdr protocol.SnapshotHeader
	if err := protocol.DecodeHeader(resp, &hdr); err != nil {
		t.Fatal(err)
	}
	return hdr
}

// TestTraceHintGating checks the version negotiation of the trace extension:
// a client advertising HintTraceV1 gets the server's span report (and, since
// trace implies load, the load hint); a load-only client gets just the load
// hint; a legacy client with no hints gets a byte-compatible plain header.
func TestTraceHintGating(t *testing.T) {
	srv, addr := startServer(t, Config{Installed: true})

	hdr := offloadRaw(t, addr, protocol.HintTraceV1, "00aa11bb22cc33dd")
	if hdr.ServerTrace == nil {
		t.Fatal("HintTraceV1 request: no ServerTrace in response")
	}
	if hdr.ServerTrace.TraceID != "00aa11bb22cc33dd" {
		t.Errorf("ServerTrace.TraceID = %q, want the request's trace ID", hdr.ServerTrace.TraceID)
	}
	if hdr.ServerTrace.ExecuteMicros <= 0 {
		t.Errorf("ExecuteMicros = %d, want > 0", hdr.ServerTrace.ExecuteMicros)
	}
	if hdr.ServerTrace.BatchSize < 1 {
		t.Errorf("BatchSize = %d, want >= 1", hdr.ServerTrace.BatchSize)
	}
	if hdr.Load == nil {
		t.Error("HintTraceV1 implies the load hint; got none")
	}

	hdr = offloadRaw(t, addr, protocol.HintLoadV1, "")
	if hdr.ServerTrace != nil {
		t.Error("load-only request must not receive a ServerTrace")
	}
	if hdr.Load == nil {
		t.Error("HintLoadV1 request: no load hint")
	}

	hdr = offloadRaw(t, addr, 0, "")
	if hdr.ServerTrace != nil || hdr.Load != nil {
		t.Errorf("legacy request got extensions: load=%v trace=%v", hdr.Load, hdr.ServerTrace)
	}

	// The server records its spans regardless of what the client
	// negotiated: all three offloads must be in the histograms.
	if got := srv.TraceRecorder().Stage(trace.StageExecute).Count(); got != 3 {
		t.Errorf("server execute-stage observations = %d, want 3", got)
	}
	if got := srv.TraceRecorder().Stage(trace.StageQueue).Count(); got != 3 {
		t.Errorf("server queue-stage observations = %d, want 3", got)
	}
}

// TestTraceLogLines checks that Config.TraceLog receives one well-formed
// JSON line per offload with the span breakdown.
func TestTraceLogLines(t *testing.T) {
	var buf syncBuffer
	_, addr := startServer(t, Config{Installed: true, TraceLog: &buf})
	offloadRaw(t, addr, protocol.HintTraceV1, "feedfacedeadbeef")
	offloadRaw(t, addr, 0, "")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("trace log has %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var first struct {
		TraceID       string `json:"traceId"`
		AppID         string `json:"appId"`
		Seq           uint64 `json:"seq"`
		ExecuteMicros int64  `json:"executeMicros"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("trace log line not JSON: %v\n%s", err, lines[0])
	}
	if first.TraceID != "feedfacedeadbeef" || first.AppID != "trace-app" || first.Seq != 1 {
		t.Errorf("trace log line = %+v", first)
	}
	if first.ExecuteMicros <= 0 {
		t.Errorf("ExecuteMicros = %d, want > 0", first.ExecuteMicros)
	}
}

// TestMetricsPrometheus checks the Prometheus text exposition of /metrics:
// counters, gauges, and per-stage histograms with monotonically increasing
// cumulative le buckets, while the default JSON shape stays intact.
func TestMetricsPrometheus(t *testing.T) {
	srv, addr := startServer(t, Config{Installed: true})
	offloadRaw(t, addr, protocol.HintTraceV1, "0123456789abcdef")

	h := srv.MetricsHandler()

	// Default: the original JSON payload (existing consumers unaffected).
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("default Content-Type = %q, want JSON", ct)
	}
	var payload struct {
		Installed bool `json:"installed"`
		Metrics   struct {
			SnapshotsExecuted int64 `json:"SnapshotsExecuted"`
		} `json:"metrics"`
		Stages []struct {
			Stage string `json:"Stage"`
		} `json:"stages"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &payload); err != nil {
		t.Fatalf("JSON metrics: %v", err)
	}
	if !payload.Installed || payload.Metrics.SnapshotsExecuted != 1 || len(payload.Stages) == 0 {
		t.Errorf("JSON payload = %+v", payload)
	}

	// Prometheus text exposition via ?format=prometheus.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics?format=prometheus", nil))
	body := rr.Body.String()
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("prometheus Content-Type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE websnap_snapshots_executed_total counter",
		"websnap_snapshots_executed_total 1",
		"# TYPE websnap_installed gauge",
		"websnap_installed 1",
		"# TYPE websnap_stage_seconds histogram",
		`websnap_stage_seconds_bucket{stage="execute",le="+Inf"} 1`,
		`websnap_stage_seconds_count{stage="execute"} 1`,
		`websnap_stage_seconds_sum{stage="execute"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
	assertCumulativeBuckets(t, body, "execute")

	// The Accept header alone also selects text exposition.
	rr = httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	h.ServeHTTP(rr, req)
	if !strings.Contains(rr.Body.String(), "# TYPE websnap_installed gauge") {
		t.Error("Accept: text/plain did not select the Prometheus format")
	}
}

// assertCumulativeBuckets verifies the le buckets of one stage are emitted
// in increasing le order with non-decreasing cumulative counts.
func assertCumulativeBuckets(t *testing.T, body, stage string) {
	t.Helper()
	prefix := `websnap_stage_seconds_bucket{stage="` + stage + `",le="`
	lastLE := -1.0
	lastCum := uint64(0)
	n := 0
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		rest := strings.TrimPrefix(line, prefix)
		i := strings.Index(rest, `"}`)
		if i < 0 {
			t.Fatalf("malformed bucket line %q", line)
		}
		leStr, countStr := rest[:i], strings.TrimSpace(rest[i+2:])
		cum, err := strconv.ParseUint(countStr, 10, 64)
		if err != nil {
			t.Fatalf("bucket count %q: %v", countStr, err)
		}
		if leStr != "+Inf" {
			le, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				t.Fatalf("bucket le %q: %v", leStr, err)
			}
			if le <= lastLE {
				t.Errorf("bucket le %v not increasing (prev %v)", le, lastLE)
			}
			lastLE = le
		}
		if cum < lastCum {
			t.Errorf("bucket count %d decreased (prev %d)", cum, lastCum)
		}
		lastCum = cum
		n++
	}
	if n < 2 {
		t.Errorf("expected at least one occupied bucket plus +Inf for stage %s, got %d lines", stage, n)
	}
}

package edge

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"websnap/internal/client"
	"websnap/internal/mlapp"
	"websnap/internal/netem"
	"websnap/internal/testutil"
	"websnap/internal/webapp"
)

// shapedDial connects to addr through an emulated wireless link.
func shapedDial(t *testing.T, addr string, p netem.Profile) *client.Conn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn := client.NewConn(netem.Shape(nc, p))
	t.Cleanup(func() { conn.Close() })
	return conn
}

// TestConcurrentOffloadsShapedNetwork drives many clients over real TCP
// connections shaped to an emulated wireless link, against a server with a
// small scheduler pool. Every client must get its own result back — none
// lost, none swapped with another session's.
func TestConcurrentOffloadsShapedNetwork(t *testing.T) {
	testutil.LeakCheck(t)
	srv, addr := startServer(t, Config{
		Installed:  true,
		Workers:    2,
		QueueDepth: 32,
		MaxBatch:   4,
	})
	model := tinyModel(t, "tiny")
	link := netem.Profile{BandwidthBitsPerSec: 50e6, Latency: 2 * time.Millisecond}

	const clients = 8
	const rounds = 2
	type outcome struct {
		got, want string
		err       error
	}
	results := make([][rounds]outcome, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nc, err := net.Dial("tcp", addr)
			if err != nil {
				results[i][0].err = err
				return
			}
			conn := client.NewConn(netem.Shape(nc, link))
			defer conn.Close()
			app, err := mlapp.NewFullApp(fmt.Sprintf("shaped-c%d", i), "tiny", model, tinyLabels)
			if err != nil {
				results[i][0].err = err
				return
			}
			off, err := client.NewOffloader(app, conn, client.Options{
				OffloadEventTypes: []string{mlapp.EventClick},
				Models:            []client.ModelToSend{{Name: "tiny", Net: model}},
			})
			if err != nil {
				results[i][0].err = err
				return
			}
			off.StartPreSend()
			if err := off.WaitForAcks(); err != nil {
				results[i][0].err = err
				return
			}
			for r := 0; r < rounds; r++ {
				img := mlapp.SyntheticImage(3*16*16, uint64(1000*i+r))
				if err := mlapp.LoadImage(app, img); err != nil {
					results[i][r].err = err
					return
				}
				app.DispatchEvent(webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick})
				if _, err := off.Run(10); err != nil {
					results[i][r].err = err
					return
				}
				results[i][r].got = mlapp.Result(app)
			}
		}(i)
	}
	wg.Wait()
	for i := range results {
		for r := 0; r < rounds; r++ {
			if err := results[i][r].err; err != nil {
				t.Errorf("client %d round %d: %v", i, r, err)
				continue
			}
			img := mlapp.SyntheticImage(3*16*16, uint64(1000*i+r))
			want := localResult(t, model, img)
			if got := results[i][r].got; got != want {
				t.Errorf("client %d round %d: result %q, want %q (result swapped or lost)", i, r, got, want)
			}
		}
	}
	st := srv.SchedStats()
	if want := int64(clients * rounds); st.Executed != want {
		t.Errorf("scheduler executed %d tasks, want %d", st.Executed, want)
	}
}

// TestSchedulerBatchesConcurrentSessions checks that concurrent sessions
// of the same model arriving over real connections are coalesced into
// batched forward passes (a single worker plus a batch window makes the
// queue build up), and that batching never corrupts per-session results.
func TestSchedulerBatchesConcurrentSessions(t *testing.T) {
	testutil.LeakCheck(t)
	srv, addr := startServer(t, Config{
		Installed:   true,
		Workers:     1,
		QueueDepth:  32,
		MaxBatch:    8,
		BatchWindow: 100 * time.Millisecond,
	})
	model := tinyModel(t, "tiny")

	const clients = 8
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = func() error {
				conn, err := client.Dial(addr)
				if err != nil {
					return err
				}
				defer conn.Close()
				app, err := mlapp.NewFullApp(fmt.Sprintf("batch-c%d", i), "tiny", model, tinyLabels)
				if err != nil {
					return err
				}
				off, err := client.NewOffloader(app, conn, client.Options{
					OffloadEventTypes: []string{mlapp.EventClick},
					Models:            []client.ModelToSend{{Name: "tiny", Net: model}},
				})
				if err != nil {
					return err
				}
				off.StartPreSend()
				if err := off.WaitForAcks(); err != nil {
					return err
				}
				img := mlapp.SyntheticImage(3*16*16, uint64(500+i))
				if err := mlapp.LoadImage(app, img); err != nil {
					return err
				}
				app.DispatchEvent(webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick})
				if _, err := off.Run(10); err != nil {
					return err
				}
				if got, want := mlapp.Result(app), localResult(t, model, img); got != want {
					return fmt.Errorf("result %q, want %q", got, want)
				}
				return nil
			}()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", i, err)
		}
	}
	st := srv.SchedStats()
	if st.Executed != clients {
		t.Errorf("executed = %d, want %d", st.Executed, clients)
	}
	if st.BatchedTasks < 2 {
		t.Errorf("batched tasks = %d, want >= 2 (batch window should coalesce concurrent sessions)", st.BatchedTasks)
	}
	if st.Batches >= st.Executed {
		t.Errorf("batches = %d, executed = %d: no coalescing happened", st.Batches, st.Executed)
	}
}

// slowCatalog returns a catalog whose single handler blocks until the test
// releases it, so queue occupancy is fully under test control.
func slowCatalog(t *testing.T, started chan<- struct{}, release <-chan struct{}) (*webapp.Catalog, *webapp.Registry) {
	t.Helper()
	reg := webapp.NewRegistry("slowapp")
	reg.MustRegister("slow", func(app *webapp.App, ev webapp.Event) error {
		started <- struct{}{}
		<-release
		return app.SetGlobal("done", "yes")
	})
	cat := webapp.NewCatalog()
	if err := cat.Add(reg); err != nil {
		t.Fatal(err)
	}
	return cat, reg
}

func slowOffloader(t *testing.T, reg *webapp.Registry, addr, id string, fallback bool) (*webapp.App, *client.Offloader) {
	t.Helper()
	app, err := webapp.NewApp(id, reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.AddEventListener("b", "go", "slow"); err != nil {
		t.Fatal(err)
	}
	off, err := client.NewOffloader(app, dial(t, addr), client.Options{
		OffloadEventTypes: []string{"go"},
		LocalFallback:     fallback,
	})
	if err != nil {
		t.Fatal(err)
	}
	return app, off
}

// TestShutdownDrainsScheduledSessions closes the server while one session
// is executing and another is queued: the running session must complete
// and deliver its result, the queued one must be cancelled with an Error
// frame (not a dropped connection), and no goroutines may leak.
func TestShutdownDrainsScheduledSessions(t *testing.T) {
	testutil.LeakCheck(t)
	baseline := runtime.NumGoroutine()
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	cat, reg := slowCatalog(t, started, release)
	srv, err := NewServer(Config{Catalog: cat, Installed: true, Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	addr := ln.Addr().String()

	appA, offA := slowOffloader(t, reg, addr, "drain-a", false)
	appB, offB := slowOffloader(t, reg, addr, "drain-b", false)

	run := func(app *webapp.App, off *client.Offloader, errc chan<- error) {
		app.DispatchEvent(webapp.Event{Target: "b", Type: "go"})
		_, err := off.Run(1)
		errc <- err
	}
	errA := make(chan error, 1)
	errB := make(chan error, 1)
	go run(appA, offA, errA)
	<-started // A's handler is executing on the single worker
	go run(appB, offB, errB)
	waitFor(t, "queued session", func() bool { return srv.SchedStats().QueueDepth == 1 })

	closeDone := make(chan error, 1)
	go func() { closeDone <- srv.Close() }()
	// B is cancelled immediately at Close; its waiter gets an Error frame.
	if err := <-errB; !errors.Is(err, client.ErrServerError) {
		t.Errorf("queued session error = %v, want ErrServerError (cancelled with an Error frame)", err)
	}
	// A is still running; releasing it lets the drain finish and its
	// result flow back on the still-open connection.
	close(release)
	if err := <-errA; err != nil {
		t.Errorf("in-flight session: %v", err)
	}
	if v, _ := appA.Global("done"); v != "yes" {
		t.Errorf("in-flight session result not applied: done = %v", v)
	}
	if err := <-closeDone; err != nil {
		t.Errorf("close: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Errorf("serve: %v", err)
	}
	waitFor(t, "goroutines to drain", func() bool {
		return runtime.NumGoroutine() <= baseline+2
	})
}

// TestQueueFullRejectsAndClientFallsBack fills the single worker and the
// one-slot queue, then offloads a third session: the server must reject it
// with an overload Error frame and the client must finish the event
// locally.
func TestQueueFullRejectsAndClientFallsBack(t *testing.T) {
	testutil.LeakCheck(t)
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	cat, reg := slowCatalog(t, started, release)
	cfg := Config{Catalog: cat, Installed: true, Workers: 1, QueueDepth: 1}
	srv, addr := startServerWith(t, cfg)

	appA, offA := slowOffloader(t, reg, addr, "full-a", false)
	appB, offB := slowOffloader(t, reg, addr, "full-b", false)

	errA := make(chan error, 1)
	errB := make(chan error, 1)
	go func() {
		appA.DispatchEvent(webapp.Event{Target: "b", Type: "go"})
		_, err := offA.Run(1)
		errA <- err
	}()
	<-started
	go func() {
		appB.DispatchEvent(webapp.Event{Target: "b", Type: "go"})
		_, err := offB.Run(1)
		errB <- err
	}()
	waitFor(t, "queue to fill", func() bool { return srv.SchedStats().QueueDepth == 1 })

	// Third session: queue full. With local fallback enabled the event
	// still completes — on the client.
	appC, offC := slowOffloader(t, reg, addr, "full-c", true)
	appC.DispatchEvent(webapp.Event{Target: "b", Type: "go"})
	fallbackDone := make(chan error, 1)
	go func() {
		_, err := offC.Run(1)
		fallbackDone <- err
	}()
	<-started // C's handler runs locally (in the client's own process)
	if st := srv.SchedStats(); st.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", st.Rejected)
	}

	// A fourth session without fallback must see the typed overload error
	// (the worker and queue are still held by A and B).
	appD, offD := slowOffloader(t, reg, addr, "full-d", false)
	appD.DispatchEvent(webapp.Event{Target: "b", Type: "go"})
	if _, err := offD.Run(1); !errors.Is(err, client.ErrOverloaded) {
		t.Errorf("overload error = %v, want ErrOverloaded", err)
	}

	// Release every held handler (A and C now, B when it reaches the
	// worker) and collect the results.
	close(release)
	if err := <-fallbackDone; err != nil {
		t.Fatalf("fallback run: %v", err)
	}
	if v, _ := appC.Global("done"); v != "yes" {
		t.Errorf("fallback result not applied: done = %v", v)
	}
	if st := offC.Stats(); st.LocalFallbacks != 1 {
		t.Errorf("local fallbacks = %d, want 1", st.LocalFallbacks)
	}
	if err := <-errA; err != nil {
		t.Errorf("session A: %v", err)
	}
	if err := <-errB; err != nil {
		t.Errorf("session B: %v", err)
	}
}

// startServerWith is startServer for fully caller-specified configs.
func startServerWith(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	return startServer(t, cfg)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

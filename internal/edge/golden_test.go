package edge

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"websnap/internal/obs"
	"websnap/internal/trace"
	"websnap/internal/vmsynth"
)

// goldenServer mirrors the configuration the golden files were captured
// with (pre-registry code, fresh server, 4 workers).
func goldenServer(t *testing.T) *Server {
	t.Helper()
	srv, err := NewServer(Config{Catalog: testCatalog(t), Installed: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func fetchMetrics(t *testing.T, srv *Server, url string) []byte {
	t.Helper()
	ts := httptest.NewServer(srv.MetricsHandler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestMetricsGoldenPrometheus pins the Prometheus exposition of a fresh
// server byte-for-byte to the output of the pre-registry handler. Series
// names, ordering, HELP text, and value formatting are scrape contract:
// dashboards and recording rules depend on them.
func TestMetricsGoldenPrometheus(t *testing.T) {
	got := fetchMetrics(t, goldenServer(t), "/metrics?format=prometheus")
	want := readGolden(t, "metrics.prom", got)
	if string(got) != string(want) {
		t.Errorf("prometheus exposition diverged from golden.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// readGolden loads a golden file; with UPDATE_GOLDEN set it first rewrites
// the file from got (for deliberate exposition extensions — new families
// must append after the existing prefix, never reorder it).
func readGolden(t *testing.T, name string, got []byte) []byte {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestMetricsGoldenJSON pins the JSON payload of a fresh server
// byte-for-byte: field names, order, and zero-value shapes must survive the
// registry refactor.
func TestMetricsGoldenJSON(t *testing.T) {
	got := fetchMetrics(t, goldenServer(t), "/metrics")
	want := readGolden(t, "metrics.json", got)
	if string(got) != string(want) {
		t.Errorf("JSON payload diverged from golden.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestMetricsExpositionLint structurally validates the exposition of an
// exercised server (counters bumped, histograms populated): HELP/TYPE
// before samples, no duplicate series, cumulative monotone buckets,
// escaped labels.
func TestMetricsExpositionLint(t *testing.T) {
	srv := goldenServer(t)
	// Populate counters and histograms so the lint sees non-trivial series.
	srv.connsServed.Add(3)
	srv.errorsAnswered.Inc()
	for i, stage := range []trace.Stage{trace.StageQueue, trace.StageExecute} {
		h := srv.rec.Stage(stage)
		for j := 0; j < 50; j++ {
			h.Observe(time.Duration(i+1) * time.Duration(j+1) * time.Microsecond)
		}
	}
	out := fetchMetrics(t, srv, "/metrics?format=prometheus")
	if problems := obs.LintPrometheus(out); len(problems) != 0 {
		t.Errorf("exposition lint problems:\n%s\nin:\n%s", problems, out)
	}
}

// TestMetricsContentNegotiation drives the handler with the Accept header
// a real Prometheus scraper sends and with a plain JSON client's header,
// checking each gets its format without the ?format override.
func TestMetricsContentNegotiation(t *testing.T) {
	srv := goldenServer(t)
	ts := httptest.NewServer(srv.MetricsHandler())
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodGet, ts.URL, nil)
	req.Header.Set("Accept",
		"application/openmetrics-text;version=1.0.0;q=0.75,text/plain;version=0.0.4;q=0.5,*/*;q=0.1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("scraper header got Content-Type %q, body:\n%s", ct, body)
	}

	req, _ = http.NewRequest(http.MethodGet, ts.URL, nil)
	req.Header.Set("Accept", "*/*")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("wildcard Accept got Content-Type %q, want JSON default", ct)
	}
}

// TestHealthReadyHandlers covers the probe endpoints: healthz is
// unconditionally live; readyz tracks install state and scheduler
// drain.
func TestHealthReadyHandlers(t *testing.T) {
	srv := goldenServer(t)
	h := httptest.NewServer(srv.HealthzHandler())
	defer h.Close()
	resp, err := http.Get(h.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d, want 200", resp.StatusCode)
	}

	rz := httptest.NewServer(srv.ReadyzHandler())
	defer rz.Close()
	resp, err = http.Get(rz.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("readyz (installed) = %d, want 200", resp.StatusCode)
	}
	if !srv.Ready() {
		t.Error("Ready() = false on an installed, accepting server")
	}

	// Draining: Close stops the scheduler; readyz must flip to 503 while
	// healthz stays 200.
	srv.Close()
	resp, err = http.Get(rz.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz (draining) = %d, want 503 (%s)", resp.StatusCode, body)
	}
	if srv.Ready() {
		t.Error("Ready() = true on a draining server")
	}
	resp, err = http.Get(h.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz (draining) = %d, want 200", resp.StatusCode)
	}
}

// TestReadyzNotInstalled covers the pre-install readiness gate.
func TestReadyzNotInstalled(t *testing.T) {
	srv, err := NewServer(Config{Catalog: testCatalog(t), Installed: false,
		Synthesizer: vmsynth.NewSynthesizer(vmsynth.BaseImage{Name: "ubuntu-12.04", Bytes: 1 << 20})})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rz := httptest.NewServer(srv.ReadyzHandler())
	defer rz.Close()
	resp, err := http.Get(rz.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz (not installed) = %d, want 503 (%s)", resp.StatusCode, body)
	}
}

package edge

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"websnap/internal/mlapp"
	"websnap/internal/nn"
	"websnap/internal/protocol"
	"websnap/internal/snapshot"
	"websnap/internal/webapp"
)

// testSnap captures one synced-state snapshot with a distinct image, so
// different seeds hash to different content keys.
func testSnap(t *testing.T, model *nn.Network, seed uint64) (*snapshot.Snapshot, int64) {
	t.Helper()
	app, err := mlapp.NewFullApp("snap-src", "tiny", model, tinyLabels)
	if err != nil {
		t.Fatal(err)
	}
	if err := mlapp.LoadImage(app, mlapp.SyntheticImage(3*16*16, seed)); err != nil {
		t.Fatal(err)
	}
	snap, err := snapshot.Capture(app, snapshot.Options{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return snap, int64(len(data))
}

// TestSessionStoreCompaction pins delta-chain compaction: each app holds
// exactly one synced state, and storing the next state in the chain
// releases the superseded base.
func TestSessionStoreCompaction(t *testing.T) {
	model := tinyModel(t, "tiny")
	s := newSessionStore(0)
	snapA, sizeA := testSnap(t, model, 1)
	snapB, sizeB := testSnap(t, model, 2)

	keyA, err := s.PutState("app", snapA, sizeA)
	if err != nil {
		t.Fatal(err)
	}
	if s.Entries() != 1 || s.Bytes() != sizeA {
		t.Fatalf("after first state: entries=%d bytes=%d", s.Entries(), s.Bytes())
	}
	keyB, err := s.PutState("app", snapB, sizeB)
	if err != nil {
		t.Fatal(err)
	}
	if keyA == keyB {
		t.Fatal("distinct snapshots hashed to one key; test is vacuous")
	}
	if s.Entries() != 1 || s.Bytes() != sizeB {
		t.Fatalf("superseded base not compacted: entries=%d bytes=%d (want 1, %d)",
			s.Entries(), s.Bytes(), sizeB)
	}
	if got := s.Compactions(); got != 1 {
		t.Fatalf("Compactions = %d, want 1", got)
	}
	if got, ok := s.GetState("app"); !ok || got != snapB {
		t.Fatal("GetState does not return the latest state")
	}
	// Re-storing the identical state is a touch, not a compaction.
	if _, err := s.PutState("app", snapB, sizeB); err != nil {
		t.Fatal(err)
	}
	if got := s.Compactions(); got != 1 {
		t.Fatalf("idempotent PutState counted as compaction: %d", got)
	}
}

// TestSessionStoreSharedContent pins content addressing: byte-identical
// payloads referenced by many sessions occupy one entry, and releasing one
// reference keeps the entry alive for the others.
func TestSessionStoreSharedContent(t *testing.T) {
	model := tinyModel(t, "tiny")
	other := tinyModel(t, "other")
	s := newSessionStore(0)
	s.putModel("app-1", "tiny", model)
	s.putModel("app-2", "tiny", model)
	if s.Entries() != 1 {
		t.Fatalf("identical model for two apps stored %d times", s.Entries())
	}
	if s.Bytes() != model.ModelBytes() {
		t.Fatalf("Bytes = %d, want one copy (%d)", s.Bytes(), model.ModelBytes())
	}
	// app-1 replaces its model; app-2's reference keeps the entry alive.
	s.putModel("app-1", "tiny", other)
	if _, ok := s.Get("app-2", "tiny"); !ok {
		t.Fatal("shared entry released while still referenced")
	}
	if s.Entries() != 2 {
		t.Fatalf("entries = %d, want 2", s.Entries())
	}
	// app-2 replaces too: the original entry's last reference goes.
	s.putModel("app-2", "tiny", other)
	if s.Entries() != 1 {
		t.Fatalf("unreferenced entry retained: entries = %d", s.Entries())
	}
}

// TestSessionStoreLRUEvictionUnderLoad pins the byte bound: pushing many
// states through a small store never exceeds the cap, evicts in LRU order,
// and reports the evictions.
func TestSessionStoreLRUEvictionUnderLoad(t *testing.T) {
	model := tinyModel(t, "tiny")
	_, size := testSnap(t, model, 1)
	cap := 3 * size
	s := newSessionStore(cap)
	var evicted []string
	s.onEvict = func(key string) { evicted = append(evicted, key) }

	keys := make([]string, 0, 12)
	for i := uint64(1); i <= 12; i++ {
		snap, sz := testSnap(t, model, i)
		key, err := s.PutState(fmt.Sprintf("app-%d", i), snap, sz)
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
		if s.Bytes() > cap {
			t.Fatalf("after state %d: Bytes %d exceeds cap %d", i, s.Bytes(), cap)
		}
	}
	if s.Evictions() == 0 {
		t.Fatal("12 states through a 3-state store evicted nothing")
	}
	if int64(len(evicted)) != s.Evictions() {
		t.Fatalf("onEvict saw %d keys, Evictions = %d", len(evicted), s.Evictions())
	}
	// The earliest (least recently used) state was evicted; its app's
	// synced-state slot is gone with it.
	if _, ok := s.GetState("app-1"); ok {
		t.Fatal("LRU state survived cap pressure")
	}
	if _, ok := s.GetState("app-12"); !ok {
		t.Fatal("most recent state evicted")
	}
	if evicted[0] != keys[0] {
		t.Fatalf("first eviction %s, want LRU key %s", evicted[0], keys[0])
	}
}

// TestSessionStoreEvictionCleansDisk pins that evicting a persisted model
// also removes its on-disk files — a disk-backed store's footprint is
// bounded too, and a restart cannot resurrect evicted entries.
func TestSessionStoreEvictionCleansDisk(t *testing.T) {
	dir := t.TempDir()
	a := tinyModel(t, "model-a")
	cap := a.ModelBytes() + a.ModelBytes()/2 // room for one model, not two
	s, err := newSessionStoreDir(dir, cap)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("app", "a", a); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("app", "b", tinyModel(t, "model-b")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("app", "a"); ok {
		t.Fatal("model a survived cap pressure")
	}
	if _, err := os.Stat(filepath.Join(dir, escape("app"), escape("a")+specSuffix)); !os.IsNotExist(err) {
		t.Fatalf("evicted model's spec file still on disk (err=%v)", err)
	}
	if _, err := os.Stat(filepath.Join(dir, escape("app"), escape("a")+weightsSuffix)); !os.IsNotExist(err) {
		t.Fatalf("evicted model's weights file still on disk (err=%v)", err)
	}
	// A restarted store over the same directory sees only the survivor.
	restarted, err := newSessionStoreDir(dir, cap)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := restarted.Get("app", "a"); ok {
		t.Fatal("evicted model resurrected by restart")
	}
	if _, ok := restarted.Get("app", "b"); !ok {
		t.Fatal("resident model lost across restart")
	}
}

// fakeBlobCache is a BlobCache with Delete, recording what the server
// drops when the session store evicts.
type fakeBlobCache struct {
	mu      sync.Mutex
	m       map[string][]byte
	deleted []string
}

func newFakeBlobCache() *fakeBlobCache { return &fakeBlobCache{m: make(map[string][]byte)} }

func (c *fakeBlobCache) Put(key string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[key]; !ok {
		c.m[key] = append([]byte(nil), data...)
	}
}

func (c *fakeBlobCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.m[key]
	return d, ok
}

func (c *fakeBlobCache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, len(c.m))
	for k := range c.m {
		keys = append(keys, k)
	}
	return keys
}

func (c *fakeBlobCache) Delete(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.m, key)
	c.deleted = append(c.deleted, key)
}

// fakeLocator serves a fixed holder map.
type fakeLocator struct{ holders map[string][]string }

func (l fakeLocator) Locate(keys []string) (map[string][]string, error) {
	out := make(map[string][]string)
	for _, k := range keys {
		if h, ok := l.holders[k]; ok {
			out[k] = h
		}
	}
	return out, nil
}

// TestStoreEvictionDropsFleetBlob pins the eviction round trip inside the
// server: when the bounded session store evicts a synced state, the server
// drops the same key from its fleet blob cache, so the next heartbeat
// (which advertises BlobKeys) stops claiming it.
func TestStoreEvictionDropsFleetBlob(t *testing.T) {
	model := tinyModel(t, "tiny")
	blobs := newFakeBlobCache()
	// Just enough room for the model plus a sliver: every stored state
	// forces cap pressure, so evictions are guaranteed regardless of the
	// encoded state size.
	srv, addr := startServer(t, Config{
		Installed:     true,
		MaxStoreBytes: model.ModelBytes() + 64,
		Blobs:         blobs,
		AdvertiseAddr: "self:0",
	})
	conn := dial(t, addr)
	if err := conn.PreSendModel("evict-app", "tiny", model, false); err != nil {
		t.Fatal(err)
	}

	// Each offload publishes its synced state; cap pressure must evict
	// older states and retract their blobs.
	var firstKey string
	for i := uint64(1); i <= 4; i++ {
		app, err := mlapp.NewFullApp(fmt.Sprintf("evict-app-%d", i), "tiny", model, tinyLabels)
		if err != nil {
			t.Fatal(err)
		}
		if err := mlapp.LoadImage(app, mlapp.SyntheticImage(3*16*16, i)); err != nil {
			t.Fatal(err)
		}
		snap, err := snapshot.Capture(app, snapshot.Options{
			PendingEvent: &webapp.Event{Target: mlapp.ButtonID, Type: mlapp.EventClick},
		})
		if err != nil {
			t.Fatal(err)
		}
		wire, err := snap.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if err := conn.PreSendModel(fmt.Sprintf("evict-app-%d", i), "tiny", model, false); err != nil {
			t.Fatal(err)
		}
		if _, _, err := conn.OffloadSnapshot(fmt.Sprintf("evict-app-%d", i), wire, false); err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			// The state blob is the advertised key that is not the model's
			// fingerprint (the pre-send published that one).
			for _, k := range srv.BlobKeys() {
				if k != nn.Fingerprint(model) {
					firstKey = k
				}
			}
			if firstKey == "" {
				t.Fatal("first offload published no state blob")
			}
		}
	}
	if srv.store.Evictions() == 0 {
		t.Fatal("cap pressure evicted nothing; test is vacuous")
	}
	if srv.store.Bytes() > srv.store.MaxBytes() {
		t.Fatalf("store bytes %d exceed cap %d", srv.store.Bytes(), srv.store.MaxBytes())
	}
	if _, ok := blobs.Get(firstKey); ok {
		t.Fatal("evicted state's blob still in the fleet cache; heartbeat would advertise it")
	}
	for _, k := range srv.BlobKeys() {
		if k == firstKey {
			t.Fatal("evicted key still advertised by BlobKeys")
		}
	}
}

// blobPeer runs a minimal fleet peer: it answers MsgBlobGet for the blobs
// it holds and a clean error frame otherwise (exactly like a real server
// that evicted the blob).
func blobPeer(t *testing.T, blobs map[string][]byte) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				msg, err := protocol.Read(c)
				if err != nil {
					return
				}
				var hdr protocol.BlobGetHeader
				if err := protocol.DecodeHeader(msg, &hdr); err != nil {
					return
				}
				data, ok := blobs[hdr.Key]
				if !ok {
					resp, _ := protocol.Encode(protocol.MsgError,
						protocol.ErrorHeader{Message: fmt.Sprintf("blob %s not held here", hdr.Key)}, nil)
					protocol.Write(c, resp) //nolint:errcheck
					return
				}
				resp, _ := protocol.Encode(protocol.MsgBlobData, protocol.BlobDataHeader{
					Key: hdr.Key, BodyCRC: protocol.BodyChecksum(data),
				}, data)
				protocol.Write(c, resp) //nolint:errcheck
			}(c)
		}
	}()
	return ln.Addr().String()
}

// TestResolveBlobStaleFirstHolder is the stale-holder regression test: the
// registry's index lags evictions, so the first Located holder may no
// longer have the blob. The search must continue to the remaining holders
// instead of giving up (which forced a NeedBlob re-upload).
func TestResolveBlobStaleFirstHolder(t *testing.T) {
	payload := []byte("the-blob-bytes")
	const key = "blob-key"
	stale := blobPeer(t, nil) // evicted: answers a clean error
	good := blobPeer(t, map[string][]byte{key: payload})

	srv, _ := startServer(t, Config{
		Installed:     true,
		Blobs:         newFakeBlobCache(),
		Locator:       fakeLocator{holders: map[string][]string{key: {stale, good}}},
		AdvertiseAddr: "self:0",
	})
	got, err := srv.resolveBlob(key, nil, nil)
	if err != nil {
		t.Fatalf("resolveBlob with a stale first holder: %v", err)
	}
	if string(got) != string(payload) {
		t.Fatalf("resolved %q, want %q", got, payload)
	}
	// The fetched blob is cached locally for later requests and peers.
	if _, ok := srv.cfg.Blobs.Get(key); !ok {
		t.Fatal("resolved blob not cached")
	}
}

// TestResolveBlobBadContentFirstHolder pins that content verification runs
// inside the holder loop: a first holder serving bytes that fail the
// caller's verification must not end the search.
func TestResolveBlobBadContentFirstHolder(t *testing.T) {
	payload := []byte("the-real-bytes")
	const key = "blob-key"
	bad := blobPeer(t, map[string][]byte{key: []byte("wrong-content!")})
	good := blobPeer(t, map[string][]byte{key: payload})

	srv, _ := startServer(t, Config{
		Installed:     true,
		Blobs:         newFakeBlobCache(),
		Locator:       fakeLocator{holders: map[string][]string{key: {bad, good}}},
		AdvertiseAddr: "self:0",
	})
	verify := func(data []byte) error {
		if string(data) != string(payload) {
			return fmt.Errorf("content mismatch")
		}
		return nil
	}
	got, err := srv.resolveBlob(key, nil, verify)
	if err != nil {
		t.Fatalf("resolveBlob with a bad first holder: %v", err)
	}
	if string(got) != string(payload) {
		t.Fatalf("resolved %q, want %q", got, payload)
	}
	// The bad bytes must not have been cached along the way.
	if cached, ok := srv.cfg.Blobs.Get(key); !ok || string(cached) != string(payload) {
		t.Fatalf("cache holds %q, want verified bytes", cached)
	}
}

// TestResolveBlobAllHoldersStale pins the terminal case: every holder
// evicted means errBlobUnavailable (the pre-send path answers NeedBlob and
// the client re-uploads).
func TestResolveBlobAllHoldersStale(t *testing.T) {
	const key = "blob-key"
	stale1 := blobPeer(t, nil)
	stale2 := blobPeer(t, nil)
	srv, _ := startServer(t, Config{
		Installed:     true,
		Blobs:         newFakeBlobCache(),
		Locator:       fakeLocator{holders: map[string][]string{key: {stale1, stale2}}},
		AdvertiseAddr: "self:0",
	})
	if _, err := srv.resolveBlob(key, nil, nil); err == nil {
		t.Fatal("resolveBlob succeeded with every holder stale")
	}
}

var _ = time.Second

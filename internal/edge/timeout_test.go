package edge

import (
	"bytes"
	"net"
	"testing"
	"time"

	"websnap/internal/netem"
	"websnap/internal/protocol"
)

// encodePingFrame serializes one MsgPing frame carrying bodyLen filler
// bytes, so a test can replay it byte-by-byte over a shaped link.
func encodePingFrame(t *testing.T, bodyLen int) []byte {
	t.Helper()
	msg, err := protocol.Encode(protocol.MsgPing, protocol.PingHeader{}, make([]byte, bodyLen))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := protocol.Write(&buf, msg); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSlowUploadSurvivesIdleTimeout is the regression test for the
// connection-timeout bug: a multi-KB frame trickling in over a slow link
// takes far longer than the idle timeout end to end, but because bytes keep
// arriving the per-read transfer deadline keeps extending and the server
// must serve it. Before the fix the read deadline was set once per frame,
// so any transfer slower than IdleTimeout was cut off mid-frame.
func TestSlowUploadSurvivesIdleTimeout(t *testing.T) {
	const idle = 150 * time.Millisecond
	_, addr := startServer(t, Config{Installed: true, IdleTimeout: idle})

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()

	// ~16 KB at 200 kbit/s ≈ 0.65 s of wire time, >4x the idle timeout.
	// netem paces per Write call, so send 512-byte chunks to produce a
	// true trickle with ~20 ms gaps — each gap well under the timeout,
	// the whole transfer well over it.
	frame := encodePingFrame(t, 16<<10)
	shaped := netem.Shape(raw, netem.Profile{BandwidthBitsPerSec: 200e3})
	start := time.Now()
	for len(frame) > 0 {
		n := 512
		if n > len(frame) {
			n = len(frame)
		}
		if _, err := shaped.Write(frame[:n]); err != nil {
			t.Fatalf("trickled write failed after %v: %v", time.Since(start), err)
		}
		frame = frame[n:]
	}
	resp, err := protocol.Read(raw)
	if err != nil {
		t.Fatalf("no response to slow upload: %v", err)
	}
	if resp.Type != protocol.MsgPong {
		t.Fatalf("response type = %s, want %s", resp.Type, protocol.MsgPong)
	}
	if elapsed := time.Since(start); elapsed <= idle {
		t.Fatalf("upload finished in %v <= idle timeout %v; test exercised nothing", elapsed, idle)
	}
}

// TestStalledMidFrameIsKilled is the companion boundary: a peer that starts
// a frame and then stops sending entirely must still be cut off once the
// transfer deadline passes — extending deadlines on arriving bytes must not
// turn into waiting forever on a dead peer.
func TestStalledMidFrameIsKilled(t *testing.T) {
	const idle = 120 * time.Millisecond
	_, addr := startServer(t, Config{Installed: true, IdleTimeout: idle})

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()

	frame := encodePingFrame(t, 1<<10)
	if _, err := raw.Write(frame[:10]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(4 * idle) // stall mid-frame past the transfer deadline

	// The server must have dropped the connection: finishing the frame and
	// waiting for a reply cannot produce a Pong. (The tail write may
	// succeed locally before the RST is observed, so only the read result
	// counts.)
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := raw.Write(frame[10:]); err == nil {
		if _, err := protocol.Read(raw); err == nil {
			t.Fatal("server answered a frame that stalled past the transfer deadline")
		}
	}
}

// TestTransferTimeoutSplitsFromIdle checks the two knobs are independent: a
// generous idle timeout with a tight transfer timeout still cuts off a
// mid-frame stall quickly, while the connection may sit idle between frames
// far longer than the transfer timeout.
func TestTransferTimeoutSplitsFromIdle(t *testing.T) {
	const transfer = 100 * time.Millisecond
	_, addr := startServer(t, Config{
		Installed:       true,
		IdleTimeout:     5 * time.Second,
		TransferTimeout: transfer,
	})

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()

	// Idle (no frame started) longer than the transfer timeout: fine.
	time.Sleep(3 * transfer)
	frame := encodePingFrame(t, 0)
	if _, err := raw.Write(frame); err != nil {
		t.Fatal(err)
	}
	if resp, err := protocol.Read(raw); err != nil || resp.Type != protocol.MsgPong {
		t.Fatalf("ping after inter-frame idle: resp=%v err=%v", resp.Type, err)
	}

	// Mid-frame stall longer than the transfer timeout: killed.
	big := encodePingFrame(t, 1<<10)
	if _, err := raw.Write(big[:10]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(4 * transfer)
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := raw.Write(big[10:]); err == nil {
		if _, err := protocol.Read(raw); err == nil {
			t.Fatal("tight transfer timeout did not kill a mid-frame stall")
		}
	}
}

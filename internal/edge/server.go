// Package edge implements the paper's offloading server program: the
// process running on a generic edge server that accepts connections from
// client devices, stores pre-sent NN models, executes incoming snapshots on
// the server's browser runtime, and returns result snapshots (§III).
package edge

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"websnap/internal/nn"
	"websnap/internal/protocol"
	"websnap/internal/snapshot"
	"websnap/internal/vmsynth"
	"websnap/internal/webapp"
)

// maxHandlerSteps bounds one offloaded execution burst so a buggy app
// cannot wedge a server goroutine.
const maxHandlerSteps = 1000

// ModelStore holds models pre-sent by clients, keyed by app instance and
// model name. It is safe for concurrent use.
type ModelStore struct {
	mu     sync.RWMutex
	models map[string]map[string]*nn.Network
	// dir, when non-empty, persists model files to disk (see store.go).
	dir string
}

// NewModelStore creates an empty store.
func NewModelStore() *ModelStore {
	return &ModelStore{models: make(map[string]map[string]*nn.Network)}
}

// Put stores a model for an app. With a directory-backed store the model
// files are also written to disk; persistence failures are returned but the
// in-memory copy is kept, so the current session still works.
func (s *ModelStore) Put(appID, name string, net *nn.Network) error {
	s.putMemory(appID, name, net)
	if s.dir == "" {
		return nil
	}
	return s.persist(appID, name, net)
}

func (s *ModelStore) putMemory(appID, name string, net *nn.Network) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.models[appID] == nil {
		s.models[appID] = make(map[string]*nn.Network)
	}
	s.models[appID][name] = net
}

// Get retrieves a model for an app.
func (s *ModelStore) Get(appID, name string) (*nn.Network, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	net, ok := s.models[appID][name]
	return net, ok
}

// Names returns the model names stored for an app, in sorted order.
func (s *ModelStore) Names(appID string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.models[appID]))
	for name := range s.models[appID] {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Resolver returns a snapshot.ModelResolver scoped to one app.
func (s *ModelStore) Resolver(appID string) snapshot.ModelResolver {
	return snapshot.ResolverFunc(func(name string) (*nn.Network, bool) {
		return s.Get(appID, name)
	})
}

// stateStore remembers, per app, the last snapshot state both ends of a
// session agreed on — "the data and code left at the server from the first
// offloading" (§VI) — enabling delta offloads.
type stateStore struct {
	mu     sync.RWMutex
	states map[string]*snapshot.Snapshot
}

func newStateStore() *stateStore {
	return &stateStore{states: make(map[string]*snapshot.Snapshot)}
}

func (s *stateStore) Put(appID string, snap *snapshot.Snapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.states[appID] = snap
}

func (s *stateStore) Get(appID string) (*snapshot.Snapshot, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	snap, ok := s.states[appID]
	return snap, ok
}

// Config parametrizes a Server.
type Config struct {
	// Catalog resolves snapshot code hashes to app code bundles.
	Catalog *webapp.Catalog
	// Installed indicates the offloading system is pre-installed. When
	// false, the server only accepts MsgInstallOverlay until a VM
	// overlay has been synthesized (§III.B.3).
	Installed bool
	// Synthesizer performs VM synthesis for on-demand installation. May
	// be nil when Installed is true.
	Synthesizer *vmsynth.Synthesizer
	// ModelDir, when non-empty, persists pre-sent model files to disk so
	// they survive server restarts ("the server saves the files",
	// §III.B.1).
	ModelDir string
	// MaxConns caps concurrently served client connections; beyond it,
	// new connections receive an error and are closed. Zero means
	// unlimited.
	MaxConns int
	// IdleTimeout closes a connection when no request arrives for this
	// long. Zero means no timeout.
	IdleTimeout time.Duration
	// Logf receives diagnostic output; nil silences it.
	Logf func(format string, args ...any)
}

// Server is the edge server's offloading program.
type Server struct {
	cfg    Config
	store  *ModelStore
	states *stateStore
	logf   func(string, ...any)
	quit   chan struct{}
	wg     sync.WaitGroup
	mu     sync.Mutex
	ln     net.Listener
	closed bool

	installedMu sync.RWMutex
	installed   bool

	// connSlots is a semaphore bounding concurrent connections; nil when
	// unlimited.
	connSlots chan struct{}

	// connsMu guards conns, the set of live client connections, so Close
	// can terminate them instead of waiting forever on idle readers.
	connsMu sync.Mutex
	conns   map[net.Conn]struct{}

	metrics metrics
}

// Metrics is a snapshot of the server's operation counters.
type Metrics struct {
	// ConnsServed counts accepted (served) connections.
	ConnsServed int64
	// ConnsRefused counts connections turned away at the MaxConns cap.
	ConnsRefused int64
	// ModelsStored counts pre-send requests handled.
	ModelsStored int64
	// SnapshotsExecuted counts full snapshot offloads executed.
	SnapshotsExecuted int64
	// DeltasExecuted counts delta offloads executed.
	DeltasExecuted int64
	// Installs counts completed VM-synthesis installations.
	Installs int64
	// Errors counts requests answered with MsgError.
	Errors int64
}

// metrics is the live atomic counterpart of Metrics.
type metrics struct {
	connsServed, connsRefused         atomic.Int64
	modelsStored                      atomic.Int64
	snapshotsExecuted, deltasExecuted atomic.Int64
	installs, errorsAnswered          atomic.Int64
}

// Metrics returns a consistent-enough snapshot of the server's counters.
func (s *Server) Metrics() Metrics {
	return Metrics{
		ConnsServed:       s.metrics.connsServed.Load(),
		ConnsRefused:      s.metrics.connsRefused.Load(),
		ModelsStored:      s.metrics.modelsStored.Load(),
		SnapshotsExecuted: s.metrics.snapshotsExecuted.Load(),
		DeltasExecuted:    s.metrics.deltasExecuted.Load(),
		Installs:          s.metrics.installs.Load(),
		Errors:            s.metrics.errorsAnswered.Load(),
	}
}

// NewServer creates an offloading server.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Catalog == nil {
		return nil, errors.New("edge: nil catalog")
	}
	if !cfg.Installed && cfg.Synthesizer == nil {
		return nil, errors.New("edge: not installed and no synthesizer for on-demand installation")
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	store := NewModelStore()
	if cfg.ModelDir != "" {
		var err error
		store, err = NewModelStoreDir(cfg.ModelDir)
		if err != nil {
			return nil, err
		}
	}
	srv := &Server{
		cfg:       cfg,
		store:     store,
		states:    newStateStore(),
		logf:      logf,
		quit:      make(chan struct{}),
		installed: cfg.Installed,
		conns:     make(map[net.Conn]struct{}),
	}
	if cfg.MaxConns > 0 {
		srv.connSlots = make(chan struct{}, cfg.MaxConns)
	}
	return srv, nil
}

// Store exposes the server's model store (for tests and inspection).
func (s *Server) Store() *ModelStore { return s.store }

// Installed reports whether the offloading system is ready to serve
// snapshots.
func (s *Server) Installed() bool {
	s.installedMu.RLock()
	defer s.installedMu.RUnlock()
	return s.installed
}

// Serve accepts connections on ln until Close is called. It blocks; run it
// in a goroutine and call Close to stop.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("edge: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return nil
			default:
				return fmt.Errorf("edge: accept: %w", err)
			}
		}
		if s.connSlots != nil {
			select {
			case s.connSlots <- struct{}{}:
			default:
				// At capacity: refuse politely and move on.
				s.metrics.connsRefused.Add(1)
				s.wg.Add(1)
				go func() {
					defer s.wg.Done()
					defer conn.Close()
					msg, err := protocol.Encode(protocol.MsgError,
						protocol.ErrorHeader{Message: "edge server at connection capacity"}, nil)
					if err == nil {
						if err := protocol.Write(conn, msg); err != nil {
							s.logf("edge: refuse conn: %v", err)
						}
					}
				}()
				continue
			}
		}
		s.trackConn(conn, true)
		s.metrics.connsServed.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.trackConn(conn, false)
			defer conn.Close()
			if s.connSlots != nil {
				defer func() { <-s.connSlots }()
			}
			s.handleConn(conn)
		}()
	}
}

// Close stops accepting, closes the listener, and waits for in-flight
// connections to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.quit)
	ln := s.ln
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	// Terminate live connections: without this, Close would wait forever
	// on clients idling in between requests.
	s.connsMu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.connsMu.Unlock()
	s.wg.Wait()
	return err
}

// trackConn adds or removes a live connection from the close set.
func (s *Server) trackConn(conn net.Conn, add bool) {
	s.connsMu.Lock()
	defer s.connsMu.Unlock()
	if add {
		s.conns[conn] = struct{}{}
	} else {
		delete(s.conns, conn)
	}
}

// handleConn serves one client connection: a sequence of framed requests,
// each answered with exactly one response.
func (s *Server) handleConn(conn net.Conn) {
	for {
		if s.cfg.IdleTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout)); err != nil {
				s.logf("edge: set deadline: %v", err)
				return
			}
		}
		msg, err := protocol.Read(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.ErrUnexpectedEOF) {
				s.logf("edge: read: %v", err)
			}
			return
		}
		resp, err := s.dispatch(msg)
		if err != nil {
			s.logf("edge: %s: %v", msg.Type, err)
			s.metrics.errorsAnswered.Add(1)
			resp, err = protocol.Encode(protocol.MsgError, protocol.ErrorHeader{Message: err.Error()}, nil)
			if err != nil {
				return
			}
		}
		if err := protocol.Write(conn, resp); err != nil {
			s.logf("edge: write response: %v", err)
			return
		}
	}
}

func (s *Server) dispatch(msg protocol.Message) (protocol.Message, error) {
	if !s.Installed() && msg.Type != protocol.MsgInstallOverlay {
		return protocol.Message{}, errors.New("offloading system not installed on this edge server")
	}
	switch msg.Type {
	case protocol.MsgModelPreSend:
		return s.handleModelPreSend(msg)
	case protocol.MsgSnapshot:
		return s.handleSnapshot(msg)
	case protocol.MsgSnapshotDelta:
		return s.handleSnapshotDelta(msg)
	case protocol.MsgInstallOverlay:
		return s.handleInstall(msg)
	default:
		return protocol.Message{}, fmt.Errorf("unexpected message %s", msg.Type)
	}
}

// handleModelPreSend stores the client's model files and acknowledges, per
// §III.B.1: "The server saves the files and sends an acknowledgement (ACK)
// message to the client."
func (s *Server) handleModelPreSend(msg protocol.Message) (protocol.Message, error) {
	var hdr protocol.ModelPreSendHeader
	if err := protocol.DecodeHeader(msg, &hdr); err != nil {
		return protocol.Message{}, err
	}
	net, err := nn.DecodeSpec(hdr.Spec)
	if err != nil {
		return protocol.Message{}, fmt.Errorf("model %q: %w", hdr.ModelName, err)
	}
	if err := net.DecodeWeights(bytes.NewReader(msg.Body)); err != nil {
		return protocol.Message{}, fmt.Errorf("model %q weights: %w", hdr.ModelName, err)
	}
	if err := s.store.Put(hdr.AppID, hdr.ModelName, net); err != nil {
		// The in-memory copy is in place; persistence failure only
		// affects restarts. Log and keep serving.
		s.logf("edge: persist model %q: %v", hdr.ModelName, err)
	}
	s.metrics.modelsStored.Add(1)
	s.logf("edge: stored model %q for app %q (%d params, partial=%v)",
		hdr.ModelName, hdr.AppID, net.TotalParams(), hdr.Partial)
	return protocol.Encode(protocol.MsgAck, protocol.AckHeader{AppID: hdr.AppID, ModelName: hdr.ModelName}, nil)
}

// executeSnapshot runs an offloaded snapshot on the server's runtime and
// returns the captured result state (§III.A). Models absent from the
// snapshot are attached from the pre-send store so delta-reconstructed
// snapshots (which never list models) execute too.
func (s *Server) executeSnapshot(snap *snapshot.Snapshot) (*snapshot.Snapshot, error) {
	registry, ok := s.cfg.Catalog.Lookup(snap.CodeHash)
	if !ok {
		return nil, fmt.Errorf("unknown app code %q", snap.CodeHash)
	}
	app, err := snapshot.Restore(snap, registry, snapshot.RestoreOptions{
		Models: s.store.Resolver(snap.AppID),
	})
	if err != nil {
		return nil, err
	}
	for _, name := range s.store.Names(snap.AppID) {
		if _, loaded := app.Model(name); !loaded {
			if net, ok := s.store.Get(snap.AppID, name); ok {
				app.LoadModel(name, net)
			}
		}
	}
	start := time.Now()
	steps, err := app.Run(maxHandlerSteps)
	if err != nil {
		return nil, fmt.Errorf("execute snapshot: %w", err)
	}
	s.logf("edge: app %q ran %d handler(s) in %v", snap.AppID, steps, time.Since(start))
	result, err := snapshot.Capture(app, snapshot.Options{DefaultModelPolicy: snapshot.ModelOmit})
	if err != nil {
		return nil, err
	}
	s.states.Put(snap.AppID, result)
	return result, nil
}

// handleSnapshot runs a full offloaded snapshot and returns the full result
// snapshot, mirroring the request's body encoding.
func (s *Server) handleSnapshot(msg protocol.Message) (protocol.Message, error) {
	var hdr protocol.SnapshotHeader
	if err := protocol.DecodeHeader(msg, &hdr); err != nil {
		return protocol.Message{}, err
	}
	plain, err := protocol.DecodeBody(msg.Body, hdr.Encoding)
	if err != nil {
		return protocol.Message{}, err
	}
	snap, err := snapshot.Decode(plain)
	if err != nil {
		return protocol.Message{}, err
	}
	result, err := s.executeSnapshot(snap)
	if err != nil {
		return protocol.Message{}, err
	}
	s.metrics.snapshotsExecuted.Add(1)
	body, err := result.Encode()
	if err != nil {
		return protocol.Message{}, err
	}
	return s.snapshotResponse(protocol.MsgResultSnapshot, snap.AppID, hdr, body)
}

// snapshotResponse frames a result body, mirroring the request's encoding.
func (s *Server) snapshotResponse(t protocol.MsgType, appID string, req protocol.SnapshotHeader, body []byte) (protocol.Message, error) {
	encoding := protocol.EncodingRaw
	if req.Encoding == protocol.EncodingFlate {
		compressed, err := protocol.CompressBody(body)
		if err != nil {
			return protocol.Message{}, err
		}
		body = compressed
		encoding = protocol.EncodingFlate
	}
	return protocol.Encode(t, protocol.SnapshotHeader{
		AppID: appID, Seq: req.Seq, Encoding: encoding,
	}, body)
}

// handleSnapshotDelta runs an offload shipped as a delta against the state
// left at the server by the previous offload (§VI), and answers with a
// result delta relative to the reconstructed pre-execution state.
func (s *Server) handleSnapshotDelta(msg protocol.Message) (protocol.Message, error) {
	var hdr protocol.SnapshotHeader
	if err := protocol.DecodeHeader(msg, &hdr); err != nil {
		return protocol.Message{}, err
	}
	plain, err := protocol.DecodeBody(msg.Body, hdr.Encoding)
	if err != nil {
		return protocol.Message{}, err
	}
	delta, err := snapshot.DecodeDelta(plain)
	if err != nil {
		return protocol.Message{}, err
	}
	base, ok := s.states.Get(delta.AppID)
	if !ok {
		return protocol.Message{}, fmt.Errorf("%w: no state for app %q at this server",
			snapshot.ErrBaseMismatch, delta.AppID)
	}
	preExec, err := delta.Apply(base)
	if err != nil {
		return protocol.Message{}, err
	}
	result, err := s.executeSnapshot(preExec)
	if err != nil {
		return protocol.Message{}, err
	}
	s.metrics.deltasExecuted.Add(1)
	resultDelta, err := snapshot.Diff(preExec, result)
	if err != nil {
		return protocol.Message{}, err
	}
	body, err := resultDelta.Encode()
	if err != nil {
		return protocol.Message{}, err
	}
	return s.snapshotResponse(protocol.MsgResultDelta, delta.AppID, hdr, body)
}

// handleInstall performs on-demand installation by VM synthesis: the client
// ships a VM overlay containing the offloading system; once synthesized,
// the server is customized and starts serving offload requests (§III.B.3).
func (s *Server) handleInstall(msg protocol.Message) (protocol.Message, error) {
	if s.Installed() {
		return protocol.Encode(protocol.MsgInstallDone,
			protocol.InstallDoneHeader{SynthesisMillis: 0}, nil)
	}
	var hdr protocol.InstallOverlayHeader
	if err := protocol.DecodeHeader(msg, &hdr); err != nil {
		return protocol.Message{}, err
	}
	if s.cfg.Synthesizer == nil {
		return protocol.Message{}, errors.New("no synthesizer available")
	}
	res, err := s.cfg.Synthesizer.Synthesize(hdr.BaseImage, msg.Body)
	if err != nil {
		return protocol.Message{}, fmt.Errorf("vm synthesis: %w", err)
	}
	s.installedMu.Lock()
	s.installed = true
	s.installedMu.Unlock()
	s.metrics.installs.Add(1)
	s.logf("edge: installed offloading system via VM synthesis (%v)", res.SynthesisTime)
	return protocol.Encode(protocol.MsgInstallDone, protocol.InstallDoneHeader{
		BaseImage:       hdr.BaseImage,
		SynthesisMillis: res.SynthesisTime.Milliseconds(),
	}, nil)
}
